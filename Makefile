GO ?= go

# Where bench-json writes the machine-readable B1/B2 rows.
BENCH_JSON ?= bench.json
BENCH_OPS ?= 300
BENCH_MSGS ?= 100

.PHONY: check vet staticcheck logcheck build test race soak doctor bench-smoke bench-json bench-regress trace-check

# check is the full local gate: static checks, build, the race-enabled
# test suite, and a one-iteration smoke run of the signature fast-path
# benchmarks (catches bit-rot in the bench harness without the cost of a
# real measurement).
check: vet staticcheck logcheck build test bench-smoke

vet:
	$(GO) vet ./...

# staticcheck runs when the tool is on PATH and is skipped (without
# failing the gate) when it is not, so check works on a bare toolchain.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# logcheck gates ad-hoc stdlib logging out of the library: components log
# through log/slog (obs.NopLogger by default); log.Print* belongs only in
# main packages under cmd/.
logcheck:
	@if grep -rnE '\blog\.Print(f|ln)?\(' internal/ --include='*.go'; then \
		echo "logcheck: use log/slog (see internal/obs/logging.go), not stdlib log.Print*"; \
		exit 1; \
	else \
		echo "logcheck: ok"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test -race -shuffle=on ./...

# race re-runs just the concurrency regression tests (transport send/close
# races, queue semantics, registry snapshot consistency) under the race
# detector with caching disabled.
race:
	$(GO) test -race -count=5 \
		-run 'TestSelfSend|TestConcurrentSendClose|TestSendCloseRaceWindow|TestHelloWriteDeadline|TestQueue|TestSnapshotConsistentUnderConcurrentWriters|TestLabeledConcurrentScrape' \
		./internal/tcpnet/ ./internal/syncx/ ./internal/obs/

# soak repeats the fault-injection soak (lossy links, rolling partitions,
# a Byzantine spammer against batched checkpointing MinBFT, with the watch
# safety auditor scraping throughout) under the race detector; -count
# disables caching so each run reshuffles the schedule. A doctor one-shot
# against a live 2-shard cluster closes the run.
soak:
	$(GO) test -race -count=3 -run 'TestSoak' ./internal/minbft/
	$(GO) run ./cmd/unidir-doctor -cluster minbft -shards 2

# doctor runs the cluster safety auditor one-shot against a self-driven
# 2-shard MinBFT cluster (exit 0 healthy, 1 on violation) plus its test
# surface, including the forged-checkpoint-digest detection case.
doctor:
	$(GO) test -race -count=1 ./internal/watch/ ./cmd/unidir-doctor/
	$(GO) run ./cmd/unidir-doctor -cluster minbft -shards 2

# trace-check re-runs the distributed-tracing test surface (context
# propagation on the wire, span lifecycle, cross-node collection, the
# end-to-end breakdown against live clusters) under the race detector.
trace-check:
	$(GO) test -race -count=2 \
		-run 'TestTrace|TestBreakdown|TestAlignClocks|TestMerge|TestDebugSpans|TestSpan|TestFrame|TestLegacyFrame|TestTracedFrame|TestHealthAndReadiness' \
		./internal/obs/... ./internal/tcpnet/ ./internal/simnet/ ./internal/harness/ ./cmd/minbft-kv/

bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSigVerify' -benchtime 1x .

# bench-json reruns the B1/B2/B9/B10/B11/B12 experiment tables and writes every row as
# JSON to $(BENCH_JSON) for dashboards/regression tracking.
bench-json:
	$(GO) run ./cmd/benchharness -exp b1,b2,b9,b10,b11,b12 -msgs $(BENCH_MSGS) -ops $(BENCH_OPS) -json $(BENCH_JSON)

# bench-regress reruns bench-json into a scratch file and compares every
# row's ops_per_sec against the newest checked-in BENCH_*.json; a drop of
# more than 20% on any matching row fails. With no baseline checked in the
# comparison is skipped (exits zero).
bench-regress:
	$(GO) run ./cmd/benchharness -exp b1,b2,b9,b10,b11,b12 -msgs $(BENCH_MSGS) -ops $(BENCH_OPS) -json /tmp/bench-regress.json
	$(GO) run ./cmd/benchregress -current /tmp/bench-regress.json
