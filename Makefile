GO ?= go

.PHONY: check vet build test bench-smoke

# check is the full local gate: static checks, build, the race-enabled
# test suite, and a one-iteration smoke run of the signature fast-path
# benchmarks (catches bit-rot in the bench harness without the cost of a
# real measurement).
check: vet build test bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSigVerify' -benchtime 1x .
