// Package cluster holds the group-agnostic replica lifecycle shared by the
// in-process harness, the minbft-kv command, and the sharded multi-group
// deployments: protocol selection, membership sizing, deterministic key
// provisioning, replica option assembly, checkpoint/data-dir plumbing, and
// metrics/trace attachment.
//
// A "group" is one consensus instance — one MinBFT or PBFT replica set
// ordering one log. Before sharding, every deployment was exactly one group
// and this lifecycle lived twice: once in internal/harness (simnet,
// in-process benchmarks) and once in cmd/minbft-kv (tcpnet, one OS process
// per replica), drifting independently. Sharded deployments
// (internal/shard) run several groups side by side, each built through this
// package over whatever transport the caller provides.
package cluster

import (
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"unidir/internal/minbft"
	"unidir/internal/obs"
	"unidir/internal/obs/tracing"
	"unidir/internal/pbft"
	"unidir/internal/sig"
	"unidir/internal/smr"
	"unidir/internal/transport"
	"unidir/internal/trusted/ctrstore"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

// Protocol selects the consensus protocol a group runs.
type Protocol int

const (
	// MinBFT needs n = 2f+1 replicas; equivocation is prevented by TrInc
	// USIG trusted counters (the paper's class of unidirectional trusted
	// hardware).
	MinBFT Protocol = iota
	// PBFT needs n = 3f+1 replicas and no trusted components.
	PBFT
)

func (p Protocol) String() string {
	switch p {
	case MinBFT:
		return "minbft"
	case PBFT:
		return "pbft"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Default key-provisioning seeds, kept distinct per protocol so a MinBFT
// and a PBFT group built side by side never share key material. These are
// the seeds the harness has always used; benchmarks stay comparable across
// the extraction.
const (
	defaultMinBFTSeed = 3
	defaultPBFTSeed   = 4
)

// Spec parameterizes one consensus group. The zero value plus an F is a
// usable MinBFT group with library defaults everywhere.
type Spec struct {
	Protocol Protocol
	F        int        // faults tolerated; n is derived per protocol
	Scheme   sig.Scheme // signature scheme for keys / trusted components

	// Timeout is the request (view-change) timeout. 0 keeps the protocol
	// default. PBFT has no configurable request timeout; it ignores this.
	Timeout time.Duration
	// Batch is the consensus batch cap; 0 keeps the replica default
	// (UNIDIR_BATCH), 1 disables batching.
	Batch int
	// Ckpt is the checkpoint interval in executed batches; 0 keeps the
	// replica default (UNIDIR_CKPT), < 0 disables checkpointing.
	Ckpt int
	// BatchDeadline is the adaptive size-or-deadline batch trigger: 0 keeps
	// the replica default (UNIDIR_BATCH_DEADLINE), < 0 disables it.
	BatchDeadline time.Duration
	// FixedBatchWindow holds every partial batch for the full BatchDeadline
	// (the non-adaptive baseline). Only meaningful with BatchDeadline > 0.
	FixedBatchWindow bool
	// Admission overrides the replicas' admission bounds; nil keeps the
	// replica default (UNIDIR_ADMIT_*).
	Admission *smr.AdmissionConfig
	// PaceDepth overrides proposal pacing: 0 keeps the replica default
	// (UNIDIR_PACE_DEPTH), < 0 disables, > 0 sets the threshold.
	PaceDepth int
	// LeaseTerm overrides the lease term for the read fast path: 0 keeps
	// the replica default (UNIDIR_LEASE), < 0 disables leases.
	LeaseTerm time.Duration

	// Metrics, when set, attaches replica, signature-cache, and transport
	// metric families to this registry. Sharded deployments hand each group
	// a labeled view (obs.Registry.Labeled) of one shared registry.
	Metrics *obs.Registry
	// DataDir is the replica persistence directory (trusted-counter WAL +
	// stable checkpoint). Empty means volatile. MinBFT only.
	DataDir string
	// Seed derives the group's deterministic demo key material; 0 uses the
	// library default (distinct per protocol). Groups of a sharded
	// deployment must use distinct seeds or share a universe deliberately.
	Seed int64
}

// N returns the replica count the protocol needs for F faults.
func (s Spec) N() int {
	if s.Protocol == PBFT {
		return 3*s.F + 1
	}
	return 2*s.F + 1
}

// Membership returns the group's replica membership.
func (s Spec) Membership() (types.Membership, error) {
	return types.NewMembership(s.N(), s.F)
}

// ReadQuorum is the fallback-read vote quorum a client of this group needs:
// one more than the possible equivocators among the repliers — f+1 for
// MinBFT, 2f+1 for PBFT (see DESIGN.md §8).
func (s Spec) ReadQuorum(m types.Membership) int {
	if s.Protocol == PBFT {
		return m.Quorum()
	}
	return m.FPlusOne()
}

// Encoders is the protocol's client-side envelope set: how a group's
// clients wrap write requests, fast-path reads, and coalesced read batches.
type Encoders struct {
	Request   func(smr.Request) []byte
	Read      func(smr.ReadRequest) []byte
	ReadBatch func([][]byte) []byte
}

// Encoders returns the protocol's envelope encoders.
func (s Spec) Encoders() Encoders {
	if s.Protocol == PBFT {
		return Encoders{
			Request:   pbft.EncodeRequestEnvelope,
			Read:      pbft.EncodeReadRequestEnvelope,
			ReadBatch: pbft.EncodeReadBatchEnvelope,
		}
	}
	return Encoders{
		Request:   minbft.EncodeRequestEnvelope,
		Read:      minbft.EncodeReadRequestEnvelope,
		ReadBatch: minbft.EncodeReadBatchEnvelope,
	}
}

// Keys is a group's provisioned key material: a TrInc universe for MinBFT,
// per-replica keyrings for PBFT. Every process of a group derives the same
// material from the same Spec (demo provisioning — a production deployment
// would provision real hardware or per-device keys).
type Keys struct {
	TrInc *trinc.Universe // MinBFT; nil for PBFT
	Rings []*sig.Keyring  // PBFT; nil for MinBFT
}

// ProvisionKeys derives the group's key material for membership m from
// spec.Seed. m is usually s.Membership(), but commands that let operators
// run with more than the canonical replica count pass their own.
func ProvisionKeys(s Spec, m types.Membership) (*Keys, error) {
	if s.Protocol == PBFT {
		seed := s.Seed
		if seed == 0 {
			seed = defaultPBFTSeed
		}
		rings, err := sig.NewKeyrings(m, s.Scheme, rand.New(rand.NewSource(seed)))
		if err != nil {
			return nil, err
		}
		return &Keys{Rings: rings}, nil
	}
	seed := s.Seed
	if seed == 0 {
		seed = defaultMinBFTSeed
	}
	tu, err := trinc.NewUniverse(m, s.Scheme, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return &Keys{TrInc: tu}, nil
}

// AttachMetrics publishes the key material's verification-cache counters
// (the signature fast path) to reg. No-op for PBFT keyrings and nil reg.
func (k *Keys) AttachMetrics(reg *obs.Registry) {
	if k.TrInc != nil && reg != nil {
		k.TrInc.Verifier.FastPath().AttachMetrics(reg)
	}
}

// Persist opens the trusted-counter WAL under dataDir and binds replica
// self's device to it, so the counter rehydrates monotonically across a
// crash-restart. The returned closer owns the WAL and must outlive the
// replica. No-op (nil closer) for PBFT.
func (k *Keys) Persist(self types.ProcessID, dataDir string, logger *slog.Logger) (io.Closer, error) {
	if k.TrInc == nil {
		return nil, nil
	}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, err
	}
	var opts []ctrstore.Option
	if logger != nil {
		opts = append(opts, ctrstore.WithLogger(logger))
	}
	counters, err := ctrstore.Open(filepath.Join(dataDir, "usig.wal"), opts...)
	if err != nil {
		return nil, err
	}
	if err := k.TrInc.Devices[self].Persist(counters); err != nil {
		_ = counters.Close()
		return nil, err
	}
	return counters, nil
}

// Replica is a running group member, protocol-agnostic.
type Replica interface {
	Close() error
}

// Readiness returns r's readiness probe: MinBFT replicas report whether
// they have an operational view, protocols without a probe report always
// ready.
func Readiness(r Replica) func() bool {
	type readier interface{ Ready() bool }
	if rr, ok := r.(readier); ok {
		return rr.Ready
	}
	return func() bool { return true }
}

// ReadinessDetail returns r's readiness probe with the failing-probe name
// (for /readyz reason bodies): MinBFT replicas distinguish view changes
// from state transfers; protocols with only a boolean probe report a
// generic reason; protocols without one report always ready.
func ReadinessDetail(r Replica) func() (bool, string) {
	type detailed interface{ ReadyReason() (bool, string) }
	if rr, ok := r.(detailed); ok {
		return rr.ReadyReason
	}
	if probe := Readiness(r); probe != nil {
		return func() (bool, string) {
			if !probe() {
				return false, "replica not ready"
			}
			return true, ""
		}
	}
	return func() (bool, string) { return true, "" }
}

// StatusProvider returns r as an obs.StatusProvider when the protocol
// implements one (both minbft and pbft do), or nil.
func StatusProvider(r Replica) obs.StatusProvider {
	if sp, ok := r.(obs.StatusProvider); ok {
		return sp
	}
	return nil
}

// minbftOptions assembles the MinBFT option list a Spec describes.
func (s Spec) minbftOptions(tracer *tracing.Tracer) []minbft.Option {
	var opts []minbft.Option
	if s.Timeout > 0 {
		opts = append(opts, minbft.WithRequestTimeout(s.Timeout))
	}
	if s.Batch > 0 {
		opts = append(opts, minbft.WithBatchSize(s.Batch))
	}
	if s.Ckpt != 0 {
		opts = append(opts, minbft.WithCheckpointInterval(s.Ckpt))
	}
	if s.BatchDeadline != 0 {
		opts = append(opts, minbft.WithBatchDeadline(s.BatchDeadline))
	}
	if s.FixedBatchWindow {
		opts = append(opts, minbft.WithFixedBatchWindow())
	}
	if s.Admission != nil {
		opts = append(opts, minbft.WithAdmission(*s.Admission))
	}
	if s.PaceDepth != 0 {
		opts = append(opts, minbft.WithProposalPacing(s.PaceDepth))
	}
	if s.LeaseTerm != 0 {
		opts = append(opts, minbft.WithLeaseTerm(s.LeaseTerm))
	}
	if s.Metrics != nil {
		opts = append(opts, minbft.WithMetrics(s.Metrics))
	}
	if s.DataDir != "" {
		opts = append(opts, minbft.WithDataDir(s.DataDir))
	}
	if tracer != nil {
		opts = append(opts, minbft.WithTracer(tracer))
	}
	return opts
}

// pbftOptions assembles the PBFT option list a Spec describes.
func (s Spec) pbftOptions(tracer *tracing.Tracer) []pbft.Option {
	var opts []pbft.Option
	if s.Batch > 0 {
		opts = append(opts, pbft.WithBatchSize(s.Batch))
	}
	if s.Ckpt != 0 {
		opts = append(opts, pbft.WithCheckpointInterval(s.Ckpt))
	}
	if s.BatchDeadline != 0 {
		opts = append(opts, pbft.WithBatchDeadline(s.BatchDeadline))
	}
	if s.FixedBatchWindow {
		opts = append(opts, pbft.WithFixedBatchWindow())
	}
	if s.Admission != nil {
		opts = append(opts, pbft.WithAdmission(*s.Admission))
	}
	if s.PaceDepth != 0 {
		opts = append(opts, pbft.WithProposalPacing(s.PaceDepth))
	}
	if s.LeaseTerm != 0 {
		opts = append(opts, pbft.WithLeaseTerm(s.LeaseTerm))
	}
	if s.Metrics != nil {
		opts = append(opts, pbft.WithMetrics(s.Metrics))
	}
	if tracer != nil {
		opts = append(opts, pbft.WithTracer(tracer))
	}
	return opts
}

// NewReplica builds group member self over tr with the given state machine
// and key material. The caller owns tr; the replica owns its own shutdown.
func NewReplica(s Spec, m types.Membership, self types.ProcessID, tr transport.Transport,
	keys *Keys, sm smr.StateMachine, tracer *tracing.Tracer) (Replica, error) {
	if s.Protocol == PBFT {
		return pbft.New(m, tr, keys.Rings[self], sm, s.pbftOptions(tracer)...)
	}
	return minbft.New(m, tr, keys.TrInc.Devices[self], keys.TrInc.Verifier, sm,
		s.minbftOptions(tracer)...)
}

// Group is one running consensus group: its replicas, membership, and key
// material. Clients are wired separately (they live at transport endpoints
// the group does not own).
type Group struct {
	Spec     Spec
	M        types.Membership
	Keys     *Keys
	Replicas []Replica
}

// NewGroup provisions keys and builds every replica of the group over
// membership m, taking each replica's transport from endpoint. tracers,
// when non-nil, must hold one tracer per replica. On error, replicas
// already built are closed; the caller keeps ownership of the transports
// either way.
func NewGroup(s Spec, m types.Membership, endpoint func(types.ProcessID) transport.Transport,
	newSM func() smr.StateMachine, tracers []*tracing.Tracer) (*Group, error) {
	keys, err := ProvisionKeys(s, m)
	if err != nil {
		return nil, err
	}
	keys.AttachMetrics(s.Metrics)
	g := &Group{Spec: s, M: m, Keys: keys, Replicas: make([]Replica, m.N)}
	for i := 0; i < m.N; i++ {
		var tracer *tracing.Tracer
		if tracers != nil {
			tracer = tracers[i]
		}
		g.Replicas[i], err = NewReplica(s, m, types.ProcessID(i), endpoint(types.ProcessID(i)),
			keys, newSM(), tracer)
		if err != nil {
			for _, r := range g.Replicas[:i] {
				_ = r.Close()
			}
			return nil, fmt.Errorf("cluster: replica %d: %w", i, err)
		}
	}
	return g, nil
}

// Close shuts every replica down.
func (g *Group) Close() {
	for _, r := range g.Replicas {
		_ = r.Close()
	}
}
