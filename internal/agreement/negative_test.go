package agreement_test

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"unidir/internal/agreement"
	"unidir/internal/rounds"
	"unidir/internal/simnet"
	"unidir/internal/types"
)

// Negative experiments: the paper's partition arguments showing what
// *zero-directional* communication (asynchrony / anything with only
// eventual delivery) cannot do — the lower half of the classification.

// TestVeryWeakAgreementFailsOverZeroDirectional reproduces the classic
// partition argument (paper: "reliable broadcast cannot solve very weak
// Byzantine agreement with n <= 2f"): over zero-directional rounds with
// n = 2f, two halves that cannot hear each other both satisfy the round
// discipline (n-f = f messages each, their own half) and commit their own
// unanimous inputs — violating agreement. The same protocol over
// unidirectional rounds can never do this (TestVeryWeakMixedInputsNeverConflict).
func TestVeryWeakAgreementFailsOverZeroDirectional(t *testing.T) {
	m := membership(t, 4, 2) // n = 2f
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	// The partition: {0,1} and {2,3} mutually unreachable.
	net.BlockSets([]types.ProcessID{0, 1}, []types.ProcessID{2, 3})

	systems := make([]rounds.System, m.N)
	for i := 0; i < m.N; i++ {
		systems[i], err = rounds.NewAsync(net.Endpoint(types.ProcessID(i)), m)
		if err != nil {
			t.Fatalf("NewAsync: %v", err)
		}
		defer systems[i].Close()
	}

	inputs := map[types.ProcessID][]byte{
		0: []byte("zero"), 1: []byte("zero"),
		2: []byte("one"), 3: []byte("one"),
	}
	commits := make(map[types.ProcessID]commit, m.N)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, sys := range systems {
		wg.Add(1)
		go func(sys rounds.System) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			v, ok, err := agreement.VeryWeak(ctx, sys, 1, inputs[sys.Self()])
			if err != nil {
				t.Errorf("%v: VeryWeak: %v", sys.Self(), err)
				return
			}
			mu.Lock()
			commits[sys.Self()] = commit{value: v, ok: ok}
			mu.Unlock()
		}(sys)
	}
	wg.Wait()

	// Liveness held on both sides of the partition (that is the trap)...
	if len(commits) != m.N {
		t.Fatalf("only %d processes terminated", len(commits))
	}
	// ...and agreement is violated: two different non-⊥ commits exist.
	conflict := false
	for _, a := range commits {
		for _, b := range commits {
			if a.ok && b.ok && !bytes.Equal(a.value, b.value) {
				conflict = true
			}
		}
	}
	if !conflict {
		t.Fatalf("expected the partition to force disagreement, commits: %v", commits)
	}
}

// TestVeryWeakSafeOverUnidirectionalUnderSameGeometry is the control arm:
// the identical inputs over SWMR rounds (unidirectional) never produce two
// conflicting non-⊥ commits, no matter the schedule — shared memory cannot
// be partitioned.
func TestVeryWeakSafeOverUnidirectionalUnderSameGeometry(t *testing.T) {
	m := membership(t, 4, 2)
	for seed := int64(0); seed < 4; seed++ {
		systems := swmrSystems(t, m)
		inputs := map[types.ProcessID][]byte{
			0: []byte("zero"), 1: []byte("zero"),
			2: []byte("one"), 3: []byte("one"),
		}
		commits := runVeryWeak(t, systems, func(p types.ProcessID) []byte { return inputs[p] })
		checkVeryWeakAgreement(t, commits)
	}
}
