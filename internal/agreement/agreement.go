// Package agreement implements the paper's round-based agreement protocols,
// which calibrate what unidirectional communication buys *above* plain
// asynchrony:
//
//   - VeryWeak: very weak Byzantine agreement with n > f from one
//     unidirectional round (paper's claim and algorithm): send your input,
//     wait for the round to end, commit your input unless you saw a
//     different value, in which case commit ⊥. Unidirectionality ensures
//     any two correct processes see at least one of each other's values, so
//     two different non-⊥ commits are impossible.
//
//   - NonEquivocating: non-equivocating broadcast with n >= f+1 from one
//     unidirectional round (paper's conjecture algorithm): the sender
//     signs and sends its value; every process forwards the signed value it
//     received, waits for the round to end, and commits ⊥ if it saw two
//     differently signed values from the sender, its received value
//     otherwise. Agreement again rides on unidirectionality; validity on
//     signature unforgeability.
//
// Both protocols run over any rounds.System; run them over rounds.SWMR for
// the shared-memory instantiation the paper intends. ⊥ is represented by
// the (value, ok) pair: ok == false means ⊥.
package agreement

import (
	"bytes"
	"context"
	"fmt"

	"unidir/internal/rounds"
	"unidir/internal/sig"
	"unidir/internal/types"
	"unidir/internal/wire"
)

const nebDomain = "unidir/agreement/neb"

// VeryWeak runs one instance of very weak Byzantine agreement for this
// process with the given input, using round r of sys (r must be this
// process's next round). It returns (value, true) for a non-⊥ commit and
// (nil, false) for ⊥.
func VeryWeak(ctx context.Context, sys rounds.System, r types.Round, input []byte) ([]byte, bool, error) {
	if err := sys.Send(r, input); err != nil {
		return nil, false, fmt.Errorf("agreement: very weak send: %w", err)
	}
	got, err := sys.WaitEnd(ctx, r)
	if err != nil {
		return nil, false, fmt.Errorf("agreement: very weak round end: %w", err)
	}
	for _, v := range got {
		if !bytes.Equal(v, input) {
			return nil, false, nil // saw a different value: commit ⊥
		}
	}
	return input, true, nil
}

// NonEquivocating runs one instance of non-equivocating broadcast with the
// designated sender, using round r of sys. If this process is the sender,
// input is its broadcast value; otherwise input is ignored. It returns
// (value, true) for a non-⊥ commit and (nil, false) for ⊥.
//
// Liveness note: a non-sender cannot enter the round until it holds the
// sender's signed value (it has nothing to forward). If the sender is
// faulty and silent toward everyone, the call blocks until ctx expires —
// the protocol is a broadcast, not a consensus; termination is conditioned
// on the round (and sender) being live, as in the paper.
func NonEquivocating(ctx context.Context, sys rounds.System, ring *sig.Keyring, sender types.ProcessID, r types.Round, input []byte) ([]byte, bool, error) {
	self := sys.Self()

	var val []byte
	var senderSig []byte
	conflict := false

	if self == sender {
		val = input
		senderSig = ring.Sign(nebBytes(sender, r, input))
	} else {
		// Wait for the sender's signed value, directly or forwarded.
		for val == nil {
			msg, err := sys.Recv(ctx)
			if err != nil {
				return nil, false, fmt.Errorf("agreement: neb await sender: %w", err)
			}
			v, s, ok := decodeNEB(ring, sender, r, msg)
			if !ok {
				continue
			}
			val, senderSig = v, s
		}
	}

	if err := sys.Send(r, encodeNEB(val, senderSig)); err != nil {
		return nil, false, fmt.Errorf("agreement: neb send: %w", err)
	}
	got, err := sys.WaitEnd(ctx, r)
	if err != nil {
		return nil, false, fmt.Errorf("agreement: neb round end: %w", err)
	}
	for from, raw := range got {
		if from == self {
			continue
		}
		v, _, ok := decodeNEB(ring, sender, r, rounds.Msg{From: from, Round: r, Data: raw})
		if !ok {
			continue // unsigned garbage cannot force ⊥
		}
		if !bytes.Equal(v, val) {
			conflict = true
		}
	}
	if conflict {
		return nil, false, nil
	}
	return val, true, nil
}

// EncodeNEBForTest produces a signed NEB round-message body on behalf of
// ring's process. Exported for Byzantine test harnesses that drive an
// equivocating sender by raw injection.
func EncodeNEBForTest(ring *sig.Keyring, sender types.ProcessID, r types.Round, v []byte) []byte {
	return encodeNEB(v, ring.Sign(nebBytes(sender, r, v)))
}

func nebBytes(sender types.ProcessID, r types.Round, v []byte) []byte {
	e := wire.NewEncoder(48 + len(v))
	e.String(nebDomain)
	e.Int(int(sender))
	e.Uint64(uint64(r))
	e.BytesField(v)
	return e.Bytes()
}

func encodeNEB(v, senderSig []byte) []byte {
	e := wire.NewEncoder(16 + len(v) + len(senderSig))
	e.BytesField(v)
	e.BytesField(senderSig)
	return e.Bytes()
}

// decodeNEB parses and verifies a forwarded sender value; ok is false for
// anything not validly signed by the sender for this round.
func decodeNEB(ring *sig.Keyring, sender types.ProcessID, r types.Round, msg rounds.Msg) (v, senderSig []byte, ok bool) {
	d := wire.NewDecoder(msg.Data)
	v = append([]byte(nil), d.BytesField()...)
	senderSig = append([]byte(nil), d.BytesField()...)
	if d.Finish() != nil {
		return nil, nil, false
	}
	if err := ring.Verify(sender, nebBytes(sender, r, v), senderSig); err != nil {
		return nil, nil, false
	}
	return v, senderSig, true
}
