package agreement_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"unidir/internal/agreement"
	"unidir/internal/rounds"
	"unidir/internal/sig"
	"unidir/internal/simnet"
	"unidir/internal/trusted/swmr"
	"unidir/internal/types"
)

func membership(t *testing.T, n, f int) types.Membership {
	t.Helper()
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	return m
}

// swmrSystems builds one SWMR round system per process over a fresh store.
func swmrSystems(t *testing.T, m types.Membership) []rounds.System {
	t.Helper()
	store, err := swmr.NewStore(m)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	systems := make([]rounds.System, m.N)
	for i := 0; i < m.N; i++ {
		sys, err := rounds.NewSWMR(swmr.NewLocal(store, types.ProcessID(i)), m)
		if err != nil {
			t.Fatalf("NewSWMR: %v", err)
		}
		systems[i] = sys
	}
	t.Cleanup(func() {
		for _, s := range systems {
			_ = s.Close()
		}
	})
	return systems
}

type commit struct {
	value []byte
	ok    bool
}

// checkVeryWeakAgreement verifies the very-weak agreement property: any two
// non-⊥ commits are equal.
func checkVeryWeakAgreement(t *testing.T, commits map[types.ProcessID]commit) {
	t.Helper()
	var ref []byte
	for p, c := range commits {
		if !c.ok {
			continue
		}
		if ref == nil {
			ref = c.value
			continue
		}
		if !bytes.Equal(ref, c.value) {
			t.Fatalf("conflicting non-bot commits: %q vs %q (at %v)", ref, c.value, p)
		}
	}
}

func TestVeryWeakValidityAllSameInput(t *testing.T) {
	// Validity: all correct, all inputs equal -> everyone commits that value.
	m := membership(t, 4, 1)
	systems := swmrSystems(t, m)
	input := []byte("unanimous")
	commits := runVeryWeak(t, systems, func(types.ProcessID) []byte { return input })
	for p, c := range commits {
		if !c.ok || !bytes.Equal(c.value, input) {
			t.Fatalf("%v committed (%q, %v), want (%q, true)", p, c.value, c.ok, input)
		}
	}
}

func TestVeryWeakMixedInputsNeverConflict(t *testing.T) {
	m := membership(t, 5, 2)
	for seed := 0; seed < 5; seed++ {
		systems := swmrSystems(t, m)
		rng := rand.New(rand.NewSource(int64(seed)))
		inputs := make(map[types.ProcessID][]byte, m.N)
		for _, id := range m.All() {
			inputs[id] = []byte(fmt.Sprintf("v%d", rng.Intn(2)))
		}
		commits := runVeryWeak(t, systems, func(p types.ProcessID) []byte { return inputs[p] })
		checkVeryWeakAgreement(t, commits)
	}
}

func TestVeryWeakToleratesNMinusOneFaults(t *testing.T) {
	// n > f is the whole requirement: with n=2, f=1 and the other process
	// silent (crashed), the lone correct process still commits.
	m := membership(t, 2, 1)
	systems := swmrSystems(t, m)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v, ok, err := agreement.VeryWeak(ctx, systems[0], 1, []byte("alone"))
	if err != nil {
		t.Fatalf("VeryWeak: %v", err)
	}
	if !ok || string(v) != "alone" {
		t.Fatalf("commit = (%q, %v)", v, ok)
	}
}

func runVeryWeak(t *testing.T, systems []rounds.System, input func(types.ProcessID) []byte) map[types.ProcessID]commit {
	t.Helper()
	commits := make(map[types.ProcessID]commit, len(systems))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, sys := range systems {
		wg.Add(1)
		go func(sys rounds.System) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			v, ok, err := agreement.VeryWeak(ctx, sys, 1, input(sys.Self()))
			if err != nil {
				t.Errorf("%v: VeryWeak: %v", sys.Self(), err)
				return
			}
			mu.Lock()
			commits[sys.Self()] = commit{value: v, ok: ok}
			mu.Unlock()
		}(sys)
	}
	wg.Wait()
	return commits
}

// --- non-equivocating broadcast ---

func TestNEBCorrectSenderAllCommit(t *testing.T) {
	m := membership(t, 4, 1)
	systems := swmrSystems(t, m)
	rings, err := sig.NewKeyrings(m, sig.HMAC, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}
	commits := make(map[types.ProcessID]commit, m.N)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, sys := range systems {
		wg.Add(1)
		go func(i int, sys rounds.System) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			v, ok, err := agreement.NonEquivocating(ctx, sys, rings[i], 1, 1, []byte("the-value"))
			if err != nil {
				t.Errorf("%v: NonEquivocating: %v", sys.Self(), err)
				return
			}
			mu.Lock()
			commits[sys.Self()] = commit{value: v, ok: ok}
			mu.Unlock()
		}(i, sys)
	}
	wg.Wait()
	for p, c := range commits {
		if !c.ok || string(c.value) != "the-value" {
			t.Fatalf("%v committed (%q, %v)", p, c.value, c.ok)
		}
	}
}

func TestNEBEquivocatingSenderNeverSplitsCommits(t *testing.T) {
	// The sender (p0, Byzantine) hand-signs two values and sends "left" to
	// p1 and "right" to p2, p3 over lock-step rounds. Whatever the correct
	// processes commit, no two of them commit different non-⊥ values.
	m := membership(t, 4, 1)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	rings, err := sig.NewKeyrings(m, sig.HMAC, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}
	live := m.Others(0)
	systems := make([]rounds.System, m.N)
	for i := 1; i < m.N; i++ {
		systems[i], err = rounds.NewLockstep(net.Endpoint(types.ProcessID(i)), m, rounds.WithLive(live))
		if err != nil {
			t.Fatalf("NewLockstep: %v", err)
		}
		defer systems[i].Close()
	}

	// Byzantine sends: raw round-1 messages with valid sender signatures.
	inject := func(to types.ProcessID, val string) {
		body := agreement.EncodeNEBForTest(rings[0], 0, 1, []byte(val))
		net.Inject(0, to, rounds.EncodeMessage(1, body))
	}
	inject(1, "left")
	inject(2, "right")
	inject(3, "right")

	commits := make(map[types.ProcessID]commit, 3)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 1; i < m.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			v, ok, err := agreement.NonEquivocating(ctx, systems[i], rings[i], 0, 1, nil)
			if err != nil {
				t.Errorf("p%d: NonEquivocating: %v", i, err)
				return
			}
			mu.Lock()
			commits[types.ProcessID(i)] = commit{value: v, ok: ok}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	checkVeryWeakAgreement(t, commits)
	// Under lock-step (bidirectional) rounds everyone sees both values, so
	// in fact everyone must commit ⊥.
	for p, c := range commits {
		if c.ok {
			t.Fatalf("%v committed %q despite equivocation visible to all", p, c.value)
		}
	}
}

func TestNEBSilentSenderBlocksUntilContext(t *testing.T) {
	m := membership(t, 3, 1)
	systems := swmrSystems(t, m)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	rings, err := sig.NewKeyrings(m, sig.HMAC, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}
	// p1 waits on sender p0, which never sends.
	if _, _, err := agreement.NonEquivocating(ctx, systems[1], rings[1], 0, 1, nil); err == nil {
		t.Fatal("NonEquivocating returned despite silent sender")
	}
}
