package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	e := NewEncoder(64)
	e.Uint64(0xdeadbeefcafe)
	e.Uint32(42)
	e.Int(-7)
	e.Byte(0xab)
	e.Bool(true)
	e.Bool(false)
	e.BytesField([]byte("payload"))
	e.String("hello")
	e.BytesField(nil)

	d := NewDecoder(e.Bytes())
	if v := d.Uint64(); v != 0xdeadbeefcafe {
		t.Fatalf("Uint64 = %x", v)
	}
	if v := d.Uint32(); v != 42 {
		t.Fatalf("Uint32 = %d", v)
	}
	if v := d.Int(); v != -7 {
		t.Fatalf("Int = %d", v)
	}
	if v := d.Byte(); v != 0xab {
		t.Fatalf("Byte = %x", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool mismatch")
	}
	if v := d.BytesField(); string(v) != "payload" {
		t.Fatalf("BytesField = %q", v)
	}
	if v := d.String(); v != "hello" {
		t.Fatalf("String = %q", v)
	}
	if v := d.BytesField(); len(v) != 0 {
		t.Fatalf("empty BytesField = %q", v)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestTruncatedInput(t *testing.T) {
	e := NewEncoder(16)
	e.Uint64(1)
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.Uint64()
		if !errors.Is(d.Err(), ErrTruncated) {
			t.Fatalf("cut=%d err = %v, want ErrTruncated", cut, d.Err())
		}
	}
}

func TestErrorLatching(t *testing.T) {
	d := NewDecoder([]byte{1, 2}) // too short for anything big
	_ = d.Uint64()                // fails
	first := d.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	_ = d.Uint32() // must not overwrite
	_ = d.BytesField()
	if !errors.Is(d.Err(), first) {
		t.Fatalf("latched error changed: %v -> %v", first, d.Err())
	}
}

func TestTrailingBytesDetected(t *testing.T) {
	e := NewEncoder(16)
	e.Uint32(1)
	e.Uint32(2)
	d := NewDecoder(e.Bytes())
	d.Uint32()
	if err := d.Finish(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("Finish = %v, want ErrTrailing", err)
	}
}

func TestHugeLengthPrefixRejected(t *testing.T) {
	e := NewEncoder(8)
	e.Uint32(1 << 30) // absurd length, no data
	d := NewDecoder(e.Bytes())
	if d.BytesField(); !errors.Is(d.Err(), ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", d.Err())
	}
}

func TestLengthPrefixBeyondInputRejected(t *testing.T) {
	e := NewEncoder(8)
	e.Uint32(100) // claims 100 bytes, provides none
	d := NewDecoder(e.Bytes())
	if d.BytesField(); !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", d.Err())
	}
}

func TestReset(t *testing.T) {
	e := NewEncoder(8)
	e.Uint64(7)
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Len after Reset = %d", e.Len())
	}
	e.Byte(1)
	if !bytes.Equal(e.Bytes(), []byte{1}) {
		t.Fatalf("Bytes after Reset+Byte = %v", e.Bytes())
	}
}

func TestQuickRoundTrip(t *testing.T) {
	// Property: any (uint64, bytes, string, bool) record round-trips and is
	// canonical (re-encoding the decoded values yields identical bytes).
	f := func(a uint64, b []byte, s string, flag bool) bool {
		enc := func(a uint64, b []byte, s string, flag bool) []byte {
			e := NewEncoder(32)
			e.Uint64(a)
			e.BytesField(b)
			e.String(s)
			e.Bool(flag)
			return e.Bytes()
		}
		buf := enc(a, b, s, flag)
		d := NewDecoder(buf)
		a2 := d.Uint64()
		b2 := append([]byte(nil), d.BytesField()...)
		s2 := d.String()
		f2 := d.Bool()
		if d.Finish() != nil {
			return false
		}
		if a2 != a || !bytes.Equal(b2, b) || s2 != s || f2 != flag {
			return false
		}
		return bytes.Equal(enc(a2, b2, s2, f2), buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		e := NewEncoder(8)
		e.Int(int(v))
		d := NewDecoder(e.Bytes())
		got := d.Int()
		return d.Finish() == nil && got == int(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderAliasesInput(t *testing.T) {
	// Documented sharp edge: BytesField aliases the input buffer.
	e := NewEncoder(16)
	e.BytesField([]byte("abc"))
	buf := e.Bytes()
	d := NewDecoder(buf)
	got := d.BytesField()
	buf[4] = 'X' // first data byte (after 4-byte length)
	if string(got) != "Xbc" {
		t.Fatalf("expected aliasing, got %q", got)
	}
}

func TestEncoderPoolReuse(t *testing.T) {
	e := GetEncoder()
	e.String("hello")
	e.Uint64(42)
	first := append([]byte(nil), e.Bytes()...)
	PutEncoder(e)

	// A fresh pooled encoder starts empty and produces identical bytes for
	// identical input, regardless of what a previous user wrote.
	e2 := GetEncoder()
	defer PutEncoder(e2)
	if e2.Len() != 0 {
		t.Fatalf("pooled encoder not reset: %d bytes", e2.Len())
	}
	e2.String("hello")
	e2.Uint64(42)
	if !bytes.Equal(e2.Bytes(), first) {
		t.Fatalf("pooled encoding differs: %x vs %x", e2.Bytes(), first)
	}
}

func TestEncoderPoolConcurrent(t *testing.T) {
	// Pool discipline under -race: concurrent get/encode/put never shares
	// a buffer between goroutines.
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 500; i++ {
				e := GetEncoder()
				e.Int(g)
				e.Int(i)
				d := NewDecoder(e.Bytes())
				gotG, gotI := d.Int(), d.Int()
				if err := d.Finish(); err != nil || gotG != g || gotI != i {
					PutEncoder(e)
					done <- errors.New("pooled encoder buffer corrupted")
					return
				}
				PutEncoder(e)
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
