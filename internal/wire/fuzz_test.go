package wire

import (
	"bytes"
	"testing"
)

// FuzzDecoder drives the decoder over arbitrary input: it must never panic,
// and whatever it accepts must re-encode to the identical bytes (the
// canonical-encoding property signatures depend on).
func FuzzDecoder(f *testing.F) {
	seed := NewEncoder(64)
	seed.Uint64(42)
	seed.Uint32(7)
	seed.Byte(3)
	seed.Bool(true)
	seed.BytesField([]byte("payload"))
	seed.String("name")
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		u64 := d.Uint64()
		u32 := d.Uint32()
		b := d.Byte()
		ok := d.Bool()
		bf := d.BytesField()
		s := d.String()
		if err := d.Finish(); err != nil {
			return
		}
		e := NewEncoder(len(data))
		e.Uint64(u64)
		e.Uint32(u32)
		e.Byte(b)
		e.Bool(ok)
		e.BytesField(bf)
		e.String(s)
		// Bool is canonical on encode (0/1) but tolerant on decode, so skip
		// inputs using a nonzero byte other than 1 for true.
		if data[12] > 1 {
			return
		}
		if !bytes.Equal(e.Bytes(), data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, e.Bytes())
		}
	})
}

// FuzzFrameSize checks the frame-prefix helpers: any size within the payload
// bound round-trips with either flag value, and the flag never corrupts the
// size.
func FuzzFrameSize(f *testing.F) {
	f.Add(uint32(0), true)
	f.Add(uint32(MaxPayload), false)
	f.Fuzz(func(t *testing.T, n uint32, traced bool) {
		if n > MaxPayload {
			n %= MaxPayload + 1
		}
		enc := EncodeFrameSize(int(n), traced)
		size, gotTraced := DecodeFrameSize(enc)
		if size != n || gotTraced != traced {
			t.Fatalf("round trip: (%d,%v) -> %x -> (%d,%v)", n, traced, enc, size, gotTraced)
		}
	})
}
