// Package wire provides a small, deterministic, allocation-conscious binary
// encoding used for every message and attestation in the library.
//
// Signatures are computed over wire-encoded bytes, so the encoding must be
// canonical: encoding the same logical value always yields the same bytes.
// encoding/gob does not guarantee this across streams (it emits type
// descriptors statefully), and encoding/json is both slower and not canonical
// for maps, so the library uses this explicit little-endian TLV-free format:
// fixed-width integers and length-prefixed byte strings, written in a fixed
// field order by each message type.
//
// The two core types are Encoder (append-only buffer writer) and Decoder
// (sequential reader that latches the first error, so call sites can decode a
// whole struct and check the error once at the end).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// MaxPayload is the maximum length accepted for a single byte-string field.
// This is a defensive bound: a malformed or malicious length prefix must not
// cause a huge allocation. 64 MiB comfortably exceeds any message this
// library produces. Transports framing wire-encoded messages (tcpnet) size
// their frame limit from this constant so the two bounds cannot drift.
const MaxPayload = 64 << 20

const maxBytesLen = MaxPayload

// FrameTraceFlag is bit 31 of a transport frame's uint32 length prefix. The
// payload bound (MaxPayload < 2^31) leaves the top bit permanently zero in
// every frame ever emitted before trace propagation existed, so it is free
// to version-gate an optional trailing trace-context block: flag set means
// "a fixed-size trace context follows the payload". Old frames decode
// unchanged (flag clear), and new senders emit byte-identical frames when no
// trace context rides along.
const FrameTraceFlag uint32 = 1 << 31

// EncodeFrameSize builds a frame length prefix for a payload of n bytes,
// setting the trace flag when a trace block follows.
func EncodeFrameSize(n int, traced bool) uint32 {
	v := uint32(n)
	if traced {
		v |= FrameTraceFlag
	}
	return v
}

// DecodeFrameSize splits a frame length prefix into the payload size and the
// trace flag.
func DecodeFrameSize(v uint32) (size uint32, traced bool) {
	return v &^ FrameTraceFlag, v&FrameTraceFlag != 0
}

var (
	// ErrTruncated reports that the input ended before the field being read.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrTooLarge reports a length prefix exceeding the defensive bound.
	ErrTooLarge = errors.New("wire: byte string too large")
	// ErrTrailing reports unconsumed bytes after a complete decode.
	ErrTrailing = errors.New("wire: trailing bytes after message")
)

// Encoder accumulates a deterministic binary encoding. The zero value is
// ready to use. Encoders must not be copied after first use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with the given initial capacity hint.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the accumulated encoding. The slice aliases the encoder's
// internal buffer; callers that keep it must not append to the encoder again.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the encoder for reuse, retaining the allocated buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uint64 appends v as 8 little-endian bytes.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// Uint32 appends v as 4 little-endian bytes.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// Int appends v as a uint64. Negative values are rejected at decode time via
// the caller's own validation; the encoding itself is two's-complement.
func (e *Encoder) Int(v int) { e.Uint64(uint64(int64(v))) }

// Byte appends a single byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Bool appends a single byte: 1 for true, 0 for false.
func (e *Encoder) Bool(b bool) {
	if b {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// BytesField appends a length prefix (uint32) followed by b.
func (e *Encoder) BytesField(b []byte) {
	if len(b) > math.MaxUint32 {
		// Cannot happen for in-memory slices on 64-bit, but keep the
		// encoding total.
		panic("wire: byte string exceeds uint32 length")
	}
	e.Uint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.Uint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// encoderPool recycles Encoders for transient encodings — statements that
// are signed or verified and then discarded. The hot protocol paths encode
// the same small statements (value/echo/L1 bindings, attestation bodies)
// for every message; pooling removes those per-message allocations.
var encoderPool = sync.Pool{
	New: func() any { return &Encoder{buf: make([]byte, 0, 512)} },
}

// GetEncoder returns a reset Encoder from the pool. Pair with PutEncoder.
// Use only for transient encodings: once the encoder is returned to the
// pool, any slice obtained from Bytes is invalid. Encodings that outlive
// the call site (message payloads handed to a transport, fields stored in
// protocol state) must use NewEncoder instead.
func GetEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.Reset()
	return e
}

// PutEncoder returns e to the pool. The caller must not use e, or any
// slice previously returned by e.Bytes, after this call.
func PutEncoder(e *Encoder) {
	// Drop oversized buffers instead of pinning them in the pool.
	if cap(e.buf) > 64<<10 {
		return
	}
	encoderPool.Put(e)
}

// Decoder reads values sequentially from a buffer. The first failure is
// latched: subsequent reads return zero values and Err reports the failure.
// This lets decode functions read every field unconditionally and perform a
// single error check.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a Decoder over buf. The decoder does not copy buf;
// byte-string fields returned by BytesField alias it.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first error encountered, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns an error if decoding failed or input remains unconsumed.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n {
		d.fail(fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, d.Remaining()))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint64 reads 8 little-endian bytes.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Uint32 reads 4 little-endian bytes.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Int reads a uint64 and converts it back to int.
func (d *Decoder) Int() int { return int(int64(d.Uint64())) }

// Byte reads a single byte.
func (d *Decoder) Byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a single byte and interprets any nonzero value as true.
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// BytesField reads a length-prefixed byte string. The returned slice aliases
// the decoder's input; callers that retain it across input reuse must copy.
func (d *Decoder) BytesField() []byte {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if n > maxBytesLen {
		d.fail(fmt.Errorf("%w: %d bytes", ErrTooLarge, n))
		return nil
	}
	return d.take(int(n))
}

// String reads a length-prefixed string (copying out of the input buffer).
func (d *Decoder) String() string { return string(d.BytesField()) }
