package types

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewMembershipValidation(t *testing.T) {
	cases := []struct {
		n, f int
		ok   bool
	}{
		{1, 0, true},
		{3, 1, true},
		{4, 1, true},
		{7, 3, true},
		{0, 0, false},
		{-1, 0, false},
		{3, 3, false},
		{3, -1, false},
		{2, 2, false},
	}
	for _, tc := range cases {
		_, err := NewMembership(tc.n, tc.f)
		if (err == nil) != tc.ok {
			t.Errorf("NewMembership(%d,%d) err = %v, want ok=%v", tc.n, tc.f, err, tc.ok)
		}
		if err != nil && !errors.Is(err, ErrInvalidMembership) {
			t.Errorf("NewMembership(%d,%d) err = %v, want ErrInvalidMembership", tc.n, tc.f, err)
		}
	}
}

func TestQuorumSizes(t *testing.T) {
	cases := []struct {
		n, f   int
		quorum int
	}{
		{4, 1, 3},  // PBFT: 2f+1
		{7, 2, 5},  // PBFT: 2f+1
		{10, 3, 7}, // PBFT: 2f+1
		{3, 1, 3},  // n=2f+1: quorum is all
		{5, 2, 4},  // n=2f+1
		{1, 0, 1},  // singleton
	}
	for _, tc := range cases {
		m, err := NewMembership(tc.n, tc.f)
		if err != nil {
			t.Fatalf("membership(%d,%d): %v", tc.n, tc.f, err)
		}
		if got := m.Quorum(); got != tc.quorum {
			t.Errorf("Quorum(n=%d,f=%d) = %d, want %d", tc.n, tc.f, got, tc.quorum)
		}
		if got := m.FPlusOne(); got != tc.f+1 {
			t.Errorf("FPlusOne = %d, want %d", got, tc.f+1)
		}
		if got := m.Correct(); got != tc.n-tc.f {
			t.Errorf("Correct = %d, want %d", got, tc.n-tc.f)
		}
	}
}

func TestContains(t *testing.T) {
	m, _ := NewMembership(3, 1)
	for _, id := range []ProcessID{0, 1, 2} {
		if !m.Contains(id) {
			t.Errorf("Contains(%v) = false", id)
		}
	}
	for _, id := range []ProcessID{-1, 3, 100} {
		if m.Contains(id) {
			t.Errorf("Contains(%v) = true", id)
		}
	}
}

func TestAllAndOthers(t *testing.T) {
	m, _ := NewMembership(4, 1)
	all := m.All()
	if len(all) != 4 || all[0] != 0 || all[3] != 3 {
		t.Fatalf("All = %v", all)
	}
	others := m.Others(2)
	if len(others) != 3 {
		t.Fatalf("Others = %v", others)
	}
	for _, id := range others {
		if id == 2 {
			t.Fatalf("Others contains self: %v", others)
		}
	}
}

func TestLeaderRotation(t *testing.T) {
	m, _ := NewMembership(4, 1)
	for v := View(0); v < 12; v++ {
		want := ProcessID(int(v) % 4)
		if got := m.Leader(v); got != want {
			t.Fatalf("Leader(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestQuickQuorumIntersection(t *testing.T) {
	// Property: two quorums always intersect in at least f+1 processes,
	// hence in at least one correct process.
	f := func(n8, f8 uint8) bool {
		n := int(n8%20) + 1
		fv := int(f8) % n
		m, err := NewMembership(n, fv)
		if err != nil {
			return false
		}
		q := m.Quorum()
		if q > n {
			return false // quorum must be attainable
		}
		// |Q1 ∩ Q2| >= 2q - n must exceed f.
		return 2*q-n >= fv+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if ProcessID(3).String() != "p3" {
		t.Fatalf("ProcessID.String = %q", ProcessID(3).String())
	}
}
