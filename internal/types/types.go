// Package types defines the identifiers and small value types shared by every
// subsystem in the library: process identities, sequence numbers, round
// numbers, and the membership descriptor that protocols are configured with.
//
// The package is intentionally dependency-free so that every other package
// (transport, trusted hardware, protocols) can import it without cycles.
package types

import (
	"errors"
	"fmt"
)

// ProcessID identifies a process (replica) in the system. IDs are dense
// integers in [0, N) as is conventional for BFT protocol descriptions; the
// zero value is a valid ID, so membership checks must use Membership.Contains
// rather than comparing against zero.
type ProcessID int

// String implements fmt.Stringer ("p3"-style, matching the paper's notation).
func (p ProcessID) String() string { return fmt.Sprintf("p%d", int(p)) }

// SeqNum is a per-sender message sequence number. Sequenced reliable
// broadcast numbers messages from 1; 0 means "no message yet".
type SeqNum uint64

// Round numbers a communication round of a round system. Rounds start at 1;
// 0 means "before the first round".
type Round uint64

// View numbers a leader term in the SMR protocols (MinBFT, PBFT).
type View uint64

// ErrInvalidMembership reports an inconsistent (n, f) configuration.
var ErrInvalidMembership = errors.New("types: invalid membership")

// Membership describes the static process group a protocol instance runs in:
// the total number of processes N and the failure threshold F the instance
// was configured to tolerate. Protocols validate their own resilience
// requirement (for example n >= 2f+1 for MinBFT) at construction time.
type Membership struct {
	N int // total number of processes, IDs 0..N-1
	F int // maximum number of Byzantine processes tolerated
}

// NewMembership validates and returns a membership of n processes tolerating
// f Byzantine failures. It enforces only basic sanity (n >= 1, 0 <= f < n);
// protocol-specific resilience bounds are checked by each protocol.
func NewMembership(n, f int) (Membership, error) {
	if n < 1 {
		return Membership{}, fmt.Errorf("%w: n=%d must be >= 1", ErrInvalidMembership, n)
	}
	if f < 0 || f >= n {
		return Membership{}, fmt.Errorf("%w: f=%d must be in [0, n) with n=%d", ErrInvalidMembership, f, n)
	}
	return Membership{N: n, F: f}, nil
}

// Contains reports whether id is a member of the group.
func (m Membership) Contains(id ProcessID) bool {
	return id >= 0 && int(id) < m.N
}

// Quorum returns the smallest quorum size guaranteed to intersect any other
// quorum in at least one correct process: ceil((n+f+1)/2). For the classic
// n = 3f+1 this is 2f+1. Protocols whose substrate already prevents
// equivocation typically use f+1 instead (see FPlusOne).
func (m Membership) Quorum() int {
	return (m.N + m.F + 2) / 2
}

// FPlusOne returns f+1, the quorum used by protocols whose non-equivocation
// substrate guarantees that any two quorums of f+1 intersect in a correct
// process's *single* possible statement (MinBFT commits, L1/L2 proofs).
func (m Membership) FPlusOne() int { return m.F + 1 }

// Correct returns n-f, the number of processes guaranteed to be correct and
// therefore the largest count a process may block on in an asynchronous wait.
func (m Membership) Correct() int { return m.N - m.F }

// All returns the slice of all process IDs [0, N). The slice is freshly
// allocated; callers may mutate it.
func (m Membership) All() []ProcessID {
	ids := make([]ProcessID, m.N)
	for i := range ids {
		ids[i] = ProcessID(i)
	}
	return ids
}

// Others returns all process IDs except self, freshly allocated.
func (m Membership) Others(self ProcessID) []ProcessID {
	ids := make([]ProcessID, 0, m.N-1)
	for i := 0; i < m.N; i++ {
		if ProcessID(i) != self {
			ids = append(ids, ProcessID(i))
		}
	}
	return ids
}

// Leader returns the round-robin leader of the given view.
func (m Membership) Leader(v View) ProcessID {
	return ProcessID(uint64(v) % uint64(m.N))
}

// Validate reports an error if the membership is structurally invalid. A zero
// Membership is invalid (n must be at least 1).
func (m Membership) Validate() error {
	_, err := NewMembership(m.N, m.F)
	return err
}
