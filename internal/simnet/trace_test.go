package simnet_test

import (
	"context"
	"testing"
	"time"

	"unidir/internal/obs/tracing"
	"unidir/internal/simnet"
	"unidir/internal/types"
)

// TestTraceSurvivesLinkRules proves the trace context rides through every
// simnet delivery path: direct, held/released (manual mode), and
// blocked/healed links.
func TestTraceSurvivesLinkRules(t *testing.T) {
	m, err := types.NewMembership(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := simnet.New(m)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	tr := tracing.NewTracer("n0", 1, nil)
	sp := tr.Root("op")
	tc := sp.Context()
	defer sp.End()

	recv := func(id types.ProcessID) tracing.Context {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		env, err := net.Endpoint(id).Recv(ctx)
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		return env.Trace
	}

	// Direct.
	if err := net.Endpoint(0).SendTraced(1, []byte("direct"), tc); err != nil {
		t.Fatal(err)
	}
	if got := recv(1); got != tc {
		t.Fatalf("direct delivery lost trace: %+v", got)
	}

	// Held and released in manual mode.
	net.Hold()
	if err := net.Endpoint(0).SendTraced(1, []byte("held"), tc); err != nil {
		t.Fatal(err)
	}
	pend := net.Pending()
	if len(pend) != 1 || pend[0].Trace != tc {
		t.Fatalf("pending snapshot lost trace: %+v", pend)
	}
	net.Resume()
	if got := recv(1); got != tc {
		t.Fatalf("release lost trace: %+v", got)
	}

	// Buffered on a blocked link, then healed.
	net.Block(0, 2)
	if err := net.Endpoint(0).SendTraced(2, []byte("blocked"), tc); err != nil {
		t.Fatal(err)
	}
	net.Heal(0, 2)
	if got := recv(2); got != tc {
		t.Fatalf("heal lost trace: %+v", got)
	}

	// Plain Send still delivers a zero context.
	if err := net.Endpoint(0).Send(1, []byte("plain")); err != nil {
		t.Fatal(err)
	}
	if got := recv(1); got.Valid() {
		t.Fatalf("plain send grew a trace: %+v", got)
	}
}
