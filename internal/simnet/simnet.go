// Package simnet implements an in-memory simulated asynchronous network with
// full adversarial control, behind the transport.Transport interface.
//
// The asynchronous adversary of the paper chooses message delivery order and
// delays arbitrarily (but must eventually deliver unless a process is
// faulty). simnet exposes exactly that power to tests and experiments:
//
//   - Auto mode (default): messages are delivered immediately, or after a
//     per-link delay / seeded random jitter if configured. This is the fast
//     path for benchmarks and liveness tests. Delayed links preserve send
//     order (an ordered per-link queue, like a TCP stream) — delay models
//     latency, not reordering; reordering schedules belong to manual mode.
//   - Blocked links: Block(from, to) holds all messages on a link in a
//     per-link buffer; Heal releases them in order. This models "arbitrarily
//     delayed" — exactly what the separation argument (§4.1) needs.
//   - Drops: SetDropRate discards a fraction of messages on a link (models
//     crashed receivers or lossy links for failure-injection tests).
//   - Manual mode: Hold() diverts every subsequent send into a pending list;
//     the test releases messages one at a time (Release, ReleaseWhere,
//     ReleaseAll), giving fully deterministic worst-case schedules.
//
// All mutable state is guarded by one mutex; endpoints use unbounded
// mailboxes so protocol goroutines can never deadlock through the network.
// An optional Trace hook observes every send/deliver/drop for the execution
// recorders in internal/core.
package simnet

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"unidir/internal/obs/tracing"
	"unidir/internal/transport"
	"unidir/internal/types"
)

// Event is a network trace event passed to the Trace hook.
type Event struct {
	Kind    EventKind
	From    types.ProcessID
	To      types.ProcessID
	Payload []byte
	Time    time.Time
}

// EventKind discriminates trace events.
type EventKind int

// Trace event kinds.
const (
	EventSend EventKind = iota + 1 // message entered the network
	EventDeliver
	EventDrop
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventSend:
		return "send"
	case EventDeliver:
		return "deliver"
	case EventDrop:
		return "drop"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Option configures a Network.
type Option func(*Network)

// WithTrace installs a hook invoked (synchronously, without the network lock
// held for delivers; see implementation notes) for every event.
func WithTrace(hook func(Event)) Option {
	return func(n *Network) { n.trace = hook }
}

// WithJitter delivers every message after a random delay uniform in
// [0, max), drawn from a PRNG seeded with seed. Zero max means immediate.
func WithJitter(max time.Duration, seed int64) Option {
	return func(n *Network) {
		n.jitterMax = max
		n.rng = rand.New(rand.NewSource(seed))
	}
}

// Network is the simulated network connecting one membership's processes.
type Network struct {
	m     types.Membership
	trace func(Event)

	mu        sync.Mutex
	endpoints []*Endpoint
	links     map[linkKey]*linkState
	held      bool // manual mode
	pending   []Pending
	nextID    uint64
	closed    bool
	jitterMax time.Duration
	rng       *rand.Rand
	timers    map[*time.Timer]struct{}
}

type linkKey struct {
	from, to types.ProcessID
}

type linkState struct {
	blocked  bool
	buffered []heldMsg // messages held while blocked, FIFO
	dropRate float64
	delay    time.Duration
	delayQ   []delayedMsg // delayed messages awaiting delivery, FIFO
	draining bool         // a drainLink goroutine owns delayQ's head
}

// delayedMsg is one message sitting in a link's ordered delay queue.
type delayedMsg struct {
	deliverAt time.Time
	payload   []byte
	tc        tracing.Context
}

// heldMsg is one buffered message with the trace context that rode with it.
type heldMsg struct {
	payload []byte
	tc      tracing.Context
}

// Pending is one message awaiting release in manual mode.
type Pending struct {
	ID      uint64
	From    types.ProcessID
	To      types.ProcessID
	Payload []byte
	// Trace is the context propagated with the message (zero when the
	// sender attached none); it survives hold/release unchanged.
	Trace tracing.Context
}

// New creates a simulated network for membership m with one endpoint per
// process.
func New(m types.Membership, opts ...Option) (*Network, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		m:      m,
		links:  make(map[linkKey]*linkState),
		timers: make(map[*time.Timer]struct{}),
	}
	for _, opt := range opts {
		opt(n)
	}
	n.endpoints = make([]*Endpoint, m.N)
	for i := 0; i < m.N; i++ {
		n.endpoints[i] = &Endpoint{
			net:    n,
			self:   types.ProcessID(i),
			notify: make(chan struct{}, 1),
		}
	}
	return n, nil
}

// Membership returns the membership the network was created with.
func (n *Network) Membership() types.Membership { return n.m }

// Endpoint returns the transport endpoint for process id.
func (n *Network) Endpoint(id types.ProcessID) *Endpoint {
	if !n.m.Contains(id) {
		panic(fmt.Sprintf("simnet: endpoint for non-member %v", id))
	}
	return n.endpoints[id]
}

// Endpoints returns all endpoints indexed by ProcessID, as the
// transport.Transport interface.
func (n *Network) Endpoints() []transport.Transport {
	out := make([]transport.Transport, len(n.endpoints))
	for i, ep := range n.endpoints {
		out[i] = ep
	}
	return out
}

// Close shuts the network down: pending timers are stopped, all endpoints'
// Recv calls unblock with transport.ErrClosed, and subsequent sends fail.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	for t := range n.timers {
		t.Stop()
	}
	n.timers = map[*time.Timer]struct{}{}
	eps := n.endpoints
	n.mu.Unlock()
	for _, ep := range eps {
		ep.close()
	}
}

func (n *Network) link(from, to types.ProcessID) *linkState {
	key := linkKey{from, to}
	ls := n.links[key]
	if ls == nil {
		ls = &linkState{}
		n.links[key] = ls
	}
	return ls
}

// --- adversarial controls ---

// Block holds all future messages from→to in a buffer until Heal. Blocking
// models the asynchronous adversary's "arbitrarily delayed" links.
func (n *Network) Block(from, to types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.link(from, to).blocked = true
}

// BlockPair blocks both directions between a and b.
func (n *Network) BlockPair(a, b types.ProcessID) {
	n.Block(a, b)
	n.Block(b, a)
}

// BlockSets blocks every link from a process in as to a process in bs, in
// both directions. Used to build the partitions of the separation argument.
func (n *Network) BlockSets(as, bs []types.ProcessID) {
	for _, a := range as {
		for _, b := range bs {
			n.BlockPair(a, b)
		}
	}
}

// Heal unblocks from→to and delivers, in order, every message buffered while
// the link was blocked.
func (n *Network) Heal(from, to types.ProcessID) {
	n.mu.Lock()
	ls := n.link(from, to)
	ls.blocked = false
	buffered := ls.buffered
	ls.buffered = nil
	n.mu.Unlock()
	for _, m := range buffered {
		n.inject(from, to, m.payload, m.tc)
	}
}

// HealAll unblocks every link and flushes all buffered messages.
func (n *Network) HealAll() {
	n.mu.Lock()
	type flush struct {
		from, to types.ProcessID
		payloads []heldMsg
	}
	var flushes []flush
	for key, ls := range n.links {
		if ls.blocked || len(ls.buffered) > 0 {
			ls.blocked = false
			flushes = append(flushes, flush{key.from, key.to, ls.buffered})
			ls.buffered = nil
		}
	}
	n.mu.Unlock()
	for _, f := range flushes {
		for _, m := range f.payloads {
			n.inject(f.from, f.to, m.payload, m.tc)
		}
	}
}

// SetDropRate makes the link from→to silently discard each message with
// probability rate (using the network's seeded PRNG; configure WithJitter or
// the default deterministic source). rate outside [0,1] is clamped.
func (n *Network) SetDropRate(from, to types.ProcessID, rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.rng == nil {
		n.rng = rand.New(rand.NewSource(1))
	}
	n.link(from, to).dropRate = rate
}

// SetLinkDelay delivers messages on from→to after d (in auto mode).
func (n *Network) SetLinkDelay(from, to types.ProcessID, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.link(from, to).delay = d
}

// Hold switches the network to manual mode: every subsequent send is
// appended to the pending list instead of being delivered. Messages already
// in flight are unaffected.
func (n *Network) Hold() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.held = true
}

// Resume switches back to auto mode and delivers all pending messages in
// send order.
func (n *Network) Resume() {
	n.mu.Lock()
	n.held = false
	pending := n.pending
	n.pending = nil
	n.mu.Unlock()
	for _, p := range pending {
		n.inject(p.From, p.To, p.Payload, p.Trace)
	}
}

// Pending returns a snapshot of messages awaiting release in manual mode.
func (n *Network) Pending() []Pending {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Pending, len(n.pending))
	copy(out, n.pending)
	return out
}

// Release delivers the pending message with the given ID. It reports whether
// the ID was found.
func (n *Network) Release(id uint64) bool {
	n.mu.Lock()
	var msg *Pending
	for i := range n.pending {
		if n.pending[i].ID == id {
			m := n.pending[i]
			msg = &m
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			break
		}
	}
	n.mu.Unlock()
	if msg == nil {
		return false
	}
	n.inject(msg.From, msg.To, msg.Payload, msg.Trace)
	return true
}

// ReleaseWhere delivers (in send order) every pending message for which pred
// returns true, and returns how many were delivered. Messages sent *during*
// the release (for example protocol responses) are held again if the network
// is still in manual mode; call repeatedly or use ReleaseUntilQuiescent.
func (n *Network) ReleaseWhere(pred func(Pending) bool) int {
	n.mu.Lock()
	var release []Pending
	var keep []Pending
	for _, p := range n.pending {
		if pred(p) {
			release = append(release, p)
		} else {
			keep = append(keep, p)
		}
	}
	n.pending = keep
	n.mu.Unlock()
	for _, p := range release {
		n.inject(p.From, p.To, p.Payload, p.Trace)
	}
	return len(release)
}

// ReleaseAll delivers every currently pending message in send order (the
// network stays in manual mode; new sends are held).
func (n *Network) ReleaseAll() int {
	return n.ReleaseWhere(func(Pending) bool { return true })
}

// ReleaseUntilQuiescent repeatedly releases pending messages matching pred
// until no matching message remains, sleeping settle between passes so that
// protocol goroutines can react and send follow-ups. It returns the total
// number of messages delivered. Use this to drive a protocol "to completion"
// along adversary-approved links only.
func (n *Network) ReleaseUntilQuiescent(pred func(Pending) bool, settle time.Duration, maxPasses int) int {
	total := 0
	for pass := 0; pass < maxPasses; pass++ {
		released := n.ReleaseWhere(pred)
		total += released
		time.Sleep(settle)
		if released == 0 && len(n.matching(pred)) == 0 {
			return total
		}
	}
	return total
}

func (n *Network) matching(pred func(Pending) bool) []Pending {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []Pending
	for _, p := range n.pending {
		if pred(p) {
			out = append(out, p)
		}
	}
	return out
}

// --- delivery paths ---

// send is called by endpoints. It applies, in order: closed check, manual
// hold, drop rate, block buffering, delay, then direct injection.
func (n *Network) send(from, to types.ProcessID, payload []byte, tc tracing.Context) error {
	if !n.m.Contains(to) {
		return fmt.Errorf("simnet: send to non-member %v", to)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return transport.ErrClosed
	}
	if n.trace != nil {
		n.traceLocked(Event{Kind: EventSend, From: from, To: to, Payload: payload, Time: time.Now()})
	}
	if n.held {
		n.nextID++
		n.pending = append(n.pending, Pending{ID: n.nextID, From: from, To: to, Payload: payload, Trace: tc})
		n.mu.Unlock()
		return nil
	}
	ls := n.link(from, to)
	if ls.dropRate > 0 && n.rng.Float64() < ls.dropRate {
		if n.trace != nil {
			n.traceLocked(Event{Kind: EventDrop, From: from, To: to, Payload: payload, Time: time.Now()})
		}
		n.mu.Unlock()
		return nil
	}
	if ls.blocked {
		ls.buffered = append(ls.buffered, heldMsg{payload: payload, tc: tc})
		n.mu.Unlock()
		return nil
	}
	delay := ls.delay
	if n.jitterMax > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.jitterMax)))
	}
	if delay > 0 {
		// Delayed links are order-preserving, like a TCP stream: each
		// message's delivery time is clamped to be no earlier than its
		// predecessor's, and one per-link queue delivers in send order. A
		// timer per message would race the scheduler instead — under load,
		// timer goroutines fire out of order and adjacent messages swap,
		// which is a reordering adversary the caller didn't ask for (tests
		// that want reordering use Hold/Release). Jitter stretches latency
		// per message but never reorders within a link either.
		deliverAt := time.Now().Add(delay)
		if k := len(ls.delayQ); k > 0 && ls.delayQ[k-1].deliverAt.After(deliverAt) {
			deliverAt = ls.delayQ[k-1].deliverAt
		}
		ls.delayQ = append(ls.delayQ, delayedMsg{deliverAt: deliverAt, payload: payload, tc: tc})
		if !ls.draining && len(ls.delayQ) == 1 {
			n.armLinkTimerLocked(from, to, ls)
		}
		n.mu.Unlock()
		return nil
	}
	n.mu.Unlock()
	n.inject(from, to, payload, tc)
	return nil
}

// armLinkTimerLocked schedules a drain of from→to's delay queue when its
// head comes due. Caller holds n.mu; the queue must be non-empty and not
// currently draining. Invariant: a non-empty, non-draining queue always has
// exactly one timer armed for its head.
func (n *Network) armLinkTimerLocked(from, to types.ProcessID, ls *linkState) {
	d := time.Until(ls.delayQ[0].deliverAt)
	var timer *time.Timer
	timer = time.AfterFunc(d, func() {
		n.mu.Lock()
		delete(n.timers, timer)
		if n.closed || ls.draining {
			n.mu.Unlock()
			return
		}
		ls.draining = true
		n.mu.Unlock()
		n.drainLink(from, to, ls)
	})
	n.timers[timer] = struct{}{}
}

// drainLink delivers every due message on from→to's delay queue in send
// order, then either re-arms the head timer (future messages remain) or
// goes idle. One drainer owns the queue head at a time (ls.draining), so
// deliveries from consecutive timer firings cannot interleave out of order.
func (n *Network) drainLink(from, to types.ProcessID, ls *linkState) {
	for {
		n.mu.Lock()
		if n.closed {
			ls.draining = false
			n.mu.Unlock()
			return
		}
		now := time.Now()
		due := 0
		for due < len(ls.delayQ) && !ls.delayQ[due].deliverAt.After(now) {
			due++
		}
		batch := ls.delayQ[:due:due]
		if rest := ls.delayQ[due:]; len(rest) > 0 {
			ls.delayQ = append([]delayedMsg(nil), rest...)
		} else {
			ls.delayQ = nil
		}
		if len(batch) == 0 {
			ls.draining = false
			if len(ls.delayQ) > 0 {
				n.armLinkTimerLocked(from, to, ls)
			}
			n.mu.Unlock()
			return
		}
		n.mu.Unlock()
		for _, dm := range batch {
			n.inject(from, to, dm.payload, dm.tc)
		}
	}
}

// inject delivers a message to the destination mailbox, bypassing all link
// rules. It is the single point through which every delivery flows.
func (n *Network) inject(from, to types.ProcessID, payload []byte, tc tracing.Context) {
	n.mu.Lock()
	closed := n.closed
	trace := n.trace
	n.mu.Unlock()
	if closed {
		return
	}
	if trace != nil {
		trace(Event{Kind: EventDeliver, From: from, To: to, Payload: payload, Time: time.Now()})
	}
	n.endpoints[to].enqueue(transport.Envelope{From: from, To: to, Payload: payload, Trace: tc})
}

// Inject delivers a fabricated message, bypassing link rules. Byzantine
// tests use it to model messages from compromised processes without running
// protocol code for them.
func (n *Network) Inject(from, to types.ProcessID, payload []byte) {
	n.inject(from, to, payload, tracing.Context{})
}

// traceLocked invokes the trace hook while holding n.mu. Hooks must not call
// back into the network.
func (n *Network) traceLocked(ev Event) { n.trace(ev) }

// --- Endpoint ---

// Endpoint is one process's mailbox-backed transport endpoint.
type Endpoint struct {
	net  *Network
	self types.ProcessID

	mu     sync.Mutex
	queue  []transport.Envelope
	notify chan struct{}
	closed bool
}

var (
	_ transport.Transport   = (*Endpoint)(nil)
	_ transport.TraceSender = (*Endpoint)(nil)
)

// Self returns the endpoint's process ID.
func (e *Endpoint) Self() types.ProcessID { return e.self }

// Send enqueues payload for delivery to the destination process.
func (e *Endpoint) Send(to types.ProcessID, payload []byte) error {
	return e.net.send(e.self, to, payload, tracing.Context{})
}

// SendTraced is Send with a trace context that rides through every link
// rule (hold, block, delay) to the destination's Envelope.
func (e *Endpoint) SendTraced(to types.ProcessID, payload []byte, tc tracing.Context) error {
	return e.net.send(e.self, to, payload, tc)
}

// Recv returns the next delivered message, blocking until one arrives, ctx
// is done, or the endpoint is closed.
func (e *Endpoint) Recv(ctx context.Context) (transport.Envelope, error) {
	for {
		e.mu.Lock()
		if len(e.queue) > 0 {
			env := e.queue[0]
			e.queue = e.queue[1:]
			e.mu.Unlock()
			return env, nil
		}
		if e.closed {
			e.mu.Unlock()
			return transport.Envelope{}, transport.ErrClosed
		}
		e.mu.Unlock()
		select {
		case <-e.notify:
		case <-ctx.Done():
			return transport.Envelope{}, ctx.Err()
		}
	}
}

// Close unblocks pending Recv calls on this endpoint.
func (e *Endpoint) Close() error {
	e.close()
	return nil
}

func (e *Endpoint) enqueue(env transport.Envelope) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.queue = append(e.queue, env)
	e.mu.Unlock()
	select {
	case e.notify <- struct{}{}:
	default:
	}
}

func (e *Endpoint) close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	select {
	case e.notify <- struct{}{}:
	default:
	}
}
