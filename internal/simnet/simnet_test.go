package simnet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"unidir/internal/transport"
	"unidir/internal/types"
)

func newNet(t *testing.T, n int, opts ...Option) *Network {
	t.Helper()
	m, err := types.NewMembership(n, (n-1)/2)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	net, err := New(m, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(net.Close)
	return net
}

func recvOne(t *testing.T, ep *Endpoint, timeout time.Duration) transport.Envelope {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	env, err := ep.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	return env
}

func TestDirectDelivery(t *testing.T) {
	net := newNet(t, 3)
	if err := net.Endpoint(0).Send(2, []byte("hi")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	env := recvOne(t, net.Endpoint(2), time.Second)
	if env.From != 0 || env.To != 2 || string(env.Payload) != "hi" {
		t.Fatalf("env = %+v", env)
	}
}

func TestSelfDelivery(t *testing.T) {
	net := newNet(t, 2)
	if err := net.Endpoint(1).Send(1, []byte("loop")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	env := recvOne(t, net.Endpoint(1), time.Second)
	if env.From != 1 || string(env.Payload) != "loop" {
		t.Fatalf("env = %+v", env)
	}
}

func TestFIFOPerLink(t *testing.T) {
	net := newNet(t, 2)
	for i := 0; i < 50; i++ {
		if err := net.Endpoint(0).Send(1, []byte{byte(i)}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	for i := 0; i < 50; i++ {
		env := recvOne(t, net.Endpoint(1), time.Second)
		if env.Payload[0] != byte(i) {
			t.Fatalf("message %d arrived as %d", i, env.Payload[0])
		}
	}
}

func TestBlockAndHeal(t *testing.T) {
	net := newNet(t, 2)
	net.Block(0, 1)
	if err := net.Endpoint(0).Send(1, []byte("delayed")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := net.Endpoint(1).Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked link delivered: err=%v", err)
	}
	net.Heal(0, 1)
	env := recvOne(t, net.Endpoint(1), time.Second)
	if string(env.Payload) != "delayed" {
		t.Fatalf("payload = %q", env.Payload)
	}
}

func TestBlockIsDirectional(t *testing.T) {
	net := newNet(t, 2)
	net.Block(0, 1)
	if err := net.Endpoint(1).Send(0, []byte("reverse")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	env := recvOne(t, net.Endpoint(0), time.Second)
	if string(env.Payload) != "reverse" {
		t.Fatalf("payload = %q", env.Payload)
	}
}

func TestBlockSetsAndHealAll(t *testing.T) {
	net := newNet(t, 4)
	net.BlockSets([]types.ProcessID{0, 1}, []types.ProcessID{2, 3})
	for _, pair := range [][2]types.ProcessID{{0, 2}, {2, 0}, {1, 3}, {3, 1}} {
		if err := net.Endpoint(pair[0]).Send(pair[1], []byte("x")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	// Intra-set traffic still flows.
	if err := net.Endpoint(0).Send(1, []byte("intra")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	env := recvOne(t, net.Endpoint(1), time.Second)
	if string(env.Payload) != "intra" {
		t.Fatalf("payload = %q", env.Payload)
	}
	net.HealAll()
	for _, to := range []types.ProcessID{2, 0, 3, 1} {
		env := recvOne(t, net.Endpoint(to), time.Second)
		if string(env.Payload) != "x" {
			t.Fatalf("flushed payload = %q", env.Payload)
		}
	}
}

func TestManualModeHoldsAndReleases(t *testing.T) {
	net := newNet(t, 3)
	net.Hold()
	if err := net.Endpoint(0).Send(1, []byte("a")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := net.Endpoint(0).Send(2, []byte("b")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	pending := net.Pending()
	if len(pending) != 2 {
		t.Fatalf("Pending = %d, want 2", len(pending))
	}
	// Release only the message to process 2.
	released := net.ReleaseWhere(func(p Pending) bool { return p.To == 2 })
	if released != 1 {
		t.Fatalf("released %d, want 1", released)
	}
	env := recvOne(t, net.Endpoint(2), time.Second)
	if string(env.Payload) != "b" {
		t.Fatalf("payload = %q", env.Payload)
	}
	if got := len(net.Pending()); got != 1 {
		t.Fatalf("pending after release = %d, want 1", got)
	}
	// Release by ID.
	if !net.Release(net.Pending()[0].ID) {
		t.Fatal("Release by ID failed")
	}
	if net.Release(9999) {
		t.Fatal("Release of unknown ID succeeded")
	}
	env = recvOne(t, net.Endpoint(1), time.Second)
	if string(env.Payload) != "a" {
		t.Fatalf("payload = %q", env.Payload)
	}
}

func TestResumeFlushesPending(t *testing.T) {
	net := newNet(t, 2)
	net.Hold()
	_ = net.Endpoint(0).Send(1, []byte("queued"))
	net.Resume()
	env := recvOne(t, net.Endpoint(1), time.Second)
	if string(env.Payload) != "queued" {
		t.Fatalf("payload = %q", env.Payload)
	}
	// Auto mode is back: new sends deliver without release.
	_ = net.Endpoint(0).Send(1, []byte("direct"))
	env = recvOne(t, net.Endpoint(1), time.Second)
	if string(env.Payload) != "direct" {
		t.Fatalf("payload = %q", env.Payload)
	}
}

func TestDropRate(t *testing.T) {
	net := newNet(t, 2, WithJitter(0, 7))
	net.SetDropRate(0, 1, 1.0)
	for i := 0; i < 10; i++ {
		_ = net.Endpoint(0).Send(1, []byte("gone"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := net.Endpoint(1).Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("dropped message delivered: %v", err)
	}
}

func TestLinkDelay(t *testing.T) {
	net := newNet(t, 2)
	net.SetLinkDelay(0, 1, 20*time.Millisecond)
	start := time.Now()
	_ = net.Endpoint(0).Send(1, []byte("slow"))
	recvOne(t, net.Endpoint(1), time.Second)
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~20ms", elapsed)
	}
}

// TestDelayedLinkPreservesOrder pins the ordered-link guarantee: a per-link
// delay (with or without jitter) stretches latency but never reorders
// messages within a link. The former timer-per-message delivery broke this
// under scheduler load — adjacent messages swapped whenever their timer
// goroutines ran out of order — which read as a reordering adversary nobody
// configured (and, end to end, as spurious replica-side sheds of pipelined
// client requests).
func TestDelayedLinkPreservesOrder(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
		prep func(*Network)
	}{
		{name: "delay", prep: func(n *Network) { n.SetLinkDelay(0, 1, 2*time.Millisecond) }},
		{name: "jitter", opts: []Option{WithJitter(2*time.Millisecond, 11)}},
		{name: "delay+jitter", opts: []Option{WithJitter(time.Millisecond, 5)},
			prep: func(n *Network) { n.SetLinkDelay(0, 1, time.Millisecond) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := newNet(t, 2, tc.opts...)
			if tc.prep != nil {
				tc.prep(net)
			}
			const msgs = 500
			for i := 0; i < msgs; i++ {
				if err := net.Endpoint(0).Send(1, []byte{byte(i >> 8), byte(i)}); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			for i := 0; i < msgs; i++ {
				env := recvOne(t, net.Endpoint(1), 5*time.Second)
				if got := int(env.Payload[0])<<8 | int(env.Payload[1]); got != i {
					t.Fatalf("message %d delivered in position %d", got, i)
				}
			}
		})
	}
}

func TestJitterDelivers(t *testing.T) {
	net := newNet(t, 2, WithJitter(5*time.Millisecond, 3))
	for i := 0; i < 20; i++ {
		_ = net.Endpoint(0).Send(1, []byte{byte(i)})
	}
	seen := make(map[byte]bool)
	for i := 0; i < 20; i++ {
		env := recvOne(t, net.Endpoint(1), time.Second)
		seen[env.Payload[0]] = true
	}
	if len(seen) != 20 {
		t.Fatalf("delivered %d distinct messages, want 20", len(seen))
	}
}

func TestTraceObservesEvents(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	hook := func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	net := newNet(t, 2, WithTrace(hook))
	_ = net.Endpoint(0).Send(1, []byte("traced"))
	recvOne(t, net.Endpoint(1), time.Second)
	mu.Lock()
	defer mu.Unlock()
	var kinds []EventKind
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) != 2 || kinds[0] != EventSend || kinds[1] != EventDeliver {
		t.Fatalf("trace kinds = %v", kinds)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	net := newNet(t, 2)
	errCh := make(chan error, 1)
	go func() {
		_, err := net.Endpoint(0).Recv(context.Background())
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	net.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("Recv err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	if err := net.Endpoint(0).Send(1, []byte("x")); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("Send after close err = %v, want ErrClosed", err)
	}
}

func TestSendToNonMember(t *testing.T) {
	net := newNet(t, 2)
	if err := net.Endpoint(0).Send(5, []byte("x")); err == nil {
		t.Fatal("send to non-member succeeded")
	}
}

func TestInjectBypassesBlocks(t *testing.T) {
	net := newNet(t, 2)
	net.Block(0, 1)
	net.Inject(0, 1, []byte("byzantine"))
	env := recvOne(t, net.Endpoint(1), time.Second)
	if string(env.Payload) != "byzantine" {
		t.Fatalf("payload = %q", env.Payload)
	}
}

func TestConcurrentSendersNoLoss(t *testing.T) {
	net := newNet(t, 4)
	const per = 100
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = net.Endpoint(types.ProcessID(p)).Send(3, []byte{byte(p), byte(i)})
			}
		}(p)
	}
	wg.Wait()
	got := make(map[[2]byte]bool)
	for i := 0; i < 3*per; i++ {
		env := recvOne(t, net.Endpoint(3), time.Second)
		got[[2]byte{env.Payload[0], env.Payload[1]}] = true
	}
	if len(got) != 3*per {
		t.Fatalf("received %d distinct messages, want %d", len(got), 3*per)
	}
}

func TestReleaseUntilQuiescent(t *testing.T) {
	// A two-node echo protocol under manual mode: each received "ping N"
	// triggers "ping N+1" until 3. ReleaseUntilQuiescent must drain the
	// whole conversation, including messages sent during earlier passes.
	net := newNet(t, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ep := net.Endpoint(1)
		for {
			env, err := ep.Recv(context.Background())
			if err != nil {
				return
			}
			n := env.Payload[0]
			if n < 3 {
				_ = ep.Send(0, []byte{n + 1})
			}
		}
	}()
	go func() {
		ep := net.Endpoint(0)
		for {
			env, err := ep.Recv(context.Background())
			if err != nil {
				return
			}
			n := env.Payload[0]
			if n < 3 {
				_ = ep.Send(1, []byte{n + 1})
			}
		}
	}()

	net.Hold()
	_ = net.Endpoint(0).Send(1, []byte{0})
	released := net.ReleaseUntilQuiescent(func(Pending) bool { return true }, 5*time.Millisecond, 50)
	if released != 4 { // 0, 1, 2, 3
		t.Fatalf("released %d messages, want 4", released)
	}
	net.Close()
	<-done
}

func TestReleaseWherePredicateScoping(t *testing.T) {
	// Only adversary-approved links drain; others stay pending.
	net := newNet(t, 3)
	net.Hold()
	_ = net.Endpoint(0).Send(1, []byte("a"))
	_ = net.Endpoint(0).Send(2, []byte("b"))
	_ = net.Endpoint(1).Send(2, []byte("c"))
	released := net.ReleaseUntilQuiescent(func(p Pending) bool { return p.From == 0 }, time.Millisecond, 10)
	if released != 2 {
		t.Fatalf("released %d, want 2", released)
	}
	if got := len(net.Pending()); got != 1 {
		t.Fatalf("pending = %d, want 1 (the 1->2 message)", got)
	}
}
