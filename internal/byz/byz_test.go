// Robustness (failure-injection) tests: correct protocol nodes run
// alongside the Byzantine actors, and the property checkers must stay
// green.
package byz_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"unidir/internal/byz"
	"unidir/internal/kvstore"
	"unidir/internal/minbft"
	"unidir/internal/sig"
	"unidir/internal/simnet"
	"unidir/internal/smr"
	"unidir/internal/srb"
	"unidir/internal/srb/bracha"
	"unidir/internal/srb/trincsrb"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

func membership(t *testing.T, n, f int) types.Membership {
	t.Helper()
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	return m
}

func TestSpammerEmitsGarbage(t *testing.T) {
	m := membership(t, 2, 0)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	s := byz.NewSpammer(net.Endpoint(0), []types.ProcessID{1}, 1, time.Millisecond)
	defer s.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for s.Sent() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Sent() < 10 {
		t.Fatalf("spammer emitted only %d payloads", s.Sent())
	}
}

func TestMinBFTSurvivesSpamAndReplay(t *testing.T) {
	// 5 replicas tolerate f=2; the two Byzantine slots are filled by a
	// garbage spammer and a replay attacker. The cluster must stay both
	// safe and live.
	m := membership(t, 5, 2)
	netM := membership(t, 6, 2) // +1 client
	net, err := simnet.New(netM)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(51)))
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	logs := make([]*smr.ExecutionLog, 3)
	var replicas []*minbft.Replica
	for i := 0; i < 3; i++ { // replicas 0..2 correct
		logs[i] = &smr.ExecutionLog{}
		rep, err := minbft.New(m, net.Endpoint(types.ProcessID(i)), tu.Devices[i], tu.Verifier,
			kvstore.New(), minbft.WithRequestTimeout(2*time.Second), minbft.WithExecutionLog(logs[i]))
		if err != nil {
			t.Fatalf("minbft.New: %v", err)
		}
		replicas = append(replicas, rep)
	}
	defer func() {
		for _, r := range replicas {
			_ = r.Close()
		}
	}()
	// Byzantine slot 3: spams all correct replicas with garbage.
	spammer := byz.NewSpammer(net.Endpoint(3), []types.ProcessID{0, 1, 2}, 2, 200*time.Microsecond)
	defer spammer.Stop()
	// Byzantine slot 4: replays everything it receives three times.
	replayer := byz.NewReplayer(net.Endpoint(4), []types.ProcessID{0, 1, 2}, 3)
	defer replayer.Stop()

	base, err := smr.NewClient(net.Endpoint(5), m.All(), m.FPlusOne(), 5, 100*time.Millisecond,
		smr.WithRequestEncoder(minbft.EncodeRequestEnvelope))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	kv := kvstore.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := kv.Put(ctx, key, []byte{byte(i)}); err != nil {
			t.Fatalf("Put %s under attack: %v", key, err)
		}
	}
	v, err := kv.Get(ctx, "k7")
	if err != nil || v[0] != 7 {
		t.Fatalf("Get = %v, %v", v, err)
	}
	// Exactly 11 commands executed (10 puts + 1 get), identically ordered —
	// the replayed messages were all deduplicated.
	for i, log := range logs {
		if got := len(log.Snapshot()); got != 11 {
			t.Fatalf("replica %d executed %d commands, want 11", i, got)
		}
		if err := smr.CheckPrefix(logs[0].Snapshot(), log.Snapshot()); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}
	if spammer.Sent() == 0 || replayer.Replayed() == 0 {
		t.Fatalf("attack did not actually run: spam=%d replay=%d", spammer.Sent(), replayer.Replayed())
	}
}

func TestTrincSRBSurvivesSpamAndReplay(t *testing.T) {
	m := membership(t, 4, 1)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(52)))
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	rec := srb.NewRecorder()
	correct := []types.ProcessID{0, 1, 2}
	nodes := make([]srb.Node, 0, 3)
	for _, i := range correct {
		node, err := trincsrb.New(m, net.Endpoint(i), tu.Devices[i], tu.Verifier)
		if err != nil {
			t.Fatalf("trincsrb.New: %v", err)
		}
		nodes = append(nodes, node)
		defer node.Close()
	}
	// The Byzantine slot both spams and replays (two actors, one identity).
	spammer := byz.NewSpammer(net.Endpoint(3), correct, 3, 100*time.Microsecond)
	defer spammer.Stop()

	const msgs = 5
	for j := 0; j < msgs; j++ {
		data := []byte(fmt.Sprintf("m%d", j))
		seq, err := nodes[0].Broadcast(data)
		if err != nil {
			t.Fatalf("Broadcast: %v", err)
		}
		rec.Broadcast(0, seq, data)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i, n := range nodes {
		for j := 0; j < msgs; j++ {
			d, err := n.Deliver(ctx)
			if err != nil {
				t.Fatalf("node %d deliver: %v", i, err)
			}
			rec.Deliver(n.Self(), d)
		}
	}
	if err := rec.CheckAll(correct); err != nil {
		t.Fatal(err)
	}
}

func TestBrachaContainsRoundEquivocator(t *testing.T) {
	// A Byzantine *sender* uses raw sends to tell p1 one value and p2, p3
	// another for the same (sender, seq). Bracha must never let two correct
	// nodes deliver different values (it may deliver nothing).
	m := membership(t, 4, 1)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	rec := srb.NewRecorder()
	correct := []types.ProcessID{1, 2, 3}
	nodes := make([]srb.Node, 0, 3)
	for _, i := range correct {
		node, err := bracha.New(m, net.Endpoint(i))
		if err != nil {
			t.Fatalf("bracha.New: %v", err)
		}
		nodes = append(nodes, node)
		defer node.Close()
	}
	// Hand-crafted SEND frames from p0 (kind=1, sender=0, seq=1).
	sendFrame := func(data string) []byte {
		payload := []byte{1}
		payload = append(payload, []byte{0, 0, 0, 0, 0, 0, 0, 0}...) // sender 0
		payload = append(payload, []byte{1, 0, 0, 0, 0, 0, 0, 0}...) // seq 1
		payload = append(payload, byte(len(data)), 0, 0, 0)
		return append(payload, data...)
	}
	net.Inject(0, 1, sendFrame("left"))
	net.Inject(0, 2, sendFrame("right"))
	net.Inject(0, 3, sendFrame("right"))

	// Collect whatever deliveries happen within a bounded window.
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	for _, n := range nodes {
		if d, err := n.Deliver(ctx); err == nil {
			rec.Deliver(n.Self(), d)
		}
	}
	if err := rec.CheckAgreement(correct); err != nil {
		t.Fatal(err)
	}
}

func TestRoundEquivocatorHelper(t *testing.T) {
	m := membership(t, 3, 1)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	rings, err := sig.NewKeyrings(m, sig.HMAC, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}
	eq := byz.NewRoundEquivocator(net.Endpoint(0), rings[0])
	if eq.Keyring().Self() != 0 {
		t.Fatal("wrong keyring")
	}
	if err := eq.SendRound(1, 1, []byte("to p1")); err != nil {
		t.Fatalf("SendRound: %v", err)
	}
	if err := eq.SendRound(2, 1, []byte("to p2")); err != nil {
		t.Fatalf("SendRound: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	env, err := net.Endpoint(1).Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if env.From != 0 {
		t.Fatalf("From = %v", env.From)
	}
}
