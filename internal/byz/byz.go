// Package byz provides reusable Byzantine actors for failure-injection
// tests and experiments: garbage spammers, replay attackers, and an
// equivocating round-message sender. Each actor owns its goroutine and is
// stopped with Stop/Close, following the library's lifecycle conventions.
//
// The actors deliberately attack below the protocol layer (raw payloads on
// the transport), which is exactly the power a Byzantine process has: it
// can send any bytes to anyone at any time, but cannot forge signatures or
// attestations. Protocol tests run correct nodes alongside these actors
// and then consult the property checkers.
package byz

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"unidir/internal/obs"
	"unidir/internal/rounds"
	"unidir/internal/sig"
	"unidir/internal/transport"
	"unidir/internal/types"
)

// Spammer floods the membership with malformed payloads: random bytes,
// truncated frames, huge length prefixes, and empty messages. Protocols
// must drop all of it without stalling or crashing.
type Spammer struct {
	tr      transport.Transport
	targets []types.ProcessID
	rng     *rand.Rand
	every   time.Duration

	cancel context.CancelFunc
	done   chan struct{}

	mu   sync.Mutex
	sent int
}

// NewSpammer starts a spammer on tr aimed at targets, emitting one garbage
// payload per target every interval. Stop it with Stop.
func NewSpammer(tr transport.Transport, targets []types.ProcessID, seed int64, interval time.Duration) *Spammer {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Spammer{
		tr:      tr,
		targets: targets,
		rng:     rand.New(rand.NewSource(seed)),
		every:   interval,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	go s.run(ctx)
	return s
}

// Sent returns the number of garbage payloads emitted so far.
func (s *Spammer) Sent() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent
}

// Stop terminates the spammer and waits for its goroutine.
func (s *Spammer) Stop() {
	s.cancel()
	<-s.done
}

func (s *Spammer) run(ctx context.Context) {
	defer close(s.done)
	ticker := time.NewTicker(s.every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		payload := s.garbage()
		for _, to := range s.targets {
			if err := s.tr.Send(to, payload); err != nil {
				return
			}
			s.mu.Lock()
			s.sent++
			s.mu.Unlock()
		}
	}
}

// garbage produces one of several malformation families.
func (s *Spammer) garbage() []byte {
	switch s.rng.Intn(5) {
	case 0:
		return nil // empty payload
	case 1:
		return []byte{byte(s.rng.Intn(256))} // lone kind byte
	case 2: // random noise
		b := make([]byte, 1+s.rng.Intn(64))
		for i := range b {
			b[i] = byte(s.rng.Intn(256))
		}
		return b
	case 3: // plausible header, absurd length prefix
		return []byte{byte(s.rng.Intn(8) + 1), 0xFF, 0xFF, 0xFF, 0x7F}
	default: // long zero run (valid-length empty fields)
		return make([]byte, 1+s.rng.Intn(128))
	}
}

// Replayer is a man-in-the-mailbox attacker: it runs on its own (Byzantine)
// process, records every payload it receives, and replays each one several
// times to the whole membership. Protocols must be idempotent against
// duplicated and cross-delivered messages (which signatures and channel
// identities make detectable — a replayed message arrives from the
// replayer's channel, not the original sender's).
type Replayer struct {
	tr      transport.Transport
	targets []types.ProcessID
	copies  int

	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	replayed int
}

// NewReplayer starts a replayer on tr: every received payload is re-sent
// copies times to every target. Stop it with Stop.
func NewReplayer(tr transport.Transport, targets []types.ProcessID, copies int) *Replayer {
	ctx, cancel := context.WithCancel(context.Background())
	r := &Replayer{
		tr:      tr,
		targets: targets,
		copies:  copies,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	go r.run(ctx)
	return r
}

// Replayed returns the number of payloads re-sent so far.
func (r *Replayer) Replayed() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.replayed
}

// Stop terminates the replayer and waits for its goroutine.
func (r *Replayer) Stop() {
	r.cancel()
	<-r.done
}

func (r *Replayer) run(ctx context.Context) {
	defer close(r.done)
	for {
		env, err := r.tr.Recv(ctx)
		if err != nil {
			return
		}
		for i := 0; i < r.copies; i++ {
			for _, to := range r.targets {
				if err := r.tr.Send(to, env.Payload); err != nil {
					return
				}
				r.mu.Lock()
				r.replayed++
				r.mu.Unlock()
			}
		}
	}
}

// RoundEquivocator signs conflicting round messages as one Byzantine
// process and sends different values to different peers — the attack that
// shared-memory round media make physically impossible and that
// message-passing protocols must contain. It needs the Byzantine process's
// own keyring (a Byzantine process can always sign with its own key) and a
// payload signer for the protocol under attack.
type RoundEquivocator struct {
	tr   transport.Transport
	ring *sig.Keyring
}

// NewRoundEquivocator wraps the Byzantine process's endpoint and keyring.
func NewRoundEquivocator(tr transport.Transport, ring *sig.Keyring) *RoundEquivocator {
	return &RoundEquivocator{tr: tr, ring: ring}
}

// Keyring exposes the equivocator's signer to payload builders.
func (e *RoundEquivocator) Keyring() *sig.Keyring { return e.ring }

// SendRound sends a round-r message with the given protocol payload to one
// peer, using the transport-level round framing of Async/Lockstep systems.
// Call it with different payloads for different peers to equivocate.
func (e *RoundEquivocator) SendRound(to types.ProcessID, r types.Round, payload []byte) error {
	return e.tr.Send(to, rounds.EncodeMessage(r, payload))
}

// StatusForger wraps a replica's introspection surface and forges its
// checkpoint digest: the wrapped Status is reported verbatim except that
// the stable-checkpoint digest is bit-flipped. This models a Byzantine
// replica lying to the monitoring plane about its state — the exact
// equivocation the watch auditor's checkpoint-divergence rule must turn
// into evidence naming this replica. (A real Byzantine replica could not
// get such a digest past its peers' vote verification; it can absolutely
// serve one on its own /debug/status.)
type StatusForger struct {
	inner obs.StatusProvider
}

// ForgeCheckpointDigest wraps p so every reported stable checkpoint
// carries a corrupted digest.
func ForgeCheckpointDigest(p obs.StatusProvider) *StatusForger {
	return &StatusForger{inner: p}
}

// Status implements obs.StatusProvider.
func (f *StatusForger) Status() obs.Status {
	st := f.inner.Status()
	if st.Checkpoint != nil {
		ck := *st.Checkpoint
		ck.Digest = flipDigest(ck.Digest)
		st.Checkpoint = &ck
	}
	return st
}

// flipDigest deterministically corrupts a hex digest (first nibble XOR 0x8,
// so the result is still well-formed hex of the same length).
func flipDigest(d string) string {
	if d == "" {
		return "00"
	}
	b := []byte(d)
	switch c := b[0]; {
	case c >= '0' && c <= '7':
		b[0] = c + 8 // '0'-'7' -> '8'-'f' range via hex offset below
		if b[0] > '9' {
			b[0] = 'a' + (b[0] - '9' - 1)
		}
	default:
		b[0] = '0'
	}
	return string(b)
}
