// Package separation makes the paper's impossibility result (§4.1)
// executable: sequenced reliable broadcast cannot implement unidirectional
// rounds for n > 2f, f > 1, under asynchrony.
//
// The experiment instantiates the proof's geometry. Processes are split
// into Q (|Q| = n-f), C1 (|C1| = 1), and C2 (|C2| = f-1), and the natural
// "rounds from SRB" protocol — broadcast your round message through SRB,
// end the round after delivering round messages from n-f distinct
// processes (the most any process may block on under asynchrony) — is
// driven through the three scenarios:
//
//	Scenario 1: C1 crashed; C2→Q links delayed indefinitely. Q and C2 must
//	            finish the round (from their view, C1 and C2 could be the
//	            f faults). C2 finishes without hearing C1.
//	Scenario 2: C2 crashed; C1→Q links delayed. Q and C1 must finish;
//	            C1 finishes without hearing C2.
//	Scenario 3: nobody is faulty; all links out of C1 and C2 are delayed.
//	            Indistinguishable from scenario 1 to C2 and Q, from
//	            scenario 2 to C1 — so C1 and C2 both finish the round
//	            without hearing each other: a unidirectionality violation
//	            between two correct processes.
//
// The control arm runs the SWMR round protocol (Claim §3.2) under
// adversarial schedules and confirms zero violations: shared-memory
// hardware is immune to the partition that defeats every eventual-delivery
// medium, which is exactly the separation.
package separation

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"unidir/internal/core"
	"unidir/internal/rounds"
	"unidir/internal/sig"
	"unidir/internal/simnet"
	"unidir/internal/srb"
	"unidir/internal/srb/trincsrb"
	"unidir/internal/syncx"
	"unidir/internal/trusted/swmr"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// ErrGeometry reports an (n, f) outside the impossibility's regime.
var ErrGeometry = errors.New("separation: requires n > 2f and f > 1")

// Geometry is the proof's partition of the process set.
type Geometry struct {
	Q  []types.ProcessID // |Q| = n-f
	C1 types.ProcessID   // singleton
	C2 []types.ProcessID // |C2| = f-1
}

// NewGeometry splits membership m per the proof. It requires f > 1 (so C2
// is nonempty) and n > 2f.
func NewGeometry(m types.Membership) (Geometry, error) {
	if m.F <= 1 || m.N <= 2*m.F {
		return Geometry{}, fmt.Errorf("%w: n=%d f=%d", ErrGeometry, m.N, m.F)
	}
	g := Geometry{C1: types.ProcessID(m.N - m.F)}
	for i := 0; i < m.N-m.F; i++ {
		g.Q = append(g.Q, types.ProcessID(i))
	}
	for i := m.N - m.F + 1; i < m.N; i++ {
		g.C2 = append(g.C2, types.ProcessID(i))
	}
	return g, nil
}

// ScenarioOutcome reports one scenario run.
type ScenarioOutcome struct {
	Completed  map[types.ProcessID]bool // processes that finished round 1
	Violations []core.Violation         // among the scenario's correct set
}

// Result aggregates the full experiment.
type Result struct {
	Geometry  Geometry
	Scenario1 ScenarioOutcome
	Scenario2 ScenarioOutcome
	Scenario3 ScenarioOutcome
	// SWMRViolations is the control arm: violations of the SWMR round
	// protocol under randomized adversarial schedules (must be zero).
	SWMRViolations []core.Violation
	SWMRSchedules  int
}

// srbRounds is the strawman: the natural round protocol over an SRB node.
// It is deliberately the *best possible* asynchronous attempt — waiting for
// more than n-f round messages may block forever, so no protocol over an
// eventual-delivery medium can wait for more.
type srbRounds struct {
	node srb.Node
	m    types.Membership
	obs  rounds.Observer

	mu    sync.Mutex
	table map[types.Round]map[types.ProcessID][]byte
	pulse *syncx.Pulse

	cancel context.CancelFunc
	done   chan struct{}
}

func newSRBRounds(node srb.Node, m types.Membership, obs rounds.Observer) *srbRounds {
	ctx, cancel := context.WithCancel(context.Background())
	s := &srbRounds{
		node:   node,
		m:      m,
		obs:    obs,
		table:  make(map[types.Round]map[types.ProcessID][]byte),
		pulse:  syncx.NewPulse(),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go s.pump(ctx)
	return s
}

func (s *srbRounds) close() {
	s.cancel()
	<-s.done
}

func (s *srbRounds) pump(ctx context.Context) {
	defer close(s.done)
	for {
		d, err := s.node.Deliver(ctx)
		if err != nil {
			return
		}
		dec := wire.NewDecoder(d.Data)
		r := types.Round(dec.Uint64())
		data := append([]byte(nil), dec.BytesField()...)
		if dec.Finish() != nil || r == 0 {
			continue
		}
		s.mu.Lock()
		byRound := s.table[r]
		if byRound == nil {
			byRound = make(map[types.ProcessID][]byte)
			s.table[r] = byRound
		}
		if _, dup := byRound[d.Sender]; !dup {
			byRound[d.Sender] = data
		}
		s.mu.Unlock()
		if s.obs != nil && d.Sender != s.node.Self() {
			s.obs.Got(s.node.Self(), d.Sender, r)
		}
		s.pulse.Fire()
	}
}

// send broadcasts this process's round-r message through SRB.
func (s *srbRounds) send(r types.Round, data []byte) error {
	if s.obs != nil {
		s.obs.Sent(s.node.Self(), r)
	}
	e := wire.NewEncoder(16 + len(data))
	e.Uint64(uint64(r))
	e.BytesField(data)
	_, err := s.node.Broadcast(e.Bytes())
	return err
}

// waitEnd blocks until round-r messages from n-f distinct processes
// (self included — own broadcasts are self-delivered by the SRB node) have
// been delivered, then reports the round boundary.
func (s *srbRounds) waitEnd(ctx context.Context, r types.Round) error {
	need := s.m.Correct()
	for {
		s.mu.Lock()
		have := len(s.table[r])
		s.mu.Unlock()
		if have >= need {
			if s.obs != nil {
				s.obs.Boundary(s.node.Self(), r)
			}
			return nil
		}
		ch := s.pulse.Wait()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// scenario describes one of the proof's three adversary configurations.
type scenario struct {
	crashed []types.ProcessID
	blocked [][2][]types.ProcessID // directed set-to-set delayed links
	correct []types.ProcessID      // processes the predicate quantifies over
}

func (g Geometry) scenario(which int, m types.Membership) (scenario, error) {
	all := m.All()
	switch which {
	case 1:
		return scenario{
			crashed: []types.ProcessID{g.C1},
			blocked: [][2][]types.ProcessID{{g.C2, g.Q}},
			correct: remove(all, g.C1),
		}, nil
	case 2:
		return scenario{
			crashed: g.C2,
			blocked: [][2][]types.ProcessID{{{g.C1}, g.Q}},
			correct: remove(all, g.C2...),
		}, nil
	case 3:
		return scenario{
			blocked: [][2][]types.ProcessID{
				{{g.C1}, g.Q}, {{g.C1}, g.C2},
				{g.C2, g.Q}, {g.C2, {g.C1}},
			},
			correct: all,
		}, nil
	default:
		return scenario{}, fmt.Errorf("separation: no scenario %d", which)
	}
}

func remove(ids []types.ProcessID, drop ...types.ProcessID) []types.ProcessID {
	dropSet := make(map[types.ProcessID]bool, len(drop))
	for _, d := range drop {
		dropSet[d] = true
	}
	out := make([]types.ProcessID, 0, len(ids))
	for _, id := range ids {
		if !dropSet[id] {
			out = append(out, id)
		}
	}
	return out
}

// RunScenario executes one scenario of the strawman experiment and returns
// which processes completed round 1 and the violations among the
// scenario's correct processes.
func RunScenario(m types.Membership, which int, timeout time.Duration) (ScenarioOutcome, error) {
	g, err := NewGeometry(m)
	if err != nil {
		return ScenarioOutcome{}, err
	}
	sc, err := g.scenario(which, m)
	if err != nil {
		return ScenarioOutcome{}, err
	}

	net, err := simnet.New(m)
	if err != nil {
		return ScenarioOutcome{}, err
	}
	defer net.Close()
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(int64(which))))
	if err != nil {
		return ScenarioOutcome{}, err
	}
	for _, b := range sc.blocked {
		for _, from := range b[0] {
			for _, to := range b[1] {
				net.Block(from, to)
			}
		}
	}

	checker := core.NewUniChecker()
	crashed := make(map[types.ProcessID]bool, len(sc.crashed))
	for _, c := range sc.crashed {
		crashed[c] = true
	}

	type peer struct {
		node *trincsrb.Node
		rs   *srbRounds
	}
	peers := make(map[types.ProcessID]*peer)
	for _, id := range m.All() {
		if crashed[id] {
			continue
		}
		node, err := trincsrb.New(m, net.Endpoint(id), tu.Devices[id], tu.Verifier)
		if err != nil {
			return ScenarioOutcome{}, fmt.Errorf("separation: node %v: %w", id, err)
		}
		peers[id] = &peer{node: node, rs: newSRBRounds(node, m, checker)}
	}
	defer func() {
		for _, p := range peers {
			p.rs.close()
			_ = p.node.Close()
		}
	}()

	outcome := ScenarioOutcome{Completed: make(map[types.ProcessID]bool)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for id, p := range peers {
		wg.Add(1)
		go func(id types.ProcessID, p *peer) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			if err := p.rs.send(1, []byte(fmt.Sprintf("round-1 from %v", id))); err != nil {
				return
			}
			if err := p.rs.waitEnd(ctx, 1); err != nil {
				return
			}
			mu.Lock()
			outcome.Completed[id] = true
			mu.Unlock()
		}(id, p)
	}
	wg.Wait()
	outcome.Violations = checker.Violations(sc.correct)
	return outcome, nil
}

// RunSWMRControl runs the same round workload over SWMR rounds under
// `schedules` randomized adversarial schedules and returns any violations
// (the claim: always none).
func RunSWMRControl(m types.Membership, schedules int, seed int64) ([]core.Violation, error) {
	var all []core.Violation
	for s := 0; s < schedules; s++ {
		store, err := swmr.NewStore(m)
		if err != nil {
			return nil, err
		}
		checker := core.NewUniChecker()
		systems := make([]*rounds.SWMR, m.N)
		for i := 0; i < m.N; i++ {
			sys, err := rounds.NewSWMR(swmr.NewLocal(store, types.ProcessID(i)), m,
				rounds.WithSWMRObserver(checker))
			if err != nil {
				return nil, err
			}
			systems[i] = sys
		}
		var wg sync.WaitGroup
		for i, sys := range systems {
			wg.Add(1)
			go func(i int, sys *rounds.SWMR) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(s*m.N+i)))
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				for r := types.Round(1); r <= 3; r++ {
					time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
					if err := sys.Send(r, []byte{byte(r)}); err != nil {
						return
					}
					time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
					if _, err := sys.WaitEnd(ctx, r); err != nil {
						return
					}
				}
			}(i, sys)
		}
		wg.Wait()
		for _, sys := range systems {
			_ = sys.Close()
		}
		all = append(all, checker.Violations(m.All())...)
	}
	return all, nil
}

// Run executes the full experiment: the three strawman scenarios plus the
// SWMR control arm.
func Run(m types.Membership, timeout time.Duration, controlSchedules int) (Result, error) {
	g, err := NewGeometry(m)
	if err != nil {
		return Result{}, err
	}
	res := Result{Geometry: g, SWMRSchedules: controlSchedules}
	for which := 1; which <= 3; which++ {
		outcome, err := RunScenario(m, which, timeout)
		if err != nil {
			return Result{}, err
		}
		switch which {
		case 1:
			res.Scenario1 = outcome
		case 2:
			res.Scenario2 = outcome
		case 3:
			res.Scenario3 = outcome
		}
	}
	res.SWMRViolations, err = RunSWMRControl(m, controlSchedules, 99)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}
