package separation

import (
	"errors"
	"testing"
	"time"

	"unidir/internal/types"
)

func membership(t *testing.T, n, f int) types.Membership {
	t.Helper()
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	return m
}

func TestGeometry(t *testing.T) {
	m := membership(t, 5, 2)
	g, err := NewGeometry(m)
	if err != nil {
		t.Fatalf("NewGeometry: %v", err)
	}
	if len(g.Q) != 3 || g.C1 != 3 || len(g.C2) != 1 || g.C2[0] != 4 {
		t.Fatalf("geometry = %+v", g)
	}
}

func TestGeometryRejectsOutOfRegime(t *testing.T) {
	for _, nf := range [][2]int{{3, 1}, {4, 1}, {4, 2}, {6, 3}} {
		m := membership(t, nf[0], nf[1])
		if _, err := NewGeometry(m); !errors.Is(err, ErrGeometry) {
			t.Fatalf("NewGeometry(n=%d,f=%d) err = %v, want ErrGeometry", nf[0], nf[1], err)
		}
	}
}

func TestScenario1LivenessWithoutHearingC1(t *testing.T) {
	m := membership(t, 5, 2)
	out, err := RunScenario(m, 1, 10*time.Second)
	if err != nil {
		t.Fatalf("RunScenario(1): %v", err)
	}
	// Q = {0,1,2} and C2 = {4} must all complete the round.
	for _, id := range []types.ProcessID{0, 1, 2, 4} {
		if !out.Completed[id] {
			t.Fatalf("%v did not complete round 1 (completed: %v)", id, out.Completed)
		}
	}
	// No violation is chargeable here — C1 is faulty, and the pairs among
	// correct processes that both sent either heard each other or include a
	// Q member that heard everyone in Q.
	for _, v := range out.Violations {
		if v.A != 3 && v.B != 3 {
			t.Fatalf("unexpected violation among correct processes: %v", v)
		}
	}
}

func TestScenario2LivenessWithoutHearingC2(t *testing.T) {
	m := membership(t, 5, 2)
	out, err := RunScenario(m, 2, 10*time.Second)
	if err != nil {
		t.Fatalf("RunScenario(2): %v", err)
	}
	for _, id := range []types.ProcessID{0, 1, 2, 3} {
		if !out.Completed[id] {
			t.Fatalf("%v did not complete round 1 (completed: %v)", id, out.Completed)
		}
	}
}

func TestScenario3ProducesViolation(t *testing.T) {
	// The heart of §4.1: everyone is correct, C1 and C2 both complete the
	// round (they cannot distinguish this world from scenarios 2 and 1
	// respectively), yet neither heard the other.
	m := membership(t, 5, 2)
	out, err := RunScenario(m, 3, 10*time.Second)
	if err != nil {
		t.Fatalf("RunScenario(3): %v", err)
	}
	for _, id := range []types.ProcessID{0, 1, 2, 3, 4} {
		if !out.Completed[id] {
			t.Fatalf("%v did not complete round 1 (completed: %v)", id, out.Completed)
		}
	}
	found := false
	for _, v := range out.Violations {
		if (v.A == 3 && v.B == 4) || (v.A == 4 && v.B == 3) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no violation between C1=p3 and C2=p4; violations: %v", out.Violations)
	}
}

func TestSWMRControlArmHasNoViolations(t *testing.T) {
	m := membership(t, 5, 2)
	violations, err := RunSWMRControl(m, 10, 7)
	if err != nil {
		t.Fatalf("RunSWMRControl: %v", err)
	}
	if len(violations) != 0 {
		t.Fatalf("SWMR rounds violated unidirectionality: %v", violations)
	}
}

func TestFullExperiment(t *testing.T) {
	m := membership(t, 7, 3) // bigger geometry: Q={0..3}, C1=4, C2={5,6}
	res, err := Run(m, 15*time.Second, 3)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Scenario3.Violations) == 0 {
		t.Fatal("scenario 3 produced no violations")
	}
	if len(res.SWMRViolations) != 0 {
		t.Fatalf("control arm violations: %v", res.SWMRViolations)
	}
	// In the larger geometry every C1-C2 pair is violated.
	pairs := 0
	for _, v := range res.Scenario3.Violations {
		if v.A == 4 || v.B == 4 {
			pairs++
		}
	}
	if pairs < 2 {
		t.Fatalf("expected violations between C1 and both C2 members, got %v", res.Scenario3.Violations)
	}
}
