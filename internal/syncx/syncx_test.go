package syncx

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int]()
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 10; i++ {
		v, err := q.Pop(context.Background())
		if err != nil || v != i {
			t.Fatalf("Pop = %d, %v; want %d", v, err, i)
		}
	}
}

func TestQueueBlocksUntilPush(t *testing.T) {
	q := NewQueue[string]()
	got := make(chan string, 1)
	go func() {
		v, err := q.Pop(context.Background())
		if err == nil {
			got <- v
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push("late")
	select {
	case v := <-got:
		if v != "late" {
			t.Fatalf("Pop = %q", v)
		}
	case <-time.After(time.Second):
		t.Fatal("Pop never returned")
	}
}

func TestQueueContextCancel(t *testing.T) {
	q := NewQueue[int]()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := q.Pop(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Pop err = %v", err)
	}
}

func TestQueuePushReportsAcceptance(t *testing.T) {
	q := NewQueue[int]()
	if !q.Push(1) {
		t.Fatal("Push on open queue rejected")
	}
	q.Close()
	// The rejection signal is what lets tcpnet.Send return ErrClosed instead
	// of silently dropping when it races Close.
	if q.Push(2) {
		t.Fatal("Push on closed queue claimed acceptance")
	}
	if got := q.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1 (rejected push must not enqueue)", got)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue[int]()
	q.Push(1)
	q.Push(2)
	q.Close()
	if q.Push(3) {
		t.Fatal("Push after Close accepted")
	}
	for want := 1; want <= 2; want++ {
		v, err := q.Pop(context.Background())
		if err != nil || v != want {
			t.Fatalf("Pop = %d, %v", v, err)
		}
	}
	if _, err := q.Pop(context.Background()); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("Pop after drain err = %v", err)
	}
}

func TestQueueTryPop(t *testing.T) {
	q := NewQueue[int]()
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue reported an item")
	}
	q.Push(7)
	q.Push(8)
	if v, ok := q.TryPop(); !ok || v != 7 {
		t.Fatalf("TryPop = %d, %v", v, ok)
	}
	q.Close()
	// Closed but not drained: the remaining item is still poppable.
	if v, ok := q.TryPop(); !ok || v != 8 {
		t.Fatalf("TryPop after close = %d, %v", v, ok)
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on drained queue reported an item")
	}
}

func TestQueuePopAllDrainsBacklog(t *testing.T) {
	q := NewQueue[int]()
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	items, err := q.PopAll(context.Background())
	if err != nil {
		t.Fatalf("PopAll: %v", err)
	}
	if len(items) != 5 {
		t.Fatalf("PopAll returned %d items", len(items))
	}
	for i, v := range items {
		if v != i {
			t.Fatalf("items[%d] = %d", i, v)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after PopAll = %d", q.Len())
	}
}

func TestQueuePopAllBlocksAndCloses(t *testing.T) {
	q := NewQueue[int]()
	got := make(chan []int, 1)
	go func() {
		items, err := q.PopAll(context.Background())
		if err == nil {
			got <- items
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push(42)
	select {
	case items := <-got:
		if len(items) != 1 || items[0] != 42 {
			t.Fatalf("PopAll = %v", items)
		}
	case <-time.After(time.Second):
		t.Fatal("PopAll never returned")
	}
	q.Close()
	if _, err := q.PopAll(context.Background()); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("PopAll after close err = %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := NewQueue[int]().PopAll(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("PopAll ctx err = %v", err)
	}
}

func TestQueueConcurrent(t *testing.T) {
	q := NewQueue[int]()
	const producers, per = 4, 250
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Push(p*per + i)
			}
		}(p)
	}
	seen := make(map[int]bool)
	var mu sync.Mutex
	var cg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, err := q.Pop(context.Background())
				if err != nil {
					return
				}
				mu.Lock()
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Wait for consumers to drain, then close.
	for q.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	q.Close()
	cg.Wait()
	if len(seen) != producers*per {
		t.Fatalf("consumed %d distinct items, want %d", len(seen), producers*per)
	}
}

func TestPulseWakesAllWaiters(t *testing.T) {
	p := NewPulse()
	const waiters = 5
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		ch := p.Wait()
		go func() {
			defer wg.Done()
			<-ch
		}()
	}
	p.Fire()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Fire did not wake all waiters")
	}
}

func TestPulseGenerations(t *testing.T) {
	p := NewPulse()
	ch1 := p.Wait()
	p.Fire()
	ch2 := p.Wait()
	select {
	case <-ch1:
	default:
		t.Fatal("old generation not closed")
	}
	select {
	case <-ch2:
		t.Fatal("new generation closed prematurely")
	default:
	}
}
