package syncx

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSleepTimerSleeps(t *testing.T) {
	tm := NewStoppedTimer()
	start := time.Now()
	if err := SleepTimer(context.Background(), tm, 20*time.Millisecond); err != nil {
		t.Fatalf("SleepTimer: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("returned after %v, want >= 20ms", d)
	}
}

func TestSleepTimerHonorsContext(t *testing.T) {
	tm := NewStoppedTimer()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SleepTimer(ctx, tm, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("SleepTimer on canceled ctx: %v", err)
	}
	// The timer must come back stopped and drained: an immediate reuse must
	// wait its full duration, not return early off a stale fire.
	start := time.Now()
	if err := SleepTimer(context.Background(), tm, 20*time.Millisecond); err != nil {
		t.Fatalf("reuse after cancel: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("reused timer returned after %v, want >= 20ms (stale fire?)", d)
	}
}

// Regression test for the time.After-in-a-loop churn this helper replaced
// (smr's escalated-read retry loop, tcpnet's redial backoff): waiting on a
// reused timer must not allocate per iteration. time.After allocates a
// fresh runtime timer every call; a retry loop spinning at 10ms per tick
// was creating garbage exactly when the system was already overloaded.
func TestSleepTimerNoAllocsPerWait(t *testing.T) {
	tm := NewStoppedTimer()
	ctx := context.Background()
	allocs := testing.AllocsPerRun(50, func() {
		if err := SleepTimer(ctx, tm, time.Microsecond); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SleepTimer allocates %.1f objects per wait, want 0", allocs)
	}
}

func TestSleepTimerReuseAcrossManyWaits(t *testing.T) {
	tm := NewStoppedTimer()
	for i := 0; i < 100; i++ {
		if err := SleepTimer(context.Background(), tm, time.Microsecond); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
}
