// Package syncx provides two small concurrency helpers used across the
// protocol packages: an unbounded FIFO Queue with context-aware blocking Pop
// (protocol mailboxes must never apply backpressure to the network, or
// protocol goroutines could deadlock through it), and a Pulse broadcast
// primitive for "state changed, re-check your predicate" wakeups.
package syncx

import (
	"context"
	"errors"
	"sync"
)

// ErrQueueClosed reports a Pop on a closed, drained queue.
var ErrQueueClosed = errors.New("syncx: queue closed")

// Queue is an unbounded FIFO. The zero value is not ready; use NewQueue.
type Queue[T any] struct {
	mu     sync.Mutex
	items  []T
	notify chan struct{}
	closed bool
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] {
	return &Queue[T]{notify: make(chan struct{}, 1)}
}

// Push appends v and reports whether the queue accepted it. A closed queue
// rejects pushes; callers that promise delivery (e.g. a transport Send that
// returns nil) must check the result rather than assume acceptance.
func (q *Queue[T]) Push(v T) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.wake()
	return true
}

// Pop removes and returns the oldest item, blocking until one is available,
// ctx is done, or the queue is closed and drained.
func (q *Queue[T]) Pop(ctx context.Context) (T, error) {
	var zero T
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			v := q.items[0]
			q.items = q.items[1:]
			q.mu.Unlock()
			return v, nil
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			// Cascade the wakeup: the notify token holds at most one
			// waiter's attention, so each waiter that observes the closed,
			// drained queue re-arms it for the next one.
			q.wake()
			return zero, ErrQueueClosed
		}
		select {
		case <-q.notify:
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// TryPop removes and returns the oldest item without blocking. The second
// return is false when the queue is currently empty (closed or not).
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// PopAll removes and returns every queued item in FIFO order, blocking until
// at least one is available, ctx is done, or the queue is closed and
// drained. It is the batch form of Pop: a consumer that coalesces work
// (e.g. a transport writer flushing many frames per syscall) drains the
// whole backlog in one wakeup instead of one item per lock acquisition.
func (q *Queue[T]) PopAll(ctx context.Context) ([]T, error) {
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			items := q.items
			q.items = nil
			q.mu.Unlock()
			return items, nil
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			q.wake() // cascade, as in Pop
			return nil, ErrQueueClosed
		}
		select {
		case <-q.notify:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Len returns the current number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close marks the queue closed. Queued items remain poppable; once drained,
// Pop returns ErrQueueClosed.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.wake()
}

func (q *Queue[T]) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// Pulse is a broadcast wakeup: waiters grab the current generation channel
// with Wait and block on it; Fire closes the generation, waking everyone.
// Waiters then re-check their predicate and call Wait again if unsatisfied.
// The zero value is not ready; use NewPulse.
type Pulse struct {
	mu sync.Mutex
	ch chan struct{}
}

// NewPulse returns a ready Pulse.
func NewPulse() *Pulse {
	return &Pulse{ch: make(chan struct{})}
}

// Wait returns the current generation channel. It is closed by the next
// Fire. Callers must re-acquire via Wait after each wakeup.
func (p *Pulse) Wait() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ch
}

// Fire wakes all current waiters.
func (p *Pulse) Fire() {
	p.mu.Lock()
	close(p.ch)
	p.ch = make(chan struct{})
	p.mu.Unlock()
}
