package syncx

import (
	"context"
	"time"
)

// Timer reuse helpers. `case <-time.After(d):` inside a loop allocates a new
// timer (and its runtime bookkeeping) on every iteration, and each one stays
// live until it fires even when the select already moved on — a retry loop
// waiting 10ms per tick keeps churning garbage at the exact moment the
// system is struggling. The pattern here is: allocate one stopped timer
// outside the loop with NewStoppedTimer, then SleepTimer on it each
// iteration.

// NewStoppedTimer returns a timer that is stopped with its channel drained,
// the state SleepTimer expects between waits. The initial duration is never
// observable: the timer is stopped before it can fire.
func NewStoppedTimer() *time.Timer {
	tm := time.NewTimer(time.Hour)
	stopDrain(tm)
	return tm
}

// SleepTimer blocks for d using the reused timer tm, or until ctx is done,
// in which case it returns ctx.Err() early. tm must be stopped and drained
// on entry (NewStoppedTimer, or a previous SleepTimer return) and is left in
// that state on return, so one timer serves every wait in a loop with zero
// per-iteration allocation.
func SleepTimer(ctx context.Context, tm *time.Timer, d time.Duration) error {
	tm.Reset(d)
	select {
	case <-ctx.Done():
		stopDrain(tm)
		return ctx.Err()
	case <-tm.C:
		return nil
	}
}

// stopDrain stops tm and clears any value already in its channel. The drain
// is non-blocking so the idiom is correct under both timer-channel
// semantics: pre-go1.23 modules (like this one) see a buffered channel that
// may hold an undelivered fire, while go1.23+ modules drop unreceived fires
// on Stop and would deadlock a blocking drain.
func stopDrain(tm *time.Timer) {
	if !tm.Stop() {
		select {
		case <-tm.C:
		default:
		}
	}
}
