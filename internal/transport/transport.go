// Package transport defines the message-passing interface all protocols in
// this library are written against. Two implementations exist:
//
//   - internal/simnet: an in-memory simulated network with adversarial
//     controls (delays, partitions, drops, manual scheduling) used by tests,
//     experiments, and benchmarks;
//   - internal/tcpnet: a TCP implementation with the same semantics, used by
//     the runnable cluster demos in cmd/.
//
// The model is the paper's: point-to-point authenticated channels between
// every pair of processes, asynchronous (no delivery bound), but reliable
// unless the harness explicitly drops messages. Authentication of the channel
// itself (the From field) is assumed, as is standard for BFT protocols;
// statements relayed second-hand are authenticated by signatures (package
// sig), not by the channel.
package transport

import (
	"context"
	"errors"

	"unidir/internal/obs/tracing"
	"unidir/internal/types"
)

// ErrClosed reports use of a transport after Close.
var ErrClosed = errors.New("transport: closed")

// Envelope is one received message.
type Envelope struct {
	From    types.ProcessID
	To      types.ProcessID
	Payload []byte
	// Trace is the sender's trace context, when one rode along with the
	// message (zero otherwise). Transports propagate it out of band of the
	// payload, so signed and attested message bodies are unaffected.
	Trace tracing.Context
}

// Transport is one process's connection to the network.
//
// Send must not block on the destination's consumption (mailboxes are
// unbounded in simnet and writer-buffered in tcpnet), so protocol goroutines
// can never deadlock on each other through the network. Recv blocks until a
// message arrives, ctx is done, or the transport is closed.
type Transport interface {
	// Self returns the process this endpoint belongs to.
	Self() types.ProcessID
	// Send enqueues payload for delivery to the destination process.
	// The payload is owned by the transport after Send returns; callers
	// must not mutate it.
	Send(to types.ProcessID, payload []byte) error
	// Recv returns the next delivered message.
	Recv(ctx context.Context) (Envelope, error)
	// Close releases the endpoint and unblocks pending Recv calls.
	Close() error
}

// TraceSender is optionally implemented by transports that can carry a
// trace context alongside a payload (simnet and tcpnet both do). Protocols
// never depend on it directly; they go through SendTraced, which degrades to
// a plain Send on transports without trace support.
type TraceSender interface {
	SendTraced(to types.ProcessID, payload []byte, tc tracing.Context) error
}

// SendTraced sends payload with tc attached when the transport supports
// trace propagation and tc carries a trace; otherwise it is exactly Send.
func SendTraced(t Transport, to types.ProcessID, payload []byte, tc tracing.Context) error {
	if ts, ok := t.(TraceSender); ok && tc.Valid() {
		return ts.SendTraced(to, payload, tc)
	}
	return t.Send(to, payload)
}

// QueueDepther is optionally implemented by transports whose Send buffers
// outbound traffic per peer (tcpnet's per-peer sender queues). It exposes
// the current depth so upper layers can apply backpressure — a proposer can
// pause cutting batches for a peer whose queue is growing instead of letting
// the buffer absorb load without bound. simnet does not implement it
// (delivery is immediate); callers must treat absence as depth 0.
type QueueDepther interface {
	// QueueDepth reports the number of frames buffered for delivery to one
	// peer. It is a racy snapshot, suitable only for pacing heuristics.
	QueueDepth(to types.ProcessID) int
}

// MaxQueueDepth returns the deepest send queue among ids, or 0 when the
// transport does not expose queue depths.
func MaxQueueDepth(t Transport, ids []types.ProcessID) int {
	qd, ok := t.(QueueDepther)
	if !ok {
		return 0
	}
	max := 0
	for _, id := range ids {
		if d := qd.QueueDepth(id); d > max {
			max = d
		}
	}
	return max
}

// Broadcast sends payload to every process in ids (typically
// Membership.All() or Membership.Others(self)). It stops at the first send
// error. Sending to self is allowed and delivers locally.
func Broadcast(t Transport, ids []types.ProcessID, payload []byte) error {
	for _, id := range ids {
		if err := t.Send(id, payload); err != nil {
			return err
		}
	}
	return nil
}

// BroadcastTraced is Broadcast with a trace context attached to every copy.
func BroadcastTraced(t Transport, ids []types.ProcessID, payload []byte, tc tracing.Context) error {
	for _, id := range ids {
		if err := SendTraced(t, id, payload, tc); err != nil {
			return err
		}
	}
	return nil
}
