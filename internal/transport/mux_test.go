package transport_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"unidir/internal/simnet"
	"unidir/internal/transport"
	"unidir/internal/types"
)

func newPair(t *testing.T) (*simnet.Network, *transport.Mux, *transport.Mux) {
	t.Helper()
	m, err := types.NewMembership(2, 0)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	m0 := transport.NewMux(net.Endpoint(0))
	m1 := transport.NewMux(net.Endpoint(1))
	t.Cleanup(func() {
		_ = m0.Close()
		_ = m1.Close()
		net.Close()
	})
	return net, m0, m1
}

func recvOn(t *testing.T, c *transport.Channel) transport.Envelope {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	env, err := c.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	return env
}

func TestMuxRoutesByTag(t *testing.T) {
	_, m0, m1 := newPair(t)
	a0, b0 := m0.Channel('a'), m0.Channel('b')
	a1, b1 := m1.Channel('a'), m1.Channel('b')

	if err := a0.Send(1, []byte("on-a")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := b0.Send(1, []byte("on-b")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if env := recvOn(t, a1); string(env.Payload) != "on-a" || env.From != 0 {
		t.Fatalf("channel a got %+v", env)
	}
	if env := recvOn(t, b1); string(env.Payload) != "on-b" {
		t.Fatalf("channel b got %+v", env)
	}
	_ = a0
	_ = b1
}

func TestMuxSameTagSameChannel(t *testing.T) {
	_, m0, _ := newPair(t)
	if m0.Channel('x') != m0.Channel('x') {
		t.Fatal("Channel not idempotent")
	}
}

func TestMuxDropsUnknownTags(t *testing.T) {
	net, _, m1 := newPair(t)
	// Raw payload with a tag no one registered on m1.
	net.Inject(0, 1, []byte{0xEE, 1, 2, 3})
	// And an empty payload.
	net.Inject(0, 1, nil)
	known := m1.Channel('k')
	net.Inject(0, 1, append([]byte{'k'}, []byte("ok")...))
	if env := recvOn(t, known); string(env.Payload) != "ok" {
		t.Fatalf("known channel got %q", env.Payload)
	}
	if d := m1.Dropped(); d != 2 {
		t.Fatalf("Dropped = %d, want 2", d)
	}
}

func TestMuxCloseUnblocksChannels(t *testing.T) {
	_, m0, _ := newPair(t)
	c := m0.Channel('z')
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Recv(context.Background())
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := m0.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("Recv err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock")
	}
}

func TestMuxChannelSelf(t *testing.T) {
	_, m0, _ := newPair(t)
	if got := m0.Channel('s').Self(); got != 0 {
		t.Fatalf("Self = %v", got)
	}
}

func TestBroadcastHelper(t *testing.T) {
	m, _ := types.NewMembership(3, 0)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	if err := transport.Broadcast(net.Endpoint(0), m.Others(0), []byte("fanout")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	for _, id := range []types.ProcessID{1, 2} {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		env, err := net.Endpoint(id).Recv(ctx)
		cancel()
		if err != nil || string(env.Payload) != "fanout" {
			t.Fatalf("endpoint %v: %v %q", id, err, env.Payload)
		}
	}
}
