package transport

import (
	"context"
	"fmt"
	"sync"

	"unidir/internal/types"
)

// Mux multiplexes one Transport endpoint among several sub-protocols. Each
// sub-protocol gets a Channel identified by a one-byte tag; Send prefixes
// the tag, and a single receive loop dispatches incoming envelopes to the
// matching channel's mailbox. Envelopes with unknown tags or empty payloads
// are counted and dropped (a Byzantine peer can always send garbage; it must
// not wedge the demultiplexer).
//
// Lifecycle: NewMux starts the receive loop; Close stops it, closes every
// channel, and waits for the loop to exit.
type Mux struct {
	tr Transport

	mu      sync.Mutex
	chans   map[byte]*Channel
	dropped int

	cancel context.CancelFunc
	done   chan struct{}
}

// NewMux wraps tr and starts the dispatch loop.
func NewMux(tr Transport) *Mux {
	ctx, cancel := context.WithCancel(context.Background())
	m := &Mux{
		tr:     tr,
		chans:  make(map[byte]*Channel),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go m.loop(ctx)
	return m
}

// Channel returns the sub-transport for tag, creating it on first use.
// Calling Channel with the same tag returns the same *Channel.
func (m *Mux) Channel(tag byte) *Channel {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.chans[tag]; ok {
		return c
	}
	c := &Channel{
		mux:    m,
		tag:    tag,
		notify: make(chan struct{}, 1),
	}
	m.chans[tag] = c
	return c
}

// Dropped returns the number of envelopes discarded for unknown tags or
// malformed payloads.
func (m *Mux) Dropped() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

// Close stops the dispatch loop and closes all channels.
func (m *Mux) Close() error {
	m.cancel()
	<-m.done
	m.mu.Lock()
	chans := make([]*Channel, 0, len(m.chans))
	for _, c := range m.chans {
		chans = append(chans, c)
	}
	m.mu.Unlock()
	for _, c := range chans {
		c.close()
	}
	return nil
}

func (m *Mux) loop(ctx context.Context) {
	defer close(m.done)
	for {
		env, err := m.tr.Recv(ctx)
		if err != nil {
			return
		}
		if len(env.Payload) == 0 {
			m.mu.Lock()
			m.dropped++
			m.mu.Unlock()
			continue
		}
		tag := env.Payload[0]
		env.Payload = env.Payload[1:]
		m.mu.Lock()
		c := m.chans[tag]
		if c == nil {
			m.dropped++
			m.mu.Unlock()
			continue
		}
		m.mu.Unlock()
		c.enqueue(env)
	}
}

// Channel is one tagged sub-transport of a Mux. It implements Transport.
type Channel struct {
	mux *Mux
	tag byte

	mu     sync.Mutex
	queue  []Envelope
	notify chan struct{}
	closed bool
}

var _ Transport = (*Channel)(nil)

// Self returns the underlying endpoint's process ID.
func (c *Channel) Self() types.ProcessID { return c.mux.tr.Self() }

// Send transmits payload on this channel's tag.
func (c *Channel) Send(to types.ProcessID, payload []byte) error {
	buf := make([]byte, 1+len(payload))
	buf[0] = c.tag
	copy(buf[1:], payload)
	if err := c.mux.tr.Send(to, buf); err != nil {
		return fmt.Errorf("mux channel %d: %w", c.tag, err)
	}
	return nil
}

// Recv returns the next envelope dispatched to this channel.
func (c *Channel) Recv(ctx context.Context) (Envelope, error) {
	for {
		c.mu.Lock()
		if len(c.queue) > 0 {
			env := c.queue[0]
			c.queue = c.queue[1:]
			c.mu.Unlock()
			return env, nil
		}
		if c.closed {
			c.mu.Unlock()
			return Envelope{}, ErrClosed
		}
		c.mu.Unlock()
		select {
		case <-c.notify:
		case <-ctx.Done():
			return Envelope{}, ctx.Err()
		}
	}
}

// Close marks the channel closed, unblocking Recv. The underlying transport
// and sibling channels are unaffected.
func (c *Channel) Close() error {
	c.close()
	return nil
}

func (c *Channel) enqueue(env Envelope) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.queue = append(c.queue, env)
	c.mu.Unlock()
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

func (c *Channel) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	select {
	case c.notify <- struct{}{}:
	default:
	}
}
