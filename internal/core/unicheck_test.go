package core

import (
	"testing"

	"unidir/internal/types"
)

func ids(ns ...int) []types.ProcessID {
	out := make([]types.ProcessID, len(ns))
	for i, n := range ns {
		out[i] = types.ProcessID(n)
	}
	return out
}

func TestNoViolationWhenOneDirectionHeard(t *testing.T) {
	c := NewUniChecker()
	c.Sent(0, 1)
	c.Sent(1, 1)
	c.Got(0, 1, 1) // p0 hears p1; p1 never hears p0
	c.Boundary(0, 1)
	c.Boundary(1, 1)
	if v := c.Violations(ids(0, 1)); len(v) != 0 {
		t.Fatalf("violations = %v, want none", v)
	}
}

func TestViolationWhenNeitherHeard(t *testing.T) {
	c := NewUniChecker()
	c.Sent(0, 1)
	c.Sent(1, 1)
	c.Boundary(0, 1)
	c.Boundary(1, 1)
	v := c.Violations(ids(0, 1))
	if len(v) != 1 || v[0].A != 0 || v[0].B != 1 || v[0].Round != 1 {
		t.Fatalf("violations = %v", v)
	}
	if v[0].String() == "" {
		t.Fatal("violation should format")
	}
}

func TestLateGotDoesNotCount(t *testing.T) {
	c := NewUniChecker()
	c.Sent(0, 1)
	c.Sent(1, 1)
	c.Boundary(0, 1)
	c.Got(0, 1, 1) // arrives after p0's boundary
	c.Boundary(1, 1)
	c.Got(1, 0, 1) // arrives after p1's boundary
	if v := c.Violations(ids(0, 1)); len(v) != 1 {
		t.Fatalf("violations = %v, want 1 (both receptions were late)", v)
	}
	// ...but the eventual-delivery view still records them.
	if !c.GotEver(0, 1, 1) || !c.GotEver(1, 0, 1) {
		t.Fatal("GotEver lost late arrivals")
	}
	if c.GotByBoundary(0, 1, 1) {
		t.Fatal("GotByBoundary counted a late arrival")
	}
}

func TestUnevaluablePairsAreVacuouslyFine(t *testing.T) {
	c := NewUniChecker()
	c.Sent(0, 1)
	c.Sent(1, 1)
	c.Boundary(0, 1)
	// p1 never reaches its boundary: the pair must not be reported.
	if v := c.Violations(ids(0, 1)); len(v) != 0 {
		t.Fatalf("violations = %v, want none (p1 still in round)", v)
	}
}

func TestOnlySendingPairsAreConstrained(t *testing.T) {
	c := NewUniChecker()
	c.Sent(0, 1) // p1 sits the round out
	c.Boundary(0, 1)
	c.Boundary(1, 1)
	if v := c.Violations(ids(0, 1)); len(v) != 0 {
		t.Fatalf("violations = %v, want none", v)
	}
}

func TestByzantinePairsExcluded(t *testing.T) {
	c := NewUniChecker()
	c.Sent(0, 1)
	c.Sent(1, 1)
	c.Sent(2, 1)
	c.Got(0, 1, 1)
	c.Got(1, 0, 1)
	for _, p := range ids(0, 1, 2) {
		c.Boundary(p, 1)
	}
	// Only 0 and 1 are correct; pairs involving 2 are unconstrained.
	if v := c.Violations(ids(0, 1)); len(v) != 0 {
		t.Fatalf("violations = %v, want none", v)
	}
	// If 2 were also correct, its silence would be a violation with both.
	if v := c.Violations(ids(0, 1, 2)); len(v) != 2 {
		t.Fatalf("violations = %v, want 2", v)
	}
}

func TestMultipleRoundsIndependent(t *testing.T) {
	c := NewUniChecker()
	for r := types.Round(1); r <= 3; r++ {
		c.Sent(0, r)
		c.Sent(1, r)
		if r != 2 {
			c.Got(0, 1, r)
		}
		c.Boundary(0, r)
		c.Boundary(1, r)
	}
	v := c.Violations(ids(0, 1))
	if len(v) != 1 || v[0].Round != 2 {
		t.Fatalf("violations = %v, want exactly round 2", v)
	}
	if got := c.Rounds(); len(got) != 3 {
		t.Fatalf("Rounds = %v", got)
	}
}

func TestFinishAllFreezesEverything(t *testing.T) {
	c := NewUniChecker()
	c.Sent(0, 1)
	c.Sent(1, 1)
	c.FinishAll(ids(0, 1))
	if v := c.Violations(ids(0, 1)); len(v) != 1 {
		t.Fatalf("violations after FinishAll = %v, want 1", v)
	}
}

func TestOwnMessagePossessedImmediately(t *testing.T) {
	c := NewUniChecker()
	c.Sent(0, 1)
	if !c.GotEver(0, 0, 1) {
		t.Fatal("sender does not possess its own message")
	}
}

func TestClassSubsumption(t *testing.T) {
	if !Bidirectional.Subsumes(Unidirectional) || !Unidirectional.Subsumes(ZeroDirectional) {
		t.Fatal("subsumption order broken")
	}
	if ZeroDirectional.Subsumes(Unidirectional) {
		t.Fatal("zero-directional must not subsume unidirectional")
	}
	if Bidirectional.String() == "" || Unidirectional.String() == "" || ZeroDirectional.String() == "" {
		t.Fatal("class names must format")
	}
}
