package core

import (
	"strings"
	"testing"
)

func TestImplicationMatrix(t *testing.T) {
	// Prints Figure 1 as the library encodes it (go test -run
	// TestImplicationMatrix -v ./internal/core) and verifies consistency.
	if err := ValidateDiagram(); err != nil {
		t.Fatal(err)
	}
	for _, e := range Edges() {
		arrow := "==>"
		if e.Kind == Cannot {
			arrow = "=X=>"
		}
		t.Logf("%-58s %-4s %-42s [%s] via %s", e.From, arrow, e.To, e.Resilience, e.Witness)
	}
}

func TestDiagramCoversBothHardwareClasses(t *testing.T) {
	classes := map[string]bool{}
	for _, n := range Nodes() {
		if n.Kind == HardwareClass {
			classes[n.Name] = true
		}
	}
	if len(classes) != 2 {
		t.Fatalf("expected exactly 2 hardware classes, got %v", classes)
	}
	if !classes[NodeSharedMemory] || !classes[NodeTrustedLogs] {
		t.Fatalf("hardware classes misnamed: %v", classes)
	}
}

func TestDiagramHasTheSeparation(t *testing.T) {
	// The paper's central claim: an Implements edge from unidirectionality
	// to SRB, and a Cannot edge back.
	var forward, backward bool
	for _, e := range Edges() {
		if e.From == NodeUnidirectional && e.To == NodeSRB && e.Kind == Implements {
			forward = true
		}
		if e.From == NodeSRB && e.To == NodeUnidirectional && e.Kind == Cannot {
			backward = true
		}
	}
	if !forward || !backward {
		t.Fatalf("separation edges missing: forward=%v backward=%v", forward, backward)
	}
}

func TestSharedMemoryStrictlyAboveTrustedLogs(t *testing.T) {
	sm, err := NodeByName(NodeSharedMemory)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := NodeByName(NodeTrustedLogs)
	if err != nil {
		t.Fatal(err)
	}
	if !sm.Class.Subsumes(tl.Class) || tl.Class.Subsumes(sm.Class) {
		t.Fatalf("class order wrong: shared=%v logs=%v", sm.Class, tl.Class)
	}
}

func TestNodeByNameUnknown(t *testing.T) {
	if _, err := NodeByName("nonsense"); err == nil || !strings.Contains(err.Error(), "nonsense") {
		t.Fatalf("err = %v", err)
	}
}

func TestEveryEdgeNamesARealPackage(t *testing.T) {
	for _, e := range Edges() {
		if !strings.HasPrefix(e.Package, "internal/") {
			t.Fatalf("edge %q -> %q names package %q", e.From, e.To, e.Package)
		}
	}
}
