package core

import "fmt"

// This file encodes Figure 1 of the paper — the implication diagram between
// hardware and communication classes — as queryable library metadata. Each
// edge names the construction (or impossibility) witnessing it and the
// package and test that make it executable. The live end-to-end checks run
// in cmd/benchharness -exp f1; `go test ./internal/core -run
// TestImplicationMatrix -v` prints this table and verifies its consistency.

// NodeKind distinguishes hardware classes from communication primitives in
// the diagram.
type NodeKind int

// Diagram node kinds.
const (
	HardwareClass NodeKind = iota + 1
	Primitive
)

// DiagramNode is one vertex of Figure 1.
type DiagramNode struct {
	Name  string
	Kind  NodeKind
	Class Class // the communication class the node belongs to / provides
}

// EdgeKind says whether the arrow is a possibility or an impossibility.
type EdgeKind int

// Edge kinds.
const (
	Implements EdgeKind = iota + 1 // From can implement To
	Cannot                         // From provably cannot implement To
)

// DiagramEdge is one arrow of Figure 1, annotated with its witness.
type DiagramEdge struct {
	From, To   string
	Kind       EdgeKind
	Resilience string // the (n, f) regime of the witness
	Witness    string // the construction or argument
	Package    string // where the executable witness lives
	Test       string // the test (or experiment) that checks it
}

// Diagram node names (exported for tooling that renders the matrix).
const (
	NodeSharedMemory   = "shared memory with ACLs (SWMR, sticky bits, PEATS)"
	NodeTrustedLogs    = "trusted logs (A2M, TrInc, SGX-style)"
	NodeUnidirectional = "unidirectional rounds"
	NodeSRB            = "sequenced reliable broadcast"
	NodeTrInc          = "TrInc interface"
	NodeRB             = "reliable broadcast"
	NodeBidirectional  = "bidirectional rounds (lock-step synchrony)"
	NodeZero           = "zero-directional rounds (asynchrony)"
)

// Nodes returns the diagram's vertices.
func Nodes() []DiagramNode {
	return []DiagramNode{
		{Name: NodeSharedMemory, Kind: HardwareClass, Class: Unidirectional},
		{Name: NodeTrustedLogs, Kind: HardwareClass, Class: ZeroDirectional},
		{Name: NodeBidirectional, Kind: Primitive, Class: Bidirectional},
		{Name: NodeUnidirectional, Kind: Primitive, Class: Unidirectional},
		{Name: NodeZero, Kind: Primitive, Class: ZeroDirectional},
		{Name: NodeSRB, Kind: Primitive, Class: ZeroDirectional},
		{Name: NodeTrInc, Kind: Primitive, Class: ZeroDirectional},
		{Name: NodeRB, Kind: Primitive, Class: ZeroDirectional},
	}
}

// Edges returns the diagram's arrows with their executable witnesses.
func Edges() []DiagramEdge {
	return []DiagramEdge{
		{
			From: NodeSharedMemory, To: NodeUnidirectional, Kind: Implements,
			Resilience: "any n, f",
			Witness:    "write-then-scan rounds (Claim 3.2; Aguilera et al.)",
			Package:    "internal/rounds (SWMR)",
			Test:       "rounds.TestSWMRUnidirectionalRandomSchedules, separation.TestSWMRControlArmHasNoViolations",
		},
		{
			From: NodeUnidirectional, To: NodeSRB, Kind: Implements,
			Resilience: "n >= 2t+1",
			Witness:    "Algorithm 1: echo round + L1/L2 proofs",
			Package:    "internal/srb/uniround",
			Test:       "srb.TestAllImplsSatisfySRBProperties/uniround",
		},
		{
			From: NodeTrustedLogs, To: NodeSRB, Kind: Implements,
			Resilience: "n > f",
			Witness:    "attested contiguous counter chain + relay",
			Package:    "internal/srb/trincsrb",
			Test:       "srb.TestAllImplsSatisfySRBProperties/trincsrb",
		},
		{
			From: NodeSRB, To: NodeTrInc, Kind: Implements,
			Resilience: "any n, f",
			Witness:    "Theorem 1: broadcast (c, m); checkers filter by delivery order",
			Package:    "internal/trusted/trincfromsrb",
			Test:       "trincfromsrb conformance suite",
		},
		{
			From: NodeSRB, To: NodeUnidirectional, Kind: Cannot,
			Resilience: "n > 2f, f > 1",
			Witness:    "three-scenario indistinguishability (§4.1)",
			Package:    "internal/separation",
			Test:       "separation.TestScenario3ProducesViolation",
		},
		{
			From: NodeRB, To: NodeUnidirectional, Kind: Implements,
			Resilience: "n >= 3, f = 1",
			Witness:    "two-phase sign-and-forward (Appendix corner case)",
			Package:    "internal/rounds (RBF1)",
			Test:       "rounds.TestRBF1UnidirectionalRandomSchedules",
		},
		{
			From: NodeBidirectional, To: NodeUnidirectional, Kind: Implements,
			Resilience: "any n, f",
			Witness:    "by definition (Class.Subsumes)",
			Package:    "internal/core, internal/rounds (Lockstep)",
			Test:       "rounds.TestLockstepIsBidirectional",
		},
		{
			From: NodeUnidirectional, To: NodeZero, Kind: Implements,
			Resilience: "any n, f",
			Witness:    "by definition (Class.Subsumes)",
			Package:    "internal/core",
			Test:       "core.TestClassSubsumption",
		},
	}
}

// NodeByName returns the node with the given name.
func NodeByName(name string) (DiagramNode, error) {
	for _, n := range Nodes() {
		if n.Name == name {
			return n, nil
		}
	}
	return DiagramNode{}, fmt.Errorf("core: no diagram node %q", name)
}

// ValidateDiagram checks the matrix's internal consistency: every edge
// endpoint is a known node, and every Implements edge goes from a node
// whose class subsumes the target's required class — except constructions
// that *raise* the class using resilience assumptions (n >= 2t+1 and the
// f=1 corner case), which are exactly the paper's nontrivial results.
func ValidateDiagram() error {
	for _, e := range Edges() {
		if _, err := NodeByName(e.From); err != nil {
			return err
		}
		if _, err := NodeByName(e.To); err != nil {
			return err
		}
		if e.Witness == "" || e.Package == "" || e.Test == "" {
			return fmt.Errorf("core: edge %q -> %q missing witness metadata", e.From, e.To)
		}
	}
	return nil
}
