// Package core contains the paper's primary contribution in executable
// form: the communication-class definitions (zero-directional,
// unidirectional, bidirectional — §"Old stuff" definitions retained in the
// appendix of the paper), the machine-checkable unidirectionality predicate
// over recorded executions (UniChecker), and the implication matrix of
// Figure 1 mapping every classification arrow to the construction and test
// that witnesses it.
package core

import "fmt"

// Class is a communication power class from the paper.
type Class int

// Communication classes, ordered by strength.
const (
	// ZeroDirectional: rounds may end with neither of a pair of correct
	// senders having received the other's message (classic asynchrony).
	ZeroDirectional Class = iota + 1
	// Unidirectional: for any pair of correct processes that both send in
	// round r, at least one receives the other's message before its next
	// round (shared-memory trusted hardware).
	Unidirectional
	// Bidirectional: every correct-to-correct round-r message arrives
	// before the receiver's next round (lock-step synchrony).
	Bidirectional
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ZeroDirectional:
		return "zero-directional"
	case Unidirectional:
		return "unidirectional"
	case Bidirectional:
		return "bidirectional"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Subsumes reports whether class c provides at least the guarantee of d
// ("given bidirectional communication we can implement unidirectional
// communication", and unidirectional trivially implements zero-directional;
// both follow directly from the definitions).
func (c Class) Subsumes(d Class) bool { return c >= d }
