package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"unidir/internal/types"
)

// Oracle test: feed random event sequences to the incremental UniChecker
// and compare its verdicts against a brute-force re-evaluation of the
// paper's predicate over the same event trace.

// traceEvent is one recorded event in the synthetic execution.
type traceEvent struct {
	kind byte // 's' sent, 'g' got, 'b' boundary
	p, q types.ProcessID
	r    types.Round
}

// bruteForce evaluates the unidirectionality predicate directly from the
// trace: for each pair (p, q) and round r where both sent and both have a
// boundary, check whether either Got event happened before the receiving
// process's boundary.
func bruteForce(trace []traceEvent, correct []types.ProcessID) []Violation {
	type pr struct {
		p types.ProcessID
		r types.Round
	}
	sent := map[pr]bool{}
	boundaryIdx := map[pr]int{}
	type gk struct {
		p, q types.ProcessID
		r    types.Round
	}
	firstGot := map[gk]int{}
	rounds := map[types.Round]bool{}
	for i, ev := range trace {
		switch ev.kind {
		case 's':
			sent[pr{ev.p, ev.r}] = true
			rounds[ev.r] = true
			key := gk{ev.p, ev.p, ev.r}
			if _, ok := firstGot[key]; !ok {
				firstGot[key] = i
			}
		case 'g':
			key := gk{ev.p, ev.q, ev.r}
			if _, ok := firstGot[key]; !ok {
				firstGot[key] = i
			}
		case 'b':
			key := pr{ev.p, ev.r}
			if _, ok := boundaryIdx[key]; !ok {
				boundaryIdx[key] = i
			}
		}
	}
	gotByBoundary := func(p, q types.ProcessID, r types.Round) bool {
		b, ok := boundaryIdx[pr{p, r}]
		if !ok {
			return false
		}
		g, ok := firstGot[gk{p, q, r}]
		return ok && g < b
	}
	var out []Violation
	for r := range rounds {
		for i := 0; i < len(correct); i++ {
			for j := i + 1; j < len(correct); j++ {
				p, q := correct[i], correct[j]
				if !sent[pr{p, r}] || !sent[pr{q, r}] {
					continue
				}
				_, pb := boundaryIdx[pr{p, r}]
				_, qb := boundaryIdx[pr{q, r}]
				if !pb || !qb {
					continue
				}
				if gotByBoundary(p, q, r) || gotByBoundary(q, p, r) {
					continue
				}
				out = append(out, Violation{A: p, B: q, Round: r})
			}
		}
	}
	return out
}

func TestQuickUniCheckerMatchesBruteForce(t *testing.T) {
	const n = 4
	correct := ids(0, 1, 2, 3)
	f := func(seed int64, length uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewUniChecker()
		var trace []traceEvent
		for i := 0; i < int(length); i++ {
			p := types.ProcessID(rng.Intn(n))
			q := types.ProcessID(rng.Intn(n))
			r := types.Round(rng.Intn(3) + 1)
			switch rng.Intn(3) {
			case 0:
				c.Sent(p, r)
				trace = append(trace, traceEvent{kind: 's', p: p, r: r})
			case 1:
				c.Got(p, q, r)
				trace = append(trace, traceEvent{kind: 'g', p: p, q: q, r: r})
			case 2:
				c.Boundary(p, r)
				trace = append(trace, traceEvent{kind: 'b', p: p, r: r})
			}
		}
		got := c.Violations(correct)
		want := bruteForce(trace, correct)
		if len(got) != len(want) {
			return false
		}
		wantSet := make(map[Violation]bool, len(want))
		for _, v := range want {
			wantSet[v] = true
		}
		for _, v := range got {
			// Violations are reported with A < B in both evaluators, but
			// normalize anyway.
			alt := Violation{A: v.B, B: v.A, Round: v.Round}
			if !wantSet[v] && !wantSet[alt] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The boundary-freeze rule has a subtlety the oracle must agree on: a Got
// after the boundary never revives the pair.
func TestQuickLateGotNeverRevives(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewUniChecker()
		c.Sent(0, 1)
		c.Sent(1, 1)
		c.Boundary(0, 1)
		c.Boundary(1, 1)
		// Any sequence of post-boundary Gots...
		for i := 0; i < rng.Intn(5); i++ {
			c.Got(types.ProcessID(rng.Intn(2)), types.ProcessID(rng.Intn(2)), 1)
		}
		// ...must leave exactly one violation in place.
		return len(c.Violations(ids(0, 1))) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
