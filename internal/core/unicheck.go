package core

import (
	"fmt"
	"sort"
	"sync"

	"unidir/internal/types"
)

// UniChecker records one execution of a round system and evaluates the
// paper's unidirectionality predicate over it:
//
//	for any pair of correct processes p and q that both send a message in
//	round r, either p receives q's round-r message before the beginning of
//	p's next round, or q receives p's before the beginning of q's next round.
//
// Instrumented round systems report three event kinds, each at the moment it
// happens in the execution:
//
//	Sent(p, r)      — p sent its round-r message
//	Got(p, q, r)    — p now possesses q's round-r message
//	Boundary(p, r)  — p's round r is over (p is about to begin round r+1,
//	                  or the harness declared the execution finished)
//
// At Boundary(p, r) the checker freezes p's round-r receive set: Got events
// arriving later are recorded (they matter for eventual-delivery checks) but
// do not count toward the unidirectionality predicate for round r.
//
// A pair (p, q, r) is *evaluable* once both boundaries are frozen; it is a
// violation if both sent and neither frozen set contains the other. Pairs
// whose boundaries never froze are vacuously satisfied (the processes may
// yet receive the messages before their next rounds).
//
// UniChecker is safe for concurrent use by all processes of an execution.
type UniChecker struct {
	mu       sync.Mutex
	sent     map[procRound]bool
	got      map[gotKey]bool
	frozen   map[gotKey]bool // receive state at boundary time
	boundary map[procRound]bool
	rounds   map[types.Round]bool
}

type procRound struct {
	p types.ProcessID
	r types.Round
}

type gotKey struct {
	p, q types.ProcessID // p has q's message
	r    types.Round
}

// NewUniChecker returns an empty checker.
func NewUniChecker() *UniChecker {
	return &UniChecker{
		sent:     make(map[procRound]bool),
		got:      make(map[gotKey]bool),
		frozen:   make(map[gotKey]bool),
		boundary: make(map[procRound]bool),
		rounds:   make(map[types.Round]bool),
	}
}

// Sent records that p sent its round-r message. A process's own message is
// considered in its possession immediately.
func (c *UniChecker) Sent(p types.ProcessID, r types.Round) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sent[procRound{p, r}] = true
	c.rounds[r] = true
	c.got[gotKey{p, p, r}] = true
}

// Got records that p now possesses q's round-r message.
func (c *UniChecker) Got(p, q types.ProcessID, r types.Round) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.boundary[procRound{p, r}] {
		// Late arrival: keep for eventual-delivery introspection only.
		c.got[gotKey{p, q, r}] = true
		return
	}
	c.got[gotKey{p, q, r}] = true
	c.frozen[gotKey{p, q, r}] = true
}

// Boundary marks the end of p's round r (the beginning of its next round).
// Idempotent.
func (c *UniChecker) Boundary(p types.ProcessID, r types.Round) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.boundary[procRound{p, r}] = true
}

// FinishAll marks a boundary for every process in ids at every round seen so
// far. Harnesses call it when the execution is declared over and every
// process has provably begun its next activity (or will never receive more).
func (c *UniChecker) FinishAll(ids []types.ProcessID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for r := range c.rounds {
		for _, p := range ids {
			c.boundary[procRound{p, r}] = true
		}
	}
}

// Violation is one falsification of the unidirectionality predicate.
type Violation struct {
	A, B  types.ProcessID
	Round types.Round
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("round %d: %v and %v both sent, neither received the other by its boundary", v.Round, v.A, v.B)
}

// Violations evaluates the predicate over all evaluable pairs of the given
// correct processes and returns every violation, ordered deterministically.
func (c *UniChecker) Violations(correct []types.ProcessID) []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Violation
	rounds := make([]types.Round, 0, len(c.rounds))
	for r := range c.rounds {
		rounds = append(rounds, r)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	for _, r := range rounds {
		for i := 0; i < len(correct); i++ {
			for j := i + 1; j < len(correct); j++ {
				p, q := correct[i], correct[j]
				if !c.sent[procRound{p, r}] || !c.sent[procRound{q, r}] {
					continue
				}
				if !c.boundary[procRound{p, r}] || !c.boundary[procRound{q, r}] {
					continue // not evaluable yet
				}
				if c.frozen[gotKey{p, q, r}] || c.frozen[gotKey{q, p, r}] {
					continue
				}
				out = append(out, Violation{A: p, B: q, Round: r})
			}
		}
	}
	return out
}

// GotByBoundary reports whether p possessed q's round-r message when p's
// round-r boundary froze.
func (c *UniChecker) GotByBoundary(p, q types.ProcessID, r types.Round) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frozen[gotKey{p, q, r}]
}

// GotEver reports whether p possessed q's round-r message at any time
// (including after the boundary) — the eventual-delivery view.
func (c *UniChecker) GotEver(p, q types.ProcessID, r types.Round) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.got[gotKey{p, q, r}]
}

// Rounds returns all round numbers in which any send was recorded.
func (c *UniChecker) Rounds() []types.Round {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]types.Round, 0, len(c.rounds))
	for r := range c.rounds {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
