// Package harness provides ready-made cluster builders for benchmarks,
// experiments, and the cmd/ tools: full SRB node sets over each substrate,
// and SMR deployments (MinBFT, PBFT) over the simulated network with a
// connected client.
package harness

// Cluster builders shared by the experiments: SRB node sets over each
// substrate, and SMR clusters (MinBFT, PBFT) over simnet.

import (
	"fmt"
	"math/rand"
	"time"

	"unidir/internal/cluster"
	"unidir/internal/kvstore"
	"unidir/internal/obs"
	"unidir/internal/obs/tracing"
	"unidir/internal/rounds"
	"unidir/internal/sig"
	"unidir/internal/simnet"
	"unidir/internal/smr"
	"unidir/internal/srb"
	"unidir/internal/srb/a2msrb"
	"unidir/internal/srb/bracha"
	"unidir/internal/srb/trincsrb"
	"unidir/internal/srb/uniround"
	"unidir/internal/transport"
	"unidir/internal/trusted/a2m"
	"unidir/internal/trusted/swmr"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

// SRBCluster is a running SRB node set.
type SRBCluster struct {
	Nodes []srb.Node
	Stop  func()
}

// BuildUniroundCluster builds a uniround SRB node set with the default
// HMAC scheme. See BuildUniroundClusterScheme to choose the scheme.
func BuildUniroundCluster(m types.Membership) (*SRBCluster, error) {
	return BuildUniroundClusterScheme(m, sig.HMAC)
}

// BuildUniroundClusterScheme builds a uniround SRB node set over SWMR
// stores, signing with the given scheme (Ed25519 for realistic crypto
// cost, HMAC for a cheap simulation).
func BuildUniroundClusterScheme(m types.Membership, scheme sig.Scheme) (*SRBCluster, error) {
	rings, err := sig.NewKeyrings(m, scheme, rand.New(rand.NewSource(1)))
	if err != nil {
		return nil, err
	}
	stores := make([]*swmr.Store, m.N)
	for s := range stores {
		if stores[s], err = swmr.NewStore(m); err != nil {
			return nil, err
		}
	}
	nodes := make([]srb.Node, m.N)
	for i := 0; i < m.N; i++ {
		self := types.ProcessID(i)
		nodes[i], err = uniround.New(m, rings[i], func(sender types.ProcessID) (rounds.System, error) {
			return rounds.NewSWMR(swmr.NewLocal(stores[sender], self), m)
		})
		if err != nil {
			return nil, err
		}
	}
	return &SRBCluster{Nodes: nodes, Stop: func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}}, nil
}

// BuildTrincCluster builds a TrInc SRB node set with the default HMAC
// scheme. See BuildTrincClusterScheme to choose the scheme.
func BuildTrincCluster(m types.Membership) (*SRBCluster, error) {
	return BuildTrincClusterScheme(m, sig.HMAC)
}

// BuildTrincClusterScheme builds a TrInc SRB node set over a simulated
// network, with trinkets signing under the given scheme.
func BuildTrincClusterScheme(m types.Membership, scheme sig.Scheme) (*SRBCluster, error) {
	net, err := simnet.New(m)
	if err != nil {
		return nil, err
	}
	tu, err := trinc.NewUniverse(m, scheme, rand.New(rand.NewSource(2)))
	if err != nil {
		net.Close()
		return nil, err
	}
	nodes := make([]srb.Node, m.N)
	for i := 0; i < m.N; i++ {
		nodes[i], err = trincsrb.New(m, net.Endpoint(types.ProcessID(i)), tu.Devices[i], tu.Verifier)
		if err != nil {
			net.Close()
			return nil, err
		}
	}
	return &SRBCluster{Nodes: nodes, Stop: func() {
		for _, n := range nodes {
			_ = n.Close()
		}
		net.Close()
	}}, nil
}

func BuildBrachaCluster(m types.Membership) (*SRBCluster, error) {
	net, err := simnet.New(m)
	if err != nil {
		return nil, err
	}
	nodes := make([]srb.Node, m.N)
	for i := 0; i < m.N; i++ {
		nodes[i], err = bracha.New(m, net.Endpoint(types.ProcessID(i)))
		if err != nil {
			net.Close()
			return nil, err
		}
	}
	return &SRBCluster{Nodes: nodes, Stop: func() {
		for _, n := range nodes {
			_ = n.Close()
		}
		net.Close()
	}}, nil
}

// SMRCluster is a running SMR deployment with two connected clients: KV is
// the closed-loop client (one request outstanding), Pipe the pipelined one
// (up to the configured window outstanding — the load shape that gives a
// batching primary something to batch).
type SMRCluster struct {
	KV      *kvstore.Client
	Pipe    *kvstore.PipeClient   // Pipes[0]
	Pipes   []*kvstore.PipeClient // all pipelined clients (SMRConfig.PipeClients)
	Metrics *obs.Registry         // non-nil iff SMRConfig.Metrics was set
	Stop    func()

	spanBufs []*tracing.SpanBuffer // per-node buffers; nil without TraceRate
}

// SMRConfig parameterizes an SMR deployment.
type SMRConfig struct {
	F         int           // faults tolerated (n derived per protocol)
	Scheme    sig.Scheme    // signature scheme for the trusted components
	Batch     int           // consensus batch cap; 0 = smr.DefaultBatchSize(), 1 = unbatched
	Window    int           // pipelined client's in-flight window; 0 = 32
	Ckpt      int           // checkpoint interval; 0 = smr.DefaultCheckpointInterval(), < 0 disables
	Metrics   *obs.Registry // optional: replicas, sig cache, and pipeline publish here
	TraceRate int           // distributed tracing: 1-in-TraceRate requests sampled; 0 disables
	TraceBuf  int           // per-node span buffer capacity; 0 = 8192

	// Flow control (the B9 latency/throughput frontier knobs).

	// BatchDeadline is the adaptive size-or-deadline batch trigger: 0 keeps
	// the replica default (UNIDIR_BATCH_DEADLINE, 100µs), < 0 disables
	// deadline batching (legacy cut-immediately), > 0 sets it explicitly.
	BatchDeadline time.Duration
	// FixedBatchWindow holds every partial batch for the full BatchDeadline
	// regardless of load (the non-adaptive baseline the B9 experiment
	// compares against). Only meaningful with BatchDeadline > 0.
	FixedBatchWindow bool
	// Admission overrides the replicas' admission bounds; nil keeps the
	// replica default (UNIDIR_ADMIT_* environment knobs).
	Admission *smr.AdmissionConfig
	// PaceDepth overrides proposal pacing: 0 keeps the replica default
	// (UNIDIR_PACE_DEPTH), < 0 disables pacing, > 0 sets the queue-depth
	// threshold. No effect over simnet (no QueueDepther).
	PaceDepth int
	// SubmitTimeout bounds Pipeline.Submit on an exhausted window; past it
	// Submit sheds with smr.ErrOverloaded. 0 blocks indefinitely (legacy).
	SubmitTimeout time.Duration
	// AdaptiveWindow > 0 turns on AIMD window adaptation in the pipelined
	// client, shrinking toward this minimum under overload.
	AdaptiveWindow int

	// Read fast path (leader leases; see smr/read.go and DESIGN.md §8).

	// LeaseTerm overrides the replicas' lease term: 0 keeps the replica
	// default (UNIDIR_LEASE, 250ms), < 0 disables leases, > 0 sets the term
	// explicitly.
	LeaseTerm time.Duration
	// ReadWindow is the pipelined client's in-flight read window; 0 keeps
	// the pipeline default (UNIDIR_READ_WINDOW, else the write window).
	ReadWindow int
	// PipeClients is how many pipelined clients to connect (0 = 1). Extra
	// clients let read benchmarks push past a single receive loop's
	// message-processing ceiling and saturate the replicas instead.
	PipeClients int
}

const defaultPipeWindow = 32

const defaultTraceBuf = 8192

// smrTracers provisions one tracer per replica plus the pipeline client's,
// which is where the head-sampling decision lives (replica tracers use rate
// 1: they record whenever a propagated context says sampled). Returns nils
// when tracing is off.
func smrTracers(cfg SMRConfig, n int) (replicas []*tracing.Tracer, pipe *tracing.Tracer, bufs []*tracing.SpanBuffer) {
	if cfg.TraceRate <= 0 {
		return nil, nil, nil
	}
	cap := cfg.TraceBuf
	if cap <= 0 {
		cap = defaultTraceBuf
	}
	replicas = make([]*tracing.Tracer, n)
	for i := range replicas {
		buf := tracing.NewSpanBuffer(cap)
		replicas[i] = tracing.NewTracer(fmt.Sprintf("r%d", i), 1, buf)
		bufs = append(bufs, buf)
	}
	buf := tracing.NewSpanBuffer(cap)
	pipe = tracing.NewTracer("client", cfg.TraceRate, buf)
	bufs = append(bufs, buf)
	return replicas, pipe, bufs
}

// CollectSpans merges every node's span buffer and aligns per-node clocks
// over the causal cross-node edges. Returns nil when tracing was off.
func (c *SMRCluster) CollectSpans() []tracing.Span {
	if len(c.spanBufs) == 0 {
		return nil
	}
	return tracing.AlignClocks(tracing.Merge(c.spanBufs...))
}

// Breakdowns collects spans and reduces them to per-request phase latency
// attributions (see tracing.Breakdown).
func (c *SMRCluster) Breakdowns() []tracing.RequestBreakdown {
	return tracing.Breakdown(c.CollectSpans())
}

// BuildMinBFT builds a MinBFT deployment with the default HMAC scheme.
// See BuildMinBFTScheme to choose the scheme.
func BuildMinBFT(f int) (*SMRCluster, error) {
	return BuildMinBFTScheme(f, sig.HMAC)
}

// BuildMinBFTScheme builds a MinBFT deployment over a simulated network
// with USIG trinkets signing under the given scheme.
func BuildMinBFTScheme(f int, scheme sig.Scheme) (*SMRCluster, error) {
	return BuildMinBFTCfg(SMRConfig{F: f, Scheme: scheme})
}

// BuildMinBFTCfg builds a MinBFT deployment from an SMRConfig.
func BuildMinBFTCfg(cfg SMRConfig) (*SMRCluster, error) {
	return buildSMR(cluster.MinBFT, cfg)
}

// smrSpec translates the harness-level SMRConfig into the group-agnostic
// cluster.Spec shared with cmd/minbft-kv and sharded deployments.
func smrSpec(p cluster.Protocol, cfg SMRConfig) cluster.Spec {
	spec := cluster.Spec{
		Protocol:         p,
		F:                cfg.F,
		Scheme:           cfg.Scheme,
		Batch:            cfg.Batch,
		Ckpt:             cfg.Ckpt,
		BatchDeadline:    cfg.BatchDeadline,
		FixedBatchWindow: cfg.FixedBatchWindow,
		Admission:        cfg.Admission,
		PaceDepth:        cfg.PaceDepth,
		LeaseTerm:        cfg.LeaseTerm,
		Metrics:          cfg.Metrics,
	}
	if p == cluster.MinBFT {
		// The harness has always run MinBFT with a long view-change fuse so
		// in-process benchmark pauses don't trigger spurious view changes.
		spec.Timeout = 5 * time.Second
	}
	return spec
}

// buildSMR builds one consensus group over a fresh simnet with the
// configured clients attached — the single-group deployment every
// experiment before sharding used.
func buildSMR(p cluster.Protocol, cfg SMRConfig) (*SMRCluster, error) {
	spec := smrSpec(p, cfg)
	m, err := spec.Membership()
	if err != nil {
		return nil, err
	}
	n := m.N
	// Extra endpoints: the closed-loop client and the pipeline(s).
	netM, err := types.NewMembership(n+1+pipeCount(cfg), cfg.F)
	if err != nil {
		return nil, err
	}
	net, err := simnet.New(netM)
	if err != nil {
		return nil, err
	}
	tracers, pipeTracer, spanBufs := smrTracers(cfg, n)
	group, err := cluster.NewGroup(spec, m,
		func(id types.ProcessID) transport.Transport { return net.Endpoint(id) },
		func() smr.StateMachine { return kvstore.New() }, tracers)
	if err != nil {
		net.Close()
		return nil, err
	}
	stopReplicas := func() {
		group.Close()
		net.Close()
	}
	kv, pipes, closeClients, err := buildClients(net, group.M, cfg, pipeTracer,
		spec.Encoders(), spec.ReadQuorum(group.M))
	if err != nil {
		stopReplicas()
		return nil, err
	}
	return &SMRCluster{KV: kv, Pipe: pipes[0], Pipes: pipes, Metrics: cfg.Metrics, spanBufs: spanBufs, Stop: func() {
		closeClients()
		stopReplicas()
	}}, nil
}

// BuildPBFT builds a PBFT deployment with the default HMAC scheme. See
// BuildPBFTScheme to choose the scheme.
func BuildPBFT(f int) (*SMRCluster, error) {
	return BuildPBFTScheme(f, sig.HMAC)
}

// BuildPBFTScheme builds a PBFT deployment over a simulated network with
// replicas signing under the given scheme.
func BuildPBFTScheme(f int, scheme sig.Scheme) (*SMRCluster, error) {
	return BuildPBFTCfg(SMRConfig{F: f, Scheme: scheme})
}

// BuildPBFTCfg builds a PBFT deployment from an SMRConfig.
func BuildPBFTCfg(cfg SMRConfig) (*SMRCluster, error) {
	return buildSMR(cluster.PBFT, cfg)
}

// buildClients connects the closed-loop client (endpoint n) and the
// pipelined client (endpoint n+1) to a running replica set. readNeed is the
// fallback-read vote quorum — f+1 for MinBFT, 2f+1 for PBFT (one more than
// the possible equivocators among the repliers; see DESIGN.md §8).
func buildClients(net *simnet.Network, m types.Membership, cfg SMRConfig, tracer *tracing.Tracer,
	enc cluster.Encoders, readNeed int) (*kvstore.Client, []*kvstore.PipeClient, func(), error) {
	window, reg := cfg.Window, cfg.Metrics
	if window <= 0 {
		window = defaultPipeWindow
	}
	closedID := types.ProcessID(m.N)
	base, err := smr.NewClient(net.Endpoint(closedID), m.All(), m.FPlusOne(), uint64(closedID),
		time.Second, smr.WithRequestEncoder(enc.Request))
	if err != nil {
		return nil, nil, nil, err
	}
	pipes := make([]*smr.Pipeline, pipeCount(cfg))
	closeClients := func() {
		_ = base.Close()
		for _, pl := range pipes {
			if pl != nil {
				_ = pl.Close()
			}
		}
	}
	for i := range pipes {
		pipeID := types.ProcessID(m.N + 1 + i)
		pipeOpts := []smr.PipelineOption{
			smr.WithPipelineRequestEncoder(enc.Request),
			smr.WithPipelineReadEncoder(enc.Read),
			smr.WithPipelineReadBatchEncoder(enc.ReadBatch),
			smr.WithReadQuorum(readNeed),
		}
		if cfg.ReadWindow > 0 {
			pipeOpts = append(pipeOpts, smr.WithReadWindow(cfg.ReadWindow))
		}
		if reg != nil {
			pipeOpts = append(pipeOpts, smr.WithPipelineMetrics(reg))
		}
		if tracer != nil && i == 0 {
			// Tracing stays on the first pipeline: one head-sampling site.
			pipeOpts = append(pipeOpts, smr.WithPipelineTracer(tracer))
		}
		if cfg.SubmitTimeout > 0 {
			pipeOpts = append(pipeOpts, smr.WithSubmitTimeout(cfg.SubmitTimeout))
		}
		if cfg.AdaptiveWindow > 0 {
			pipeOpts = append(pipeOpts, smr.WithAdaptiveWindow(cfg.AdaptiveWindow))
		}
		pipes[i], err = smr.NewPipeline(net.Endpoint(pipeID), m.All(), m.FPlusOne(), uint64(pipeID),
			time.Second, window, pipeOpts...)
		if err != nil {
			closeClients()
			return nil, nil, nil, err
		}
	}
	kvPipes := make([]*kvstore.PipeClient, len(pipes))
	for i, pl := range pipes {
		kvPipes[i] = kvstore.NewPipeClient(pl)
	}
	return kvstore.NewClient(base), kvPipes, closeClients, nil
}

// pipeCount is how many pipelined clients an SMRConfig asks for (>= 1).
func pipeCount(cfg SMRConfig) int {
	if cfg.PipeClients > 1 {
		return cfg.PipeClients
	}
	return 1
}

func MustMembership(n, f int) types.Membership {
	m, err := types.NewMembership(n, f)
	if err != nil {
		panic(fmt.Sprintf("membership(%d,%d): %v", n, f, err))
	}
	return m
}

// BuildA2MCluster builds an SRB node set over A2M logs with the default
// HMAC scheme. See BuildA2MClusterScheme to choose the scheme.
func BuildA2MCluster(m types.Membership) (*SRBCluster, error) {
	return BuildA2MClusterScheme(m, sig.HMAC)
}

// BuildA2MClusterScheme builds an SRB node set over A2M logs (native
// devices, agreed log ID 1) on a simulated network, with devices signing
// under the given scheme.
func BuildA2MClusterScheme(m types.Membership, scheme sig.Scheme) (*SRBCluster, error) {
	net, err := simnet.New(m)
	if err != nil {
		return nil, err
	}
	au, err := a2m.NewUniverse(m, scheme, rand.New(rand.NewSource(5)), nil)
	if err != nil {
		net.Close()
		return nil, err
	}
	nodes := make([]srb.Node, m.N)
	for i := 0; i < m.N; i++ {
		nodes[i], err = a2msrb.New(m, net.Endpoint(types.ProcessID(i)), au.Devices[i].NewLog(), au.Verifier)
		if err != nil {
			net.Close()
			return nil, err
		}
	}
	return &SRBCluster{Nodes: nodes, Stop: func() {
		for _, n := range nodes {
			_ = n.Close()
		}
		net.Close()
	}}, nil
}
