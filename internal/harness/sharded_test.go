package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"unidir/internal/cluster"
	"unidir/internal/obs"
	"unidir/internal/shard"
	"unidir/internal/sig"
	"unidir/internal/smr"
	"unidir/internal/types"
)

// keysForGroup returns n distinct keys routing to group g under the
// client's view.
func keysForGroup(t *testing.T, c *shard.Client, g, n int) []string {
	t.Helper()
	keys := make([]string, 0, n)
	for i := 0; len(keys) < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		if c.Group(key) == g {
			keys = append(keys, key)
		}
		if i > 1<<16 {
			t.Fatalf("could not find %d keys for group %d", n, g)
		}
	}
	return keys
}

// TestShardedPutGetAcrossGroups is the sharded end-to-end: a 2-group MinBFT
// deployment behind the router, writes and reads on keys from both groups,
// ordered reads and leased fast-path reads agreeing with the writes, and
// per-shard metric series landing in one registry.
func TestShardedPutGetAcrossGroups(t *testing.T) {
	reg := obs.NewRegistry()
	sc, err := BuildSharded(cluster.MinBFT, ShardedConfig{
		Shards: 2,
		SMR:    SMRConfig{F: 1, Scheme: sig.HMAC, Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()

	if got := sc.Client.Groups(); got != 2 {
		t.Fatalf("Groups() = %d, want 2", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const perGroup = 8
	var all []string
	for g := 0; g < 2; g++ {
		all = append(all, keysForGroup(t, sc.Client, g, perGroup)...)
	}
	for _, key := range all {
		if err := sc.Client.Put(ctx, key, []byte("v-"+key)); err != nil {
			t.Fatalf("put %q: %v", key, err)
		}
	}
	for _, key := range all {
		got, err := sc.Client.Get(ctx, key)
		if err != nil {
			t.Fatalf("get %q: %v", key, err)
		}
		if string(got) != "v-"+key {
			t.Fatalf("get %q = %q", key, got)
		}
		fast, err := sc.Client.RGet(ctx, key)
		if err != nil {
			t.Fatalf("rget %q: %v", key, err)
		}
		if string(fast) != "v-"+key {
			t.Fatalf("rget %q = %q", key, fast)
		}
	}
	if w := sc.Client.Windows(); len(w) != 2 {
		t.Fatalf("Windows() = %v, want one entry per group", w)
	}

	// Per-shard series coexist in the one registry: both groups' pipelines
	// published under their shard label, and base-name sums aggregate them.
	snap := reg.Snapshot()
	if got := snap.CounterSum("smr_requests_completed_total"); got < uint64(len(all)) {
		t.Fatalf("completed across shards = %d, want >= %d", got, len(all))
	}
	seen := map[string]bool{}
	for name := range snap.Counters {
		for g := 0; g < 2; g++ {
			if label := fmt.Sprintf("shard=%q", fmt.Sprint(g)); strings.Contains(name, label) {
				seen[label] = true
			}
		}
	}
	if len(seen) != 2 {
		t.Fatalf("expected series for both shard labels, saw %v", seen)
	}
}

// TestShardedWedgedGroupIsolation proves per-group flow-control isolation:
// with one group's network wedged, its pipeline's AIMD window collapses and
// its submissions shed, while writes to the healthy group keep completing
// with its window untouched.
func TestShardedWedgedGroupIsolation(t *testing.T) {
	sc, err := BuildSharded(cluster.MinBFT, ShardedConfig{
		Shards: 2,
		SMR: SMRConfig{
			F:              1,
			Scheme:         sig.HMAC,
			SubmitTimeout:  200 * time.Millisecond,
			AdaptiveWindow: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()

	const wedged, healthy = 0, 1
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Wedge group 0: hold every message on its network (replicas and
	// client alike). Requests already in flight never complete; the
	// pipeline's retransmit scan reads that as congestion and shrinks.
	net := sc.Nets[wedged]
	ids := make([]types.ProcessID, net.Membership().N)
	for i := range ids {
		ids[i] = types.ProcessID(i)
	}
	net.BlockSets(ids, ids)

	wedgedKeys := keysForGroup(t, sc.Client, wedged, 4)
	healthyKeys := keysForGroup(t, sc.Client, healthy, 16)

	// Fill the wedged group's window. These calls never complete; once the
	// window is exhausted, submissions shed with ErrOverloaded — from this
	// group only.
	shed := false
	for i := 0; i < 64 && !shed; i++ {
		key := wedgedKeys[i%len(wedgedKeys)]
		if _, err := sc.Client.PutAsync(ctx, key, []byte("x")); err != nil {
			if !errors.Is(err, smr.ErrOverloaded) {
				t.Fatalf("wedged put: %v", err)
			}
			shed = true
		}
	}
	if !shed {
		t.Fatal("wedged group accepted 64 async puts without shedding")
	}

	// The healthy group makes normal progress throughout.
	for _, key := range healthyKeys {
		if err := sc.Client.Put(ctx, key, []byte("v")); err != nil {
			t.Fatalf("healthy put %q: %v", key, err)
		}
	}

	// And the wedge is visible in per-group AIMD state: the wedged window
	// shrank (retransmit scans vote overload), the healthy one did not.
	deadline := time.Now().Add(20 * time.Second)
	for {
		w := sc.Client.Windows()
		if w[wedged] < defaultPipeWindow && w[healthy] == defaultPipeWindow {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("windows = %v: want wedged < %d and healthy == %d",
				w, defaultPipeWindow, defaultPipeWindow)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
