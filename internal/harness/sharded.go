package harness

// Sharded SMR deployments: N independent consensus groups, each on its own
// simulated network, multiplexed behind a shard.Client (see internal/shard).

import (
	"fmt"
	"time"

	"unidir/internal/cluster"
	"unidir/internal/kvstore"
	"unidir/internal/shard"
	"unidir/internal/simnet"
	"unidir/internal/smr"
	"unidir/internal/transport"
	"unidir/internal/types"
)

// ShardedConfig parameterizes a sharded SMR deployment: SMR configures each
// group exactly like a single-group deployment (same knobs, same defaults),
// applied uniformly to all of them.
type ShardedConfig struct {
	Shards int       // consensus groups (>= 1)
	SMR    SMRConfig // per-group configuration (F, Scheme, Batch, LeaseTerm, ...)

	// LinkDelay, when > 0, delays every link on every group's network —
	// replica↔replica and client↔replica alike. Benchmarks use it to put a
	// single group into the latency-bound regime where sharding's aggregate
	// scaling is visible (a zero-delay in-process group is CPU-bound, and
	// shard counts beyond the core count can't help).
	LinkDelay time.Duration
}

// ShardedCluster is a running sharded deployment. Each group is a full
// replica set on its own simnet with one pipelined client; Client routes
// keys across them. Nets expose each group's network for fault injection
// (Block a group's links to wedge it, SetLinkDelay, ...).
type ShardedCluster struct {
	Client *shard.Client
	Router *shard.Router
	Groups []*cluster.Group
	Nets   []*simnet.Network
	Stop   func()
}

// BuildSharded builds cfg.Shards independent consensus groups of the given
// protocol and wires a shard.Client over them. Per-group metrics land in
// cfg.SMR.Metrics under a shard="<g>" label, so per-group series coexist in
// one registry and Snapshot sums (CounterSum etc.) aggregate across groups.
func BuildSharded(p cluster.Protocol, cfg ShardedConfig) (*ShardedCluster, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("harness: sharded deployment needs >= 1 shard, got %d", cfg.Shards)
	}
	if cfg.SMR.TraceRate > 0 {
		return nil, fmt.Errorf("harness: distributed tracing is not supported in sharded deployments")
	}
	view, err := shard.NewUniformView(1, cfg.Shards)
	if err != nil {
		return nil, err
	}
	router := shard.NewRouter(view)

	sc := &ShardedCluster{Router: router}
	stop := func() {
		for _, g := range sc.Groups {
			g.Close()
		}
		for _, net := range sc.Nets {
			net.Close()
		}
	}
	pipes := make([]*kvstore.PipeClient, 0, cfg.Shards)
	pls := make([]*smr.Pipeline, 0, cfg.Shards)
	closePipes := func() {
		for _, pl := range pls {
			_ = pl.Close()
		}
	}
	fail := func(err error) (*ShardedCluster, error) {
		closePipes()
		stop()
		return nil, err
	}

	for g := 0; g < cfg.Shards; g++ {
		spec := smrSpec(p, cfg.SMR)
		spec.Metrics = cfg.SMR.Metrics.Labeled("shard", g)
		m, err := spec.Membership()
		if err != nil {
			return fail(err)
		}
		// One extra endpoint per group: the pipelined client at id n.
		netM, err := types.NewMembership(m.N+1, cfg.SMR.F)
		if err != nil {
			return fail(err)
		}
		net, err := simnet.New(netM)
		if err != nil {
			return fail(err)
		}
		sc.Nets = append(sc.Nets, net)
		if cfg.LinkDelay > 0 {
			for from := 0; from < netM.N; from++ {
				for to := 0; to < netM.N; to++ {
					if from != to {
						net.SetLinkDelay(types.ProcessID(from), types.ProcessID(to), cfg.LinkDelay)
					}
				}
			}
		}
		group, err := cluster.NewGroup(spec, m,
			func(id types.ProcessID) transport.Transport { return net.Endpoint(id) },
			func() smr.StateMachine { return kvstore.New() }, nil)
		if err != nil {
			return fail(err)
		}
		sc.Groups = append(sc.Groups, group)

		pl, err := shardPipeline(net, m, spec, cfg.SMR)
		if err != nil {
			return fail(err)
		}
		pls = append(pls, pl)
		pipes = append(pipes, kvstore.NewPipeClient(pl))
	}

	client, err := shard.NewClient(router, pipes)
	if err != nil {
		return fail(err)
	}
	sc.Client = client
	sc.Stop = func() {
		closePipes()
		stop()
	}
	return sc, nil
}

// shardPipeline connects one group's pipelined client (endpoint n on the
// group's network), mirroring buildClients' pipeline options.
func shardPipeline(net *simnet.Network, m types.Membership, spec cluster.Spec, cfg SMRConfig) (*smr.Pipeline, error) {
	window := cfg.Window
	if window <= 0 {
		window = defaultPipeWindow
	}
	enc := spec.Encoders()
	pipeOpts := []smr.PipelineOption{
		smr.WithPipelineRequestEncoder(enc.Request),
		smr.WithPipelineReadEncoder(enc.Read),
		smr.WithPipelineReadBatchEncoder(enc.ReadBatch),
		smr.WithReadQuorum(spec.ReadQuorum(m)),
	}
	if cfg.ReadWindow > 0 {
		pipeOpts = append(pipeOpts, smr.WithReadWindow(cfg.ReadWindow))
	}
	if spec.Metrics != nil {
		pipeOpts = append(pipeOpts, smr.WithPipelineMetrics(spec.Metrics))
	}
	if cfg.SubmitTimeout > 0 {
		pipeOpts = append(pipeOpts, smr.WithSubmitTimeout(cfg.SubmitTimeout))
	}
	if cfg.AdaptiveWindow > 0 {
		pipeOpts = append(pipeOpts, smr.WithAdaptiveWindow(cfg.AdaptiveWindow))
	}
	pipeID := types.ProcessID(m.N)
	return smr.NewPipeline(net.Endpoint(pipeID), m.All(), m.FPlusOne(), uint64(pipeID),
		time.Second, window, pipeOpts...)
}
