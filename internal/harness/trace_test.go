package harness

import (
	"context"
	"fmt"
	"testing"
	"time"

	"unidir/internal/obs/tracing"
	"unidir/internal/sig"
)

// runTracedOps drives the pipelined client with every request sampled and
// returns the cluster's merged, clock-aligned breakdowns.
func runTracedOps(t *testing.T, build func(SMRConfig) (*SMRCluster, error), cfg SMRConfig, ops int) []tracing.RequestBreakdown {
	t.Helper()
	cl, err := build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < ops; i++ {
		if err := cl.Pipe.Put(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	return cl.Breakdowns()
}

// checkBreakdowns asserts the tentpole's acceptance shape: each sampled
// request yields a breakdown whose phase durations are non-negative and sum
// exactly to the client-observed latency (the "other" residual is computed to
// make that identity hold, so what this really checks is that no phase
// overshoots Total and the expected phases were stitched across nodes).
func checkBreakdowns(t *testing.T, bds []tracing.RequestBreakdown, ops int, wantAttest bool) {
	t.Helper()
	if len(bds) != ops {
		t.Fatalf("breakdowns = %d, want one per request (%d)", len(bds), ops)
	}
	for _, bd := range bds {
		if bd.Total <= 0 {
			t.Fatalf("trace %s: total %v", bd.Trace, bd.Total)
		}
		var sum time.Duration
		seen := make(map[string]bool)
		for _, p := range bd.Phases {
			seen[p.Name] = true
			if p.Dur < 0 {
				t.Fatalf("trace %s: phase %s is negative (%v) — a phase overshot the client latency",
					bd.Trace, p.Name, p.Dur)
			}
			sum += p.Dur
		}
		if sum != bd.Total {
			t.Fatalf("trace %s: phases sum to %v, client saw %v", bd.Trace, sum, bd.Total)
		}
		for _, name := range []string{"propose", "commit-quorum", "execute", "reply", "other"} {
			if !seen[name] {
				t.Fatalf("trace %s: phase %q missing (got %v)", bd.Trace, name, bd.Phases)
			}
		}
		if bd.Node == "" {
			t.Fatalf("trace %s: no proposing node attributed", bd.Trace)
		}
		if wantAttest && bd.Attest <= 0 {
			t.Fatalf("trace %s: no ui-attest attribution on a MinBFT request", bd.Trace)
		}
	}
}

func TestMinBFTTraceBreakdown(t *testing.T) {
	const ops = 8
	bds := runTracedOps(t, BuildMinBFTCfg, SMRConfig{F: 1, Scheme: sig.HMAC, TraceRate: 1}, ops)
	checkBreakdowns(t, bds, ops, true)
}

func TestPBFTTraceBreakdown(t *testing.T) {
	const ops = 8
	bds := runTracedOps(t, BuildPBFTCfg, SMRConfig{F: 1, Scheme: sig.HMAC, TraceRate: 1}, ops)
	checkBreakdowns(t, bds, ops, false)
}

// TestTraceSampling checks that head sampling at the pipeline client bounds
// collection: with rate 4, roughly 1/4 of requests produce breakdowns, and
// with tracing off the cluster collects nothing.
func TestTraceSampling(t *testing.T) {
	const ops = 16
	bds := runTracedOps(t, BuildMinBFTCfg, SMRConfig{F: 1, Scheme: sig.HMAC, TraceRate: 4}, ops)
	if len(bds) == 0 || len(bds) >= ops {
		t.Fatalf("rate 4 over %d ops yielded %d breakdowns, want strictly between 0 and %d",
			ops, len(bds), ops)
	}

	cl, err := BuildMinBFTCfg(SMRConfig{F: 1, Scheme: sig.HMAC})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cl.Pipe.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := cl.CollectSpans(); got != nil {
		t.Fatalf("tracing off: CollectSpans returned %d spans", len(got))
	}
}
