package trincsrb_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"unidir/internal/sig"
	"unidir/internal/simnet"
	"unidir/internal/srb"
	"unidir/internal/srb/trincsrb"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

// Construction-specific scenarios; the black-box property suite runs in
// internal/srb/srb_test.go.

type fixture struct {
	m     types.Membership
	net   *simnet.Network
	tu    *trinc.Universe
	nodes []srb.Node // correct nodes 1..n-1; p0 driven by hand
}

func newFixture(t *testing.T, n, f int) *fixture {
	t.Helper()
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(91)))
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	fix := &fixture{m: m, net: net, tu: tu}
	for i := 1; i < n; i++ {
		node, err := trincsrb.New(m, net.Endpoint(types.ProcessID(i)), tu.Devices[i], tu.Verifier)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		fix.nodes = append(fix.nodes, node)
	}
	t.Cleanup(func() {
		for _, node := range fix.nodes {
			_ = node.Close()
		}
		net.Close()
	})
	return fix
}

func TestCounterGapsChainThroughPrev(t *testing.T) {
	// A Byzantine sender attests counter values 2, 5, 9 (gaps everywhere).
	// The Prev chaining still yields one total order — delivered as SRB
	// sequence numbers 1, 2, 3 at every correct node.
	fix := newFixture(t, 4, 1)
	dev := fix.tu.Devices[0]
	var payloads [][]byte
	for i, c := range []types.SeqNum{2, 5, 9} {
		data := []byte{byte('a' + i)}
		att, err := dev.Attest(0, c, data)
		if err != nil {
			t.Fatalf("Attest: %v", err)
		}
		payloads = append(payloads, trincsrb.EncodeMessage(att, data))
	}
	// Deliver them out of order, to one node only (relay covers the rest).
	for _, idx := range []int{2, 0, 1} {
		fix.net.Inject(0, 1, payloads[idx])
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, node := range fix.nodes {
		for want := types.SeqNum(1); want <= 3; want++ {
			d, err := node.Deliver(ctx)
			if err != nil {
				t.Fatalf("node %d deliver %d: %v", i+1, want, err)
			}
			if d.Seq != want || d.Data[0] != byte('a'+int(want)-1) {
				t.Fatalf("node %d delivered (%d, %q), want (%d, %q)",
					i+1, d.Seq, d.Data, want, string(rune('a'+int(want)-1)))
			}
		}
	}
}

func TestWrongCounterIgnored(t *testing.T) {
	// Attestations minted on a different trinket counter than the protocol's
	// must not deliver (they are not part of this protocol instance).
	fix := newFixture(t, 4, 1)
	dev := fix.tu.Devices[0]
	att, err := dev.Attest(7 /* not the srb counter */, 1, []byte("other-protocol"))
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	fix.net.Inject(0, 1, trincsrb.EncodeMessage(att, []byte("other-protocol")))
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if d, err := fix.nodes[0].Deliver(ctx); err == nil {
		t.Fatalf("delivered off-counter message: %+v", d)
	}
}

func TestMismatchedDataIgnored(t *testing.T) {
	fix := newFixture(t, 4, 1)
	dev := fix.tu.Devices[0]
	att, err := dev.Attest(0, 1, []byte("attested"))
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	fix.net.Inject(0, 1, trincsrb.EncodeMessage(att, []byte("substituted")))
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if d, err := fix.nodes[0].Deliver(ctx); err == nil {
		t.Fatalf("delivered substituted payload: %+v", d)
	}
}

func TestOwnerMismatchRejected(t *testing.T) {
	m, _ := types.NewMembership(3, 1)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(92)))
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	if _, err := trincsrb.New(m, net.Endpoint(0), tu.Devices[1], tu.Verifier); err == nil {
		t.Fatal("accepted a trinket owned by a different process")
	}
}

func TestBroadcastAfterCloseFails(t *testing.T) {
	fix := newFixture(t, 4, 1)
	node := fix.nodes[0]
	if err := node.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := node.Broadcast([]byte("x")); err == nil {
		t.Fatal("Broadcast after Close succeeded")
	}
}
