// Package trincsrb implements sequenced reliable broadcast from TrInc
// trusted counters over asynchronous authenticated channels — the
// trusted-log route to SRB that motivates the paper's classification of
// A2M/TrInc-style hardware as "no stronger than SRB".
//
// The sender attests each message on a dedicated trinket counter with
// consecutive counter values. Because a trinket never signs two
// attestations with the same counter value, and each attestation names its
// predecessor (Prev), the sender's attested messages form one unique chain:
// equivocation is impossible, and the chain position *is* the SRB sequence
// number. Receivers deliver along the chain in order and relay every
// first-seen attested message to all peers, which yields strong termination
// (if any correct process has the message, all eventually do) over reliable
// channels. Tolerates any number of Byzantine processes (n > f): safety
// comes entirely from the hardware.
package trincsrb

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"unidir/internal/srb"
	"unidir/internal/syncx"
	"unidir/internal/transport"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// ErrClosed reports use of a closed node.
var ErrClosed = errors.New("trincsrb: node closed")

// srbCounter is the trinket counter reserved for this protocol. Callers
// sharing a trinket with other protocols must not use the same counter.
const srbCounter uint64 = 0

// Node implements srb.Node from a trinket and a transport endpoint.
type Node struct {
	self types.ProcessID
	m    types.Membership
	tr   transport.Transport
	dev  *trinc.Device
	ver  *trinc.Verifier

	mu      sync.Mutex
	nextSeq types.SeqNum
	states  []*senderState
	closed  bool

	deliveries *syncx.Queue[srb.Delivery]
	cancel     context.CancelFunc
	done       chan struct{}
}

var _ srb.Node = (*Node)(nil)

// senderState tracks one sender's chain as seen by this process.
type senderState struct {
	lastCtr types.SeqNum // counter value of the last delivered link
	pos     types.SeqNum // SRB sequence number of the last delivered link
	pending map[types.SeqNum]pendEntry
	seen    map[types.SeqNum]bool // counter values already relayed
}

type pendEntry struct {
	att  trinc.Attestation
	data []byte
}

// New creates a node. dev must be the trinket owned by tr's process; ver
// must verify the whole membership's trinkets.
func New(m types.Membership, tr transport.Transport, dev *trinc.Device, ver *trinc.Verifier) (*Node, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if dev.Owner() != tr.Self() {
		return nil, fmt.Errorf("trincsrb: trinket owner %v != endpoint %v", dev.Owner(), tr.Self())
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		self:       tr.Self(),
		m:          m,
		tr:         tr,
		dev:        dev,
		ver:        ver,
		states:     make([]*senderState, m.N),
		deliveries: syncx.NewQueue[srb.Delivery](),
		cancel:     cancel,
		done:       make(chan struct{}),
	}
	for i := range n.states {
		n.states[i] = &senderState{
			pending: make(map[types.SeqNum]pendEntry),
			seen:    make(map[types.SeqNum]bool),
		}
	}
	go n.recvLoop(ctx)
	return n, nil
}

// Self returns this process's ID.
func (n *Node) Self() types.ProcessID { return n.self }

// Broadcast attests data at the next counter value and sends it to all.
func (n *Node) Broadcast(data []byte) (types.SeqNum, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return 0, ErrClosed
	}
	n.nextSeq++
	ctr := n.nextSeq
	n.mu.Unlock()

	att, err := n.dev.Attest(srbCounter, ctr, data)
	if err != nil {
		return 0, fmt.Errorf("trincsrb: attest: %w", err)
	}
	payload := encodeMsg(att, data)
	if err := transport.Broadcast(n.tr, n.m.Others(n.self), payload); err != nil {
		return 0, fmt.Errorf("trincsrb: broadcast: %w", err)
	}
	// Deliver locally through the same chain logic (self-channel).
	n.accept(att, data, payload)
	return ctr, nil
}

// Deliver returns the next delivery from any sender.
func (n *Node) Deliver(ctx context.Context) (srb.Delivery, error) {
	d, err := n.deliveries.Pop(ctx)
	if errors.Is(err, syncx.ErrQueueClosed) {
		return srb.Delivery{}, ErrClosed
	}
	return d, err
}

// Close stops the node.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	n.cancel()
	_ = n.tr.Close()
	<-n.done
	n.deliveries.Close()
	return nil
}

func (n *Node) recvLoop(ctx context.Context) {
	defer close(n.done)
	for {
		env, err := n.tr.Recv(ctx)
		if err != nil {
			return
		}
		att, data, err := decodeMsg(env.Payload)
		if err != nil {
			continue // Byzantine garbage
		}
		n.accept(att, data, env.Payload)
	}
}

// accept validates one attested message and advances the sender's chain.
// Note the channel identity (env.From) is irrelevant: the attestation
// itself names and authenticates the original sender, which is what makes
// relaying by third parties sound. payload is the message's wire encoding,
// reused verbatim for the relay (the encoding is canonical, so a payload
// that decoded cleanly is byte-identical to a re-encoding).
func (n *Node) accept(att trinc.Attestation, data, payload []byte) {
	if !n.m.Contains(att.Trinket) || att.Counter != srbCounter {
		return
	}
	// Fast duplicate drop before the signature check: every process relays
	// every first-seen message, so each attestation arrives up to n-1
	// times; an already-seen counter value needs no re-verification. The
	// seen flag is only ever set after a successful check, so skipping here
	// never trusts an unverified message, and the post-check re-check below
	// keeps the mark-once invariant when two copies race.
	n.mu.Lock()
	if n.closed || n.states[att.Trinket].seen[att.Seq] {
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	if err := n.ver.CheckMessage(att, data); err != nil {
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	st := n.states[att.Trinket]
	if st.seen[att.Seq] {
		n.mu.Unlock()
		return
	}
	st.seen[att.Seq] = true
	st.pending[att.Prev] = pendEntry{att: att, data: data}
	var ready []srb.Delivery
	for {
		e, ok := st.pending[st.lastCtr]
		if !ok {
			break
		}
		delete(st.pending, st.lastCtr)
		st.lastCtr = e.att.Seq
		st.pos++
		ready = append(ready, srb.Delivery{Sender: att.Trinket, Seq: st.pos, Data: e.data})
	}
	n.mu.Unlock()

	// Relay once for strong termination (outside the lock: Send never
	// blocks on peers but may take the network's locks).
	if att.Trinket != n.self {
		_ = transport.Broadcast(n.tr, n.m.Others(n.self), payload)
	}
	for _, d := range ready {
		n.deliveries.Push(d)
	}
}

// EncodeMessage produces the wire form of an attested broadcast message.
// It is exported for Byzantine test harnesses that drive trinkets directly.
func EncodeMessage(att trinc.Attestation, data []byte) []byte {
	return encodeMsg(att, data)
}

func encodeMsg(att trinc.Attestation, data []byte) []byte {
	attBytes := att.Encode()
	e := wire.NewEncoder(16 + len(attBytes) + len(data))
	e.BytesField(attBytes)
	e.BytesField(data)
	return e.Bytes()
}

func decodeMsg(payload []byte) (trinc.Attestation, []byte, error) {
	d := wire.NewDecoder(payload)
	attBytes := d.BytesField()
	data := append([]byte(nil), d.BytesField()...)
	if err := d.Finish(); err != nil {
		return trinc.Attestation{}, nil, fmt.Errorf("trincsrb: decode: %w", err)
	}
	att, err := trinc.DecodeAttestation(attBytes)
	if err != nil {
		return trinc.Attestation{}, nil, err
	}
	return att, data, nil
}
