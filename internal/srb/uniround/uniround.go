// Package uniround implements sequenced reliable broadcast from
// unidirectional rounds with n >= 2t+1 — Algorithm 1 of the paper (§4.2),
// the constructive half of the separation showing shared-memory trusted
// hardware is at least as strong as trusted logs.
//
// For each sequence number k of a sender s, every process runs two
// unidirectional rounds on s's dedicated round system:
//
//	round 2k-1 (echo):  relay s's signed value, endorsed with own signature
//	                    (Algorithm 1 lines broadcastWrite / copyVal);
//	round 2k   (L1):    after the echo round ends with t+1 matching
//	                    endorsements and no evidence of sender equivocation,
//	                    publish an L1 proof (line writel1prf);
//
// then assemble an L2 proof from t+1 L1 proofs and disseminate it
// out-of-round (lines writeL2proof1/2); deliver on any valid L2 proof, in
// sequence order, and relay the proof so every correct process delivers
// (strong termination).
//
// Safety rests exactly on the paper's crux: two correct processes that echo
// conflicting sender values in round 2k-1 cannot both produce L1 proofs,
// because unidirectionality guarantees one of them sees the other's echo —
// which carries the sender's signature over the conflicting value — before
// its round ends, poisoning that sequence number for it. With n >= 2t+1,
// any L2 proof contains an L1 proof by a correct process, so no two
// conflicting L2 proofs can exist.
//
// Deviation from the pseudocode, documented in DESIGN.md: processes always
// send in both rounds of every sequence number they process (an ABSTAIN
// placeholder when they cannot honestly produce an echo or L1). The paper's
// maybeDeliver short-circuits are sound over shared memory, where a round's
// end never waits on peers, but over round media with blocking round ends
// (rbf1, async) a skipped round would stall peers; always participating is
// a strict superset of the pseudocode's sends and preserves all proofs.
package uniround

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"

	"unidir/internal/rounds"
	"unidir/internal/sig"
	"unidir/internal/sig/fastverify"
	"unidir/internal/srb"
	"unidir/internal/syncx"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// ErrClosed reports use of a closed node.
var ErrClosed = errors.New("uniround: node closed")

// SystemFactory builds this process's round system for the instance whose
// designated sender is the given process. Each instance must get an
// independent round medium (for SWMR rounds: an independent store region).
type SystemFactory func(sender types.ProcessID) (rounds.System, error)

// Node implements srb.Node over unidirectional rounds.
type Node struct {
	self types.ProcessID
	m    types.Membership
	ring *sig.Keyring
	// ver is the node's signature fast path: one verified-signature cache
	// shared by all instances, so an echo signature verified once (from the
	// echo round) is free when it reappears inside L1 proofs, and an L1
	// verified directly is free inside L2 proofs. See fastverify's package
	// comment for the safety argument.
	ver *fastverify.Verifier

	instances  []*instance
	deliveries *syncx.Queue[srb.Delivery]

	mu     sync.Mutex
	mySeq  types.SeqNum
	closed bool
	wg     sync.WaitGroup
}

var _ srb.Node = (*Node)(nil)

// New creates a node for membership m (requires n >= 2t+1 with t = m.F).
// factory is called once per sender to obtain this process's endpoint into
// that instance's round medium.
func New(m types.Membership, ring *sig.Keyring, factory SystemFactory) (*Node, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.N < 2*m.F+1 {
		return nil, fmt.Errorf("uniround: requires n >= 2t+1, got n=%d t=%d", m.N, m.F)
	}
	n := &Node{
		self:       ring.Self(),
		m:          m,
		ring:       ring,
		ver:        fastverify.New(ring),
		deliveries: syncx.NewQueue[srb.Delivery](),
	}
	n.instances = make([]*instance, m.N)
	for s := 0; s < m.N; s++ {
		sys, err := factory(types.ProcessID(s))
		if err != nil {
			for _, in := range n.instances[:s] {
				_ = in.sys.Close()
			}
			return nil, fmt.Errorf("uniround: round system for sender p%d: %w", s, err)
		}
		if sys.Self() != n.self {
			_ = sys.Close()
			return nil, fmt.Errorf("uniround: factory returned system for %v, want %v", sys.Self(), n.self)
		}
		n.instances[s] = newInstance(n, types.ProcessID(s), sys)
	}
	for _, in := range n.instances {
		n.wg.Add(2)
		go in.forward()
		go in.run()
	}
	return n, nil
}

// Self returns this process's ID.
func (n *Node) Self() types.ProcessID { return n.self }

// Broadcast sends data as the next message of this process's own instance.
func (n *Node) Broadcast(data []byte) (types.SeqNum, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return 0, ErrClosed
	}
	n.mySeq++
	k := n.mySeq
	n.mu.Unlock()

	in := n.instances[n.self]
	senderSig := n.ring.Sign(valBytes(n.self, k, data))
	in.events.Push(event{local: &localBroadcast{seq: k, data: data, senderSig: senderSig}})
	return k, nil
}

// Deliver returns the next delivery from any sender's instance.
func (n *Node) Deliver(ctx context.Context) (srb.Delivery, error) {
	d, err := n.deliveries.Pop(ctx)
	if errors.Is(err, syncx.ErrQueueClosed) {
		return srb.Delivery{}, ErrClosed
	}
	return d, err
}

// Close stops all instances and unblocks Deliver.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	for _, in := range n.instances {
		_ = in.sys.Close()
		in.events.Close()
		in.cancel()
	}
	n.wg.Wait()
	n.deliveries.Close()
	return nil
}

// --- per-sender instance ---

// event is one input to an instance's state machine: a round message or a
// local broadcast command (sender's own instance only).
type event struct {
	msg   *rounds.Msg
	local *localBroadcast
}

type localBroadcast struct {
	seq       types.SeqNum
	data      []byte
	senderSig []byte
}

// valRec is the sender's (first seen) signed value for one sequence number.
type valRec struct {
	data      []byte
	senderSig []byte
}

// seqState is the per-sequence-number working state, discarded at delivery.
type seqState struct {
	val      *valRec
	poisoned bool
	echoes   map[types.ProcessID][]byte // echoer -> echo signature (matching val)
	l1s      map[types.ProcessID]l1Proof
	l2       *l2Proof
	relayed  bool
}

type instance struct {
	node   *node
	sender types.ProcessID
	sys    rounds.System
	events *syncx.Queue[event]
	ctx    context.Context
	cancel context.CancelFunc

	// state below is owned by the run goroutine exclusively.
	next types.SeqNum
	seqs map[types.SeqNum]*seqState
}

// node is an alias to keep instance fields readable.
type node = Node

func newInstance(n *Node, sender types.ProcessID, sys rounds.System) *instance {
	ctx, cancel := context.WithCancel(context.Background())
	return &instance{
		node:   n,
		sender: sender,
		sys:    sys,
		events: syncx.NewQueue[event](),
		ctx:    ctx,
		cancel: cancel,
		next:   1,
		seqs:   make(map[types.SeqNum]*seqState),
	}
}

// forward pumps the round system's stream into the event queue, so the run
// goroutine has a single input source it can also receive local commands on.
// When a spare core is available it also verifies each message's signatures
// ahead of the state machine (see prewarm), overlapping crypto with
// protocol processing.
func (in *instance) forward() {
	defer in.node.wg.Done()
	verifyAhead := in.node.ver.Concurrent()
	for {
		msg, err := in.sys.Recv(in.ctx)
		if err != nil {
			return
		}
		if verifyAhead {
			in.prewarm(msg)
		}
		m := msg
		in.events.Push(event{msg: &m})
	}
}

// prewarm pushes a message's signatures through the batch verifier so the
// run goroutine's later checks hit the cache. Purely an optimization: the
// result is ignored (failures are negative-cached, also cheap to re-hit)
// and every signature is re-checked — through the cache — on the
// authoritative ingest path, so correctness never depends on this pass.
func (in *instance) prewarm(msg rounds.Msg) {
	var set itemSet
	defer set.release()
	in.collectItems(&set, msg)
	_ = in.node.ver.VerifyAll(set.items)
}

// collectItems appends the signature checks implied by one raw round
// message to set. Structurally invalid messages contribute nothing (the
// ingest path discards them anyway).
func (in *instance) collectItems(set *itemSet, msg rounds.Msg) {
	if len(msg.Data) == 0 || msg.From == in.node.self {
		return
	}
	d := wire.NewDecoder(msg.Data)
	switch d.Byte() {
	case kindEcho:
		e, err := decodeEcho(d)
		if err != nil || e.Seq == 0 {
			return
		}
		set.add(in.sender, set.stmt(func(enc *wire.Encoder) { appendValBytes(enc, in.sender, e.Seq, e.Data) }), e.SenderSig)
		set.add(msg.From, set.stmt(func(enc *wire.Encoder) { appendEchoBytes(enc, in.sender, e.Seq, e.Data) }), e.EchoSig)
	case kindL1:
		p, err := decodeL1(d, in.node.m.N)
		if err != nil || p.Prover != msg.From || !in.l1Shape(p) {
			return
		}
		in.addL1Items(set, p)
	case kindL2:
		p, err := decodeL2(d, in.node.m.N)
		if err != nil || p.Seq == 0 {
			return
		}
		set.add(in.sender, set.stmt(func(enc *wire.Encoder) { appendValBytes(enc, in.sender, p.Seq, p.Data) }), p.SenderSig)
		for _, l1 := range p.L1s {
			if in.l1Shape(l1) {
				in.addL1Items(set, l1)
			}
		}
	}
}

func (in *instance) state(k types.SeqNum) *seqState {
	st := in.seqs[k]
	if st == nil {
		st = &seqState{
			echoes: make(map[types.ProcessID][]byte),
			l1s:    make(map[types.ProcessID]l1Proof),
		}
		in.seqs[k] = st
	}
	return st
}

// pump blocks for one event and ingests it. It returns false when the
// instance is shutting down.
func (in *instance) pump() bool {
	ev, err := in.events.Pop(in.ctx)
	if err != nil {
		return false
	}
	switch {
	case ev.local != nil:
		st := in.state(ev.local.seq)
		if st.val == nil {
			st.val = &valRec{data: ev.local.data, senderSig: ev.local.senderSig}
		}
	case ev.msg != nil:
		in.ingest(*ev.msg)
	}
	return true
}

// run is the instance's state machine: the always-participate variant of
// Algorithm 1 (see the package comment).
func (in *instance) run() {
	defer in.node.wg.Done()
	t := in.node.m.F
	for {
		k := in.next
		st := in.state(k)

		// Phase A (WaitForSender): obtain the sender's signed value for k,
		// from the sender directly (own broadcast or its echo-round
		// message), from any peer's echo or proof, or from an L2.
		for st.val == nil && st.l2 == nil {
			if !in.pump() {
				return
			}
		}
		if st.val == nil { // value adopted from the L2 proof
			st.val = &valRec{data: st.l2.Data, senderSig: st.l2.SenderSig}
		}

		// Phase B (copyVal): echo round 2k-1.
		echo := echoMsg{
			Seq:       k,
			Data:      st.val.data,
			SenderSig: st.val.senderSig,
			EchoSig:   in.node.ring.Sign(echoBytes(in.sender, k, st.val.data)),
		}
		if err := in.sys.Send(types.Round(2*uint64(k)-1), encodeEcho(echo)); err != nil {
			return
		}
		st.echoes[in.node.self] = echo.EchoSig
		snapshot, err := in.sys.WaitEnd(in.ctx, types.Round(2*uint64(k)-1))
		if err != nil {
			return
		}
		// Everything received by the round boundary must be weighed before
		// compiling an L1 proof — this is where unidirectionality bites.
		in.ingestSnapshot(types.Round(2*uint64(k)-1), snapshot)

		// Phase C (WaitForL1Proof): t+1 matching echoes, or poison, or L2.
		for len(st.echoes) < t+1 && !st.poisoned && st.l2 == nil {
			if !in.pump() {
				return
			}
		}

		// Phase D: L1 round 2k — a real proof if honestly possible,
		// otherwise an ABSTAIN placeholder to keep the round structure live.
		var l1Payload []byte
		if len(st.echoes) >= t+1 && !st.poisoned {
			l1 := in.buildL1(k, st)
			st.l1s[in.node.self] = l1
			l1Payload = encodeL1(l1)
		} else {
			l1Payload = encodeAbstain(k)
		}
		if err := in.sys.Send(types.Round(2*uint64(k)), l1Payload); err != nil {
			return
		}
		if _, err := in.sys.WaitEnd(in.ctx, types.Round(2*uint64(k))); err != nil {
			return
		}

		// Phase E (WaitForL2Proof): collect t+1 L1 proofs and assemble the
		// L2, or adopt one received from a peer.
		for st.l2 == nil {
			if len(st.l1s) >= t+1 {
				l2 := in.buildL2(k, st)
				st.l2 = &l2
				st.relayed = true
				if err := in.sys.SendAux(encodeL2(l2)); err != nil {
					return
				}
				break
			}
			if !in.pump() {
				return
			}
		}

		// Phase F (deliver): relay the proof for strong termination, then
		// advance.
		if !st.relayed {
			st.relayed = true
			if err := in.sys.SendAux(encodeL2(*st.l2)); err != nil {
				return
			}
		}
		in.node.deliveries.Push(srb.Delivery{Sender: in.sender, Seq: k, Data: st.l2.Data})
		delete(in.seqs, k)
		in.next = k + 1
	}
}

// ingestSnapshot feeds a WaitEnd result through the same validation path as
// stream messages (duplicates are harmless; maps deduplicate). With a spare
// core, the whole snapshot's signatures are first verified as one
// concurrent batch, so the serial ingest below runs on cache hits.
func (in *instance) ingestSnapshot(r types.Round, snapshot map[types.ProcessID][]byte) {
	if in.node.ver.Concurrent() && len(snapshot) > 1 {
		var set itemSet
		for from, data := range snapshot {
			if from != in.node.self {
				in.collectItems(&set, rounds.Msg{From: from, Round: r, Data: data})
			}
		}
		_ = in.node.ver.VerifyAll(set.items)
		set.release()
	}
	for from, data := range snapshot {
		if from == in.node.self {
			continue
		}
		in.ingest(rounds.Msg{From: from, Round: r, Data: data})
	}
}

// ingest validates one message and updates per-seq state.
func (in *instance) ingest(msg rounds.Msg) {
	if len(msg.Data) == 0 {
		return
	}
	d := wire.NewDecoder(msg.Data)
	switch d.Byte() {
	case kindEcho:
		e, err := decodeEcho(d)
		if err != nil {
			return
		}
		in.acceptEcho(msg.From, e)
	case kindL1:
		p, err := decodeL1(d, in.node.m.N)
		if err != nil || p.Prover != msg.From {
			return
		}
		in.acceptL1(p)
	case kindL2:
		p, err := decodeL2(d, in.node.m.N)
		if err != nil {
			return
		}
		in.acceptL2(p)
	case kindAbstain:
		// Round progression only; nothing to record.
	}
}

// itemSet accumulates signature checks whose statement bytes live in
// pooled encoders; release returns the encoders (and with them every slice
// handed out by stmt) to the pool.
type itemSet struct {
	items []fastverify.Item
	encs  []*wire.Encoder
}

// stmt encodes one signed statement into a pooled encoder and returns its
// bytes, valid until release.
func (s *itemSet) stmt(build func(*wire.Encoder)) []byte {
	e := wire.GetEncoder()
	build(e)
	s.encs = append(s.encs, e)
	return e.Bytes()
}

func (s *itemSet) add(from types.ProcessID, msg, sig []byte) {
	s.items = append(s.items, fastverify.Item{From: from, Msg: msg, Sig: sig})
}

func (s *itemSet) release() {
	for _, e := range s.encs {
		wire.PutEncoder(e)
	}
	s.encs = nil
	s.items = nil
}

// verifyStmt checks one signature over a transiently encoded statement.
func (in *instance) verifyStmt(from types.ProcessID, sig []byte, build func(*wire.Encoder)) error {
	e := wire.GetEncoder()
	build(e)
	err := in.node.ver.Verify(from, e.Bytes(), sig)
	wire.PutEncoder(e)
	return err
}

// acceptVal validates a sender-signed value and merges it into the seq
// state, detecting equivocation (two differently signed values for one k).
func (in *instance) acceptVal(k types.SeqNum, data, senderSig []byte) *seqState {
	if k == 0 {
		return nil
	}
	if err := in.verifyStmt(in.sender, senderSig, func(e *wire.Encoder) {
		appendValBytes(e, in.sender, k, data)
	}); err != nil {
		return nil
	}
	st := in.state(k)
	switch {
	case st.val == nil:
		st.val = &valRec{data: data, senderSig: senderSig}
	case !bytes.Equal(st.val.data, data):
		// Two validly signed values for the same k: the sender equivocated.
		// This process must never contribute an L1 proof for k.
		st.poisoned = true
	}
	return st
}

func (in *instance) acceptEcho(from types.ProcessID, e echoMsg) {
	st := in.acceptVal(e.Seq, e.Data, e.SenderSig)
	if st == nil {
		return
	}
	// Endorsements count only if they endorse the value we hold; a valid
	// echo of a conflicting value already poisoned the state above.
	if !bytes.Equal(st.val.data, e.Data) {
		return
	}
	if err := in.verifyStmt(from, e.EchoSig, func(enc *wire.Encoder) {
		appendEchoBytes(enc, in.sender, e.Seq, e.Data)
	}); err != nil {
		return
	}
	if _, ok := st.echoes[from]; !ok {
		st.echoes[from] = e.EchoSig
	}
}

// l1Shape validates the signature-independent structure of an L1 proof: a
// nonzero sequence number, a known prover, and at least t+1 distinct known
// echoers.
func (in *instance) l1Shape(p l1Proof) bool {
	if p.Seq == 0 || !in.node.m.Contains(p.Prover) {
		return false
	}
	if len(p.Echoers) < in.node.m.F+1 {
		return false
	}
	seen := make(map[types.ProcessID]bool, len(p.Echoers))
	for _, en := range p.Echoers {
		if !in.node.m.Contains(en.ID) || seen[en.ID] {
			return false
		}
		seen[en.ID] = true
	}
	return true
}

// addL1Items appends every signature check a shape-valid L1 proof implies:
// the sender's value binding, one echo endorsement per echoer (all over the
// same statement bytes, encoded once), and the prover's signature over the
// canonical proof encoding.
func (in *instance) addL1Items(set *itemSet, p l1Proof) {
	set.add(in.sender, set.stmt(func(e *wire.Encoder) { appendValBytes(e, in.sender, p.Seq, p.Data) }), p.SenderSig)
	echoStmt := set.stmt(func(e *wire.Encoder) { appendEchoBytes(e, in.sender, p.Seq, p.Data) })
	for _, en := range p.Echoers {
		set.add(en.ID, echoStmt, en.Sig)
	}
	set.add(p.Prover, set.stmt(func(e *wire.Encoder) { appendL1Bytes(e, in.sender, p.Seq, p.Data, p.Echoers) }), p.ProverSig)
}

// checkL1 verifies an L1 proof in isolation (used for both direct L1
// messages and L1s inside L2 proofs). All of the proof's signatures are
// checked as one batch; signatures already seen — the echo round's, or a
// previously verified copy of the same proof — come out of the cache.
func (in *instance) checkL1(p l1Proof) bool {
	if !in.l1Shape(p) {
		return false
	}
	var set itemSet
	defer set.release()
	in.addL1Items(&set, p)
	return in.node.ver.VerifyAll(set.items) == nil
}

func (in *instance) acceptL1(p l1Proof) {
	if !in.checkL1(p) {
		return
	}
	st := in.acceptVal(p.Seq, p.Data, p.SenderSig)
	if st == nil {
		return
	}
	// Count only proofs for the value we hold; a proof for a conflicting
	// value has poisoned the state via acceptVal.
	if !bytes.Equal(st.val.data, p.Data) {
		return
	}
	if _, ok := st.l1s[p.Prover]; !ok {
		st.l1s[p.Prover] = p
	}
}

func (in *instance) acceptL2(p l2Proof) {
	if p.Seq == 0 || len(p.L1s) < in.node.m.F+1 {
		return
	}
	// Structural pass over every constituent L1 first, then the proof's
	// full signature set — the sender's value binding plus each L1's
	// contents — as one batch through the cache.
	provers := make(map[types.ProcessID]bool, len(p.L1s))
	for _, l1 := range p.L1s {
		if provers[l1.Prover] || l1.Seq != p.Seq || !bytes.Equal(l1.Data, p.Data) || !in.l1Shape(l1) {
			return
		}
		provers[l1.Prover] = true
	}
	var set itemSet
	defer set.release()
	set.add(in.sender, set.stmt(func(e *wire.Encoder) { appendValBytes(e, in.sender, p.Seq, p.Data) }), p.SenderSig)
	for _, l1 := range p.L1s {
		in.addL1Items(&set, l1)
	}
	if in.node.ver.VerifyAll(set.items) != nil {
		return
	}
	st := in.state(p.Seq)
	if st.l2 == nil {
		cp := p
		st.l2 = &cp
	}
}

func (in *instance) buildL1(k types.SeqNum, st *seqState) l1Proof {
	entries := make([]sigEntry, 0, len(st.echoes))
	for id, s := range st.echoes {
		entries = append(entries, sigEntry{ID: id, Sig: s})
	}
	p := l1Proof{
		Prover:    in.node.self,
		Seq:       k,
		Data:      st.val.data,
		SenderSig: st.val.senderSig,
		Echoers:   entries,
	}
	p.ProverSig = in.node.ring.Sign(l1Bytes(in.sender, k, st.val.data, entries))
	return p
}

func (in *instance) buildL2(k types.SeqNum, st *seqState) l2Proof {
	l1s := make([]l1Proof, 0, len(st.l1s))
	for _, p := range st.l1s {
		l1s = append(l1s, p)
	}
	return l2Proof{
		Seq:       k,
		Data:      st.val.data,
		SenderSig: st.val.senderSig,
		L1s:       l1s,
	}
}
