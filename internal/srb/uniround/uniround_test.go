package uniround

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"unidir/internal/rounds"
	"unidir/internal/sig"
	"unidir/internal/sig/fastverify"
	"unidir/internal/simnet"
	"unidir/internal/types"
)

// White-box Byzantine tests: the sender p0 is driven by hand through raw
// network injection over Lockstep rounds (a message-passing medium where,
// unlike shared memory, sending different values to different processes is
// physically possible). The black-box property suite lives in
// internal/srb/srb_test.go.

type byzFixture struct {
	m     types.Membership
	net   *simnet.Network
	rings []*sig.Keyring
	nodes []*Node // correct nodes, indices 1..n-1
}

func newByzFixture(t *testing.T, n, f int) *byzFixture {
	t.Helper()
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	// n networks: one per sender instance. Only instance 0 (the Byzantine
	// sender's) will carry traffic in these tests.
	nets := make([]*simnet.Network, n)
	for s := range nets {
		nets[s], err = simnet.New(m)
		if err != nil {
			t.Fatalf("simnet: %v", err)
		}
	}
	rings, err := sig.NewKeyrings(m, sig.HMAC, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}
	fix := &byzFixture{m: m, net: nets[0], rings: rings, nodes: make([]*Node, n)}
	// The harness plays the lock-step model's synchrony oracle: p0 is known
	// faulty, so round ends do not wait for its messages.
	live := m.Others(0)
	for i := 1; i < n; i++ {
		self := types.ProcessID(i)
		factory := func(sender types.ProcessID) (rounds.System, error) {
			return rounds.NewLockstep(nets[sender].Endpoint(self), m, rounds.WithLive(live))
		}
		node, err := New(m, rings[i], factory)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		fix.nodes[i] = node
	}
	t.Cleanup(func() {
		for _, node := range fix.nodes {
			if node != nil {
				_ = node.Close()
			}
		}
		for _, net := range nets {
			net.Close()
		}
	})
	return fix
}

// injectEcho delivers a hand-signed round-(2k-1) echo message from the
// Byzantine p0 to one correct process on instance 0's network.
func (f *byzFixture) injectEcho(to types.ProcessID, k types.SeqNum, data []byte) {
	senderSig := f.rings[0].Sign(valBytes(0, k, data))
	echoSig := f.rings[0].Sign(echoBytes(0, k, data))
	msg := encodeEcho(echoMsg{Seq: k, Data: data, SenderSig: senderSig, EchoSig: echoSig})
	f.net.Inject(0, to, rounds.EncodeMessage(types.Round(2*uint64(k)-1), msg))
}

func TestByzantineFullEquivocationNoDisagreement(t *testing.T) {
	// p0 sends value "left" to p1, p2 and "right" to p3, p4 for seq 1.
	// Under lock-step rounds every correct process sees both sender-signed
	// values during the echo round, so every correct process is poisoned:
	// no L1 proofs, no L2 proofs, no delivery — and in particular no
	// disagreement. (Non-delivery is allowed: SRB's termination properties
	// only constrain correct senders.)
	fix := newByzFixture(t, 5, 2)
	for _, to := range []types.ProcessID{1, 2} {
		fix.injectEcho(to, 1, []byte("left"))
	}
	for _, to := range []types.ProcessID{3, 4} {
		fix.injectEcho(to, 1, []byte("right"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	for i := 1; i < 5; i++ {
		if d, err := fix.nodes[i].Deliver(ctx); err == nil {
			t.Fatalf("p%d delivered %+v from an equivocating sender", i, d)
		}
	}
}

func TestByzantinePartialSendStillDeliversEverywhere(t *testing.T) {
	// p0 sends a single value but only to p1, p2, p3 (crashing before
	// reaching p4). The echoes carry the sender-signed value, so p4 adopts
	// it from its peers and everyone delivers — weak termination recovered
	// by the echo relay, totality by the L2 relay.
	fix := newByzFixture(t, 5, 2)
	for _, to := range []types.ProcessID{1, 2, 3} {
		fix.injectEcho(to, 1, []byte("partial"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 1; i < 5; i++ {
		d, err := fix.nodes[i].Deliver(ctx)
		if err != nil {
			t.Fatalf("p%d never delivered: %v", i, err)
		}
		if d.Sender != 0 || d.Seq != 1 || string(d.Data) != "partial" {
			t.Fatalf("p%d delivered %+v", i, d)
		}
	}
}

func TestForgedSenderValueIgnored(t *testing.T) {
	// An echo whose inner "sender signature" is by the echoer, not the
	// sender, must be discarded: no state, no delivery.
	fix := newByzFixture(t, 3, 1)
	k := types.SeqNum(1)
	data := []byte("forged")
	forgedSenderSig := fix.rings[2].Sign(valBytes(0, k, data)) // wrong signer
	echoSig := fix.rings[2].Sign(echoBytes(0, k, data))
	msg := encodeEcho(echoMsg{Seq: k, Data: data, SenderSig: forgedSenderSig, EchoSig: echoSig})
	fix.net.Inject(2, 1, rounds.EncodeMessage(1, msg))

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if d, err := fix.nodes[1].Deliver(ctx); err == nil {
		t.Fatalf("delivered from forged value: %+v", d)
	}
}

func TestDeliverAfterCloseFails(t *testing.T) {
	m, err := types.NewMembership(3, 1)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	rings, err := sig.NewKeyrings(m, sig.HMAC, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}
	nets := make([]*simnet.Network, m.N)
	for s := range nets {
		nets[s], err = simnet.New(m)
		if err != nil {
			t.Fatalf("simnet: %v", err)
		}
		defer nets[s].Close()
	}
	node, err := New(m, rings[0], func(sender types.ProcessID) (rounds.System, error) {
		return rounds.NewLockstep(nets[sender].Endpoint(0), m)
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := node.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := node.Broadcast([]byte("x")); err == nil {
		t.Fatal("Broadcast after Close succeeded")
	}
	if _, err := node.Deliver(context.Background()); err == nil {
		t.Fatal("Deliver after Close succeeded")
	}

	// Closing twice is safe.
	if err := node.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestL2ValidationRejectsTampering(t *testing.T) {
	// Build a legitimate L2 through a real execution, then check the
	// validator rejects mutated variants (white-box use of acceptL2).
	m, err := types.NewMembership(3, 1)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	rings, err := sig.NewKeyrings(m, sig.HMAC, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}

	// Hand-build a valid L2 proof for sender 0, seq 1.
	sender := types.ProcessID(0)
	data := []byte("value")
	senderSig := rings[0].Sign(valBytes(sender, 1, data))
	var l1s []l1Proof
	for _, prover := range []types.ProcessID{0, 1} {
		entries := []sigEntry{
			{ID: 0, Sig: rings[0].Sign(echoBytes(sender, 1, data))},
			{ID: 1, Sig: rings[1].Sign(echoBytes(sender, 1, data))},
		}
		l1s = append(l1s, l1Proof{
			Prover:    prover,
			Seq:       1,
			Data:      data,
			SenderSig: senderSig,
			Echoers:   entries,
			ProverSig: rings[prover].Sign(l1Bytes(sender, 1, data, entries)),
		})
	}
	valid := l2Proof{Seq: 1, Data: data, SenderSig: senderSig, L1s: l1s}

	in := &instance{
		node:   &Node{self: 2, m: m, ring: rings[2], ver: fastverify.New(rings[2])},
		sender: sender,
		next:   1,
		seqs:   make(map[types.SeqNum]*seqState),
	}
	in.acceptL2(valid)
	if in.seqs[1] == nil || in.seqs[1].l2 == nil {
		t.Fatal("valid L2 rejected")
	}

	reject := func(name string, p l2Proof) {
		in2 := &instance{
			node:   &Node{self: 2, m: m, ring: rings[2], ver: fastverify.New(rings[2])},
			sender: sender,
			next:   1,
			seqs:   make(map[types.SeqNum]*seqState),
		}
		in2.acceptL2(p)
		if st := in2.seqs[1]; st != nil && st.l2 != nil {
			t.Errorf("%s: tampered L2 accepted", name)
		}
	}

	tampered := valid
	tampered.Data = []byte("other")
	reject("data swap", tampered)

	short := valid
	short.L1s = valid.L1s[:1]
	reject("too few l1s", short)

	dup := valid
	dup.L1s = []l1Proof{valid.L1s[0], valid.L1s[0]}
	reject("duplicate provers", dup)

	badSig := valid
	badL1 := valid.L1s[0]
	badL1.ProverSig = append([]byte(nil), badL1.ProverSig...)
	badL1.ProverSig[0] ^= 1
	badSig.L1s = []l1Proof{badL1, valid.L1s[1]}
	reject("bad prover sig", badSig)

	fewEchoes := valid
	thin := valid.L1s[0]
	thin.Echoers = thin.Echoers[:1]
	thin.ProverSig = rings[thin.Prover].Sign(l1Bytes(sender, 1, data, thin.Echoers))
	fewEchoes.L1s = []l1Proof{thin, valid.L1s[1]}
	reject("l1 with too few echoers", fewEchoes)
}

// TestCacheDoesNotLaunderVerifiedSignatures is a regression test for the
// signature fast path (run with -race): after a genuine L1 proof has been
// verified — warming the verified-signature cache with every echo
// signature it carries — a tampered proof that re-attributes one of those
// signatures to a different process, or substitutes a forged signature
// over the same statement, must still be rejected. The cache binds
// (signer, statement, signature) as one triple, so a prior success for
// one signer can never vouch for another.
func TestCacheDoesNotLaunderVerifiedSignatures(t *testing.T) {
	m, err := types.NewMembership(3, 1)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	rings, err := sig.NewKeyrings(m, sig.Ed25519, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}
	sender := types.ProcessID(0)
	data := []byte("value")
	senderSig := rings[0].Sign(valBytes(sender, 1, data))
	echo0 := rings[0].Sign(echoBytes(sender, 1, data))
	echo1 := rings[1].Sign(echoBytes(sender, 1, data))
	entries := []sigEntry{{ID: 0, Sig: echo0}, {ID: 1, Sig: echo1}}
	genuine := l1Proof{
		Prover:    1,
		Seq:       1,
		Data:      data,
		SenderSig: senderSig,
		Echoers:   entries,
		ProverSig: rings[1].Sign(l1Bytes(sender, 1, data, entries)),
	}

	in := &instance{
		node:   &Node{self: 2, m: m, ring: rings[2], ver: fastverify.New(rings[2])},
		sender: sender,
		next:   1,
		seqs:   make(map[types.SeqNum]*seqState),
	}

	forge := func(name string, echoers []sigEntry) {
		p := l1Proof{
			Prover:    1,
			Seq:       1,
			Data:      data,
			SenderSig: senderSig,
			Echoers:   echoers,
			ProverSig: rings[1].Sign(l1Bytes(sender, 1, data, echoers)),
		}
		if in.checkL1(p) {
			t.Errorf("%s: accepted", name)
		}
	}

	// Cold: p2's signature was never verified, and a forged one must fail.
	reattributed := []sigEntry{{ID: 0, Sig: echo0}, {ID: 2, Sig: echo1}}
	forge("cold re-attribution of p1's echo to p2", reattributed)
	garbage := append([]byte(nil), echo1...)
	garbage[0] ^= 1
	forge("cold forged echo sig", []sigEntry{{ID: 0, Sig: echo0}, {ID: 1, Sig: garbage}})

	// Warm the cache with the genuine proof...
	if !in.checkL1(genuine) {
		t.Fatal("genuine L1 rejected")
	}
	if s := in.node.ver.Stats(); s.Misses == 0 {
		t.Fatal("genuine check did not populate the cache")
	}
	// ...and re-check the same attacks against the warm cache.
	forge("warm re-attribution of p1's echo to p2", reattributed)
	forge("warm forged echo sig", []sigEntry{{ID: 0, Sig: echo0}, {ID: 1, Sig: garbage}})

	// The genuine proof itself must still verify, now fully from cache.
	before := in.node.ver.Stats()
	if !in.checkL1(genuine) {
		t.Fatal("genuine L1 rejected on recheck")
	}
	if after := in.node.ver.Stats(); after.Misses != before.Misses {
		t.Errorf("recheck of verified proof performed %d real verifications", after.Misses-before.Misses)
	}
}
