package uniround

import (
	"fmt"
	"sort"

	"unidir/internal/types"
	"unidir/internal/wire"
)

// Wire formats and signed-byte constructions for the Algorithm 1 messages.
//
// Three signature domains bind every statement to the instance sender s and
// sequence number k, preventing cross-instance and cross-seq replay:
//
//	value:  σ_s over ("srb/uniround/val",  s, k, m) — the sender's broadcast
//	echo:   σ_e over ("srb/uniround/echo", s, k, m) — an endorsement that e
//	        saw exactly m as the sender's k-th value (line copyVal)
//	l1:     σ_p over ("srb/uniround/l1",   s, k, m, sorted echoer set) — p's
//	        claim to have collected t+1 matching echoes (line writel1prf)
//
// An L2 proof is a set of >= t+1 signed L1 proofs for the same (s, k, m);
// it needs no further signature — its validity is checkable by anyone.

// Message kinds.
const (
	kindEcho byte = iota + 1
	kindL1
	kindL2
	kindAbstain
)

// echoMsg is a round-(2k-1) message: the sender's signed value plus the
// echoer's endorsement. The echoer's identity is the round message's From.
type echoMsg struct {
	Seq       types.SeqNum
	Data      []byte
	SenderSig []byte
	EchoSig   []byte
}

// sigEntry is one echoer endorsement inside an L1 proof.
type sigEntry struct {
	ID  types.ProcessID
	Sig []byte
}

// l1Proof is a prover's claim: t+1 echoers endorsed (s, k, m).
type l1Proof struct {
	Prover    types.ProcessID
	Seq       types.SeqNum
	Data      []byte
	SenderSig []byte
	Echoers   []sigEntry
	ProverSig []byte
}

// l2Proof is >= t+1 L1 proofs for the same (s, k, m).
type l2Proof struct {
	Seq       types.SeqNum
	Data      []byte
	SenderSig []byte
	L1s       []l1Proof
}

func appendValBytes(e *wire.Encoder, sender types.ProcessID, k types.SeqNum, m []byte) {
	e.String("srb/uniround/val")
	e.Int(int(sender))
	e.Uint64(uint64(k))
	e.BytesField(m)
}

func valBytes(sender types.ProcessID, k types.SeqNum, m []byte) []byte {
	e := wire.NewEncoder(48 + len(m))
	appendValBytes(e, sender, k, m)
	return e.Bytes()
}

func appendEchoBytes(e *wire.Encoder, sender types.ProcessID, k types.SeqNum, m []byte) {
	e.String("srb/uniround/echo")
	e.Int(int(sender))
	e.Uint64(uint64(k))
	e.BytesField(m)
}

func echoBytes(sender types.ProcessID, k types.SeqNum, m []byte) []byte {
	e := wire.NewEncoder(48 + len(m))
	appendEchoBytes(e, sender, k, m)
	return e.Bytes()
}

// appendL1Bytes canonicalizes the echoer set (sorted by ID) so the
// prover's signature is over a deterministic encoding.
func appendL1Bytes(e *wire.Encoder, sender types.ProcessID, k types.SeqNum, m []byte, echoers []sigEntry) {
	sorted := append([]sigEntry(nil), echoers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	e.String("srb/uniround/l1")
	e.Int(int(sender))
	e.Uint64(uint64(k))
	e.BytesField(m)
	e.Int(len(sorted))
	for _, en := range sorted {
		e.Int(int(en.ID))
		e.BytesField(en.Sig)
	}
}

func l1Bytes(sender types.ProcessID, k types.SeqNum, m []byte, echoers []sigEntry) []byte {
	e := wire.NewEncoder(64 + len(m))
	appendL1Bytes(e, sender, k, m, echoers)
	return e.Bytes()
}

func encodeEcho(msg echoMsg) []byte {
	e := wire.NewEncoder(64 + len(msg.Data))
	e.Byte(kindEcho)
	e.Uint64(uint64(msg.Seq))
	e.BytesField(msg.Data)
	e.BytesField(msg.SenderSig)
	e.BytesField(msg.EchoSig)
	return e.Bytes()
}

func decodeEcho(d *wire.Decoder) (echoMsg, error) {
	var msg echoMsg
	msg.Seq = types.SeqNum(d.Uint64())
	msg.Data = append([]byte(nil), d.BytesField()...)
	msg.SenderSig = append([]byte(nil), d.BytesField()...)
	msg.EchoSig = append([]byte(nil), d.BytesField()...)
	if err := d.Finish(); err != nil {
		return echoMsg{}, fmt.Errorf("uniround: decode echo: %w", err)
	}
	return msg, nil
}

func encodeL1Body(e *wire.Encoder, p l1Proof) {
	e.Int(int(p.Prover))
	e.Uint64(uint64(p.Seq))
	e.BytesField(p.Data)
	e.BytesField(p.SenderSig)
	e.Int(len(p.Echoers))
	for _, en := range p.Echoers {
		e.Int(int(en.ID))
		e.BytesField(en.Sig)
	}
	e.BytesField(p.ProverSig)
}

func decodeL1Body(d *wire.Decoder, maxEchoers int) (l1Proof, error) {
	var p l1Proof
	p.Prover = types.ProcessID(d.Int())
	p.Seq = types.SeqNum(d.Uint64())
	p.Data = append([]byte(nil), d.BytesField()...)
	p.SenderSig = append([]byte(nil), d.BytesField()...)
	n := d.Int()
	if err := d.Err(); err != nil {
		return l1Proof{}, err
	}
	if n < 0 || n > maxEchoers {
		return l1Proof{}, fmt.Errorf("uniround: l1 proof with %d echoers", n)
	}
	for i := 0; i < n; i++ {
		var en sigEntry
		en.ID = types.ProcessID(d.Int())
		en.Sig = append([]byte(nil), d.BytesField()...)
		p.Echoers = append(p.Echoers, en)
	}
	p.ProverSig = append([]byte(nil), d.BytesField()...)
	return p, d.Err()
}

func encodeL1(p l1Proof) []byte {
	e := wire.NewEncoder(128 + len(p.Data))
	e.Byte(kindL1)
	encodeL1Body(e, p)
	return e.Bytes()
}

func decodeL1(d *wire.Decoder, maxEchoers int) (l1Proof, error) {
	p, err := decodeL1Body(d, maxEchoers)
	if err != nil {
		return l1Proof{}, err
	}
	if err := d.Finish(); err != nil {
		return l1Proof{}, fmt.Errorf("uniround: decode l1: %w", err)
	}
	return p, nil
}

func encodeL2(p l2Proof) []byte {
	e := wire.NewEncoder(256 + len(p.Data))
	e.Byte(kindL2)
	e.Uint64(uint64(p.Seq))
	e.BytesField(p.Data)
	e.BytesField(p.SenderSig)
	e.Int(len(p.L1s))
	for _, l1 := range p.L1s {
		encodeL1Body(e, l1)
	}
	return e.Bytes()
}

func decodeL2(d *wire.Decoder, maxProofs int) (l2Proof, error) {
	var p l2Proof
	p.Seq = types.SeqNum(d.Uint64())
	p.Data = append([]byte(nil), d.BytesField()...)
	p.SenderSig = append([]byte(nil), d.BytesField()...)
	n := d.Int()
	if err := d.Err(); err != nil {
		return l2Proof{}, err
	}
	if n < 0 || n > maxProofs {
		return l2Proof{}, fmt.Errorf("uniround: l2 proof with %d l1s", n)
	}
	for i := 0; i < n; i++ {
		l1, err := decodeL1Body(d, maxProofs)
		if err != nil {
			return l2Proof{}, err
		}
		p.L1s = append(p.L1s, l1)
	}
	if err := d.Finish(); err != nil {
		return l2Proof{}, fmt.Errorf("uniround: decode l2: %w", err)
	}
	return p, nil
}

func encodeAbstain(k types.SeqNum) []byte {
	e := wire.NewEncoder(16)
	e.Byte(kindAbstain)
	e.Uint64(uint64(k))
	return e.Bytes()
}
