package a2msrb_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"unidir/internal/sig"
	"unidir/internal/simnet"
	"unidir/internal/srb"
	"unidir/internal/srb/a2msrb"
	"unidir/internal/trusted/a2m"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

// White-box scenarios specific to the A2M construction; the black-box
// property suite runs in internal/srb/srb_test.go.

type fixture struct {
	m     types.Membership
	net   *simnet.Network
	au    *a2m.Universe
	tu    *trinc.Universe
	nodes []srb.Node // correct nodes, indices 1..n-1 (p0 is the adversary)
}

func newFixture(t *testing.T, n, f int) *fixture {
	t.Helper()
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(71)))
	if err != nil {
		t.Fatalf("trinc universe: %v", err)
	}
	au, err := a2m.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(72)), tu)
	if err != nil {
		t.Fatalf("a2m universe: %v", err)
	}
	fix := &fixture{m: m, net: net, au: au, tu: tu}
	for i := 1; i < n; i++ {
		node, err := a2msrb.New(m, net.Endpoint(types.ProcessID(i)), au.Devices[i].NewLog(), au.Verifier)
		if err != nil {
			t.Fatalf("a2msrb.New: %v", err)
		}
		fix.nodes = append(fix.nodes, node)
	}
	t.Cleanup(func() {
		for _, node := range fix.nodes {
			_ = node.Close()
		}
		net.Close()
	})
	return fix
}

func TestSecondLogCannotSplitTheStream(t *testing.T) {
	// A Byzantine sender appends "left" to the agreed log (ID 1) and
	// "right" to a second log (ID 2), sending the log-1 proof to p1 and
	// the log-2 proof to p2. Receivers only accept the agreed log, so the
	// log-2 stream is ignored — no split.
	fix := newFixture(t, 4, 1)
	dev := fix.au.Devices[0]
	log1 := dev.NewLog() // ID 1, the agreed protocol log
	log2 := dev.NewLog() // ID 2

	if _, err := log1.Append([]byte("left")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := log2.Append([]byte("right")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	p1, err := log1.Lookup(1, []byte("a2msrb/broadcast"))
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	p2, err := log2.Lookup(1, []byte("a2msrb/broadcast"))
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	fix.net.Inject(0, 1, p1.Encode())
	fix.net.Inject(0, 2, p2.Encode())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, node := range fix.nodes {
		d, err := node.Deliver(ctx)
		if err != nil {
			t.Fatalf("node %d never delivered: %v", i+1, err)
		}
		if string(d.Data) != "left" || d.Seq != 1 {
			t.Fatalf("node %d delivered %q at seq %d; the off-log stream leaked", i+1, d.Data, d.Seq)
		}
	}
}

func TestRelayProvidesTotality(t *testing.T) {
	// The sender reaches only p1; the relay must carry the proof to all.
	fix := newFixture(t, 4, 1)
	dev := fix.au.Devices[0]
	log := dev.NewLog()
	if _, err := log.Append([]byte("narrow")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	proof, err := log.Lookup(1, nil)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	fix.net.Inject(0, 1, proof.Encode())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, node := range fix.nodes {
		d, err := node.Deliver(ctx)
		if err != nil {
			t.Fatalf("node %d never delivered: %v", i+1, err)
		}
		if string(d.Data) != "narrow" {
			t.Fatalf("node %d delivered %q", i+1, d.Data)
		}
	}
}

func TestOutOfOrderProofsBufferUntilContiguous(t *testing.T) {
	fix := newFixture(t, 4, 1)
	dev := fix.au.Devices[0]
	log := dev.NewLog()
	for _, v := range []string{"one", "two", "three"} {
		if _, err := log.Append([]byte(v)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Deliver proofs in reverse order to p1.
	for seq := types.SeqNum(3); seq >= 1; seq-- {
		proof, err := log.Lookup(seq, nil)
		if err != nil {
			t.Fatalf("Lookup: %v", err)
		}
		fix.net.Inject(0, 1, proof.Encode())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for want := types.SeqNum(1); want <= 3; want++ {
		d, err := fix.nodes[0].Deliver(ctx)
		if err != nil {
			t.Fatalf("deliver %d: %v", want, err)
		}
		if d.Seq != want {
			t.Fatalf("delivered seq %d, want %d (sequencing broken)", d.Seq, want)
		}
	}
}

func TestTamperedProofIgnored(t *testing.T) {
	fix := newFixture(t, 4, 1)
	dev := fix.au.Devices[0]
	log := dev.NewLog()
	if _, err := log.Append([]byte("genuine")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	proof, err := log.Lookup(1, nil)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	proof.Stmt.Value = []byte("tampered")
	fix.net.Inject(0, 1, proof.Encode())
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if d, err := fix.nodes[0].Deliver(ctx); err == nil {
		t.Fatalf("delivered tampered proof: %+v", d)
	}
}

func TestOwnerEndpointMismatchRejected(t *testing.T) {
	m, _ := types.NewMembership(3, 1)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(73)))
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	au, err := a2m.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(74)), tu)
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	if _, err := a2msrb.New(m, net.Endpoint(0), au.Devices[1].NewLog(), au.Verifier); err == nil {
		t.Fatal("accepted a log owned by a different process")
	}
}
