// Package a2msrb implements sequenced reliable broadcast from Attested
// Append-only Memory — the A2M route to SRB (Chun et al.'s original use),
// complementing the TrInc route in srb/trincsrb and closing the trusted-log
// side of the paper's classification: *both* log primitives sit at SRB.
//
// The sender appends each message to its A2M log and sends the Lookup
// proof to all. A proof certifies "entry k of my log is m" — and because
// past entries are immutable, position k can never certify a different
// value, so equivocation is impossible and the log index is the SRB
// sequence number directly (A2M appends are dense, unlike raw TrInc
// counters). Receivers verify the proof, relay first-seen entries to all
// (strong termination), and deliver in index order. Tolerates any number
// of Byzantine processes (n > f).
package a2msrb

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"

	"unidir/internal/obs"

	"unidir/internal/srb"
	"unidir/internal/syncx"
	"unidir/internal/transport"
	"unidir/internal/trusted/a2m"
	"unidir/internal/types"
)

// ErrClosed reports use of a closed node.
var ErrClosed = errors.New("a2msrb: node closed")

// broadcastNonce is the fixed Lookup nonce: broadcast proofs are
// statements about immutable log positions, so freshness is irrelevant
// (any valid proof for position k is eternally true).
var broadcastNonce = []byte("a2msrb/broadcast")

// Node implements srb.Node from an A2M log and a transport endpoint.
type Node struct {
	self types.ProcessID
	m    types.Membership
	tr   transport.Transport
	log  a2m.Log
	ver  *a2m.Verifier

	mu     sync.Mutex
	states []*senderState
	closed bool

	deliveries *syncx.Queue[srb.Delivery]
	cancel     context.CancelFunc
	done       chan struct{}

	lg *slog.Logger
}

// Option configures New.
type Option func(*Node)

// WithLogger attaches a structured logger; rejected proofs and delivery
// progress are reported through it with sender/seq attrs.
func WithLogger(l *slog.Logger) Option {
	return func(n *Node) { n.lg = obs.OrNop(l) }
}

var _ srb.Node = (*Node)(nil)

// senderState tracks one sender's log as seen by this process.
type senderState struct {
	next    types.SeqNum
	pending map[types.SeqNum][]byte
	seen    map[types.SeqNum]bool // indices already relayed
}

// New creates a node. log must be a log on this process's A2M device (or a
// TrInc-backed a2m.TrIncLog — the construction is agnostic); ver must
// verify the whole membership's devices.
//
// The protocol binds every sender to one agreed log ID (log.ID() must be
// the same at every process — a protocol configuration constant, as in
// A2M-PBFT). Without the agreed ID, a Byzantine sender running two logs
// could show different receivers different streams.
func New(m types.Membership, tr transport.Transport, log a2m.Log, ver *a2m.Verifier, opts ...Option) (*Node, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if log.Owner() != tr.Self() {
		return nil, fmt.Errorf("a2msrb: log owner %v != endpoint %v", log.Owner(), tr.Self())
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		self:       tr.Self(),
		m:          m,
		tr:         tr,
		log:        log,
		ver:        ver,
		states:     make([]*senderState, m.N),
		deliveries: syncx.NewQueue[srb.Delivery](),
		cancel:     cancel,
		done:       make(chan struct{}),
		lg:         obs.NopLogger(),
	}
	for _, opt := range opts {
		opt(n)
	}
	for i := range n.states {
		n.states[i] = &senderState{
			next:    1,
			pending: make(map[types.SeqNum][]byte),
			seen:    make(map[types.SeqNum]bool),
		}
	}
	go n.recvLoop(ctx)
	return n, nil
}

// Self returns this process's ID.
func (n *Node) Self() types.ProcessID { return n.self }

// Broadcast appends data to this process's attested log and sends the
// Lookup proof to all.
func (n *Node) Broadcast(data []byte) (types.SeqNum, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return 0, ErrClosed
	}
	n.mu.Unlock()
	seq, err := n.log.Append(data)
	if err != nil {
		return 0, fmt.Errorf("a2msrb: append: %w", err)
	}
	proof, err := n.log.Lookup(seq, broadcastNonce)
	if err != nil {
		return 0, fmt.Errorf("a2msrb: lookup: %w", err)
	}
	payload := proof.Encode()
	if err := transport.Broadcast(n.tr, n.m.Others(n.self), payload); err != nil {
		return 0, fmt.Errorf("a2msrb: broadcast: %w", err)
	}
	n.accept(proof, payload)
	return seq, nil
}

// Deliver returns the next delivery from any sender.
func (n *Node) Deliver(ctx context.Context) (srb.Delivery, error) {
	d, err := n.deliveries.Pop(ctx)
	if errors.Is(err, syncx.ErrQueueClosed) {
		return srb.Delivery{}, ErrClosed
	}
	return d, err
}

// Close stops the node.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	n.cancel()
	_ = n.tr.Close()
	<-n.done
	n.deliveries.Close()
	return nil
}

func (n *Node) recvLoop(ctx context.Context) {
	defer close(n.done)
	for {
		env, err := n.tr.Recv(ctx)
		if err != nil {
			return
		}
		proof, err := a2m.DecodeProof(env.Payload)
		if err != nil {
			n.lg.Warn("dropping undecodable proof", "from", env.From, "err", err)
			continue // Byzantine garbage
		}
		n.accept(proof, env.Payload)
	}
}

// accept validates one attested log entry and advances the sender's
// delivery cursor. The proof authenticates the original sender (its
// device), so relays by third parties are sound. payload is the proof's
// wire encoding, reused verbatim for the relay.
func (n *Node) accept(proof a2m.Proof, payload []byte) {
	sender := proof.Stmt.Device
	if !n.m.Contains(sender) || proof.Stmt.Kind != a2m.KindLookup {
		n.lg.Debug("rejecting proof", "sender", sender, "seq", proof.Stmt.Seq, "reason", "non-member or non-lookup")
		return
	}
	// Only the agreed protocol log counts: a Byzantine sender running
	// several logs cannot split the stream across receivers.
	if proof.Stmt.Log != n.log.ID() {
		n.lg.Debug("rejecting proof", "sender", sender, "seq", proof.Stmt.Seq, "reason", "wrong log id", "log", proof.Stmt.Log, "want", n.log.ID())
		return
	}
	// Fast duplicate drop before the signature check: every process relays
	// every first-seen entry, so each proof arrives up to n-1 times. seen
	// is only ever set after a successful check (and re-checked under the
	// lock below), so the early exit never trusts an unverified proof.
	n.mu.Lock()
	if n.closed || n.states[sender].seen[proof.Stmt.Seq] {
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	if err := n.ver.Check(proof); err != nil {
		// A proof that decodes but fails verification is hard evidence of a
		// faulty sender or relay, worth surfacing above debug level.
		n.lg.Warn("rejecting proof", "sender", sender, "seq", proof.Stmt.Seq, "reason", "bad proof", "err", err)
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	st := n.states[sender]
	if st.seen[proof.Stmt.Seq] {
		n.mu.Unlock()
		return
	}
	st.seen[proof.Stmt.Seq] = true
	st.pending[proof.Stmt.Seq] = proof.Stmt.Value
	var ready []srb.Delivery
	for {
		data, ok := st.pending[st.next]
		if !ok {
			break
		}
		delete(st.pending, st.next)
		ready = append(ready, srb.Delivery{Sender: sender, Seq: st.next, Data: data})
		st.next++
	}
	n.mu.Unlock()

	// Relay once for strong termination.
	if sender != n.self {
		_ = transport.Broadcast(n.tr, n.m.Others(n.self), payload)
	}
	for _, d := range ready {
		n.lg.Debug("delivering", "sender", d.Sender, "seq", d.Seq, "bytes", len(d.Data))
		n.deliveries.Push(d)
	}
}
