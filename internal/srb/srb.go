// Package srb defines sequenced reliable broadcast — the paper's yardstick
// primitive for trusted-log hardware — together with machine-checkable
// versions of its four defining properties, evaluated over recorded
// executions by the Recorder harness.
//
// Definition (paper, §3.1). A designated sender p broadcasts messages with
// unique sequence numbers such that:
//
//  1. Weak termination: if p is correct, every correct process eventually
//     delivers every message p broadcasts.
//  2. Strong termination (totality): if some correct process delivers m with
//     sequence number k from p, eventually every correct process does.
//  3. Sequencing: a correct process delivers (k, m) from p only after
//     delivering sequence numbers 1..k-1 from p.
//  4. Integrity: if a correct process delivers m from p, then p broadcast m
//     earlier.
//
// Three implementations are provided in subpackages:
//
//   - uniround: from unidirectional rounds with n >= 2t+1 (Algorithm 1 —
//     the paper's main construction, §4.2);
//   - trincsrb: from TrInc trusted counters (the trusted-log route that
//     motivates "trusted logs are no stronger than SRB");
//   - bracha: from nothing but authenticated channels with n >= 3f+1
//     (Bracha reliable broadcast with sequence numbers — the classic
//     baseline showing what non-equivocation buys).
//
// Each implementation exposes a Node: one process's participation in the
// full set of SRB instances, one instance per sender in the membership (the
// shape both the TrInc-from-SRB theorem and the SMR applications need).
package srb

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"

	"unidir/internal/types"
)

// Delivery is one delivered broadcast message.
type Delivery struct {
	Sender types.ProcessID
	Seq    types.SeqNum
	Data   []byte
}

// Node is one process's participation in a membership-wide set of SRB
// instances (one per sender).
type Node interface {
	// Self returns this process's ID.
	Self() types.ProcessID
	// Broadcast sends data as the next message of this process's own
	// instance and returns the sequence number it was assigned.
	Broadcast(data []byte) (types.SeqNum, error)
	// Deliver returns the next delivery (from any sender), blocking until
	// one is available, ctx is done, or the node is closed.
	Deliver(ctx context.Context) (Delivery, error)
	// Close stops the node's goroutines and unblocks Deliver.
	Close() error
}

// Recorder collects the broadcasts and deliveries of an execution across
// all processes so the four SRB properties can be checked afterwards. It is
// safe for concurrent use.
type Recorder struct {
	mu         sync.Mutex
	broadcasts map[types.ProcessID][]Delivery // by sender (Seq as assigned)
	deliveries map[types.ProcessID][]Delivery // by delivering process, in order
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		broadcasts: make(map[types.ProcessID][]Delivery),
		deliveries: make(map[types.ProcessID][]Delivery),
	}
}

// Broadcast records that sender broadcast (seq, data).
func (r *Recorder) Broadcast(sender types.ProcessID, seq types.SeqNum, data []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.broadcasts[sender] = append(r.broadcasts[sender], Delivery{Sender: sender, Seq: seq, Data: data})
}

// Deliver records that process p delivered d.
func (r *Recorder) Deliver(p types.ProcessID, d Delivery) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deliveries[p] = append(r.deliveries[p], d)
}

// DeliveredBy returns p's deliveries in order.
func (r *Recorder) DeliveredBy(p types.ProcessID) []Delivery {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Delivery(nil), r.deliveries[p]...)
}

// CheckSequencing verifies property 3 for every process in correct: each
// process's deliveries from each sender carry sequence numbers 1, 2, 3, ...
// in delivery order.
func (r *Recorder) CheckSequencing(correct []types.ProcessID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range correct {
		next := make(map[types.ProcessID]types.SeqNum)
		for _, d := range r.deliveries[p] {
			want := next[d.Sender] + 1
			if d.Seq != want {
				return fmt.Errorf("srb: %v delivered seq %d from %v, expected %d", p, d.Seq, d.Sender, want)
			}
			next[d.Sender] = want
		}
	}
	return nil
}

// CheckAgreement verifies that no two correct processes delivered different
// data for the same (sender, seq) — the safety consequence of properties
// 2-4 that applications rely on.
func (r *Recorder) CheckAgreement(correct []types.ProcessID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	type key struct {
		sender types.ProcessID
		seq    types.SeqNum
	}
	seen := make(map[key][]byte)
	for _, p := range correct {
		for _, d := range r.deliveries[p] {
			k := key{d.Sender, d.Seq}
			if prev, ok := seen[k]; ok {
				if !bytes.Equal(prev, d.Data) {
					return fmt.Errorf("srb: conflicting deliveries for (%v, %d): %q vs %q", d.Sender, d.Seq, prev, d.Data)
				}
				continue
			}
			seen[k] = d.Data
		}
	}
	return nil
}

// CheckIntegrity verifies property 4 against the recorded broadcasts of
// correct senders: every delivery from a correct sender matches a recorded
// broadcast.
func (r *Recorder) CheckIntegrity(correct []types.ProcessID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	isCorrect := make(map[types.ProcessID]bool, len(correct))
	for _, p := range correct {
		isCorrect[p] = true
	}
	for _, p := range correct {
		for _, d := range r.deliveries[p] {
			if !isCorrect[d.Sender] {
				continue
			}
			found := false
			for _, b := range r.broadcasts[d.Sender] {
				if b.Seq == d.Seq && bytes.Equal(b.Data, d.Data) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("srb: %v delivered (%d, %q) from %v, which was never broadcast", p, d.Seq, d.Data, d.Sender)
			}
		}
	}
	return nil
}

// CheckTermination verifies properties 1 and 2 at quiescence: every correct
// process delivered exactly the same (sender, seq) set, and that set
// includes every broadcast of every correct sender.
func (r *Recorder) CheckTermination(correct []types.ProcessID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	type key struct {
		sender types.ProcessID
		seq    types.SeqNum
	}
	sets := make(map[types.ProcessID]map[key]bool, len(correct))
	for _, p := range correct {
		set := make(map[key]bool)
		for _, d := range r.deliveries[p] {
			set[key{d.Sender, d.Seq}] = true
		}
		sets[p] = set
	}
	// Weak termination: correct senders' broadcasts are delivered by all.
	isCorrect := make(map[types.ProcessID]bool, len(correct))
	for _, p := range correct {
		isCorrect[p] = true
	}
	for sender, bs := range r.broadcasts {
		if !isCorrect[sender] {
			continue
		}
		for _, b := range bs {
			for _, p := range correct {
				if !sets[p][key{sender, b.Seq}] {
					return fmt.Errorf("srb: correct %v never delivered (%v, %d)", p, sender, b.Seq)
				}
			}
		}
	}
	// Totality: all correct processes delivered the same set.
	if len(correct) == 0 {
		return nil
	}
	ref := sets[correct[0]]
	for _, p := range correct[1:] {
		if len(sets[p]) != len(ref) {
			return fmt.Errorf("srb: %v delivered %d messages, %v delivered %d", p, len(sets[p]), correct[0], len(ref))
		}
		for k := range ref {
			if !sets[p][k] {
				return fmt.Errorf("srb: %v missing delivery (%v, %d)", p, k.sender, k.seq)
			}
		}
	}
	return nil
}

// CheckAll runs all four property checks.
func (r *Recorder) CheckAll(correct []types.ProcessID) error {
	sorted := append([]types.ProcessID(nil), correct...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if err := r.CheckSequencing(sorted); err != nil {
		return err
	}
	if err := r.CheckAgreement(sorted); err != nil {
		return err
	}
	if err := r.CheckIntegrity(sorted); err != nil {
		return err
	}
	return r.CheckTermination(sorted)
}
