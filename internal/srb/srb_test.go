// Package srb_test runs the same property suite (the four SRB properties,
// checked by srb.Recorder) against all three implementations through the
// srb.Node interface, then exercises implementation-specific Byzantine and
// failure scenarios.
package srb_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"unidir/internal/rounds"
	"unidir/internal/sig"
	"unidir/internal/simnet"
	"unidir/internal/srb"
	"unidir/internal/srb/a2msrb"
	"unidir/internal/srb/bracha"
	"unidir/internal/srb/trincsrb"
	"unidir/internal/srb/uniround"
	"unidir/internal/trusted/a2m"
	"unidir/internal/trusted/swmr"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

// cluster is a running set of SRB nodes plus the resources behind them.
type cluster struct {
	m     types.Membership
	nodes []srb.Node
	stop  func()
}

// impl describes one SRB implementation for the shared suite.
type impl struct {
	name string
	// build creates a full cluster for membership m. net is non-nil for
	// transport-based implementations.
	build func(t *testing.T, m types.Membership) *cluster
	// resilience returns a valid (n, f) for this implementation.
	n, f int
}

func buildUniround(t *testing.T, m types.Membership) *cluster {
	t.Helper()
	rings, err := sig.NewKeyrings(m, sig.HMAC, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}
	// One shared SWMR store per sender instance.
	stores := make([]*swmr.Store, m.N)
	for s := range stores {
		stores[s], err = swmr.NewStore(m)
		if err != nil {
			t.Fatalf("NewStore: %v", err)
		}
	}
	nodes := make([]srb.Node, m.N)
	for i := 0; i < m.N; i++ {
		self := types.ProcessID(i)
		factory := func(sender types.ProcessID) (rounds.System, error) {
			return rounds.NewSWMR(swmr.NewLocal(stores[sender], self), m)
		}
		node, err := uniround.New(m, rings[i], factory)
		if err != nil {
			t.Fatalf("uniround.New: %v", err)
		}
		nodes[i] = node
	}
	return &cluster{m: m, nodes: nodes, stop: func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}}
}

func buildTrinc(t *testing.T, m types.Membership) *cluster {
	t.Helper()
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("trinc universe: %v", err)
	}
	nodes := make([]srb.Node, m.N)
	for i := 0; i < m.N; i++ {
		node, err := trincsrb.New(m, net.Endpoint(types.ProcessID(i)), tu.Devices[i], tu.Verifier)
		if err != nil {
			t.Fatalf("trincsrb.New: %v", err)
		}
		nodes[i] = node
	}
	return &cluster{m: m, nodes: nodes, stop: func() {
		for _, n := range nodes {
			_ = n.Close()
		}
		net.Close()
	}}
}

func buildBracha(t *testing.T, m types.Membership) *cluster {
	t.Helper()
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	nodes := make([]srb.Node, m.N)
	for i := 0; i < m.N; i++ {
		node, err := bracha.New(m, net.Endpoint(types.ProcessID(i)))
		if err != nil {
			t.Fatalf("bracha.New: %v", err)
		}
		nodes[i] = node
	}
	return &cluster{m: m, nodes: nodes, stop: func() {
		for _, n := range nodes {
			_ = n.Close()
		}
		net.Close()
	}}
}

func buildA2M(t *testing.T, m types.Membership) *cluster {
	t.Helper()
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatalf("trinc universe: %v", err)
	}
	au, err := a2m.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(11)), tu)
	if err != nil {
		t.Fatalf("a2m universe: %v", err)
	}
	nodes := make([]srb.Node, m.N)
	for i := 0; i < m.N; i++ {
		// Half the nodes run on native A2M devices, half on TrInc-backed
		// logs — the Verifier accepts both, so the construction's
		// hardware-agnosticism is exercised in one cluster. Both use the
		// agreed log ID 1.
		var log a2m.Log
		if i%2 == 0 {
			log = au.Devices[i].NewLog() // first log on a fresh device: ID 1
		} else {
			log = a2m.NewTrIncLog(tu.Devices[i], 1)
		}
		node, err := a2msrb.New(m, net.Endpoint(types.ProcessID(i)), log, au.Verifier)
		if err != nil {
			t.Fatalf("a2msrb.New: %v", err)
		}
		nodes[i] = node
	}
	return &cluster{m: m, nodes: nodes, stop: func() {
		for _, n := range nodes {
			_ = n.Close()
		}
		net.Close()
	}}
}

// buildUniroundOverRBF1 composes two of the paper's constructions: SRB from
// unidirectional rounds, where the rounds themselves come from the
// Appendix's reliable-broadcast corner case (f = 1, n >= 3) rather than
// shared memory.
func buildUniroundOverRBF1(t *testing.T, m types.Membership) *cluster {
	t.Helper()
	rings, err := sig.NewKeyrings(m, sig.HMAC, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}
	nets := make([]*simnet.Network, m.N) // one network per sender instance
	for s := range nets {
		nets[s], err = simnet.New(m)
		if err != nil {
			t.Fatalf("simnet: %v", err)
		}
	}
	nodes := make([]srb.Node, m.N)
	for i := 0; i < m.N; i++ {
		self := types.ProcessID(i)
		node, err := uniround.New(m, rings[i], func(sender types.ProcessID) (rounds.System, error) {
			return rounds.NewRBF1(nets[sender].Endpoint(self), m, rings[i])
		})
		if err != nil {
			t.Fatalf("uniround.New over rbf1: %v", err)
		}
		nodes[i] = node
	}
	return &cluster{m: m, nodes: nodes, stop: func() {
		for _, n := range nodes {
			_ = n.Close()
		}
		for _, net := range nets {
			net.Close()
		}
	}}
}

// buildUniroundOverDeltaSync composes SRB from unidirectional rounds with
// rounds derived from timing: Δ-bounded links plus a 4Δ round wait.
func buildUniroundOverDeltaSync(t *testing.T, m types.Membership) *cluster {
	t.Helper()
	rings, err := sig.NewKeyrings(m, sig.HMAC, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}
	const delta = 500 * time.Microsecond
	nets := make([]*simnet.Network, m.N)
	for s := range nets {
		nets[s], err = simnet.New(m, simnet.WithJitter(delta, int64(s+1)))
		if err != nil {
			t.Fatalf("simnet: %v", err)
		}
	}
	nodes := make([]srb.Node, m.N)
	for i := 0; i < m.N; i++ {
		self := types.ProcessID(i)
		node, err := uniround.New(m, rings[i], func(sender types.ProcessID) (rounds.System, error) {
			return rounds.NewDeltaSync(nets[sender].Endpoint(self), m, 4*delta)
		})
		if err != nil {
			t.Fatalf("uniround.New over deltasync: %v", err)
		}
		nodes[i] = node
	}
	return &cluster{m: m, nodes: nodes, stop: func() {
		for _, n := range nodes {
			_ = n.Close()
		}
		for _, net := range nets {
			net.Close()
		}
	}}
}

func impls() []impl {
	return []impl{
		{name: "uniround", build: buildUniround, n: 5, f: 2},
		{name: "uniround-rbf1", build: buildUniroundOverRBF1, n: 3, f: 1},
		{name: "uniround-deltasync", build: buildUniroundOverDeltaSync, n: 5, f: 2},
		{name: "trincsrb", build: buildTrinc, n: 4, f: 1},
		{name: "a2msrb", build: buildA2M, n: 4, f: 1},
		{name: "bracha", build: buildBracha, n: 4, f: 1},
	}
}

// collect drains deliveries from every node into rec until each node in
// want has delivered want[node] messages, or the timeout elapses.
func collect(t *testing.T, nodes []srb.Node, rec *srb.Recorder, want map[types.ProcessID]int, timeout time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, n := range nodes {
		target, ok := want[n.Self()]
		if !ok {
			continue
		}
		wg.Add(1)
		go func(n srb.Node, target int) {
			defer wg.Done()
			for got := 0; got < target; got++ {
				d, err := n.Deliver(ctx)
				if err != nil {
					t.Errorf("%v: Deliver after %d/%d: %v", n.Self(), got, target, err)
					return
				}
				rec.Deliver(n.Self(), d)
			}
		}(n, target)
	}
	wg.Wait()
}

func TestAllImplsSatisfySRBProperties(t *testing.T) {
	for _, im := range impls() {
		t.Run(im.name, func(t *testing.T) {
			m, err := types.NewMembership(im.n, im.f)
			if err != nil {
				t.Fatalf("membership: %v", err)
			}
			c := im.build(t, m)
			defer c.stop()

			rec := srb.NewRecorder()
			const perSender = 3
			var wg sync.WaitGroup
			for _, n := range c.nodes {
				wg.Add(1)
				go func(n srb.Node) {
					defer wg.Done()
					for j := 0; j < perSender; j++ {
						data := []byte(fmt.Sprintf("%v-msg-%d", n.Self(), j))
						seq, err := n.Broadcast(data)
						if err != nil {
							t.Errorf("%v: Broadcast: %v", n.Self(), err)
							return
						}
						rec.Broadcast(n.Self(), seq, data)
					}
				}(n)
			}
			wg.Wait()

			want := make(map[types.ProcessID]int, m.N)
			for _, n := range c.nodes {
				want[n.Self()] = m.N * perSender
			}
			collect(t, c.nodes, rec, want, 30*time.Second)
			if err := rec.CheckAll(m.All()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSequencePerSenderInterleaved(t *testing.T) {
	// A single sender's stream must arrive in order at every node even when
	// other senders are interleaving heavily.
	for _, im := range impls() {
		t.Run(im.name, func(t *testing.T) {
			m, err := types.NewMembership(im.n, im.f)
			if err != nil {
				t.Fatalf("membership: %v", err)
			}
			c := im.build(t, m)
			defer c.stop()
			rec := srb.NewRecorder()

			const burst = 8
			for j := 0; j < burst; j++ {
				for _, n := range c.nodes {
					data := []byte(fmt.Sprintf("i%d", j))
					seq, err := n.Broadcast(data)
					if err != nil {
						t.Fatalf("Broadcast: %v", err)
					}
					rec.Broadcast(n.Self(), seq, data)
				}
			}
			want := make(map[types.ProcessID]int, m.N)
			for _, n := range c.nodes {
				want[n.Self()] = m.N * burst
			}
			collect(t, c.nodes, rec, want, 30*time.Second)
			if err := rec.CheckSequencing(m.All()); err != nil {
				t.Fatal(err)
			}
			if err := rec.CheckTermination(m.All()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRecorderDetectsViolations(t *testing.T) {
	// The checkers themselves must catch bad executions.
	rec := srb.NewRecorder()
	rec.Broadcast(0, 1, []byte("a"))
	rec.Deliver(1, srb.Delivery{Sender: 0, Seq: 2, Data: []byte("x")})
	if err := rec.CheckSequencing([]types.ProcessID{1}); err == nil {
		t.Fatal("sequencing gap not detected")
	}

	rec2 := srb.NewRecorder()
	rec2.Deliver(1, srb.Delivery{Sender: 0, Seq: 1, Data: []byte("x")})
	rec2.Deliver(2, srb.Delivery{Sender: 0, Seq: 1, Data: []byte("y")})
	if err := rec2.CheckAgreement([]types.ProcessID{1, 2}); err == nil {
		t.Fatal("conflicting deliveries not detected")
	}

	rec3 := srb.NewRecorder()
	rec3.Deliver(1, srb.Delivery{Sender: 0, Seq: 1, Data: []byte("never-sent")})
	if err := rec3.CheckIntegrity([]types.ProcessID{0, 1}); err == nil {
		t.Fatal("fabricated delivery not detected")
	}

	rec4 := srb.NewRecorder()
	rec4.Broadcast(0, 1, []byte("a"))
	rec4.Deliver(0, srb.Delivery{Sender: 0, Seq: 1, Data: []byte("a")})
	// process 1 never delivers
	if err := rec4.CheckTermination([]types.ProcessID{0, 1}); err == nil {
		t.Fatal("missing delivery not detected")
	}
}

func TestResilienceBoundsEnforced(t *testing.T) {
	m54, _ := types.NewMembership(5, 2)
	net, err := simnet.New(m54)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	if _, err := bracha.New(m54, net.Endpoint(0)); err == nil {
		t.Fatal("bracha accepted n=5, f=2 (needs 3f+1)")
	}

	m32, _ := types.NewMembership(4, 2)
	rings, err := sig.NewKeyrings(m32, sig.HMAC, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}
	if _, err := uniround.New(m32, rings[0], nil); err == nil {
		t.Fatal("uniround accepted n=4, t=2 (needs 2t+1)")
	}
}

func TestTrincSRBRelayProvidesTotality(t *testing.T) {
	// The sender manages to reach only p1 before its remaining links are
	// cut. p1's relay must carry the message to everyone (property 2).
	m, err := types.NewMembership(4, 1)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("trinc universe: %v", err)
	}
	nodes := make([]srb.Node, m.N)
	for i := 0; i < m.N; i++ {
		node, err := trincsrb.New(m, net.Endpoint(types.ProcessID(i)), tu.Devices[i], tu.Verifier)
		if err != nil {
			t.Fatalf("trincsrb.New: %v", err)
		}
		nodes[i] = node
		defer nodes[i].Close()
	}
	// Sender p0 can only reach p1, forever.
	net.Block(0, 2)
	net.Block(0, 3)
	if _, err := nodes[0].Broadcast([]byte("through-the-gap")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, i := range []int{1, 2, 3} {
		d, err := nodes[i].Deliver(ctx)
		if err != nil {
			t.Fatalf("p%d never delivered: %v", i, err)
		}
		if string(d.Data) != "through-the-gap" || d.Sender != 0 || d.Seq != 1 {
			t.Fatalf("p%d delivered %+v", i, d)
		}
	}
}

func TestTrincSRBByzantineCannotEquivocate(t *testing.T) {
	// A Byzantine sender tries the classic attack: different messages to
	// different processes for the same slot. With a trinket it cannot mint
	// two attestations for one counter value, so it must use two values —
	// and then everyone delivers both messages in the same chain order.
	m, err := types.NewMembership(4, 1)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatalf("trinc universe: %v", err)
	}
	// Correct nodes 1..3; process 0 is Byzantine and drives its trinket
	// directly.
	nodes := make([]srb.Node, 0, 3)
	for i := 1; i < m.N; i++ {
		node, err := trincsrb.New(m, net.Endpoint(types.ProcessID(i)), tu.Devices[i], tu.Verifier)
		if err != nil {
			t.Fatalf("trincsrb.New: %v", err)
		}
		nodes = append(nodes, node)
		defer node.Close()
	}
	byzDev := tu.Devices[0]
	attA, err := byzDev.Attest(0, 1, []byte("to-p1"))
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	if _, err := byzDev.Attest(0, 1, []byte("to-p2")); err == nil {
		t.Fatal("device allowed equivocation")
	}
	// Forced to advance the counter for the second message.
	attB, err := byzDev.Attest(0, 2, []byte("to-p2"))
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	// Send message A only to p1 and message B only to p2 (the equivocation
	// attempt at the network level).
	net.Inject(0, 1, trincsrb.EncodeMessage(attA, []byte("to-p1")))
	net.Inject(0, 2, trincsrb.EncodeMessage(attB, []byte("to-p2")))

	// Relays must converge everyone to the same two-message chain.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for idx, node := range nodes {
		d1, err := node.Deliver(ctx)
		if err != nil {
			t.Fatalf("node %d first delivery: %v", idx, err)
		}
		d2, err := node.Deliver(ctx)
		if err != nil {
			t.Fatalf("node %d second delivery: %v", idx, err)
		}
		if d1.Seq != 1 || string(d1.Data) != "to-p1" || d2.Seq != 2 || string(d2.Data) != "to-p2" {
			t.Fatalf("node %d delivered (%d %q), (%d %q)", idx, d1.Seq, d1.Data, d2.Seq, d2.Data)
		}
	}
}
