package bracha_test

import (
	"context"
	"testing"
	"time"

	"unidir/internal/simnet"
	"unidir/internal/srb"
	"unidir/internal/srb/bracha"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// Construction-specific scenarios; the black-box property suite runs in
// internal/srb/srb_test.go.

func newCluster(t *testing.T, n, f int, correctFrom int) (*simnet.Network, []srb.Node) {
	t.Helper()
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	var nodes []srb.Node
	for i := correctFrom; i < n; i++ {
		node, err := bracha.New(m, net.Endpoint(types.ProcessID(i)))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		nodes = append(nodes, node)
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			_ = node.Close()
		}
		net.Close()
	})
	return net, nodes
}

// frame hand-crafts a protocol message (kind, sender, seq, data).
func frame(kind byte, sender types.ProcessID, seq types.SeqNum, data []byte) []byte {
	e := wire.NewEncoder(32 + len(data))
	e.Byte(kind)
	e.Int(int(sender))
	e.Uint64(uint64(seq))
	e.BytesField(data)
	return e.Bytes()
}

func TestSendSpoofingRejected(t *testing.T) {
	// Only the sender's own channel may initiate its broadcast: a SEND
	// frame claiming sender 2 but arriving from channel 0 must be ignored.
	net, nodes := newCluster(t, 4, 1, 1)
	net.Inject(0, 1, frame(1 /* SEND */, 2, 1, []byte("spoofed")))
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if d, err := nodes[0].Deliver(ctx); err == nil {
		t.Fatalf("delivered spoofed SEND: %+v", d)
	}
}

func TestDoubleVoteCountedOnce(t *testing.T) {
	// A Byzantine peer echoing twice (same or different values) gets one
	// counted vote; with n=4, f=1 the echo threshold is 3, so p0's double
	// echo plus one correct echo must NOT reach it.
	net, nodes := newCluster(t, 4, 1, 1)
	// p0 initiates its own broadcast legitimately to p1 only...
	net.Inject(0, 1, frame(1, 0, 1, []byte("v")))
	// ...then spams duplicate ECHO votes to p1.
	for i := 0; i < 5; i++ {
		net.Inject(0, 1, frame(2 /* ECHO */, 0, 1, []byte("v")))
	}
	// p1 has: own echo + p0's (one counted) = 2 < 3 -> no READY can have
	// formed from this alone; with p2, p3 never seeing the SEND, nothing
	// delivers.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if d, err := nodes[0].Deliver(ctx); err == nil {
		t.Fatalf("delivered on insufficient distinct votes: %+v", d)
	}
}

func TestReadyAmplificationDelivers(t *testing.T) {
	// f+1 READYs convert a silent node: inject READY votes from two
	// distinct channels (f+1 = 2) and the amplification plus the correct
	// nodes' own readies must reach delivery at 2f+1 = 3.
	net, nodes := newCluster(t, 4, 1, 2) // correct: p2, p3; byz: p0, p1
	data := []byte("amplified")
	for _, from := range []types.ProcessID{0, 1} {
		net.Inject(from, 2, frame(3 /* READY */, 0, 1, data))
		net.Inject(from, 3, frame(3, 0, 1, data))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, node := range nodes {
		d, err := node.Deliver(ctx)
		if err != nil {
			t.Fatalf("node %d never delivered: %v", i+2, err)
		}
		if string(d.Data) != "amplified" || d.Sender != 0 || d.Seq != 1 {
			t.Fatalf("node %d delivered %+v", i+2, d)
		}
	}
}

func TestGarbageFramesIgnored(t *testing.T) {
	net, nodes := newCluster(t, 4, 1, 1)
	for _, payload := range [][]byte{nil, {9, 9, 9}, frame(1, 99, 1, []byte("bad sender")), frame(1, 0, 0, []byte("seq 0"))} {
		net.Inject(0, 1, payload)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if d, err := nodes[0].Deliver(ctx); err == nil {
		t.Fatalf("delivered garbage: %+v", d)
	}
}

func TestBroadcastAfterCloseFails(t *testing.T) {
	_, nodes := newCluster(t, 4, 1, 1)
	if err := nodes[0].Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := nodes[0].Broadcast([]byte("x")); err == nil {
		t.Fatal("Broadcast after Close succeeded")
	}
}
