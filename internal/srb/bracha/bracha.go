// Package bracha implements sequenced reliable broadcast from nothing but
// authenticated point-to-point channels, with n >= 3f+1 — Bracha's classic
// reliable broadcast run per sequence number. It is the library's baseline:
// what SRB costs *without* trusted hardware, both in resilience (3f+1
// versus the trusted-hardware protocols' 2t+1 or better) and in messages
// (every broadcast takes an O(n²) echo and ready exchange).
//
// Per (sender, seq): the sender sends SEND(seq, m); a process receiving
// SEND from the sender's own channel sends ECHO(sender, seq, m) once; on
// ceil((n+f+1)/2) matching ECHOs, or f+1 matching READYs, it sends
// READY(sender, seq, m) once; on 2f+1 matching READYs it delivers — in
// sequence order per sender, buffering out-of-order completions.
package bracha

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"unidir/internal/srb"
	"unidir/internal/syncx"
	"unidir/internal/transport"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// ErrClosed reports use of a closed node.
var ErrClosed = errors.New("bracha: node closed")

const (
	kindSend byte = iota + 1
	kindEcho
	kindReady
)

// Node implements srb.Node via Bracha reliable broadcast.
type Node struct {
	self types.ProcessID
	m    types.Membership
	tr   transport.Transport

	mu      sync.Mutex
	nextSeq types.SeqNum
	states  []*senderState
	closed  bool

	deliveries *syncx.Queue[srb.Delivery]
	cancel     context.CancelFunc
	done       chan struct{}
}

var _ srb.Node = (*Node)(nil)

// senderState tracks all in-flight sequence numbers of one sender.
type senderState struct {
	next  types.SeqNum // next sequence number to deliver
	slots map[types.SeqNum]*slot
	ready map[types.SeqNum][]byte // completed but out-of-order payloads
}

// slot is the per-(sender, seq) Bracha instance state.
type slot struct {
	data      map[[sha256.Size]byte][]byte // value hash -> payload
	echoed    bool                         // this process sent its ECHO
	readied   bool                         // this process sent its READY
	delivered bool
	echoes    map[[sha256.Size]byte]map[types.ProcessID]bool
	readies   map[[sha256.Size]byte]map[types.ProcessID]bool
	voted     map[types.ProcessID]byte // kind of vote already counted per peer
}

// New creates a node for membership m (requires n >= 3f+1).
func New(m types.Membership, tr transport.Transport) (*Node, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.N < 3*m.F+1 {
		return nil, fmt.Errorf("bracha: requires n >= 3f+1, got n=%d f=%d", m.N, m.F)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		self:       tr.Self(),
		m:          m,
		tr:         tr,
		states:     make([]*senderState, m.N),
		deliveries: syncx.NewQueue[srb.Delivery](),
		cancel:     cancel,
		done:       make(chan struct{}),
	}
	for i := range n.states {
		n.states[i] = &senderState{
			next:  1,
			slots: make(map[types.SeqNum]*slot),
			ready: make(map[types.SeqNum][]byte),
		}
	}
	go n.recvLoop(ctx)
	return n, nil
}

// Self returns this process's ID.
func (n *Node) Self() types.ProcessID { return n.self }

// Broadcast starts the Bracha instance for this process's next sequence
// number.
func (n *Node) Broadcast(data []byte) (types.SeqNum, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return 0, ErrClosed
	}
	n.nextSeq++
	seq := n.nextSeq
	n.mu.Unlock()

	payload := encode(kindSend, n.self, seq, data)
	if err := transport.Broadcast(n.tr, n.m.Others(n.self), payload); err != nil {
		return 0, fmt.Errorf("bracha: broadcast: %w", err)
	}
	// Process own SEND locally (the sender echoes its own message too).
	n.handle(n.self, kindSend, n.self, seq, data)
	return seq, nil
}

// Deliver returns the next delivery from any sender.
func (n *Node) Deliver(ctx context.Context) (srb.Delivery, error) {
	d, err := n.deliveries.Pop(ctx)
	if errors.Is(err, syncx.ErrQueueClosed) {
		return srb.Delivery{}, ErrClosed
	}
	return d, err
}

// Close stops the node.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	n.cancel()
	_ = n.tr.Close()
	<-n.done
	n.deliveries.Close()
	return nil
}

func (n *Node) recvLoop(ctx context.Context) {
	defer close(n.done)
	for {
		env, err := n.tr.Recv(ctx)
		if err != nil {
			return
		}
		kind, sender, seq, data, err := decode(env.Payload)
		if err != nil {
			continue
		}
		n.handle(env.From, kind, sender, seq, data)
	}
}

// handle processes one protocol message. from is the authenticated channel
// identity of the peer that sent it.
func (n *Node) handle(from types.ProcessID, kind byte, sender types.ProcessID, seq types.SeqNum, data []byte) {
	if !n.m.Contains(sender) || seq == 0 {
		return
	}
	h := sha256.Sum256(data)

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	st := n.states[sender]
	sl := st.slots[seq]
	if sl == nil {
		sl = &slot{
			data:    make(map[[sha256.Size]byte][]byte),
			echoes:  make(map[[sha256.Size]byte]map[types.ProcessID]bool),
			readies: make(map[[sha256.Size]byte]map[types.ProcessID]bool),
			voted:   make(map[types.ProcessID]byte),
		}
		st.slots[seq] = sl
	}

	var out [][]byte // messages to send after unlocking
	switch kind {
	case kindSend:
		// Only the sender's own channel may initiate its broadcast.
		if from != sender {
			break
		}
		sl.data[h] = data
		if !sl.echoed {
			sl.echoed = true
			out = append(out, encode(kindEcho, sender, seq, data))
			n.countVote(sl, kindEcho, n.self, h)
		}
	case kindEcho, kindReady:
		// One counted vote of each kind per peer per slot: a Byzantine peer
		// must not vote twice (for the same or different values).
		if sl.voted[from]&voteBit(kind) != 0 {
			break
		}
		sl.voted[from] |= voteBit(kind)
		sl.data[h] = data
		n.countVote(sl, kind, from, h)
	default:
		n.mu.Unlock()
		return
	}

	// Threshold transitions for every value with recorded votes.
	echoThreshold := n.m.Quorum() // ceil((n+f+1)/2)
	readyAmplify := n.m.F + 1
	deliverAt := 2*n.m.F + 1
	var delivered []srb.Delivery
	for vh, payload := range sl.data {
		if !sl.readied && (len(sl.echoes[vh]) >= echoThreshold || len(sl.readies[vh]) >= readyAmplify) {
			sl.readied = true
			out = append(out, encode(kindReady, sender, seq, payload))
			n.countVote(sl, kindReady, n.self, vh)
		}
		if !sl.delivered && len(sl.readies[vh]) >= deliverAt {
			sl.delivered = true
			st.ready[seq] = payload
			for {
				p, ok := st.ready[st.next]
				if !ok {
					break
				}
				delete(st.ready, st.next)
				delivered = append(delivered, srb.Delivery{Sender: sender, Seq: st.next, Data: p})
				st.next++
			}
		}
	}
	n.mu.Unlock()

	for _, payload := range out {
		_ = transport.Broadcast(n.tr, n.m.Others(n.self), payload)
	}
	for _, d := range delivered {
		n.deliveries.Push(d)
	}
}

// countVote records a vote under the lock held by handle.
func (n *Node) countVote(sl *slot, kind byte, from types.ProcessID, h [sha256.Size]byte) {
	var byValue map[[sha256.Size]byte]map[types.ProcessID]bool
	if kind == kindEcho {
		byValue = sl.echoes
	} else {
		byValue = sl.readies
	}
	voters := byValue[h]
	if voters == nil {
		voters = make(map[types.ProcessID]bool)
		byValue[h] = voters
	}
	voters[from] = true
}

func voteBit(kind byte) byte {
	if kind == kindEcho {
		return 1
	}
	return 2
}

func encode(kind byte, sender types.ProcessID, seq types.SeqNum, data []byte) []byte {
	e := wire.NewEncoder(24 + len(data))
	e.Byte(kind)
	e.Int(int(sender))
	e.Uint64(uint64(seq))
	e.BytesField(data)
	return e.Bytes()
}

func decode(payload []byte) (kind byte, sender types.ProcessID, seq types.SeqNum, data []byte, err error) {
	d := wire.NewDecoder(payload)
	kind = d.Byte()
	sender = types.ProcessID(d.Int())
	seq = types.SeqNum(d.Uint64())
	// Alias the payload rather than copying: both transports hand each
	// received message its own buffer, and nothing here mutates it. SEND
	// payloads at n=7 arrive ~n times per broadcast, so the copy was a
	// per-message allocation on the hottest path.
	data = d.BytesField()
	if err := d.Finish(); err != nil {
		return 0, 0, 0, nil, fmt.Errorf("bracha: decode: %w", err)
	}
	return kind, sender, seq, data, nil
}
