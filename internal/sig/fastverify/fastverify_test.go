package fastverify

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"unidir/internal/sig"
	"unidir/internal/types"
)

func testKeyrings(t *testing.T, n int, scheme sig.Scheme) []*sig.Keyring {
	t.Helper()
	m, err := types.NewMembership(n, (n-1)/3)
	if err != nil {
		t.Fatal(err)
	}
	rings, err := sig.NewKeyrings(m, scheme, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return rings
}

func TestVerifyMatchesInner(t *testing.T) {
	for _, scheme := range []sig.Scheme{sig.Ed25519, sig.HMAC} {
		t.Run(scheme.String(), func(t *testing.T) {
			rings := testKeyrings(t, 4, scheme)
			v := New(rings[1])
			msg := []byte("statement")
			s := rings[0].Sign(msg)

			if err := v.Verify(0, msg, s); err != nil {
				t.Fatalf("valid signature rejected: %v", err)
			}
			// Second call must hit the cache and still succeed.
			if err := v.Verify(0, msg, s); err != nil {
				t.Fatalf("cached valid signature rejected: %v", err)
			}
			if st := v.Stats(); st.Hits != 1 || st.Misses != 1 {
				t.Fatalf("stats = %+v, want 1 hit 1 miss", st)
			}

			// Wrong signer, wrong message, wrong signature: all must fail,
			// cold and warm.
			bad := append([]byte(nil), s...)
			bad[0] ^= 0xff
			cases := []struct {
				name string
				from types.ProcessID
				msg  []byte
				sig  []byte
			}{
				{"wrong signer", 2, msg, s},
				{"wrong message", 0, []byte("other"), s},
				{"corrupt signature", 0, msg, bad},
			}
			for _, c := range cases {
				for pass := 0; pass < 2; pass++ {
					if err := v.Verify(c.from, c.msg, c.sig); !errors.Is(err, sig.ErrBadSignature) {
						t.Fatalf("%s (pass %d): err = %v, want ErrBadSignature", c.name, pass, err)
					}
				}
			}
		})
	}
}

// TestNoCrossSignerPollution is the Byzantine cache-correctness property
// from the issue: a forged signature must fail both cold and after a prior
// *successful* verification of the same message digest by another signer.
func TestNoCrossSignerPollution(t *testing.T) {
	rings := testKeyrings(t, 4, sig.Ed25519)
	v := New(rings[1])
	msg := []byte("the very same statement bytes")
	honest := rings[0].Sign(msg)

	// Cold: p2 presenting p0's signature as its own must fail.
	if err := v.Verify(2, msg, honest); !errors.Is(err, sig.ErrBadSignature) {
		t.Fatalf("cold forgery accepted: %v", err)
	}
	// Warm the cache with the honest triple.
	if err := v.Verify(0, msg, honest); err != nil {
		t.Fatalf("honest verify: %v", err)
	}
	// The same digest is now cached as verified *for p0*. Re-attributing
	// the signature to p2 must still fail: the key binds the signer.
	if err := v.Verify(2, msg, honest); !errors.Is(err, sig.ErrBadSignature) {
		t.Fatalf("forgery accepted after honest verify of same digest: %v", err)
	}
	// And a corrupted signature over the cached message must fail too.
	forged := append([]byte(nil), honest...)
	forged[5] ^= 0x40
	if err := v.Verify(0, msg, forged); !errors.Is(err, sig.ErrBadSignature) {
		t.Fatalf("corrupt signature accepted after honest verify: %v", err)
	}
}

func TestNegativeCacheNeverFlipsToSuccess(t *testing.T) {
	rings := testKeyrings(t, 4, sig.HMAC)
	v := New(rings[1])
	msg := []byte("m")
	bad := rings[0].Sign([]byte("different"))

	for i := 0; i < 3; i++ {
		if err := v.Verify(0, msg, bad); !errors.Is(err, sig.ErrBadSignature) {
			t.Fatalf("attempt %d: bad signature accepted: %v", i, err)
		}
	}
	st := v.Stats()
	if st.Misses != 1 || st.NegHits != 2 {
		t.Fatalf("stats = %+v, want 1 miss 2 negative hits", st)
	}
	// The genuine signature still verifies: the negative entry binds the
	// bad triple only.
	if err := v.Verify(0, msg, rings[0].Sign(msg)); err != nil {
		t.Fatalf("good signature rejected after cached failure: %v", err)
	}
}

func TestCacheBoundedAndEvicts(t *testing.T) {
	rings := testKeyrings(t, 4, sig.HMAC)
	v := New(rings[1], WithCacheSize(2), WithNegativeCacheSize(1))

	msgs := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	sigs := make([][]byte, len(msgs))
	for i, m := range msgs {
		sigs[i] = rings[0].Sign(m)
		if err := v.Verify(0, m, sigs[i]); err != nil {
			t.Fatal(err)
		}
	}
	v.mu.Lock()
	posLen := v.pos.len()
	v.mu.Unlock()
	if posLen != 2 {
		t.Fatalf("positive cache holds %d entries, cap 2", posLen)
	}
	// "a" was least recently used and must have been evicted: verifying it
	// again is a miss (re-verification), while "c" is a hit.
	before := v.Stats()
	if err := v.Verify(0, msgs[0], sigs[0]); err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(0, msgs[2], sigs[2]); err != nil {
		t.Fatal(err)
	}
	after := v.Stats()
	if after.Misses != before.Misses+1 || after.Hits != before.Hits+1 {
		t.Fatalf("eviction not observed: before %+v after %+v", before, after)
	}

	// Negative cache capped at 1: flooding it with garbage keeps only the
	// most recent entry and never touches the positive cache.
	for i := 0; i < 8; i++ {
		_ = v.Verify(0, []byte(fmt.Sprintf("junk-%d", i)), []byte("nonsense"))
	}
	v.mu.Lock()
	negLen, posLen2 := v.neg.len(), v.pos.len()
	v.mu.Unlock()
	if negLen != 1 {
		t.Fatalf("negative cache holds %d entries, cap 1", negLen)
	}
	if posLen2 != 2 {
		t.Fatalf("garbage flood disturbed positive cache: %d entries", posLen2)
	}
}

func TestVerifyAll(t *testing.T) {
	rings := testKeyrings(t, 7, sig.Ed25519)
	v := New(rings[0], WithWorkers(4), WithSequentialThreshold(2))

	items := make([]Item, 0, 24)
	for i := 0; i < 24; i++ {
		from := types.ProcessID(i % 7)
		msg := []byte(fmt.Sprintf("stmt-%d", i))
		items = append(items, Item{From: from, Msg: msg, Sig: rings[from].Sign(msg)})
	}
	if err := v.VerifyAll(items); err != nil {
		t.Fatalf("all-valid batch failed: %v", err)
	}
	// Second pass: all hits, no new misses.
	before := v.Stats()
	if err := v.VerifyAll(items); err != nil {
		t.Fatalf("cached batch failed: %v", err)
	}
	if after := v.Stats(); after.Misses != before.Misses {
		t.Fatalf("cached batch re-verified: before %+v after %+v", before, after)
	}

	// One forged item anywhere must fail the whole batch, with and without
	// the cache warmed for the honest items.
	forged := append([]Item(nil), items...)
	forged[17].Sig = append([]byte(nil), forged[17].Sig...)
	forged[17].Sig[3] ^= 0x01
	if err := v.VerifyAll(forged); !errors.Is(err, sig.ErrBadSignature) {
		t.Fatalf("batch with forgery: err = %v, want ErrBadSignature", err)
	}
	fresh := New(rings[0], WithWorkers(4), WithSequentialThreshold(2))
	if err := fresh.VerifyAll(forged); !errors.Is(err, sig.ErrBadSignature) {
		t.Fatalf("cold batch with forgery: err = %v, want ErrBadSignature", err)
	}
	if err := v.VerifyAll(items); err != nil {
		t.Fatalf("honest batch fails after forged batch: %v", err)
	}
}

func TestVerifyAllEmptyAndSmall(t *testing.T) {
	rings := testKeyrings(t, 4, sig.HMAC)
	v := New(rings[0])
	if err := v.VerifyAll(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	msg := []byte("x")
	if err := v.VerifyAll([]Item{{From: 1, Msg: msg, Sig: rings[1].Sign(msg)}}); err != nil {
		t.Fatalf("singleton batch: %v", err)
	}
}

// TestConcurrentUse hammers one Verifier from many goroutines (run with
// -race): concurrent hits, misses, evictions, and failures.
func TestConcurrentUse(t *testing.T) {
	rings := testKeyrings(t, 4, sig.HMAC)
	v := New(rings[0], WithCacheSize(32), WithNegativeCacheSize(8))

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				from := types.ProcessID(i % 4)
				msg := []byte(fmt.Sprintf("m-%d", i%40))
				s := rings[from].Sign(msg)
				if i%7 == 0 {
					s = []byte("garbage")
					if err := v.Verify(from, msg, s); err == nil {
						t.Error("garbage signature accepted")
						return
					}
					continue
				}
				if err := v.Verify(from, msg, s); err != nil {
					t.Errorf("valid signature rejected: %v", err)
					return
				}
				if i%11 == 0 {
					items := []Item{
						{From: from, Msg: msg, Sig: s},
						{From: (from + 1) % 4, Msg: msg, Sig: rings[(from+1)%4].Sign(msg)},
						{From: (from + 2) % 4, Msg: msg, Sig: rings[(from+2)%4].Sign(msg)},
						{From: (from + 3) % 4, Msg: msg, Sig: rings[(from+3)%4].Sign(msg)},
						{From: from, Msg: []byte("q"), Sig: rings[from].Sign([]byte("q"))},
					}
					if err := v.VerifyAll(items); err != nil {
						t.Errorf("valid batch rejected: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestKillSwitchPassThrough(t *testing.T) {
	t.Setenv("UNIDIR_FASTVERIFY", "off")
	rings := testKeyrings(t, 4, sig.HMAC)
	v := New(rings[0])
	if v.Enabled() || v.Concurrent() {
		t.Fatal("kill switch did not disable the fast path")
	}
	msg := []byte("m")
	s := rings[1].Sign(msg)
	for i := 0; i < 2; i++ {
		if err := v.Verify(1, msg, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.VerifyAll([]Item{{From: 1, Msg: msg, Sig: s}}); err != nil {
		t.Fatal(err)
	}
	if st := v.Stats(); st.Hits != 0 && st.Misses != 0 {
		t.Fatalf("disabled verifier recorded stats: %+v", st)
	}
}
