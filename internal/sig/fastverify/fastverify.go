// Package fastverify is the signature-verification fast path shared by
// every SRB/SMR protocol in the library: a bounded verified-signature cache
// plus a concurrent batch verifier, layered over any sig.Verifier.
//
// Motivation: in hybrid-trust BFT systems signature verification dominates
// the critical path, and the library's protocols re-verify the *same*
// signature many times — an echo signature is verified once when the echo
// arrives, again inside every L1 proof that carries it, and again inside
// every L1 of every L2 proof; a TrInc attestation is verified once per
// relay that delivers it. The cache collapses all of these to one real
// verification per process; the batch verifier fans independent
// verifications of a proof's signature set across GOMAXPROCS workers.
//
// Safety argument (see DESIGN.md §5):
//
//   - The cache key is a SHA-256 binding of (signer, message, signature).
//     A hit therefore asserts exactly "this triple verified before" — the
//     same statement the underlying Verifier makes — and nothing about any
//     other signer or message, so there is no cross-signer or cross-message
//     pollution. (Finding a different triple with the same key is a SHA-256
//     collision, which the library already assumes away everywhere message
//     digests are signed.)
//   - Failures are never cached as successes; they go to a separate,
//     smaller negative cache. A negative hit is sound because verification
//     is deterministic: the same triple always fails. Byzantine garbage can
//     at worst churn the negative cache, whose capacity is capped
//     independently so it cannot evict positive entries.
//   - Both caches are bounded LRUs: an eviction costs a re-verification,
//     never a wrong answer.
//
// The fast path can be disabled for A/B measurement (and as an operational
// escape hatch) by setting UNIDIR_FASTVERIFY=off in the environment, which
// turns New into a transparent pass-through to the inner verifier.
package fastverify

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"

	"unidir/internal/obs"
	"unidir/internal/obs/knob"
	"unidir/internal/sig"
	"unidir/internal/types"
)

// Item is one signature verification: sig is checked as from's signature
// over msg. The slices are only read and never retained.
type Item struct {
	From types.ProcessID
	Msg  []byte
	Sig  []byte
}

// Stats are cumulative counters for monitoring and tests. Every lookup is
// exactly one of a positive hit, a negative hit, or a miss, so
// Hits + NegHits + Misses equals the total lookups served.
type Stats struct {
	Hits      uint64 // positive-cache hits
	NegHits   uint64 // negative-cache hits
	Misses    uint64 // real verifications performed
	Evictions uint64 // cache entries displaced by capacity (either cache)
}

// Defaults.
const (
	// DefaultCacheSize bounds the positive cache. At 64-byte signatures a
	// full cache of 32-byte keys costs well under 1 MiB.
	DefaultCacheSize = 8192
	// DefaultNegativeCacheSize bounds the negative cache. Deliberately much
	// smaller: negative entries only help against replayed garbage, and a
	// Byzantine flood must not be able to claim real memory.
	DefaultNegativeCacheSize = 512
	// DefaultSequentialThreshold is the batch size below which VerifyAll
	// verifies inline instead of fanning out to workers.
	DefaultSequentialThreshold = 4
)

// Option configures a Verifier.
type Option func(*Verifier)

// WithCacheSize bounds the positive cache; 0 disables positive caching.
func WithCacheSize(n int) Option {
	return func(v *Verifier) { v.pos.cap = n }
}

// WithNegativeCacheSize bounds the negative cache; 0 disables it.
func WithNegativeCacheSize(n int) Option {
	return func(v *Verifier) { v.neg.cap = n }
}

// WithWorkers sets the batch fan-out width (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(v *Verifier) {
		if n > 0 {
			v.workers = n
		}
	}
}

// WithSequentialThreshold sets the batch size below which VerifyAll stays
// inline.
func WithSequentialThreshold(n int) Option {
	return func(v *Verifier) { v.seqThreshold = n }
}

// Verifier wraps an inner sig.Verifier with the cache and batch fast path.
// It implements sig.Verifier and is safe for concurrent use.
type Verifier struct {
	inner        sig.Verifier
	workers      int
	seqThreshold int
	disabled     bool

	mu  sync.Mutex
	pos lru
	neg lru

	hits, negHits, misses, evictions atomic.Uint64

	mx atomic.Pointer[fvMetrics] // nil until AttachMetrics
}

var _ sig.Verifier = (*Verifier)(nil)

// New wraps inner with the fast path. If the environment variable
// UNIDIR_FASTVERIFY is set to "off" (or "0"), the returned Verifier is a
// transparent pass-through: no caching, no fan-out. That keeps before/after
// benchmarking honest inside one binary.
func New(inner sig.Verifier, opts ...Option) *Verifier {
	v := &Verifier{
		inner:        inner,
		workers:      runtime.GOMAXPROCS(0),
		seqThreshold: DefaultSequentialThreshold,
		pos:          lru{cap: DefaultCacheSize},
		neg:          lru{cap: DefaultNegativeCacheSize},
	}
	for _, opt := range opts {
		opt(v)
	}
	switch knob.Choice("UNIDIR_FASTVERIFY", "on", "on", "1", "off", "0") {
	case "off", "0":
		v.disabled = true
	}
	return v
}

// Enabled reports whether the fast path is active (it is not when the
// UNIDIR_FASTVERIFY=off kill switch is set).
func (v *Verifier) Enabled() bool { return !v.disabled }

// Concurrent reports whether batch verification can actually run in
// parallel. Verify-ahead pipelines should consult this: on a single-core
// process, pre-verification on another goroutine only adds queue traffic.
func (v *Verifier) Concurrent() bool { return !v.disabled && v.workers > 1 }

// Stats returns cumulative cache counters.
func (v *Verifier) Stats() Stats {
	return Stats{
		Hits:      v.hits.Load(),
		NegHits:   v.negHits.Load(),
		Misses:    v.misses.Load(),
		Evictions: v.evictions.Load(),
	}
}

// fvMetrics mirrors the Stats counters into an obs.Registry, plus the
// batch-verify size distribution. The handles are shared: attaching several
// verifiers (e.g. one per replica in a test harness) to one registry
// aggregates them, preserving the lookups == hits+negHits+misses invariant.
type fvMetrics struct {
	lookups   *obs.Counter
	hits      *obs.Counter
	negHits   *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	batchSize *obs.Histogram
}

// AttachMetrics publishes the verifier's counters into reg as
// sig_lookups_total, sig_cache_hits_total, sig_cache_neg_hits_total,
// sig_verifications_total, sig_cache_evictions_total, and the
// sig_batch_verify_size histogram. Safe to call at any time, including
// while the verifier is in use.
func (v *Verifier) AttachMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	v.mx.Store(&fvMetrics{
		lookups:   reg.Counter("sig_lookups_total"),
		hits:      reg.Counter("sig_cache_hits_total"),
		negHits:   reg.Counter("sig_cache_neg_hits_total"),
		misses:    reg.Counter("sig_verifications_total"),
		evictions: reg.Counter("sig_cache_evictions_total"),
		batchSize: reg.Histogram("sig_batch_verify_size", obs.SizeBuckets),
	})
}

// key binds (signer, message, signature) into one cache key. Length
// prefixes make the binding unambiguous (no msg/sig boundary confusion).
func cacheKey(from types.ProcessID, msg, sig []byte) [sha256.Size]byte {
	h := sha256.New()
	var hdr [20]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(int64(from)))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(msg)))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(sig)))
	h.Write(hdr[:])
	h.Write(msg)
	h.Write(sig)
	var k [sha256.Size]byte
	h.Sum(k[:0])
	return k
}

// lookup consults both caches. It returns (verdict, true) on a hit, where
// verdict is nil for a cached success and the cached error for a cached
// failure.
func (v *Verifier) lookup(k [sha256.Size]byte) (error, bool) {
	m := v.mx.Load()
	if m != nil {
		m.lookups.Inc()
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.pos.get(k); ok {
		v.hits.Add(1)
		if m != nil {
			m.hits.Inc()
		}
		return nil, true
	}
	if err, ok := v.neg.get(k); ok {
		v.negHits.Add(1)
		if m != nil {
			m.negHits.Inc()
		}
		return err, true
	}
	return nil, false
}

// record stores the outcome of a real verification. Successes and failures
// go to separate bounded caches; a failure is never recorded as a success.
func (v *Verifier) record(k [sha256.Size]byte, err error) {
	v.mu.Lock()
	var evicted int
	if err == nil {
		evicted = v.pos.put(k, nil)
	} else {
		evicted = v.neg.put(k, err)
	}
	v.mu.Unlock()
	if evicted > 0 {
		v.evictions.Add(uint64(evicted))
		if m := v.mx.Load(); m != nil {
			m.evictions.Add(uint64(evicted))
		}
	}
}

// Verify checks one signature through the cache. It implements
// sig.Verifier.
func (v *Verifier) Verify(from types.ProcessID, msg, sig []byte) error {
	if v.disabled {
		return v.inner.Verify(from, msg, sig)
	}
	k := cacheKey(from, msg, sig)
	if err, ok := v.lookup(k); ok {
		return err
	}
	v.misses.Add(1)
	if m := v.mx.Load(); m != nil {
		m.misses.Inc()
	}
	err := v.inner.Verify(from, msg, sig)
	v.record(k, err)
	return err
}

// VerifyAll checks every item and returns nil only if all verify. It
// consults the cache first, verifies the remaining misses — inline for
// small batches, otherwise fanned out over the worker pool — and
// short-circuits on the first failure (workers drain early; their partial
// results are still cached). The error returned is one failing item's
// error; which one is unspecified when several fail.
func (v *Verifier) VerifyAll(items []Item) error {
	if v.disabled {
		for _, it := range items {
			if err := v.inner.Verify(it.From, it.Msg, it.Sig); err != nil {
				return err
			}
		}
		return nil
	}

	if m := v.mx.Load(); m != nil {
		m.batchSize.Observe(float64(len(items)))
	}
	// Cache pass: resolve hits, collect misses.
	type miss struct {
		idx int
		key [sha256.Size]byte
	}
	var misses []miss
	for i, it := range items {
		k := cacheKey(it.From, it.Msg, it.Sig)
		err, ok := v.lookup(k)
		if ok {
			if err != nil {
				return err
			}
			continue
		}
		misses = append(misses, miss{idx: i, key: k})
	}
	if len(misses) == 0 {
		return nil
	}
	v.misses.Add(uint64(len(misses)))
	if m := v.mx.Load(); m != nil {
		m.misses.Add(uint64(len(misses)))
	}

	verifyOne := func(m miss) error {
		it := items[m.idx]
		err := v.inner.Verify(it.From, it.Msg, it.Sig)
		v.record(m.key, err)
		return err
	}

	if len(misses) < v.seqThreshold || v.workers <= 1 {
		for _, m := range misses {
			if err := verifyOne(m); err != nil {
				return err
			}
		}
		return nil
	}

	// Fan out: workers pull from a shared cursor and stop early once any
	// verification fails.
	workers := v.workers
	if workers > len(misses) {
		workers = len(misses)
	}
	var (
		cursor atomic.Int64
		failed atomic.Bool
		first  atomic.Pointer[error]
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(misses) {
					return
				}
				if err := verifyOne(misses[i]); err != nil {
					e := err
					first.CompareAndSwap(nil, &e)
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if p := first.Load(); p != nil {
		return *p
	}
	return nil
}

// --- bounded LRU ---

// lru is a bounded map from cache key to verification outcome with
// least-recently-used eviction. Not safe for concurrent use; the Verifier
// guards it with its mutex.
type lru struct {
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	byKey map[[sha256.Size]byte]*list.Element
}

type lruEntry struct {
	key [sha256.Size]byte
	err error // nil for positive entries
}

func (l *lru) get(k [sha256.Size]byte) (error, bool) {
	if l.byKey == nil {
		return nil, false
	}
	el, ok := l.byKey[k]
	if !ok {
		return nil, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*lruEntry).err, true
}

// put stores or refreshes an entry and returns how many entries capacity
// forced out to make room.
func (l *lru) put(k [sha256.Size]byte, err error) int {
	if l.cap <= 0 {
		return 0
	}
	if l.byKey == nil {
		l.byKey = make(map[[sha256.Size]byte]*list.Element, l.cap)
		l.order = list.New()
	}
	if el, ok := l.byKey[k]; ok {
		el.Value.(*lruEntry).err = err
		l.order.MoveToFront(el)
		return 0
	}
	evicted := 0
	for len(l.byKey) >= l.cap {
		oldest := l.order.Back()
		l.order.Remove(oldest)
		delete(l.byKey, oldest.Value.(*lruEntry).key)
		evicted++
	}
	l.byKey[k] = l.order.PushFront(&lruEntry{key: k, err: err})
	return evicted
}

// len reports the number of cached entries (for tests).
func (l *lru) len() int { return len(l.byKey) }
