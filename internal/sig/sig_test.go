package sig

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"unidir/internal/types"
)

func schemes() []Scheme { return []Scheme{Ed25519, HMAC} }

func newRings(t *testing.T, n int, scheme Scheme) []*Keyring {
	t.Helper()
	m, err := types.NewMembership(n, (n-1)/2)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	rings, err := NewKeyrings(m, scheme, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatalf("NewKeyrings(%v): %v", scheme, err)
	}
	return rings
}

func TestSignVerify(t *testing.T) {
	for _, scheme := range schemes() {
		t.Run(scheme.String(), func(t *testing.T) {
			rings := newRings(t, 4, scheme)
			msg := []byte("the paper's unforgeable transferable signatures")
			s := rings[1].Sign(msg)
			// Transferability: every ring verifies, not just the signer's.
			for _, r := range rings {
				if err := r.Verify(1, msg, s); err != nil {
					t.Fatalf("ring %v Verify: %v", r.Self(), err)
				}
			}
		})
	}
}

func TestVerifyRejections(t *testing.T) {
	for _, scheme := range schemes() {
		t.Run(scheme.String(), func(t *testing.T) {
			rings := newRings(t, 4, scheme)
			msg := []byte("message")
			s := rings[1].Sign(msg)

			if err := rings[0].Verify(2, msg, s); !errors.Is(err, ErrBadSignature) {
				t.Fatalf("wrong signer attribution err = %v", err)
			}
			if err := rings[0].Verify(1, []byte("different"), s); !errors.Is(err, ErrBadSignature) {
				t.Fatalf("wrong message err = %v", err)
			}
			bad := append([]byte(nil), s...)
			bad[0] ^= 1
			if err := rings[0].Verify(1, msg, bad); !errors.Is(err, ErrBadSignature) {
				t.Fatalf("tampered signature err = %v", err)
			}
			if err := rings[0].Verify(99, msg, s); !errors.Is(err, ErrBadSignature) {
				t.Fatalf("unknown signer err = %v", err)
			}
			if err := rings[0].Verify(-1, msg, s); !errors.Is(err, ErrBadSignature) {
				t.Fatalf("negative signer err = %v", err)
			}
		})
	}
}

func TestDeterministicKeygen(t *testing.T) {
	m, _ := types.NewMembership(3, 1)
	for _, scheme := range schemes() {
		a, err := NewKeyrings(m, scheme, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatalf("NewKeyrings: %v", err)
		}
		b, err := NewKeyrings(m, scheme, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatalf("NewKeyrings: %v", err)
		}
		msg := []byte("determinism")
		if err := b[0].Verify(2, msg, a[2].Sign(msg)); err != nil {
			t.Fatalf("%v: same-seed universes incompatible: %v", scheme, err)
		}
	}
}

func TestNilRNGWorks(t *testing.T) {
	m, _ := types.NewMembership(3, 1)
	for _, scheme := range schemes() {
		rings, err := NewKeyrings(m, scheme, nil)
		if err != nil {
			t.Fatalf("NewKeyrings(%v, nil): %v", scheme, err)
		}
		msg := []byte("default randomness")
		if err := rings[1].Verify(0, msg, rings[0].Sign(msg)); err != nil {
			t.Fatalf("verify: %v", err)
		}
	}
}

func TestUnknownSchemeRejected(t *testing.T) {
	m, _ := types.NewMembership(3, 1)
	if _, err := NewKeyrings(m, Scheme(99), nil); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestQuickNoCrossProcessForgery(t *testing.T) {
	// Property: a signature by process i never verifies as process j != i.
	for _, scheme := range schemes() {
		rings := newRings(t, 4, scheme)
		f := func(msg []byte, i, j uint8) bool {
			pi := types.ProcessID(i % 4)
			pj := types.ProcessID(j % 4)
			s := rings[pi].Sign(msg)
			err := rings[0].Verify(pj, msg, s)
			if pi == pj {
				return err == nil
			}
			return errors.Is(err, ErrBadSignature)
		}
		cfg := &quick.Config{MaxCount: 30}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
	}
}
