// Package sig provides the unforgeable transferable signatures the paper
// assumes (§2 Preliminaries): every process can sign statements, and any
// process can verify any other process's signature, including signatures
// relayed second-hand ("transferable").
//
// Two schemes are provided behind one interface:
//
//   - Ed25519 (crypto/ed25519, stdlib): real public-key signatures. This is
//     the default for examples and the TCP deployment.
//   - HMAC-SHA256 with a trusted dealer: every verifier holds the signer's
//     MAC key. Within a simulation harness this models unforgeability
//     perfectly (the adversary runs inside the harness and never reads other
//     processes' keys) at ~20x lower cost, which matters for benchmarks that
//     sweep thousands of protocol instances.
//
// A Keyring holds one process's private signer plus verifiers for the whole
// membership, and is the object protocols are configured with.
package sig

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/rand"

	"unidir/internal/types"
)

// Scheme selects a signature algorithm for NewKeyrings.
type Scheme int

const (
	// Ed25519 selects stdlib public-key signatures.
	Ed25519 Scheme = iota + 1
	// HMAC selects dealer-distributed MAC "signatures" (simulation only).
	HMAC
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Ed25519:
		return "ed25519"
	case HMAC:
		return "hmac-sha256"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// ErrBadSignature reports a verification failure.
var ErrBadSignature = errors.New("sig: invalid signature")

// Signer produces signatures for one process's statements.
type Signer interface {
	// Sign returns a signature over msg. Implementations must be safe for
	// concurrent use.
	Sign(msg []byte) []byte
}

// Verifier checks signatures from every process in a membership.
type Verifier interface {
	// Verify returns nil if sig is a valid signature by process from over
	// msg, and an error wrapping ErrBadSignature otherwise.
	Verify(from types.ProcessID, msg, sig []byte) error
}

// Keyring is one process's view of the signature infrastructure: its own
// signer and a verifier for all processes. Keyring values are immutable after
// creation and safe for concurrent use.
type Keyring struct {
	self     types.ProcessID
	signer   Signer
	verifier Verifier
	scheme   Scheme
}

// Self returns the process this keyring signs for.
func (k *Keyring) Self() types.ProcessID { return k.self }

// Scheme returns the signature scheme in use.
func (k *Keyring) Scheme() Scheme { return k.scheme }

// Sign signs msg as this process.
func (k *Keyring) Sign(msg []byte) []byte { return k.signer.Sign(msg) }

// Verify checks a signature by process from over msg.
func (k *Keyring) Verify(from types.ProcessID, msg, sig []byte) error {
	return k.verifier.Verify(from, msg, sig)
}

// NewKeyrings generates a full set of keyrings for the membership using the
// given scheme. rng seeds key generation; pass a deterministic source (for
// example math/rand.New with a fixed seed) for reproducible simulations, or
// nil to use crypto-quality defaults via ed25519's internal randomness.
//
// The returned slice is indexed by ProcessID.
func NewKeyrings(m types.Membership, scheme Scheme, rng *rand.Rand) ([]*Keyring, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	switch scheme {
	case Ed25519:
		return newEd25519Keyrings(m, rng)
	case HMAC:
		return newHMACKeyrings(m, rng)
	default:
		return nil, fmt.Errorf("sig: unknown scheme %v", scheme)
	}
}

// --- Ed25519 ---

type ed25519Signer struct {
	priv ed25519.PrivateKey
}

func (s *ed25519Signer) Sign(msg []byte) []byte {
	return ed25519.Sign(s.priv, msg)
}

type ed25519Verifier struct {
	pubs []ed25519.PublicKey // indexed by ProcessID
}

func (v *ed25519Verifier) Verify(from types.ProcessID, msg, sig []byte) error {
	if int(from) < 0 || int(from) >= len(v.pubs) {
		return fmt.Errorf("%w: unknown signer %v", ErrBadSignature, from)
	}
	if !ed25519.Verify(v.pubs[from], msg, sig) {
		return fmt.Errorf("%w: from %v", ErrBadSignature, from)
	}
	return nil
}

func newEd25519Keyrings(m types.Membership, rng *rand.Rand) ([]*Keyring, error) {
	var source io.Reader // nil selects crypto/rand inside GenerateKey
	if rng != nil {
		source = deterministicReader{rng}
	}
	pubs := make([]ed25519.PublicKey, m.N)
	privs := make([]ed25519.PrivateKey, m.N)
	for i := 0; i < m.N; i++ {
		pub, priv, err := ed25519.GenerateKey(source)
		if err != nil {
			return nil, fmt.Errorf("sig: generate ed25519 key for p%d: %w", i, err)
		}
		pubs[i], privs[i] = pub, priv
	}
	verifier := &ed25519Verifier{pubs: pubs}
	rings := make([]*Keyring, m.N)
	for i := 0; i < m.N; i++ {
		rings[i] = &Keyring{
			self:     types.ProcessID(i),
			signer:   &ed25519Signer{priv: privs[i]},
			verifier: verifier,
			scheme:   Ed25519,
		}
	}
	return rings, nil
}

// deterministicReader adapts math/rand to io.Reader for reproducible keygen.
type deterministicReader struct{ rng *rand.Rand }

func (r deterministicReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(r.rng.Intn(256))
	}
	return len(p), nil
}

// --- HMAC (trusted dealer) ---

type hmacSigner struct {
	key []byte
}

func (s *hmacSigner) Sign(msg []byte) []byte {
	mac := hmac.New(sha256.New, s.key)
	mac.Write(msg)
	return mac.Sum(nil)
}

type hmacVerifier struct {
	keys [][]byte // indexed by ProcessID
}

func (v *hmacVerifier) Verify(from types.ProcessID, msg, sig []byte) error {
	if int(from) < 0 || int(from) >= len(v.keys) {
		return fmt.Errorf("%w: unknown signer %v", ErrBadSignature, from)
	}
	mac := hmac.New(sha256.New, v.keys[from])
	mac.Write(msg)
	if !hmac.Equal(mac.Sum(nil), sig) {
		return fmt.Errorf("%w: from %v", ErrBadSignature, from)
	}
	return nil
}

func newHMACKeyrings(m types.Membership, rng *rand.Rand) ([]*Keyring, error) {
	keys := make([][]byte, m.N)
	for i := range keys {
		keys[i] = make([]byte, 32)
		if rng != nil {
			for j := range keys[i] {
				keys[i][j] = byte(rng.Intn(256))
			}
		} else {
			// Derive distinct keys without importing crypto/rand: hash the
			// index. Unique per process; the simulation threat model only
			// requires that protocol code never signs with another process's
			// key, which the Keyring structure enforces.
			sum := sha256.Sum256([]byte(fmt.Sprintf("unidir-hmac-key-%d", i)))
			copy(keys[i], sum[:])
		}
	}
	verifier := &hmacVerifier{keys: keys}
	rings := make([]*Keyring, m.N)
	for i := 0; i < m.N; i++ {
		rings[i] = &Keyring{
			self:     types.ProcessID(i),
			signer:   &hmacSigner{key: keys[i]},
			verifier: verifier,
			scheme:   HMAC,
		}
	}
	return rings, nil
}
