package watch_test

// Live-cluster integration: the watcher scraping real MinBFT groups through
// the sharded harness — the same wiring unidir-doctor uses — and the
// Byzantine detection case from the issue: a replica forging a divergent
// checkpoint digest on its introspection surface (byz.ForgeCheckpointDigest)
// must be caught with evidence naming it.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"strings"
	"testing"
	"time"

	"unidir/internal/byz"
	"unidir/internal/cluster"
	"unidir/internal/harness"
	"unidir/internal/obs"
	"unidir/internal/sig"
	"unidir/internal/watch"
)

// buildShardedSources builds a 2-shard MinBFT cluster with a small
// checkpoint interval and returns it plus one Local source per shard,
// optionally wrapping shard 0 / replica 0's provider with forge.
func buildShardedSources(t *testing.T, forge bool) (*harness.ShardedCluster, []watch.Source) {
	t.Helper()
	sc, err := harness.BuildSharded(cluster.MinBFT, harness.ShardedConfig{
		Shards: 2,
		SMR:    harness.SMRConfig{F: 1, Scheme: sig.HMAC, Ckpt: 4, Batch: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sc.Stop)

	var sources []watch.Source
	for g, group := range sc.Groups {
		providers := make([]obs.StatusProvider, 0, len(group.Replicas))
		for i, rep := range group.Replicas {
			p := cluster.StatusProvider(rep)
			if p == nil {
				t.Fatalf("shard %d replica %d is not a StatusProvider", g, i)
			}
			if forge && g == 0 && i == 0 {
				p = byz.ForgeCheckpointDigest(p)
			}
			providers = append(providers, p)
		}
		sources = append(sources, watch.Local(strconv.Itoa(g), providers...))
	}
	return sc, sources
}

// writeUntilCheckpoints drives writes until every replica of every shard
// reports a stable checkpoint (laggards may reach it via state transfer).
func writeUntilCheckpoints(ctx context.Context, t *testing.T, sc *harness.ShardedCluster, sources []watch.Source) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for i := 0; ; i++ {
		for j := 0; j < 8; j++ {
			key := fmt.Sprintf("wk-%d-%d", i, j)
			if err := sc.Client.Put(ctx, key, []byte{byte(j)}); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		all := true
		for _, src := range sources {
			sts, err := src.Fetch(ctx)
			if err != nil {
				t.Fatalf("fetch: %v", err)
			}
			for _, st := range sts {
				if st.Checkpoint == nil {
					all = false
				}
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas never reached a stable checkpoint")
		}
	}
}

func quietWatcher(sources []watch.Source, reg *obs.Registry) *watch.Watcher {
	return watch.New(watch.Config{
		Sources: sources,
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
		Metrics: reg,
	})
}

func TestLiveClusterHealthy(t *testing.T) {
	sc, sources := buildShardedSources(t, false)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	writeUntilCheckpoints(ctx, t, sc, sources)

	w := quietWatcher(sources, obs.NewRegistry())
	rep := w.Scrape(ctx)
	if !rep.Healthy() {
		t.Fatalf("scrape 1 unhealthy: %+v %v", rep.Violations, rep.ScrapeErrors)
	}
	if len(rep.Replicas) != 6 || len(rep.Groups) != 2 {
		t.Fatalf("scraped %d replicas, %d groups; want 6, 2", len(rep.Replicas), len(rep.Groups))
	}
	for shard, g := range rep.Groups {
		if g.Replicas != 3 || g.Stale != 0 {
			t.Fatalf("shard %s health = %+v", shard, g)
		}
	}
	// Statuses must carry the hybrid-trust marker: every minbft replica
	// reports a hardware-backed usig counter.
	for _, st := range rep.Replicas {
		if st.TrustedCounters["usig"] == 0 {
			t.Fatalf("replica %d/%s has no usig high-water mark: %+v", st.Replica, st.Shard, st)
		}
	}
	// More traffic, then a second scrape: still healthy, and the cross-scrape
	// monotone rules have now actually compared something.
	for j := 0; j < 8; j++ {
		if err := sc.Client.Put(ctx, fmt.Sprintf("t2-%d", j), []byte{1}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	rep = w.Scrape(ctx)
	if !rep.Healthy() {
		t.Fatalf("scrape 2 unhealthy: %+v", rep.Violations)
	}
	if w.TotalViolations() != 0 {
		t.Fatalf("accumulated violations: %v", w.Violations())
	}
}

func TestLiveClusterForgedDigestCaught(t *testing.T) {
	sc, sources := buildShardedSources(t, true)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	writeUntilCheckpoints(ctx, t, sc, sources)

	reg := obs.NewRegistry()
	w := quietWatcher(sources, reg)
	rep := w.Scrape(ctx)
	var found *watch.Violation
	for i := range rep.Violations {
		if rep.Violations[i].Rule == watch.RuleCheckpointDivergence && rep.Violations[i].Shard == "0" {
			found = &rep.Violations[i]
		}
	}
	if found == nil {
		t.Fatalf("forged digest not caught: %+v", rep.Violations)
	}
	// The evidence must name the forging replica (0) as the diverging one:
	// its digest is the minority against two honest replicas.
	ev := string(found.Evidence)
	if !strings.Contains(ev, `"diverging":[0]`) {
		t.Fatalf("evidence does not blame replica 0: %s", ev)
	}
	if got := reg.Snapshot().CounterSum("watch_violations_total"); got == 0 {
		t.Fatal("watch_violations_total not incremented")
	}
	// The healthy shard stays clean.
	for _, v := range rep.Violations {
		if v.Shard == "1" {
			t.Fatalf("healthy shard flagged: %+v", v)
		}
	}
}
