package watch

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"strings"
	"testing"

	"unidir/internal/obs"
)

// feed drives a watcher from literal status slices, one slice per scrape.
type feed struct {
	scrapes [][]obs.Status
	idx     int
}

func (f *feed) source() Source {
	return Source{Name: "feed", Fetch: func(context.Context) ([]obs.Status, error) {
		if f.idx >= len(f.scrapes) {
			return nil, nil
		}
		sts := f.scrapes[f.idx]
		f.idx++
		return sts, nil
	}}
}

func newTestWatcher(t *testing.T, f *feed) (*Watcher, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	lg := slog.New(slog.NewTextHandler(io.Discard, nil))
	return New(Config{Sources: []Source{f.source()}, Logger: lg, Metrics: reg}), reg
}

func st(shard string, replica int, exec uint64) obs.Status {
	return obs.Status{
		Protocol: "minbft", Shard: shard, Replica: replica,
		Ready: true, ExecCount: exec, ProposedBatches: exec + 10,
	}
}

func withCkpt(s obs.Status, count uint64, digest string) obs.Status {
	s.Checkpoint = &obs.CheckpointStatus{Count: count, Digest: digest}
	return s
}

func withUSIG(s obs.Status, v uint64) obs.Status {
	s.TrustedCounters = map[string]uint64{"usig": v}
	return s
}

func withLease(s obs.Status, holder int, term uint64) obs.Status {
	s.Lease = &obs.LeaseStatus{Holder: holder, Term: term, ExpiresInMS: 100}
	return s
}

func rules(vs []Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Rule
	}
	return out
}

func TestHealthyScrapeNoViolations(t *testing.T) {
	f := &feed{scrapes: [][]obs.Status{
		{
			withLease(withUSIG(withCkpt(st("0", 0, 8), 8, "aa"), 20), 0, 0),
			withUSIG(withCkpt(st("0", 1, 8), 8, "aa"), 19),
			withUSIG(withCkpt(st("0", 2, 6), 8, "aa"), 18),
		},
		{
			withLease(withUSIG(withCkpt(st("0", 0, 16), 16, "bb"), 40), 0, 0),
			withUSIG(withCkpt(st("0", 1, 16), 16, "bb"), 41),
			withUSIG(withCkpt(st("0", 2, 12), 8, "aa"), 30),
		},
	}}
	w, reg := newTestWatcher(t, f)
	for i := 0; i < 2; i++ {
		rep := w.Scrape(context.Background())
		if !rep.Healthy() {
			t.Fatalf("scrape %d unhealthy: %v %v", i, rep.Violations, rep.ScrapeErrors)
		}
	}
	if n := w.TotalViolations(); n != 0 {
		t.Fatalf("violations = %d, want 0", n)
	}
	if got := reg.Snapshot().Counter("watch_scrapes_total"); got != 2 {
		t.Fatalf("watch_scrapes_total = %d, want 2", got)
	}
}

func TestGroupHealthAggregation(t *testing.T) {
	f := &feed{scrapes: [][]obs.Status{
		{st("0", 0, 10), st("0", 1, 4), st("1", 0, 7)},
		{st("0", 0, 20), st("0", 1, 18), st("1", 0, 7)},
	}}
	w, _ := newTestWatcher(t, f)
	w.Scrape(context.Background())
	rep := w.Scrape(context.Background())
	g0, g1 := rep.Groups["0"], rep.Groups["1"]
	if g0.LagSpread != 2 || g0.MaxExec != 20 || g0.MinExec != 18 {
		t.Fatalf("g0 health = %+v", g0)
	}
	if g0.ExecDelta != 10 || g1.ExecDelta != 0 {
		t.Fatalf("exec deltas = %d, %d, want 10, 0", g0.ExecDelta, g1.ExecDelta)
	}
}

func TestViewFlapCounting(t *testing.T) {
	a := st("0", 0, 1)
	b := st("0", 0, 2)
	b.View = 3
	f := &feed{scrapes: [][]obs.Status{{a}, {b}}}
	w, _ := newTestWatcher(t, f)
	w.Scrape(context.Background())
	rep := w.Scrape(context.Background())
	if got := rep.Groups["0"].ViewFlaps; got != 3 {
		t.Fatalf("view flaps = %d, want 3", got)
	}
}

func TestCheckpointDivergenceCaught(t *testing.T) {
	f := &feed{scrapes: [][]obs.Status{{
		withCkpt(st("0", 0, 8), 8, "aaaa"),
		withCkpt(st("0", 1, 8), 8, "aaaa"),
		withCkpt(st("0", 2, 8), 8, "ffff"), // the liar
	}}}
	w, reg := newTestWatcher(t, f)
	rep := w.Scrape(context.Background())
	if len(rep.Violations) != 1 || rep.Violations[0].Rule != RuleCheckpointDivergence {
		t.Fatalf("violations = %v", rep.Violations)
	}
	v := rep.Violations[0]
	var ev struct {
		Count     uint64 `json:"checkpoint_count"`
		Majority  string `json:"majority_digest"`
		Diverging []int  `json:"diverging"`
	}
	if err := json.Unmarshal(v.Evidence, &ev); err != nil {
		t.Fatalf("evidence: %v", err)
	}
	if ev.Count != 8 || ev.Majority != "aaaa" {
		t.Fatalf("evidence = %+v", ev)
	}
	if len(ev.Diverging) != 1 || ev.Diverging[0] != 2 {
		t.Fatalf("diverging = %v, want [2]", ev.Diverging)
	}
	if got := reg.Snapshot().CounterSum("watch_violations_total"); got != 1 {
		t.Fatalf("watch_violations_total = %d, want 1", got)
	}
}

func TestTrustedCounterRegressionCaught(t *testing.T) {
	f := &feed{scrapes: [][]obs.Status{
		{withUSIG(st("0", 1, 5), 50)},
		{withUSIG(st("0", 1, 6), 40)}, // regressed
	}}
	w, _ := newTestWatcher(t, f)
	w.Scrape(context.Background())
	rep := w.Scrape(context.Background())
	if got := rules(rep.Violations); len(got) != 1 || got[0] != RuleCounterRegression {
		t.Fatalf("violations = %v", got)
	}
	if !strings.Contains(rep.Violations[0].Detail, "replica 1") {
		t.Fatalf("detail does not name replica: %q", rep.Violations[0].Detail)
	}
}

func TestExecRegressionCaught(t *testing.T) {
	f := &feed{scrapes: [][]obs.Status{
		{st("0", 0, 9)},
		{st("0", 0, 3)},
	}}
	w, _ := newTestWatcher(t, f)
	w.Scrape(context.Background())
	rep := w.Scrape(context.Background())
	if got := rules(rep.Violations); len(got) != 1 || got[0] != RuleExecRegression {
		t.Fatalf("violations = %v", got)
	}
}

func TestStaleStatusesSkipMonotoneRules(t *testing.T) {
	stale := obs.Status{Protocol: "minbft", Shard: "0", Replica: 0, Stale: true}
	f := &feed{scrapes: [][]obs.Status{
		{withUSIG(st("0", 0, 9), 30)},
		{stale}, // zeros everywhere, but marked degraded
		{withUSIG(st("0", 0, 10), 31)},
	}}
	w, _ := newTestWatcher(t, f)
	for i := 0; i < 3; i++ {
		if rep := w.Scrape(context.Background()); !rep.Healthy() {
			t.Fatalf("scrape %d flagged a stale snapshot: %v", i, rep.Violations)
		}
	}
}

func TestLeaseConflictCaught(t *testing.T) {
	f := &feed{scrapes: [][]obs.Status{
		{withLease(st("0", 0, 1), 0, 4)},
		{withLease(st("0", 2, 1), 2, 4)}, // same term, different holder
	}}
	w, _ := newTestWatcher(t, f)
	w.Scrape(context.Background())
	rep := w.Scrape(context.Background())
	if got := rules(rep.Violations); len(got) != 1 || got[0] != RuleLeaseConflict {
		t.Fatalf("violations = %v", got)
	}
	// A later term with a different holder is fine (views change).
	f.scrapes = append(f.scrapes, []obs.Status{withLease(st("0", 2, 1), 2, 5)})
	if rep := w.Scrape(context.Background()); len(rep.Violations) != 0 {
		t.Fatalf("new-term lease flagged: %v", rep.Violations)
	}
}

func TestExecExceedsProposedCaught(t *testing.T) {
	lying := st("0", 0, 100)
	lying.ProposedBatches = 2
	honest := st("0", 1, 100)
	honest.ProposedBatches = 3
	f := &feed{scrapes: [][]obs.Status{
		{lying, honest},
		{lying, honest},
	}}
	w, _ := newTestWatcher(t, f)
	rep := w.Scrape(context.Background())
	if len(rep.Violations) != 0 {
		t.Fatalf("first scrape flagged (rule must defer one scrape): %v", rep.Violations)
	}
	rep = w.Scrape(context.Background())
	if got := rules(rep.Violations); len(got) != 1 || got[0] != RuleExecExceedsProposed {
		t.Fatalf("violations = %v", got)
	}
}

func TestScrapeErrorsDoNotBlindAuditor(t *testing.T) {
	bad := Source{Name: "down", Fetch: func(context.Context) ([]obs.Status, error) {
		return nil, context.DeadlineExceeded
	}}
	f := &feed{scrapes: [][]obs.Status{{st("0", 0, 1)}}}
	reg := obs.NewRegistry()
	w := New(Config{
		Sources: []Source{bad, f.source()},
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
		Metrics: reg,
	})
	rep := w.Scrape(context.Background())
	if len(rep.ScrapeErrors) != 1 || len(rep.Replicas) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if got := reg.Snapshot().Counter("watch_scrape_errors_total"); got != 1 {
		t.Fatalf("watch_scrape_errors_total = %d, want 1", got)
	}
}

func TestReportWrite(t *testing.T) {
	f := &feed{scrapes: [][]obs.Status{{
		withCkpt(st("0", 0, 8), 8, "aa"),
		withCkpt(st("0", 1, 8), 8, "ff"),
	}}}
	w, _ := newTestWatcher(t, f)
	rep := w.Scrape(context.Background())
	var sb strings.Builder
	rep.Write(&sb)
	out := sb.String()
	if !strings.Contains(out, "VIOLATION [checkpoint-divergence]") ||
		!strings.Contains(out, "evidence:") {
		t.Fatalf("report rendering missing violation: %q", out)
	}

	healthy := &Report{Groups: map[string]GroupHealth{"0": {Shard: "0", Replicas: 3}}}
	sb.Reset()
	healthy.Write(&sb)
	if !strings.Contains(sb.String(), "healthy: no violations") {
		t.Fatalf("healthy rendering: %q", sb.String())
	}
}
