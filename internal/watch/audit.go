package watch

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"unidir/internal/obs"
)

// Audit rule names, as emitted in Violation.Rule and the
// watch_violations_total{rule=...} metric.
const (
	RuleCheckpointDivergence = "checkpoint-divergence"
	RuleCounterRegression    = "trusted-counter-regression"
	RuleExecRegression       = "exec-regression"
	RuleExecExceedsProposed  = "executed-exceeds-proposed"
	RuleLeaseConflict        = "lease-conflict"
)

// ckptKeep bounds the per-shard checkpoint-digest history: counts more than
// this far below the shard's newest seen checkpoint are pruned. Any replica
// lagging further than this is comparing against checkpoints nobody else
// still reports, so retention would only grow memory on long soaks.
const ckptKeep = 64

type shardReplica struct {
	shard   string
	replica int
}

type ckptKey struct {
	shard string
	count uint64
}

type ckptClaim struct {
	digest  string
	replica int
}

type ctrKey struct {
	shardReplica
	name string
}

type leaseKey struct {
	shard string
	term  uint64
}

// auditor holds the cross-scrape state the safety rules compare against.
// All methods are called from the watcher's scrape goroutine; the mutex
// only guards the accumulated violation list, which Violations() reads
// from other goroutines.
type auditor struct {
	ckpts     map[ckptKey]ckptClaim
	ckptMax   map[string]uint64 // newest checkpoint count seen per shard (for pruning)
	ctrMax    map[ctrKey]uint64
	execMax   map[shardReplica]uint64
	leases    map[leaseKey]int
	prevExec  map[string]uint64 // previous scrape's group exec watermark per shard
	prevView  map[shardReplica]uint64
	viewFlaps map[string]uint64

	mu  sync.Mutex
	all []Violation
}

func newAuditor() *auditor {
	return &auditor{
		ckpts:     make(map[ckptKey]ckptClaim),
		ckptMax:   make(map[string]uint64),
		ctrMax:    make(map[ctrKey]uint64),
		execMax:   make(map[shardReplica]uint64),
		leases:    make(map[leaseKey]int),
		prevExec:  make(map[string]uint64),
		prevView:  make(map[shardReplica]uint64),
		viewFlaps: make(map[string]uint64),
	}
}

func evidence(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		return json.RawMessage(fmt.Sprintf("%q", err.Error()))
	}
	return b
}

// observe audits one scrape's statuses against the accumulated state,
// fills groups with per-shard health, and returns the new violations.
//
// Soundness notes:
//   - Stale statuses (assembled off the run goroutine, counters possibly
//     zero) are skipped by every monotonicity rule — a wedged replica must
//     not read as a regressed one.
//   - executed ≤ proposed is checked across scrapes: the PREVIOUS scrape's
//     group execution watermark against THIS scrape's proposal total.
//     Within one scrape the comparison would race (a batch can be proposed
//     and executed between two source fetches); across scrapes it is sound
//     because proposals are monotone and strictly precede execution.
//   - Proposal counters are process-lifetime and reset on restart, so this
//     rule is only meaningful for continuously-running groups; a restart can
//     mask a real violation but never fabricate one (see DESIGN.md §10).
func (a *auditor) observe(statuses []obs.Status, groups map[string]GroupHealth) []Violation {
	var out []Violation
	flag := func(v Violation) { out = append(out, v) }
	flaggedCkpts := make(map[ckptKey]bool) // one divergence violation per (shard, count) per scrape

	// Per-shard aggregation scaffolding for both health and the deferred
	// executed-vs-proposed rule.
	type agg struct {
		health   GroupHealth
		proposed uint64
		seenExec bool
	}
	byShard := make(map[string]*agg)
	shardOf := func(shard string) *agg {
		g, ok := byShard[shard]
		if !ok {
			g = &agg{health: GroupHealth{Shard: shard}}
			byShard[shard] = g
		}
		return g
	}

	for _, st := range statuses {
		g := shardOf(st.Shard)
		g.health.Replicas++
		sr := shardReplica{st.Shard, st.Replica}

		// View flaps are counted from non-stale samples only (a stale
		// fallback still reads the real view, but keep the rule uniform).
		if !st.Stale {
			if prev, ok := a.prevView[sr]; ok && st.View > prev {
				a.viewFlaps[st.Shard] += st.View - prev
			}
			a.prevView[sr] = st.View
		}
		if st.View > g.health.View {
			g.health.View = st.View
		}
		if !st.Ready {
			g.health.NotReady = append(g.health.NotReady, st.Replica)
		}

		if st.Stale {
			g.health.Stale++
			continue // no counters to audit in a degraded snapshot
		}

		// Commit-lag spread and group watermark.
		if !g.seenExec || st.ExecCount < g.health.MinExec {
			g.health.MinExec = st.ExecCount
		}
		if st.ExecCount > g.health.MaxExec {
			g.health.MaxExec = st.ExecCount
		}
		g.seenExec = true
		g.proposed += st.ProposedBatches

		// Rule: checkpoint digests must agree at equal (shard, count).
		if ck := st.Checkpoint; ck != nil {
			key := ckptKey{st.Shard, ck.Count}
			if prev, ok := a.ckpts[key]; ok {
				if prev.digest != ck.Digest && !flaggedCkpts[key] {
					flaggedCkpts[key] = true
					flag(a.ckptViolation(key, prev, statuses))
				}
			} else {
				a.ckpts[key] = ckptClaim{digest: ck.Digest, replica: st.Replica}
			}
			if ck.Count > a.ckptMax[st.Shard] {
				a.ckptMax[st.Shard] = ck.Count
			}
		}

		// Rule: trusted counters never regress. This is the hardware claim
		// itself — TrInc refuses to re-attest a used value — so a regression
		// here means a forged status or a broken/cloned device.
		for name, val := range st.TrustedCounters {
			key := ctrKey{sr, name}
			if prev, ok := a.ctrMax[key]; ok && val < prev {
				flag(Violation{
					Rule:  RuleCounterRegression,
					Shard: st.Shard,
					Detail: fmt.Sprintf("replica %d trusted counter %q regressed %d -> %d",
						st.Replica, name, prev, val),
					Evidence: evidence(map[string]any{
						"replica": st.Replica, "counter": name,
						"previous": prev, "current": val,
					}),
				})
			}
			if val > a.ctrMax[key] {
				a.ctrMax[key] = val
			}
		}

		// Rule: the execution watermark never regresses. (State transfer
		// only moves it forward; a crash-restart of a persistent replica
		// resumes from its stable checkpoint, which this rule treats as a
		// regression — the doctor watches running processes, and a monitored
		// replica silently restarting IS a reportable event.)
		if prev, ok := a.execMax[sr]; ok && st.ExecCount < prev {
			flag(Violation{
				Rule:  RuleExecRegression,
				Shard: st.Shard,
				Detail: fmt.Sprintf("replica %d exec watermark regressed %d -> %d",
					st.Replica, prev, st.ExecCount),
				Evidence: evidence(map[string]any{
					"replica": st.Replica, "previous": prev, "current": st.ExecCount,
				}),
			})
		}
		if st.ExecCount > a.execMax[sr] {
			a.execMax[sr] = st.ExecCount
		}

		// Rule: at most one lease holder per (shard, term). Holders other
		// than the first seen for a term break leased-read linearizability.
		if l := st.Lease; l != nil {
			key := leaseKey{st.Shard, l.Term}
			if prev, ok := a.leases[key]; ok && prev != l.Holder {
				flag(Violation{
					Rule:  RuleLeaseConflict,
					Shard: st.Shard,
					Detail: fmt.Sprintf("term %d has two lease holders: %d and %d",
						l.Term, prev, l.Holder),
					Evidence: evidence(map[string]any{
						"term": l.Term, "holders": []int{prev, l.Holder},
					}),
				})
			} else if !ok {
				a.leases[key] = l.Holder
			}
			g.health.LeaseHolders = append(g.health.LeaseHolders, l.Holder)
		}
	}

	// Rule: executed ≤ proposed, deferred one scrape (see soundness notes).
	for shard, g := range byShard {
		if prevWM, ok := a.prevExec[shard]; ok && g.health.Stale == 0 && prevWM > g.proposed {
			flag(Violation{
				Rule:  RuleExecExceedsProposed,
				Shard: shard,
				Detail: fmt.Sprintf("group executed %d batches by the previous scrape but only %d were ever proposed",
					prevWM, g.proposed),
				Evidence: evidence(map[string]any{
					"executed_watermark": prevWM, "proposed_total": g.proposed,
				}),
			})
		}
	}

	// Health finalization + cross-scrape deltas.
	for shard, g := range byShard {
		if g.seenExec {
			g.health.LagSpread = g.health.MaxExec - g.health.MinExec
			if prev, ok := a.prevExec[shard]; ok && g.health.MaxExec > prev {
				g.health.ExecDelta = g.health.MaxExec - prev
			}
			a.prevExec[shard] = g.health.MaxExec
		}
		g.health.ViewFlaps = a.viewFlaps[shard]
		sort.Ints(g.health.NotReady)
		sort.Ints(g.health.LeaseHolders)
		groups[shard] = g.health
	}

	a.prune()

	if len(out) > 0 {
		a.mu.Lock()
		a.all = append(a.all, out...)
		a.mu.Unlock()
	}
	return out
}

// ckptViolation assembles a checkpoint-divergence violation for key: every
// claim visible for that (shard, count) — this scrape's plus the recorded
// one — goes into the evidence, and the replicas whose digest departs from
// the majority digest are named as the diverging ones. With at most f
// Byzantine replicas in a group of 2f+1 (or 3f+1) the majority digest is
// the honest one, so the minority list is the blame list; in a 1-vs-1 split
// both are listed (the auditor cannot arbitrate a tie — see DESIGN.md §10).
func (a *auditor) ckptViolation(key ckptKey, prev ckptClaim, statuses []obs.Status) Violation {
	claims := []ckptClaim{prev}
	for _, st := range statuses {
		if st.Stale || st.Shard != key.shard || st.Checkpoint == nil ||
			st.Checkpoint.Count != key.count || st.Replica == prev.replica {
			continue
		}
		claims = append(claims, ckptClaim{digest: st.Checkpoint.Digest, replica: st.Replica})
	}
	tally := make(map[string]int)
	for _, c := range claims {
		tally[c.digest]++
	}
	majority, best := "", 0
	for d, n := range tally {
		if n > best {
			majority, best = d, n
		}
	}
	var diverging []int
	evClaims := make([]map[string]any, 0, len(claims))
	for _, c := range claims {
		evClaims = append(evClaims, map[string]any{"replica": c.replica, "digest": c.digest})
		if c.digest != majority || best*2 <= len(claims) {
			diverging = append(diverging, c.replica)
		}
	}
	sort.Ints(diverging)
	return Violation{
		Rule:  RuleCheckpointDivergence,
		Shard: key.shard,
		Detail: fmt.Sprintf("checkpoint %d: replicas %v diverge from the majority digest",
			key.count, diverging),
		Evidence: evidence(map[string]any{
			"checkpoint_count": key.count,
			"claims":           evClaims,
			"majority_digest":  majority,
			"diverging":        diverging,
		}),
	}
}

// prune drops checkpoint-digest history far below each shard's newest
// checkpoint so unbounded soaks keep bounded audit state.
func (a *auditor) prune() {
	for key := range a.ckpts {
		if max := a.ckptMax[key.shard]; max > ckptKeep && key.count < max-ckptKeep {
			delete(a.ckpts, key)
		}
	}
}

func (a *auditor) violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.all...)
}

func (a *auditor) count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.all)
}
