// Package watch is the cluster introspection plane: it polls per-replica
// status sources (in-process StatusProviders or remote /debug/status
// endpoints), aggregates them into per-group health, and runs an online
// safety auditor over exactly the invariants the trusted hardware is
// supposed to enforce — equal checkpoint digests at equal counts, monotone
// trusted counters, executed ≤ proposed, at most one lease holder per term.
//
// The auditor is the observability analogue of the paper's thesis: trusted
// hardware shrinks quorums because equivocation becomes detectable
// evidence. A diverged digest or a regressed USIG counter IS that evidence;
// the watcher's job is to surface it as a structured violation instead of
// waiting for clients to misbehave. See DESIGN.md §10 for what the auditor
// can and cannot prove under f Byzantine replicas.
package watch

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"time"

	"unidir/internal/obs"
)

// Source is one scrapeable status origin producing the statuses of one or
// more replicas. Name labels scrape errors; Fetch must be safe to call
// repeatedly and from one goroutine at a time.
type Source struct {
	Name  string
	Fetch func(ctx context.Context) ([]obs.Status, error)
}

// Local wraps in-process replicas as a Source, stamping the shard label
// onto every status that lacks one (mirrors obs.WithStatus).
func Local(shard string, providers ...obs.StatusProvider) Source {
	return Source{
		Name: "local/" + shard,
		Fetch: func(context.Context) ([]obs.Status, error) {
			out := make([]obs.Status, 0, len(providers))
			for _, p := range providers {
				st := p.Status()
				if st.Shard == "" {
					st.Shard = shard
				}
				out = append(out, st)
			}
			return out, nil
		},
	}
}

// HTTP scrapes a replica process's /debug/status endpoint. url may be a
// base address ("http://host:port") or the full endpoint path.
func HTTP(url string) Source {
	if !strings.Contains(url, "/debug/status") {
		url = strings.TrimRight(url, "/") + "/debug/status"
	}
	client := &http.Client{Timeout: 5 * time.Second}
	return Source{
		Name: url,
		Fetch: func(ctx context.Context) ([]obs.Status, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
			if err != nil {
				return nil, err
			}
			resp, err := client.Do(req)
			if err != nil {
				return nil, err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
			}
			var body struct {
				Replicas []obs.Status `json:"replicas"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				return nil, fmt.Errorf("%s: %w", url, err)
			}
			return body.Replicas, nil
		},
	}
}

// Config configures a Watcher.
type Config struct {
	Sources []Source
	// Logger receives one Error record per violation and one Warn per
	// scrape error. Nil: slog.Default().
	Logger *slog.Logger
	// Metrics receives the watcher's own series (watch_scrapes_total,
	// watch_scrape_errors_total, watch_violations_total{rule=...}).
	// Nil: no self-metrics.
	Metrics *obs.Registry
}

// GroupHealth is the aggregated view of one consensus group at a scrape.
type GroupHealth struct {
	Shard    string `json:"shard"`
	Replicas int    `json:"replicas"`
	Stale    int    `json:"stale,omitempty"` // degraded snapshots this scrape

	// Commit-lag spread: the gap between the most and least advanced
	// replica's execution watermark (stale samples excluded).
	MaxExec   uint64 `json:"max_exec"`
	MinExec   uint64 `json:"min_exec"`
	LagSpread uint64 `json:"lag_spread"`

	View      uint64 `json:"view"`       // highest view reported in the group
	ViewFlaps uint64 `json:"view_flaps"` // view advances observed since the watcher started

	NotReady     []int `json:"not_ready,omitempty"` // replica IDs failing their readiness probe
	LeaseHolders []int `json:"lease_holders,omitempty"`

	// ExecDelta is the group execution-watermark advance since the previous
	// scrape (0 on the first); across groups it exposes shard throughput
	// skew.
	ExecDelta uint64 `json:"exec_delta"`
}

// Violation is one audited-invariant breach. Evidence is a JSON blob naming
// the conflicting artifacts (replica IDs, digests, counter values) so a
// human — or a CI gate — can attribute blame without re-scraping.
type Violation struct {
	Rule     string          `json:"rule"`
	Shard    string          `json:"shard"`
	Detail   string          `json:"detail"`
	Evidence json.RawMessage `json:"evidence,omitempty"`
}

// Report is the outcome of one scrape.
type Report struct {
	Replicas     []obs.Status           `json:"replicas"`
	Groups       map[string]GroupHealth `json:"groups"`
	Violations   []Violation            `json:"violations,omitempty"` // new this scrape
	ScrapeErrors []string               `json:"scrape_errors,omitempty"`
}

// Healthy reports whether the scrape saw no violations and no scrape
// errors.
func (r *Report) Healthy() bool {
	return len(r.Violations) == 0 && len(r.ScrapeErrors) == 0
}

// Write renders the report for humans (the doctor's one-shot output).
func (r *Report) Write(w io.Writer) {
	shards := make([]string, 0, len(r.Groups))
	for s := range r.Groups {
		shards = append(shards, s)
	}
	sort.Strings(shards)
	for _, s := range shards {
		g := r.Groups[s]
		fmt.Fprintf(w, "shard %s: %d replicas, view %d (%d flaps), exec %d..%d (spread %d, +%d)",
			g.Shard, g.Replicas, g.View, g.ViewFlaps, g.MinExec, g.MaxExec, g.LagSpread, g.ExecDelta)
		if g.Stale > 0 {
			fmt.Fprintf(w, ", %d stale", g.Stale)
		}
		if len(g.NotReady) > 0 {
			fmt.Fprintf(w, ", not ready: %v", g.NotReady)
		}
		if len(g.LeaseHolders) > 0 {
			fmt.Fprintf(w, ", lease held by %v", g.LeaseHolders)
		}
		fmt.Fprintln(w)
	}
	for _, e := range r.ScrapeErrors {
		fmt.Fprintf(w, "scrape error: %s\n", e)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(w, "VIOLATION [%s] shard %s: %s\n", v.Rule, v.Shard, v.Detail)
		if len(v.Evidence) > 0 {
			fmt.Fprintf(w, "  evidence: %s\n", v.Evidence)
		}
	}
	if len(r.Violations) == 0 && len(r.ScrapeErrors) == 0 {
		fmt.Fprintln(w, "healthy: no violations")
	}
}

// Watcher polls the configured sources and audits each scrape against the
// state accumulated from all previous ones. One Watcher owns its audit
// state; Scrape and Run must not run concurrently with each other, but
// Violations and TotalViolations are safe from any goroutine.
type Watcher struct {
	sources []Source
	lg      *slog.Logger

	scrapes    *obs.Counter
	scrapeErrs *obs.Counter
	metrics    *obs.Registry

	audit *auditor
}

// New builds a Watcher; see Config.
func New(cfg Config) *Watcher {
	lg := cfg.Logger
	if lg == nil {
		lg = slog.Default()
	}
	return &Watcher{
		sources:    cfg.Sources,
		lg:         lg,
		scrapes:    cfg.Metrics.Counter("watch_scrapes_total"),
		scrapeErrs: cfg.Metrics.Counter("watch_scrape_errors_total"),
		metrics:    cfg.Metrics,
		audit:      newAuditor(),
	}
}

// Scrape fetches every source once, updates the audit state, and returns
// the resulting report. Source errors are reported in the Report (and
// counted), not returned: a dead replica must not blind the auditor to the
// live ones.
func (w *Watcher) Scrape(ctx context.Context) *Report {
	w.scrapes.Inc()
	rep := &Report{Groups: make(map[string]GroupHealth)}
	for _, src := range w.sources {
		sts, err := src.Fetch(ctx)
		if err != nil {
			w.scrapeErrs.Inc()
			w.lg.Warn("status scrape failed", "source", src.Name, "err", err)
			rep.ScrapeErrors = append(rep.ScrapeErrors, fmt.Sprintf("%s: %v", src.Name, err))
			continue
		}
		rep.Replicas = append(rep.Replicas, sts...)
	}
	rep.Violations = w.audit.observe(rep.Replicas, rep.Groups)
	for _, v := range rep.Violations {
		w.metrics.Counter(obs.Name("watch_violations_total", "rule", v.Rule)).Inc()
		w.lg.Error("safety violation detected",
			"rule", v.Rule, "shard", v.Shard, "detail", v.Detail,
			"evidence", string(v.Evidence))
	}
	return rep
}

// Run scrapes at the given interval until ctx is cancelled. The first
// scrape happens immediately (audit rules that compare across scrapes need
// a baseline as early as possible).
func (w *Watcher) Run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	w.Scrape(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			w.Scrape(ctx)
		}
	}
}

// Violations returns every violation recorded since the watcher started.
func (w *Watcher) Violations() []Violation { return w.audit.violations() }

// TotalViolations is len(Violations) without the copy.
func (w *Watcher) TotalViolations() int { return w.audit.count() }
