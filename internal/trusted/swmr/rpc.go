package swmr

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"unidir/internal/transport"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// This file provides the RPC front end that places the shared memory on its
// own node: a Server loop owning a Store, and a Client implementing Memory
// over a transport.Transport. The caller identity used for ACL checks is the
// authenticated channel identity (Envelope.From), so a Byzantine process
// cannot write another process's object through the RPC either.

// RPC operation codes.
const (
	opAppend byte = iota + 1
	opWrite
	opRead
	opReadLog
)

// ErrClientClosed reports use of a Client after Close.
var ErrClientClosed = errors.New("swmr: client closed")

// Server serves a Store over a transport endpoint until the context is
// cancelled or the transport closes.
type Server struct {
	store *Store
	tr    transport.Transport

	cancel context.CancelFunc
	done   chan struct{}
}

// NewServer starts serving store on tr. Stop it with Close.
func NewServer(store *Store, tr transport.Transport) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{store: store, tr: tr, cancel: cancel, done: make(chan struct{})}
	go s.loop(ctx)
	return s
}

// Close stops the server loop and waits for it to exit.
func (s *Server) Close() error {
	s.cancel()
	<-s.done
	return nil
}

func (s *Server) loop(ctx context.Context) {
	defer close(s.done)
	for {
		env, err := s.tr.Recv(ctx)
		if err != nil {
			return
		}
		reply := s.handle(env.From, env.Payload)
		if reply == nil {
			continue // malformed request: drop, a Byzantine caller's problem
		}
		// Best-effort reply; a failed send is the client's timeout to handle.
		_ = s.tr.Send(env.From, reply)
	}
}

// handle decodes one request and returns the encoded reply (nil if the
// request is unparseable).
func (s *Server) handle(caller types.ProcessID, req []byte) []byte {
	d := wire.NewDecoder(req)
	op := d.Byte()
	reqID := d.Uint64()
	owner := types.ProcessID(d.Int())
	from := d.Int()
	val := d.BytesField()
	if err := d.Finish(); err != nil {
		return nil
	}

	e := wire.NewEncoder(64)
	e.Uint64(reqID)
	switch op {
	case opAppend:
		encodeStatus(e, s.store.Append(caller, owner, val))
	case opWrite:
		encodeStatus(e, s.store.Write(caller, owner, val))
	case opRead:
		v, ok, err := s.store.Read(caller, owner)
		encodeStatus(e, err)
		if err == nil {
			e.Bool(ok)
			e.BytesField(v)
		}
	case opReadLog:
		entries, _, err := s.store.ReadLog(caller, owner, from)
		encodeStatus(e, err)
		if err == nil {
			e.Int(len(entries))
			for _, v := range entries {
				e.BytesField(v)
			}
		}
	default:
		return nil
	}
	return e.Bytes()
}

func encodeStatus(e *wire.Encoder, err error) {
	if err == nil {
		e.Byte(0)
		return
	}
	e.Byte(1)
	// Preserve the two sentinel errors across the wire.
	switch {
	case errors.Is(err, ErrACL):
		e.String("acl")
	case errors.Is(err, ErrNoSuchObject):
		e.String("noobj")
	default:
		e.String(err.Error())
	}
}

func decodeStatus(d *wire.Decoder) error {
	if d.Byte() == 0 {
		return nil
	}
	msg := d.String()
	switch msg {
	case "acl":
		return ErrACL
	case "noobj":
		return ErrNoSuchObject
	default:
		return fmt.Errorf("swmr: remote: %s", msg)
	}
}

// Client implements Memory against a remote Server. It is safe for
// concurrent use: requests carry IDs and a background loop matches replies.
type Client struct {
	tr     transport.Transport
	server types.ProcessID

	mu      sync.Mutex
	nextID  uint64
	waiting map[uint64]chan []byte
	closed  bool

	cancel context.CancelFunc
	done   chan struct{}
}

var _ Memory = (*Client)(nil)

// NewClient connects a Memory view over tr to the server process. Stop it
// with Close.
func NewClient(tr transport.Transport, server types.ProcessID) *Client {
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{
		tr:      tr,
		server:  server,
		waiting: make(map[uint64]chan []byte),
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	go c.recvLoop(ctx)
	return c
}

// Close stops the client; outstanding and future calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for id, ch := range c.waiting {
		close(ch)
		delete(c.waiting, id)
	}
	c.mu.Unlock()
	c.cancel()
	<-c.done
	return nil
}

// Self returns the caller identity (the endpoint's process).
func (c *Client) Self() types.ProcessID { return c.tr.Self() }

func (c *Client) recvLoop(ctx context.Context) {
	defer close(c.done)
	for {
		env, err := c.tr.Recv(ctx)
		if err != nil {
			return
		}
		if env.From != c.server {
			continue
		}
		d := wire.NewDecoder(env.Payload)
		reqID := d.Uint64()
		if d.Err() != nil {
			continue
		}
		c.mu.Lock()
		ch, ok := c.waiting[reqID]
		if ok {
			delete(c.waiting, reqID)
		}
		c.mu.Unlock()
		if ok {
			ch <- env.Payload[8:] // body after reqID
		}
	}
}

// call sends one request and blocks for the matching reply body.
func (c *Client) call(op byte, owner types.ProcessID, from int, val []byte) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan []byte, 1)
	c.waiting[id] = ch
	c.mu.Unlock()

	e := wire.NewEncoder(32 + len(val))
	e.Byte(op)
	e.Uint64(id)
	e.Int(int(owner))
	e.Int(from)
	e.BytesField(val)
	if err := c.tr.Send(c.server, e.Bytes()); err != nil {
		c.mu.Lock()
		delete(c.waiting, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("swmr: send request: %w", err)
	}
	body, ok := <-ch
	if !ok {
		return nil, ErrClientClosed
	}
	return body, nil
}

// Append adds val to the caller's own object on the remote store.
func (c *Client) Append(val []byte) error {
	body, err := c.call(opAppend, c.Self(), 0, val)
	if err != nil {
		return err
	}
	d := wire.NewDecoder(body)
	if err := decodeStatus(d); err != nil {
		return err
	}
	return d.Finish()
}

// Write sets the caller's own object to val on the remote store.
func (c *Client) Write(val []byte) error {
	body, err := c.call(opWrite, c.Self(), 0, val)
	if err != nil {
		return err
	}
	d := wire.NewDecoder(body)
	if err := decodeStatus(d); err != nil {
		return err
	}
	return d.Finish()
}

// Read returns the register value of owner's object from the remote store.
func (c *Client) Read(owner types.ProcessID) ([]byte, bool, error) {
	body, err := c.call(opRead, owner, 0, nil)
	if err != nil {
		return nil, false, err
	}
	d := wire.NewDecoder(body)
	if err := decodeStatus(d); err != nil {
		return nil, false, err
	}
	ok := d.Bool()
	v := append([]byte(nil), d.BytesField()...)
	if err := d.Finish(); err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	return v, true, nil
}

// ReadLog returns owner's object entries starting at offset from.
func (c *Client) ReadLog(owner types.ProcessID, from int) ([][]byte, error) {
	body, err := c.call(opReadLog, owner, from, nil)
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(body)
	if err := decodeStatus(d); err != nil {
		return nil, err
	}
	n := d.Int()
	if n < 0 || d.Err() != nil {
		return nil, fmt.Errorf("swmr: malformed readlog reply")
	}
	entries := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		entries = append(entries, append([]byte(nil), d.BytesField()...))
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return entries, nil
}
