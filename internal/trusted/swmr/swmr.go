// Package swmr implements single-writer multi-reader (SWMR) shared memory
// with access control lists — the canonical "shared memory with ACLs"
// trusted hardware class of the paper (§2.1): for each process p_i there is
// an object o_i that only p_i can modify and every process can read.
//
// The paper's round protocol *appends* (r, m) to the owner's object and
// readers scan whole objects, so the object here is an append-only list
// (which subsumes a register: the register value is the last element).
// Register-style Write/Read accessors are also provided for protocols that
// want plain SWMR registers.
//
// Substitution note (see DESIGN.md): the hardware (for example RDMA-exported
// memory with protection domains, as in Aguilera et al. DISC'19) is
// simulated by a linearizable in-memory Store whose operations validate the
// caller against the ACL. Linearizability comes from a single mutex; the
// classification argument needs nothing stronger than "a completed write is
// visible to every subsequent read", which the mutex provides. A
// transport-level RPC front end (Server/Client) exposes the same API across
// the simulated network so deployments can place memory on a separate node.
package swmr

import (
	"errors"
	"fmt"
	"sync"

	"unidir/internal/types"
)

var (
	// ErrACL reports a modification attempted by a non-owner.
	ErrACL = errors.New("swmr: access denied by ACL")
	// ErrNoSuchObject reports access to an object outside the membership.
	ErrNoSuchObject = errors.New("swmr: no such object")
)

// Store is the shared memory: one append-only object per process in the
// membership. All operations are linearizable and safe for concurrent use.
type Store struct {
	m types.Membership

	mu   sync.Mutex
	objs [][][]byte // objs[owner] = append-only list of values
	vers []uint64   // bumped on every successful modification (for pollers)
}

// NewStore allocates shared memory for membership m.
func NewStore(m types.Membership) (*Store, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Store{
		m:    m,
		objs: make([][][]byte, m.N),
		vers: make([]uint64, m.N),
	}, nil
}

// Membership returns the membership the store was created for.
func (s *Store) Membership() types.Membership { return s.m }

func (s *Store) check(caller, owner types.ProcessID, modify bool) error {
	if !s.m.Contains(owner) {
		return fmt.Errorf("%w: %v", ErrNoSuchObject, owner)
	}
	if modify && caller != owner {
		return fmt.Errorf("%w: %v cannot modify o_%d", ErrACL, caller, int(owner))
	}
	return nil
}

// Append adds val to the end of owner's object. Only the owner may append;
// the ACL check uses the caller identity, which the RPC server derives from
// the authenticated channel.
func (s *Store) Append(caller, owner types.ProcessID, val []byte) error {
	if err := s.check(caller, owner, true); err != nil {
		return err
	}
	cp := append([]byte(nil), val...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objs[owner] = append(s.objs[owner], cp)
	s.vers[owner]++
	return nil
}

// Write replaces owner's object with the single value val (register
// semantics). Only the owner may write.
func (s *Store) Write(caller, owner types.ProcessID, val []byte) error {
	if err := s.check(caller, owner, true); err != nil {
		return err
	}
	cp := append([]byte(nil), val...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objs[owner] = [][]byte{cp}
	s.vers[owner]++
	return nil
}

// Read returns the register value of owner's object: its last element, or
// (nil, false) if the object is empty. Any process may read.
func (s *Store) Read(caller, owner types.ProcessID) ([]byte, bool, error) {
	if err := s.check(caller, owner, false); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	obj := s.objs[owner]
	if len(obj) == 0 {
		return nil, false, nil
	}
	return append([]byte(nil), obj[len(obj)-1]...), true, nil
}

// ReadLog returns a copy of owner's whole object starting at offset from
// (0-based), together with the object version. Any process may read.
// Pollers pass the previously seen length as from to fetch only new entries.
func (s *Store) ReadLog(caller, owner types.ProcessID, from int) ([][]byte, uint64, error) {
	if err := s.check(caller, owner, false); err != nil {
		return nil, 0, err
	}
	if from < 0 {
		from = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	obj := s.objs[owner]
	if from > len(obj) {
		from = len(obj)
	}
	out := make([][]byte, 0, len(obj)-from)
	for _, v := range obj[from:] {
		out = append(out, append([]byte(nil), v...))
	}
	return out, s.vers[owner], nil
}

// Len returns the number of entries in owner's object.
func (s *Store) Len(caller, owner types.ProcessID) (int, error) {
	if err := s.check(caller, owner, false); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objs[owner]), nil
}

// Snapshot returns a copy of every object (one scan of the whole memory, as
// the round protocol's "p_i reads objects o_1...o_n" step). The scan is
// atomic (single critical section), which is stronger than the protocol
// needs — per-object atomicity suffices for unidirectionality — but keeps
// the checker's bookkeeping simple.
func (s *Store) Snapshot(caller types.ProcessID) ([][][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][][]byte, len(s.objs))
	for i, obj := range s.objs {
		cp := make([][]byte, len(obj))
		for j, v := range obj {
			cp[j] = append([]byte(nil), v...)
		}
		out[i] = cp
	}
	return out, nil
}

// Memory is the access interface protocols use, implemented by both the
// local Store (via Local) and the RPC Client. The caller identity is fixed
// at construction, modelling the authenticated hardware channel.
type Memory interface {
	// Self returns the fixed caller identity.
	Self() types.ProcessID
	// Append adds val to this process's own object.
	Append(val []byte) error
	// Write sets this process's own object to the single value val.
	Write(val []byte) error
	// Read returns the register value of owner's object.
	Read(owner types.ProcessID) ([]byte, bool, error)
	// ReadLog returns owner's object entries starting at offset from.
	ReadLog(owner types.ProcessID, from int) ([][]byte, error)
}

// Local binds a caller identity to a Store, implementing Memory with direct
// (in-process) access.
type Local struct {
	store *Store
	self  types.ProcessID
}

var _ Memory = (*Local)(nil)

// NewLocal returns a Memory view of store for process self.
func NewLocal(store *Store, self types.ProcessID) *Local {
	return &Local{store: store, self: self}
}

// Self returns the fixed caller identity.
func (l *Local) Self() types.ProcessID { return l.self }

// Append adds val to the caller's own object.
func (l *Local) Append(val []byte) error { return l.store.Append(l.self, l.self, val) }

// Write sets the caller's own object to val.
func (l *Local) Write(val []byte) error { return l.store.Write(l.self, l.self, val) }

// Read returns the register value of owner's object.
func (l *Local) Read(owner types.ProcessID) ([]byte, bool, error) {
	return l.store.Read(l.self, owner)
}

// ReadLog returns owner's object entries starting at offset from.
func (l *Local) ReadLog(owner types.ProcessID, from int) ([][]byte, error) {
	entries, _, err := l.store.ReadLog(l.self, owner, from)
	return entries, err
}
