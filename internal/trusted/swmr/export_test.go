package swmr

import "unidir/internal/wire"

// newTestDecoder lets tests decode raw reply bodies.
func newTestDecoder(b []byte) *wire.Decoder { return wire.NewDecoder(b) }
