package swmr

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"unidir/internal/simnet"
	"unidir/internal/types"
)

func newStore(t *testing.T, n int) *Store {
	t.Helper()
	m, err := types.NewMembership(n, (n-1)/2)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	s, err := NewStore(m)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s
}

func TestACLEnforced(t *testing.T) {
	s := newStore(t, 3)
	if err := s.Append(1, 2, []byte("intrusion")); !errors.Is(err, ErrACL) {
		t.Fatalf("Append by non-owner err = %v, want ErrACL", err)
	}
	if err := s.Write(0, 1, []byte("intrusion")); !errors.Is(err, ErrACL) {
		t.Fatalf("Write by non-owner err = %v, want ErrACL", err)
	}
	// Reads are open to all.
	if _, _, err := s.Read(1, 2); err != nil {
		t.Fatalf("Read by non-owner: %v", err)
	}
}

func TestNoSuchObject(t *testing.T) {
	s := newStore(t, 3)
	if err := s.Append(0, 7, []byte("x")); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("Append err = %v, want ErrNoSuchObject", err)
	}
	if _, _, err := s.Read(0, -1); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("Read err = %v, want ErrNoSuchObject", err)
	}
}

func TestRegisterSemantics(t *testing.T) {
	s := newStore(t, 3)
	if _, ok, err := s.Read(1, 0); err != nil || ok {
		t.Fatalf("Read empty = ok=%v err=%v, want not-found", ok, err)
	}
	if err := s.Write(0, 0, []byte("v1")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := s.Write(0, 0, []byte("v2")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	v, ok, err := s.Read(2, 0)
	if err != nil || !ok || string(v) != "v2" {
		t.Fatalf("Read = %q ok=%v err=%v, want v2", v, ok, err)
	}
}

func TestAppendAndReadLogOffsets(t *testing.T) {
	s := newStore(t, 3)
	for i := 0; i < 5; i++ {
		if err := s.Append(1, 1, []byte{byte(i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	entries, _, err := s.ReadLog(2, 1, 3)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(entries) != 2 || entries[0][0] != 3 || entries[1][0] != 4 {
		t.Fatalf("ReadLog(from=3) = %v, want entries 3 and 4", entries)
	}
	// Offsets beyond the end and negative offsets are clamped.
	if entries, _, err = s.ReadLog(2, 1, 99); err != nil || len(entries) != 0 {
		t.Fatalf("ReadLog(from=99) = %v, %v", entries, err)
	}
	if entries, _, err = s.ReadLog(2, 1, -4); err != nil || len(entries) != 5 {
		t.Fatalf("ReadLog(from=-4) returned %d entries, err %v", len(entries), err)
	}
}

func TestReadCopiesAreIsolated(t *testing.T) {
	s := newStore(t, 2)
	val := []byte("shared")
	if err := s.Write(0, 0, val); err != nil {
		t.Fatalf("Write: %v", err)
	}
	val[0] = 'X' // caller mutates its buffer after the write
	got, _, err := s.Read(1, 0)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(got) != "shared" {
		t.Fatalf("store aliased caller buffer: %q", got)
	}
	got[0] = 'Y' // reader mutates its copy
	again, _, _ := s.Read(1, 0)
	if string(again) != "shared" {
		t.Fatalf("reader mutation leaked into store: %q", again)
	}
}

func TestWriteThenSnapshotSeesOwnWrite(t *testing.T) {
	// The happens-before property the unidirectionality proof rests on: a
	// snapshot taken after a completed append must include that append.
	s := newStore(t, 4)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			self := types.ProcessID(p)
			if err := s.Append(self, self, []byte{byte(p)}); err != nil {
				errs[p] = err
				return
			}
			snap, err := s.Snapshot(self)
			if err != nil {
				errs[p] = err
				return
			}
			if len(snap[p]) == 0 || snap[p][len(snap[p])-1][0] != byte(p) {
				errs[p] = fmt.Errorf("p%d snapshot missing own append", p)
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestQuickLogIsAppendOnly(t *testing.T) {
	// Property: after any sequence of appends by the owner, ReadLog(0)
	// returns exactly those values in order.
	f := func(values [][]byte) bool {
		m, _ := types.NewMembership(2, 0)
		s, err := NewStore(m)
		if err != nil {
			return false
		}
		for _, v := range values {
			if err := s.Append(0, 0, v); err != nil {
				return false
			}
		}
		got, _, err := s.ReadLog(1, 0, 0)
		if err != nil || len(got) != len(values) {
			return false
		}
		for i := range values {
			if !bytes.Equal(got[i], values[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- RPC ---

// newRPCFixture builds a simnet with n protocol processes plus one extra
// node hosting the memory server, and returns connected clients.
func newRPCFixture(t *testing.T, n int) (clients []*Client, cleanup func()) {
	t.Helper()
	protoM, err := types.NewMembership(n, (n-1)/2)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	netM, err := types.NewMembership(n+1, (n-1)/2) // last node = memory server
	if err != nil {
		t.Fatalf("net membership: %v", err)
	}
	net, err := simnet.New(netM)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	store, err := NewStore(protoM)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	serverID := types.ProcessID(n)
	server := NewServer(store, net.Endpoint(serverID))
	clients = make([]*Client, n)
	for i := 0; i < n; i++ {
		clients[i] = NewClient(net.Endpoint(types.ProcessID(i)), serverID)
	}
	cleanup = func() {
		for _, c := range clients {
			_ = c.Close()
		}
		_ = server.Close()
		net.Close()
	}
	return clients, cleanup
}

func TestRPCAppendReadLog(t *testing.T) {
	clients, cleanup := newRPCFixture(t, 3)
	defer cleanup()

	if err := clients[0].Append([]byte("from-zero")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := clients[0].Append([]byte("again")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	entries, err := clients[2].ReadLog(0, 0)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(entries) != 2 || string(entries[0]) != "from-zero" || string(entries[1]) != "again" {
		t.Fatalf("ReadLog = %q", entries)
	}
}

func TestRPCWriteRead(t *testing.T) {
	clients, cleanup := newRPCFixture(t, 2)
	defer cleanup()

	if _, ok, err := clients[1].Read(0); err != nil || ok {
		t.Fatalf("Read empty: ok=%v err=%v", ok, err)
	}
	if err := clients[0].Write([]byte("rpc-value")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	v, ok, err := clients[1].Read(0)
	if err != nil || !ok || string(v) != "rpc-value" {
		t.Fatalf("Read = %q ok=%v err=%v", v, ok, err)
	}
}

func TestRPCACLEnforcedByChannelIdentity(t *testing.T) {
	// The ACL check uses the authenticated channel identity, not anything
	// the caller claims: the Memory interface only lets a client modify its
	// own object, and the server checks Envelope.From, so even a raw
	// request naming another owner is refused.
	clients, cleanup := newRPCFixture(t, 2)
	defer cleanup()
	// Client API cannot even express writing someone else's object, so go
	// under it: hand-craft the call through the same code path.
	body, err := clients[1].call(opWrite, 0 /* victim owner */, 0, []byte("forged"))
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if err := decodeStatusForTest(body); !errors.Is(err, ErrACL) {
		t.Fatalf("forged write err = %v, want ErrACL", err)
	}
	if _, ok, _ := clients[0].Read(0); ok {
		t.Fatal("victim object was modified")
	}
}

func TestRPCReadErrorsPropagate(t *testing.T) {
	clients, cleanup := newRPCFixture(t, 2)
	defer cleanup()
	if _, _, err := clients[0].Read(9); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("Read(9) err = %v, want ErrNoSuchObject", err)
	}
}

func TestRPCConcurrentClients(t *testing.T) {
	clients, cleanup := newRPCFixture(t, 4)
	defer cleanup()
	const perClient = 25
	var wg sync.WaitGroup
	errs := make([]error, len(clients))
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				if err := c.Append([]byte{byte(i), byte(j)}); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range clients {
		entries, err := clients[0].ReadLog(types.ProcessID(i), 0)
		if err != nil {
			t.Fatalf("ReadLog(%d): %v", i, err)
		}
		if len(entries) != perClient {
			t.Fatalf("object %d has %d entries, want %d", i, len(entries), perClient)
		}
		for j, e := range entries {
			if len(e) != 2 || e[0] != byte(i) || e[1] != byte(j) {
				t.Fatalf("object %d entry %d = %v: per-owner FIFO violated", i, j, e)
			}
		}
	}
}

func TestClientCloseUnblocksNothingPending(t *testing.T) {
	clients, cleanup := newRPCFixture(t, 2)
	defer cleanup()
	if err := clients[0].Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := clients[0].Append([]byte("x")); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Append after close err = %v, want ErrClientClosed", err)
	}
}

// decodeStatusForTest exposes reply-status decoding to the ACL test.
func decodeStatusForTest(body []byte) error {
	d := newTestDecoder(body)
	return decodeStatus(d)
}
