package trinc

import (
	"errors"
	"math/rand"
	"testing"

	"unidir/internal/sig"
	"unidir/internal/types"
)

// memStore is an in-memory CounterStore for tests.
type memStore struct {
	last map[uint64]uint64
	fail bool
}

func (m *memStore) Record(counter, value uint64) error {
	if m.fail {
		return errors.New("disk gone")
	}
	if m.last == nil {
		m.last = make(map[uint64]uint64)
	}
	if value > m.last[counter] {
		m.last[counter] = value
	}
	return nil
}

func (m *memStore) Last() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(m.last))
	for k, v := range m.last {
		out[k] = v
	}
	return out
}

func persistUniverse(t *testing.T, seed int64) *Universe {
	t.Helper()
	m, err := types.NewMembership(3, 1)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	u, err := NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	return u
}

// TestPersistRehydratesMonotonically is the crash-restart property the
// paper's classification rests on: a device rebuilt from scratch (a process
// restart loses all in-memory state) but rehydrated from its counter store
// can never re-attest a sequence number the old incarnation released.
func TestPersistRehydratesMonotonically(t *testing.T) {
	const counter, seed = 7, 11
	cs := &memStore{}

	u1 := persistUniverse(t, seed)
	dev := u1.Devices[0]
	if err := dev.Persist(cs); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	for s := types.SeqNum(1); s <= 3; s++ {
		if _, err := dev.Attest(counter, s, []byte("m")); err != nil {
			t.Fatalf("Attest %d: %v", s, err)
		}
	}

	// "Restart": a fresh universe from the same provisioning seed, counter
	// state rehydrated from the store.
	u2 := persistUniverse(t, seed)
	dev2 := u2.Devices[0]
	if err := dev2.Persist(cs); err != nil {
		t.Fatalf("Persist after restart: %v", err)
	}
	if got := dev2.LastAttested(counter); got != 3 {
		t.Fatalf("rehydrated LastAttested = %d, want 3", got)
	}
	if _, err := dev2.Attest(counter, 3, []byte("equivocation")); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("re-attesting a released value: err = %v, want ErrStaleSeq", err)
	}
	a, err := dev2.Attest(counter, 4, []byte("fresh"))
	if err != nil {
		t.Fatalf("Attest above rehydrated counter: %v", err)
	}
	// The restarted incarnation's attestations still verify under the
	// original deployment's keys (deterministic provisioning).
	if err := u1.Verifier.CheckMessage(a, []byte("fresh")); err != nil {
		t.Fatalf("CheckMessage: %v", err)
	}
	if a.Prev != 3 {
		t.Fatalf("restart gap not visible: Prev = %d, want 3", a.Prev)
	}
}

// TestAttestFailsWhenStoreFails: write-ahead means no attestation may exist
// whose counter advance is not durable; a failing store must fail the
// attest, not silently skip the log.
func TestAttestFailsWhenStoreFails(t *testing.T) {
	cs := &memStore{}
	dev := persistUniverse(t, 5).Devices[1]
	if err := dev.Persist(cs); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	if _, err := dev.Attest(0, 1, []byte("ok")); err != nil {
		t.Fatalf("Attest: %v", err)
	}
	cs.fail = true
	if _, err := dev.Attest(0, 2, []byte("lost")); err == nil {
		t.Fatal("Attest succeeded with a failing counter store")
	}
	// The refused attestation must not have advanced the counter.
	if got := dev.LastAttested(0); got != 1 {
		t.Fatalf("LastAttested = %d after refused attest, want 1", got)
	}
	cs.fail = false
	if _, err := dev.Attest(0, 2, []byte("retry")); err != nil {
		t.Fatalf("Attest after store recovered: %v", err)
	}
}
