package trinc

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"unidir/internal/sig"
	"unidir/internal/types"
)

func newTestUniverse(t *testing.T, n int) *Universe {
	t.Helper()
	m, err := types.NewMembership(n, (n-1)/2)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	u, err := NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatalf("NewUniverse: %v", err)
	}
	return u
}

func TestAttestAndCheck(t *testing.T) {
	u := newTestUniverse(t, 4)
	d := u.Devices[2]

	a, err := d.Attest(0, 1, []byte("hello"))
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	if a.Trinket != 2 || a.Seq != 1 || a.Prev != 0 {
		t.Fatalf("attestation fields = %+v", a)
	}
	if err := u.Verifier.CheckMessage(a, []byte("hello")); err != nil {
		t.Fatalf("CheckMessage: %v", err)
	}
	if err := u.Verifier.CheckMessage(a, []byte("other")); err == nil {
		t.Fatal("CheckMessage accepted wrong message")
	}
}

func TestAttestZeroSeqRejected(t *testing.T) {
	u := newTestUniverse(t, 3)
	if _, err := u.Devices[0].Attest(0, 0, []byte("x")); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("Attest(0) err = %v, want ErrStaleSeq", err)
	}
}

func TestNonEquivocation(t *testing.T) {
	// The defining property: no two attestations for the same counter value,
	// even for a Byzantine owner replaying the same or different messages.
	u := newTestUniverse(t, 3)
	d := u.Devices[0]
	if _, err := d.Attest(0, 5, []byte("first")); err != nil {
		t.Fatalf("Attest: %v", err)
	}
	if _, err := d.Attest(0, 5, []byte("conflicting")); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("re-attest same seq err = %v, want ErrStaleSeq", err)
	}
	if _, err := d.Attest(0, 4, []byte("older")); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("attest lower seq err = %v, want ErrStaleSeq", err)
	}
	if _, err := d.Attest(0, 6, []byte("next")); err != nil {
		t.Fatalf("attest higher seq: %v", err)
	}
}

func TestGapEvidenceInPrev(t *testing.T) {
	u := newTestUniverse(t, 3)
	d := u.Devices[0]
	if _, err := d.Attest(7, 1, []byte("a")); err != nil {
		t.Fatalf("Attest: %v", err)
	}
	a, err := d.Attest(7, 10, []byte("b"))
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	if a.Prev != 1 || a.Seq != 10 {
		t.Fatalf("gap attestation = prev %d seq %d, want prev 1 seq 10", a.Prev, a.Seq)
	}
}

func TestCountersAreIndependent(t *testing.T) {
	u := newTestUniverse(t, 3)
	d := u.Devices[1]
	if _, err := d.Attest(1, 3, []byte("a")); err != nil {
		t.Fatalf("Attest counter 1: %v", err)
	}
	// Counter 2 is untouched by counter 1's advance.
	if _, err := d.Attest(2, 1, []byte("b")); err != nil {
		t.Fatalf("Attest counter 2: %v", err)
	}
	if got := d.LastAttested(1); got != 3 {
		t.Fatalf("LastAttested(1) = %d, want 3", got)
	}
	if got := d.LastAttested(2); got != 1 {
		t.Fatalf("LastAttested(2) = %d, want 1", got)
	}
}

func TestForgedAttestationRejected(t *testing.T) {
	u := newTestUniverse(t, 4)
	a, err := u.Devices[0].Attest(0, 1, []byte("legit"))
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}

	tamper := func(name string, mutate func(*Attestation)) {
		forged := a
		forged.Sig = append([]byte(nil), a.Sig...)
		mutate(&forged)
		if err := u.Verifier.Check(forged); err == nil {
			t.Errorf("%s: forged attestation accepted", name)
		}
	}
	tamper("reassign trinket", func(f *Attestation) { f.Trinket = 1 })
	tamper("bump seq", func(f *Attestation) { f.Seq = 2 })
	tamper("lower prev", func(f *Attestation) { f.Prev = 0; f.Seq = 1; f.MsgHash = HashMessage([]byte("x")) })
	tamper("flip sig bit", func(f *Attestation) { f.Sig[0] ^= 1 })
	tamper("swap hash", func(f *Attestation) { f.MsgHash = HashMessage([]byte("evil")) })
	tamper("counter change", func(f *Attestation) { f.Counter = 9 })
}

func TestCheckRejectsMalformedSeqPrev(t *testing.T) {
	u := newTestUniverse(t, 3)
	bad := Attestation{Trinket: 0, Prev: 3, Seq: 3}
	if err := u.Verifier.Check(bad); !errors.Is(err, ErrBadAttestation) {
		t.Fatalf("Check(prev==seq) err = %v, want ErrBadAttestation", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	u := newTestUniverse(t, 4)
	a, err := u.Devices[3].Attest(12, 42, []byte("payload"))
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	b := a.Encode()
	got, err := DecodeAttestation(b)
	if err != nil {
		t.Fatalf("DecodeAttestation: %v", err)
	}
	if got.Trinket != a.Trinket || got.Counter != a.Counter || got.Prev != a.Prev ||
		got.Seq != a.Seq || got.MsgHash != a.MsgHash || !bytes.Equal(got.Sig, a.Sig) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, a)
	}
	if err := u.Verifier.Check(got); err != nil {
		t.Fatalf("Check decoded: %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1, 2, 3}, make([]byte, 40)} {
		if _, err := DecodeAttestation(b); err == nil {
			t.Fatalf("DecodeAttestation(%v) accepted garbage", b)
		}
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	// Property: any attestation round-trips through the wire encoding.
	f := func(trinket uint8, counter uint64, prev uint32, gap uint8, hash [32]byte, sigBytes []byte) bool {
		a := Attestation{
			Trinket: types.ProcessID(trinket),
			Counter: counter,
			Prev:    types.SeqNum(prev),
			Seq:     types.SeqNum(uint64(prev) + uint64(gap) + 1),
			MsgHash: hash,
			Sig:     sigBytes,
		}
		got, err := DecodeAttestation(a.Encode())
		if err != nil {
			return false
		}
		return got.Trinket == a.Trinket && got.Counter == a.Counter &&
			got.Prev == a.Prev && got.Seq == a.Seq && got.MsgHash == a.MsgHash &&
			bytes.Equal(got.Sig, a.Sig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMonotonicity(t *testing.T) {
	// Property: for any sequence of attest attempts, the set of granted
	// sequence numbers is strictly increasing in grant order.
	f := func(seqs []uint16) bool {
		u := newTestUniverse(t, 1)
		d := u.Devices[0]
		var granted []types.SeqNum
		for _, s := range seqs {
			c := types.SeqNum(s)
			a, err := d.Attest(0, c, []byte("m"))
			if err == nil {
				granted = append(granted, a.Seq)
			}
		}
		for i := 1; i < len(granted); i++ {
			if granted[i] <= granted[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAttestUniqueSeqs(t *testing.T) {
	// Property under concurrency: even with racing Attest calls, no two
	// attestations are granted for the same counter value.
	u := newTestUniverse(t, 1)
	d := u.Devices[0]
	const workers = 8
	const perWorker = 100

	var mu sync.Mutex
	seen := make(map[types.SeqNum]int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= perWorker; i++ {
				a, err := d.Attest(0, types.SeqNum(i), []byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					continue
				}
				mu.Lock()
				seen[a.Seq]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	for seq, count := range seen {
		if count > 1 {
			t.Fatalf("sequence number %d attested %d times", seq, count)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no attestations granted at all")
	}
}

func TestEd25519SchemeWorks(t *testing.T) {
	m, err := types.NewMembership(3, 1)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	u, err := NewUniverse(m, sig.Ed25519, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("NewUniverse: %v", err)
	}
	a, err := u.Devices[0].Attest(0, 1, []byte("ed25519"))
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	if err := u.Verifier.CheckMessage(a, []byte("ed25519")); err != nil {
		t.Fatalf("CheckMessage: %v", err)
	}
	a.Sig[0] ^= 1
	if err := u.Verifier.Check(a); err == nil {
		t.Fatal("tampered ed25519 attestation accepted")
	}
}
