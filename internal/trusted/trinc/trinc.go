// Package trinc implements the TrInc trusted incrementer of Levin et al.
// (NSDI 2009), in the simplified form the paper uses (Figure "TrInc
// Interface"): each process p owns a tamper-proof Trinket T_p holding
// monotonic counters. Attest(c, m) returns an attestation binding m to
// counter value c, valid only if c is strictly greater than every previously
// attested value; the attestation also names prev, the last attested value,
// so verifiers can detect gaps. Because the trinket never signs two
// attestations with the same counter value, a Byzantine owner cannot bind two
// different messages to one sequence number — non-equivocation.
//
// Substitution note (see DESIGN.md): the hardware is simulated as an
// in-process Device holding its own signing key, distinct from the owning
// process's key. Byzantine processes may call Attest with arbitrary
// arguments — the Device enforces monotonicity — but cannot forge
// attestations, because only the Device can produce its signature. This
// preserves exactly the interface contract the paper's theory relies on.
//
// Like real TrInc, a Device holds multiple independent counters so that one
// piece of hardware can serve several protocol instances.
package trinc

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"unidir/internal/sig"
	"unidir/internal/sig/fastverify"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// Domain separation tag for attestation signatures.
const attestDomain = "unidir/trinc/attest/v1"

var (
	// ErrStaleSeq reports an Attest call whose sequence number does not
	// exceed the last attested value for the counter.
	ErrStaleSeq = errors.New("trinc: sequence number not greater than last attested")
	// ErrBadAttestation reports a failed attestation check.
	ErrBadAttestation = errors.New("trinc: invalid attestation")
)

// Attestation is a trinket's signed statement that message hash MsgHash was
// bound to counter value Seq on counter Counter of trinket Trinket, and that
// the previous attested value on that counter was Prev (0 if none). Prev is
// half-open interval evidence: nothing was, or ever will be, attested in
// (Prev, Seq).
type Attestation struct {
	Trinket types.ProcessID
	Counter uint64
	Prev    types.SeqNum
	Seq     types.SeqNum
	MsgHash [sha256.Size]byte
	Sig     []byte
}

// appendSignedBytes appends the canonical byte string the trinket signs.
func (a *Attestation) appendSignedBytes(e *wire.Encoder) {
	e.String(attestDomain)
	e.Int(int(a.Trinket))
	e.Uint64(a.Counter)
	e.Uint64(uint64(a.Prev))
	e.Uint64(uint64(a.Seq))
	e.BytesField(a.MsgHash[:])
}

// signedBytes returns the canonical byte string the trinket signs.
func (a *Attestation) signedBytes() []byte {
	e := wire.NewEncoder(len(attestDomain) + 64)
	a.appendSignedBytes(e)
	return e.Bytes()
}

// Encode returns the wire encoding of the attestation.
func (a *Attestation) Encode() []byte {
	e := wire.NewEncoder(96 + len(a.Sig))
	e.Int(int(a.Trinket))
	e.Uint64(a.Counter)
	e.Uint64(uint64(a.Prev))
	e.Uint64(uint64(a.Seq))
	e.BytesField(a.MsgHash[:])
	e.BytesField(a.Sig)
	return e.Bytes()
}

// DecodeAttestation parses an attestation from b.
func DecodeAttestation(b []byte) (Attestation, error) {
	d := wire.NewDecoder(b)
	var a Attestation
	a.Trinket = types.ProcessID(d.Int())
	a.Counter = d.Uint64()
	a.Prev = types.SeqNum(d.Uint64())
	a.Seq = types.SeqNum(d.Uint64())
	h := d.BytesField()
	a.Sig = append([]byte(nil), d.BytesField()...)
	if err := d.Finish(); err != nil {
		return Attestation{}, fmt.Errorf("trinc: decode attestation: %w", err)
	}
	if len(h) != sha256.Size {
		return Attestation{}, fmt.Errorf("%w: hash length %d", ErrBadAttestation, len(h))
	}
	copy(a.MsgHash[:], h)
	return a, nil
}

// HashMessage returns the message digest attestations bind to.
func HashMessage(m []byte) [sha256.Size]byte { return sha256.Sum256(m) }

// CounterStore persists counter advances across device restarts. Record is
// called with every advance *before* the matching attestation is released,
// so a crash can lose an attested-but-unsent message but never resurrect a
// counter value; Last returns the highest recorded value per counter. See
// internal/trusted/ctrstore for the file-backed implementation.
type CounterStore interface {
	Record(counter, value uint64) error
	Last() map[uint64]uint64
}

// Device simulates one process's trinket. Devices are safe for concurrent
// use. Counters are created implicitly on first use, starting at 0 (so the
// first attestable sequence number is 1).
type Device struct {
	owner types.ProcessID
	ring  *sig.Keyring // device-private keyring, never exposed

	mu    sync.Mutex
	last  map[uint64]types.SeqNum // counter -> last attested value
	store CounterStore            // nil: volatile device (the pre-persistence model)
}

// Owner returns the process this trinket belongs to.
func (d *Device) Owner() types.ProcessID { return d.owner }

// Persist attaches a counter store to the device and rehydrates every
// counter to at least its persisted maximum — the software form of the
// hardware guarantee that a trinket's NVRAM counter survives reboot. From
// here on, every Attest write-ahead-logs the advance before signing: if the
// log write fails the attestation is refused (fail-stop), so no released
// attestation can ever be below a future rehydrated counter.
func (d *Device) Persist(cs CounterStore) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for counter, v := range cs.Last() {
		if types.SeqNum(v) > d.last[counter] {
			d.last[counter] = types.SeqNum(v)
		}
	}
	d.store = cs
	return nil
}

// Attest binds message m to sequence number c on the given counter and
// returns the signed attestation. It fails with ErrStaleSeq if c is not
// strictly greater than the last value attested on that counter. Gaps are
// allowed, matching TrInc; verifiers see them via the Prev field.
func (d *Device) Attest(counter uint64, c types.SeqNum, m []byte) (Attestation, error) {
	if c == 0 {
		return Attestation{}, fmt.Errorf("%w: sequence numbers start at 1", ErrStaleSeq)
	}
	d.mu.Lock()
	prev := d.last[counter]
	if c <= prev {
		d.mu.Unlock()
		return Attestation{}, fmt.Errorf("%w: c=%d last=%d", ErrStaleSeq, c, prev)
	}
	if d.store != nil {
		// Write-ahead: the advance must be durable before the attestation
		// exists, else a crash between signing and logging could let the
		// rehydrated counter re-attest this value.
		if err := d.store.Record(counter, uint64(c)); err != nil {
			d.mu.Unlock()
			return Attestation{}, fmt.Errorf("trinc: persist counter advance: %w", err)
		}
	}
	d.last[counter] = c
	d.mu.Unlock()

	a := Attestation{
		Trinket: d.owner,
		Counter: counter,
		Prev:    prev,
		Seq:     c,
		MsgHash: HashMessage(m),
	}
	e := wire.GetEncoder()
	a.appendSignedBytes(e)
	a.Sig = d.ring.Sign(e.Bytes())
	wire.PutEncoder(e)
	return a, nil
}

// LastAttested returns the last sequence number attested on counter (0 if
// none).
func (d *Device) LastAttested(counter uint64) types.SeqNum {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last[counter]
}

// Verifier checks attestations from every trinket in a membership. It holds
// only public verification material and is safe for concurrent use.
//
// Every signature check goes through a fastverify fast path (verified-sig
// cache + batch fan-out), so an attestation relayed by many peers — the
// normal case in trincsrb, a2msrb, and minbft's fetch protocol — costs one
// real verification per process.
type Verifier struct {
	ring *sig.Keyring         // any device keyring verifies all device signatures
	fv   *fastverify.Verifier // cached/batched view of ring; nil falls back to ring
}

// NewVerifier wraps a device keyring in a cached verifier. Exposed for
// tests and harnesses that provision keyrings directly; NewUniverse calls
// it for the standard deployment.
func NewVerifier(ring *sig.Keyring) *Verifier {
	return &Verifier{ring: ring, fv: fastverify.New(ring)}
}

// FastPath exposes the underlying fastverify.Verifier (nil when the
// verifier was built without one), so harnesses can read cache stats or
// attach metrics.
func (v *Verifier) FastPath() *fastverify.Verifier { return v.fv }

// Concurrent reports whether batched attestation checks can actually run
// in parallel (false on a single-core process or when the fast path is
// disabled). Verify-ahead pipelines consult this before spawning workers.
func (v *Verifier) Concurrent() bool {
	return v.fv != nil && v.fv.Concurrent()
}

// verifySig checks one trinket signature through the fast path.
func (v *Verifier) verifySig(from types.ProcessID, msg, sig []byte) error {
	if v.fv != nil {
		return v.fv.Verify(from, msg, sig)
	}
	return v.ring.Verify(from, msg, sig)
}

// checkShape validates the signature-independent parts of an attestation.
func checkShape(a *Attestation) error {
	if a.Seq == 0 || a.Prev >= a.Seq {
		return fmt.Errorf("%w: prev=%d seq=%d", ErrBadAttestation, a.Prev, a.Seq)
	}
	return nil
}

// Check verifies that a is a genuine attestation produced by trinket
// a.Trinket. It does not inspect the message; use CheckMessage to also bind
// a concrete message.
func (v *Verifier) Check(a Attestation) error {
	if err := checkShape(&a); err != nil {
		return err
	}
	e := wire.GetEncoder()
	a.appendSignedBytes(e)
	err := v.verifySig(a.Trinket, e.Bytes(), a.Sig)
	wire.PutEncoder(e)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadAttestation, err)
	}
	return nil
}

// CheckMessage verifies the attestation and that it binds message m.
// This is the paper's CheckAttestation(a, q) with q = a.Trinket.
func (v *Verifier) CheckMessage(a Attestation, m []byte) error {
	if HashMessage(m) != a.MsgHash {
		return fmt.Errorf("%w: message hash mismatch", ErrBadAttestation)
	}
	return v.Check(a)
}

// Attested pairs an attestation with the message it claims to bind, for
// batch checking.
type Attested struct {
	Att Attestation
	Msg []byte
}

// CheckMessages verifies a set of attested messages as one batch: shape
// and hash bindings are checked first (cheap, sequential), then all
// signatures are verified through the fast path, fanning out across
// workers for large batches and short-circuiting on the first failure.
// Use for quorum certificates (minbft NEW-VIEW) where one bad element
// rejects the whole set.
func (v *Verifier) CheckMessages(items []Attested) error {
	if len(items) == 0 {
		return nil
	}
	sigItems := make([]fastverify.Item, 0, len(items))
	encs := make([]*wire.Encoder, 0, len(items))
	defer func() {
		for _, e := range encs {
			wire.PutEncoder(e)
		}
	}()
	for i := range items {
		a := &items[i].Att
		if err := checkShape(a); err != nil {
			return err
		}
		if HashMessage(items[i].Msg) != a.MsgHash {
			return fmt.Errorf("%w: message hash mismatch", ErrBadAttestation)
		}
		e := wire.GetEncoder()
		a.appendSignedBytes(e)
		encs = append(encs, e)
		sigItems = append(sigItems, fastverify.Item{From: a.Trinket, Msg: e.Bytes(), Sig: a.Sig})
	}
	var err error
	if v.fv != nil {
		err = v.fv.VerifyAll(sigItems)
	} else {
		for _, it := range sigItems {
			if err = v.ring.Verify(it.From, it.Msg, it.Sig); err != nil {
				break
			}
		}
	}
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadAttestation, err)
	}
	return nil
}

// Universe is a full deployment of trinkets: one Device per process and the
// shared Verifier. Created by a trusted manufacturer at system setup, as in
// the TrInc deployment model.
type Universe struct {
	Devices  []*Device // indexed by ProcessID
	Verifier *Verifier
}

// NewUniverse provisions one trinket per member of m. Device keys are
// independent of any process signing keys. Pass a seeded rng for
// reproducibility or nil for defaults.
func NewUniverse(m types.Membership, scheme sig.Scheme, rng *rand.Rand) (*Universe, error) {
	rings, err := sig.NewKeyrings(m, scheme, rng)
	if err != nil {
		return nil, fmt.Errorf("trinc: provision device keys: %w", err)
	}
	u := &Universe{
		Devices:  make([]*Device, m.N),
		Verifier: NewVerifier(rings[0]),
	}
	for i := 0; i < m.N; i++ {
		u.Devices[i] = &Device{
			owner: types.ProcessID(i),
			ring:  rings[i],
			last:  make(map[uint64]types.SeqNum),
		}
	}
	return u, nil
}
