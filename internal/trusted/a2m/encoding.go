package a2m

import (
	"fmt"

	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// Wire encoding for proofs, so A2M attestations can travel between
// processes (the a2msrb broadcast protocol sends Lookup proofs).

// Encode returns the canonical wire form of the proof.
func (p *Proof) Encode() []byte {
	e := wire.NewEncoder(128 + len(p.Stmt.Value) + len(p.Stmt.Nonce))
	e.Byte(byte(p.Stmt.Kind))
	e.Int(int(p.Stmt.Device))
	e.Uint64(p.Stmt.Log)
	e.Uint64(uint64(p.Stmt.Seq))
	e.BytesField(p.Stmt.Value)
	e.BytesField(p.Stmt.Nonce)
	e.BytesField(p.Sig)
	if p.Data != nil {
		e.Bool(true)
		e.BytesField(p.Data.Encode())
	} else {
		e.Bool(false)
	}
	if p.Fresh != nil {
		e.Bool(true)
		e.BytesField(p.Fresh.Encode())
	} else {
		e.Bool(false)
	}
	e.Uint64(uint64(p.End))
	return e.Bytes()
}

// DecodeProof parses a proof from b.
func DecodeProof(b []byte) (Proof, error) {
	d := wire.NewDecoder(b)
	var p Proof
	p.Stmt.Kind = Kind(d.Byte())
	p.Stmt.Device = types.ProcessID(d.Int())
	p.Stmt.Log = d.Uint64()
	p.Stmt.Seq = types.SeqNum(d.Uint64())
	p.Stmt.Value = append([]byte(nil), d.BytesField()...)
	p.Stmt.Nonce = append([]byte(nil), d.BytesField()...)
	sig := d.BytesField()
	if len(sig) > 0 {
		p.Sig = append([]byte(nil), sig...)
	}
	if d.Bool() {
		att, err := trinc.DecodeAttestation(d.BytesField())
		if err != nil {
			return Proof{}, fmt.Errorf("a2m: decode data attestation: %w", err)
		}
		p.Data = &att
	}
	if d.Bool() {
		att, err := trinc.DecodeAttestation(d.BytesField())
		if err != nil {
			return Proof{}, fmt.Errorf("a2m: decode fresh attestation: %w", err)
		}
		p.Fresh = &att
	}
	p.End = types.SeqNum(d.Uint64())
	if err := d.Finish(); err != nil {
		return Proof{}, fmt.Errorf("a2m: decode proof: %w", err)
	}
	return p, nil
}
