package a2m

import (
	"errors"
	"math/rand"
	"testing"

	"unidir/internal/sig"
	"unidir/internal/types"
)

// ctrMem is an in-memory trinc.CounterStore for tests.
type ctrMem struct{ last map[uint64]uint64 }

func (m *ctrMem) Record(counter, value uint64) error {
	if m.last == nil {
		m.last = make(map[uint64]uint64)
	}
	if value > m.last[counter] {
		m.last[counter] = value
	}
	return nil
}

func (m *ctrMem) Last() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(m.last))
	for k, v := range m.last {
		out[k] = v
	}
	return out
}

// TestPersistedDeviceNeverReusesSeqs models the A2M NVRAM guarantee: a
// restarted device keeps each log's end position even though the entry
// values (RAM) are gone, so appends resume above the old end — no sequence
// number is ever handed out twice — while proofs about lost entries are
// refused rather than invented.
func TestPersistedDeviceNeverReusesSeqs(t *testing.T) {
	const seed = 21
	m, err := types.NewMembership(3, 1)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	cs := &ctrMem{}

	u1, err := NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(seed)), nil)
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	dev := u1.Devices[0]
	if err := dev.Persist(cs); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	id := dev.CreateLog()
	for i := 0; i < 3; i++ {
		if _, err := dev.Append(id, []byte{byte(i)}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}

	// Restart: same provisioning seed, fresh in-memory state, rehydrate.
	u2, err := NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(seed)), nil)
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	dev2 := u2.Devices[0]
	if err := dev2.Persist(cs); err != nil {
		t.Fatalf("Persist after restart: %v", err)
	}

	// The entry values are gone; the device must refuse to prove them.
	if _, err := dev2.Lookup(id, 2, []byte("n")); !errors.Is(err, ErrNoSuchEntry) {
		t.Fatalf("Lookup of lost entry: err = %v, want ErrNoSuchEntry", err)
	}
	if _, err := dev2.End(id, []byte("n")); !errors.Is(err, ErrEmptyLog) {
		t.Fatalf("End of emptied log: err = %v, want ErrEmptyLog", err)
	}

	// But the end position survived: the next append gets seq 4, never a
	// reused number.
	seq, err := dev2.Append(id, []byte("post"))
	if err != nil {
		t.Fatalf("Append after restart: %v", err)
	}
	if seq != 4 {
		t.Fatalf("post-restart Append seq = %d, want 4", seq)
	}
	p, err := dev2.End(id, []byte("nonce"))
	if err != nil {
		t.Fatalf("End after new append: %v", err)
	}
	if p.Stmt.Seq != 4 {
		t.Fatalf("End seq = %d, want 4", p.Stmt.Seq)
	}
	// The original deployment's verifier accepts the restarted device's
	// proofs (deterministic provisioning).
	if err := u1.Verifier.Check(p); err != nil {
		t.Fatalf("Verifier.Check: %v", err)
	}
}
