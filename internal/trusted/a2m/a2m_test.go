package a2m

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"unidir/internal/sig"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

type fixture struct {
	u  *Universe
	tu *trinc.Universe
	m  types.Membership
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	m, err := types.NewMembership(n, (n-1)/2)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("trinc universe: %v", err)
	}
	u, err := NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(2)), tu)
	if err != nil {
		t.Fatalf("a2m universe: %v", err)
	}
	return &fixture{u: u, tu: tu, m: m}
}

// logsUnderTest returns one native and one TrInc-backed log for process 0,
// so every behavioral test runs against both implementations.
func (f *fixture) logsUnderTest() map[string]Log {
	return map[string]Log{
		"native": f.u.Devices[0].NewLog(),
		"trinc":  NewTrIncLog(f.tu.Devices[0], 1),
	}
}

func TestAppendLookupEnd(t *testing.T) {
	f := newFixture(t, 3)
	for name, log := range f.logsUnderTest() {
		t.Run(name, func(t *testing.T) {
			for i, v := range []string{"alpha", "beta", "gamma"} {
				seq, err := log.Append([]byte(v))
				if err != nil {
					t.Fatalf("Append(%q): %v", v, err)
				}
				if seq != types.SeqNum(i+1) {
					t.Fatalf("Append(%q) seq = %d, want %d", v, seq, i+1)
				}
			}

			p, err := log.Lookup(2, []byte("nonce-1"))
			if err != nil {
				t.Fatalf("Lookup: %v", err)
			}
			if string(p.Stmt.Value) != "beta" || p.Stmt.Seq != 2 || p.Stmt.Kind != KindLookup {
				t.Fatalf("lookup proof statement = %+v", p.Stmt)
			}
			if err := f.u.Verifier.Check(p); err != nil {
				t.Fatalf("Check(lookup): %v", err)
			}

			pe, err := log.End([]byte("nonce-2"))
			if err != nil {
				t.Fatalf("End: %v", err)
			}
			if string(pe.Stmt.Value) != "gamma" || pe.Stmt.Seq != 3 || pe.Stmt.Kind != KindEnd {
				t.Fatalf("end proof statement = %+v", pe.Stmt)
			}
			if err := f.u.Verifier.Check(pe); err != nil {
				t.Fatalf("Check(end): %v", err)
			}
		})
	}
}

func TestLookupErrors(t *testing.T) {
	f := newFixture(t, 3)
	for name, log := range f.logsUnderTest() {
		t.Run(name, func(t *testing.T) {
			if _, err := log.End([]byte("z")); !errors.Is(err, ErrEmptyLog) {
				t.Fatalf("End on empty log err = %v, want ErrEmptyLog", err)
			}
			if _, err := log.Append([]byte("only")); err != nil {
				t.Fatalf("Append: %v", err)
			}
			if _, err := log.Lookup(0, []byte("z")); !errors.Is(err, ErrNoSuchEntry) {
				t.Fatalf("Lookup(0) err = %v, want ErrNoSuchEntry", err)
			}
			if _, err := log.Lookup(2, []byte("z")); !errors.Is(err, ErrNoSuchEntry) {
				t.Fatalf("Lookup(2) err = %v, want ErrNoSuchEntry", err)
			}
		})
	}
}

func TestDeviceNoSuchLog(t *testing.T) {
	f := newFixture(t, 3)
	d := f.u.Devices[1]
	if _, err := d.Append(99, []byte("x")); !errors.Is(err, ErrNoSuchLog) {
		t.Fatalf("Append err = %v, want ErrNoSuchLog", err)
	}
	if _, err := d.Lookup(99, 1, nil); !errors.Is(err, ErrNoSuchLog) {
		t.Fatalf("Lookup err = %v, want ErrNoSuchLog", err)
	}
	if _, err := d.End(99, nil); !errors.Is(err, ErrNoSuchLog) {
		t.Fatalf("End err = %v, want ErrNoSuchLog", err)
	}
}

func TestProofTamperRejected(t *testing.T) {
	f := newFixture(t, 3)
	for name, log := range f.logsUnderTest() {
		t.Run(name, func(t *testing.T) {
			if _, err := log.Append([]byte("committed")); err != nil {
				t.Fatalf("Append: %v", err)
			}
			p, err := log.Lookup(1, []byte("challenge"))
			if err != nil {
				t.Fatalf("Lookup: %v", err)
			}

			mutate := func(desc string, fn func(*Proof)) {
				forged := p
				forged.Stmt.Value = append([]byte(nil), p.Stmt.Value...)
				forged.Stmt.Nonce = append([]byte(nil), p.Stmt.Nonce...)
				fn(&forged)
				if err := f.u.Verifier.Check(forged); err == nil {
					t.Errorf("%s: tampered proof accepted", desc)
				}
			}
			mutate("value swap", func(q *Proof) { q.Stmt.Value = []byte("rewritten") })
			mutate("seq bump", func(q *Proof) { q.Stmt.Seq = 2 })
			mutate("nonce swap", func(q *Proof) { q.Stmt.Nonce = []byte("replayed") })
			mutate("device reassign", func(q *Proof) { q.Stmt.Device = 2 })
			mutate("kind flip", func(q *Proof) { q.Stmt.Kind = KindEnd; q.Stmt.Seq = 2 })
		})
	}
}

func TestNoEvidenceRejected(t *testing.T) {
	f := newFixture(t, 3)
	p := Proof{Stmt: Statement{Kind: KindLookup, Seq: 1, Value: []byte("v")}}
	if err := f.u.Verifier.Check(p); !errors.Is(err, ErrBadProof) {
		t.Fatalf("Check(no evidence) err = %v, want ErrBadProof", err)
	}
}

func TestPastEntriesImmutable(t *testing.T) {
	// A2M's defining property: once Lookup(s) has certified a value, no
	// later operation can produce a valid certificate for a different value
	// at the same index.
	f := newFixture(t, 3)
	for name, log := range f.logsUnderTest() {
		t.Run(name, func(t *testing.T) {
			if _, err := log.Append([]byte("original")); err != nil {
				t.Fatalf("Append: %v", err)
			}
			first, err := log.Lookup(1, []byte("n1"))
			if err != nil {
				t.Fatalf("Lookup: %v", err)
			}
			// Appends extend the log but never disturb index 1.
			for i := 0; i < 5; i++ {
				if _, err := log.Append([]byte(fmt.Sprintf("later-%d", i))); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			second, err := log.Lookup(1, []byte("n2"))
			if err != nil {
				t.Fatalf("Lookup after appends: %v", err)
			}
			if !bytes.Equal(first.Stmt.Value, second.Stmt.Value) {
				t.Fatalf("entry 1 changed: %q then %q", first.Stmt.Value, second.Stmt.Value)
			}
			if err := f.u.Verifier.Check(second); err != nil {
				t.Fatalf("Check: %v", err)
			}
		})
	}
}

func TestTrIncProofCrossLogRejected(t *testing.T) {
	// Evidence minted for one log must not certify a statement about
	// another log on the same trinket.
	f := newFixture(t, 3)
	log1 := NewTrIncLog(f.tu.Devices[0], 1)
	log2 := NewTrIncLog(f.tu.Devices[0], 2)
	if _, err := log1.Append([]byte("in-log-1")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := log2.Append([]byte("in-log-2")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	p, err := log1.Lookup(1, []byte("n"))
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	p.Stmt.Log = 2 // claim the value lives in log 2
	if err := f.u.Verifier.Check(p); err == nil {
		t.Fatal("cross-log proof accepted")
	}
}

func TestQuickLogContents(t *testing.T) {
	// Property: for any sequence of appended values, Lookup(i) certifies
	// exactly the i-th appended value, on both implementations.
	f := newFixture(t, 3)
	counter := uint64(10)
	check := func(values [][]byte) bool {
		if len(values) == 0 {
			return true
		}
		counter++
		logs := map[string]Log{
			"native": f.u.Devices[0].NewLog(),
			"trinc":  NewTrIncLog(f.tu.Devices[0], counter),
		}
		for _, log := range logs {
			for _, v := range values {
				if _, err := log.Append(v); err != nil {
					return false
				}
			}
			for i, v := range values {
				p, err := log.Lookup(types.SeqNum(i+1), []byte{byte(i)})
				if err != nil {
					return false
				}
				if !bytes.Equal(p.Stmt.Value, v) {
					return false
				}
				if err := f.u.Verifier.Check(p); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
