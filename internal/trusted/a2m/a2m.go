// Package a2m implements Attested Append-Only Memory (Chun et al., SOSP
// 2007) as the paper presents it: a trusted log to which any owner can
// append values and obtain attestations of log contents (Lookup) and of the
// current log end (End), with past entries immutable.
//
// Two implementations are provided behind the Log interface:
//
//   - Device: a native simulated A2M unit with its own signing key (the
//     hardware model, like trinc.Device).
//   - TrIncLog: the construction of Levin et al. showing TrInc suffices to
//     implement A2M. Log entries live in untrusted memory; each append is
//     attested on a contiguous TrInc counter (prev = seq-1, so the chain has
//     provably no gaps), and freshness of Lookup/End responses is provided
//     by a second "response" counter that attests the query nonce.
//
// Both produce Proof values checkable by the same Verifier, so protocols
// built on A2M run unchanged over real-A2M or TrInc-backed hardware — the
// executable form of "TrInc can implement the interface of A2M".
package a2m

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"

	"unidir/internal/obs"

	"unidir/internal/sig"
	"unidir/internal/sig/fastverify"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
	"unidir/internal/wire"
)

const attestDomain = "unidir/a2m/attest/v1"

var (
	// ErrNoSuchLog reports an operation on a log ID that was never created.
	ErrNoSuchLog = errors.New("a2m: no such log")
	// ErrNoSuchEntry reports a Lookup index beyond the log end (or 0).
	ErrNoSuchEntry = errors.New("a2m: no such entry")
	// ErrEmptyLog reports End on a log with no entries.
	ErrEmptyLog = errors.New("a2m: log is empty")
	// ErrBadProof reports a failed proof check.
	ErrBadProof = errors.New("a2m: invalid proof")
)

// Kind discriminates Lookup proofs from End proofs.
type Kind byte

// Proof kinds.
const (
	KindLookup Kind = iota + 1
	KindEnd
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindLookup:
		return "lookup"
	case KindEnd:
		return "end"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Statement is the logical content of a proof: "entry Seq of log Log on
// device Device holds Value; if Kind == KindEnd, Seq is the current log
// length; Nonce echoes the verifier's challenge".
type Statement struct {
	Kind   Kind
	Device types.ProcessID
	Log    uint64
	Seq    types.SeqNum
	Value  []byte
	Nonce  []byte
}

// Proof is evidence for a Statement, produced either natively (Sig) or via
// the TrInc construction (Data + Fresh attestations).
type Proof struct {
	Stmt Statement

	// Native A2M evidence: device signature over the statement.
	Sig []byte

	// TrInc-construction evidence: Data attests (seq, value) on the data
	// counter; Fresh attests (nonce, end) on the response counter, proving
	// the response was minted after the challenge.
	Data  *trinc.Attestation
	Fresh *trinc.Attestation
	End   types.SeqNum // log length claimed by the TrInc responder
}

func (s *Statement) appendSignedBytes(e *wire.Encoder) {
	e.String(attestDomain)
	e.Byte(byte(s.Kind))
	e.Int(int(s.Device))
	e.Uint64(s.Log)
	e.Uint64(uint64(s.Seq))
	e.BytesField(s.Value)
	e.BytesField(s.Nonce)
}

func (s *Statement) signedBytes() []byte {
	e := wire.NewEncoder(64 + len(s.Value) + len(s.Nonce))
	s.appendSignedBytes(e)
	return e.Bytes()
}

// hash returns the statement digest via a pooled encoder.
func (s *Statement) hash() [sha256.Size]byte {
	e := wire.GetEncoder()
	s.appendSignedBytes(e)
	h := sha256.Sum256(e.Bytes())
	wire.PutEncoder(e)
	return h
}

// Log is the abstract attested append-only log owned by one process.
type Log interface {
	// Owner returns the process whose hardware backs this log.
	Owner() types.ProcessID
	// ID returns the log identifier on the owner's device.
	ID() uint64
	// Append adds x at the end of the log and returns its index (1-based).
	Append(x []byte) (types.SeqNum, error)
	// Lookup returns a proof of the value at index s, bound to nonce.
	Lookup(s types.SeqNum, nonce []byte) (Proof, error)
	// End returns a proof of the last entry and current length, bound to
	// nonce.
	End(nonce []byte) (Proof, error)
}

// --- native device ---

// Device simulates a native A2M unit holding any number of logs for one
// owner process. Safe for concurrent use.
type Device struct {
	owner types.ProcessID
	ring  *sig.Keyring

	mu    sync.Mutex
	logs  map[uint64][][]byte
	base  map[uint64]uint64 // log -> entries lost to a restart (seq offset)
	next  uint64
	store trinc.CounterStore // nil: volatile device
	lg    *slog.Logger
}

// SetLogger attaches a structured logger (restart recovery and refused
// lookups are reported through it). Devices default to a discard logger.
func (d *Device) SetLogger(l *slog.Logger) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lg = obs.OrNop(l)
}

// logger returns the device's logger, defaulting to discard. Callers must
// not hold d.mu (it takes the lock itself).
func (d *Device) logger() *slog.Logger {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lg == nil {
		return obs.NopLogger()
	}
	return d.lg
}

// Owner returns the process this device belongs to.
func (d *Device) Owner() types.ProcessID { return d.owner }

// Persist attaches a counter store recording each log's end position
// write-ahead of the append, and rehydrates persisted logs: the end counter
// survives a restart (the hardware's NVRAM guarantee) while entry *values*
// do not (they lived in RAM), so a rehydrated log resumes appending above
// its old end — no sequence number is ever reused, hence no equivocation —
// but Lookup/End of pre-restart entries fail until new appends arrive.
//
// The TrInc-backed construction (TrIncLog) needs no analogue of this:
// persist its trinket instead, and a post-restart Append fails loudly with
// ErrStaleSeq (the rehydrated data counter is above the rebuilt in-memory
// chain), which is the fail-stop behavior the contiguity argument requires.
func (d *Device) Persist(cs trinc.CounterStore) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.base == nil {
		d.base = make(map[uint64]uint64)
	}
	lg := d.lg
	if lg == nil {
		lg = obs.NopLogger()
	}
	for id, end := range cs.Last() {
		if end > d.base[id]+uint64(len(d.logs[id])) {
			d.base[id] = end - uint64(len(d.logs[id]))
			// Entry values below base lived in RAM and are gone; only the
			// monotone end survived. Worth a line: lookups below base will
			// now fail until fresh appends arrive.
			lg.Info("rehydrated log above lost entries", "log", id, "end", end, "lost", d.base[id])
		}
		if _, ok := d.logs[id]; !ok {
			d.logs[id] = nil
		}
		if id > d.next {
			d.next = id
		}
	}
	d.store = cs
	return nil
}

// CreateLog allocates a fresh empty log and returns its ID.
func (d *Device) CreateLog() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.next++
	id := d.next
	d.logs[id] = nil
	return id
}

// Append adds x to log id.
func (d *Device) Append(id uint64, x []byte) (types.SeqNum, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	log, ok := d.logs[id]
	if !ok {
		return 0, fmt.Errorf("%w: id=%d", ErrNoSuchLog, id)
	}
	seq := types.SeqNum(d.base[id] + uint64(len(log)) + 1)
	if d.store != nil {
		// Write-ahead, like trinc.Device.Attest: the new end must be durable
		// before any proof of this entry can exist.
		if err := d.store.Record(id, uint64(seq)); err != nil {
			return 0, fmt.Errorf("a2m: persist log end: %w", err)
		}
	}
	cp := append([]byte(nil), x...)
	d.logs[id] = append(log, cp)
	return seq, nil
}

// Lookup returns a signed proof of the value at index s of log id. Entries
// below a restarted log's base are gone (their values lived in RAM): the
// device refuses rather than invent them.
func (d *Device) Lookup(id uint64, s types.SeqNum, nonce []byte) (Proof, error) {
	d.mu.Lock()
	log, ok := d.logs[id]
	if !ok {
		d.mu.Unlock()
		return Proof{}, fmt.Errorf("%w: id=%d", ErrNoSuchLog, id)
	}
	base := d.base[id]
	if s == 0 || uint64(s) > base+uint64(len(log)) {
		d.mu.Unlock()
		return Proof{}, fmt.Errorf("%w: s=%d len=%d", ErrNoSuchEntry, s, base+uint64(len(log)))
	}
	if uint64(s) <= base {
		d.mu.Unlock()
		d.logger().Debug("refusing lookup below restart base", "log", id, "seq", s, "base", base)
		return Proof{}, fmt.Errorf("%w: s=%d predates restart (base=%d)", ErrNoSuchEntry, s, base)
	}
	val := log[uint64(s)-base-1]
	d.mu.Unlock()
	return d.prove(KindLookup, id, s, val, nonce), nil
}

// End returns a signed proof of the last entry of log id.
func (d *Device) End(id uint64, nonce []byte) (Proof, error) {
	d.mu.Lock()
	log, ok := d.logs[id]
	if !ok {
		d.mu.Unlock()
		return Proof{}, fmt.Errorf("%w: id=%d", ErrNoSuchLog, id)
	}
	if len(log) == 0 {
		// Either never appended, or every entry predates a restart; in both
		// cases there is no value to prove.
		d.mu.Unlock()
		return Proof{}, fmt.Errorf("%w: id=%d", ErrEmptyLog, id)
	}
	s := types.SeqNum(d.base[id] + uint64(len(log)))
	val := log[len(log)-1]
	d.mu.Unlock()
	return d.prove(KindEnd, id, s, val, nonce), nil
}

func (d *Device) prove(kind Kind, id uint64, s types.SeqNum, val, nonce []byte) Proof {
	stmt := Statement{
		Kind:   kind,
		Device: d.owner,
		Log:    id,
		Seq:    s,
		Value:  append([]byte(nil), val...),
		Nonce:  append([]byte(nil), nonce...),
	}
	return Proof{Stmt: stmt, Sig: d.ring.Sign(stmt.signedBytes())}
}

// deviceLog adapts one log of a Device to the Log interface.
type deviceLog struct {
	dev *Device
	id  uint64
}

// NewLog creates a fresh log on the device and returns it behind the Log
// interface.
func (d *Device) NewLog() Log {
	return &deviceLog{dev: d, id: d.CreateLog()}
}

func (l *deviceLog) Owner() types.ProcessID { return l.dev.owner }
func (l *deviceLog) ID() uint64             { return l.id }
func (l *deviceLog) Append(x []byte) (types.SeqNum, error) {
	return l.dev.Append(l.id, x)
}
func (l *deviceLog) Lookup(s types.SeqNum, nonce []byte) (Proof, error) {
	return l.dev.Lookup(l.id, s, nonce)
}
func (l *deviceLog) End(nonce []byte) (Proof, error) {
	return l.dev.End(l.id, nonce)
}

// --- TrInc construction (Levin et al.) ---

// trincEntry is one untrusted-memory log entry with its append attestation.
type trincEntry struct {
	value []byte
	att   trinc.Attestation
}

// TrIncLog implements Log from a TrInc trinket. It uses two counters on the
// trinket: dataCounter holds one contiguous attestation per entry (the
// append chain), and respCounter attests freshness of query responses.
type TrIncLog struct {
	dev         *trinc.Device
	id          uint64
	dataCounter uint64
	respCounter uint64

	mu      sync.Mutex
	entries []trincEntry
	resp    types.SeqNum // last response counter value used
}

var _ Log = (*TrIncLog)(nil)

// NewTrIncLog builds an attested log from a trinket. id must be unique per
// trinket (it selects the counter pair: counters 2*id and 2*id+1).
func NewTrIncLog(dev *trinc.Device, id uint64) *TrIncLog {
	return &TrIncLog{
		dev:         dev,
		id:          id,
		dataCounter: 2 * id,
		respCounter: 2*id + 1,
	}
}

// Owner returns the trinket owner.
func (l *TrIncLog) Owner() types.ProcessID { return l.dev.Owner() }

// ID returns the log identifier.
func (l *TrIncLog) ID() uint64 { return l.id }

// dataBinding is the message attested on the data counter for an append.
func dataBinding(log uint64, seq types.SeqNum, value []byte) []byte {
	e := wire.NewEncoder(32 + len(value))
	e.String("a2m/trinc/data")
	e.Uint64(log)
	e.Uint64(uint64(seq))
	e.BytesField(value)
	return e.Bytes()
}

// respBinding is the message attested on the response counter for a query
// response: it binds the nonce, the claimed log end, and the statement hash.
func respBinding(log uint64, nonce []byte, end types.SeqNum, stmtHash [sha256.Size]byte) []byte {
	e := wire.NewEncoder(64 + len(nonce))
	e.String("a2m/trinc/resp")
	e.Uint64(log)
	e.BytesField(nonce)
	e.Uint64(uint64(end))
	e.BytesField(stmtHash[:])
	return e.Bytes()
}

// Append attests x at the next contiguous data-counter value and stores it.
func (l *TrIncLog) Append(x []byte) (types.SeqNum, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := types.SeqNum(len(l.entries) + 1)
	cp := append([]byte(nil), x...)
	att, err := l.dev.Attest(l.dataCounter, seq, dataBinding(l.id, seq, cp))
	if err != nil {
		return 0, fmt.Errorf("a2m: trinc append attest: %w", err)
	}
	if att.Prev != seq-1 {
		// Cannot happen unless the counter was used outside this log; the
		// contiguity of the chain is the crux of the construction, so fail
		// loudly rather than produce an unverifiable log.
		return 0, fmt.Errorf("a2m: data counter not contiguous: prev=%d want %d", att.Prev, seq-1)
	}
	l.entries = append(l.entries, trincEntry{value: cp, att: att})
	return seq, nil
}

// Lookup returns the stored append attestation for entry s plus a fresh
// response attestation binding the nonce.
func (l *TrIncLog) Lookup(s types.SeqNum, nonce []byte) (Proof, error) {
	return l.respond(KindLookup, s, nonce)
}

// End returns a proof for the last entry.
func (l *TrIncLog) End(nonce []byte) (Proof, error) {
	l.mu.Lock()
	n := len(l.entries)
	l.mu.Unlock()
	if n == 0 {
		return Proof{}, fmt.Errorf("%w: id=%d", ErrEmptyLog, l.id)
	}
	return l.respond(KindEnd, types.SeqNum(n), nonce)
}

func (l *TrIncLog) respond(kind Kind, s types.SeqNum, nonce []byte) (Proof, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s == 0 || int(s) > len(l.entries) {
		return Proof{}, fmt.Errorf("%w: s=%d len=%d", ErrNoSuchEntry, s, len(l.entries))
	}
	entry := l.entries[s-1]
	end := types.SeqNum(len(l.entries))
	stmt := Statement{
		Kind:   kind,
		Device: l.dev.Owner(),
		Log:    l.id,
		Seq:    s,
		Value:  append([]byte(nil), entry.value...),
		Nonce:  append([]byte(nil), nonce...),
	}
	stmtHash := stmt.hash()
	l.resp++
	fresh, err := l.dev.Attest(l.respCounter, l.resp, respBinding(l.id, nonce, end, stmtHash))
	if err != nil {
		return Proof{}, fmt.Errorf("a2m: trinc response attest: %w", err)
	}
	data := entry.att
	return Proof{Stmt: stmt, Data: &data, Fresh: &fresh, End: end}, nil
}

// --- verification ---

// Verifier checks proofs from both native devices and TrInc-backed logs.
// Native device signatures are checked through a fastverify cache, so a
// proof relayed by many peers costs one real verification per process; the
// TrInc path inherits the same fast path from trinc.Verifier.
type Verifier struct {
	native *sig.Keyring         // verifies native device signatures; nil if unused
	fv     *fastverify.Verifier // cached view of native; nil falls back to native
	trinc  *trinc.Verifier      // verifies trinc attestations; nil if unused
}

// verifyNative checks a native device signature through the fast path.
func (v *Verifier) verifyNative(from types.ProcessID, msg, sig []byte) error {
	if v.fv != nil {
		return v.fv.Verify(from, msg, sig)
	}
	return v.native.Verify(from, msg, sig)
}

// Check verifies p against its embedded statement. A proof must verify
// under whichever evidence it carries; a proof with no evidence fails.
func (v *Verifier) Check(p Proof) error {
	s := &p.Stmt
	if s.Kind != KindLookup && s.Kind != KindEnd {
		return fmt.Errorf("%w: kind %v", ErrBadProof, s.Kind)
	}
	if s.Seq == 0 {
		return fmt.Errorf("%w: seq 0", ErrBadProof)
	}
	switch {
	case p.Sig != nil:
		if v.native == nil {
			return fmt.Errorf("%w: no native verifier configured", ErrBadProof)
		}
		e := wire.GetEncoder()
		s.appendSignedBytes(e)
		err := v.verifyNative(s.Device, e.Bytes(), p.Sig)
		wire.PutEncoder(e)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadProof, err)
		}
		return nil
	case p.Data != nil && p.Fresh != nil:
		return v.checkTrInc(p)
	default:
		return fmt.Errorf("%w: no evidence", ErrBadProof)
	}
}

func (v *Verifier) checkTrInc(p Proof) error {
	if v.trinc == nil {
		return fmt.Errorf("%w: no trinc verifier configured", ErrBadProof)
	}
	s := &p.Stmt
	// 1. The data attestation binds (seq, value) at exactly counter position
	//    seq with prev = seq-1: a contiguous chain element, so it is the
	//    unique value ever attested at this position of this log.
	if p.Data.Trinket != s.Device {
		return fmt.Errorf("%w: data attestation from %v, statement device %v", ErrBadProof, p.Data.Trinket, s.Device)
	}
	if p.Data.Seq != s.Seq || p.Data.Prev != s.Seq-1 {
		return fmt.Errorf("%w: data attestation seq=%d prev=%d, want seq=%d prev=%d",
			ErrBadProof, p.Data.Seq, p.Data.Prev, s.Seq, s.Seq-1)
	}
	if err := v.trinc.CheckMessage(*p.Data, dataBinding(s.Log, s.Seq, s.Value)); err != nil {
		return fmt.Errorf("%w: data attestation: %v", ErrBadProof, err)
	}
	// 2. The freshness attestation binds the nonce, claimed end, and the
	//    statement itself, minted by the same trinket.
	if p.Fresh.Trinket != s.Device {
		return fmt.Errorf("%w: fresh attestation from %v, statement device %v", ErrBadProof, p.Fresh.Trinket, s.Device)
	}
	stmtHash := s.hash()
	if err := v.trinc.CheckMessage(*p.Fresh, respBinding(s.Log, s.Nonce, p.End, stmtHash)); err != nil {
		return fmt.Errorf("%w: fresh attestation: %v", ErrBadProof, err)
	}
	// 3. End proofs must claim seq equal to the attested end.
	if s.Kind == KindEnd && s.Seq != p.End {
		return fmt.Errorf("%w: end proof seq=%d but attested end=%d", ErrBadProof, s.Seq, p.End)
	}
	if s.Kind == KindLookup && s.Seq > p.End {
		return fmt.Errorf("%w: lookup seq=%d beyond attested end=%d", ErrBadProof, s.Seq, p.End)
	}
	return nil
}

// Universe provisions native A2M devices for a membership plus a Verifier
// that also accepts TrInc-backed proofs from the given trinc universe
// (optional; pass nil if only native devices are used).
type Universe struct {
	Devices  []*Device // indexed by ProcessID
	Verifier *Verifier
}

// NewUniverse provisions one native device per member. If tu is non-nil,
// the returned Verifier also accepts proofs from tu's trinkets.
func NewUniverse(m types.Membership, scheme sig.Scheme, rng *rand.Rand, tu *trinc.Universe) (*Universe, error) {
	rings, err := sig.NewKeyrings(m, scheme, rng)
	if err != nil {
		return nil, fmt.Errorf("a2m: provision device keys: %w", err)
	}
	u := &Universe{
		Devices:  make([]*Device, m.N),
		Verifier: &Verifier{native: rings[0], fv: fastverify.New(rings[0])},
	}
	if tu != nil {
		u.Verifier.trinc = tu.Verifier
	}
	for i := 0; i < m.N; i++ {
		u.Devices[i] = &Device{
			owner: types.ProcessID(i),
			ring:  rings[i],
			logs:  make(map[uint64][][]byte),
		}
	}
	return u, nil
}

// NewTrIncVerifier returns a Verifier accepting only TrInc-backed proofs.
func NewTrIncVerifier(tv *trinc.Verifier) *Verifier {
	return &Verifier{trinc: tv}
}
