package sticky

import (
	"errors"
	"testing"
	"testing/quick"

	"unidir/internal/types"
)

func newStore(t *testing.T, n int) *Store {
	t.Helper()
	m, err := types.NewMembership(n, (n-1)/2)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	s, err := NewStore(m)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s
}

func TestSetOnceAndRead(t *testing.T) {
	s := newStore(t, 3)
	if err := s.SetOnce(1, 1, 0, []byte("stuck")); err != nil {
		t.Fatalf("SetOnce: %v", err)
	}
	v, ok, err := s.Read(2, 1, 0)
	if err != nil || !ok || string(v) != "stuck" {
		t.Fatalf("Read = %q ok=%v err=%v", v, ok, err)
	}
}

func TestStickiness(t *testing.T) {
	s := newStore(t, 3)
	if err := s.SetOnce(0, 0, 5, []byte("first")); err != nil {
		t.Fatalf("SetOnce: %v", err)
	}
	if err := s.SetOnce(0, 0, 5, []byte("second")); !errors.Is(err, ErrAlreadySet) {
		t.Fatalf("second SetOnce err = %v, want ErrAlreadySet", err)
	}
	v, _, _ := s.Read(0, 0, 5)
	if string(v) != "first" {
		t.Fatalf("sticky value overwritten: %q", v)
	}
}

func TestOwnerACL(t *testing.T) {
	s := newStore(t, 3)
	if err := s.SetOnce(2, 1, 0, []byte("intrusion")); !errors.Is(err, ErrACL) {
		t.Fatalf("non-owner SetOnce err = %v, want ErrACL", err)
	}
	if _, ok, _ := s.Read(1, 1, 0); ok {
		t.Fatal("denied write left a value behind")
	}
}

func TestCustomACL(t *testing.T) {
	s := newStore(t, 4)
	// Slot (0, 9) writable by processes 2 and 3, not its "owner" 0.
	if err := s.NewSlotWithACL(0, 9, []types.ProcessID{2, 3}); err != nil {
		t.Fatalf("NewSlotWithACL: %v", err)
	}
	if err := s.SetOnce(0, 0, 9, []byte("x")); !errors.Is(err, ErrACL) {
		t.Fatalf("owner write to ACL slot err = %v, want ErrACL", err)
	}
	if err := s.SetOnce(3, 0, 9, []byte("by-3")); err != nil {
		t.Fatalf("SetOnce by ACL member: %v", err)
	}
	if err := s.SetOnce(2, 0, 9, []byte("by-2")); !errors.Is(err, ErrAlreadySet) {
		t.Fatalf("second ACL write err = %v, want ErrAlreadySet", err)
	}
}

func TestSlotErrors(t *testing.T) {
	s := newStore(t, 2)
	if err := s.SetOnce(0, 5, 0, []byte("x")); !errors.Is(err, ErrNoSuchSlot) {
		t.Fatalf("SetOnce bad owner err = %v, want ErrNoSuchSlot", err)
	}
	if _, _, err := s.Read(0, 5, 0); !errors.Is(err, ErrNoSuchSlot) {
		t.Fatalf("Read bad owner err = %v, want ErrNoSuchSlot", err)
	}
	if err := s.NewSlotWithACL(0, 1, []types.ProcessID{7}); !errors.Is(err, ErrNoSuchSlot) {
		t.Fatalf("NewSlotWithACL bad writer err = %v, want ErrNoSuchSlot", err)
	}
	if err := s.NewSlotWithACL(0, 2, nil); err != nil {
		t.Fatalf("NewSlotWithACL: %v", err)
	}
	if err := s.NewSlotWithACL(0, 2, nil); err == nil {
		t.Fatal("redefining slot succeeded")
	}
}

func TestQuickFirstWriteWins(t *testing.T) {
	// Property: for any sequence of (caller-owned) write attempts to one
	// slot, the value read afterwards is the first attempted value.
	f := func(values [][]byte) bool {
		if len(values) == 0 {
			return true
		}
		m, _ := types.NewMembership(1, 0)
		s, err := NewStore(m)
		if err != nil {
			return false
		}
		for _, v := range values {
			_ = s.SetOnce(0, 0, 0, v)
		}
		got, ok, err := s.Read(0, 0, 0)
		if err != nil || !ok {
			return false
		}
		return string(got) == string(values[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
