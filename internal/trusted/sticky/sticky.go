// Package sticky implements sticky bits (Malkhi et al., "Objects shared by
// Byzantine processes"): registers whose value cannot be changed after the
// first write, combined with access control lists. The paper lists sticky
// bits among the shared-memory primitives that provide unidirectionality
// (§3.2): they have a modifying operation (the first, sticking write) and a
// read operation, which is all Claim §3.2 requires.
//
// The store exposes per-process object arrays of sticky slots: slot (owner,
// index) may be written once, by its owner only, and read by everyone.
// A generalized mode with arbitrary writer ACLs per slot is also provided
// (NewSlotWithACL), matching the original object model where stickiness, not
// single-writer ownership, is the safety mechanism.
package sticky

import (
	"errors"
	"fmt"
	"sync"

	"unidir/internal/types"
)

var (
	// ErrACL reports a write attempted by a process outside the slot's ACL.
	ErrACL = errors.New("sticky: access denied by ACL")
	// ErrAlreadySet reports a second write to a sticky slot.
	ErrAlreadySet = errors.New("sticky: slot already set")
	// ErrNoSuchSlot reports access to an undefined slot.
	ErrNoSuchSlot = errors.New("sticky: no such slot")
)

type slotKey struct {
	owner types.ProcessID
	index uint64
}

type slot struct {
	writers map[types.ProcessID]bool // nil means "owner only"
	set     bool
	value   []byte
}

// Store is a collection of sticky slots for one membership. Safe for
// concurrent use; all operations are linearizable.
type Store struct {
	m types.Membership

	mu    sync.Mutex
	slots map[slotKey]*slot
}

// NewStore creates an empty sticky-bit memory for membership m. Slots in
// the per-process arrays (owner, index) exist implicitly, owner-writable.
func NewStore(m types.Membership) (*Store, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Store{m: m, slots: make(map[slotKey]*slot)}, nil
}

// Membership returns the membership the store was created for.
func (s *Store) Membership() types.Membership { return s.m }

// NewSlotWithACL defines slot (owner, index) writable by exactly the
// processes in writers (stickiness still allows only the first write). It
// fails if the slot was already defined or written.
func (s *Store) NewSlotWithACL(owner types.ProcessID, index uint64, writers []types.ProcessID) error {
	if !s.m.Contains(owner) {
		return fmt.Errorf("%w: owner %v", ErrNoSuchSlot, owner)
	}
	acl := make(map[types.ProcessID]bool, len(writers))
	for _, w := range writers {
		if !s.m.Contains(w) {
			return fmt.Errorf("%w: writer %v not a member", ErrNoSuchSlot, w)
		}
		acl[w] = true
	}
	key := slotKey{owner, index}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.slots[key]; ok {
		return fmt.Errorf("sticky: slot (%v,%d) already defined", owner, index)
	}
	s.slots[key] = &slot{writers: acl}
	return nil
}

// SetOnce writes val into slot (owner, index). The write succeeds only if
// the caller is in the slot's ACL and the slot has never been set.
func (s *Store) SetOnce(caller, owner types.ProcessID, index uint64, val []byte) error {
	if !s.m.Contains(owner) {
		return fmt.Errorf("%w: owner %v", ErrNoSuchSlot, owner)
	}
	key := slotKey{owner, index}
	s.mu.Lock()
	defer s.mu.Unlock()
	sl := s.slots[key]
	if sl == nil {
		sl = &slot{} // implicit owner-only slot
		s.slots[key] = sl
	}
	allowed := caller == owner
	if sl.writers != nil {
		allowed = sl.writers[caller]
	}
	if !allowed {
		return fmt.Errorf("%w: %v cannot write (%v,%d)", ErrACL, caller, owner, index)
	}
	if sl.set {
		return fmt.Errorf("%w: (%v,%d)", ErrAlreadySet, owner, index)
	}
	sl.set = true
	sl.value = append([]byte(nil), val...)
	return nil
}

// Read returns the value of slot (owner, index) and whether it has been
// set. Every process may read every slot.
func (s *Store) Read(caller, owner types.ProcessID, index uint64) ([]byte, bool, error) {
	if !s.m.Contains(owner) {
		return nil, false, fmt.Errorf("%w: owner %v", ErrNoSuchSlot, owner)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sl := s.slots[slotKey{owner, index}]
	if sl == nil || !sl.set {
		return nil, false, nil
	}
	return append([]byte(nil), sl.value...), true, nil
}
