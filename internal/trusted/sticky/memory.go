package sticky

import (
	"fmt"
	"sync"

	"unidir/internal/trusted/swmr"
	"unidir/internal/types"
)

// Memory adapts sticky bits to the swmr.Memory interface so the
// unidirectional round protocol (rounds.NewSWMR) runs unchanged over
// write-once registers — Claim §3.2 instantiated for the sticky-bit
// objects of Malkhi et al.
//
// Encoding: process p's append-only object is the sequence of sticky slots
// (p, 0), (p, 1), ... — each written exactly once, in order, by p.
// Stickiness makes the object append-only by construction; the per-slot
// owner ACL makes it single-writer.
type Memory struct {
	store *Store
	self  types.ProcessID
	m     types.Membership

	mu   sync.Mutex
	next uint64 // next slot index for this process's own object
	// read cursors avoid rescanning settled prefixes of peers' objects.
	settled []uint64
}

var _ swmr.Memory = (*Memory)(nil)

// NewMemory returns process self's view of the sticky-bit store as shared
// memory. All processes of the membership must share the same Store.
func NewMemory(store *Store, self types.ProcessID, m types.Membership) (*Memory, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if !m.Contains(self) {
		return nil, fmt.Errorf("sticky: %v not in membership", self)
	}
	return &Memory{store: store, self: self, m: m, settled: make([]uint64, m.N)}, nil
}

// Self returns the fixed caller identity.
func (mm *Memory) Self() types.ProcessID { return mm.self }

// Append writes val into the caller's next sticky slot.
func (mm *Memory) Append(val []byte) error {
	mm.mu.Lock()
	idx := mm.next
	mm.next++
	mm.mu.Unlock()
	if err := mm.store.SetOnce(mm.self, mm.self, idx, val); err != nil {
		return fmt.Errorf("sticky: append: %w", err)
	}
	return nil
}

// Write appends val (sticky objects are write-once, so register semantics
// are "last write wins" over the slot sequence).
func (mm *Memory) Write(val []byte) error { return mm.Append(val) }

// object reads owner's slots from index `from` until the first unset slot.
func (mm *Memory) object(owner types.ProcessID, from uint64) ([][]byte, error) {
	if !mm.m.Contains(owner) {
		return nil, fmt.Errorf("sticky: %w: %v", swmr.ErrNoSuchObject, owner)
	}
	var out [][]byte
	for i := from; ; i++ {
		v, ok, err := mm.store.Read(mm.self, owner, i)
		if err != nil {
			return nil, fmt.Errorf("sticky: read object: %w", err)
		}
		if !ok {
			return out, nil
		}
		out = append(out, v)
	}
}

// Read returns the register value of owner's object (its last set slot).
func (mm *Memory) Read(owner types.ProcessID) ([]byte, bool, error) {
	entries, err := mm.object(owner, 0)
	if err != nil {
		return nil, false, err
	}
	if len(entries) == 0 {
		return nil, false, nil
	}
	return entries[len(entries)-1], true, nil
}

// ReadLog returns owner's object entries starting at offset from. The
// settled-prefix cursor makes repeated polling linear in new entries.
func (mm *Memory) ReadLog(owner types.ProcessID, from int) ([][]byte, error) {
	if !mm.m.Contains(owner) {
		return nil, fmt.Errorf("sticky: %w: %v", swmr.ErrNoSuchObject, owner)
	}
	if from < 0 {
		from = 0
	}
	mm.mu.Lock()
	cursor := mm.settled[owner]
	mm.mu.Unlock()
	start := uint64(from)
	if cursor < start {
		// Caller skipping ahead of our cursor: scan from their offset.
		cursor = start
	}
	entries, err := mm.object(owner, cursor)
	if err != nil {
		return nil, err
	}
	mm.mu.Lock()
	if newSettled := cursor + uint64(len(entries)); newSettled > mm.settled[owner] {
		mm.settled[owner] = newSettled
	}
	mm.mu.Unlock()
	if cursor > start {
		// We started past the requested offset; prepend the settled slice.
		prefix, err := mm.objectRange(owner, start, cursor)
		if err != nil {
			return nil, err
		}
		entries = append(prefix, entries...)
	}
	return entries, nil
}

// objectRange reads slots [from, to), all known settled.
func (mm *Memory) objectRange(owner types.ProcessID, from, to uint64) ([][]byte, error) {
	out := make([][]byte, 0, to-from)
	for i := from; i < to; i++ {
		v, ok, err := mm.store.Read(mm.self, owner, i)
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil // settled prefix shrank? cannot happen; be safe
		}
		out = append(out, v)
	}
	return out, nil
}
