// Package peats implements Policy-Enforced Augmented Tuple Spaces (Bessani
// et al., "Sharing memory between Byzantine processes using policy-enforced
// tuple spaces"): a shared data structure holding typed tuples with three
// operations — out (insert), rd (non-destructive read), and in (destructive
// removal) — guarded not just by static ACLs but by *policies* that may
// consult the space's current state when deciding whether to allow an
// operation (§2.1 of the paper).
//
// The paper's classification needs only that PEATS has a modifying
// operation and a read operation under access control (Claim §3.2), so it
// is at least as strong as unidirectionality; the RoundPolicy helper
// constructs exactly the policy that makes a tuple space behave as n
// single-writer append-only objects, which internal/rounds uses to run the
// write-then-scan round protocol over PEATS.
package peats

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"unidir/internal/types"
)

var (
	// ErrDenied reports an operation rejected by the policy.
	ErrDenied = errors.New("peats: operation denied by policy")
	// ErrNoMatch reports a destructive in() with no matching tuple.
	ErrNoMatch = errors.New("peats: no matching tuple")
)

// Tuple is an ordered list of byte-string fields. Field 0 is conventionally
// a type tag.
type Tuple [][]byte

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	for i, f := range t {
		out[i] = append([]byte(nil), f...)
	}
	return out
}

// Template matches tuples: it is a list of fields where nil means wildcard.
// A template matches a tuple of the same arity whose every non-nil field is
// byte-equal.
type Template [][]byte

// Matches reports whether the template matches t.
func (tmpl Template) Matches(t Tuple) bool {
	if len(tmpl) != len(t) {
		return false
	}
	for i, f := range tmpl {
		if f != nil && !bytes.Equal(f, t[i]) {
			return false
		}
	}
	return true
}

// OpKind identifies a tuple-space operation for policy decisions.
type OpKind int

// Tuple space operations.
const (
	OpOut OpKind = iota + 1 // insert
	OpRd                    // non-destructive read
	OpIn                    // destructive removal
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpOut:
		return "out"
	case OpRd:
		return "rd"
	case OpIn:
		return "in"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op describes an attempted operation for the policy: who, what kind, and
// the tuple (for out) or template (for rd/in) involved.
type Op struct {
	Caller   types.ProcessID
	Kind     OpKind
	Tuple    Tuple    // set for OpOut
	Template Template // set for OpRd / OpIn
}

// View is the read-only state a policy may consult: the current tuples.
type View interface {
	// Count returns the number of tuples matching tmpl.
	Count(tmpl Template) int
	// Exists reports whether any tuple matches tmpl.
	Exists(tmpl Template) bool
}

// Policy decides whether an operation is allowed given the current state.
// Policies must be deterministic and must not retain the View.
type Policy func(v View, op Op) bool

// AllowAll is the trivial policy.
func AllowAll(View, Op) bool { return true }

// Space is a policy-enforced tuple space. Safe for concurrent use; every
// operation (policy evaluation + mutation) is one linearizable step.
type Space struct {
	policy Policy

	mu     sync.Mutex
	tuples []Tuple
}

// NewSpace creates a tuple space guarded by policy (AllowAll if nil).
func NewSpace(policy Policy) *Space {
	if policy == nil {
		policy = AllowAll
	}
	return &Space{policy: policy}
}

// view implements View over the space's tuples; only valid under s.mu.
type view struct{ tuples []Tuple }

func (v view) Count(tmpl Template) int {
	n := 0
	for _, t := range v.tuples {
		if tmpl.Matches(t) {
			n++
		}
	}
	return n
}

func (v view) Exists(tmpl Template) bool { return v.Count(tmpl) > 0 }

// Out inserts tuple t on behalf of caller.
func (s *Space) Out(caller types.ProcessID, t Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	op := Op{Caller: caller, Kind: OpOut, Tuple: t}
	if !s.policy(view{s.tuples}, op) {
		return fmt.Errorf("%w: out by %v", ErrDenied, caller)
	}
	s.tuples = append(s.tuples, t.Clone())
	return nil
}

// Rd returns copies of all tuples matching tmpl (non-destructive).
func (s *Space) Rd(caller types.ProcessID, tmpl Template) ([]Tuple, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	op := Op{Caller: caller, Kind: OpRd, Template: tmpl}
	if !s.policy(view{s.tuples}, op) {
		return nil, fmt.Errorf("%w: rd by %v", ErrDenied, caller)
	}
	var out []Tuple
	for _, t := range s.tuples {
		if tmpl.Matches(t) {
			out = append(out, t.Clone())
		}
	}
	return out, nil
}

// In removes and returns the first tuple matching tmpl (destructive). It
// fails with ErrNoMatch if nothing matches.
func (s *Space) In(caller types.ProcessID, tmpl Template) (Tuple, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	op := Op{Caller: caller, Kind: OpIn, Template: tmpl}
	if !s.policy(view{s.tuples}, op) {
		return nil, fmt.Errorf("%w: in by %v", ErrDenied, caller)
	}
	for i, t := range s.tuples {
		if tmpl.Matches(t) {
			s.tuples = append(s.tuples[:i], s.tuples[i+1:]...)
			return t, nil
		}
	}
	return nil, ErrNoMatch
}

// Len returns the number of tuples currently in the space.
func (s *Space) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tuples)
}

// RoundPolicy returns the policy that makes a tuple space behave as the n
// single-writer append-only objects of Claim §3.2:
//
//   - out is allowed only for tuples of the form (owner, ...) where owner
//     encodes the caller's own ID — a process can only extend "its object";
//   - in (destructive removal) is always denied — objects are append-only;
//   - rd is always allowed — everyone can read every object.
//
// OwnerField encodes a ProcessID as the tuple's first field.
func RoundPolicy() Policy {
	return func(_ View, op Op) bool {
		switch op.Kind {
		case OpRd:
			return true
		case OpIn:
			return false
		case OpOut:
			return len(op.Tuple) > 0 && bytes.Equal(op.Tuple[0], OwnerField(op.Caller))
		default:
			return false
		}
	}
}

// OwnerField encodes a process ID for use as a tuple's owner field.
func OwnerField(p types.ProcessID) []byte {
	return []byte(fmt.Sprintf("owner:%d", int(p)))
}
