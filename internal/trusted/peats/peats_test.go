package peats

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func field(s string) []byte { return []byte(s) }

func TestOutRdIn(t *testing.T) {
	s := NewSpace(nil)
	if err := s.Out(0, Tuple{field("job"), field("payload-1")}); err != nil {
		t.Fatalf("Out: %v", err)
	}
	if err := s.Out(1, Tuple{field("job"), field("payload-2")}); err != nil {
		t.Fatalf("Out: %v", err)
	}
	got, err := s.Rd(2, Template{field("job"), nil})
	if err != nil {
		t.Fatalf("Rd: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("Rd matched %d tuples, want 2", len(got))
	}
	taken, err := s.In(2, Template{field("job"), field("payload-1")})
	if err != nil {
		t.Fatalf("In: %v", err)
	}
	if string(taken[1]) != "payload-1" {
		t.Fatalf("In took %q", taken[1])
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after In, want 1", s.Len())
	}
	if _, err := s.In(2, Template{field("job"), field("payload-1")}); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("second In err = %v, want ErrNoMatch", err)
	}
}

func TestTemplateMatching(t *testing.T) {
	cases := []struct {
		name string
		tmpl Template
		t    Tuple
		want bool
	}{
		{"exact", Template{field("a"), field("b")}, Tuple{field("a"), field("b")}, true},
		{"wildcard", Template{field("a"), nil}, Tuple{field("a"), field("anything")}, true},
		{"all wildcards", Template{nil, nil}, Tuple{field("x"), field("y")}, true},
		{"field mismatch", Template{field("a"), field("b")}, Tuple{field("a"), field("c")}, false},
		{"arity mismatch", Template{field("a")}, Tuple{field("a"), field("b")}, false},
		{"empty both", Template{}, Tuple{}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.tmpl.Matches(tc.t); got != tc.want {
				t.Fatalf("Matches = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestPolicyConsultsState(t *testing.T) {
	// A state-dependent policy — the capability static ACLs lack: allow at
	// most one "lock" tuple in the space at a time.
	lockTmpl := Template{field("lock"), nil}
	policy := func(v View, op Op) bool {
		if op.Kind == OpOut && lockTmpl.Matches(op.Tuple) {
			return !v.Exists(lockTmpl)
		}
		return true
	}
	s := NewSpace(policy)
	if err := s.Out(0, Tuple{field("lock"), field("p0")}); err != nil {
		t.Fatalf("first lock: %v", err)
	}
	if err := s.Out(1, Tuple{field("lock"), field("p1")}); !errors.Is(err, ErrDenied) {
		t.Fatalf("second lock err = %v, want ErrDenied", err)
	}
	// Releasing the lock (destructive in) re-enables acquisition.
	if _, err := s.In(0, lockTmpl); err != nil {
		t.Fatalf("In: %v", err)
	}
	if err := s.Out(1, Tuple{field("lock"), field("p1")}); err != nil {
		t.Fatalf("lock after release: %v", err)
	}
}

func TestRoundPolicy(t *testing.T) {
	s := NewSpace(RoundPolicy())
	// A process may append to its own object...
	if err := s.Out(3, Tuple{OwnerField(3), field("round-1")}); err != nil {
		t.Fatalf("own out: %v", err)
	}
	// ...but not to another's, and may not masquerade.
	if err := s.Out(2, Tuple{OwnerField(3), field("forged")}); !errors.Is(err, ErrDenied) {
		t.Fatalf("forged out err = %v, want ErrDenied", err)
	}
	// Nothing may ever be removed (append-only objects).
	if _, err := s.In(3, Template{OwnerField(3), nil}); !errors.Is(err, ErrDenied) {
		t.Fatalf("in err = %v, want ErrDenied", err)
	}
	// Everyone may read everything.
	got, err := s.Rd(0, Template{OwnerField(3), nil})
	if err != nil || len(got) != 1 {
		t.Fatalf("Rd = %v err %v", got, err)
	}
}

func TestOutCopiesTuple(t *testing.T) {
	s := NewSpace(nil)
	tup := Tuple{field("k"), field("v")}
	if err := s.Out(0, tup); err != nil {
		t.Fatalf("Out: %v", err)
	}
	tup[1][0] = 'X' // caller mutates after insertion
	got, err := s.Rd(0, Template{field("k"), nil})
	if err != nil || len(got) != 1 {
		t.Fatalf("Rd: %v %v", got, err)
	}
	if string(got[0][1]) != "v" {
		t.Fatalf("space aliased caller tuple: %q", got[0][1])
	}
}

func TestQuickRdReturnsExactlyMatches(t *testing.T) {
	// Property: after inserting arbitrary 2-field tuples, Rd with a
	// first-field template returns exactly the tuples with that field.
	f := func(tags []uint8, key uint8) bool {
		s := NewSpace(nil)
		want := 0
		for i, tag := range tags {
			tup := Tuple{[]byte{tag}, []byte(fmt.Sprintf("v%d", i))}
			if err := s.Out(0, tup); err != nil {
				return false
			}
			if tag == key {
				want++
			}
		}
		got, err := s.Rd(0, Template{[]byte{key}, nil})
		if err != nil {
			return false
		}
		if len(got) != want {
			return false
		}
		for _, tup := range got {
			if !bytes.Equal(tup[0], []byte{key}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
