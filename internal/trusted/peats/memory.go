package peats

import (
	"fmt"
	"sync"

	"unidir/internal/trusted/swmr"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// Memory adapts a policy-enforced tuple space to the swmr.Memory interface,
// so the unidirectional round protocol (rounds.NewSWMR) runs unchanged over
// PEATS — the executable form of Claim §3.2's "all shared memory objects
// with a modifying operation, a read operation, and ACLs provide this
// setting", instantiated for tuple spaces.
//
// Encoding: process p's append-only object is the set of tuples
// (OwnerField(p), index, value); RoundPolicy (or any policy at least as
// strict) guarantees only p can out such tuples and nobody can remove them.
// Register semantics (Write/Read) use the entry with the highest index.
type Memory struct {
	space *Space
	self  types.ProcessID
	m     types.Membership

	mu   sync.Mutex
	next uint64 // next index for this process's own object
}

var _ swmr.Memory = (*Memory)(nil)

// NewMemory returns process self's view of the tuple space as shared
// memory. All processes of the membership must use the same Space, which
// should be guarded by RoundPolicy (or stricter).
func NewMemory(space *Space, self types.ProcessID, m types.Membership) (*Memory, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if !m.Contains(self) {
		return nil, fmt.Errorf("peats: %v not in membership", self)
	}
	return &Memory{space: space, self: self, m: m}, nil
}

// Self returns the fixed caller identity.
func (mm *Memory) Self() types.ProcessID { return mm.self }

func indexField(i uint64) []byte {
	e := wire.NewEncoder(8)
	e.Uint64(i)
	return e.Bytes()
}

// Append adds val to the caller's own object.
func (mm *Memory) Append(val []byte) error {
	mm.mu.Lock()
	idx := mm.next
	mm.next++
	mm.mu.Unlock()
	tup := Tuple{OwnerField(mm.self), indexField(idx), append([]byte(nil), val...)}
	if err := mm.space.Out(mm.self, tup); err != nil {
		return fmt.Errorf("peats: append: %w", err)
	}
	return nil
}

// Write appends val (tuple spaces under RoundPolicy are append-only, so
// register semantics are "last write wins" over the append history).
func (mm *Memory) Write(val []byte) error { return mm.Append(val) }

// object reads owner's full object in index order.
func (mm *Memory) object(owner types.ProcessID) ([][]byte, error) {
	if !mm.m.Contains(owner) {
		return nil, fmt.Errorf("peats: %w: %v", swmr.ErrNoSuchObject, owner)
	}
	tuples, err := mm.space.Rd(mm.self, Template{OwnerField(owner), nil, nil})
	if err != nil {
		return nil, fmt.Errorf("peats: read object: %w", err)
	}
	// Order by index field; indices are dense per owner by construction,
	// but a Byzantine owner may skip or duplicate — sort defensively and
	// keep first-wins per index.
	byIndex := make(map[uint64][]byte, len(tuples))
	maxIdx := uint64(0)
	any := false
	for _, tup := range tuples {
		if len(tup) != 3 {
			continue
		}
		d := wire.NewDecoder(tup[1])
		idx := d.Uint64()
		if d.Finish() != nil {
			continue
		}
		if _, dup := byIndex[idx]; !dup {
			byIndex[idx] = tup[2]
		}
		if idx > maxIdx {
			maxIdx = idx
		}
		any = true
	}
	if !any {
		return nil, nil
	}
	out := make([][]byte, 0, len(byIndex))
	for i := uint64(0); i <= maxIdx; i++ {
		if v, ok := byIndex[i]; ok {
			out = append(out, v)
		}
	}
	return out, nil
}

// Read returns the register value of owner's object (its last entry).
func (mm *Memory) Read(owner types.ProcessID) ([]byte, bool, error) {
	entries, err := mm.object(owner)
	if err != nil {
		return nil, false, err
	}
	if len(entries) == 0 {
		return nil, false, nil
	}
	return entries[len(entries)-1], true, nil
}

// ReadLog returns owner's object entries starting at offset from.
func (mm *Memory) ReadLog(owner types.ProcessID, from int) ([][]byte, error) {
	entries, err := mm.object(owner)
	if err != nil {
		return nil, err
	}
	if from < 0 {
		from = 0
	}
	if from > len(entries) {
		from = len(entries)
	}
	return entries[from:], nil
}
