package ctrstore

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReplayKeepsMaxPerCounter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ctr.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, rec := range [][2]uint64{{0, 5}, {0, 9}, {1, 3}, {0, 7}} {
		if err := s.Record(rec[0], rec[1]); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s, err = Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	last := s.Last()
	if last[0] != 9 || last[1] != 3 {
		t.Fatalf("replayed last = %v, want 0:9 1:3", last)
	}
}

func TestTornTrailingRecordIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ctr.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Record(4, 11); err != nil {
		t.Fatalf("Record: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a crash mid-append: a partial record at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	_ = f.Close()

	s, err = Open(path)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if last := s.Last(); last[4] != 11 {
		t.Fatalf("last = %v, want 4:11", last)
	}
	// New appends land where the complete records ended, overwriting the
	// torn bytes, and survive another reopen.
	if err := s.Record(4, 12); err != nil {
		t.Fatalf("Record after torn tail: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s, err = Open(path)
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	defer s.Close()
	if last := s.Last(); last[4] != 12 {
		t.Fatalf("last after overwrite = %v, want 4:12", last)
	}
}

func TestRecordAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ctr.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Record(0, 1); err == nil {
		t.Fatal("Record on closed store succeeded")
	}
}
