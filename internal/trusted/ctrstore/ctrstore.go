// Package ctrstore persists monotone counter state for the simulated trusted
// devices (trinc.Device, a2m.Device) across process restarts.
//
// The paper's classification leans on trusted counters being monotone
// *forever* — a TrInc trinket that forgot its counter on reboot could
// re-attest a used value and equivocate after all. Real hardware keeps the
// counter in NVRAM; this package is that NVRAM for the in-process devices: a
// tiny append-only write-ahead log of (counter, value) advances. A device
// records each advance *before* releasing the attestation, so after a crash
// the replayed maximum per counter is always >= the highest value any
// released attestation carries, and rehydrated devices can never sign below
// it.
//
// Records are appended with a single write(2) each, so they survive process
// crashes (SIGKILL) without fsync; Sync is available for callers that also
// want power-loss durability. A torn trailing record (crash mid-write) is
// ignored on replay — by the write-ahead ordering, a torn record's
// attestation was never released, so dropping it is safe.
package ctrstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"

	"unidir/internal/obs"
)

// recordSize is one WAL record: 8-byte counter ID, 8-byte value, both
// little-endian.
const recordSize = 16

// Store is an open counter WAL. Safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	last map[uint64]uint64
	log  *slog.Logger
}

// Option configures Open.
type Option func(*Store)

// WithLogger attaches a structured logger; replay anomalies (torn trailing
// records) and recovery summaries are reported through it.
func WithLogger(l *slog.Logger) Option {
	return func(s *Store) { s.log = obs.OrNop(l) }
}

// Open opens (creating if needed) the WAL at path and replays it.
func Open(path string, opts ...Option) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("ctrstore: open %s: %w", path, err)
	}
	s := &Store{f: f, last: make(map[uint64]uint64), log: obs.NopLogger()}
	for _, opt := range opts {
		opt(s)
	}
	if err := s.replay(); err != nil {
		_ = f.Close()
		return nil, err
	}
	s.log.Info("counter store opened", "path", path, "counters", len(s.last), "bytes", recordSize*countRecords(s))
	return s, nil
}

// countRecords derives the replayed record count from the write offset.
func countRecords(s *Store) int64 {
	off, err := s.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0
	}
	return off / recordSize
}

// replay scans the log, keeping the maximum value seen per counter, and
// positions the write offset after the last complete record.
func (s *Store) replay() error {
	var rec [recordSize]byte
	var off int64
	for {
		n, err := io.ReadFull(s.f, rec[:])
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			// Torn trailing record: the attestation guarded by it was never
			// released (write-ahead ordering), so drop it.
			s.log.Warn("dropping torn trailing record", "offset", off, "partial_bytes", n)
			break
		}
		if err != nil {
			return fmt.Errorf("ctrstore: replay: %w", err)
		}
		counter := binary.LittleEndian.Uint64(rec[:8])
		value := binary.LittleEndian.Uint64(rec[8:])
		if value > s.last[counter] {
			s.last[counter] = value
		}
		off += recordSize
	}
	if _, err := s.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("ctrstore: seek: %w", err)
	}
	return nil
}

// Record durably appends one counter advance. It must return before the
// attestation guarded by it is released.
func (s *Store) Record(counter, value uint64) error {
	var rec [recordSize]byte
	binary.LittleEndian.PutUint64(rec[:8], counter)
	binary.LittleEndian.PutUint64(rec[8:], value)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("ctrstore: store closed")
	}
	if _, err := s.f.Write(rec[:]); err != nil {
		return fmt.Errorf("ctrstore: append: %w", err)
	}
	if value > s.last[counter] {
		s.last[counter] = value
	}
	return nil
}

// Last returns a copy of the highest recorded value per counter.
func (s *Store) Last() map[uint64]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint64]uint64, len(s.last))
	for k, v := range s.last {
		out[k] = v
	}
	return out
}

// Sync flushes the log to stable storage (power-loss durability; process
// crashes are already covered by the unbuffered writes).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	return s.f.Sync()
}

// Close closes the log. Further Records fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
