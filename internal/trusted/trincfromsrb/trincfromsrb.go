// Package trincfromsrb implements the TrInc interface from sequenced
// reliable broadcast — Theorem 1 of the paper, the construction showing
// that trusted-log hardware is no stronger than SRB:
//
//	Attest(c, m):             Broadcast(k, (c, m)); return (k, (c, m))
//	CheckAttestation(a, q):   upon delivering (k, c, m) from q:
//	                              if C[q] < c { store (k, (c, m)); C[q] = c }
//	                          return whether a is stored
//
// The hardware trinket's guarantee — no two valid attestations for one
// counter value — is enforced here not by a device but by every checker's
// delivery-order filter: SRB's sequencing and agreement properties give all
// correct processes the same per-sender delivery order, so they store the
// same subset of attestations (those whose counter values are strictly
// increasing along the broadcast order), and SRB integrity replaces
// signature unforgeability (only genuinely broadcast attestations are ever
// delivered).
//
// Running this over srb/bracha yields TrInc from no trusted hardware at all
// (at n >= 3f+1 resilience); over srb/uniround it completes the paper's
// chain "shared memory ⇒ unidirectionality ⇒ SRB ⇒ TrInc".
package trincfromsrb

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"

	"unidir/internal/srb"
	"unidir/internal/syncx"
	"unidir/internal/types"
	"unidir/internal/wire"
)

var (
	// ErrClosed reports use of a closed trinket.
	ErrClosed = errors.New("trincfromsrb: closed")
	// ErrNotAttested reports a CheckAttestation that conclusively failed.
	ErrNotAttested = errors.New("trincfromsrb: attestation not valid")
)

// Attestation is the SRB-based attestation of the theorem: the broadcast
// sequence number k together with the attested (c, m) pair.
type Attestation struct {
	Process types.ProcessID // whose Trinket produced it
	K       types.SeqNum    // SRB broadcast sequence number
	C       types.SeqNum    // attested counter value
	Msg     []byte
}

// Trinket is one process's simulated trinket plus its checker state. The
// same object serves both roles of the paper's interface: Attest uses the
// underlying SRB node's sender instance; CheckAttestation consults the
// delivery-order filter fed by the node's deliveries.
type Trinket struct {
	node srb.Node

	mu      sync.Mutex
	highest map[types.ProcessID]types.SeqNum               // C[q]
	stored  map[types.ProcessID]map[types.SeqNum]storedAtt // q -> c -> stored
	closed  bool

	pulse  *syncx.Pulse
	cancel context.CancelFunc
	done   chan struct{}
}

type storedAtt struct {
	k   types.SeqNum
	msg []byte
}

// New wraps an SRB node as a trinket. The trinket owns the node's delivery
// stream; callers must not consume node.Deliver themselves.
func New(node srb.Node) *Trinket {
	ctx, cancel := context.WithCancel(context.Background())
	t := &Trinket{
		node:    node,
		highest: make(map[types.ProcessID]types.SeqNum),
		stored:  make(map[types.ProcessID]map[types.SeqNum]storedAtt),
		pulse:   syncx.NewPulse(),
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	go t.pump(ctx)
	return t
}

// Self returns the owning process's ID.
func (t *Trinket) Self() types.ProcessID { return t.node.Self() }

// Attest broadcasts (c, m) and returns the resulting attestation, exactly
// as in the theorem's construction. Note that, faithfully to the paper, no
// local monotonicity check is performed: an attestation with a reused or
// lower counter value is simply one that no correct checker will ever
// validate.
func (t *Trinket) Attest(c types.SeqNum, m []byte) (Attestation, error) {
	if c == 0 {
		return Attestation{}, fmt.Errorf("trincfromsrb: counter values start at 1")
	}
	e := wire.NewEncoder(16 + len(m))
	e.Uint64(uint64(c))
	e.BytesField(m)
	k, err := t.node.Broadcast(e.Bytes())
	if err != nil {
		return Attestation{}, fmt.Errorf("trincfromsrb: attest broadcast: %w", err)
	}
	return Attestation{Process: t.Self(), K: k, C: c, Msg: append([]byte(nil), m...)}, nil
}

// CheckAttestation reports whether a is currently known valid: previously
// output by q's trinket (i.e. delivered from q with a strictly increasing
// counter value). A false result may be transient — the delivery may not
// have arrived yet; use WaitAttestation for the eventual version.
func (t *Trinket) CheckAttestation(a Attestation, q types.ProcessID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.checkLocked(a, q)
}

func (t *Trinket) checkLocked(a Attestation, q types.ProcessID) bool {
	if a.Process != q {
		return false
	}
	s, ok := t.stored[q][a.C]
	if !ok {
		return false
	}
	return s.k == a.K && bytes.Equal(s.msg, a.Msg)
}

// WaitAttestation blocks until a validates, ctx is done, or the check can
// be conclusively rejected (a conflicting attestation holds (q, c)).
func (t *Trinket) WaitAttestation(ctx context.Context, a Attestation, q types.ProcessID) error {
	for {
		t.mu.Lock()
		if t.checkLocked(a, q) {
			t.mu.Unlock()
			return nil
		}
		if _, occupied := t.stored[q][a.C]; occupied || t.highest[q] >= a.C {
			// Counter value (q, c) is already bound to something else, or
			// q's counter advanced past c without storing it: a can never
			// become valid.
			t.mu.Unlock()
			return fmt.Errorf("%w: counter %d of %v bound otherwise", ErrNotAttested, a.C, q)
		}
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return ErrClosed
		}
		ch := t.pulse.Wait()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Highest returns C[q], the highest stored counter value for q.
func (t *Trinket) Highest(q types.ProcessID) types.SeqNum {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.highest[q]
}

// Close stops the trinket's delivery pump (the underlying SRB node is not
// closed; the caller owns it).
func (t *Trinket) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	t.cancel()
	<-t.done
	t.pulse.Fire()
	return nil
}

func (t *Trinket) pump(ctx context.Context) {
	defer close(t.done)
	for {
		d, err := t.node.Deliver(ctx)
		if err != nil {
			return
		}
		dec := wire.NewDecoder(d.Data)
		c := types.SeqNum(dec.Uint64())
		m := append([]byte(nil), dec.BytesField()...)
		if dec.Finish() != nil || c == 0 {
			continue // not an attestation broadcast; ignore
		}
		t.mu.Lock()
		if t.highest[d.Sender] < c {
			byC := t.stored[d.Sender]
			if byC == nil {
				byC = make(map[types.SeqNum]storedAtt)
				t.stored[d.Sender] = byC
			}
			byC[c] = storedAtt{k: d.Seq, msg: m}
			t.highest[d.Sender] = c
		}
		t.mu.Unlock()
		t.pulse.Fire()
	}
}
