package trincfromsrb_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"unidir/internal/rounds"
	"unidir/internal/sig"
	"unidir/internal/simnet"
	"unidir/internal/srb"
	"unidir/internal/srb/bracha"
	"unidir/internal/srb/uniround"
	"unidir/internal/trusted/swmr"
	"unidir/internal/trusted/trincfromsrb"
	"unidir/internal/types"
)

// The conformance suite runs Theorem 1's construction over two SRB
// implementations: bracha (TrInc from *no* trusted hardware, n >= 3f+1) and
// uniround (completing the chain shared memory => unidirectionality => SRB
// => TrInc, n >= 2t+1).

type fixture struct {
	m        types.Membership
	trinkets []*trincfromsrb.Trinket
}

func buildOverBracha(t *testing.T) *fixture {
	t.Helper()
	m, err := types.NewMembership(4, 1)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	fix := &fixture{m: m, trinkets: make([]*trincfromsrb.Trinket, m.N)}
	nodes := make([]srb.Node, m.N)
	for i := 0; i < m.N; i++ {
		node, err := bracha.New(m, net.Endpoint(types.ProcessID(i)))
		if err != nil {
			t.Fatalf("bracha.New: %v", err)
		}
		nodes[i] = node
		fix.trinkets[i] = trincfromsrb.New(node)
	}
	t.Cleanup(func() {
		for i := range fix.trinkets {
			_ = fix.trinkets[i].Close()
			_ = nodes[i].Close()
		}
		net.Close()
	})
	return fix
}

func buildOverUniround(t *testing.T) *fixture {
	t.Helper()
	m, err := types.NewMembership(3, 1)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	rings, err := sig.NewKeyrings(m, sig.HMAC, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}
	stores := make([]*swmr.Store, m.N)
	for s := range stores {
		stores[s], err = swmr.NewStore(m)
		if err != nil {
			t.Fatalf("NewStore: %v", err)
		}
	}
	fix := &fixture{m: m, trinkets: make([]*trincfromsrb.Trinket, m.N)}
	nodes := make([]srb.Node, m.N)
	for i := 0; i < m.N; i++ {
		self := types.ProcessID(i)
		node, err := uniround.New(m, rings[i], func(sender types.ProcessID) (rounds.System, error) {
			return rounds.NewSWMR(swmr.NewLocal(stores[sender], self), m)
		})
		if err != nil {
			t.Fatalf("uniround.New: %v", err)
		}
		nodes[i] = node
		fix.trinkets[i] = trincfromsrb.New(node)
	}
	t.Cleanup(func() {
		for i := range fix.trinkets {
			_ = fix.trinkets[i].Close()
			_ = nodes[i].Close()
		}
	})
	return fix
}

func builds() map[string]func(*testing.T) *fixture {
	return map[string]func(*testing.T) *fixture{
		"over-bracha":   buildOverBracha,
		"over-uniround": buildOverUniround,
	}
}

func TestCorrectAttestationValidatesEverywhere(t *testing.T) {
	for name, build := range builds() {
		t.Run(name, func(t *testing.T) {
			fix := build(t)
			a, err := fix.trinkets[0].Attest(1, []byte("statement"))
			if err != nil {
				t.Fatalf("Attest: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			for i, tk := range fix.trinkets {
				if err := tk.WaitAttestation(ctx, a, 0); err != nil {
					t.Fatalf("trinket %d: WaitAttestation: %v", i, err)
				}
				if !tk.CheckAttestation(a, 0) {
					t.Fatalf("trinket %d: CheckAttestation false after wait", i)
				}
			}
		})
	}
}

func TestReusedCounterValueNeverValidates(t *testing.T) {
	for name, build := range builds() {
		t.Run(name, func(t *testing.T) {
			fix := build(t)
			first, err := fix.trinkets[0].Attest(5, []byte("first"))
			if err != nil {
				t.Fatalf("Attest: %v", err)
			}
			second, err := fix.trinkets[0].Attest(5, []byte("equivocation"))
			if err != nil {
				t.Fatalf("Attest: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			for i, tk := range fix.trinkets {
				if err := tk.WaitAttestation(ctx, first, 0); err != nil {
					t.Fatalf("trinket %d: first attestation: %v", i, err)
				}
				// The reuse is conclusively rejected once the slot is bound.
				if err := tk.WaitAttestation(ctx, second, 0); !errors.Is(err, trincfromsrb.ErrNotAttested) {
					t.Fatalf("trinket %d: reused counter err = %v", i, err)
				}
			}
		})
	}
}

func TestLowerCounterAfterHigherNeverValidates(t *testing.T) {
	for name, build := range builds() {
		t.Run(name, func(t *testing.T) {
			fix := build(t)
			high, err := fix.trinkets[1].Attest(10, []byte("high"))
			if err != nil {
				t.Fatalf("Attest: %v", err)
			}
			low, err := fix.trinkets[1].Attest(3, []byte("stale"))
			if err != nil {
				t.Fatalf("Attest: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			for i, tk := range fix.trinkets {
				if err := tk.WaitAttestation(ctx, high, 1); err != nil {
					t.Fatalf("trinket %d: high: %v", i, err)
				}
				if err := tk.WaitAttestation(ctx, low, 1); !errors.Is(err, trincfromsrb.ErrNotAttested) {
					t.Fatalf("trinket %d: stale counter err = %v", i, err)
				}
			}
		})
	}
}

func TestFabricatedAttestationRejected(t *testing.T) {
	for name, build := range builds() {
		t.Run(name, func(t *testing.T) {
			fix := build(t)
			fake := trincfromsrb.Attestation{Process: 1, K: 1, C: 1, Msg: []byte("never broadcast")}
			if fix.trinkets[0].CheckAttestation(fake, 1) {
				t.Fatal("fabricated attestation accepted")
			}
			// Misattributed process also fails structurally.
			real, err := fix.trinkets[1].Attest(1, []byte("genuine"))
			if err != nil {
				t.Fatalf("Attest: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			if err := fix.trinkets[0].WaitAttestation(ctx, real, 1); err != nil {
				t.Fatalf("genuine attestation: %v", err)
			}
			if fix.trinkets[0].CheckAttestation(real, 2) {
				t.Fatal("attestation accepted for the wrong trinket")
			}
			tampered := real
			tampered.Msg = []byte("altered")
			if fix.trinkets[0].CheckAttestation(tampered, 1) {
				t.Fatal("tampered message accepted")
			}
		})
	}
}

func TestCheckersAgreeOnWinner(t *testing.T) {
	// When a Byzantine process reuses a counter, all correct checkers must
	// agree on *which* attestation won (the one first in broadcast order) —
	// the agreement property that makes this a usable trinket.
	for name, build := range builds() {
		t.Run(name, func(t *testing.T) {
			fix := build(t)
			tk := fix.trinkets[0]
			attests := make([]trincfromsrb.Attestation, 0, 3)
			for _, msg := range []string{"a", "b", "c"} {
				a, err := tk.Attest(7, []byte(msg)) // same counter three times
				if err != nil {
					t.Fatalf("Attest: %v", err)
				}
				attests = append(attests, a)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			for i, checker := range fix.trinkets {
				if err := checker.WaitAttestation(ctx, attests[0], 0); err != nil {
					t.Fatalf("trinket %d: winner: %v", i, err)
				}
				for _, loser := range attests[1:] {
					if checker.CheckAttestation(loser, 0) {
						t.Fatalf("trinket %d accepted a losing attestation", i)
					}
				}
			}
		})
	}
}

func TestHighestTracksCounter(t *testing.T) {
	fix := buildOverBracha(t)
	a1, err := fix.trinkets[2].Attest(4, []byte("x"))
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := fix.trinkets[0].WaitAttestation(ctx, a1, 2); err != nil {
		t.Fatalf("WaitAttestation: %v", err)
	}
	if got := fix.trinkets[0].Highest(2); got != 4 {
		t.Fatalf("Highest = %d, want 4", got)
	}
}

func TestZeroCounterRejected(t *testing.T) {
	fix := buildOverBracha(t)
	if _, err := fix.trinkets[0].Attest(0, []byte("x")); err == nil {
		t.Fatal("Attest(0) succeeded")
	}
}
