package rounds

import (
	"context"
	"fmt"
	"sync"
	"time"

	"unidir/internal/trusted/swmr"
	"unidir/internal/types"
)

// SWMR implements unidirectional rounds from shared memory with ACLs —
// the protocol of Claim §3.2 (first introduced by Aguilera et al., DISC'19):
//
//	In round r, process p_i:
//	  to send message m, appends (r, m) to its own object o_i;
//	  then reads objects o_1 ... o_n.
//	p_i receives a round-r message m' from p_j if it reads (r, m') in o_j.
//
// Unidirectionality holds because of the write-then-scan order: of two
// correct processes that both write in round r, the one whose append
// linearizes second must see the other's entry in its scan.
//
// WaitEnd performs the scan that defines the round boundary. A background
// poller keeps scanning so that late writes still reach the Recv stream
// (eventual delivery), which the SRB construction requires.
type SWMR struct {
	t    *tracker
	mem  swmr.Memory
	poll time.Duration

	scanMu sync.Mutex // serializes scans; cursor is guarded by it
	cursor []int

	cancel context.CancelFunc
	done   chan struct{}
}

var _ System = (*SWMR)(nil)

// SWMROption configures NewSWMR.
type SWMROption func(*SWMR)

// WithSWMRObserver attaches a property-checking observer.
func WithSWMRObserver(obs Observer) SWMROption {
	return func(s *SWMR) { s.t.obs = obs }
}

// WithPollInterval sets the straggler-scan interval (default 500µs).
func WithPollInterval(d time.Duration) SWMROption {
	return func(s *SWMR) { s.poll = d }
}

// NewSWMR creates the round system for the process identified by mem over
// membership m.
func NewSWMR(mem swmr.Memory, m types.Membership, opts ...SWMROption) (*SWMR, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if !m.Contains(mem.Self()) {
		return nil, fmt.Errorf("rounds: swmr memory caller %v not in membership", mem.Self())
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &SWMR{
		t:      newTracker(mem.Self(), m, nil),
		mem:    mem,
		poll:   500 * time.Microsecond,
		cursor: make([]int, m.N),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	go s.pollLoop(ctx)
	return s, nil
}

// Self returns this process's ID.
func (s *SWMR) Self() types.ProcessID { return s.t.self }

// Membership returns the process group.
func (s *SWMR) Membership() types.Membership { return s.t.m }

// Send appends (r, data) to this process's own object.
func (s *SWMR) Send(r types.Round, data []byte) error {
	// Order matters: the append must be visible in shared memory before the
	// tracker admits the send, because markSent defines the moment after
	// which this process may scan (and peers may count on seeing the entry).
	if err := s.t.requireNotSent(r); err != nil {
		return err
	}
	if err := s.mem.Append(encodeRoundMsg(r, data)); err != nil {
		return fmt.Errorf("rounds: swmr append: %w", err)
	}
	return s.t.markSent(r, data)
}

// SendAux appends an out-of-round message to this process's object; peers'
// pollers surface it on their Recv streams. It does not loop back to self.
func (s *SWMR) SendAux(data []byte) error {
	if err := s.mem.Append(encodeRoundMsg(0, data)); err != nil {
		return fmt.Errorf("rounds: swmr aux append: %w", err)
	}
	return nil
}

// WaitEnd scans all objects once — the round-boundary scan of the protocol —
// and returns the round-r messages collected so far.
func (s *SWMR) WaitEnd(ctx context.Context, r types.Round) (map[types.ProcessID][]byte, error) {
	if err := s.t.requireSent(r); err != nil {
		return nil, err
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	_ = ctx // the boundary scan is synchronous; nothing to wait for
	return s.t.snapshot(r), nil
}

// Recv returns the next round message (including post-boundary stragglers
// discovered by the poller).
func (s *SWMR) Recv(ctx context.Context) (Msg, error) { return s.t.recv(ctx) }

// Close stops the poller and unblocks stream consumers.
func (s *SWMR) Close() error {
	s.cancel()
	<-s.done
	s.t.close()
	return nil
}

func (s *SWMR) pollLoop(ctx context.Context) {
	defer close(s.done)
	ticker := time.NewTicker(s.poll)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			_ = s.scan() // a failed scan will be retried next tick
		case <-ctx.Done():
			return
		}
	}
}

// scan reads every object past this process's cursor and records new
// entries. Scans are serialized by scanMu so cursors stay consistent.
func (s *SWMR) scan() error {
	s.scanMu.Lock()
	defer s.scanMu.Unlock()

	s.t.mu.Lock()
	closed := s.t.closed
	s.t.mu.Unlock()
	if closed {
		return ErrClosed
	}

	for q := 0; q < s.t.m.N; q++ {
		owner := types.ProcessID(q)
		entries, err := s.mem.ReadLog(owner, s.cursor[q])
		if err != nil {
			return fmt.Errorf("rounds: swmr scan o_%d: %w", q, err)
		}
		for _, raw := range entries {
			s.cursor[q]++
			r, data, err := decodeRoundMsg(raw)
			if err != nil {
				continue // a Byzantine owner wrote garbage in its object
			}
			if owner == s.t.self {
				continue // own entries are recorded at Send time
			}
			if r == AuxRound {
				s.t.recordAux(owner, data)
				continue
			}
			s.t.record(owner, r, data)
		}
	}
	return nil
}
