package rounds_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"unidir/internal/core"
	"unidir/internal/rounds"
	"unidir/internal/sig"
	"unidir/internal/simnet"
	"unidir/internal/trusted/swmr"
	"unidir/internal/types"
)

// mustMembership builds a membership or fails the test.
func mustMembership(t *testing.T, n, f int) types.Membership {
	t.Helper()
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	return m
}

// newSWMRSystems builds one SWMR round system per process over a fresh
// local store, all observed by checker.
func newSWMRSystems(t *testing.T, m types.Membership, checker rounds.Observer) []rounds.System {
	t.Helper()
	store, err := swmr.NewStore(m)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	systems := make([]rounds.System, m.N)
	for i := 0; i < m.N; i++ {
		sys, err := rounds.NewSWMR(swmr.NewLocal(store, types.ProcessID(i)), m,
			rounds.WithSWMRObserver(checker))
		if err != nil {
			t.Fatalf("NewSWMR: %v", err)
		}
		systems[i] = sys
	}
	t.Cleanup(func() {
		for _, s := range systems {
			_ = s.Close()
		}
	})
	return systems
}

// runRounds drives every system through numRounds full Send+WaitEnd rounds
// concurrently, with per-process jitter from rng seed, and returns each
// process's per-round WaitEnd results.
func runRounds(t *testing.T, systems []rounds.System, numRounds int, seed int64) [][]map[types.ProcessID][]byte {
	t.Helper()
	results := make([][]map[types.ProcessID][]byte, len(systems))
	errs := make([]error, len(systems))
	var wg sync.WaitGroup
	for i, sys := range systems {
		wg.Add(1)
		go func(i int, sys rounds.System) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)))
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for r := types.Round(1); r <= types.Round(numRounds); r++ {
				time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
				data := []byte(fmt.Sprintf("p%d-r%d", i, r))
				if err := sys.Send(r, data); err != nil {
					errs[i] = err
					return
				}
				time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
				got, err := sys.WaitEnd(ctx, r)
				if err != nil {
					errs[i] = err
					return
				}
				results[i] = append(results[i], got)
			}
		}(i, sys)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", i, err)
		}
	}
	return results
}

// closeAll closes systems so final boundaries are reported to the checker.
func closeAll(systems []rounds.System) {
	for _, s := range systems {
		_ = s.Close()
	}
}

// --- E4: SWMR rounds are unidirectional ---

func TestSWMRUnidirectionalRandomSchedules(t *testing.T) {
	m := mustMembership(t, 5, 2)
	for seed := int64(0); seed < 8; seed++ {
		checker := core.NewUniChecker()
		systems := newSWMRSystems(t, m, checker)
		results := runRounds(t, systems, 6, seed)
		closeAll(systems)
		if v := checker.Violations(m.All()); len(v) != 0 {
			t.Fatalf("seed %d: unidirectionality violations: %v", seed, v)
		}
		// Every WaitEnd must at least contain the process's own message.
		for i, perRound := range results {
			for r, got := range perRound {
				if _, ok := got[types.ProcessID(i)]; !ok {
					t.Fatalf("p%d round %d: own message missing", i, r+1)
				}
			}
		}
	}
}

func TestSWMRDeliversContentCorrectly(t *testing.T) {
	m := mustMembership(t, 4, 1)
	checker := core.NewUniChecker()
	systems := newSWMRSystems(t, m, checker)
	results := runRounds(t, systems, 3, 42)
	for i, perRound := range results {
		for rIdx, got := range perRound {
			for from, data := range got {
				want := fmt.Sprintf("p%d-r%d", int(from), rIdx+1)
				if string(data) != want {
					t.Fatalf("p%d saw %q from %v in round %d, want %q", i, data, from, rIdx+1, want)
				}
			}
		}
	}
}

func TestSWMRStragglersReachRecvStream(t *testing.T) {
	m := mustMembership(t, 3, 1)
	store, err := swmr.NewStore(m)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	fast, err := rounds.NewSWMR(swmr.NewLocal(store, 0), m)
	if err != nil {
		t.Fatalf("NewSWMR: %v", err)
	}
	defer fast.Close()
	slow, err := rounds.NewSWMR(swmr.NewLocal(store, 1), m)
	if err != nil {
		t.Fatalf("NewSWMR: %v", err)
	}
	defer slow.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Fast process completes round 1 before slow even starts it.
	if err := fast.Send(1, []byte("early")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := fast.WaitEnd(ctx, 1); err != nil {
		t.Fatalf("WaitEnd: %v", err)
	}
	if err := slow.Send(1, []byte("late")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// The poller must surface the late write on fast's stream.
	for {
		msg, err := fast.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if msg.From == 1 && msg.Round == 1 && string(msg.Data) == "late" {
			return
		}
	}
}

func TestSWMRRoundOrderEnforced(t *testing.T) {
	m := mustMembership(t, 3, 1)
	systems := newSWMRSystems(t, m, nil)
	s := systems[0]
	ctx := context.Background()
	if _, err := s.WaitEnd(ctx, 1); !errors.Is(err, rounds.ErrRoundOrder) {
		t.Fatalf("WaitEnd before Send err = %v", err)
	}
	if err := s.Send(2, []byte("x")); err != nil {
		t.Fatalf("Send(2): %v", err)
	}
	if err := s.Send(2, []byte("again")); !errors.Is(err, rounds.ErrRoundOrder) {
		t.Fatalf("duplicate Send err = %v", err)
	}
	if err := s.Send(1, []byte("backwards")); !errors.Is(err, rounds.ErrRoundOrder) {
		t.Fatalf("backwards Send err = %v", err)
	}
	// Gaps are allowed.
	if err := s.Send(7, []byte("gap")); err != nil {
		t.Fatalf("Send(7): %v", err)
	}
}

func TestSWMRWorksOverRPCMemory(t *testing.T) {
	m := mustMembership(t, 3, 1)
	netM := mustMembership(t, 4, 1) // extra node hosts the memory server
	net, err := simnet.New(netM)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	store, err := swmr.NewStore(m)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	server := swmr.NewServer(store, net.Endpoint(3))
	defer server.Close()

	checker := core.NewUniChecker()
	systems := make([]rounds.System, m.N)
	var clients []*swmr.Client
	for i := 0; i < m.N; i++ {
		client := swmr.NewClient(net.Endpoint(types.ProcessID(i)), 3)
		clients = append(clients, client)
		sys, err := rounds.NewSWMR(client, m, rounds.WithSWMRObserver(checker),
			rounds.WithPollInterval(2*time.Millisecond))
		if err != nil {
			t.Fatalf("NewSWMR: %v", err)
		}
		systems[i] = sys
	}
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
	}()
	runRounds(t, systems, 3, 7)
	closeAll(systems)
	if v := checker.Violations(m.All()); len(v) != 0 {
		t.Fatalf("violations over RPC memory: %v", v)
	}
}

// --- zero-directional baseline ---

func newAsyncSystems(t *testing.T, m types.Membership, net *simnet.Network, checker rounds.Observer) []rounds.System {
	t.Helper()
	systems := make([]rounds.System, m.N)
	for i := 0; i < m.N; i++ {
		sys, err := rounds.NewAsync(net.Endpoint(types.ProcessID(i)), m,
			rounds.WithAsyncObserver(checker))
		if err != nil {
			t.Fatalf("NewAsync: %v", err)
		}
		systems[i] = sys
	}
	t.Cleanup(func() { closeAll(systems) })
	return systems
}

func TestAsyncRoundsCompleteAndCollectQuorum(t *testing.T) {
	m := mustMembership(t, 5, 2)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	systems := newAsyncSystems(t, m, net, nil)
	results := runRounds(t, systems, 4, 11)
	for i, perRound := range results {
		for r, got := range perRound {
			if len(got) < m.Correct() {
				t.Fatalf("p%d round %d: %d messages, want >= %d", i, r+1, len(got), m.Correct())
			}
		}
	}
}

func TestAsyncToleratesSilentProcesses(t *testing.T) {
	m := mustMembership(t, 5, 2)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	systems := newAsyncSystems(t, m, net, nil)
	// Processes 3 and 4 crash (never send); the rest must still finish.
	live := systems[:3]
	results := runRounds(t, live, 3, 13)
	for i, perRound := range results {
		if len(perRound) != 3 {
			t.Fatalf("p%d completed %d rounds, want 3", i, len(perRound))
		}
	}
}

func TestAsyncViolatesUnidirectionalityUnderPartition(t *testing.T) {
	// The §4.1 geometry in miniature: C1={3}, C2={4} cannot talk to each
	// other, but both reach Q={0,1,2}. Everyone is correct; the async
	// (n-f)-quorum round discipline lets 3 and 4 finish their rounds without
	// ever hearing each other — a unidirectionality violation.
	m := mustMembership(t, 5, 2)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	net.BlockPair(3, 4)
	checker := core.NewUniChecker()
	systems := newAsyncSystems(t, m, net, checker)
	runRounds(t, systems, 1, 17)
	closeAll(systems)
	violations := checker.Violations(m.All())
	found := false
	for _, v := range violations {
		if (v.A == 3 && v.B == 4) || (v.A == 4 && v.B == 3) {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a violation between p3 and p4, got %v", violations)
	}
}

// --- bidirectional (lock-step) ---

func TestLockstepIsBidirectional(t *testing.T) {
	m := mustMembership(t, 4, 1)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	checker := core.NewUniChecker()
	systems := make([]rounds.System, m.N)
	for i := 0; i < m.N; i++ {
		sys, err := rounds.NewLockstep(net.Endpoint(types.ProcessID(i)), m,
			rounds.WithLockstepObserver(checker))
		if err != nil {
			t.Fatalf("NewLockstep: %v", err)
		}
		systems[i] = sys
	}
	defer closeAll(systems)
	results := runRounds(t, systems, 3, 23)
	// Bidirectionality: every process's WaitEnd contains *every* process's
	// message, every round.
	for i, perRound := range results {
		for r, got := range perRound {
			if len(got) != m.N {
				t.Fatalf("p%d round %d: %d messages, want %d", i, r+1, len(got), m.N)
			}
		}
	}
	closeAll(systems)
	if v := checker.Violations(m.All()); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestLockstepWithCrashedProcess(t *testing.T) {
	m := mustMembership(t, 4, 1)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	live := []types.ProcessID{0, 1, 2} // p3 is crashed, known to the harness
	systems := make([]rounds.System, 3)
	for i := 0; i < 3; i++ {
		sys, err := rounds.NewLockstep(net.Endpoint(types.ProcessID(i)), m,
			rounds.WithLive(live))
		if err != nil {
			t.Fatalf("NewLockstep: %v", err)
		}
		systems[i] = sys
	}
	defer closeAll(systems)
	results := runRounds(t, systems, 2, 29)
	for i, perRound := range results {
		for r, got := range perRound {
			if len(got) != 3 {
				t.Fatalf("p%d round %d: %d messages, want 3", i, r+1, len(got))
			}
		}
	}
}

// --- E2: the f=1 corner case over reliable broadcast ---

func newRBF1Systems(t *testing.T, m types.Membership, net *simnet.Network, checker rounds.Observer) []rounds.System {
	t.Helper()
	rings, err := sig.NewKeyrings(m, sig.HMAC, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}
	systems := make([]rounds.System, m.N)
	for i := 0; i < m.N; i++ {
		sys, err := rounds.NewRBF1(net.Endpoint(types.ProcessID(i)), m, rings[i],
			rounds.WithRBF1Observer(checker))
		if err != nil {
			t.Fatalf("NewRBF1: %v", err)
		}
		systems[i] = sys
	}
	t.Cleanup(func() { closeAll(systems) })
	return systems
}

func TestRBF1UnidirectionalRandomSchedules(t *testing.T) {
	for _, n := range []int{3, 4, 6} {
		m := mustMembership(t, n, 1)
		for seed := int64(0); seed < 4; seed++ {
			net, err := simnet.New(m)
			if err != nil {
				t.Fatalf("simnet: %v", err)
			}
			checker := core.NewUniChecker()
			systems := newRBF1Systems(t, m, net, checker)
			runRounds(t, systems, 3, seed)
			closeAll(systems)
			if v := checker.Violations(m.All()); len(v) != 0 {
				t.Fatalf("n=%d seed=%d: violations: %v", n, seed, v)
			}
			net.Close()
		}
	}
}

func TestRBF1SurvivesDirectPartitionViaForwarding(t *testing.T) {
	// p0 and p1 never exchange a direct message; Q's phase-2 bundles must
	// carry at least one direction — the crux of the Appendix proof.
	m := mustMembership(t, 4, 1)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	net.BlockPair(0, 1)
	checker := core.NewUniChecker()
	systems := newRBF1Systems(t, m, net, checker)
	runRounds(t, systems, 1, 31)
	closeAll(systems)
	if v := checker.Violations(m.All()); len(v) != 0 {
		t.Fatalf("violations despite forwarding: %v", v)
	}
	// And at least one direction really did flow through bundles.
	if !checker.GotByBoundary(0, 1, 1) && !checker.GotByBoundary(1, 0, 1) {
		t.Fatal("neither direction recorded")
	}
}

func TestRBF1ToleratesOneCrash(t *testing.T) {
	m := mustMembership(t, 4, 1)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	systems := newRBF1Systems(t, m, net, nil)
	// p3 crashed: only 0..2 run; they wait for n-1 = 3 distinct in each
	// phase, which the three of them supply.
	live := systems[:3]
	results := runRounds(t, live, 2, 37)
	for i, perRound := range results {
		if len(perRound) != 2 {
			t.Fatalf("p%d completed %d rounds", i, len(perRound))
		}
	}
}

func TestRBF1RejectsWrongResilience(t *testing.T) {
	net, err := simnet.New(mustMembership(t, 5, 2))
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	m5 := mustMembership(t, 5, 2)
	rings, err := sig.NewKeyrings(m5, sig.HMAC, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}
	if _, err := rounds.NewRBF1(net.Endpoint(0), m5, rings[0]); err == nil {
		t.Fatal("f=2 accepted by rbf1")
	}
}

func TestRBF1IgnoresForgedValues(t *testing.T) {
	m := mustMembership(t, 3, 1)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	checker := core.NewUniChecker()
	systems := newRBF1Systems(t, m, net, checker)
	// A Byzantine p2 injects a phase-1 message claiming to be from p1 but
	// with a bogus signature; p0 must not record it as p1's.
	forged := make([]byte, 0, 64)
	forged = append(forged, 1) // rbPhase1
	forged = append(forged, []byte{1, 0, 0, 0, 0, 0, 0, 0}...)
	forged = append(forged, []byte{5, 0, 0, 0}...)
	forged = append(forged, []byte("evil!")...)
	forged = append(forged, []byte{3, 0, 0, 0}...)
	forged = append(forged, []byte("sig")...)
	net.Inject(1, 0, forged)
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if msg, err := systems[0].Recv(ctx); err == nil {
		t.Fatalf("forged message surfaced: %+v", msg)
	}
}
