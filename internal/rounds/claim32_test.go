package rounds_test

import (
	"fmt"

	"testing"

	"unidir/internal/core"
	"unidir/internal/rounds"
	"unidir/internal/trusted/peats"
	"unidir/internal/trusted/sticky"
	"unidir/internal/trusted/swmr"
	"unidir/internal/types"
)

// Claim §3.2 quantifies over *all* shared-memory objects with a modifying
// operation, a read operation, and ACLs. These tests run the identical
// write-then-scan round protocol over each of the paper's three
// shared-memory primitives — SWMR registers, PEATS tuple spaces, and
// sticky bits — and check unidirectionality on all of them.

// memoryBuilders returns one swmr.Memory factory per primitive.
func memoryBuilders(t *testing.T, m types.Membership) map[string]func(self types.ProcessID) swmr.Memory {
	t.Helper()
	store, err := swmr.NewStore(m)
	if err != nil {
		t.Fatalf("swmr.NewStore: %v", err)
	}
	space := peats.NewSpace(peats.RoundPolicy())
	bits, err := sticky.NewStore(m)
	if err != nil {
		t.Fatalf("sticky.NewStore: %v", err)
	}
	return map[string]func(self types.ProcessID) swmr.Memory{
		"swmr": func(self types.ProcessID) swmr.Memory {
			return swmr.NewLocal(store, self)
		},
		"peats": func(self types.ProcessID) swmr.Memory {
			mem, err := peats.NewMemory(space, self, m)
			if err != nil {
				t.Fatalf("peats.NewMemory: %v", err)
			}
			return mem
		},
		"sticky": func(self types.ProcessID) swmr.Memory {
			mem, err := sticky.NewMemory(bits, self, m)
			if err != nil {
				t.Fatalf("sticky.NewMemory: %v", err)
			}
			return mem
		},
	}
}

func TestClaim32AllPrimitivesUnidirectional(t *testing.T) {
	m := mustMembership(t, 4, 1)
	for name, build := range memoryBuilders(t, m) {
		t.Run(name, func(t *testing.T) {
			checker := core.NewUniChecker()
			systems := make([]rounds.System, m.N)
			for i := 0; i < m.N; i++ {
				sys, err := rounds.NewSWMR(build(types.ProcessID(i)), m,
					rounds.WithSWMRObserver(checker))
				if err != nil {
					t.Fatalf("NewSWMR over %s: %v", name, err)
				}
				systems[i] = sys
			}
			defer closeAllSystems(systems)
			runRounds(t, systems, 4, 17)
			closeAllSystems(systems)
			if v := checker.Violations(m.All()); len(v) != 0 {
				t.Fatalf("%s rounds violated unidirectionality: %v", name, v)
			}
		})
	}
}

func TestClaim32ContentsDeliveredIntact(t *testing.T) {
	m := mustMembership(t, 3, 1)
	for name, build := range memoryBuilders(t, m) {
		t.Run(name, func(t *testing.T) {
			systems := make([]rounds.System, m.N)
			for i := 0; i < m.N; i++ {
				sys, err := rounds.NewSWMR(build(types.ProcessID(i)), m)
				if err != nil {
					t.Fatalf("NewSWMR: %v", err)
				}
				systems[i] = sys
			}
			defer closeAllSystems(systems)
			results := runRounds(t, systems, 2, 19)
			for i, perRound := range results {
				for r, got := range perRound {
					for from, data := range got {
						want := roundPayload(int(from), r+1)
						if string(data) != want {
							t.Fatalf("%s: p%d saw %q from %v in round %d, want %q",
								name, i, data, from, r+1, want)
						}
					}
				}
			}
		})
	}
}

func TestPEATSMemoryACL(t *testing.T) {
	m := mustMembership(t, 3, 1)
	space := peats.NewSpace(peats.RoundPolicy())
	mem0, err := peats.NewMemory(space, 0, m)
	if err != nil {
		t.Fatalf("NewMemory: %v", err)
	}
	mem1, err := peats.NewMemory(space, 1, m)
	if err != nil {
		t.Fatalf("NewMemory: %v", err)
	}
	if err := mem0.Append([]byte("mine")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	entries, err := mem1.ReadLog(0, 0)
	if err != nil || len(entries) != 1 || string(entries[0]) != "mine" {
		t.Fatalf("ReadLog = %q, %v", entries, err)
	}
	if _, err := mem1.ReadLog(9, 0); err == nil {
		t.Fatal("read of non-member object succeeded")
	}
	v, ok, err := mem1.Read(0)
	if err != nil || !ok || string(v) != "mine" {
		t.Fatalf("Read = %q %v %v", v, ok, err)
	}
	if _, ok, _ := mem0.Read(1); ok {
		t.Fatal("empty object read as set")
	}
}

func TestStickyMemorySequentialSlots(t *testing.T) {
	m := mustMembership(t, 2, 0)
	bits, err := sticky.NewStore(m)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	mem0, err := sticky.NewMemory(bits, 0, m)
	if err != nil {
		t.Fatalf("NewMemory: %v", err)
	}
	mem1, err := sticky.NewMemory(bits, 1, m)
	if err != nil {
		t.Fatalf("NewMemory: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := mem0.Append([]byte{byte(i)}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	entries, err := mem1.ReadLog(0, 2)
	if err != nil || len(entries) != 3 {
		t.Fatalf("ReadLog(from=2) = %d entries, %v", len(entries), err)
	}
	for i, e := range entries {
		if e[0] != byte(i+2) {
			t.Fatalf("entry %d = %v", i, e)
		}
	}
	// Incremental polling pattern (what the rounds poller does).
	if err := mem0.Append([]byte{99}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	more, err := mem1.ReadLog(0, 5)
	if err != nil || len(more) != 1 || more[0][0] != 99 {
		t.Fatalf("incremental ReadLog = %v, %v", more, err)
	}
}

// roundPayload mirrors the payload format runRounds sends.
func roundPayload(process, round int) string {
	return fmt.Sprintf("p%d-r%d", process, round)
}

func closeAllSystems(systems []rounds.System) {
	for _, s := range systems {
		_ = s.Close()
	}
}
