package rounds_test

import (
	"context"
	"testing"
	"time"

	"unidir/internal/rounds"
	"unidir/internal/simnet"
	"unidir/internal/trusted/swmr"
	"unidir/internal/types"
)

// Aux (out-of-round) message tests across all transport-backed and
// memory-backed systems.

func recvAux(t *testing.T, sys rounds.System, want string, timeout time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for {
		msg, err := sys.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if msg.Round == rounds.AuxRound {
			if string(msg.Data) != want {
				t.Fatalf("aux data = %q, want %q", msg.Data, want)
			}
			return
		}
	}
}

func TestSendAuxSWMR(t *testing.T) {
	m := mustMembership(t, 3, 1)
	systems := newSWMRSystems(t, m, nil)
	if err := systems[0].SendAux([]byte("swmr-aux")); err != nil {
		t.Fatalf("SendAux: %v", err)
	}
	recvAux(t, systems[1], "swmr-aux", 5*time.Second)
	recvAux(t, systems[2], "swmr-aux", 5*time.Second)
}

func TestSendAuxAsyncAndLockstep(t *testing.T) {
	m := mustMembership(t, 3, 1)
	for _, kind := range []string{"async", "lockstep"} {
		t.Run(kind, func(t *testing.T) {
			net, err := simnet.New(m)
			if err != nil {
				t.Fatalf("simnet: %v", err)
			}
			defer net.Close()
			systems := make([]rounds.System, m.N)
			for i := 0; i < m.N; i++ {
				ep := net.Endpoint(types.ProcessID(i))
				if kind == "async" {
					systems[i], err = rounds.NewAsync(ep, m)
				} else {
					systems[i], err = rounds.NewLockstep(ep, m)
				}
				if err != nil {
					t.Fatalf("new %s: %v", kind, err)
				}
				defer systems[i].Close()
			}
			if err := systems[2].SendAux([]byte("net-aux")); err != nil {
				t.Fatalf("SendAux: %v", err)
			}
			recvAux(t, systems[0], "net-aux", 5*time.Second)
		})
	}
}

func TestSendAuxNotDeduplicated(t *testing.T) {
	// Unlike round messages, repeated aux sends all surface (the SRB
	// construction relays proofs repeatedly and relies on this).
	m := mustMembership(t, 2, 0)
	store, err := swmr.NewStore(m)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	a, err := rounds.NewSWMR(swmr.NewLocal(store, 0), m)
	if err != nil {
		t.Fatalf("NewSWMR: %v", err)
	}
	defer a.Close()
	b, err := rounds.NewSWMR(swmr.NewLocal(store, 1), m)
	if err != nil {
		t.Fatalf("NewSWMR: %v", err)
	}
	defer b.Close()
	for i := 0; i < 3; i++ {
		if err := a.SendAux([]byte("dup")); err != nil {
			t.Fatalf("SendAux: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		msg, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if msg.Round != rounds.AuxRound || string(msg.Data) != "dup" {
			t.Fatalf("msg %d = %+v", i, msg)
		}
	}
}

func TestAuxDoesNotDisturbRoundDiscipline(t *testing.T) {
	m := mustMembership(t, 2, 0)
	store, err := swmr.NewStore(m)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	sys, err := rounds.NewSWMR(swmr.NewLocal(store, 0), m)
	if err != nil {
		t.Fatalf("NewSWMR: %v", err)
	}
	defer sys.Close()
	if err := sys.SendAux([]byte("pre-round")); err != nil {
		t.Fatalf("SendAux: %v", err)
	}
	// Round 1 is still available (aux did not consume a round number).
	if err := sys.Send(1, []byte("r1")); err != nil {
		t.Fatalf("Send(1) after aux: %v", err)
	}
}
