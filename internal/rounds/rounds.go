// Package rounds implements the paper's round-structured communication
// systems, one per communication class:
//
//   - SWMR: unidirectional rounds from shared memory with ACLs (Claim §3.2,
//     the write-then-scan protocol of Aguilera et al.). Works over any
//     swmr.Memory — local store or the RPC client.
//   - RBF1: unidirectional rounds from reliable broadcast in the corner case
//     f = 1, n >= 3 (Appendix): two-phase sign-and-forward.
//   - Async: zero-directional rounds from plain asynchronous message
//     passing — send to all, wait for n-f round messages. This is the
//     natural (and provably best possible) round protocol over any
//     eventual-delivery medium, including SRB; the separation experiment
//     (internal/separation) shows it violates unidirectionality.
//   - Lockstep: bidirectional rounds, modelling lock-step synchrony: a round
//     ends only when the messages of all live processes have arrived. The
//     harness supplies the live set (the synchronous model's perfect crash
//     knowledge).
//
// All systems implement the System interface and report their execution to
// an optional Observer — core.UniChecker implements Observer, making the
// unidirectionality predicate machine-checkable for every implementation.
package rounds

import (
	"context"
	"errors"
	"fmt"

	"unidir/internal/types"
	"unidir/internal/wire"
)

var (
	// ErrRoundOrder reports a Send for a round not greater than the last
	// one sent, or a WaitEnd for a round never sent.
	ErrRoundOrder = errors.New("rounds: round order violation")
	// ErrClosed reports use of a closed system.
	ErrClosed = errors.New("rounds: system closed")
)

// Msg is one round message received from a peer.
type Msg struct {
	From  types.ProcessID
	Round types.Round
	Data  []byte
}

// System is one process's access to a round-structured communication medium.
//
// Discipline: rounds are entered by Send with strictly increasing round
// numbers (gaps allowed — a process may sit a round out). WaitEnd(r)
// requires that this process already sent its round-r message; it blocks
// until the system's round-end condition holds and returns the round-r
// messages received so far, keyed by sender (always including self).
//
// Recv streams every peer round message exactly once, including messages
// that arrive after their round's end and messages for rounds this process
// never entered; protocols that need stragglers (for example the SRB
// construction) consume the stream, while simple round-synchronous protocols
// use only WaitEnd.
type System interface {
	// Self returns this process's ID.
	Self() types.ProcessID
	// Membership returns the process group.
	Membership() types.Membership
	// Send enters round r with this process's message.
	Send(r types.Round, data []byte) error
	// SendAux sends an out-of-round message to all processes with
	// eventual-delivery semantics. Aux messages appear on Recv with
	// Round == 0 and are exempt from the round discipline and from
	// first-value-wins deduplication. Every medium that can implement
	// rounds trivially provides this (it is a round protocol with the
	// waiting removed); protocols such as the SRB construction use it to
	// disseminate proofs outside the round structure.
	SendAux(data []byte) error
	// WaitEnd blocks until round r is finished and returns its messages.
	WaitEnd(ctx context.Context, r types.Round) (map[types.ProcessID][]byte, error)
	// Recv returns the next received round message.
	Recv(ctx context.Context) (Msg, error)
	// Close releases the system's goroutines and unblocks waiters.
	Close() error
}

// AuxRound is the reserved Msg.Round value marking out-of-round messages.
const AuxRound types.Round = 0

// Observer receives execution events for property checking.
// core.UniChecker implements it.
type Observer interface {
	// Sent reports that p sent its round-r message.
	Sent(p types.ProcessID, r types.Round)
	// Got reports that p now possesses q's round-r message.
	Got(p, q types.ProcessID, r types.Round)
	// Boundary reports that p's round r ended (p began a later round or
	// closed its system).
	Boundary(p types.ProcessID, r types.Round)
}

// EncodeMessage produces the wire form of a round message body as sent by
// the transport-based systems (Async, Lockstep). It is exported for
// Byzantine test harnesses that inject raw round traffic.
func EncodeMessage(r types.Round, data []byte) []byte {
	return encodeRoundMsg(r, data)
}

// encodeRoundMsg produces the wire form of a round message body.
func encodeRoundMsg(r types.Round, data []byte) []byte {
	e := wire.NewEncoder(12 + len(data))
	e.Uint64(uint64(r))
	e.BytesField(data)
	return e.Bytes()
}

// decodeRoundMsg parses a round message body.
func decodeRoundMsg(b []byte) (types.Round, []byte, error) {
	d := wire.NewDecoder(b)
	r := types.Round(d.Uint64())
	data := append([]byte(nil), d.BytesField()...)
	if err := d.Finish(); err != nil {
		return 0, nil, fmt.Errorf("rounds: decode message: %w", err)
	}
	return r, data, nil
}
