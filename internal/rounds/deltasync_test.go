package rounds_test

import (
	"context"
	"testing"
	"time"

	"unidir/internal/core"
	"unidir/internal/rounds"
	"unidir/internal/simnet"
	"unidir/internal/types"
)

// newDeltaSystems builds DeltaSync systems over a network whose delays are
// bounded by delta (via jitter).
func newDeltaSystems(t *testing.T, m types.Membership, delta, wait time.Duration, seed int64, checker rounds.Observer) ([]rounds.System, *simnet.Network) {
	t.Helper()
	net, err := simnet.New(m, simnet.WithJitter(delta, seed))
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	systems := make([]rounds.System, m.N)
	for i := 0; i < m.N; i++ {
		systems[i], err = rounds.NewDeltaSync(net.Endpoint(types.ProcessID(i)), m, wait,
			rounds.WithDeltaSyncObserver(checker))
		if err != nil {
			t.Fatalf("NewDeltaSync: %v", err)
		}
	}
	t.Cleanup(func() {
		for _, s := range systems {
			_ = s.Close()
		}
		net.Close()
	})
	return systems, net
}

func TestDeltaSyncUnidirectionalWhenWaitCoversDelta(t *testing.T) {
	// Delays bounded by delta, rounds wait 3x delta (comfortable margin for
	// scheduler noise): the unidirectionality predicate must hold across
	// randomized schedules. This is the paper's "Δ-synchrony provides
	// unidirectionality" claim.
	m := mustMembership(t, 4, 1)
	const delta = 2 * time.Millisecond
	for seed := int64(0); seed < 3; seed++ {
		checker := core.NewUniChecker()
		systems, _ := newDeltaSystems(t, m, delta, 3*delta, seed, checker)
		runRounds(t, systems, 3, seed)
		for _, s := range systems {
			_ = s.Close()
		}
		if v := checker.Violations(m.All()); len(v) != 0 {
			t.Fatalf("seed %d: violations under bounded delay: %v", seed, v)
		}
	}
}

func TestDeltaSyncRoundsComplete(t *testing.T) {
	m := mustMembership(t, 3, 1)
	systems, _ := newDeltaSystems(t, m, time.Millisecond, 4*time.Millisecond, 7, nil)
	results := runRounds(t, systems, 2, 7)
	for i, perRound := range results {
		if len(perRound) != 2 {
			t.Fatalf("p%d completed %d rounds", i, len(perRound))
		}
		// Every process hears itself at minimum; with wait >> delta it
		// almost surely hears everyone, but only self is guaranteed.
		for r, got := range perRound {
			if _, ok := got[types.ProcessID(i)]; !ok {
				t.Fatalf("p%d round %d missing own message", i, r+1)
			}
		}
	}
}

func TestDeltaSyncPropertyVoidWhenPremiseBroken(t *testing.T) {
	// Negative control: with a blocked link (delay unbounded — the model's
	// premise broken), the property fails between the partitioned pair.
	// Unlike shared memory, Δ-synchrony is an *assumption about the
	// network*, and this is the measurable difference.
	m := mustMembership(t, 3, 1)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	net.BlockPair(0, 1)
	checker := core.NewUniChecker()
	systems := make([]rounds.System, m.N)
	for i := 0; i < m.N; i++ {
		systems[i], err = rounds.NewDeltaSync(net.Endpoint(types.ProcessID(i)), m, 5*time.Millisecond,
			rounds.WithDeltaSyncObserver(checker))
		if err != nil {
			t.Fatalf("NewDeltaSync: %v", err)
		}
		defer systems[i].Close()
	}
	runRounds(t, systems, 1, 13)
	for _, s := range systems {
		_ = s.Close()
	}
	violations := checker.Violations(m.All())
	found := false
	for _, v := range violations {
		if (v.A == 0 && v.B == 1) || (v.A == 1 && v.B == 0) {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected violation between p0 and p1, got %v", violations)
	}
}

func TestDeltaSyncValidation(t *testing.T) {
	m := mustMembership(t, 3, 1)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	if _, err := rounds.NewDeltaSync(net.Endpoint(0), m, 0); err == nil {
		t.Fatal("zero wait accepted")
	}
	if _, err := rounds.NewDeltaSync(net.Endpoint(0), m, -time.Second); err == nil {
		t.Fatal("negative wait accepted")
	}
}

func TestDeltaSyncWaitEndRespectsContext(t *testing.T) {
	m := mustMembership(t, 2, 0)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	sys, err := rounds.NewDeltaSync(net.Endpoint(0), m, time.Hour)
	if err != nil {
		t.Fatalf("NewDeltaSync: %v", err)
	}
	defer sys.Close()
	if err := sys.Send(1, []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := sys.WaitEnd(ctx, 1); err == nil {
		t.Fatal("WaitEnd returned before the hour was up")
	}
}
