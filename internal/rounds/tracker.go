package rounds

import (
	"context"
	"fmt"
	"sync"

	"unidir/internal/syncx"
	"unidir/internal/types"
)

// tracker is the shared bookkeeping core of every round system: the table of
// first-seen round messages per (round, sender), the exactly-once delivery
// stream, send-order enforcement, observer reporting, and wakeups for
// predicate waiters.
type tracker struct {
	self types.ProcessID
	m    types.Membership
	obs  Observer

	mu       sync.Mutex
	table    map[types.Round]map[types.ProcessID][]byte
	lastSent types.Round
	closed   bool

	inbox *syncx.Queue[Msg]
	pulse *syncx.Pulse
}

func newTracker(self types.ProcessID, m types.Membership, obs Observer) *tracker {
	return &tracker{
		self:  self,
		m:     m,
		obs:   obs,
		table: make(map[types.Round]map[types.ProcessID][]byte),
		inbox: syncx.NewQueue[Msg](),
		pulse: syncx.NewPulse(),
	}
}

// markSent enforces the strictly-increasing round discipline, records the
// process's own message, and reports Sent (and the previous round's
// Boundary) to the observer. It returns ErrRoundOrder on misuse.
func (t *tracker) markSent(r types.Round, data []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	if r <= t.lastSent {
		last := t.lastSent
		t.mu.Unlock()
		return errRoundOrder("Send", r, last)
	}
	prev := t.lastSent
	t.lastSent = r
	t.recordLocked(t.self, r, data)
	t.mu.Unlock()
	if t.obs != nil {
		if prev > 0 {
			t.obs.Boundary(t.self, prev)
		}
		t.obs.Sent(t.self, r)
	}
	t.pulse.Fire()
	return nil
}

// recordAux delivers an out-of-round message on the stream (no table entry,
// no deduplication, no observer events).
func (t *tracker) recordAux(from types.ProcessID, data []byte) {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return
	}
	t.inbox.Push(Msg{From: from, Round: 0, Data: data})
	t.pulse.Fire()
}

// record stores a peer's round message (first value wins per (round,
// sender)), delivers it on the stream, reports Got, and wakes waiters.
// Duplicate (round, sender) pairs are dropped entirely.
func (t *tracker) record(from types.ProcessID, r types.Round, data []byte) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	if byRound := t.table[r]; byRound != nil {
		if _, dup := byRound[from]; dup {
			t.mu.Unlock()
			return
		}
	}
	t.recordLocked(from, r, data)
	t.mu.Unlock()
	if from != t.self {
		t.inbox.Push(Msg{From: from, Round: r, Data: data})
	}
	if t.obs != nil && from != t.self {
		t.obs.Got(t.self, from, r)
	}
	t.pulse.Fire()
}

func (t *tracker) recordLocked(from types.ProcessID, r types.Round, data []byte) {
	byRound := t.table[r]
	if byRound == nil {
		byRound = make(map[types.ProcessID][]byte)
		t.table[r] = byRound
	}
	if _, dup := byRound[from]; !dup {
		byRound[from] = data
	}
}

// requireNotSent returns ErrRoundOrder if r would violate the
// strictly-increasing send discipline (pre-check for systems that must
// perform external work before markSent).
func (t *tracker) requireNotSent(r types.Round) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if r <= t.lastSent {
		return errRoundOrder("Send", r, t.lastSent)
	}
	return nil
}

// requireSent returns ErrRoundOrder unless this process already sent round r.
func (t *tracker) requireSent(r types.Round) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.table[r][t.self]; !ok {
		return errRoundOrder("WaitEnd", r, t.lastSent)
	}
	return nil
}

// snapshot returns a copy of round r's message table.
func (t *tracker) snapshot(r types.Round) map[types.ProcessID][]byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[types.ProcessID][]byte, len(t.table[r]))
	for from, data := range t.table[r] {
		out[from] = data
	}
	return out
}

// count returns the number of distinct senders recorded for round r.
func (t *tracker) count(r types.Round) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.table[r])
}

// has reports whether a message from q in round r has been recorded.
func (t *tracker) has(r types.Round, q types.ProcessID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.table[r][q]
	return ok
}

// waitFor blocks until pred() is true, ctx is done, or the tracker closes.
// pred is evaluated without the tracker lock held; it must use tracker
// accessors itself.
func (t *tracker) waitFor(ctx context.Context, pred func() bool) error {
	for {
		ch := t.pulse.Wait()
		if pred() {
			return nil
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return ErrClosed
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// recv pops the next stream message.
func (t *tracker) recv(ctx context.Context) (Msg, error) {
	msg, err := t.inbox.Pop(ctx)
	if err == syncx.ErrQueueClosed {
		return Msg{}, ErrClosed
	}
	return msg, err
}

// close shuts the tracker down: reports the final Boundary, closes the
// stream, and wakes all waiters. Idempotent.
func (t *tracker) close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	last := t.lastSent
	t.mu.Unlock()
	if t.obs != nil && last > 0 {
		t.obs.Boundary(t.self, last)
	}
	t.inbox.Close()
	t.pulse.Fire()
}

func errRoundOrder(op string, r, last types.Round) error {
	return fmt.Errorf("%w: %s(%d) with last sent round %d", ErrRoundOrder, op, r, last)
}
