package rounds

import (
	"context"
	"fmt"
	"time"

	"unidir/internal/transport"
	"unidir/internal/types"
)

// DeltaSync implements rounds in the Δ-synchronous model: every message
// arrives within a known bound Δ of being sent, but processes' clocks and
// round starts are not synchronized. A process ends its round a fixed Wait
// after its own send.
//
// The paper's observation (communication-models section): this timing
// discipline yields *unidirectionality* with Wait >= Δ — of two correct
// processes that both send in round r, the later sender receives the
// earlier one's message before its own round ends (it was sent no later
// than the receiver's send and so arrives within Δ of it) — while
// bidirectionality would additionally require synchronized round starts
// (lock-step; see Lockstep) or Wait >= 2Δ plus an explicit start barrier.
// Waiting less than Δ guarantees nothing beyond zero-directionality.
//
// Pair it with a network whose delays really are bounded by Δ (for
// example simnet.WithJitter(Δ, seed)); against an unbounded adversary the
// model's premise, and hence the property, is void — that distinction is
// exactly the synchrony-versus-hardware trade the paper opens with.
type DeltaSync struct {
	t    *tracker
	tr   transport.Transport
	wait time.Duration

	sentAt map[types.Round]time.Time

	cancel context.CancelFunc
	done   chan struct{}
}

var _ System = (*DeltaSync)(nil)

// DeltaSyncOption configures NewDeltaSync.
type DeltaSyncOption func(*DeltaSync)

// WithDeltaSyncObserver attaches a property-checking observer.
func WithDeltaSyncObserver(obs Observer) DeltaSyncOption {
	return func(d *DeltaSync) { d.t.obs = obs }
}

// NewDeltaSync creates a Δ-synchronous round system that ends each round
// wait after this process's send. For the unidirectionality guarantee,
// wait must be at least the network's actual delay bound.
func NewDeltaSync(tr transport.Transport, m types.Membership, wait time.Duration, opts ...DeltaSyncOption) (*DeltaSync, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if !m.Contains(tr.Self()) {
		return nil, fmt.Errorf("rounds: transport endpoint %v not in membership", tr.Self())
	}
	if wait <= 0 {
		return nil, fmt.Errorf("rounds: deltasync wait must be positive, got %v", wait)
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &DeltaSync{
		t:      newTracker(tr.Self(), m, nil),
		tr:     tr,
		wait:   wait,
		sentAt: make(map[types.Round]time.Time),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	for _, opt := range opts {
		opt(d)
	}
	go d.recvLoop(ctx)
	return d, nil
}

// Self returns this process's ID.
func (d *DeltaSync) Self() types.ProcessID { return d.t.self }

// Membership returns the process group.
func (d *DeltaSync) Membership() types.Membership { return d.t.m }

// Send broadcasts this process's round-r message and starts its Δ-timer.
func (d *DeltaSync) Send(r types.Round, data []byte) error {
	if err := d.t.requireNotSent(r); err != nil {
		return err
	}
	payload := encodeRoundMsg(r, data)
	if err := transport.Broadcast(d.tr, d.t.m.Others(d.t.self), payload); err != nil {
		return fmt.Errorf("rounds: deltasync broadcast: %w", err)
	}
	d.t.mu.Lock()
	d.sentAt[r] = time.Now()
	d.t.mu.Unlock()
	return d.t.markSent(r, data)
}

// SendAux broadcasts an out-of-round message. It does not loop back to self.
func (d *DeltaSync) SendAux(data []byte) error {
	payload := encodeRoundMsg(AuxRound, data)
	if err := transport.Broadcast(d.tr, d.t.m.Others(d.t.self), payload); err != nil {
		return fmt.Errorf("rounds: deltasync aux broadcast: %w", err)
	}
	return nil
}

// WaitEnd blocks until wait has elapsed since this process's round-r send.
func (d *DeltaSync) WaitEnd(ctx context.Context, r types.Round) (map[types.ProcessID][]byte, error) {
	if err := d.t.requireSent(r); err != nil {
		return nil, err
	}
	d.t.mu.Lock()
	deadline := d.sentAt[r].Add(d.wait)
	d.t.mu.Unlock()
	if remaining := time.Until(deadline); remaining > 0 {
		timer := time.NewTimer(remaining)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return d.t.snapshot(r), nil
}

// Recv returns the next received round message.
func (d *DeltaSync) Recv(ctx context.Context) (Msg, error) { return d.t.recv(ctx) }

// Close stops the receive loop and unblocks waiters.
func (d *DeltaSync) Close() error {
	d.cancel()
	<-d.done
	d.t.close()
	return nil
}

func (d *DeltaSync) recvLoop(ctx context.Context) {
	defer close(d.done)
	for {
		env, err := d.tr.Recv(ctx)
		if err != nil {
			return
		}
		r, data, err := decodeRoundMsg(env.Payload)
		if err != nil {
			continue
		}
		if r == AuxRound {
			d.t.recordAux(env.From, data)
			continue
		}
		d.t.record(env.From, r, data)
	}
}
