package rounds

import (
	"context"
	"fmt"

	"unidir/internal/transport"
	"unidir/internal/types"
)

// Lockstep implements bidirectional rounds — the lock-step synchronous
// model: a round ends only when the round-r messages of every *live*
// process have arrived, so every correct-to-correct message is received
// before the receiver's next round.
//
// Model note: real synchronous systems obtain the live set from the bound Δ
// (a silent process is provably crashed after Δ). This simulation has no Δ,
// so the harness plays the synchronous scheduler and supplies the live set
// up front via SetLive (everyone is live by default). Byzantine-but-present
// processes must still send *something* each round, exactly as in the
// lock-step model where a missing message is detectably missing.
type Lockstep struct {
	t    *tracker
	tr   transport.Transport
	live map[types.ProcessID]bool

	cancel context.CancelFunc
	done   chan struct{}
}

var _ System = (*Lockstep)(nil)

// LockstepOption configures NewLockstep.
type LockstepOption func(*Lockstep)

// WithLockstepObserver attaches a property-checking observer.
func WithLockstepObserver(obs Observer) LockstepOption {
	return func(l *Lockstep) { l.t.obs = obs }
}

// WithLive restricts the live set (default: all members).
func WithLive(live []types.ProcessID) LockstepOption {
	return func(l *Lockstep) {
		l.live = make(map[types.ProcessID]bool, len(live))
		for _, p := range live {
			l.live[p] = true
		}
	}
}

// NewLockstep creates the bidirectional round system for tr's process.
func NewLockstep(tr transport.Transport, m types.Membership, opts ...LockstepOption) (*Lockstep, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if !m.Contains(tr.Self()) {
		return nil, fmt.Errorf("rounds: transport endpoint %v not in membership", tr.Self())
	}
	ctx, cancel := context.WithCancel(context.Background())
	l := &Lockstep{
		t:      newTracker(tr.Self(), m, nil),
		tr:     tr,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	for _, opt := range opts {
		opt(l)
	}
	if l.live == nil {
		l.live = make(map[types.ProcessID]bool, m.N)
		for _, p := range m.All() {
			l.live[p] = true
		}
	}
	go l.recvLoop(ctx)
	return l, nil
}

// Self returns this process's ID.
func (l *Lockstep) Self() types.ProcessID { return l.t.self }

// Membership returns the process group.
func (l *Lockstep) Membership() types.Membership { return l.t.m }

// Send broadcasts this process's round-r message.
func (l *Lockstep) Send(r types.Round, data []byte) error {
	if err := l.t.requireNotSent(r); err != nil {
		return err
	}
	payload := encodeRoundMsg(r, data)
	if err := transport.Broadcast(l.tr, l.t.m.Others(l.t.self), payload); err != nil {
		return fmt.Errorf("rounds: lockstep broadcast: %w", err)
	}
	return l.t.markSent(r, data)
}

// SendAux broadcasts an out-of-round message. It does not loop back to self.
func (l *Lockstep) SendAux(data []byte) error {
	payload := encodeRoundMsg(AuxRound, data)
	if err := transport.Broadcast(l.tr, l.t.m.Others(l.t.self), payload); err != nil {
		return fmt.Errorf("rounds: lockstep aux broadcast: %w", err)
	}
	return nil
}

// WaitEnd blocks until every live process's round-r message has arrived.
func (l *Lockstep) WaitEnd(ctx context.Context, r types.Round) (map[types.ProcessID][]byte, error) {
	if err := l.t.requireSent(r); err != nil {
		return nil, err
	}
	pred := func() bool {
		for p := range l.live {
			if !l.t.has(r, p) {
				return false
			}
		}
		return true
	}
	if err := l.t.waitFor(ctx, pred); err != nil {
		return nil, err
	}
	return l.t.snapshot(r), nil
}

// Recv returns the next received round message.
func (l *Lockstep) Recv(ctx context.Context) (Msg, error) { return l.t.recv(ctx) }

// Close stops the receive loop and unblocks waiters.
func (l *Lockstep) Close() error {
	l.cancel()
	<-l.done
	l.t.close()
	return nil
}

func (l *Lockstep) recvLoop(ctx context.Context) {
	defer close(l.done)
	for {
		env, err := l.tr.Recv(ctx)
		if err != nil {
			return
		}
		r, data, err := decodeRoundMsg(env.Payload)
		if err != nil {
			continue
		}
		if r == AuxRound {
			l.t.recordAux(env.From, data)
			continue
		}
		l.t.record(env.From, r, data)
	}
}
