package rounds

import (
	"context"
	"fmt"

	"unidir/internal/transport"
	"unidir/internal/types"
)

// Async implements zero-directional rounds over plain asynchronous message
// passing: Send broadcasts (r, m) to all processes, and a round ends once
// round-r messages from n-f distinct processes (counting self) have
// arrived — the most any process may safely block on under asynchrony,
// since the other f may be faulty and forever silent.
//
// This is the strongest round discipline asynchrony (or any medium that
// guarantees only eventual delivery, such as sequenced reliable broadcast)
// supports: the separation experiment in internal/separation drives it into
// unidirectionality violations exactly as in the paper's §4.1 argument.
type Async struct {
	t  *tracker
	tr transport.Transport

	cancel context.CancelFunc
	done   chan struct{}
}

var _ System = (*Async)(nil)

// AsyncOption configures NewAsync.
type AsyncOption func(*Async)

// WithAsyncObserver attaches a property-checking observer.
func WithAsyncObserver(obs Observer) AsyncOption {
	return func(a *Async) { a.t.obs = obs }
}

// NewAsync creates the zero-directional round system for tr's process.
func NewAsync(tr transport.Transport, m types.Membership, opts ...AsyncOption) (*Async, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if !m.Contains(tr.Self()) {
		return nil, fmt.Errorf("rounds: transport endpoint %v not in membership", tr.Self())
	}
	ctx, cancel := context.WithCancel(context.Background())
	a := &Async{
		t:      newTracker(tr.Self(), m, nil),
		tr:     tr,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	for _, opt := range opts {
		opt(a)
	}
	go a.recvLoop(ctx)
	return a, nil
}

// Self returns this process's ID.
func (a *Async) Self() types.ProcessID { return a.t.self }

// Membership returns the process group.
func (a *Async) Membership() types.Membership { return a.t.m }

// Send broadcasts this process's round-r message to every other process.
func (a *Async) Send(r types.Round, data []byte) error {
	if err := a.t.requireNotSent(r); err != nil {
		return err
	}
	payload := encodeRoundMsg(r, data)
	if err := transport.Broadcast(a.tr, a.t.m.Others(a.t.self), payload); err != nil {
		return fmt.Errorf("rounds: async broadcast: %w", err)
	}
	return a.t.markSent(r, data)
}

// SendAux broadcasts an out-of-round message. It does not loop back to self.
func (a *Async) SendAux(data []byte) error {
	payload := encodeRoundMsg(AuxRound, data)
	if err := transport.Broadcast(a.tr, a.t.m.Others(a.t.self), payload); err != nil {
		return fmt.Errorf("rounds: async aux broadcast: %w", err)
	}
	return nil
}

// WaitEnd blocks until round-r messages from n-f distinct processes
// (counting self) have arrived.
func (a *Async) WaitEnd(ctx context.Context, r types.Round) (map[types.ProcessID][]byte, error) {
	if err := a.t.requireSent(r); err != nil {
		return nil, err
	}
	need := a.t.m.Correct()
	if err := a.t.waitFor(ctx, func() bool { return a.t.count(r) >= need }); err != nil {
		return nil, err
	}
	return a.t.snapshot(r), nil
}

// Recv returns the next received round message.
func (a *Async) Recv(ctx context.Context) (Msg, error) { return a.t.recv(ctx) }

// Close stops the receive loop and unblocks waiters.
func (a *Async) Close() error {
	a.cancel()
	<-a.done
	a.t.close()
	return nil
}

func (a *Async) recvLoop(ctx context.Context) {
	defer close(a.done)
	for {
		env, err := a.tr.Recv(ctx)
		if err != nil {
			return
		}
		r, data, err := decodeRoundMsg(env.Payload)
		if err != nil {
			continue // Byzantine garbage
		}
		if r == AuxRound {
			a.t.recordAux(env.From, data)
			continue
		}
		a.t.record(env.From, r, data)
	}
}
