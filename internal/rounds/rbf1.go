package rounds

import (
	"context"
	"fmt"
	"sync"

	"unidir/internal/sig"
	"unidir/internal/transport"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// RBF1 implements unidirectional rounds from reliable (eventual-delivery)
// broadcast in the paper's corner case f = 1, n >= 3 (Appendix B):
//
//	Phase 1: send (v, σ_p) to all; wait for valid phase-1 messages from
//	         n-1 distinct processes (counting self).
//	Phase 2: forward all phase-1 messages received to all; wait for valid
//	         phase-2 bundles from n-1 distinct processes, each containing
//	         >= n-1 distinct validly signed values.
//
// A process receives q's round-r message if it sees (v_q, σ_q) either
// directly or inside any phase-2 bundle. The proof: with at most one faulty
// process, every third party's bundle carries all but at most one phase-1
// value, so for any correct pair (p, q) at least one direction gets through
// by the end of phase 2.
type RBF1 struct {
	t    *tracker
	tr   transport.Transport
	ring *sig.Keyring

	mu     sync.Mutex
	rounds map[types.Round]*rbRound

	cancel context.CancelFunc
	done   chan struct{}
}

type rbRound struct {
	sigs    map[types.ProcessID][]byte // signature per sender whose value we hold
	p2From  map[types.ProcessID]bool   // senders of valid phase-2 bundles
	bundled bool                       // this process already sent its bundle
}

var _ System = (*RBF1)(nil)

const (
	rbPhase1 byte = 1
	rbPhase2 byte = 2
	rbAux    byte = 3
)

const rbDomain = "unidir/rounds/rbf1/p1"

// RBF1Option configures NewRBF1.
type RBF1Option func(*RBF1)

// WithRBF1Observer attaches a property-checking observer.
func WithRBF1Observer(obs Observer) RBF1Option {
	return func(s *RBF1) { s.t.obs = obs }
}

// NewRBF1 creates the corner-case round system. It requires f <= 1 and
// n >= 3, the regime in which the construction is proven correct.
func NewRBF1(tr transport.Transport, m types.Membership, ring *sig.Keyring, opts ...RBF1Option) (*RBF1, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.F > 1 || m.N < 3 {
		return nil, fmt.Errorf("rounds: rbf1 requires f<=1 and n>=3, got n=%d f=%d", m.N, m.F)
	}
	if !m.Contains(tr.Self()) || ring.Self() != tr.Self() {
		return nil, fmt.Errorf("rounds: endpoint %v / keyring %v mismatch", tr.Self(), ring.Self())
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &RBF1{
		t:      newTracker(tr.Self(), m, nil),
		tr:     tr,
		ring:   ring,
		rounds: make(map[types.Round]*rbRound),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	go s.recvLoop(ctx)
	return s, nil
}

// Self returns this process's ID.
func (s *RBF1) Self() types.ProcessID { return s.t.self }

// Membership returns the process group.
func (s *RBF1) Membership() types.Membership { return s.t.m }

func (s *RBF1) roundState(r types.Round) *rbRound {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.rounds[r]
	if st == nil {
		st = &rbRound{
			sigs:   make(map[types.ProcessID][]byte),
			p2From: make(map[types.ProcessID]bool),
		}
		s.rounds[r] = st
	}
	return st
}

func p1Bytes(r types.Round, data []byte) []byte {
	e := wire.NewEncoder(32 + len(data))
	e.String(rbDomain)
	e.Uint64(uint64(r))
	e.BytesField(data)
	return e.Bytes()
}

// Send signs and broadcasts this process's phase-1 message for round r.
func (s *RBF1) Send(r types.Round, data []byte) error {
	if err := s.t.requireNotSent(r); err != nil {
		return err
	}
	signature := s.ring.Sign(p1Bytes(r, data))
	st := s.roundState(r)
	s.mu.Lock()
	st.sigs[s.t.self] = signature
	s.mu.Unlock()

	e := wire.NewEncoder(64 + len(data))
	e.Byte(rbPhase1)
	e.Uint64(uint64(r))
	e.BytesField(data)
	e.BytesField(signature)
	if err := transport.Broadcast(s.tr, s.t.m.Others(s.t.self), e.Bytes()); err != nil {
		return fmt.Errorf("rounds: rbf1 phase-1 broadcast: %w", err)
	}
	return s.t.markSent(r, data)
}

// SendAux broadcasts an out-of-round message. It does not loop back to self.
func (s *RBF1) SendAux(data []byte) error {
	e := wire.NewEncoder(8 + len(data))
	e.Byte(rbAux)
	e.BytesField(data)
	if err := transport.Broadcast(s.tr, s.t.m.Others(s.t.self), e.Bytes()); err != nil {
		return fmt.Errorf("rounds: rbf1 aux broadcast: %w", err)
	}
	return nil
}

// WaitEnd runs the two waiting phases of the protocol for round r and
// returns the values received.
func (s *RBF1) WaitEnd(ctx context.Context, r types.Round) (map[types.ProcessID][]byte, error) {
	if err := s.t.requireSent(r); err != nil {
		return nil, err
	}
	need := s.t.m.N - 1
	// Phase 1: n-1 distinct signed values (self included).
	if err := s.t.waitFor(ctx, func() bool { return s.t.count(r) >= need }); err != nil {
		return nil, err
	}
	// Phase 2: forward everything we have, once.
	if err := s.sendBundle(r); err != nil {
		return nil, err
	}
	st := s.roundState(r)
	if err := s.t.waitFor(ctx, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(st.p2From) >= need
	}); err != nil {
		return nil, err
	}
	return s.t.snapshot(r), nil
}

// sendBundle broadcasts this process's phase-2 bundle for round r (once).
func (s *RBF1) sendBundle(r types.Round) error {
	st := s.roundState(r)
	vals := s.t.snapshot(r)
	s.mu.Lock()
	if st.bundled {
		s.mu.Unlock()
		return nil
	}
	st.bundled = true
	st.p2From[s.t.self] = true // own bundle counts
	type entry struct {
		owner types.ProcessID
		data  []byte
		sig   []byte
	}
	var entries []entry
	for owner, signature := range st.sigs {
		if data, ok := vals[owner]; ok {
			entries = append(entries, entry{owner, data, signature})
		}
	}
	s.mu.Unlock()

	e := wire.NewEncoder(64)
	e.Byte(rbPhase2)
	e.Uint64(uint64(r))
	e.Int(len(entries))
	for _, en := range entries {
		e.Int(int(en.owner))
		e.BytesField(en.data)
		e.BytesField(en.sig)
	}
	if err := transport.Broadcast(s.tr, s.t.m.Others(s.t.self), e.Bytes()); err != nil {
		return fmt.Errorf("rounds: rbf1 phase-2 broadcast: %w", err)
	}
	s.t.pulse.Fire()
	return nil
}

// Recv returns the next received round message.
func (s *RBF1) Recv(ctx context.Context) (Msg, error) { return s.t.recv(ctx) }

// Close stops the receive loop and unblocks waiters.
func (s *RBF1) Close() error {
	s.cancel()
	<-s.done
	s.t.close()
	return nil
}

func (s *RBF1) recvLoop(ctx context.Context) {
	defer close(s.done)
	for {
		env, err := s.tr.Recv(ctx)
		if err != nil {
			return
		}
		s.handle(env.From, env.Payload)
	}
}

func (s *RBF1) handle(from types.ProcessID, payload []byte) {
	if len(payload) == 0 {
		return
	}
	d := wire.NewDecoder(payload)
	switch d.Byte() {
	case rbAux:
		data := append([]byte(nil), d.BytesField()...)
		if d.Finish() != nil {
			return
		}
		s.t.recordAux(from, data)
	case rbPhase1:
		r := types.Round(d.Uint64())
		data := append([]byte(nil), d.BytesField()...)
		signature := append([]byte(nil), d.BytesField()...)
		if d.Finish() != nil {
			return
		}
		s.accept(r, from, data, signature)
	case rbPhase2:
		r := types.Round(d.Uint64())
		n := d.Int()
		if d.Err() != nil || n < 0 || n > s.t.m.N {
			return
		}
		distinct := make(map[types.ProcessID]bool, n)
		for i := 0; i < n; i++ {
			owner := types.ProcessID(d.Int())
			data := append([]byte(nil), d.BytesField()...)
			signature := append([]byte(nil), d.BytesField()...)
			if d.Err() != nil {
				return
			}
			if s.accept(r, owner, data, signature) {
				distinct[owner] = true
			}
		}
		if d.Finish() != nil {
			return
		}
		// The bundle counts toward phase 2 only if it carries >= n-1
		// distinct validly signed values.
		if len(distinct) >= s.t.m.N-1 {
			st := s.roundState(r)
			s.mu.Lock()
			st.p2From[from] = true
			s.mu.Unlock()
			s.t.pulse.Fire()
		}
	}
}

// accept validates a signed phase-1 value (direct or forwarded) and records
// it. It reports whether the signature was valid, regardless of whether the
// value was new.
func (s *RBF1) accept(r types.Round, owner types.ProcessID, data, signature []byte) bool {
	if !s.t.m.Contains(owner) {
		return false
	}
	if err := s.ring.Verify(owner, p1Bytes(r, data), signature); err != nil {
		return false
	}
	if owner != s.t.self {
		st := s.roundState(r)
		s.mu.Lock()
		if _, ok := st.sigs[owner]; !ok {
			st.sigs[owner] = signature
		}
		s.mu.Unlock()
		s.t.record(owner, r, data)
	}
	return true
}
