// Package kvstore is the replicated application used by the examples and
// benchmarks: a deterministic key-value store implementing smr.StateMachine,
// with a typed command encoding and a typed client wrapper over smr.Client.
package kvstore

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"unidir/internal/smr"
	"unidir/internal/wire"
)

// Command opcodes.
const (
	opGet byte = iota + 1
	opPut
	opDel
)

// Results begin with a status byte.
const (
	statusOK       byte = 0
	statusNotFound byte = 1
	statusBadCmd   byte = 2
)

// ErrNotFound reports a Get/Del of a missing key.
var ErrNotFound = errors.New("kvstore: key not found")

// Store is a deterministic in-memory key-value state machine. It is not
// concurrency-safe by design: replicas apply commands from one goroutine
// (see smr.StateMachine).
type Store struct {
	data map[string][]byte
}

var (
	_ smr.Snapshotter = (*Store)(nil)
	_ smr.Querier     = (*Store)(nil)
)

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[string][]byte)}
}

// Len returns the number of keys.
func (s *Store) Len() int { return len(s.data) }

// maxSnapshotKeys bounds decoded snapshots (defensive).
const maxSnapshotKeys = 1 << 24

// Snapshot returns a deterministic encoding of the full store: keys in
// sorted order, so replicas that applied the same command sequence produce
// byte-identical snapshots (checkpoint certificates vote on the digest).
func (s *Store) Snapshot() []byte {
	keys := make([]string, 0, len(s.data))
	size := 16
	for k, v := range s.data {
		keys = append(keys, k)
		size += 16 + len(k) + len(v)
	}
	sort.Strings(keys)
	e := wire.NewEncoder(size)
	e.Int(len(keys))
	for _, k := range keys {
		e.String(k)
		e.BytesField(s.data[k])
	}
	return e.Bytes()
}

// Restore replaces the store's contents with a previously snapshotted state.
func (s *Store) Restore(snap []byte) error {
	d := wire.NewDecoder(snap)
	n := d.Int()
	if err := d.Err(); err != nil {
		return fmt.Errorf("kvstore: decode snapshot: %w", err)
	}
	if n < 0 || n > maxSnapshotKeys {
		return fmt.Errorf("kvstore: snapshot with %d keys", n)
	}
	data := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		k := d.String()
		data[k] = append([]byte(nil), d.BytesField()...)
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("kvstore: decode snapshot: %w", err)
	}
	s.data = data
	return nil
}

// Query answers a read-only command without mutating the store; it is the
// smr.Querier hook behind the leased-read fast path. Only GET is read-only:
// PUT, DEL, and malformed commands answer BadCmd (a correct client never
// routes them here, and the status is deterministic for fallback votes).
func (s *Store) Query(cmd []byte) []byte {
	d := wire.NewDecoder(cmd)
	op := d.Byte()
	key := d.String()
	if op != opGet || d.Finish() != nil {
		return []byte{statusBadCmd}
	}
	v, ok := s.data[key]
	if !ok {
		return []byte{statusNotFound}
	}
	return append([]byte{statusOK}, v...)
}

// Apply executes one encoded command. Malformed commands yield a BadCmd
// status deterministically (they must not crash the replica: a Byzantine
// client's garbage is ordered like any other command).
func (s *Store) Apply(cmd []byte) []byte {
	d := wire.NewDecoder(cmd)
	op := d.Byte()
	key := d.String()
	switch op {
	case opGet:
		if d.Finish() != nil {
			return []byte{statusBadCmd}
		}
		v, ok := s.data[key]
		if !ok {
			return []byte{statusNotFound}
		}
		return append([]byte{statusOK}, v...)
	case opPut:
		val := d.BytesField()
		if d.Finish() != nil {
			return []byte{statusBadCmd}
		}
		s.data[key] = append([]byte(nil), val...)
		return []byte{statusOK}
	case opDel:
		if d.Finish() != nil {
			return []byte{statusBadCmd}
		}
		if _, ok := s.data[key]; !ok {
			return []byte{statusNotFound}
		}
		delete(s.data, key)
		return []byte{statusOK}
	default:
		return []byte{statusBadCmd}
	}
}

// EncodeGet builds a GET command.
func EncodeGet(key string) []byte {
	e := wire.NewEncoder(8 + len(key))
	e.Byte(opGet)
	e.String(key)
	return e.Bytes()
}

// EncodePut builds a PUT command.
func EncodePut(key string, value []byte) []byte {
	e := wire.NewEncoder(16 + len(key) + len(value))
	e.Byte(opPut)
	e.String(key)
	e.BytesField(value)
	return e.Bytes()
}

// EncodeDel builds a DEL command.
func EncodeDel(key string) []byte {
	e := wire.NewEncoder(8 + len(key))
	e.Byte(opDel)
	e.String(key)
	return e.Bytes()
}

// Client wraps an smr.Client with typed key-value operations.
type Client struct {
	c *smr.Client
}

// NewClient wraps c.
func NewClient(c *smr.Client) *Client { return &Client{c: c} }

// Get fetches a key's value.
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	res, err := c.c.Invoke(ctx, EncodeGet(key))
	if err != nil {
		return nil, err
	}
	return decodeResult(res)
}

// Put stores a key.
func (c *Client) Put(ctx context.Context, key string, value []byte) error {
	res, err := c.c.Invoke(ctx, EncodePut(key, value))
	if err != nil {
		return err
	}
	_, err = decodeResult(res)
	return err
}

// Del removes a key.
func (c *Client) Del(ctx context.Context, key string) error {
	res, err := c.c.Invoke(ctx, EncodeDel(key))
	if err != nil {
		return err
	}
	_, err = decodeResult(res)
	return err
}

// PipeClient wraps an smr.Pipeline with typed key-value operations: the
// synchronous calls mirror Client's, and PutAsync exposes the pipeline's
// windowed submission for load generators that keep many puts in flight.
type PipeClient struct {
	p *smr.Pipeline
}

// NewPipeClient wraps p.
func NewPipeClient(p *smr.Pipeline) *PipeClient { return &PipeClient{p: p} }

// PutAsync submits a PUT and returns without waiting; it blocks only while
// the pipeline's in-flight window is full.
func (c *PipeClient) PutAsync(ctx context.Context, key string, value []byte) (*smr.Call, error) {
	return c.p.Submit(ctx, EncodePut(key, value))
}

// GetAsync submits a GET on the read fast path and returns without waiting;
// it blocks only while the pipeline's read window is full. The read is
// answered by a single leased reply from the leader or by a quorum of
// matching fallback votes (see smr/read.go).
func (c *PipeClient) GetAsync(ctx context.Context, key string) (*smr.ReadCall, error) {
	return c.p.SubmitRead(ctx, EncodeGet(key))
}

// GetFast fetches a key's value on the read fast path, waiting for the
// reply.
func (c *PipeClient) GetFast(ctx context.Context, key string) ([]byte, error) {
	res, err := c.p.InvokeRead(ctx, EncodeGet(key))
	if err != nil {
		return nil, err
	}
	return decodeResult(res)
}

// GetOrderedAsync submits a GET through the ordering path — the
// consensus-read baseline the leased fast path is measured against.
func (c *PipeClient) GetOrderedAsync(ctx context.Context, key string) (*smr.Call, error) {
	return c.p.Submit(ctx, EncodeGet(key))
}

// Window reports the pipeline's current effective in-flight window (shrinks
// under overload when AIMD adaptation is on).
func (c *PipeClient) Window() int { return c.p.Window() }

// Get fetches a key's value.
func (c *PipeClient) Get(ctx context.Context, key string) ([]byte, error) {
	res, err := c.p.Invoke(ctx, EncodeGet(key))
	if err != nil {
		return nil, err
	}
	return decodeResult(res)
}

// Put stores a key.
func (c *PipeClient) Put(ctx context.Context, key string, value []byte) error {
	res, err := c.p.Invoke(ctx, EncodePut(key, value))
	if err != nil {
		return err
	}
	_, err = decodeResult(res)
	return err
}

// Del removes a key.
func (c *PipeClient) Del(ctx context.Context, key string) error {
	res, err := c.p.Invoke(ctx, EncodeDel(key))
	if err != nil {
		return err
	}
	_, err = decodeResult(res)
	return err
}

func decodeResult(res []byte) ([]byte, error) {
	if len(res) == 0 {
		return nil, fmt.Errorf("kvstore: empty result")
	}
	switch res[0] {
	case statusOK:
		return res[1:], nil
	case statusNotFound:
		return nil, ErrNotFound
	default:
		return nil, fmt.Errorf("kvstore: malformed command")
	}
}
