package kvstore

import (
	"bytes"
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := New()
	s.Apply(EncodePut("a", []byte("1")))
	s.Apply(EncodePut("b", []byte{}))
	s.Apply(EncodePut("c", []byte("3")))
	s.Apply(EncodeDel("c"))

	snap := s.Snapshot()
	r := New()
	r.Apply(EncodePut("junk", []byte("pre-restore state must vanish")))
	if err := r.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !bytes.Equal(r.Snapshot(), snap) {
		t.Fatal("restored store snapshots differently")
	}
	if got := r.Apply(EncodeGet("a")); !bytes.Equal(got, append([]byte{statusOK}, '1')) {
		t.Fatalf("Get a after restore = %q", got)
	}
	if got := r.Apply(EncodeGet("junk")); got[0] != statusNotFound {
		t.Fatalf("pre-restore key survived: %q", got)
	}
	if got := r.Apply(EncodeGet("c")); got[0] != statusNotFound {
		t.Fatalf("deleted key resurrected by restore: %q", got)
	}
}

func TestSnapshotDeterministicAcrossInsertionOrder(t *testing.T) {
	a, b := New(), New()
	a.Apply(EncodePut("x", []byte("1")))
	a.Apply(EncodePut("y", []byte("2")))
	b.Apply(EncodePut("y", []byte("2")))
	b.Apply(EncodePut("x", []byte("1")))
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Fatal("snapshot depends on insertion order; checkpoint digests would diverge")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	s := New()
	s.Apply(EncodePut("keep", []byte("me")))
	if err := s.Restore([]byte{0xff, 0x01, 0x02}); err == nil {
		t.Fatal("Restore accepted garbage")
	}
}
