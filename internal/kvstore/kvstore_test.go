package kvstore

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestApplyPutGetDel(t *testing.T) {
	s := New()
	if res := s.Apply(EncodePut("k", []byte("v"))); res[0] != statusOK {
		t.Fatalf("put status = %d", res[0])
	}
	res := s.Apply(EncodeGet("k"))
	if res[0] != statusOK || string(res[1:]) != "v" {
		t.Fatalf("get = %v", res)
	}
	if res := s.Apply(EncodeDel("k")); res[0] != statusOK {
		t.Fatalf("del status = %d", res[0])
	}
	if res := s.Apply(EncodeGet("k")); res[0] != statusNotFound {
		t.Fatalf("get after del status = %d", res[0])
	}
	if res := s.Apply(EncodeDel("k")); res[0] != statusNotFound {
		t.Fatalf("del missing status = %d", res[0])
	}
}

func TestApplyMalformedCommands(t *testing.T) {
	s := New()
	for _, cmd := range [][]byte{nil, {}, {99}, {opPut, 1, 2}, append(EncodeGet("k"), 0xFF)} {
		res := s.Apply(cmd)
		if len(res) == 0 || res[0] != statusBadCmd {
			t.Fatalf("Apply(%v) = %v, want BadCmd", cmd, res)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("malformed commands mutated state: %d keys", s.Len())
	}
}

func TestDeterminism(t *testing.T) {
	// Identical command sequences yield identical result sequences — the
	// property SMR depends on.
	f := func(keys []uint8, vals [][]byte) bool {
		a, b := New(), New()
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			key := string([]byte{keys[i] % 8}) // few keys -> many collisions
			var cmd []byte
			switch i % 3 {
			case 0:
				cmd = EncodePut(key, vals[i])
			case 1:
				cmd = EncodeGet(key)
			default:
				cmd = EncodeDel(key)
			}
			if !bytes.Equal(a.Apply(cmd), b.Apply(cmd)) {
				return false
			}
		}
		return a.Len() == b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyValueRoundTrip(t *testing.T) {
	s := New()
	s.Apply(EncodePut("empty", nil))
	res := s.Apply(EncodeGet("empty"))
	if res[0] != statusOK || len(res) != 1 {
		t.Fatalf("get empty = %v", res)
	}
}
