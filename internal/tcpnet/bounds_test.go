package tcpnet

import (
	"testing"
	"time"

	"unidir/internal/wire"
)

// TestMaxFrameMatchesWireBound pins the framing limit to the codec's: any
// payload wire accepts must be framable, or a legal message would be
// silently undeliverable over TCP while working on simnet.
func TestMaxFrameMatchesWireBound(t *testing.T) {
	if maxFrame != wire.MaxPayload {
		t.Fatalf("maxFrame = %d, wire.MaxPayload = %d; the transport must frame every payload the codec accepts",
			maxFrame, wire.MaxPayload)
	}
}

func TestWithDialTimeout(t *testing.T) {
	cfg := Config{0: "127.0.0.1:0"}

	n, err := New(0, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if n.dialTimeout != defaultDialTimeout {
		t.Fatalf("default dial timeout = %v, want %v", n.dialTimeout, defaultDialTimeout)
	}
	_ = n.Close()

	n, err = New(0, cfg, WithDialTimeout(123*time.Millisecond))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if n.dialTimeout != 123*time.Millisecond {
		t.Fatalf("dial timeout = %v, want 123ms", n.dialTimeout)
	}
	_ = n.Close()

	// Non-positive restores the default rather than disabling the bound: a
	// dial that can hang forever would wedge the sender goroutine.
	n, err = New(0, cfg, WithDialTimeout(-1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if n.dialTimeout != defaultDialTimeout {
		t.Fatalf("dial timeout after WithDialTimeout(-1) = %v, want %v", n.dialTimeout, defaultDialTimeout)
	}
	_ = n.Close()
}
