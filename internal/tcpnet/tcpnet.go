// Package tcpnet implements transport.Transport over TCP, so every protocol
// in the library runs unchanged on a real network (see cmd/minbft-kv for a
// multi-process cluster demo).
//
// Semantics match simnet's asynchronous reliable channels: Send never
// blocks on the peer (each destination has an outbound queue drained by a
// writer goroutine that dials, frames, and transparently re-dials on
// failure), and Recv yields complete messages with the peer's claimed
// identity. The writer coalesces: each wakeup drains the whole outbound
// backlog through one buffered write and a single flush, and a
// per-connection write deadline (WithWriteTimeout) keeps a stalled peer
// from wedging its sender goroutine. Channel authentication is by the hello frame — a substitute
// for the mutually authenticated channels (TLS and friends) a production
// deployment would use; the simulation threat model treats transport
// identity as given, with all second-hand authentication done by
// signatures, exactly as in the paper's model.
//
// Wire format: a connection opens with a hello frame carrying the sender's
// process ID, then length-prefixed message frames (uint32 little-endian
// length, then the payload). Bit 31 of the length prefix
// (wire.FrameTraceFlag) version-gates an optional trailing trace-context
// block (tracing.ContextWireSize bytes) so sampled requests carry their
// trace across process boundaries; frames without the flag — including
// everything ever emitted before the flag existed — decode exactly as
// before.
package tcpnet

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"unidir/internal/obs"
	"unidir/internal/obs/tracing"
	"unidir/internal/syncx"
	"unidir/internal/transport"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// maxFrame bounds a single message (defensive). It must stay consistent
// with wire.MaxPayload — a payload the codec accepts must be framable —
// which bounds_test.go asserts.
const maxFrame = wire.MaxPayload

// defaultWriteTimeout bounds one coalesced write+flush. A peer that accepts
// but never reads would otherwise block the sender goroutine forever once
// the kernel buffers fill; on expiry the connection is dropped and redialed,
// and the undelivered frames are retried on the fresh connection.
const defaultWriteTimeout = 15 * time.Second

// defaultDialTimeout bounds one connection attempt (see WithDialTimeout).
const defaultDialTimeout = 2 * time.Second

// Config maps every process to its listen address ("host:port").
type Config map[types.ProcessID]string

// Option configures a Net.
type Option func(*Net)

// WithWriteTimeout bounds each coalesced frame write to a peer (default
// 15s). On expiry the connection is torn down and redialed with the
// unwritten frames retried, so one stalled peer cannot wedge its sender
// goroutine indefinitely. d <= 0 disables the deadline.
func WithWriteTimeout(d time.Duration) Option {
	return func(n *Net) { n.writeTimeout = d }
}

// WithDialTimeout bounds each outbound connection attempt (default 2s).
// Attempts also abort when the transport closes, whatever the timeout.
// d <= 0 restores the default.
func WithDialTimeout(d time.Duration) Option {
	return func(n *Net) {
		if d <= 0 {
			d = defaultDialTimeout
		}
		n.dialTimeout = d
	}
}

// WithMetrics publishes per-peer transport metrics into reg: frames and
// bytes written, coalesced batch sizes, outbound queue depth, dials, and
// dropped connections (write timeout or error) — write-timeout unwedges and
// queue-overflow drops under their own counters — plus a "tcpnet" trace
// ring of redial events. Without this option the instrumentation is free:
// every metric handle stays nil and each call site is a nil-check.
func WithMetrics(reg *obs.Registry) Option {
	return func(n *Net) { n.metrics = reg }
}

// WithQueueBound caps each peer's outbound queue at `frames` frames. A Send
// that would grow the queue past the bound drops the frame instead (counted
// under tcpnet_queue_dropped_frames_total) and still returns nil: the
// semantics stay "asynchronous, lossy-tolerated" — every protocol here
// retransmits and dedups — but a slow or dead peer can no longer grow the
// buffer without bound. The check is a racy snapshot, so the bound is
// approximate under concurrent senders. frames <= 0 (the default) keeps the
// queue unbounded.
func WithQueueBound(frames int) Option {
	return func(n *Net) {
		if frames < 0 {
			frames = 0
		}
		n.queueBound = frames
	}
}

// Net is one process's TCP transport endpoint.
type Net struct {
	self types.ProcessID
	cfg  Config

	writeTimeout time.Duration
	dialTimeout  time.Duration
	queueBound   int // max queued frames per peer; 0: unbounded

	metrics *obs.Registry
	trace   *obs.Trace // redial / drop events; nil without WithMetrics

	listener net.Listener
	inbox    *syncx.Queue[transport.Envelope]

	mu      sync.Mutex
	senders map[types.ProcessID]*sender
	conns   map[net.Conn]struct{}
	closed  bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

var (
	_ transport.Transport    = (*Net)(nil)
	_ transport.TraceSender  = (*Net)(nil)
	_ transport.QueueDepther = (*Net)(nil)
)

// outFrame is one queued outbound message: the payload plus the optional
// trace context that rides behind it on the wire.
type outFrame struct {
	payload []byte
	tc      tracing.Context
}

// wireSize is the frame's full on-wire size: length prefix, payload, and
// trace block when present.
func (f outFrame) wireSize() uint64 {
	n := uint64(len(f.payload)) + 4
	if f.tc.Valid() {
		n += tracing.ContextWireSize
	}
	return n
}

// appendFrame encodes one frame — length prefix (trace flag in bit 31),
// payload, optional trace block. writeBatch streams the same layout through
// its buffered writer; frame_test asserts the two stay identical.
func appendFrame(dst []byte, payload []byte, tc tracing.Context) []byte {
	traced := tc.Valid()
	dst = binary.LittleEndian.AppendUint32(dst, wire.EncodeFrameSize(len(payload), traced))
	dst = append(dst, payload...)
	if traced {
		dst = tc.AppendBinary(dst)
	}
	return dst
}

// readFrame reads one frame from r: the length prefix (validated against
// maxFrame after masking the trace flag), the payload, and — when the flag
// is set — the fixed-size trace block.
func readFrame(r io.Reader) ([]byte, tracing.Context, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, tracing.Context{}, err
	}
	size, traced := wire.DecodeFrameSize(binary.LittleEndian.Uint32(lenBuf[:]))
	if size > maxFrame {
		return nil, tracing.Context{}, fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, tracing.Context{}, err
	}
	if !traced {
		return payload, tracing.Context{}, nil
	}
	var tcBuf [tracing.ContextWireSize]byte
	if _, err := io.ReadFull(r, tcBuf[:]); err != nil {
		return nil, tracing.Context{}, err
	}
	tc, err := tracing.DecodeContext(tcBuf[:])
	if err != nil {
		return nil, tracing.Context{}, err
	}
	return payload, tc, nil
}

// New starts listening on cfg[self] and returns the endpoint.
func New(self types.ProcessID, cfg Config, opts ...Option) (*Net, error) {
	addr, ok := cfg[self]
	if !ok {
		return nil, fmt.Errorf("tcpnet: no address for %v", self)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Net{
		self:         self,
		cfg:          cfg,
		writeTimeout: defaultWriteTimeout,
		dialTimeout:  defaultDialTimeout,
		listener:     ln,
		inbox:        syncx.NewQueue[transport.Envelope](),
		senders:      make(map[types.ProcessID]*sender),
		conns:        make(map[net.Conn]struct{}),
		ctx:          ctx,
		cancel:       cancel,
	}
	for _, opt := range opts {
		opt(n)
	}
	n.trace = n.metrics.Trace(obs.Name("tcpnet", "self", self), 256)
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Self returns this process's ID.
func (n *Net) Self() types.ProcessID { return n.self }

// Addr returns the actual listen address (useful with ":0" configs).
func (n *Net) Addr() string { return n.listener.Addr().String() }

// Send enqueues payload for delivery to the destination process. A nil
// return means the transport accepted the message; after Close every Send
// reports transport.ErrClosed, even when it races the shutdown.
func (n *Net) Send(to types.ProcessID, payload []byte) error {
	return n.send(to, outFrame{payload: payload})
}

// SendTraced is Send with a trace context attached to the frame.
func (n *Net) SendTraced(to types.ProcessID, payload []byte, tc tracing.Context) error {
	return n.send(to, outFrame{payload: payload, tc: tc})
}

func (n *Net) send(to types.ProcessID, f outFrame) error {
	if to == n.self {
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return transport.ErrClosed
		}
		// Copy before delivery: the remote path hands the receiver a fresh
		// buffer (readLoop allocates per frame), so self-delivery must too —
		// callers reuse their encode buffers after Send returns.
		buf := append([]byte(nil), f.payload...)
		if !n.inbox.Push(transport.Envelope{From: n.self, To: n.self, Payload: buf, Trace: f.tc}) {
			return transport.ErrClosed
		}
		return nil
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return transport.ErrClosed
	}
	s := n.senders[to]
	if s == nil {
		addr, ok := n.cfg[to]
		if !ok {
			n.mu.Unlock()
			return fmt.Errorf("tcpnet: no address for %v", to)
		}
		s = newSender(n, to, addr)
		n.senders[to] = s
		n.wg.Add(1)
		go s.run()
	}
	n.mu.Unlock()
	if n.queueBound > 0 && s.queue.Len() >= n.queueBound {
		// Backpressure floor: drop rather than buffer without bound. The
		// frame is lost here exactly like on a dropped connection mid-batch;
		// the retransmission machinery above recovers.
		s.queueDrops.Inc()
		return nil
	}
	// Push reports acceptance: Close may have closed the queue between the
	// check above and here, and a dropped message must not look delivered.
	if !s.queue.Push(f) {
		return transport.ErrClosed
	}
	s.queueDepth.Set(int64(s.queue.Len()))
	return nil
}

// QueueDepth reports the number of frames currently buffered for delivery
// to one peer (0 for self or an unknown peer), implementing
// transport.QueueDepther: upper layers read it to pace proposals instead of
// letting a slow peer's queue absorb load silently. The value is a racy
// snapshot, fit for heuristics only.
func (n *Net) QueueDepth(to types.ProcessID) int {
	n.mu.Lock()
	s := n.senders[to]
	n.mu.Unlock()
	if s == nil {
		return 0
	}
	return s.queue.Len()
}

// Recv returns the next received message.
func (n *Net) Recv(ctx context.Context) (transport.Envelope, error) {
	env, err := n.inbox.Pop(ctx)
	if errors.Is(err, syncx.ErrQueueClosed) {
		return transport.Envelope{}, transport.ErrClosed
	}
	return env, err
}

// Close stops the listener, all connections, and unblocks Recv.
func (n *Net) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	for _, s := range n.senders {
		s.queue.Close()
	}
	for c := range n.conns {
		_ = c.Close()
	}
	n.mu.Unlock()
	n.cancel()
	_ = n.listener.Close()
	n.wg.Wait()
	n.inbox.Close()
	return nil
}

func (n *Net) trackConn(c net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	n.conns[c] = struct{}{}
	return true
}

func (n *Net) untrackConn(c net.Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// --- inbound ---

func (n *Net) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return
		}
		if !n.trackConn(conn) {
			_ = conn.Close()
			return
		}
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *Net) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer n.untrackConn(conn)
	defer conn.Close()

	var hello [8]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	from := types.ProcessID(int64(binary.LittleEndian.Uint64(hello[:])))
	if _, ok := n.cfg[from]; !ok {
		return // unknown peer
	}
	var rxFrames, rxBytes *obs.Counter
	if n.metrics != nil {
		rxFrames = n.metrics.Counter(obs.Name("tcpnet_rx_frames_total", "self", n.self, "peer", from))
		rxBytes = n.metrics.Counter(obs.Name("tcpnet_rx_bytes_total", "self", n.self, "peer", from))
	}
	br := bufio.NewReaderSize(conn, senderBufSize)
	for {
		payload, tc, err := readFrame(br)
		if err != nil {
			return
		}
		rxFrames.Inc()
		rxBytes.Add(outFrame{payload: payload, tc: tc}.wireSize())
		n.inbox.Push(transport.Envelope{From: from, To: n.self, Payload: payload, Trace: tc})
	}
}

// --- outbound ---

// senderBufSize sizes the per-connection write buffer. Most protocol frames
// here are well under 4KiB, so one flush typically covers dozens of frames.
const senderBufSize = 64 << 10

// sender drains one destination's queue over a (re)dialed connection. Each
// wakeup drains the *entire* backlog (PopAll, plus a TryPop sweep for frames
// that arrive while writing) through a buffered writer with a single flush,
// so under load the syscall count is per batch, not per frame.
//
// Delivery is at-least-once across reconnects: a write error mid-batch
// retries the whole batch on a fresh connection, and frames already flushed
// before the error are sent again. Every protocol in the library dedups
// (UI counter cursors, client tables, idempotent vote sets), matching the
// retransmitting clients that already re-send whole requests.
type sender struct {
	net   *Net
	to    types.ProcessID
	addr  string
	queue *syncx.Queue[outFrame]

	// Per-peer metric handles, all nil (free no-ops) without WithMetrics.
	frames     *obs.Counter
	bytes      *obs.Counter
	dials      *obs.Counter
	drops      *obs.Counter
	unwedges   *obs.Counter // conn drops caused by the write deadline expiring
	queueDrops *obs.Counter // frames dropped at the queue bound
	batchSize  *obs.Histogram
	queueDepth *obs.Gauge
}

func newSender(n *Net, to types.ProcessID, addr string) *sender {
	s := &sender{net: n, to: to, addr: addr, queue: syncx.NewQueue[outFrame]()}
	if reg := n.metrics; reg != nil {
		s.frames = reg.Counter(obs.Name("tcpnet_tx_frames_total", "self", n.self, "peer", to))
		s.bytes = reg.Counter(obs.Name("tcpnet_tx_bytes_total", "self", n.self, "peer", to))
		s.dials = reg.Counter(obs.Name("tcpnet_dials_total", "self", n.self, "peer", to))
		s.drops = reg.Counter(obs.Name("tcpnet_conn_drops_total", "self", n.self, "peer", to))
		s.unwedges = reg.Counter(obs.Name("tcpnet_write_timeout_unwedges_total", "self", n.self, "peer", to))
		s.queueDrops = reg.Counter(obs.Name("tcpnet_queue_dropped_frames_total", "self", n.self, "peer", to))
		s.batchSize = reg.Histogram(obs.Name("tcpnet_batch_frames", "self", n.self, "peer", to), obs.SizeBuckets)
		s.queueDepth = reg.Gauge(obs.Name("tcpnet_queue_depth", "self", n.self, "peer", to))
	}
	return s
}

func (s *sender) run() {
	defer s.net.wg.Done()
	var conn net.Conn
	var bw *bufio.Writer
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	drop := func(cause error) {
		_ = conn.Close()
		s.net.untrackConn(conn)
		conn, bw = nil, nil
		s.drops.Inc()
		// A deadline expiry is the stalled-peer unwedge working as designed
		// (the peer accepted but stopped reading); surface it separately
		// from ordinary connection errors.
		var ne net.Error
		if errors.As(cause, &ne) && ne.Timeout() {
			s.unwedges.Inc()
			s.net.trace.Record("write-timeout", "peer %v (%s): write deadline expired, unwedging sender", s.to, s.addr)
			return
		}
		s.net.trace.Record("conn-drop", "peer %v (%s): write failed, redialing", s.to, s.addr)
	}
	backoff := 10 * time.Millisecond
	// Reused across every redial wait: time.After in this loop allocated a
	// timer per attempt, and a sender stuck redialing a down peer ticks for
	// as long as the outage lasts.
	redial := syncx.NewStoppedTimer()
	for {
		batch, err := s.queue.PopAll(s.net.ctx)
		if err != nil {
			return
		}
		for len(batch) > 0 {
			if conn == nil {
				conn, err = s.dial()
				if err != nil {
					// Jittered exponential backoff: replicas restarting
					// together (a cluster-wide crash, a rolling restart)
					// would otherwise redial a still-down peer in lockstep
					// at identical deterministic intervals.
					wait := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
					if syncx.SleepTimer(s.net.ctx, redial, wait) != nil {
						return
					}
					if backoff < time.Second {
						backoff *= 2
					}
					continue
				}
				backoff = 10 * time.Millisecond
				bw = bufio.NewWriterSize(conn, senderBufSize)
				s.dials.Inc()
				s.net.trace.Record("dial", "peer %v (%s) connected", s.to, s.addr)
			}
			// Fold in frames queued since the wakeup so the flush below
			// covers them too.
			for {
				f, ok := s.queue.TryPop()
				if !ok {
					break
				}
				batch = append(batch, f)
			}
			if err := s.writeBatch(conn, bw, batch); err != nil {
				drop(err)
				continue // re-dial and retry the batch
			}
			s.frames.Add(uint64(len(batch)))
			s.batchSize.Observe(float64(len(batch)))
			var written uint64
			for _, f := range batch {
				written += f.wireSize()
			}
			s.bytes.Add(written)
			s.queueDepth.Set(int64(s.queue.Len()))
			batch = nil
		}
	}
}

// writeBatch frames every payload into the buffered writer and flushes
// once, under one write deadline covering the whole batch. The layout per
// frame is exactly appendFrame's: length prefix with the trace flag, the
// payload, then the trace block when one rides along.
func (s *sender) writeBatch(conn net.Conn, bw *bufio.Writer, batch []outFrame) error {
	if s.net.writeTimeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(s.net.writeTimeout)); err != nil {
			return err
		}
	}
	var lenBuf [4]byte
	var tcBuf []byte
	for _, f := range batch {
		traced := f.tc.Valid()
		binary.LittleEndian.PutUint32(lenBuf[:], wire.EncodeFrameSize(len(f.payload), traced))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := bw.Write(f.payload); err != nil {
			return err
		}
		if traced {
			tcBuf = f.tc.AppendBinary(tcBuf[:0])
			if _, err := bw.Write(tcBuf); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if s.net.writeTimeout > 0 {
		return conn.SetWriteDeadline(time.Time{})
	}
	return nil
}

func (s *sender) dial() (net.Conn, error) {
	d := net.Dialer{Timeout: s.net.dialTimeout}
	conn, err := d.DialContext(s.net.ctx, "tcp", s.addr)
	if err != nil {
		return nil, err
	}
	if !s.net.trackConn(conn) {
		_ = conn.Close()
		return nil, transport.ErrClosed
	}
	if err := s.writeHello(conn); err != nil {
		_ = conn.Close()
		s.net.untrackConn(conn)
		return nil, err
	}
	return conn, nil
}

// writeHello sends the 8-byte identity frame under the same write deadline
// as every batch write. Without the deadline a peer that accepts but never
// reads could wedge the sender goroutine here, before writeBatch's deadline
// ever applies.
func (s *sender) writeHello(conn net.Conn) error {
	if s.net.writeTimeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(s.net.writeTimeout)); err != nil {
			return err
		}
	}
	var hello [8]byte
	binary.LittleEndian.PutUint64(hello[:], uint64(int64(s.net.self)))
	if _, err := conn.Write(hello[:]); err != nil {
		return err
	}
	if s.net.writeTimeout > 0 {
		return conn.SetWriteDeadline(time.Time{})
	}
	return nil
}
