package tcpnet_test

import (
	"testing"
	"time"

	"unidir/internal/obs/tracing"
	"unidir/internal/transport"
)

// TestTracePropagationOverTCP proves a sampled trace context crosses a real
// TCP connection intact, both remote and via the self-send shortcut, while
// untraced sends keep delivering zero contexts.
func TestTracePropagationOverTCP(t *testing.T) {
	nets := newCluster(t, 2)
	tr := tracing.NewTracer("n0", 1, tracing.NewSpanBuffer(8))
	sp := tr.Root("client-submit")
	tc := sp.Context()
	defer sp.End()

	if err := transport.SendTraced(nets[0], 1, []byte("traced"), tc); err != nil {
		t.Fatalf("SendTraced: %v", err)
	}
	env := recvOne(t, nets[1], 5*time.Second)
	if string(env.Payload) != "traced" || env.Trace != tc {
		t.Fatalf("trace lost over TCP: %+v", env)
	}

	if err := nets[0].Send(1, []byte("plain")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	env = recvOne(t, nets[1], 5*time.Second)
	if env.Trace.Valid() {
		t.Fatalf("untraced send delivered a context: %+v", env.Trace)
	}

	// Self-send keeps the context without touching the wire.
	if err := nets[0].SendTraced(0, []byte("self"), tc); err != nil {
		t.Fatalf("SendTraced self: %v", err)
	}
	env = recvOne(t, nets[0], time.Second)
	if env.Trace != tc {
		t.Fatalf("self-send dropped the trace: %+v", env.Trace)
	}
}
