package tcpnet_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"unidir/internal/obs"
	"unidir/internal/tcpnet"
	"unidir/internal/transport"
)

// TestSelfSendCopiesPayload is the regression test for the self-send
// aliasing bug: Send(to==self) used to deliver the caller's slice by
// reference while the remote path copies in readLoop, so a caller reusing
// its encode buffer corrupted self-delivered messages in flight.
func TestSelfSendCopiesPayload(t *testing.T) {
	nets := newCluster(t, 1)
	buf := []byte("original")
	if err := nets[0].Send(0, buf); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// Reuse the buffer immediately, as a pooled encoder would.
	copy(buf, "CLOBBERED")
	env := recvOne(t, nets[0], time.Second)
	if !bytes.Equal(env.Payload, []byte("original")) {
		t.Fatalf("self-delivered payload aliased the sender's buffer: got %q", env.Payload)
	}
}

// TestSelfSendAfterClose: the self-send path must honor Close like the
// remote path does.
func TestSelfSendAfterClose(t *testing.T) {
	nets := newCluster(t, 1)
	if err := nets[0].Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := nets[0].Send(0, []byte("x")); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
}

// TestConcurrentSendClose hammers Send from several goroutines while Close
// runs, under -race. Every Send must either succeed or report
// transport.ErrClosed — never another error — and a Send issued after Close
// has returned must always report ErrClosed. (The exact lost-push
// interleaving is pinned deterministically by TestSendCloseRaceWindow in the
// internal test file; this test covers the real concurrent shutdown.)
func TestConcurrentSendClose(t *testing.T) {
	for round := 0; round < 20; round++ {
		nets := newCluster(t, 2)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				payload := []byte{byte(g)}
				for {
					if err := nets[0].Send(1, payload); err != nil {
						if !errors.Is(err, transport.ErrClosed) {
							t.Errorf("Send during Close: %v", err)
						}
						return
					}
				}
			}(g)
		}
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		if err := nets[0].Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		wg.Wait()
		if err := nets[0].Send(1, []byte("late")); !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("Send after Close = %v, want ErrClosed", err)
		}
	}
}

// TestMetricsCountTraffic exercises WithMetrics end to end: frames and bytes
// move, batch sizes are observed, and tx/rx totals agree once the receiver
// has drained everything.
func TestMetricsCountTraffic(t *testing.T) {
	reg := obs.NewRegistry()
	nets := newCluster(t, 2, tcpnet.WithMetrics(reg))
	const count = 50
	for i := 0; i < count; i++ {
		if err := nets[0].Send(1, []byte(fmt.Sprintf("m-%03d", i))); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	for i := 0; i < count; i++ {
		recvOne(t, nets[1], 5*time.Second)
	}
	s := reg.Snapshot()
	tx := s.CounterSum("tcpnet_tx_frames_total")
	rx := s.CounterSum("tcpnet_rx_frames_total")
	if tx != count || rx != count {
		t.Fatalf("tx=%d rx=%d, want %d each\n%+v", tx, rx, count, s.Counters)
	}
	if got := s.CounterSum("tcpnet_tx_bytes_total"); got != s.CounterSum("tcpnet_rx_bytes_total") || got == 0 {
		t.Fatalf("bytes tx=%d rx=%d", got, s.CounterSum("tcpnet_rx_bytes_total"))
	}
	if got := s.HistogramCount("tcpnet_batch_frames"); got == 0 || got > count {
		t.Fatalf("batch observations = %d, want 1..%d", got, count)
	}
	if got := s.CounterSum("tcpnet_dials_total"); got == 0 {
		t.Fatal("no dials counted")
	}
	// Metrics must be delivered, not required: a metrics-less endpoint still
	// works (every handle is nil).
	bare := newCluster(t, 1)
	if err := bare[0].Send(0, []byte("ok")); err != nil {
		t.Fatalf("Send without metrics: %v", err)
	}
	env, err := bare[0].Recv(context.Background())
	if err != nil || string(env.Payload) != "ok" {
		t.Fatalf("Recv without metrics: %v %q", err, env.Payload)
	}
}

// TestWriteTimeoutUnwedgeCounted: a peer that accepts connections but never
// reads eventually blocks the sender in a kernel-buffer-full write; the
// write deadline must trip, the stalled connection must be dropped, and the
// unwedge must be visible under its dedicated counter (regression: it used
// to be indistinguishable from an ordinary conn drop).
func TestWriteTimeoutUnwedgeCounted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	var held []net.Conn
	var heldMu sync.Mutex
	defer func() {
		heldMu.Lock()
		for _, c := range held {
			_ = c.Close()
		}
		heldMu.Unlock()
	}()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			heldMu.Lock()
			held = append(held, c) // accept and never read
			heldMu.Unlock()
		}
	}()

	reg := obs.NewRegistry()
	cfg := tcpnet.Config{0: "127.0.0.1:0", 1: ln.Addr().String()}
	nt, err := tcpnet.New(0, cfg,
		tcpnet.WithWriteTimeout(100*time.Millisecond),
		tcpnet.WithMetrics(reg))
	if err != nil {
		t.Fatalf("tcpnet.New: %v", err)
	}
	defer nt.Close()

	// Keep the outbound queue loaded with large frames until the kernel
	// buffers fill and the deadline expires.
	payload := make([]byte, 256<<10)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for i := 0; i < 8; i++ {
			if err := nt.Send(1, payload); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
		s := reg.Snapshot()
		if s.CounterSum("tcpnet_write_timeout_unwedges_total") >= 1 {
			if s.CounterSum("tcpnet_conn_drops_total") < 1 {
				t.Fatal("unwedge counted without a conn drop")
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("write deadline never tripped the unwedge counter")
}

// TestQueueBoundDropsCounted: with WithQueueBound, frames past the bound for
// an unreachable peer are dropped (Send still reports acceptance — the
// semantics stay lossy-tolerated) and counted, and the queue stays bounded.
func TestQueueBoundDropsCounted(t *testing.T) {
	// An address that refuses connections: bind a listener, note the port,
	// close it again.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr := ln.Addr().String()
	_ = ln.Close()

	const bound = 4
	reg := obs.NewRegistry()
	cfg := tcpnet.Config{0: "127.0.0.1:0", 1: deadAddr}
	nt, err := tcpnet.New(0, cfg,
		tcpnet.WithQueueBound(bound),
		tcpnet.WithDialTimeout(50*time.Millisecond),
		tcpnet.WithMetrics(reg))
	if err != nil {
		t.Fatalf("tcpnet.New: %v", err)
	}
	defer nt.Close()

	// First frame wakes the sender; give it time to pop the frame and start
	// failing dials so the queue accounting below is deterministic.
	if err := nt.Send(1, []byte("wake")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	time.Sleep(200 * time.Millisecond)

	const extra = bound + 6
	for i := 0; i < extra; i++ {
		if err := nt.Send(1, []byte(fmt.Sprintf("f-%d", i))); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if got := nt.QueueDepth(1); got > bound {
		t.Fatalf("QueueDepth = %d, want <= %d", got, bound)
	}
	drops := reg.Snapshot().CounterSum("tcpnet_queue_dropped_frames_total")
	if drops < extra-bound {
		t.Fatalf("queue drops = %d, want >= %d", drops, extra-bound)
	}
}
