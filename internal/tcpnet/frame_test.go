package tcpnet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"unidir/internal/obs/tracing"
)

func testCtx(sampled bool) tracing.Context {
	var tc tracing.Context
	for i := range tc.Trace {
		tc.Trace[i] = byte(i + 1)
	}
	for i := range tc.Span {
		tc.Span[i] = byte(0xA0 + i)
	}
	tc.Sampled = sampled
	return tc
}

func TestFrameRoundTrip(t *testing.T) {
	for _, tc := range []tracing.Context{{}, testCtx(false), testCtx(true)} {
		payload := []byte("hello frame")
		enc := appendFrame(nil, payload, tc)
		got, gotTC, err := readFrame(bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) || gotTC != tc {
			t.Fatalf("round trip: got %q/%+v, want %q/%+v", got, gotTC, payload, tc)
		}
	}
}

// TestLegacyFrameDecodes proves wire compatibility: a frame produced by the
// pre-tracing sender (bare uint32 length + payload, no flag bit) must decode
// to the same payload with no trace context.
func TestLegacyFrameDecodes(t *testing.T) {
	payload := []byte("old client says hi")
	legacy := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	legacy = append(legacy, payload...)
	got, tc, err := readFrame(bytes.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mangled: %q", got)
	}
	if tc.Valid() || tc.Sampled {
		t.Fatalf("legacy frame grew a trace context: %+v", tc)
	}
	// And the reverse direction: an untraced frame from the new sender is
	// byte-identical to the legacy encoding, so old receivers keep working.
	if enc := appendFrame(nil, payload, tracing.Context{}); !bytes.Equal(enc, legacy) {
		t.Fatalf("untraced new frame differs from legacy: %x vs %x", enc, legacy)
	}
}

// TestWriteBatchMatchesAppendFrame pins the streaming writer to the same
// byte layout as the pure encoder the tests and fuzzer exercise.
func TestWriteBatchMatchesAppendFrame(t *testing.T) {
	batch := []outFrame{
		{payload: []byte("a")},
		{payload: []byte("traced"), tc: testCtx(true)},
		{payload: nil, tc: testCtx(false)},
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	s := &sender{net: &Net{}} // writeTimeout 0: conn untouched
	if err := s.writeBatch(nil, bw, batch); err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, f := range batch {
		want = appendFrame(want, f.payload, f.tc)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("writeBatch layout drifted:\n got %x\nwant %x", buf.Bytes(), want)
	}
}

func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte("payload"), []byte("0123456789abcdef01234567"), true, true)
	f.Add([]byte{}, []byte{}, false, false)
	f.Add([]byte{0xFF}, bytes.Repeat([]byte{7}, 24), true, false)
	f.Fuzz(func(t *testing.T, payload, idBytes []byte, traced, sampled bool) {
		var tc tracing.Context
		if traced {
			copy(tc.Trace[:], idBytes)
			if len(idBytes) > 16 {
				copy(tc.Span[:], idBytes[16:])
			}
			tc.Sampled = sampled
			if !tc.Valid() {
				tc.Trace[0] = 1 // a zero trace ID means "untraced"; force validity
			}
		}
		enc := appendFrame(nil, payload, tc)
		got, gotTC, err := readFrame(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(got, payload) || gotTC != tc {
			t.Fatalf("round trip mismatch: %x/%+v vs %x/%+v", got, gotTC, payload, tc)
		}
	})
}

// FuzzReadFrame feeds arbitrary bytes to the frame reader: it must never
// panic, and every accepted frame must re-encode to a prefix of the input.
func FuzzReadFrame(f *testing.F) {
	f.Add(appendFrame(nil, []byte("seed"), testCtx(true)))
	f.Add(appendFrame(nil, []byte("plain"), tracing.Context{}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, tc, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		reenc := appendFrame(nil, payload, tc)
		// The sampled=false traced block is not canonical (any flag byte with
		// bit 0 clear decodes to it), so compare payload-exactness instead of
		// raw bytes when a trace block was present.
		if len(reenc) > len(data) {
			t.Fatalf("decoded frame longer than input: %d > %d", len(reenc), len(data))
		}
		got, gotTC, err := readFrame(bytes.NewReader(reenc))
		if err != nil || !bytes.Equal(got, payload) || gotTC != tc {
			t.Fatalf("re-encoded frame does not round trip: %v", err)
		}
	})
}

// TestReadFrameOversize proves the defensive bound still applies with the
// flag bit masked out: a hostile length prefix cannot force a huge
// allocation.
func TestReadFrameOversize(t *testing.T) {
	enc := binary.LittleEndian.AppendUint32(nil, maxFrame+1)
	if _, _, err := readFrame(bytes.NewReader(enc)); err == nil {
		t.Fatal("oversize frame accepted")
	}
	// Oversize with the trace flag set must fail the same way.
	enc = binary.LittleEndian.AppendUint32(nil, (maxFrame+1)|uint32(1<<31))
	if _, _, err := readFrame(bytes.NewReader(enc)); err == nil {
		t.Fatal("oversize traced frame accepted")
	}
}

// TestTracedFrameTruncatedBlock: a flagged frame whose trace block is cut
// short must error, not deliver a half-read context.
func TestTracedFrameTruncatedBlock(t *testing.T) {
	enc := appendFrame(nil, []byte("x"), testCtx(true))
	if _, _, err := readFrame(bytes.NewReader(enc[:len(enc)-5])); err != io.ErrUnexpectedEOF {
		t.Fatalf("got %v, want unexpected EOF", err)
	}
}
