package tcpnet

import (
	"errors"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"unidir/internal/transport"
)

// TestSendCloseRaceWindow pins the exact interleaving behind the
// silent-drop bug: Send observes closed=false and releases the lock, then
// Close closes the destination queue before Send pushes. Pre-fix the push
// was silently dropped and Send returned nil; now the push reports
// rejection and Send returns transport.ErrClosed. The test reproduces the
// window deterministically by closing the sender queue directly (Close's
// first half) while leaving the closed flag unset.
func TestSendCloseRaceWindow(t *testing.T) {
	n, err := New(0, Config{0: "127.0.0.1:0", 1: "127.0.0.1:9"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer n.Close()
	if err := n.Send(1, []byte("first")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	n.mu.Lock()
	s := n.senders[1]
	closed := n.closed
	n.mu.Unlock()
	if s == nil || closed {
		t.Fatalf("sender=%v closed=%v; expected live sender on open transport", s, closed)
	}
	s.queue.Close()
	if err := n.Send(1, []byte("dropped")); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("Send onto closed queue = %v, want ErrClosed (silent drop)", err)
	}
}

// wedgedConn simulates a peer that accepted the connection but never reads:
// Write blocks forever unless a write deadline is armed, in which case it
// fails with os.ErrDeadlineExceeded at expiry — the same observable behavior
// as a TCP socket whose send buffer never drains.
type wedgedConn struct {
	mu       sync.Mutex
	deadline time.Time
}

func (c *wedgedConn) Write(p []byte) (int, error) {
	for {
		c.mu.Lock()
		d := c.deadline
		c.mu.Unlock()
		if !d.IsZero() && time.Now().After(d) {
			return 0, os.ErrDeadlineExceeded
		}
		time.Sleep(time.Millisecond)
	}
}

func (c *wedgedConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	c.mu.Unlock()
	return nil
}

func (c *wedgedConn) Read([]byte) (int, error)        { select {} }
func (c *wedgedConn) Close() error                    { return nil }
func (c *wedgedConn) LocalAddr() net.Addr             { return &net.TCPAddr{} }
func (c *wedgedConn) RemoteAddr() net.Addr            { return &net.TCPAddr{} }
func (c *wedgedConn) SetDeadline(time.Time) error     { return nil }
func (c *wedgedConn) SetReadDeadline(time.Time) error { return nil }

// TestHelloWriteDeadline is the regression test for the unbounded hello
// write: pre-fix, dial wrote the 8-byte hello with no deadline, so a peer
// that accepts but never reads wedged the sender goroutine before
// writeBatch's deadline ever applied. writeHello must fail within the
// configured writeTimeout instead of blocking forever.
func TestHelloWriteDeadline(t *testing.T) {
	s := &sender{net: &Net{writeTimeout: 50 * time.Millisecond}}
	done := make(chan error, 1)
	go func() { done <- s.writeHello(&wedgedConn{}) }()
	select {
	case err := <-done:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("writeHello = %v, want deadline exceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writeHello blocked past its write deadline (hello write is unbounded)")
	}
}
