package tcpnet_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"unidir/internal/tcpnet"
	"unidir/internal/transport"
	"unidir/internal/types"
)

// newCluster starts n endpoints on loopback with dynamic ports.
func newCluster(t *testing.T, n int, opts ...tcpnet.Option) []*tcpnet.Net {
	t.Helper()
	cfg := make(tcpnet.Config, n)
	nets := make([]*tcpnet.Net, n)
	// Two passes: first bind every listener on :0, then share the actual
	// addresses.
	for i := 0; i < n; i++ {
		cfg[types.ProcessID(i)] = "127.0.0.1:0"
	}
	for i := 0; i < n; i++ {
		// Each node needs the *final* addresses of its peers; bind
		// sequentially and update the shared config as we go.
		nt, err := tcpnet.New(types.ProcessID(i), cfg, opts...)
		if err != nil {
			t.Fatalf("tcpnet.New(%d): %v", i, err)
		}
		cfg[types.ProcessID(i)] = nt.Addr()
		nets[i] = nt
	}
	t.Cleanup(func() {
		for _, nt := range nets {
			_ = nt.Close()
		}
	})
	return nets
}

func recvOne(t *testing.T, nt *tcpnet.Net, timeout time.Duration) transport.Envelope {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	env, err := nt.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	return env
}

func TestSendRecvOverTCP(t *testing.T) {
	nets := newCluster(t, 3)
	if err := nets[0].Send(2, []byte("over tcp")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	env := recvOne(t, nets[2], 5*time.Second)
	if env.From != 0 || string(env.Payload) != "over tcp" {
		t.Fatalf("env = %+v", env)
	}
}

func TestSelfSend(t *testing.T) {
	nets := newCluster(t, 2)
	if err := nets[1].Send(1, []byte("loopback")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	env := recvOne(t, nets[1], time.Second)
	if env.From != 1 || string(env.Payload) != "loopback" {
		t.Fatalf("env = %+v", env)
	}
}

func TestFIFOAndNoLoss(t *testing.T) {
	nets := newCluster(t, 2)
	const count = 200
	for i := 0; i < count; i++ {
		if err := nets[0].Send(1, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	for i := 0; i < count; i++ {
		env := recvOne(t, nets[1], 5*time.Second)
		got := int(env.Payload[0]) | int(env.Payload[1])<<8
		if got != i {
			t.Fatalf("message %d arrived as %d", i, got)
		}
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	nets := newCluster(t, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			peer := types.ProcessID(1 - i)
			for j := 0; j < 50; j++ {
				if err := nets[i].Send(peer, []byte(fmt.Sprintf("%d-%d", i, j))); err != nil {
					errs[i] = err
					return
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			for j := 0; j < 50; j++ {
				if _, err := nets[i].Recv(ctx); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
}

func TestSendBeforePeerUp(t *testing.T) {
	// Messages queued to a not-yet-listening peer are delivered once it
	// comes up (the writer re-dials with backoff).
	cfgA := tcpnet.Config{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	a, err := tcpnet.New(0, cfgA)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer a.Close()
	// Reserve a port for b by binding and immediately deciding its addr.
	probe, err := tcpnet.New(1, tcpnet.Config{1: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	bAddr := probe.Addr()
	_ = probe.Close()

	cfgA[1] = bAddr
	if err := a.Send(1, []byte("early")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	time.Sleep(50 * time.Millisecond) // let a few dial attempts fail

	b, err := tcpnet.New(1, tcpnet.Config{0: a.Addr(), 1: bAddr})
	if err != nil {
		t.Fatalf("New(b): %v", err)
	}
	defer b.Close()
	env := recvOne(t, b, 10*time.Second)
	if string(env.Payload) != "early" {
		t.Fatalf("payload = %q", env.Payload)
	}
}

func TestCoalescedBurstDelivery(t *testing.T) {
	// A burst pushed while the peer is still coming up is coalesced into
	// few flushes; every frame must still arrive, in order.
	nets := newCluster(t, 2)
	const count = 500
	for i := 0; i < count; i++ {
		if err := nets[0].Send(1, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	for i := 0; i < count; i++ {
		env := recvOne(t, nets[1], 10*time.Second)
		got := int(env.Payload[0]) | int(env.Payload[1])<<8
		if got != i {
			t.Fatalf("message %d arrived as %d", i, got)
		}
	}
}

func TestWriteDeadlineUnwedgesStalledPeer(t *testing.T) {
	// A peer that accepts connections but never reads must not wedge the
	// sender goroutine: once the kernel buffers fill, the write deadline
	// expires, the connection is dropped, and the sender redials (observable
	// as additional accepts on the stalled listener).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	accepts := make(chan net.Conn, 16)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepts <- c // accepted, never read
		}
	}()
	defer func() {
		close(accepts)
		for c := range accepts {
			_ = c.Close()
		}
	}()

	cfg := tcpnet.Config{0: "127.0.0.1:0", 1: ln.Addr().String()}
	nt, err := tcpnet.New(0, cfg, tcpnet.WithWriteTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer nt.Close()

	// Enough data to overrun the socket buffers so the flush really blocks.
	payload := make([]byte, 1<<20)
	for i := 0; i < 64; i++ {
		if err := nt.Send(1, payload); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	seen := 0
	deadline := time.After(15 * time.Second)
	for seen < 2 {
		select {
		case <-accepts:
			seen++
		case <-deadline:
			t.Fatalf("sender never redialed after a stalled write (accepts=%d)", seen)
		}
	}
	// Close must return promptly even with the peer still stalled.
	done := make(chan struct{})
	go func() { _ = nt.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on a stalled sender")
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	nets := newCluster(t, 2)
	errCh := make(chan error, 1)
	go func() {
		_, err := nets[0].Recv(context.Background())
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_ = nets[0].Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("Recv err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
	if err := nets[0].Send(1, []byte("x")); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("Send after close err = %v", err)
	}
}

func TestUnknownDestination(t *testing.T) {
	nets := newCluster(t, 2)
	if err := nets[0].Send(9, []byte("x")); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestMuxOverTCP(t *testing.T) {
	// The transport mux composes with tcpnet just like simnet.
	nets := newCluster(t, 2)
	m0 := transport.NewMux(nets[0])
	m1 := transport.NewMux(nets[1])
	defer m0.Close()
	defer m1.Close()
	a1 := m1.Channel('a')
	if err := m0.Channel('a').Send(1, []byte("tagged")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	env, err := a1.Recv(ctx)
	if err != nil || string(env.Payload) != "tagged" {
		t.Fatalf("Recv = %+v, %v", env, err)
	}
}
