package shard

import (
	"errors"
	"fmt"
	"testing"
)

// Routing must be a pure function of (key, view contents): two views built
// independently — as two client processes, or one process before and after
// a restart, would — route every key identically.
func TestRoutingDeterministicAcrossRestarts(t *testing.T) {
	for _, groups := range []int{1, 2, 3, 4, 7, 16} {
		a, err := NewUniformView(1, groups)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewUniformView(1, groups)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2048; i++ {
			key := fmt.Sprintf("key-%d", i)
			if a.Group(key) != b.Group(key) {
				t.Fatalf("groups=%d key %q: %d vs %d", groups, key, a.Group(key), b.Group(key))
			}
		}
	}
}

// The wire round trip must preserve routing: a client that learned the
// view from the control plane places keys exactly like the one that built
// it.
func TestViewEncodeDecodeRoundTrip(t *testing.T) {
	v, err := NewView(7, []uint64{0, 1 << 20, 1 << 40, 1 << 60})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeView(v.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != 7 || got.Groups() != 4 {
		t.Fatalf("round trip: version=%d groups=%d", got.Version(), got.Groups())
	}
	for i := 0; i < 1024; i++ {
		key := fmt.Sprintf("k%d", i)
		if v.Group(key) != got.Group(key) {
			t.Fatalf("key %q routes to %d before encode, %d after", key, v.Group(key), got.Group(key))
		}
	}
}

// Every 64-bit hash value must belong to exactly one group, including the
// exact range boundaries: hash start-1 belongs to the previous group, hash
// start to the next, and the extremes 0 and 2^64-1 are owned.
func TestFullKeyspaceCoverageAtBoundaries(t *testing.T) {
	views := []*View{}
	for _, groups := range []int{1, 2, 3, 4, 5, 16, 333} {
		v, err := NewUniformView(1, groups)
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, v)
	}
	custom, err := NewView(1, []uint64{0, 17, 1 << 30, 1<<63 + 12345})
	if err != nil {
		t.Fatal(err)
	}
	views = append(views, custom)

	for _, v := range views {
		if g := v.GroupOf(0); g != 0 {
			t.Errorf("%d groups: hash 0 -> group %d, want 0", v.Groups(), g)
		}
		if g := v.GroupOf(^uint64(0)); g != v.Groups()-1 {
			t.Errorf("%d groups: hash 2^64-1 -> group %d, want %d", v.Groups(), g, v.Groups()-1)
		}
		for g := 1; g < v.Groups(); g++ {
			start := v.starts[g]
			if got := v.GroupOf(start); got != g {
				t.Errorf("%d groups: boundary hash %d -> group %d, want %d (gap)", v.Groups(), start, got, g)
			}
			if got := v.GroupOf(start - 1); got != g-1 {
				t.Errorf("%d groups: boundary hash %d -> group %d, want %d (overlap)", v.Groups(), start-1, got, g-1)
			}
		}
	}
}

// N=1 must degenerate to the unsharded deployment: every key routes to the
// single group.
func TestSingleGroupDegenerate(t *testing.T) {
	v, err := NewUniformView(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		if g := v.Group(fmt.Sprintf("key-%d", i)); g != 0 {
			t.Fatalf("key-%d -> group %d in a 1-group view", i, g)
		}
	}
	if v.GroupOf(0) != 0 || v.GroupOf(^uint64(0)) != 0 {
		t.Fatal("1-group view must own the whole hash space")
	}
}

// A uniform multi-group view must actually spread keys: with thousands of
// distinct keys, no group stays empty (a constant-hash regression would
// pass determinism and boundaries but collapse every key into one group).
func TestKeysSpreadAcrossGroups(t *testing.T) {
	v, err := NewUniformView(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for i := 0; i < 4096; i++ {
		counts[v.Group(fmt.Sprintf("key-%d", i))]++
	}
	for g, n := range counts {
		if n == 0 {
			t.Fatalf("group %d received no keys: %v", g, counts)
		}
	}
}

func TestNewViewValidation(t *testing.T) {
	cases := [][]uint64{
		{},        // no groups
		{1},       // does not start at 0
		{0, 5, 5}, // duplicate start (overlap)
		{0, 9, 4}, // decreasing (gap/overlap)
	}
	for _, starts := range cases {
		if _, err := NewView(1, starts); err == nil {
			t.Errorf("NewView(%v) accepted an invalid shape", starts)
		}
	}
	if _, err := NewUniformView(1, 0); err == nil {
		t.Error("NewUniformView(0) accepted")
	}
}

func TestRouterRejectsStaleViews(t *testing.T) {
	v1, _ := NewUniformView(1, 2)
	v2, _ := NewUniformView(2, 2)
	r := NewRouter(v1)
	if err := r.Update(v2); err != nil {
		t.Fatalf("newer view rejected: %v", err)
	}
	if r.View().Version() != 2 {
		t.Fatalf("version = %d after update", r.View().Version())
	}
	stale, _ := NewUniformView(2, 2)
	if err := r.Update(stale); err == nil {
		t.Fatal("same-version view accepted")
	}
	older, _ := NewUniformView(1, 2)
	if err := r.Update(older); err == nil {
		t.Fatal("older view accepted")
	}
}

func TestSameGroupSeam(t *testing.T) {
	v, _ := NewUniformView(1, 8)
	r := NewRouter(v)

	// A key agrees with itself, whatever the group count.
	if g, err := r.SameGroup("alpha", "alpha", "alpha"); err != nil || g != v.Group("alpha") {
		t.Fatalf("SameGroup(same key x3) = %d, %v", g, err)
	}
	// Find two keys in different groups and assert the seam error.
	base := v.Group("key-0")
	for i := 1; ; i++ {
		key := fmt.Sprintf("key-%d", i)
		if v.Group(key) != base {
			if _, err := r.SameGroup("key-0", key); !errors.Is(err, ErrCrossGroup) {
				t.Fatalf("cross-group keys: err = %v, want ErrCrossGroup", err)
			}
			break
		}
		if i > 1<<16 {
			t.Fatal("could not find keys in different groups")
		}
	}
	if _, err := r.SameGroup(); err == nil {
		t.Fatal("SameGroup() with no keys accepted")
	}
}

func TestDefaultShardsKnob(t *testing.T) {
	cases := []struct {
		env  string
		want int
	}{
		{"", 1},
		{"1", 1},
		{"4", 4},
		{"0", 1},      // below min: warn, default
		{"-2", 1},     // below min: warn, default
		{"banana", 1}, // malformed: warn, default
	}
	for _, tc := range cases {
		t.Setenv("UNIDIR_SHARDS", tc.env)
		if got := DefaultShards(); got != tc.want {
			t.Errorf("UNIDIR_SHARDS=%q: DefaultShards() = %d, want %d", tc.env, got, tc.want)
		}
	}
}
