package shard

import (
	"context"
	"fmt"

	"unidir/internal/kvstore"
	"unidir/internal/smr"
)

// Client is the sharded kvstore client: one pipelined client per consensus
// group, multiplexed behind the router. Every operation routes its key and
// delegates to that group's client unchanged, so a key keeps exactly the
// single-group guarantees it had before sharding (linearizable writes,
// leased or quorum-voted reads).
//
// Isolation is structural: each group has its own smr.Pipeline, and a
// pipeline's flow control — in-flight window, AIMD adaptation, submit
// deadline — is private to it. A wedged or overloaded group collapses only
// its own window; submissions to healthy groups never queue behind it.
// (The harness test wedges one group and proves the others progress.)
type Client struct {
	router *Router
	groups []*kvstore.PipeClient
}

// NewClient wires one pipelined client per group, in group order. The
// count must match the router's view: resharding (changing the group count
// under a live client) is out of scope with single-key routing — a view
// update that preserves the count is allowed, one that changes it needs
// client rewiring.
func NewClient(r *Router, groups []*kvstore.PipeClient) (*Client, error) {
	if got, want := len(groups), r.View().Groups(); got != want {
		return nil, fmt.Errorf("shard: %d group clients for a %d-group view", got, want)
	}
	return &Client{router: r, groups: groups}, nil
}

// Groups returns the number of groups the client multiplexes.
func (c *Client) Groups() int { return len(c.groups) }

// Group routes a key under the current view.
func (c *Client) Group(key string) int { return c.router.Group(key) }

// GroupClient returns group g's pipelined client, for callers that need
// per-group operations (draining one group's async calls, reading its
// window).
func (c *Client) GroupClient(g int) *kvstore.PipeClient { return c.groups[g] }

// Router returns the client's router (view inspection, updates).
func (c *Client) Router() *Router { return c.router }

// Put stores a key through its group's ordering path.
func (c *Client) Put(ctx context.Context, key string, value []byte) error {
	return c.groups[c.Group(key)].Put(ctx, key, value)
}

// PutAsync submits a PUT to the key's group and returns without waiting;
// it blocks only while that group's in-flight window is full — never on
// another group's.
func (c *Client) PutAsync(ctx context.Context, key string, value []byte) (*smr.Call, error) {
	return c.groups[c.Group(key)].PutAsync(ctx, key, value)
}

// Get fetches a key's value through its group's ordering path (the
// consensus-read baseline).
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	return c.groups[c.Group(key)].Get(ctx, key)
}

// RGet fetches a key's value on its group's read fast path: one leased
// reply from that group's leader, or a quorum of matching fallback votes
// (see smr/read.go). Leases are per group — each group's leader attests
// its own lease.
func (c *Client) RGet(ctx context.Context, key string) ([]byte, error) {
	return c.groups[c.Group(key)].GetFast(ctx, key)
}

// RGetAsync submits a fast-path read to the key's group and returns
// without waiting; it blocks only while that group's read window is full.
func (c *Client) RGetAsync(ctx context.Context, key string) (*smr.ReadCall, error) {
	return c.groups[c.Group(key)].GetAsync(ctx, key)
}

// Del removes a key through its group's ordering path.
func (c *Client) Del(ctx context.Context, key string) error {
	return c.groups[c.Group(key)].Del(ctx, key)
}

// Windows reports each group's current effective write window — the
// per-group AIMD state the isolation property is about.
func (c *Client) Windows() []int {
	out := make([]int, len(c.groups))
	for g, pc := range c.groups {
		out[g] = pc.Window()
	}
	return out
}
