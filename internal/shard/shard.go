// Package shard partitions the kvstore keyspace across independent
// consensus groups behind a deterministic router.
//
// One consensus group orders one log through one primary, which caps a
// deployment at a single primary's throughput no matter how many clients
// push. Sharding runs N groups side by side — each its own MinBFT or PBFT
// replica set built via internal/cluster, with its own primary, batches,
// leases, and checkpoints — and routes every single-key operation to the
// group owning the key. Aggregate write throughput then scales with the
// number of groups until some shared resource (CPU, network) saturates.
//
// Routing is a hash-range map carried in a versioned View: group g owns
// the 64-bit hash values in [starts[g], starts[g+1]), with the last range
// wrapping to 2^64. The hash (FNV-1a) and the view contents alone
// determine placement — no process-local state — so every client and every
// restart of every client routes a key identically, which is what makes a
// key's per-group linearizable history globally meaningful.
//
// Consistency model (DESIGN.md §9): operations on a single key are
// linearizable — a key lives in exactly one group and inherits that group's
// ordering and read-lease guarantees unchanged. Operations on different
// keys in different groups are independently ordered; there is no
// cross-group transaction. The router API keeps a deliberate seam for one
// (SameGroup / ErrCrossGroup): a future two-phase-commit coordinator slots
// in where ErrCrossGroup is returned today, without changing single-key
// routing.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"

	"unidir/internal/obs/knob"
	"unidir/internal/wire"
)

// ErrCrossGroup reports a multi-key operation whose keys live in different
// groups. This is the two-phase-commit seam: single-key operations never
// see it, and a future cross-group coordinator replaces the error with a
// 2PC round over the groups SameGroup identified.
var ErrCrossGroup = errors.New("shard: keys span multiple groups (cross-group transactions not supported)")

// maxGroups bounds decoded views (defensive).
const maxGroups = 1 << 12

// DefaultShards returns the deployment's shard (group) count, controlled
// by the UNIDIR_SHARDS environment variable: unset means 1 (the unsharded
// single-group deployment), an integer k >= 1 runs k groups. Malformed
// values fall back to 1 with a logged warning (see internal/obs/knob).
func DefaultShards() int {
	return knob.Int("UNIDIR_SHARDS", 1, 1, nil)
}

// View is an immutable, versioned hash-range routing table. Group g owns
// hash values in [starts[g], starts[g+1]), the last group wrapping to
// 2^64: every 64-bit hash value belongs to exactly one group (no gaps, no
// overlaps — NewView validates, the tests prove the boundaries).
type View struct {
	version uint64
	starts  []uint64
}

// NewView builds a view from explicit range starts. starts must begin at 0
// and be strictly increasing — exactly the shape that covers the full hash
// space with disjoint ranges.
func NewView(version uint64, starts []uint64) (*View, error) {
	if len(starts) == 0 {
		return nil, fmt.Errorf("shard: view needs at least one group")
	}
	if len(starts) > maxGroups {
		return nil, fmt.Errorf("shard: view with %d groups (max %d)", len(starts), maxGroups)
	}
	if starts[0] != 0 {
		return nil, fmt.Errorf("shard: first range must start at 0, got %d", starts[0])
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] <= starts[i-1] {
			return nil, fmt.Errorf("shard: range starts must strictly increase (starts[%d]=%d <= starts[%d]=%d)",
				i, starts[i], i-1, starts[i-1])
		}
	}
	return &View{version: version, starts: append([]uint64(nil), starts...)}, nil
}

// NewUniformView builds a view splitting the hash space into `groups`
// equal ranges.
func NewUniformView(version uint64, groups int) (*View, error) {
	if groups < 1 {
		return nil, fmt.Errorf("shard: need at least 1 group, got %d", groups)
	}
	if groups > maxGroups {
		return nil, fmt.Errorf("shard: %d groups (max %d)", groups, maxGroups)
	}
	starts := make([]uint64, groups)
	width := ^uint64(0)/uint64(groups) + 1 // 2^64 / groups, rounding the last range up
	for g := 1; g < groups; g++ {
		starts[g] = uint64(g) * width
	}
	return &View{version: version, starts: starts}, nil
}

// Version returns the view's version. Routers only accept strictly newer
// views, so a client that saw version k never regresses to k-1's placement.
func (v *View) Version() uint64 { return v.version }

// Groups returns the number of groups the view routes across.
func (v *View) Groups() int { return len(v.starts) }

// Hash is the routing hash: FNV-1a over the key bytes. Exported so tests
// (and future rebalancing tools) can reason about boundary placement.
func Hash(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// GroupOf returns the group owning hash value h: the last range whose
// start is <= h.
func (v *View) GroupOf(h uint64) int {
	// sort.Search finds the first start > h; the owner is the range before.
	return sort.Search(len(v.starts), func(i int) bool { return v.starts[i] > h }) - 1
}

// Group routes a key.
func (v *View) Group(key string) int { return v.GroupOf(Hash(key)) }

// Encode returns the canonical wire form (version, then range starts),
// what a control plane would gossip to move every client to a new
// placement.
func (v *View) Encode() []byte {
	e := wire.NewEncoder(24 + 8*len(v.starts))
	e.Uint64(v.version)
	e.Int(len(v.starts))
	for _, s := range v.starts {
		e.Uint64(s)
	}
	return e.Bytes()
}

// DecodeView parses a view encoded by Encode, revalidating its shape: a
// view from the wire gets no more trust than one built locally.
func DecodeView(b []byte) (*View, error) {
	d := wire.NewDecoder(b)
	version := d.Uint64()
	n := d.Int()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("shard: decode view: %w", err)
	}
	if n < 1 || n > maxGroups {
		return nil, fmt.Errorf("shard: decode view: %d groups", n)
	}
	starts := make([]uint64, n)
	for i := range starts {
		starts[i] = d.Uint64()
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("shard: decode view: %w", err)
	}
	return NewView(version, starts)
}

// Router holds the current routing view and swaps it atomically. Reads
// (every operation) are lock-free; updates (rare, control-plane driven)
// must carry a strictly newer version.
type Router struct {
	view atomic.Pointer[View]
}

// NewRouter starts routing with view v.
func NewRouter(v *View) *Router {
	r := &Router{}
	r.view.Store(v)
	return r
}

// View returns the current view.
func (r *Router) View() *View { return r.view.Load() }

// Group routes a key under the current view.
func (r *Router) Group(key string) int { return r.View().Group(key) }

// Update installs a strictly newer view. A same-or-older version is
// rejected: updates may race in from multiple control-plane messages, and
// placement must never move backward.
func (r *Router) Update(v *View) error {
	for {
		cur := r.view.Load()
		if v.version <= cur.version {
			return fmt.Errorf("shard: stale view version %d (current %d)", v.version, cur.version)
		}
		if r.view.CompareAndSwap(cur, v) {
			return nil
		}
	}
}

// SameGroup reports the single group all keys route to under the current
// view, or ErrCrossGroup when they span groups — the seam a future
// two-phase-commit coordinator replaces.
func (r *Router) SameGroup(keys ...string) (int, error) {
	if len(keys) == 0 {
		return 0, fmt.Errorf("shard: no keys")
	}
	v := r.View()
	g := v.Group(keys[0])
	for _, k := range keys[1:] {
		if v.Group(k) != g {
			return -1, ErrCrossGroup
		}
	}
	return g, nil
}
