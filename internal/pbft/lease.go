package pbft

// Leader leases for the linearizable read fast path — the 3f+1 analogue of
// internal/minbft/lease.go (see DESIGN.md §8).
//
// The primary periodically broadcasts a signed LEASE-REQUEST carrying a
// round counter; each backup answers with a signed LEASE-GRANT for that
// round, sent point-to-point (no trusted counters here, so grants need not
// be broadcast to keep any cursor contiguous). Holding 2f+1 grants
// (including its own; all n with UNIDIR_LEASE_QUORUM=full), the primary
// answers reads locally until leaseSentAt + term − term/8.
//
// With the view fixed at 0 there is no competing primary to fence off; the
// grant quorum documents that a read-serving primary is one 2f+1 quorums
// still talk to, and the freshness watermark does the linearizability work:
// a read is served only once execNext has passed every sequence number the
// primary had assigned when the read arrived, which covers every write
// acknowledged before the read was issued (an acked write has 2f+1 matching
// replies, so it committed, so this unique proposer assigned it a slot).
// Reads arriving when no lease is held are answered as fallback votes and
// the client gathers 2f+1 matching (executed seq, result) replies instead.

import (
	"time"

	"unidir/internal/smr"
	"unidir/internal/types"
)

// maxReadQueue bounds reads parked behind the execute watermark; overflow
// is answered as a fallback vote instead of queued.
const maxReadQueue = 8192

// pendingRead is one read waiting for execNext to pass the nextSeq captured
// at its arrival.
type pendingRead struct {
	wm  types.SeqNum
	req smr.ReadRequest
}

// leaseQuorum is how many grants (including the self-grant) hold a lease.
func (r *Replica) leaseQuorum() int {
	if r.leaseFull {
		return r.m.N
	}
	return r.m.Quorum()
}

// leaseValid reports whether this replica currently holds a usable lease.
// leaseUntil is the sole validity token: it is only ever set when a round
// reaches its grant quorum (noteGrant), so soliciting the next round never
// invalidates the current lease — a renewal gap must not flip reads to
// fallback votes, or a loaded primary whose grant replies queue behind its
// read backlog would spiral into permanent fallback (clients escalate
// fallback reads to broadcast, doubling load).
func (r *Replica) leaseValid(now time.Time) bool {
	return r.leaseTerm > 0 && r.m.Leader(r.view) == r.Self() &&
		now.Before(r.leaseUntil)
}

// renewLease starts a new lease round and arms the next renewal at half the
// term. Bails — without re-arming — when this replica is not the primary or
// leases are disabled.
func (r *Replica) renewLease() {
	if r.leaseTerm <= 0 || r.m.Leader(r.view) != r.Self() {
		return
	}
	now := time.Now()
	if !r.leaseUntil.IsZero() && !now.Before(r.leaseUntil) {
		r.mx.leaseExpiries.Inc()
	}
	r.leaseRound++
	r.leaseSentAt = now
	r.leaseGrants = make(map[types.ProcessID]bool)
	r.broadcast(kindLeaseRequest, r.leaseRound, nil)
	r.mx.leaseRenewals.Inc()
	r.noteGrant(r.Self())
	if !r.renewArmed {
		r.renewArmed = true
		r.afterTimeout(r.leaseTerm/2, timerEvent{kind: 'l'})
	}
}

// noteGrant tallies one grant for the in-flight round; at quorum the lease
// extends to leaseSentAt + term − term/8.
func (r *Replica) noteGrant(from types.ProcessID) {
	if r.leaseGrants == nil {
		return
	}
	r.leaseGrants[from] = true
	if len(r.leaseGrants) >= r.leaseQuorum() {
		if until := r.leaseSentAt.Add(r.leaseTerm - r.leaseTerm/8); until.After(r.leaseUntil) {
			r.leaseUntil = until
		}
	}
}

// handleLeaseRequest answers the primary's solicitation for round n with a
// signed grant back to it.
func (r *Replica) handleLeaseRequest(from types.ProcessID, n types.SeqNum) {
	if r.leaseTerm <= 0 || r.m.Leader(r.view) != from {
		return
	}
	r.sendSigned(from, kindLeaseGrant, n, nil)
	r.mx.leaseGrants.Inc()
}

// handleLeaseGrant tallies a backup's answer to our outstanding round.
func (r *Replica) handleLeaseGrant(from types.ProcessID, n types.SeqNum) {
	if r.leaseTerm <= 0 || r.m.Leader(r.view) != r.Self() || n != r.leaseRound {
		return
	}
	r.noteGrant(from)
}

// handleReadRequest serves one client read: locally from the lease once the
// execute watermark is covered, as a fallback vote otherwise.
func (r *Replica) handleReadRequest(body []byte) {
	if r.querier == nil {
		return
	}
	// A client whose read window refilled faster than a frame round-tripped
	// coalesces the backlog into one batch body (sentinel-discriminated).
	if reqs, err := smr.DecodeReadRequestBatch(body); err == nil {
		for _, req := range reqs {
			r.handleOneRead(req)
		}
		return
	}
	req, err := smr.DecodeReadRequest(body)
	if err != nil {
		return
	}
	r.handleOneRead(req)
}

func (r *Replica) handleOneRead(req smr.ReadRequest) {
	now := time.Now()
	if !r.leaseValid(now) {
		r.replyRead(req, smr.ReadFallback)
		return
	}
	wm := r.nextSeq
	if r.execNext > wm {
		r.replyRead(req, smr.ReadLeased)
		return
	}
	if len(r.leaseReads) >= maxReadQueue {
		r.replyRead(req, smr.ReadFallback)
		return
	}
	r.leaseReads = append(r.leaseReads, pendingRead{wm: wm, req: req})
}

// replyRead queries the state machine and answers the client directly.
// ExecSeq is the last executed sequence number — identical across correct
// replicas with the same executed prefix, which is what lets fallback votes
// match.
func (r *Replica) replyRead(req smr.ReadRequest, code byte) {
	rep := smr.ReadReply{
		Replica: r.Self(),
		Client:  req.Client,
		Num:     req.Num,
		Result:  r.querier.Query(req.Op),
		Code:    code,
		ExecSeq: uint64(r.execNext - 1),
	}
	if r.readReplies == nil {
		r.readReplies = make(map[uint64][][]byte)
	}
	r.readReplies[req.Client] = append(r.readReplies[req.Client], rep.Encode())
	if code == smr.ReadLeased {
		r.mx.leasedReads.Inc()
	} else {
		r.mx.fallbackReads.Inc()
	}
}

// flushReadReplies sends the replies buffered during the current event
// burst: a lone reply goes out in its bare wire form (identical to the
// unbatched path), several to the same client coalesce into one batch
// frame.
func (r *Replica) flushReadReplies() {
	for c, reps := range r.readReplies {
		if len(reps) == 1 {
			_ = r.tr.Send(types.ProcessID(c), reps[0])
		} else {
			_ = r.tr.Send(types.ProcessID(c), smr.EncodeReadReplyBatch(reps))
		}
		delete(r.readReplies, c)
	}
}

// flushLeaseReads answers queued reads whose watermark execNext has passed,
// re-checking lease validity per read (a lapsed lease degrades the answer
// to a fallback vote, never a stale leased one).
func (r *Replica) flushLeaseReads() {
	if len(r.leaseReads) == 0 {
		return
	}
	now := time.Now()
	rest := r.leaseReads[:0]
	for _, pr := range r.leaseReads {
		if r.execNext <= pr.wm {
			rest = append(rest, pr)
			continue
		}
		if r.leaseValid(now) {
			r.replyRead(pr.req, smr.ReadLeased)
		} else {
			r.replyRead(pr.req, smr.ReadFallback)
		}
	}
	r.leaseReads = rest
}
