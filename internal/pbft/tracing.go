package pbft

// Distributed tracing, mirroring internal/minbft/tracing.go: the pipeline
// client samples and propagates a client-submit context; the primary records
// batch-wait and opens the batch trace at PRE-PREPARE; every replica that
// binds a traced slot records commit-quorum (pre-prepare to commit quorum)
// and execute, and replies close the loop on the request's own trace. PBFT
// has no ui-attest span — there is no trusted-hardware call to attribute,
// which is exactly the contrast the breakdown tables surface.

import (
	"time"

	"unidir/internal/obs/tracing"
	"unidir/internal/smr"
	"unidir/internal/transport"
	"unidir/internal/types"
)

// WithTracer attaches a distributed tracer (see minbft.WithTracer).
func WithTracer(t *tracing.Tracer) Option {
	return func(r *Replica) { r.tracer = t }
}

// reqTraceInfo remembers a sampled request between arrival and execution.
type reqTraceInfo struct {
	tc      tracing.Context
	arrived time.Time
}

// noteRequest records a sampled request's arrival (all replicas — backups
// need it for their reply spans); execute() retires the record.
func (r *Replica) noteRequest(key pendingKey, tc tracing.Context) {
	if r.tracer == nil || !tc.Sampled {
		return
	}
	r.reqTrace[key] = reqTraceInfo{tc: tc, arrived: time.Now()}
}

// startProposeSpan opens the batch trace if at least one member request is
// sampled: per-member batch-wait spans plus a propose span linking them.
func (r *Replica) startProposeSpan(batch []smr.Request) *tracing.Active {
	if r.tracer == nil {
		return nil
	}
	var infos []reqTraceInfo
	for _, req := range batch {
		if info, ok := r.reqTrace[pendingKey{req.Client, req.Num}]; ok {
			infos = append(infos, info)
		}
	}
	if len(infos) == 0 {
		return nil
	}
	// Batch-wait spans end before the propose span opens: the phases must
	// stay disjoint for the breakdown to partition client latency.
	for _, info := range infos {
		r.tracer.StartAt("batch-wait", info.tc, info.arrived).End()
	}
	span := r.tracer.Fork("propose")
	for _, info := range infos {
		span.Link(info.tc)
	}
	return span
}

// broadcastTraced is broadcast with a trace context on the frames; a zero
// context degrades to frames byte-identical to the untraced path.
func (r *Replica) broadcastTraced(kind byte, n types.SeqNum, payload []byte, tc tracing.Context) {
	signature := r.ring.Sign(signedBytes(kind, r.view, n, payload))
	msg := encodeMsg(kind, r.view, n, payload, signature)
	_ = transport.BroadcastTraced(r.tr, r.m.Others(r.Self()), msg, tc)
}

// bindSlotTrace attaches the batch context to a freshly bound slot and opens
// its commit-quorum span (covering both vote phases: pre-prepare acceptance
// through the 2f+1 commit quorum).
func (r *Replica) bindSlotTrace(sl *slot, btc tracing.Context) {
	if r.tracer == nil || !btc.Sampled || sl.quorumSpan != nil {
		return
	}
	sl.btc = btc
	sl.quorumSpan = r.tracer.Start("commit-quorum", btc)
}

// finishSlotSpans closes the slot's commit-quorum span and returns the
// execute span wrapping the batch's application (nil when untraced). While
// the execute span is open, traced replies are deferred (flushReplies sends
// them after it closes): the breakdown's phases must partition the
// client-observed latency, so the reply span cannot nest inside execute.
func (r *Replica) finishSlotSpans(sl *slot) *tracing.Active {
	sl.quorumSpan.End()
	sl.quorumSpan = nil
	sp := r.tracer.Start("execute", sl.btc)
	r.deferReplies = sp != nil
	return sp
}

// deferredReply is a traced reply held back until the batch's execute span
// closes.
type deferredReply struct {
	tc     tracing.Context
	req    smr.Request
	result []byte
}

// flushReplies sends the traced replies deferred during batch execution.
func (r *Replica) flushReplies() {
	r.deferReplies = false
	for _, d := range r.deferred {
		r.sendTracedReply(d)
	}
	r.deferred = r.deferred[:0]
}

// tracedReply sends the reply inside a reply span on the request's own
// trace, retiring the request's trace record.
func (r *Replica) tracedReply(key pendingKey, req smr.Request, result []byte) {
	info, ok := r.reqTrace[key]
	if !ok {
		r.reply(req, result)
		return
	}
	delete(r.reqTrace, key)
	d := deferredReply{tc: info.tc, req: req, result: result}
	if r.deferReplies {
		r.deferred = append(r.deferred, d)
		return
	}
	r.sendTracedReply(d)
}

func (r *Replica) sendTracedReply(d deferredReply) {
	sp := r.tracer.Start("reply", d.tc)
	rep := smr.Reply{Replica: r.Self(), Client: d.req.Client, Num: d.req.Num, Result: d.result}
	_ = transport.SendTraced(r.tr, types.ProcessID(d.req.Client), rep.Encode(), d.tc)
	sp.End()
}
