package pbft_test

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"unidir/internal/kvstore"
	"unidir/internal/obs"
	"unidir/internal/pbft"
	"unidir/internal/smr"
	"unidir/internal/types"
)

// pipe returns a pipelined KV client on endpoint n+idx, wired for the read
// fast path. PBFT fallback reads need 2f+1 matching votes so the vote set
// intersects every committed write's executor quorum.
func (h *harness) pipe(idx int, retry time.Duration) *kvstore.PipeClient {
	h.t.Helper()
	id := types.ProcessID(h.m.N + idx)
	pl, err := smr.NewPipeline(h.net.Endpoint(id), h.m.All(), h.m.Quorum(), uint64(id), retry, 64,
		smr.WithPipelineRequestEncoder(pbft.EncodeRequestEnvelope),
		smr.WithPipelineReadEncoder(pbft.EncodeReadRequestEnvelope),
		smr.WithPipelineReadBatchEncoder(pbft.EncodeReadBatchEnvelope),
		smr.WithReadQuorum(h.m.Quorum()))
	if err != nil {
		h.t.Fatalf("NewPipeline: %v", err)
	}
	h.t.Cleanup(func() { _ = pl.Close() })
	return kvstore.NewPipeClient(pl)
}

func sumCounters(reg *obs.Registry, prefix string) uint64 {
	var total uint64
	for name, v := range reg.Snapshot().Counters {
		if strings.HasPrefix(name, prefix) {
			total += v
		}
	}
	return total
}

func TestLeasedReadFastPath(t *testing.T) {
	reg := obs.NewRegistry()
	h := newHarness(t, 4, 1, 1, pbft.WithMetrics(reg))
	kv := h.pipe(0, 200*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	for i := 1; i <= 5; i++ {
		want := strconv.Itoa(i)
		if err := kv.Put(ctx, "alpha", []byte(want)); err != nil {
			t.Fatalf("Put: %v", err)
		}
		v, err := kv.GetFast(ctx, "alpha")
		if err != nil || string(v) != want {
			t.Fatalf("GetFast = %q, %v; want %q", v, err, want)
		}
	}
	if _, err := kv.GetFast(ctx, "missing"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("GetFast(missing) err = %v, want ErrNotFound", err)
	}
	if sumCounters(reg, "pbft_leased_reads_total") == 0 {
		t.Fatal("no read was served from the lease; fast path never engaged")
	}
}

// TestQuorumReadFallback disables leases: every read must complete as a
// quorum read on 2f+1 matching (executed seq, result) votes instead.
func TestQuorumReadFallback(t *testing.T) {
	reg := obs.NewRegistry()
	h := newHarness(t, 4, 1, 1, pbft.WithMetrics(reg), pbft.WithLeaseTerm(-1))
	kv := h.pipe(0, 200*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	for i := 1; i <= 3; i++ {
		want := strconv.Itoa(i)
		if err := kv.Put(ctx, "alpha", []byte(want)); err != nil {
			t.Fatalf("Put: %v", err)
		}
		v, err := kv.GetFast(ctx, "alpha")
		if err != nil || string(v) != want {
			t.Fatalf("GetFast = %q, %v; want %q", v, err, want)
		}
	}
	if sumCounters(reg, "pbft_leased_reads_total") != 0 {
		t.Fatal("a read was served from a lease despite leases being disabled")
	}
	if sumCounters(reg, "pbft_fallback_reads_total") == 0 {
		t.Fatal("no fallback votes were cast; reads completed some other way")
	}
	ref := h.logs[0].Snapshot()
	for i := 1; i < len(h.logs); i++ {
		if err := smr.CheckPrefix(ref, h.logs[i].Snapshot()); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}
}
