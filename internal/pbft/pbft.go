// Package pbft implements the normal-case operation of PBFT (Castro &
// Liskov, OSDI'99) with n = 3f+1 replicas and signed messages. It is the
// library's no-trusted-hardware SMR baseline: three communication phases
// (PRE-PREPARE, PREPARE, COMMIT) and quorums of 2f+1, against MinBFT's two
// phases and f+1 quorums at n = 2f+1 — the cost difference the paper's
// hardware classification translates into at the application level.
//
// The primary batches like MinBFT's: all pending requests are packed into
// one PRE-PREPARE (capped by WithBatchSize), so the three-phase exchange and
// its two 2f+1 quorums are paid once per batch. A batch occupies one
// sequence number; requests execute in in-batch order with per-client dedup,
// so batching changes the amortization, not the properties (DESIGN.md §5).
//
// Checkpointing (checkpoint.go): every K executed batches the replica
// snapshots its state and broadcasts a signed CHECKPOINT; 2f+1 matching
// votes make it stable, releasing all slots below and enabling state
// transfer for replicas the quorum has left behind.
//
// Scope note (DESIGN.md): view changes are not implemented; the benchmarks
// compare normal-case behavior, and the liveness tests for leader failure
// live in the MinBFT package. The view is fixed at 0.
package pbft

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"unidir/internal/obs"
	"unidir/internal/obs/tracing"
	"unidir/internal/sig"
	"unidir/internal/smr"
	"unidir/internal/syncx"
	"unidir/internal/transport"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// ErrClosed reports use of a closed replica.
var ErrClosed = errors.New("pbft: replica closed")

const (
	kindRequest byte = iota + 1
	kindPrePrepare
	kindPrepare
	kindCommit
	kindCheckpoint   // signed state digest at a sequence-number boundary
	kindStateFetch   // signed query for a stable checkpoint >= n
	kindStateResp    // stable cert (2f+1 signed votes) + state payload
	kindLeaseRequest // primary's signed lease solicitation (n: lease round)
	kindLeaseGrant   // backup's signed lease promise (n: granted round)
	kindReadRequest  // client read-only request, served off the ordering path
)

const sigDomain = "unidir/pbft/v1"

// Replica is one PBFT replica. Create with New, stop with Close.
type Replica struct {
	m    types.Membership
	tr   transport.Transport
	ring *sig.Keyring
	sm   smr.StateMachine

	execLog *smr.ExecutionLog

	events *syncx.Queue[event]
	wg     sync.WaitGroup
	cancel context.CancelFunc

	mu     sync.Mutex
	closed bool
	timers map[*time.Timer]struct{} // armed batch-deadline timers, stopped on Close

	maxBatch int

	// Flow control (see smr/flowcontrol.go), mirroring minbft's. All
	// run-goroutine-owned.
	batchDeadline    time.Duration // max hold on a partial batch; 0: cut immediately
	batchDeadlineSet bool
	batchFixed       bool // non-adaptive baseline: always wait out the deadline
	trigger          *smr.BatchTrigger
	admission        *smr.Admission
	batchStart       time.Time // arrival of the oldest unproposed pending request
	batchTimerArmed  bool      // a batch deadline timer is outstanding
	maxInFlight      int       // pipelineDepth, or adaptivePipelineDepth with a deadline
	paceDepth        int       // defer proposals past this peer send-queue depth; 0: off
	paceDepthSet     bool
	qd               transport.QueueDepther // nil unless the transport exposes depths

	// State below is owned by the run goroutine.
	view      types.View
	nextSeq   types.SeqNum // primary's next assignment
	execNext  types.SeqNum // next sequence number to execute
	slots     map[types.SeqNum]*slot
	table     *smr.ClientTable
	pending   map[pendingKey]smr.Request // primary's unproposed backlog
	proposed  map[pendingKey]bool        // requests inside an assigned slot
	proposing bool                       // re-entrancy guard for maybePropose

	// Introspection counters (status.go). Run-goroutine-owned, plain so
	// Status works without WithMetrics. Process-lifetime (reset on restart).
	proposedCount    uint64 // batches this primary assigned
	executedReqCount uint64 // requests executed

	// Leader leases for the read fast path (lease.go). Run-goroutine-owned.
	// With the view fixed at 0 the primary is the unique proposer forever,
	// so the 2f+1-grant lease here proves liveness agreement rather than
	// guarding against a competing primary; the freshness watermark is what
	// makes leased reads linearizable (see DESIGN.md §8).
	leaseTerm    time.Duration // 0: leases (and leased reads) disabled
	leaseTermSet bool
	leaseFull    bool         // require grants from all n replicas, not 2f+1
	querier      smr.Querier  // nil: the state machine cannot answer reads
	leaseRound   types.SeqNum // round counter of our outstanding LEASE-REQUEST
	leaseSentAt  time.Time
	leaseGrants  map[types.ProcessID]bool
	leaseUntil   time.Time           // zero: no lease held
	renewArmed   bool                // an 'l' renewal timer is outstanding
	leaseReads   []pendingRead       // leased reads waiting for the execute watermark
	readReplies  map[uint64][][]byte // per-client read replies coalesced within one event-loop drain

	// Checkpointing (checkpoint.go).
	snap         smr.Snapshotter // nil: state machine cannot snapshot
	ckptInterval int             // batches between checkpoints; 0 disables
	ckptVotes    map[types.SeqNum]map[types.ProcessID]ckptVote
	ownStates    map[types.SeqNum][]byte // our snapshots awaiting stability
	stable       ckptCert                // latest stable checkpoint
	stableState  []byte

	statsMu sync.Mutex
	fp      Footprint

	metricsReg *obs.Registry
	mx         metrics // all-nil (free no-ops) without WithMetrics

	// Distributed tracing (tracing.go); nil without WithTracer.
	tracer       *tracing.Tracer
	reqTrace     map[pendingKey]reqTraceInfo // sampled requests awaiting execution
	deferred     []deferredReply             // traced replies held while an execute span is open
	deferReplies bool

	lg *slog.Logger
}

type pendingKey struct {
	client, num uint64
}

// event is one unit of work for the run goroutine: a received envelope or
// an expired timer (pbft grew timers with the adaptive batch deadline;
// minbft has had the same union shape since its view-change watchdogs).
type event struct {
	env    *transport.Envelope
	timer  *timerEvent
	status chan obs.Status // introspection request; answered on the run goroutine (status.go)
}

type timerEvent struct {
	kind byte // 'b' batch deadline / pacing recheck, 'l' lease renewal
}

type slot struct {
	reqs      []smr.Request // nil until the pre-prepare binds the batch
	digest    [sha256.Size]byte
	prepares  map[types.ProcessID]bool
	commits   map[types.ProcessID]bool
	prepared  bool
	committed bool
	executed  bool

	btc        tracing.Context // batch trace (zero unless the batch is sampled)
	quorumSpan *tracing.Active // open commit-quorum span; nil when untraced
}

// maxBatchDecode bounds decoded request batches (defensive; the proposer
// side caps batches far lower).
const maxBatchDecode = 1 << 14

// pipelineDepth bounds the primary's assigned-but-unexecuted slots when
// batching is on: one batch working through the three phases while the next
// accumulates (same rationale as minbft's: deeper pipelines drain arrivals
// into tiny batches and per-batch authentication overhead dominates).
const pipelineDepth = 2

// Option configures a Replica.
type Option func(*Replica)

// WithExecutionLog attaches a command log for consistency checks.
func WithExecutionLog(l *smr.ExecutionLog) Option {
	return func(r *Replica) { r.execLog = l }
}

// WithBatchSize caps how many pending requests the primary packs into one
// PRE-PREPARE. k <= 1 disables batching (every request is its own slot, the
// pre-batching behavior). The default comes from smr.DefaultBatchSize (the
// UNIDIR_BATCH environment knob).
func WithBatchSize(k int) Option {
	return func(r *Replica) {
		if k < 1 {
			k = 1
		}
		if k > maxBatchDecode {
			k = maxBatchDecode
		}
		r.maxBatch = k
	}
}

// WithBatchDeadline sets the adaptive batching deadline, exactly as
// minbft.WithBatchDeadline: a size-or-deadline trigger whose EWMA of the
// arrival rate cuts partial batches immediately at light load and holds
// them — never past d — to fill toward the cap near saturation. d == 0
// disables deadline triggering (fixed two-deep pipeline, the pre-adaptive
// behavior). The default comes from smr.DefaultBatchDeadline (the
// UNIDIR_BATCH_DEADLINE environment knob).
func WithBatchDeadline(d time.Duration) Option {
	return func(r *Replica) {
		if d < 0 {
			d = 0
		}
		r.batchDeadline = d
		r.batchDeadlineSet = true
	}
}

// WithFixedBatchWindow makes the primary hold every partial batch for the
// full batch deadline regardless of load or pipeline state — the classic
// fixed batch timer, kept as the A/B baseline for the adaptive trigger
// (benchharness B9's "fixed" mode).
func WithFixedBatchWindow() Option {
	return func(r *Replica) { r.batchFixed = true }
}

// WithAdmission sets the replica's admission bounds (pending-queue cap and
// per-client token bucket; see smr.AdmissionConfig). Shed requests get an
// overload-coded reply; with n = 3f+1 and uniform bounds, at least f+1
// correct replicas shed together and the client observes a quorum-backed
// retryable smr.ErrOverloaded. The default comes from
// smr.DefaultAdmissionConfig (the UNIDIR_ADMIT_* environment knobs).
func WithAdmission(cfg smr.AdmissionConfig) Option {
	return func(r *Replica) {
		r.admission = smr.NewAdmission(cfg)
	}
}

// WithProposalPacing makes the primary defer cutting new batches while any
// peer's transport send queue holds depth or more frames (requires a
// transport.QueueDepther transport; otherwise a no-op). depth <= 0 disables
// pacing. The default comes from smr.DefaultPaceDepth (the UNIDIR_PACE_DEPTH
// environment knob).
func WithProposalPacing(depth int) Option {
	return func(r *Replica) {
		if depth < 0 {
			depth = 0
		}
		r.paceDepth = depth
		r.paceDepthSet = true
	}
}

// WithLeaseTerm sets the leader-lease term for the linearizable read fast
// path (lease.go), exactly as minbft.WithLeaseTerm: d > 0 sets it, d < 0
// disables leases, d == 0 keeps the smr.DefaultLeaseTerm default (the
// UNIDIR_LEASE environment knob). All replicas must agree on the term.
func WithLeaseTerm(d time.Duration) Option {
	return func(r *Replica) {
		if d < 0 {
			d = 0
		} else if d == 0 {
			return // keep the environment default
		}
		r.leaseTerm = d
		r.leaseTermSet = true
	}
}

// WithLogger attaches a structured logger; consensus progress (committed
// batches, stable checkpoints, state transfers) is reported through it with
// view/seq attrs, and lines on a sampled request's path carry the trace ID
// under obs.TraceKey.
func WithLogger(l *slog.Logger) Option {
	return func(r *Replica) { r.lg = obs.OrNop(l) }
}

// WithCheckpointInterval sets how many executed batches separate
// checkpoints (k <= 0 disables; 0-default from smr.DefaultCheckpointInterval,
// the UNIDIR_CKPT knob). Requires an smr.Snapshotter state machine;
// ignored otherwise.
func WithCheckpointInterval(k int) Option {
	return func(r *Replica) {
		if k <= 0 {
			k = -1 // explicitly disabled (0 means "use the default")
		}
		r.ckptInterval = k
	}
}

// New starts a replica (requires n >= 3f+1).
func New(m types.Membership, tr transport.Transport, ring *sig.Keyring, sm smr.StateMachine, opts ...Option) (*Replica, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.N < 3*m.F+1 {
		return nil, fmt.Errorf("pbft: requires n >= 3f+1, got n=%d f=%d", m.N, m.F)
	}
	if ring.Self() != tr.Self() {
		return nil, fmt.Errorf("pbft: keyring %v != endpoint %v", ring.Self(), tr.Self())
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Replica{
		m:         m,
		tr:        tr,
		ring:      ring,
		sm:        sm,
		maxBatch:  smr.DefaultBatchSize(),
		events:    syncx.NewQueue[event](),
		cancel:    cancel,
		timers:    make(map[*time.Timer]struct{}),
		execNext:  1,
		slots:     make(map[types.SeqNum]*slot),
		table:     smr.NewClientTable(),
		pending:   make(map[pendingKey]smr.Request),
		proposed:  make(map[pendingKey]bool),
		ckptVotes: make(map[types.SeqNum]map[types.ProcessID]ckptVote),
		ownStates: make(map[types.SeqNum][]byte),
		reqTrace:  make(map[pendingKey]reqTraceInfo),
		lg:        obs.NopLogger(),
	}
	for _, opt := range opts {
		opt(r)
	}
	if !r.batchDeadlineSet {
		r.batchDeadline = smr.DefaultBatchDeadline()
	}
	if !r.paceDepthSet {
		r.paceDepth = smr.DefaultPaceDepth()
	}
	if r.admission == nil {
		r.admission = smr.NewAdmission(smr.DefaultAdmissionConfig())
	}
	if r.batchFixed {
		r.trigger = smr.NewFixedBatchTrigger(r.maxBatch, r.batchDeadline)
	} else {
		r.trigger = smr.NewBatchTrigger(r.maxBatch, r.batchDeadline)
	}
	r.maxInFlight = pipelineDepth
	if qd, ok := tr.(transport.QueueDepther); ok {
		r.qd = qd
	}
	if snap, ok := sm.(smr.Snapshotter); ok {
		r.snap = snap
	}
	if q, ok := sm.(smr.Querier); ok {
		r.querier = q
	}
	if !r.leaseTermSet {
		r.leaseTerm = smr.DefaultLeaseTerm()
	}
	if r.querier == nil {
		// Without a Querier nothing can answer a read; skip lease traffic.
		r.leaseTerm = 0
	}
	// PBFT's 2f+1 minimum grant quorum already intersects every view-change
	// quorum in a correct replica, so the minimum is the default.
	r.leaseFull = smr.LeaseQuorumFull(true)
	switch {
	case r.ckptInterval == 0:
		r.ckptInterval = smr.DefaultCheckpointInterval()
	case r.ckptInterval < 0:
		r.ckptInterval = 0
	}
	r.initMetrics()
	r.wg.Add(2)
	go r.recvLoop(ctx)
	go r.run(ctx)
	return r, nil
}

// Self returns the replica's process ID.
func (r *Replica) Self() types.ProcessID { return r.tr.Self() }

// Close stops the replica and cancels any armed batch timer, so no
// time.AfterFunc callback outlives the replica.
func (r *Replica) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	for t := range r.timers {
		t.Stop()
	}
	r.timers = nil
	r.mu.Unlock()
	r.cancel()
	r.events.Close()
	_ = r.tr.Close()
	r.wg.Wait()
	return nil
}

func (r *Replica) recvLoop(ctx context.Context) {
	defer r.wg.Done()
	for {
		env, err := r.tr.Recv(ctx)
		if err != nil {
			return
		}
		e := env
		r.events.Push(event{env: &e})
	}
}

func (r *Replica) run(ctx context.Context) {
	defer r.wg.Done()
	// The primary solicits its first lease up front so the read fast path
	// is live before the first read arrives.
	r.renewLease()
	for {
		// Draining the whole backlog per wakeup lets read replies produced
		// while processing one burst coalesce into one frame per client
		// (flushReadReplies) instead of one frame per read.
		evs, err := r.events.PopAll(ctx)
		if err != nil {
			return
		}
		for _, ev := range evs {
			switch {
			case ev.env != nil:
				r.handle(*ev.env)
			case ev.timer != nil:
				r.handleTimer(*ev.timer)
			case ev.status != nil:
				ev.status <- r.buildStatus()
			}
		}
		r.flushReadReplies()
	}
}

// afterTimeout arms a timer that pushes te into the event queue after d
// (the same shape as minbft's watchdog plumbing; pbft only uses it for the
// batch deadline). Timers are tracked so Close can stop them.
func (r *Replica) afterTimeout(d time.Duration, te timerEvent) {
	t := te
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	var tm *time.Timer
	tm = time.AfterFunc(d, func() {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return
		}
		delete(r.timers, tm)
		r.mu.Unlock()
		r.events.Push(event{timer: &t})
	})
	r.timers[tm] = struct{}{}
}

func (r *Replica) handleTimer(te timerEvent) {
	switch te.kind {
	case 'b':
		// Batch deadline (or pacing recheck) expired: cut whatever is
		// pending, however partial.
		r.batchTimerArmed = false
		r.maybePropose()
	case 'l':
		r.renewArmed = false
		r.renewLease()
	}
}

// --- wire ---

// signedBytes binds kind, view, seq, and digest for PREPARE/COMMIT, or the
// full request bytes for PRE-PREPARE.
func signedBytes(kind byte, v types.View, n types.SeqNum, payload []byte) []byte {
	e := wire.NewEncoder(48 + len(payload))
	e.String(sigDomain)
	e.Byte(kind)
	e.Uint64(uint64(v))
	e.Uint64(uint64(n))
	e.BytesField(payload)
	return e.Bytes()
}

func encodeMsg(kind byte, v types.View, n types.SeqNum, payload, signature []byte) []byte {
	e := wire.NewEncoder(48 + len(payload) + len(signature))
	e.Byte(kind)
	e.Uint64(uint64(v))
	e.Uint64(uint64(n))
	e.BytesField(payload)
	e.BytesField(signature)
	return e.Bytes()
}

func decodeMsg(b []byte) (kind byte, v types.View, n types.SeqNum, payload, signature []byte, err error) {
	d := wire.NewDecoder(b)
	kind = d.Byte()
	v = types.View(d.Uint64())
	n = types.SeqNum(d.Uint64())
	payload = append([]byte(nil), d.BytesField()...)
	signature = append([]byte(nil), d.BytesField()...)
	if err := d.Finish(); err != nil {
		return 0, 0, 0, nil, nil, fmt.Errorf("pbft: decode: %w", err)
	}
	return kind, v, n, payload, signature, nil
}

// EncodeRequestEnvelope wraps a client request for submission to replicas.
func EncodeRequestEnvelope(req smr.Request) []byte {
	return encodeMsg(kindRequest, 0, 0, req.Encode(), nil)
}

// EncodeReadRequestEnvelope wraps a client read for the fast path; pass it
// to smr.WithPipelineReadEncoder when building a pipelined client.
func EncodeReadRequestEnvelope(req smr.ReadRequest) []byte {
	return encodeMsg(kindReadRequest, 0, 0, req.Encode(), nil)
}

// EncodeReadBatchEnvelope wraps a coalesced batch of encoded reads; pass it
// to smr.WithPipelineReadBatchEncoder when building a pipelined client.
func EncodeReadBatchEnvelope(reqs [][]byte) []byte {
	return encodeMsg(kindReadRequest, 0, 0, smr.EncodeReadRequestBatch(reqs), nil)
}

func (r *Replica) broadcast(kind byte, n types.SeqNum, payload []byte) {
	r.broadcastTraced(kind, n, payload, tracing.Context{})
}

// sendSigned signs and sends one message point-to-point (lease grants go
// only to the primary; everything quorum-forming is broadcast).
func (r *Replica) sendSigned(to types.ProcessID, kind byte, n types.SeqNum, payload []byte) {
	signature := r.ring.Sign(signedBytes(kind, r.view, n, payload))
	_ = r.tr.Send(to, encodeMsg(kind, r.view, n, payload, signature))
}

// --- handlers ---

func (r *Replica) handle(env transport.Envelope) {
	kind, v, n, payload, signature, err := decodeMsg(env.Payload)
	if err != nil {
		return
	}
	switch kind {
	case kindRequest:
		req, err := smr.DecodeRequest(payload)
		if err != nil {
			return
		}
		r.handleRequest(req, env.Trace)
		return
	case kindReadRequest:
		r.handleReadRequest(payload)
		return
	case kindPrePrepare, kindPrepare, kindCommit, kindCheckpoint, kindStateFetch, kindStateResp,
		kindLeaseRequest, kindLeaseGrant:
		if v != r.view {
			return
		}
		if !r.m.Contains(env.From) {
			return
		}
		if err := r.ring.Verify(env.From, signedBytes(kind, v, n, payload), signature); err != nil {
			return
		}
	default:
		return
	}
	switch kind {
	case kindPrePrepare:
		r.handlePrePrepare(env.From, n, payload, env.Trace)
	case kindPrepare:
		r.handlePrepare(env.From, n, payload)
	case kindCommit:
		r.handleCommit(env.From, n, payload)
	case kindCheckpoint:
		r.handleCheckpoint(env.From, n, payload, signature)
	case kindStateFetch:
		r.handleStateFetch(env.From, n)
	case kindStateResp:
		r.handleStateResp(payload)
	case kindLeaseRequest:
		r.handleLeaseRequest(env.From, n)
	case kindLeaseGrant:
		r.handleLeaseGrant(env.From, n)
	}
}

func (r *Replica) handleRequest(req smr.Request, tc tracing.Context) {
	if result, ok := r.table.CachedReply(req); ok {
		r.reply(req, result)
		return
	}
	key := pendingKey{req.Client, req.Num}
	if !r.table.ShouldExecute(req) {
		// Same reasoning as minbft: a num below the client's last executed
		// one can never execute (per-client order in the table), which
		// happens when an earlier shed left a gap that later pipelined
		// requests overtook. Purge any stranded pending copy and reply
		// overloaded so the client's vote count converges.
		if _, stranded := r.pending[key]; stranded {
			delete(r.pending, key)
			delete(r.reqTrace, key)
			r.mx.pendingDepth.Set(int64(len(r.pending)))
		}
		r.mx.sheds.Inc()
		r.replyOverloaded(req)
		return
	}
	if _, dup := r.pending[key]; dup {
		return
	}
	if r.proposed[key] {
		return // already inside an assigned slot
	}
	// Admission runs at every replica — backups track pending (awaiting a
	// covering pre-prepare) purely for this accounting — so under uniform
	// overload at least f+1 correct replicas shed together and the client
	// observes a quorum-backed ErrOverloaded, not one replica's claim.
	now := time.Now()
	if !r.admission.Admit(req.Client, len(r.pending), now) {
		r.mx.sheds.Inc()
		r.replyOverloaded(req)
		return
	}
	r.noteRequest(key, tc)
	r.pending[key] = req
	r.mx.pendingDepth.Set(int64(len(r.pending)))
	if r.m.Leader(r.view) != r.Self() {
		return // backups wait for the primary's pre-prepare
	}
	r.trigger.Arrive(now)
	if r.batchStart.IsZero() {
		r.batchStart = now
	}
	r.maybePropose()
}

// maybePropose packs the primary's backlog into PRE-PREPAREs, up to maxBatch
// requests each. With batching on, at most maxInFlight slots are assigned
// but unexecuted at a time — working through the three phases while the
// next accumulates; with a batch deadline the cut is size-or-deadline (see
// minbft's maybePropose, the same valve); with maxBatch <= 1 every request
// goes out immediately in its own slot (the unbatched baseline).
func (r *Replica) maybePropose() {
	if r.m.Leader(r.view) != r.Self() || r.proposing {
		return
	}
	r.proposing = true
	defer func() { r.proposing = false }()
	for {
		if r.maxBatch > 1 && int(r.nextSeq)-int(r.execNext)+1 >= r.maxInFlight {
			return
		}
		// Backpressure: defer cutting while some peer's send queue is
		// saturated, rechecking on a timer.
		if r.paceDepth > 0 && r.qd != nil &&
			transport.MaxQueueDepth(r.tr, r.m.Others(r.Self())) >= r.paceDepth {
			r.mx.pacedProposals.Inc()
			r.armBatchTimer(r.paceRecheck())
			return
		}
		batch := make([]smr.Request, 0, r.maxBatch)
		for _, req := range sortedPending(r.pending) {
			key := pendingKey{req.Client, req.Num}
			if !r.table.ShouldExecute(req) {
				delete(r.pending, key) // executed meanwhile
				delete(r.reqTrace, key)
				continue
			}
			batch = append(batch, req)
			if len(batch) >= r.maxBatch {
				break
			}
		}
		if len(batch) == 0 {
			r.batchStart = time.Time{}
			return
		}
		if r.maxBatch > 1 && len(batch) < r.maxBatch {
			inflight := int(r.nextSeq) - int(r.execNext) + 1
			if wait := r.trigger.Wait(len(batch), inflight, r.batchStart, time.Now()); wait > 0 {
				r.armBatchTimer(wait)
				return
			}
		}
		if !r.batchStart.IsZero() {
			r.mx.batchWait.Observe(time.Since(r.batchStart).Seconds())
		}
		r.nextSeq++
		n := r.nextSeq
		payload := smr.EncodeRequests(batch)
		digest := sha256.Sum256(payload)
		r.proposedCount++
		r.mx.proposedBatches.Inc()
		r.mx.batchSize.Observe(float64(len(batch)))
		span := r.startProposeSpan(batch)
		btc := span.Context()
		r.broadcastTraced(kindPrePrepare, n, payload, btc)
		span.End()
		// The primary's pre-prepare stands for its prepare.
		sl := r.slot(n)
		r.adopt(sl, batch, digest)
		r.bindSlotTrace(sl, btc)
		sl.prepares[r.Self()] = true
		for _, req := range batch {
			key := pendingKey{req.Client, req.Num}
			delete(r.pending, key)
			r.proposed[key] = true
		}
		// Anything still unproposed starts accumulating a fresh batch now.
		if len(r.pending) > 0 {
			r.batchStart = time.Now()
		} else {
			r.batchStart = time.Time{}
		}
		r.progress(n, sl)
	}
}

// paceRecheck is how long a paced primary waits before re-inspecting peer
// queue depths.
func (r *Replica) paceRecheck() time.Duration {
	if r.batchDeadline > 0 {
		return r.batchDeadline
	}
	return 100 * time.Microsecond
}

// armBatchTimer schedules one deadline/pacing recheck; at most one is
// outstanding so deferred cuts cannot pile up timer events.
func (r *Replica) armBatchTimer(d time.Duration) {
	if r.batchTimerArmed {
		return
	}
	r.batchTimerArmed = true
	r.afterTimeout(d, timerEvent{kind: 'b'})
}

// sortedPending yields the backlog in a deterministic order.
func sortedPending(pending map[pendingKey]smr.Request) []smr.Request {
	out := make([]smr.Request, 0, len(pending))
	for _, req := range pending {
		out = append(out, req)
	}
	smr.SortRequests(out)
	return out
}

func (r *Replica) slot(n types.SeqNum) *slot {
	sl := r.slots[n]
	if sl == nil {
		sl = &slot{
			prepares: make(map[types.ProcessID]bool),
			commits:  make(map[types.ProcessID]bool),
		}
		r.slots[n] = sl
	}
	return sl
}

func (r *Replica) adopt(sl *slot, reqs []smr.Request, digest [sha256.Size]byte) {
	if sl.reqs == nil {
		sl.reqs = reqs
		sl.digest = digest
	}
}

func (r *Replica) handlePrePrepare(from types.ProcessID, n types.SeqNum, payload []byte, tc tracing.Context) {
	if r.m.Leader(r.view) != from || n == 0 || n <= r.stable.Seq {
		return
	}
	reqs, err := smr.DecodeRequests(payload, maxBatchDecode)
	if err != nil {
		return
	}
	digest := sha256.Sum256(payload)
	sl := r.slot(n)
	if sl.reqs != nil && sl.digest != digest {
		return // conflicting pre-prepare for a bound slot: ignore
	}
	r.adopt(sl, reqs, digest)
	r.bindSlotTrace(sl, tc)
	sl.prepares[from] = true
	if !sl.prepares[r.Self()] {
		sl.prepares[r.Self()] = true
		r.broadcast(kindPrepare, n, digest[:])
	}
	r.progress(n, sl)
}

func (r *Replica) handlePrepare(from types.ProcessID, n types.SeqNum, digest []byte) {
	if len(digest) != sha256.Size || n <= r.stable.Seq {
		return // released slots take no further votes
	}
	sl := r.slot(n)
	if sl.reqs != nil {
		var d [sha256.Size]byte
		copy(d[:], digest)
		if d != sl.digest {
			return
		}
	}
	sl.prepares[from] = true
	r.progress(n, sl)
}

func (r *Replica) handleCommit(from types.ProcessID, n types.SeqNum, digest []byte) {
	if len(digest) != sha256.Size || n <= r.stable.Seq {
		return // released slots take no further votes
	}
	sl := r.slot(n)
	if sl.reqs != nil {
		var d [sha256.Size]byte
		copy(d[:], digest)
		if d != sl.digest {
			return
		}
	}
	sl.commits[from] = true
	r.progress(n, sl)
}

// progress advances a slot through prepared -> committed -> executed, then
// gives the primary a chance to propose the next accumulated batch.
func (r *Replica) progress(n types.SeqNum, sl *slot) {
	// Prepared: pre-prepare plus 2f matching prepares (the quorum of 2f+1
	// counting the primary's pre-prepare; our bookkeeping folds both into
	// the prepares set).
	if !sl.prepared && sl.reqs != nil && len(sl.prepares) >= r.m.Quorum() {
		sl.prepared = true
		if !sl.commits[r.Self()] {
			sl.commits[r.Self()] = true
			r.broadcast(kindCommit, n, sl.digest[:])
		}
	}
	if !sl.committed && sl.prepared && len(sl.commits) >= r.m.Quorum() {
		sl.committed = true
		if sl.btc.Sampled {
			r.lg.Debug("batch committed", "view", r.view, "seq", n, "reqs", len(sl.reqs), obs.TraceKey, sl.btc.Trace)
		} else {
			r.lg.Debug("batch committed", "view", r.view, "seq", n, "reqs", len(sl.reqs))
		}
	}
	// Execute whole batches in contiguous sequence order.
	executed := false
	for {
		next := r.slots[r.execNext]
		if next == nil || !next.committed || next.executed || next.reqs == nil {
			break
		}
		next.executed = true
		seq := r.execNext
		r.execNext++
		execSpan := r.finishSlotSpans(next)
		for _, req := range next.reqs {
			r.execute(req)
		}
		execSpan.End()
		r.flushReplies()
		r.executedReqCount += uint64(len(next.reqs))
		r.mx.executedBatches.Inc()
		r.mx.executedReqs.Add(uint64(len(next.reqs)))
		if r.ckptEnabled() && uint64(seq)%uint64(r.ckptInterval) == 0 {
			r.takeCheckpoint(seq)
		}
		executed = true
	}
	if executed {
		r.mx.openSlots.Set(int64(len(r.slots)))
		r.mx.pendingDepth.Set(int64(len(r.pending)))
		r.flushLeaseReads()
		r.maybePropose()
	}
}

func (r *Replica) execute(req smr.Request) {
	key := pendingKey{req.Client, req.Num}
	delete(r.pending, key)
	delete(r.proposed, key)
	if !r.table.ShouldExecute(req) {
		delete(r.reqTrace, key)
		if result, ok := r.table.CachedReply(req); ok {
			r.reply(req, result)
		}
		return
	}
	if r.execLog != nil {
		r.execLog.Record(req.Encode())
	}
	result := r.sm.Apply(req.Op)
	r.table.Executed(req, result)
	r.tracedReply(key, req, result)
}

func (r *Replica) reply(req smr.Request, result []byte) {
	rep := smr.Reply{Replica: r.Self(), Client: req.Client, Num: req.Num, Result: result}
	_ = r.tr.Send(types.ProcessID(req.Client), rep.Encode())
}

// replyOverloaded sheds a request with an overload-coded reply; the client
// acts on it only once f+1 replicas agree (see smr.Reply).
func (r *Replica) replyOverloaded(req smr.Request) {
	rep := smr.Reply{Replica: r.Self(), Client: req.Client, Num: req.Num, Code: smr.ReplyOverloaded}
	_ = r.tr.Send(types.ProcessID(req.Client), rep.Encode())
}
