package pbft

// PBFT checkpointing, log GC, and state transfer (Castro & Liskov §4.3),
// scoped to the package's fixed-view normal case.
//
// Every K executed batches (K = WithCheckpointInterval, default
// smr.DefaultCheckpointInterval) a replica snapshots its state machine plus
// client table and broadcasts a signed CHECKPOINT(n, digest). 2f+1 matching
// votes make the checkpoint stable — here the quorum is 2f+1 (not MinBFT's
// f+1) because without trusted counters f of the voters may be Byzantine
// and a further f unreachable, and stability must still be backed by f+1
// correct replicas — after which all slots at or below n are released.
// Unlike MinBFT there is no per-peer ordered cursor, so GC needs no
// watermark bookkeeping: a late message for a released slot is simply
// ignored (n <= stable seq).
//
// A replica that sees a stable-checkpoint quorum beyond its own execution
// broadcasts a signed STATE-FETCH; peers answer with their stable
// certificate (the 2f+1 signed votes) plus the state payload, which the
// requester verifies against the membership's keys and the digest before
// installing. Every further checkpoint vote beyond the quorum re-triggers
// the fetch, which substitutes for a retry timer in this timer-free
// package.

import (
	"crypto/sha256"
	"fmt"

	"unidir/internal/smr"
	"unidir/internal/transport"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// ckptVote is one received CHECKPOINT: the digest voted for and the
// sender's signature over the full signed message (kept for certificates).
type ckptVote struct {
	digest [sha256.Size]byte
	sig    []byte
}

// ckptCert is a stable-checkpoint certificate: 2f+1 signed votes on
// (Seq, Digest), verifiable by anyone holding the membership's keys.
type ckptCert struct {
	Seq    types.SeqNum
	Digest [sha256.Size]byte
	Votes  []certVote
}

type certVote struct {
	Sender types.ProcessID
	Sig    []byte
}

// maxCertVotes bounds decoded certificate vote lists (defensive).
const maxCertVotes = 1 << 10

func encodeCkptCert(e *wire.Encoder, c ckptCert) {
	e.Uint64(uint64(c.Seq))
	e.BytesField(c.Digest[:])
	e.Int(len(c.Votes))
	for _, v := range c.Votes {
		e.Int(int(v.Sender))
		e.BytesField(v.Sig)
	}
}

func decodeCkptCert(d *wire.Decoder) (ckptCert, error) {
	var c ckptCert
	c.Seq = types.SeqNum(d.Uint64())
	h := d.BytesField()
	n := d.Int()
	if err := d.Err(); err != nil {
		return ckptCert{}, err
	}
	if len(h) != sha256.Size {
		return ckptCert{}, fmt.Errorf("pbft: cert digest length %d", len(h))
	}
	copy(c.Digest[:], h)
	if n < 0 || n > maxCertVotes {
		return ckptCert{}, fmt.Errorf("pbft: cert with %d votes", n)
	}
	for i := 0; i < n; i++ {
		var v certVote
		v.Sender = types.ProcessID(d.Int())
		v.Sig = append([]byte(nil), d.BytesField()...)
		if err := d.Err(); err != nil {
			return ckptCert{}, err
		}
		c.Votes = append(c.Votes, v)
	}
	return c, nil
}

func encodeStateRespPayload(cert ckptCert, state []byte) []byte {
	e := wire.NewEncoder(256 + len(state))
	encodeCkptCert(e, cert)
	e.BytesField(state)
	return e.Bytes()
}

func decodeStateRespPayload(b []byte) (ckptCert, []byte, error) {
	d := wire.NewDecoder(b)
	cert, err := decodeCkptCert(d)
	if err != nil {
		return ckptCert{}, nil, err
	}
	state := append([]byte(nil), d.BytesField()...)
	if err := d.Finish(); err != nil {
		return ckptCert{}, nil, fmt.Errorf("pbft: decode state resp: %w", err)
	}
	return cert, state, nil
}

// Footprint reports the sizes checkpointing bounds, for tests and
// monitoring (updated at each stable-checkpoint advance).
type Footprint struct {
	StableSeq types.SeqNum // sequence number of the stable checkpoint
	Slots     int          // slot records retained
}

// Footprint returns the replica's log sizes as of the last stable advance.
func (r *Replica) Footprint() Footprint {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.fp
}

func (r *Replica) updateFootprint() {
	fp := Footprint{StableSeq: r.stable.Seq, Slots: len(r.slots)}
	r.statsMu.Lock()
	r.fp = fp
	r.statsMu.Unlock()
}

func (r *Replica) ckptEnabled() bool {
	return r.snap != nil && r.ckptInterval > 0
}

// takeCheckpoint snapshots at sequence n, broadcasts a signed CHECKPOINT,
// and records our own vote.
func (r *Replica) takeCheckpoint(n types.SeqNum) {
	state := smr.EncodeCheckpointState(r.snap.Snapshot(), r.table)
	r.ownStates[n] = state
	digest := sha256.Sum256(state)
	sig := r.ring.Sign(signedBytes(kindCheckpoint, r.view, n, digest[:]))
	msg := encodeMsg(kindCheckpoint, r.view, n, digest[:], sig)
	_ = transport.Broadcast(r.tr, r.m.Others(r.Self()), msg)
	r.mx.ckptTaken.Inc()
	r.mx.trace.Record("checkpoint", "seq %d digest %x", n, digest[:4])
	r.recordCkptVote(r.Self(), n, ckptVote{digest: digest, sig: sig})
}

func (r *Replica) handleCheckpoint(from types.ProcessID, n types.SeqNum, payload, sig []byte) {
	if len(payload) != sha256.Size {
		return
	}
	var digest [sha256.Size]byte
	copy(digest[:], payload)
	r.recordCkptVote(from, n, ckptVote{digest: digest, sig: sig})
}

// recordCkptVote files one checkpoint vote; 2f+1 matching votes advance the
// stable checkpoint (or, if they prove the cluster is past us, trigger a
// state fetch).
func (r *Replica) recordCkptVote(from types.ProcessID, n types.SeqNum, vote ckptVote) {
	if !r.ckptEnabled() || n == 0 || n <= r.stable.Seq {
		return
	}
	if uint64(n)%uint64(r.ckptInterval) != 0 {
		return // off-boundary: not a checkpoint any correct replica takes
	}
	votes := r.ckptVotes[n]
	if votes == nil {
		votes = make(map[types.ProcessID]ckptVote)
		r.ckptVotes[n] = votes
	}
	if _, dup := votes[from]; dup {
		return
	}
	votes[from] = vote

	same := make([]certVote, 0, len(votes))
	for p, v := range votes {
		if v.digest == vote.digest {
			same = append(same, certVote{Sender: p, Sig: v.sig})
		}
	}
	if len(same) < r.m.Quorum() {
		return
	}
	cert := ckptCert{Seq: n, Digest: vote.digest, Votes: same}
	if n >= r.execNext {
		// Proof the cluster executed past us. Ask for the state; each
		// further vote will land here again, which doubles as the retry.
		r.broadcast(kindStateFetch, n, nil)
		return
	}
	state := r.ownStates[n]
	if state == nil {
		return
	}
	r.advanceStable(cert, state)
}

// advanceStable installs a stable checkpoint we hold the state for and
// releases every slot it subsumes.
func (r *Replica) advanceStable(cert ckptCert, state []byte) {
	if cert.Seq <= r.stable.Seq {
		return
	}
	r.stable = cert
	r.stableState = state
	for n := range r.slots {
		if n <= cert.Seq {
			delete(r.slots, n)
		}
	}
	for n := range r.ckptVotes {
		if n <= cert.Seq {
			delete(r.ckptVotes, n)
		}
	}
	for n := range r.ownStates {
		if n <= cert.Seq {
			delete(r.ownStates, n)
		}
	}
	r.mx.ckptStable.Inc()
	r.mx.openSlots.Set(int64(len(r.slots)))
	r.mx.trace.Record("checkpoint-stable", "seq %d stable (%d votes), slots released", cert.Seq, len(cert.Votes))
	r.lg.Info("checkpoint stable", "view", r.view, "seq", cert.Seq, "votes", len(cert.Votes), "slots", len(r.slots))
	r.updateFootprint()
}

// verifyCkptCert checks 2f+1 distinct member signatures over the
// certificate's (seq, digest).
func (r *Replica) verifyCkptCert(cert ckptCert) error {
	if len(cert.Votes) < r.m.Quorum() {
		return fmt.Errorf("pbft: cert with %d votes", len(cert.Votes))
	}
	signed := signedBytes(kindCheckpoint, r.view, cert.Seq, cert.Digest[:])
	seen := make(map[types.ProcessID]bool, len(cert.Votes))
	for _, v := range cert.Votes {
		if seen[v.Sender] || !r.m.Contains(v.Sender) {
			return fmt.Errorf("pbft: bad cert voter %v", v.Sender)
		}
		seen[v.Sender] = true
		if err := r.ring.Verify(v.Sender, signed, v.Sig); err != nil {
			return err
		}
	}
	return nil
}

func (r *Replica) handleStateFetch(from types.ProcessID, n types.SeqNum) {
	if r.stable.Seq < n || r.stableState == nil {
		return
	}
	payload := encodeStateRespPayload(r.stable, r.stableState)
	sig := r.ring.Sign(signedBytes(kindStateResp, r.view, r.stable.Seq, payload))
	_ = r.tr.Send(from, encodeMsg(kindStateResp, r.view, r.stable.Seq, payload, sig))
}

// handleStateResp verifies and installs a stable checkpoint ahead of our
// execution: certificate signatures, digest over the payload, then the
// state machine and client table; execution resumes just past it.
func (r *Replica) handleStateResp(payload []byte) {
	cert, state, err := decodeStateRespPayload(payload)
	if err != nil || !r.ckptEnabled() {
		return
	}
	if cert.Seq < r.execNext {
		return // already there (or past it)
	}
	if r.verifyCkptCert(cert) != nil {
		return
	}
	if sha256.Sum256(state) != cert.Digest {
		return
	}
	app, table, err := smr.DecodeCheckpointState(state)
	if err != nil {
		return
	}
	if r.snap.Restore(app) != nil {
		return
	}
	r.table = table
	r.execNext = cert.Seq + 1
	r.mx.stateTransfers.Inc()
	r.mx.trace.Record("state-transfer", "installed checkpoint seq %d (%d bytes)", cert.Seq, len(state))
	r.lg.Info("state transfer installed", "view", r.view, "seq", cert.Seq, "bytes", len(state))
	if r.nextSeq < cert.Seq {
		r.nextSeq = cert.Seq
	}
	r.advanceStable(cert, state)
	// Anything already buffered above the checkpoint may now be executable.
	r.progress(r.execNext, r.slot(r.execNext))
}
