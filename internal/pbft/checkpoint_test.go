package pbft_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"unidir/internal/kvstore"
	"unidir/internal/pbft"
	"unidir/internal/sig"
	"unidir/internal/simnet"
	"unidir/internal/smr"
	"unidir/internal/types"
)

// newCkptHarness is newHarness with replica options (checkpoint interval,
// batch size) threaded through.
func newCkptHarness(t *testing.T, n, f, clients int, opts ...pbft.Option) *harness {
	t.Helper()
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	netM, err := types.NewMembership(n+clients, f)
	if err != nil {
		t.Fatalf("net membership: %v", err)
	}
	net, err := simnet.New(netM)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	rings, err := sig.NewKeyrings(m, sig.HMAC, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}
	h := &harness{t: t, m: m, net: net,
		replicas: make([]*pbft.Replica, n),
		logs:     make([]*smr.ExecutionLog, n)}
	for i := 0; i < n; i++ {
		h.logs[i] = &smr.ExecutionLog{}
		all := append([]pbft.Option{pbft.WithExecutionLog(h.logs[i])}, opts...)
		rep, err := pbft.New(m, net.Endpoint(types.ProcessID(i)), rings[i], kvstore.New(), all...)
		if err != nil {
			t.Fatalf("pbft.New: %v", err)
		}
		h.replicas[i] = rep
	}
	t.Cleanup(func() {
		for _, r := range h.replicas {
			if r != nil {
				_ = r.Close()
			}
		}
		net.Close()
	})
	return h
}

func waitPBFTFootprint(t *testing.T, h *harness, d time.Duration, pred func(pbft.Footprint) bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for i, rep := range h.replicas {
		for !pred(rep.Footprint()) {
			if time.Now().After(deadline) {
				t.Fatalf("replica %d footprint never converged: %+v", i, rep.Footprint())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestCheckpointGCReleasesSlots(t *testing.T) {
	const interval = 2
	h := newCkptHarness(t, 4, 1, 1, pbft.WithCheckpointInterval(interval))
	c := h.client(0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const ops = 10
	for i := 0; i < ops; i++ {
		if _, err := c.invoke(ctx, kvstore.EncodePut(fmt.Sprintf("gc-%d", i), []byte{byte(i)})); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	// Closed-loop client: one request per slot, so the stable checkpoint
	// tracks the op count and released slots keep the map small.
	waitPBFTFootprint(t, h, 10*time.Second, func(fp pbft.Footprint) bool {
		return fp.StableSeq >= ops-interval
	})
	for i, rep := range h.replicas {
		if fp := rep.Footprint(); fp.Slots > 3*interval {
			t.Fatalf("replica %d retains %d slots after GC: %+v", i, fp.Slots, fp)
		}
	}
	for i := 1; i < len(h.logs); i++ {
		if err := smr.CheckPrefix(h.logs[0].Snapshot(), h.logs[i].Snapshot()); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}
}

func TestStateTransferToLaggingReplica(t *testing.T) {
	const interval = 2
	h := newCkptHarness(t, 4, 1, 1, pbft.WithCheckpointInterval(interval))
	c := h.client(0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Isolate replica 3 from its peers; the remaining 2f+1 = 3 replicas
	// keep the protocol running and GC the slots replica 3 misses.
	h.net.BlockPair(3, 0)
	h.net.BlockPair(3, 1)
	h.net.BlockPair(3, 2)
	for i := 0; i < 8; i++ {
		if _, err := c.invoke(ctx, kvstore.EncodePut(fmt.Sprintf("away-%d", i), []byte{byte(i)})); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	h.net.HealAll()

	// PBFT has no fetch protocol, so the only way back for replica 3 is a
	// checkpoint quorum beyond its execution: the next interval boundary's
	// votes (2f+1 of them from its peers) prove the cluster is past it and
	// trigger the state fetch.
	for i := 0; i < 2*interval; i++ {
		if _, err := c.invoke(ctx, kvstore.EncodePut(fmt.Sprintf("back-%d", i), []byte{byte(i)})); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	waitPBFTFootprint(t, h, 20*time.Second, func(fp pbft.Footprint) bool {
		return fp.StableSeq >= 8
	})

	// Replica 3 must execute new slots after the install, not just hold
	// transferred state.
	finalOp := kvstore.EncodePut("rejoined", []byte("yes"))
	if _, err := c.invoke(ctx, finalOp); err != nil {
		t.Fatalf("invoke rejoined: %v", err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		found := false
		for _, cmd := range h.logs[3].Snapshot() {
			req, err := smr.DecodeRequest(cmd)
			if err != nil {
				t.Fatalf("replica 3: undecodable log entry: %v", err)
			}
			if bytes.Equal(req.Op, finalOp) {
				found = true
				break
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica 3 never executed a post-transfer request")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The replicas that saw everything stay prefix-consistent; replica 3's
	// log has a legitimate gap (the transferred slots) but must not contain
	// duplicates.
	for i := 1; i < 3; i++ {
		if err := smr.CheckPrefix(h.logs[0].Snapshot(), h.logs[i].Snapshot()); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}
	seen := make(map[[2]uint64]bool)
	for _, cmd := range h.logs[3].Snapshot() {
		req, err := smr.DecodeRequest(cmd)
		if err != nil {
			t.Fatalf("replica 3: undecodable log entry: %v", err)
		}
		key := [2]uint64{req.Client, req.Num}
		if seen[key] {
			t.Fatalf("replica 3 executed request client=%d num=%d twice", req.Client, req.Num)
		}
		seen[key] = true
	}
}
