package pbft_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"unidir/internal/kvstore"
	"unidir/internal/pbft"
	"unidir/internal/sig"
	"unidir/internal/simnet"
	"unidir/internal/smr"
	"unidir/internal/types"
)

type harness struct {
	t        *testing.T
	m        types.Membership
	net      *simnet.Network
	replicas []*pbft.Replica
	logs     []*smr.ExecutionLog
}

func newHarness(t *testing.T, n, f, clients int, opts ...pbft.Option) *harness {
	t.Helper()
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	netM, err := types.NewMembership(n+clients, f)
	if err != nil {
		t.Fatalf("net membership: %v", err)
	}
	net, err := simnet.New(netM)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	rings, err := sig.NewKeyrings(m, sig.HMAC, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}
	h := &harness{t: t, m: m, net: net,
		replicas: make([]*pbft.Replica, n),
		logs:     make([]*smr.ExecutionLog, n)}
	for i := 0; i < n; i++ {
		h.logs[i] = &smr.ExecutionLog{}
		all := append([]pbft.Option{pbft.WithExecutionLog(h.logs[i])}, opts...)
		rep, err := pbft.New(m, net.Endpoint(types.ProcessID(i)), rings[i], kvstore.New(), all...)
		if err != nil {
			t.Fatalf("pbft.New: %v", err)
		}
		h.replicas[i] = rep
	}
	t.Cleanup(func() {
		for _, r := range h.replicas {
			if r != nil {
				_ = r.Close()
			}
		}
		net.Close()
	})
	return h
}

// pbftClient adapts smr.Client to PBFT's request envelope format.
type pbftClient struct {
	tr       *simnet.Endpoint
	replicas []types.ProcessID
	need     int
	id       uint64
	num      uint64
}

func (h *harness) client(idx int) *pbftClient {
	id := types.ProcessID(h.m.N + idx)
	return &pbftClient{
		tr:       h.net.Endpoint(id),
		replicas: h.m.All(),
		need:     h.m.FPlusOne(),
		id:       uint64(id),
	}
}

// invoke submits op and waits for f+1 matching replies, retransmitting.
func (c *pbftClient) invoke(ctx context.Context, op []byte) ([]byte, error) {
	c.num++
	req := smr.Request{Client: c.id, Num: c.num, Op: op}
	payload := pbft.EncodeRequestEnvelope(req)
	votes := make(map[string]map[types.ProcessID]bool)
	for _, r := range c.replicas {
		if err := c.tr.Send(r, payload); err != nil {
			return nil, err
		}
	}
	for {
		recvCtx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
		env, err := c.tr.Recv(recvCtx)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			for _, r := range c.replicas {
				if err := c.tr.Send(r, payload); err != nil {
					return nil, err
				}
			}
			continue
		}
		rep, err := smr.DecodeReply(env.Payload)
		if err != nil || rep.Client != c.id || rep.Num != req.Num || rep.Replica != env.From {
			continue
		}
		key := string(rep.Result)
		if votes[key] == nil {
			votes[key] = make(map[types.ProcessID]bool)
		}
		votes[key][rep.Replica] = true
		if len(votes[key]) >= c.need {
			return rep.Result, nil
		}
	}
}

func TestHappyPathKV(t *testing.T) {
	h := newHarness(t, 4, 1, 1)
	c := h.client(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	if _, err := c.invoke(ctx, kvstore.EncodePut("k", []byte("v1"))); err != nil {
		t.Fatalf("Put: %v", err)
	}
	res, err := c.invoke(ctx, kvstore.EncodeGet("k"))
	if err != nil || len(res) == 0 || res[0] != 0 || string(res[1:]) != "v1" {
		t.Fatalf("Get = %v, %v", res, err)
	}
}

func TestExecutionLogsConsistent(t *testing.T) {
	h := newHarness(t, 4, 1, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := h.client(i)
			for j := 0; j < 8; j++ {
				if _, err := c.invoke(ctx, kvstore.EncodePut(fmt.Sprintf("c%d-%d", i, j), []byte("x"))); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, log := range h.logs {
		for len(log.Snapshot()) < 24 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
	}
	ref := h.logs[0].Snapshot()
	if len(ref) != 24 {
		t.Fatalf("replica 0 executed %d, want 24", len(ref))
	}
	for i := 1; i < 4; i++ {
		if err := smr.CheckPrefix(ref, h.logs[i].Snapshot()); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}
}

func TestToleratesFCrashedBackups(t *testing.T) {
	h := newHarness(t, 4, 1, 1)
	_ = h.replicas[3].Close() // crash one backup (f = 1)
	h.replicas[3] = nil
	c := h.client(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := c.invoke(ctx, kvstore.EncodePut("k", []byte("v"))); err != nil {
		t.Fatalf("Put with crashed backup: %v", err)
	}
}

func TestRequestDeduplication(t *testing.T) {
	h := newHarness(t, 4, 1, 1)
	c := h.client(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	// The same logical request retransmitted must execute once; exercised
	// by a duplicate manual send before invoking.
	req := smr.Request{Client: c.id, Num: 1, Op: kvstore.EncodePut("once", []byte("1"))}
	payload := pbft.EncodeRequestEnvelope(req)
	for i := 0; i < 3; i++ {
		for _, r := range c.replicas {
			if err := c.tr.Send(r, payload); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
	}
	c.num = 1 // account for the manual request
	if _, err := c.invoke(ctx, kvstore.EncodeGet("once")); err != nil {
		t.Fatalf("Get: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(h.logs[0].Snapshot()) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(h.logs[0].Snapshot()); got != 2 {
		t.Fatalf("replica 0 executed %d commands, want 2 (1 put + 1 get)", got)
	}
}

func TestResilienceBound(t *testing.T) {
	m, _ := types.NewMembership(4, 2)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	rings, err := sig.NewKeyrings(m, sig.HMAC, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("NewKeyrings: %v", err)
	}
	if _, err := pbft.New(m, net.Endpoint(0), rings[0], kvstore.New()); err == nil {
		t.Fatal("pbft accepted n < 3f+1")
	}
}
