package pbft

// Metrics: the replica's obs instrumentation, the pbft counterpart of
// minbft/metrics.go. Optional — without WithMetrics every handle stays nil
// and each recording site is a free nil-check.

import (
	"unidir/internal/obs"
)

// WithMetrics publishes replica metrics into reg, labelled by replica ID:
// batches/requests proposed and executed, batch sizes, open slots, and
// checkpoint/state-transfer counts.
func WithMetrics(reg *obs.Registry) Option {
	return func(r *Replica) { r.metricsReg = reg }
}

type metrics struct {
	proposedBatches *obs.Counter
	executedBatches *obs.Counter
	executedReqs    *obs.Counter
	batchSize       *obs.Histogram
	openSlots       *obs.Gauge
	ckptTaken       *obs.Counter
	ckptStable      *obs.Counter
	stateTransfers  *obs.Counter
	sheds           *obs.Counter   // requests refused by admission control
	pendingDepth    *obs.Gauge     // pending-request queue depth
	batchWait       *obs.Histogram // oldest-arrival-to-cut wait per batch
	pacedProposals  *obs.Counter   // proposal deferrals due to peer queue depth
	leaseGrants     *obs.Counter   // grants this replica issued as a backup
	leaseRenewals   *obs.Counter   // lease rounds this replica started as primary
	leaseExpiries   *obs.Counter   // renewals that found the previous lease lapsed
	leasedReads     *obs.Counter   // reads answered from the lease
	fallbackReads   *obs.Counter   // reads answered as quorum-read fallback votes
	trace           *obs.Trace
}

func (r *Replica) initMetrics() {
	reg := r.metricsReg
	if reg == nil {
		return
	}
	id := r.Self()
	r.mx = metrics{
		proposedBatches: reg.Counter(obs.Name("pbft_batches_proposed_total", "replica", id)),
		executedBatches: reg.Counter(obs.Name("pbft_batches_executed_total", "replica", id)),
		executedReqs:    reg.Counter(obs.Name("pbft_requests_executed_total", "replica", id)),
		batchSize:       reg.Histogram(obs.Name("pbft_batch_size", "replica", id), obs.SizeBuckets),
		openSlots:       reg.Gauge(obs.Name("pbft_open_slots", "replica", id)),
		ckptTaken:       reg.Counter(obs.Name("pbft_checkpoints_taken_total", "replica", id)),
		ckptStable:      reg.Counter(obs.Name("pbft_checkpoints_stable_total", "replica", id)),
		stateTransfers:  reg.Counter(obs.Name("pbft_state_transfers_total", "replica", id)),
		sheds:           reg.Counter(obs.Name("pbft_requests_shed_total", "replica", id)),
		pendingDepth:    reg.Gauge(obs.Name("pbft_pending_requests", "replica", id)),
		batchWait:       reg.Histogram(obs.Name("pbft_batch_wait_seconds", "replica", id), obs.LatencyBuckets),
		pacedProposals:  reg.Counter(obs.Name("pbft_paced_proposals_total", "replica", id)),
		leaseGrants:     reg.Counter(obs.Name("pbft_lease_grants_total", "replica", id)),
		leaseRenewals:   reg.Counter(obs.Name("pbft_lease_renewals_total", "replica", id)),
		leaseExpiries:   reg.Counter(obs.Name("pbft_lease_expiries_total", "replica", id)),
		leasedReads:     reg.Counter(obs.Name("pbft_leased_reads_total", "replica", id)),
		fallbackReads:   reg.Counter(obs.Name("pbft_fallback_reads_total", "replica", id)),
		trace:           reg.Trace(obs.Name("pbft", "replica", id), 256),
	}
}
