package pbft

import (
	"encoding/hex"
	"time"

	"unidir/internal/obs"
)

// statusTimeout bounds how long Status waits for the run goroutine before
// degrading to a stale snapshot (see minbft/status.go for rationale).
const statusTimeout = 2 * time.Second

// Status implements obs.StatusProvider: a consistent cut of protocol state
// assembled on the run goroutine, or a degraded Stale snapshot when the
// replica is closed or wedged.
//
// TrustedCounters is deliberately empty: PBFT replicas have no trusted
// hardware, which is exactly the signal the hybrid-trust auditor needs —
// their checkpoint claims rest on 2f+1 signatures alone, never on
// attestation-backed counters.
func (r *Replica) Status() obs.Status {
	ch := make(chan obs.Status, 1)
	if r.events.Push(event{status: ch}) {
		select {
		case st := <-ch:
			return st
		case <-time.After(statusTimeout):
		}
	}
	return obs.Status{
		Protocol: "pbft",
		Replica:  int(r.Self()),
		Ready:    true, // with the view fixed at 0 there is nothing to wait out
		Stale:    true,
	}
}

// Ready reports readiness for /readyz probes. This PBFT runs with the view
// fixed at 0 and synchronous state transfer inside slot handling, so a live
// replica is always ready.
func (r *Replica) Ready() bool { return true }

// buildStatus runs on the run goroutine (the ev.status case in run).
func (r *Replica) buildStatus() obs.Status {
	now := time.Now()
	inflight := int(r.nextSeq) - int(r.execNext) + 1
	if inflight < 0 {
		inflight = 0
	}
	st := obs.Status{
		Protocol:         "pbft",
		Replica:          int(r.Self()),
		View:             uint64(r.view),
		Ready:            true,
		ExecCount:        uint64(r.execNext) - 1,
		ProposedBatches:  r.proposedCount,
		ExecutedRequests: r.executedReqCount,
		PendingRequests:  len(r.pending),
		OpenSlots:        len(r.slots),
		InFlightBatches:  inflight,
		QueuedReads:      len(r.leaseReads),
	}
	if r.stable.Seq > 0 {
		st.Checkpoint = &obs.CheckpointStatus{
			Count:  uint64(r.stable.Seq),
			Digest: hex.EncodeToString(r.stable.Digest[:]),
		}
	}
	if r.leaseValid(now) {
		st.Lease = &obs.LeaseStatus{
			Holder:      int(r.Self()),
			Term:        uint64(r.view),
			ExpiresInMS: r.leaseUntil.Sub(now).Milliseconds(),
		}
	}
	return st
}
