package smr

import (
	"errors"
	"time"

	"unidir/internal/obs/knob"
)

// ErrOverloaded is the typed, retryable overload signal. Replicas return it
// (as an overload-coded Reply) when admission control sheds a request, and
// Pipeline.Submit returns it when the in-flight window stays exhausted past
// the submit deadline. Callers should back off and retry; nothing about the
// request was ordered or executed.
var ErrOverloaded = errors.New("smr: overloaded")

// Reply codes. A zero code is a normal committed result; an overload code
// marks a shed request (Result is empty). The code rides after the Result
// field on the wire; decoders that predate it read replies without one as
// ReplyOK, so the extension is backward tolerant.
const (
	ReplyOK         byte = 0
	ReplyOverloaded byte = 1
)

// defaultBatchDeadline is the adaptive batching deadline when
// UNIDIR_BATCH_DEADLINE is unset.
const defaultBatchDeadline = 100 * time.Microsecond

// DefaultBatchDeadline returns the default size-or-deadline batch trigger
// deadline, controlled by the UNIDIR_BATCH_DEADLINE environment variable:
//
//	unset / ""      -> 100µs (adaptive batching on, the default)
//	"off" or "0"    -> 0     (disabled: cut immediately, pre-adaptive behavior)
//	duration string -> parsed (e.g. "250us", "1ms")
//
// Malformed values fall back to the default with a logged warning. Protocol
// options (minbft.WithBatchDeadline, pbft.WithBatchDeadline) override it
// per replica.
func DefaultBatchDeadline() time.Duration {
	return knob.Duration("UNIDIR_BATCH_DEADLINE", defaultBatchDeadline,
		map[string]time.Duration{"on": defaultBatchDeadline, "off": 0, "0": 0})
}

// defaultPaceDepth is the proposal-pacing bound when UNIDIR_PACE_DEPTH is
// unset: the primary defers cutting new batches while any peer's transport
// send queue is this deep or deeper.
const defaultPaceDepth = 4096

// DefaultPaceDepth returns the transport send-queue depth past which a
// primary pauses proposing, controlled by the UNIDIR_PACE_DEPTH environment
// variable:
//
//	unset / ""    -> 4096 frames
//	"off" or "0"  -> 0 (pacing disabled)
//	integer k > 0 -> k
//
// Pacing only takes effect on transports that expose queue depths
// (transport.QueueDepther — tcpnet does, simnet does not). Malformed values
// fall back to the default with a logged warning.
func DefaultPaceDepth() int {
	return knob.Int("UNIDIR_PACE_DEPTH", defaultPaceDepth, 1,
		map[string]int{"on": defaultPaceDepth, "off": 0, "0": 0})
}

// minBatchGain is the expected number of arrivals within the deadline below
// which waiting cannot pay for itself: with fewer than ~2 requests expected,
// holding the batch open buys no amortization, so the trigger cuts
// immediately. This is what kills batch-wait at light load.
const minBatchGain = 2.0

// BatchTrigger decides when a proposer should cut a batch: at the size cap,
// or after a deadline that adapts to offered load. It keeps an EWMA of the
// request inter-arrival gap; when the expected number of arrivals within the
// maximum wait is too small to amortize anything, it cuts immediately, and
// otherwise it waits just long enough to plausibly fill the cap, never past
// the configured deadline. Waiting is further gated on the consensus
// pipeline being busy: while a proposal slot sits idle the batch always cuts
// immediately — holding requests back then buys no amortization the idle
// slot would not provide, and the deadline only overlaps in-flight work.
//
// Not safe for concurrent use; proposers drive it from their event loop.
type BatchTrigger struct {
	cap     int
	maxWait time.Duration
	fixed   bool    // always wait out maxWait (the fixed-window baseline)
	gap     float64 // EWMA inter-arrival gap, seconds; 0 until first interval
	last    time.Time
}

// NewBatchTrigger returns a trigger for batches up to cap requests with the
// given maximum deadline. maxWait <= 0 disables waiting entirely (every
// Wait call returns 0).
func NewBatchTrigger(cap int, maxWait time.Duration) *BatchTrigger {
	if cap < 1 {
		cap = 1
	}
	return &BatchTrigger{cap: cap, maxWait: maxWait}
}

// NewFixedBatchTrigger returns the non-adaptive baseline: every partial
// batch is held for the full maxWait window regardless of load or pipeline
// state (classic fixed batch timer). It exists for A/B comparison — the B9
// experiment's "fixed" mode — and for operators who want fully predictable
// cut timing.
func NewFixedBatchTrigger(cap int, maxWait time.Duration) *BatchTrigger {
	t := NewBatchTrigger(cap, maxWait)
	t.fixed = true
	return t
}

// Arrive records one request arrival at time now, updating the rate EWMA.
func (t *BatchTrigger) Arrive(now time.Time) {
	if !t.last.IsZero() {
		gap := now.Sub(t.last).Seconds()
		// Clamp idle gaps so a quiet period reads as "low load" quickly
		// instead of skewing the average for many samples.
		if max := (16 * t.maxWait).Seconds(); t.maxWait > 0 && gap > max {
			gap = max
		}
		const alpha = 0.2
		if t.gap == 0 {
			t.gap = gap
		} else {
			t.gap += alpha * (gap - t.gap)
		}
	}
	t.last = now
}

// Wait reports how much longer the proposer should hold an open batch of
// `pending` requests whose oldest member arrived at `oldest`, given
// `inflight` proposals already working through consensus. Zero means cut
// now: the batch is full, waiting is disabled, the pipeline has an idle
// slot, or the arrival rate is too low for waiting to amortize anything.
// A fixed trigger ignores the pipeline and rate gates and waits out the
// window (the pre-adaptive baseline).
func (t *BatchTrigger) Wait(pending, inflight int, oldest, now time.Time) time.Duration {
	if t.maxWait <= 0 || pending >= t.cap {
		return 0
	}
	waited := time.Duration(0)
	if !oldest.IsZero() {
		waited = now.Sub(oldest)
	}
	if t.fixed {
		if rest := t.maxWait - waited; rest > 0 {
			return rest
		}
		return 0
	}
	if inflight < 1 {
		return 0 // idle pipeline: proposing now beats any amortization
	}
	if t.gap <= 0 {
		return 0 // no rate estimate yet: do not delay the first requests
	}
	expected := t.maxWait.Seconds() / t.gap
	if expected < minBatchGain {
		return 0 // light load: waiting cannot pay for itself
	}
	// Wait only as long as filling the remaining cap plausibly takes,
	// bounded by the configured deadline.
	fill := time.Duration(float64(t.cap-pending) * t.gap * float64(time.Second))
	deadline := t.maxWait
	if fill < deadline {
		deadline = fill
	}
	if rest := deadline - waited; rest > 0 {
		return rest
	}
	return 0
}

// AdmissionConfig bounds what a replica accepts before shedding with an
// overload reply. The zero value disables both gates.
type AdmissionConfig struct {
	// MaxPending caps the replica's pending-request queue; a request that
	// would grow the queue past it is shed. <= 0 means unbounded.
	MaxPending int
	// Rate is the per-client sustained admission rate in requests/second,
	// enforced by a token bucket. <= 0 disables per-client rate limiting.
	Rate float64
	// Burst is the token-bucket capacity (instantaneous burst allowance).
	// <= 0 with Rate > 0 defaults to max(1, Rate/10).
	Burst int
}

// DefaultAdmissionConfig returns the admission bounds controlled by the
// UNIDIR_ADMIT_PENDING, UNIDIR_ADMIT_RATE, and UNIDIR_ADMIT_BURST
// environment variables:
//
//	UNIDIR_ADMIT_PENDING  unset -> 4096; "off"/"0" -> unbounded; k > 0 -> k
//	UNIDIR_ADMIT_RATE     unset/"off"/"0" -> no per-client rate limit; r > 0 -> r req/s
//	UNIDIR_ADMIT_BURST    unset -> Rate/10 (min 1); k > 0 -> k
//
// Malformed values fall back to the respective defaults with a logged
// warning.
func DefaultAdmissionConfig() AdmissionConfig {
	const defaultMaxPending = 4096
	return AdmissionConfig{
		MaxPending: knob.Int("UNIDIR_ADMIT_PENDING", defaultMaxPending, 1,
			map[string]int{"on": defaultMaxPending, "off": 0, "0": 0}),
		Rate: knob.Float("UNIDIR_ADMIT_RATE", 0, 0,
			map[string]float64{"off": 0, "0": 0}),
		Burst: knob.Int("UNIDIR_ADMIT_BURST", 0, 1, nil),
	}
}

// Admission is a replica's admission controller: a global pending-queue
// bound plus an optional per-client token bucket. All replicas run the same
// configuration, so under uniform overload at least f+1 correct replicas
// shed the same requests and the client observes a quorum-backed
// ErrOverloaded rather than trusting any single replica's claim.
//
// A nil *Admission admits everything. Safe for single-goroutine use (the
// replica event loop).
type Admission struct {
	cfg     AdmissionConfig
	burst   float64
	buckets map[uint64]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// NewAdmission builds an admission controller from cfg.
func NewAdmission(cfg AdmissionConfig) *Admission {
	burst := float64(cfg.Burst)
	if cfg.Rate > 0 && burst <= 0 {
		burst = cfg.Rate / 10
		if burst < 1 {
			burst = 1
		}
	}
	return &Admission{cfg: cfg, burst: burst}
}

// Admit decides whether a new request from client may enter a pending queue
// currently holding queued requests. It never blocks; a false return means
// shed now (reply ErrOverloaded).
func (a *Admission) Admit(client uint64, queued int, now time.Time) bool {
	if a == nil {
		return true
	}
	if a.cfg.MaxPending > 0 && queued >= a.cfg.MaxPending {
		return false
	}
	if a.cfg.Rate <= 0 {
		return true
	}
	if a.buckets == nil {
		a.buckets = make(map[uint64]*tokenBucket)
	}
	// Defensive bound on tracked clients: a flood of fresh identities must
	// not grow memory without limit. Dropping the map refills every bucket,
	// which only ever errs toward admitting.
	if len(a.buckets) > 1<<16 {
		a.buckets = make(map[uint64]*tokenBucket)
	}
	b := a.buckets[client]
	if b == nil {
		b = &tokenBucket{tokens: a.burst, last: now}
		a.buckets[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * a.cfg.Rate
		if b.tokens > a.burst {
			b.tokens = a.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
