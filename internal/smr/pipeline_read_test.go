package smr

import (
	"context"
	"testing"
	"time"

	"unidir/internal/simnet"
	"unidir/internal/types"
)

// readTestEncoder prefixes read requests with 'R' so scripted replicas can
// tell them from ordered requests (the real protocols use envelopes; the
// bare smr wire forms of Request and ReadRequest are identical).
func readTestEncoder(r ReadRequest) []byte {
	return append([]byte{'R'}, r.Encode()...)
}

// readTestReplica runs a scripted replica: each read request is answered by
// onRead (keyed on the read's Op so duplicate deliveries stay idempotent;
// identity fields are filled in here), and every ordered request is echoed
// like echoReplicas so escalated reads converge.
func readTestReplica(net *simnet.Network, id types.ProcessID, onRead func(op string) []ReadReply) {
	go func() {
		ep := net.Endpoint(id)
		for {
			env, err := ep.Recv(context.Background())
			if err != nil {
				return
			}
			if len(env.Payload) > 0 && env.Payload[0] == 'R' {
				req, err := DecodeReadRequest(env.Payload[1:])
				if err != nil {
					continue
				}
				for _, rep := range onRead(string(req.Op)) {
					rep.Replica = id
					rep.Client = req.Client
					rep.Num = req.Num
					_ = ep.Send(env.From, rep.Encode())
				}
				continue
			}
			req, err := DecodeRequest(env.Payload)
			if err != nil {
				continue
			}
			rep := Reply{Replica: id, Client: req.Client, Num: req.Num, Result: req.Op}
			_ = ep.Send(env.From, rep.Encode())
		}
	}()
}

func newReadPipeline(t *testing.T, retry time.Duration) (*simnet.Network, *Pipeline) {
	t.Helper()
	m, err := types.NewMembership(4, 1) // 3 replicas + 1 client endpoint
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	t.Cleanup(func() { net.Close() })
	p, err := NewPipeline(net.Endpoint(3), []types.ProcessID{0, 1, 2}, 2, 3, retry, 8,
		WithPipelineReadEncoder(readTestEncoder))
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return net, p
}

// TestUnsolicitedLeasedReplyRejected pins the client's trust rule: a
// ReadLeased reply from a replica the read was never sent to must not
// complete the read (it demotes to one fallback vote) and must not capture
// the leader hint for subsequent reads. Replica 2 plays Byzantine: it
// claims the lease with a forged result for every read it sees.
func TestUnsolicitedLeasedReplyRejected(t *testing.T) {
	net, p := newReadPipeline(t, 10*time.Second)
	fallbackGood := []ReadReply{{Code: ReadFallback, ExecSeq: 5, Result: []byte("good")}}
	readTestReplica(net, 0, func(op string) []ReadReply {
		return fallbackGood // no lease here, ever
	})
	readTestReplica(net, 1, func(op string) []ReadReply {
		if op == "b" {
			return []ReadReply{{Code: ReadLeased, ExecSeq: 6, Result: []byte("r1-leased")}}
		}
		return fallbackGood
	})
	readTestReplica(net, 2, func(op string) []ReadReply {
		return []ReadReply{{Code: ReadLeased, ExecSeq: 5, Result: []byte("evil")}}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Read "a" goes to the initial hint (replica 0), widens on its fallback
	// vote, and must complete on the two matching honest votes — not on
	// replica 2's unsolicited leased claim.
	res, err := p.InvokeRead(ctx, []byte("a"))
	if err != nil {
		t.Fatalf("InvokeRead(a): %v", err)
	}
	if string(res) != "good" {
		t.Fatalf("read a = %q, want %q (unsolicited leased reply accepted)", res, "good")
	}
	// The widening rotated the hint 0 -> 1, and replica 2's leased claim
	// must not have captured it: read "b" is answered by replica 1's
	// (targeted, hence authoritative) leased reply.
	res, err = p.InvokeRead(ctx, []byte("b"))
	if err != nil {
		t.Fatalf("InvokeRead(b): %v", err)
	}
	if string(res) != "r1-leased" {
		t.Fatalf("read b = %q, want %q (leader hint poisoned)", res, "r1-leased")
	}
}

// TestFallbackStaleQuorumBelowMaxEscalates pins the max-watermark vote
// rule: a quorum of matching fallback votes must not win while a fresher
// vote sits in the read's vote set — the Byzantine-echo shape where one
// lying voter completes f lagging replicas' stale class. The read must
// escalate to the ordering path (scripted here as an echo) instead of
// returning the stale value.
func TestFallbackStaleQuorumBelowMaxEscalates(t *testing.T) {
	net, p := newReadPipeline(t, 10*time.Second)
	readTestReplica(net, 0, func(op string) []ReadReply {
		return []ReadReply{{Code: ReadFallback, ExecSeq: 10, Result: []byte("fresh")}}
	})
	stale := func(op string) []ReadReply {
		return []ReadReply{{Code: ReadFallback, ExecSeq: 9, Result: []byte("stale")}}
	}
	readTestReplica(net, 1, stale)
	readTestReplica(net, 2, stale)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// The hinted replica (0) votes at watermark 10 first, so the later
	// 9-watermark quorum from replicas 1 and 2 is stale by construction.
	// Once all three have voted with no winnable class, the read escalates
	// and completes with the ordering path's answer — the echoed op.
	res, err := p.InvokeRead(ctx, []byte("k"))
	if err != nil {
		t.Fatalf("InvokeRead: %v", err)
	}
	if string(res) == "stale" {
		t.Fatal("stale fallback quorum below the max watermark completed the read")
	}
	if string(res) != "k" {
		t.Fatalf("escalated read = %q, want ordering-path echo %q", res, "k")
	}
}
