package smr

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"unidir/internal/obs"
	"unidir/internal/obs/tracing"
	"unidir/internal/syncx"
	"unidir/internal/transport"
	"unidir/internal/types"
)

// Call is one in-flight pipelined request. Wait on Done (or call Result,
// which blocks) to observe completion.
type Call struct {
	req    Request
	done   chan struct{}
	result []byte
	err    error
}

// Done is closed when the call completes (result or error).
func (c *Call) Done() <-chan struct{} { return c.done }

// Result blocks until the call completes and returns its outcome.
func (c *Call) Result() ([]byte, error) {
	<-c.done
	return c.result, c.err
}

// Request returns the request this call submitted.
func (c *Call) Request() Request { return c.req }

// Pipeline is the asynchronous counterpart of Client: up to `window`
// requests in flight at once, each still completed by `need` (f+1) matching
// replies and retransmitted on a timer until then. A closed-loop client
// offers a batching primary exactly one request per round trip; a pipeline
// keeps the window full, which is what gives the primary something to
// batch. Safe for concurrent use; it owns its transport endpoint's receive
// side, so do not share the endpoint with other readers.
//
// With WithAdaptiveWindow the effective window becomes the client half of
// end-to-end backpressure: it shrinks multiplicatively when the cluster
// sheds (ErrOverloaded completions) or the retransmit timer finds requests
// still outstanding, and grows back additively — one slot per window of
// clean completions — up to the configured maximum.
type Pipeline struct {
	tr         transport.Transport
	replicas   []types.ProcessID
	need       int
	id         uint64
	retry      time.Duration
	encode     func(Request) []byte
	readEncode func(ReadRequest) []byte
	// readBatchEncode wraps several encoded ReadRequest bodies in one
	// protocol envelope; the read send loop uses it to coalesce every read
	// queued while the previous frame was in flight into a single frame.
	readBatchEncode func([][]byte) []byte
	// readOut feeds the send loop: SubmitRead enqueues, readSendLoop
	// drains and sends one (possibly batched) frame per wakeup.
	readOut  *syncx.Queue[readOutItem]
	readNeed int // matching fallback votes required (default: need)

	// avail holds the window tokens: Submit takes one, completion returns
	// one (unless swallowed to pay down a window decrease — see debt).
	avail         chan struct{}
	winMax        int
	winMin        int // 0: fixed window (no adaptation)
	submitTimeout time.Duration

	// readAvail holds the read-window tokens. Reads have their own window
	// (they never occupy a consensus slot, so they should not compete with
	// writes for in-flight budget) and no AIMD: a leased read is one round
	// trip to one replica, and fallback reads already self-limit by needing
	// a quorum of replies.
	readAvail  chan struct{}
	readWindow int

	mu       sync.Mutex
	nextNum  uint64
	inflight map[uint64]*pipeCall
	// readInflight tracks outstanding reads. Nums are drawn from the same
	// nextNum counter as writes, so a number identifies exactly one of the
	// two maps and reply routing cannot confuse a read with a write.
	readInflight map[uint64]*readCall
	// leaderHint is the replica first reads are sent to: the last *targeted*
	// replica that answered with a leased reply, or replicas[0] before any
	// has. Sending the first copy only there is what makes a leased read two
	// messages instead of a broadcast and a quorum of replies. The hint only
	// ever moves when the targeted replica confirms or disclaims a lease
	// (or goes silent) — an unsolicited leased reply cannot capture it.
	leaderHint types.ProcessID
	closed     bool
	curWindow  int
	// debt counts tokens owed after a window decrease: completions swallow
	// their token instead of returning it until debt reaches zero. The
	// invariant is tokens-in-circulation == curWindow + debt.
	debt       int
	succ       int // clean completions since the last additive increase
	lastShrink time.Time

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// tracer mints the client-submit root span per sampled request (nil
	// without WithPipelineTracer; every call is nil-safe).
	tracer *tracing.Tracer

	// Metrics handles (nil without WithPipelineMetrics; nil-safe no-ops).
	mxSubmitted     *obs.Counter
	mxCompleted     *obs.Counter
	mxInflight      *obs.Gauge
	mxWindow        *obs.Gauge
	mxSubmitSheds   *obs.Counter
	mxOverloadVotes *obs.Counter

	// Read-path metrics (nil-safe like the rest).
	mxReadsSubmitted  *obs.Counter
	mxReadsCompleted  *obs.Counter
	mxLeasedReads     *obs.Counter
	mxFallbackReads   *obs.Counter
	mxReadEscalations *obs.Counter
	mxReadLatency     *obs.Histogram
}

type pipeCall struct {
	call    *Call
	payload []byte
	votes   map[string]map[types.ProcessID]bool
	span    *tracing.Active // client-submit root; nil when unsampled
	tc      tracing.Context // propagated with every (re)broadcast
}

// PipelineOption configures NewPipeline.
type PipelineOption func(*Pipeline)

// WithPipelineRequestEncoder sets the protocol-specific request envelope
// encoder, like smr.WithRequestEncoder for the closed-loop client.
func WithPipelineRequestEncoder(encode func(Request) []byte) PipelineOption {
	return func(p *Pipeline) { p.encode = encode }
}

// WithPipelineMetrics publishes the pipeline's depth and throughput into
// reg, labelled by client identity: smr_requests_submitted_total,
// smr_requests_completed_total, the smr_pipeline_depth and
// smr_pipeline_window gauges, and the smr_submit_sheds_total /
// smr_overload_replies_total shed counters.
func WithPipelineMetrics(reg *obs.Registry) PipelineOption {
	return func(p *Pipeline) {
		if reg == nil {
			return
		}
		p.mxSubmitted = reg.Counter(obs.Name("smr_requests_submitted_total", "client", p.id))
		p.mxCompleted = reg.Counter(obs.Name("smr_requests_completed_total", "client", p.id))
		p.mxInflight = reg.Gauge(obs.Name("smr_pipeline_depth", "client", p.id))
		p.mxWindow = reg.Gauge(obs.Name("smr_pipeline_window", "client", p.id))
		p.mxSubmitSheds = reg.Counter(obs.Name("smr_submit_sheds_total", "client", p.id))
		p.mxOverloadVotes = reg.Counter(obs.Name("smr_overload_replies_total", "client", p.id))
		p.mxReadsSubmitted = reg.Counter(obs.Name("smr_reads_submitted_total", "client", p.id))
		p.mxReadsCompleted = reg.Counter(obs.Name("smr_reads_completed_total", "client", p.id))
		p.mxLeasedReads = reg.Counter(obs.Name("smr_leased_reads_total", "client", p.id))
		p.mxFallbackReads = reg.Counter(obs.Name("smr_fallback_reads_total", "client", p.id))
		p.mxReadEscalations = reg.Counter(obs.Name("smr_read_escalations_total", "client", p.id))
		p.mxReadLatency = reg.Histogram(obs.Name("smr_read_latency_seconds", "client", p.id), obs.LatencyBuckets)
	}
}

// WithPipelineTracer makes the pipeline the head-sampling point of the
// request lifecycle: each Submit that wins the sampling decision opens a
// client-submit root span, propagates its context with the request (and all
// retransmits), and ends the span when f+1 matching replies arrive.
func WithPipelineTracer(t *tracing.Tracer) PipelineOption {
	return func(p *Pipeline) { p.tracer = t }
}

// WithSubmitTimeout bounds how long Submit may block on an exhausted
// window before giving up with ErrOverloaded — the client-side admission
// deadline. Zero (the default) keeps the legacy behavior of blocking until
// a slot frees or the context ends.
func WithSubmitTimeout(d time.Duration) PipelineOption {
	return func(p *Pipeline) { p.submitTimeout = d }
}

// WithPipelineReadEncoder sets the protocol-specific read-request envelope
// encoder and thereby enables the read fast path (SubmitRead/InvokeRead).
func WithPipelineReadEncoder(encode func(ReadRequest) []byte) PipelineOption {
	return func(p *Pipeline) { p.readEncode = encode }
}

// WithPipelineReadBatchEncoder sets the protocol-specific envelope encoder
// for coalesced read submissions. Without it the raw smr batch body is
// sent, which suits transports that deliver bodies unenveloped (tests).
func WithPipelineReadBatchEncoder(encode func([][]byte) []byte) PipelineOption {
	return func(p *Pipeline) { p.readBatchEncode = encode }
}

// WithReadQuorum sets how many matching fallback votes complete a quorum
// read. Defaults to the write quorum (f+1); PBFT clients pass 2f+1 so a
// fallback read intersects every committed write's executor set.
func WithReadQuorum(n int) PipelineOption {
	return func(p *Pipeline) { p.readNeed = n }
}

// WithReadWindow bounds in-flight reads independently of the write window.
// Zero (the default) follows UNIDIR_READ_WINDOW, then the write window.
func WithReadWindow(k int) PipelineOption {
	return func(p *Pipeline) { p.readWindow = k }
}

// WithAdaptiveWindow turns on AIMD window adaptation between min in-flight
// slots and the configured window: multiplicative decrease on overload
// sheds and retransmissions, additive increase on clean completions. min
// values below 1 are raised to 1.
func WithAdaptiveWindow(min int) PipelineOption {
	return func(p *Pipeline) {
		if min < 1 {
			min = 1
		}
		p.winMin = min
	}
}

// NewPipeline creates a pipelined client with the given unique identity.
// need is the number of matching replies required (use f+1); window is the
// maximum number of requests in flight (Submit blocks when it is full).
func NewPipeline(tr transport.Transport, replicas []types.ProcessID, need int, id uint64, retry time.Duration, window int, opts ...PipelineOption) (*Pipeline, error) {
	if need < 1 || need > len(replicas) {
		return nil, fmt.Errorf("smr: need %d of %d replicas", need, len(replicas))
	}
	if window < 1 {
		return nil, fmt.Errorf("smr: pipeline window %d", window)
	}
	if retry <= 0 {
		retry = 50 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pipeline{
		tr:              tr,
		replicas:        replicas,
		need:            need,
		id:              id,
		retry:           retry,
		encode:          func(r Request) []byte { return r.Encode() },
		readEncode:      func(r ReadRequest) []byte { return r.Encode() },
		readBatchEncode: EncodeReadRequestBatch,
		readOut:         syncx.NewQueue[readOutItem](),
		readNeed:        need,
		avail:           make(chan struct{}, window),
		winMax:          window,
		curWindow:       window,
		inflight:        make(map[uint64]*pipeCall),
		readInflight:    make(map[uint64]*readCall),
		leaderHint:      replicas[0],
		ctx:             ctx,
		cancel:          cancel,
	}
	// Wall-clock seed, same reasoning as NewClient.
	p.nextNum = uint64(time.Now().UnixNano())
	for _, opt := range opts {
		opt(p)
	}
	if p.winMin > p.winMax {
		p.winMin = p.winMax
	}
	if p.readNeed < 1 || p.readNeed > len(replicas) {
		return nil, fmt.Errorf("smr: read quorum %d of %d replicas", p.readNeed, len(replicas))
	}
	if p.readWindow <= 0 {
		if k := DefaultReadWindow(); k > 0 {
			p.readWindow = k
		} else {
			p.readWindow = window
		}
	}
	p.readAvail = make(chan struct{}, p.readWindow)
	for i := 0; i < p.readWindow; i++ {
		p.readAvail <- struct{}{}
	}
	for i := 0; i < p.curWindow; i++ {
		p.avail <- struct{}{}
	}
	p.mxWindow.Set(int64(p.curWindow))
	p.wg.Add(3)
	go p.recvLoop()
	go p.retransmitLoop()
	go p.readSendLoop()
	return p, nil
}

// Submit sends op and returns without waiting for completion. It blocks
// only while the in-flight window is full; with a submit timeout set, a
// window still full past the deadline fails fast with ErrOverloaded
// instead of wedging the caller.
func (p *Pipeline) Submit(ctx context.Context, op []byte) (*Call, error) {
	var timeout <-chan time.Time
	if p.submitTimeout > 0 {
		tm := time.NewTimer(p.submitTimeout)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case <-p.avail:
	case <-timeout:
		p.mxSubmitSheds.Inc()
		p.noteOverload()
		return nil, fmt.Errorf("smr: window exhausted for %v: %w", p.submitTimeout, ErrOverloaded)
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.ctx.Done():
		return nil, ErrClientClosed
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClientClosed
	}
	p.nextNum++
	req := Request{Client: p.id, Num: p.nextNum, Op: op}
	call := &Call{req: req, done: make(chan struct{})}
	payload := p.encode(req)
	span := p.tracer.Root("client-submit")
	tc := span.Context()
	p.inflight[req.Num] = &pipeCall{
		call: call, payload: payload,
		votes: make(map[string]map[types.ProcessID]bool),
		span:  span, tc: tc,
	}
	depth := len(p.inflight)
	p.mu.Unlock()
	p.mxSubmitted.Inc()
	p.mxInflight.Set(int64(depth))
	if err := transport.BroadcastTraced(p.tr, p.replicas, payload, tc); err != nil {
		p.complete(req.Num, nil, fmt.Errorf("smr: send request: %w", err))
		return nil, fmt.Errorf("smr: send request: %w", err)
	}
	return call, nil
}

// Invoke submits op and blocks until completion — Client.Invoke semantics
// over the pipeline.
func (p *Pipeline) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	call, err := p.Submit(ctx, op)
	if err != nil {
		return nil, err
	}
	select {
	case <-call.done:
		return call.result, call.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Window reports the current effective window (== the configured window
// unless adaptation shrank it).
func (p *Pipeline) Window() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.curWindow
}

// noteOverload registers one congestion signal: multiplicative decrease,
// rate-limited to one cut per retry interval so a burst of sheds from a
// single overloaded window counts once.
func (p *Pipeline) noteOverload() {
	if p.winMin <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shrinkLocked(time.Now())
}

func (p *Pipeline) shrinkLocked(now time.Time) {
	if gap := p.retry / 4; now.Sub(p.lastShrink) < gap {
		return
	}
	p.lastShrink = now
	p.succ = 0
	next := p.curWindow / 2
	if next < p.winMin {
		next = p.winMin
	}
	if next == p.curWindow {
		return
	}
	p.debt += p.curWindow - next
	p.curWindow = next
	p.mxWindow.Set(int64(p.curWindow))
}

// growLocked credits one clean completion and, once a full window of them
// accumulates, widens the window by one slot — paying down decrease debt
// first so tokens in circulation stay equal to curWindow + debt.
func (p *Pipeline) growLocked() bool {
	p.succ++
	if p.succ < p.curWindow || p.curWindow >= p.winMax {
		return false
	}
	p.succ = 0
	p.curWindow++
	p.mxWindow.Set(int64(p.curWindow))
	if p.debt > 0 {
		p.debt--
		return false // reused a token already in circulation
	}
	return true // release one extra token
}

// complete finishes the in-flight call num, if still present, and returns
// its window token — unless a pending window decrease swallows it.
func (p *Pipeline) complete(num uint64, result []byte, err error) {
	p.mu.Lock()
	pc := p.inflight[num]
	if pc == nil {
		p.mu.Unlock()
		return
	}
	delete(p.inflight, num)
	depth := len(p.inflight)
	extra := false
	if p.winMin > 0 {
		if errors.Is(err, ErrOverloaded) {
			p.shrinkLocked(time.Now())
		} else if err == nil {
			extra = p.growLocked()
		}
	}
	swallow := p.debt > 0
	if swallow {
		p.debt--
	}
	p.mu.Unlock()
	pc.span.End()
	p.mxCompleted.Inc()
	p.mxInflight.Set(int64(depth))
	pc.call.result = result
	pc.call.err = err
	close(pc.call.done)
	if !swallow {
		p.avail <- struct{}{}
	}
	if extra {
		p.avail <- struct{}{}
	}
}

func (p *Pipeline) recvLoop() {
	defer p.wg.Done()
	for {
		env, err := p.tr.Recv(p.ctx)
		if err != nil {
			return
		}
		// A replica that answered several of our reads in one event-loop
		// drain coalesces them into a sentinel-prefixed batch frame; the
		// check is one integer compare for every other frame shape.
		if reps, berr := DecodeReadReplyBatch(env.Payload); berr == nil {
			for _, rr := range reps {
				p.handleReadReply(rr, env.From)
			}
			continue
		}
		rep, err := DecodeReply(env.Payload)
		if err != nil {
			// Not a write reply; a read reply carries the same prefix plus
			// the trailing exec watermark, so DecodeReply fails on the
			// leftover bytes and we try the read shape.
			if rr, rerr := DecodeReadReply(env.Payload); rerr == nil {
				p.handleReadReply(rr, env.From)
			}
			continue
		}
		if rep.Client != p.id || rep.Replica != env.From {
			continue
		}
		p.mu.Lock()
		pc := p.inflight[rep.Num]
		if pc == nil {
			p.mu.Unlock()
			continue
		}
		key := rep.voteKey()
		if pc.votes[key] == nil {
			pc.votes[key] = make(map[types.ProcessID]bool)
		}
		pc.votes[key][rep.Replica] = true
		agreed := len(pc.votes[key]) >= p.need
		p.mu.Unlock()
		if !agreed {
			continue
		}
		if rep.Code == ReplyOverloaded {
			p.mxOverloadVotes.Inc()
			p.complete(rep.Num, nil, fmt.Errorf("smr: request %d shed by %d replicas: %w", rep.Num, p.need, ErrOverloaded))
			continue
		}
		p.complete(rep.Num, append([]byte(nil), rep.Result...), nil)
	}
}

// retransmitLoop rebroadcasts every outstanding request each retry period,
// covering loss, replica restarts, and view changes in one mechanism, like
// the closed-loop client's per-request timer. A non-empty resend set is
// also a congestion signal for the adaptive window: requests outlived a
// full retry period without f+1 replies.
func (p *Pipeline) retransmitLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.retry)
	defer t.Stop()
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-t.C:
		}
		p.mu.Lock()
		resend := make([]*pipeCall, 0, len(p.inflight))
		for _, pc := range p.inflight {
			resend = append(resend, pc)
		}
		if p.winMin > 0 && len(resend) > 0 {
			p.shrinkLocked(time.Now())
		}
		// Reads that outlived a retry period lost their leader hint (or the
		// leader lost its lease mid-read): go wide and finish as a quorum
		// read. A read still wide after ANOTHER full period is stuck on
		// mismatched votes — hand it to the ordering path instead of asking
		// the same diverging replicas again.
		now := time.Now()
		resendReads := make([][]byte, 0, len(p.readInflight))
		for num, rc := range p.readInflight {
			if rc.ordered || now.Sub(rc.start) < p.retry {
				continue
			}
			if rc.broadcasted {
				p.escalateReadLocked(num, rc)
				continue
			}
			rc.broadcasted = true
			if rc.sent {
				p.advanceHintLocked(rc.sentTo)
			}
			resendReads = append(resendReads, p.readPayloadLocked(rc))
		}
		p.mu.Unlock()
		for _, pc := range resend {
			// Retransmits carry the same context: wherever the request
			// finally lands, it stays on its trace.
			_ = transport.BroadcastTraced(p.tr, p.replicas, pc.payload, pc.tc)
		}
		for _, payload := range resendReads {
			_ = transport.Broadcast(p.tr, p.replicas, payload)
		}
	}
}

// Close stops the pipeline; outstanding calls complete with ErrClientClosed.
// The underlying transport is not closed.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	stuck := p.inflight
	p.inflight = make(map[uint64]*pipeCall)
	stuckReads := p.readInflight
	p.readInflight = make(map[uint64]*readCall)
	p.mu.Unlock()
	p.cancel()
	p.mxInflight.Set(0)
	for _, pc := range stuck {
		pc.span.End()
		pc.call.err = ErrClientClosed
		close(pc.call.done)
	}
	for _, rc := range stuckReads {
		rc.call.err = ErrClientClosed
		close(rc.call.done)
	}
	p.wg.Wait()
	return nil
}
