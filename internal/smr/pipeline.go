package smr

import (
	"context"
	"fmt"
	"sync"
	"time"

	"unidir/internal/obs"
	"unidir/internal/obs/tracing"
	"unidir/internal/transport"
	"unidir/internal/types"
)

// Call is one in-flight pipelined request. Wait on Done (or call Result,
// which blocks) to observe completion.
type Call struct {
	req    Request
	done   chan struct{}
	result []byte
	err    error
}

// Done is closed when the call completes (result or error).
func (c *Call) Done() <-chan struct{} { return c.done }

// Result blocks until the call completes and returns its outcome.
func (c *Call) Result() ([]byte, error) {
	<-c.done
	return c.result, c.err
}

// Request returns the request this call submitted.
func (c *Call) Request() Request { return c.req }

// Pipeline is the asynchronous counterpart of Client: up to `window`
// requests in flight at once, each still completed by `need` (f+1) matching
// replies and retransmitted on a timer until then. A closed-loop client
// offers a batching primary exactly one request per round trip; a pipeline
// keeps the window full, which is what gives the primary something to
// batch. Safe for concurrent use; it owns its transport endpoint's receive
// side, so do not share the endpoint with other readers.
type Pipeline struct {
	tr       transport.Transport
	replicas []types.ProcessID
	need     int
	id       uint64
	retry    time.Duration
	encode   func(Request) []byte

	slots chan struct{} // window semaphore: acquire on submit, release on completion

	mu       sync.Mutex
	nextNum  uint64
	inflight map[uint64]*pipeCall
	closed   bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// tracer mints the client-submit root span per sampled request (nil
	// without WithPipelineTracer; every call is nil-safe).
	tracer *tracing.Tracer

	// Metrics handles (nil without WithPipelineMetrics; nil-safe no-ops).
	mxSubmitted *obs.Counter
	mxCompleted *obs.Counter
	mxInflight  *obs.Gauge
}

type pipeCall struct {
	call    *Call
	payload []byte
	votes   map[string]map[types.ProcessID]bool
	span    *tracing.Active // client-submit root; nil when unsampled
	tc      tracing.Context // propagated with every (re)broadcast
}

// PipelineOption configures NewPipeline.
type PipelineOption func(*Pipeline)

// WithPipelineRequestEncoder sets the protocol-specific request envelope
// encoder, like smr.WithRequestEncoder for the closed-loop client.
func WithPipelineRequestEncoder(encode func(Request) []byte) PipelineOption {
	return func(p *Pipeline) { p.encode = encode }
}

// WithPipelineMetrics publishes the pipeline's depth and throughput into
// reg, labelled by client identity: smr_requests_submitted_total,
// smr_requests_completed_total, and the smr_pipeline_depth gauge.
func WithPipelineMetrics(reg *obs.Registry) PipelineOption {
	return func(p *Pipeline) {
		if reg == nil {
			return
		}
		p.mxSubmitted = reg.Counter(obs.Name("smr_requests_submitted_total", "client", p.id))
		p.mxCompleted = reg.Counter(obs.Name("smr_requests_completed_total", "client", p.id))
		p.mxInflight = reg.Gauge(obs.Name("smr_pipeline_depth", "client", p.id))
	}
}

// WithPipelineTracer makes the pipeline the head-sampling point of the
// request lifecycle: each Submit that wins the sampling decision opens a
// client-submit root span, propagates its context with the request (and all
// retransmits), and ends the span when f+1 matching replies arrive.
func WithPipelineTracer(t *tracing.Tracer) PipelineOption {
	return func(p *Pipeline) { p.tracer = t }
}

// NewPipeline creates a pipelined client with the given unique identity.
// need is the number of matching replies required (use f+1); window is the
// maximum number of requests in flight (Submit blocks when it is full).
func NewPipeline(tr transport.Transport, replicas []types.ProcessID, need int, id uint64, retry time.Duration, window int, opts ...PipelineOption) (*Pipeline, error) {
	if need < 1 || need > len(replicas) {
		return nil, fmt.Errorf("smr: need %d of %d replicas", need, len(replicas))
	}
	if window < 1 {
		return nil, fmt.Errorf("smr: pipeline window %d", window)
	}
	if retry <= 0 {
		retry = 50 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pipeline{
		tr:       tr,
		replicas: replicas,
		need:     need,
		id:       id,
		retry:    retry,
		encode:   func(r Request) []byte { return r.Encode() },
		slots:    make(chan struct{}, window),
		inflight: make(map[uint64]*pipeCall),
		ctx:      ctx,
		cancel:   cancel,
	}
	// Wall-clock seed, same reasoning as NewClient.
	p.nextNum = uint64(time.Now().UnixNano())
	for _, opt := range opts {
		opt(p)
	}
	p.wg.Add(2)
	go p.recvLoop()
	go p.retransmitLoop()
	return p, nil
}

// Submit sends op and returns without waiting for completion. It blocks
// only while the in-flight window is full.
func (p *Pipeline) Submit(ctx context.Context, op []byte) (*Call, error) {
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.ctx.Done():
		return nil, ErrClientClosed
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClientClosed
	}
	p.nextNum++
	req := Request{Client: p.id, Num: p.nextNum, Op: op}
	call := &Call{req: req, done: make(chan struct{})}
	payload := p.encode(req)
	span := p.tracer.Root("client-submit")
	tc := span.Context()
	p.inflight[req.Num] = &pipeCall{
		call: call, payload: payload,
		votes: make(map[string]map[types.ProcessID]bool),
		span:  span, tc: tc,
	}
	depth := len(p.inflight)
	p.mu.Unlock()
	p.mxSubmitted.Inc()
	p.mxInflight.Set(int64(depth))
	if err := transport.BroadcastTraced(p.tr, p.replicas, payload, tc); err != nil {
		p.complete(req.Num, nil, fmt.Errorf("smr: send request: %w", err))
		return nil, fmt.Errorf("smr: send request: %w", err)
	}
	return call, nil
}

// Invoke submits op and blocks until completion — Client.Invoke semantics
// over the pipeline.
func (p *Pipeline) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	call, err := p.Submit(ctx, op)
	if err != nil {
		return nil, err
	}
	select {
	case <-call.done:
		return call.result, call.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// complete finishes the in-flight call num, if still present, and frees its
// window slot.
func (p *Pipeline) complete(num uint64, result []byte, err error) {
	p.mu.Lock()
	pc := p.inflight[num]
	if pc == nil {
		p.mu.Unlock()
		return
	}
	delete(p.inflight, num)
	depth := len(p.inflight)
	p.mu.Unlock()
	pc.span.End()
	p.mxCompleted.Inc()
	p.mxInflight.Set(int64(depth))
	pc.call.result = result
	pc.call.err = err
	close(pc.call.done)
	<-p.slots
}

func (p *Pipeline) recvLoop() {
	defer p.wg.Done()
	for {
		env, err := p.tr.Recv(p.ctx)
		if err != nil {
			return
		}
		rep, err := DecodeReply(env.Payload)
		if err != nil || rep.Client != p.id || rep.Replica != env.From {
			continue
		}
		p.mu.Lock()
		pc := p.inflight[rep.Num]
		if pc == nil {
			p.mu.Unlock()
			continue
		}
		key := string(rep.Result)
		if pc.votes[key] == nil {
			pc.votes[key] = make(map[types.ProcessID]bool)
		}
		pc.votes[key][rep.Replica] = true
		agreed := len(pc.votes[key]) >= p.need
		p.mu.Unlock()
		if agreed {
			p.complete(rep.Num, append([]byte(nil), rep.Result...), nil)
		}
	}
}

// retransmitLoop rebroadcasts every outstanding request each retry period,
// covering loss, replica restarts, and view changes in one mechanism, like
// the closed-loop client's per-request timer.
func (p *Pipeline) retransmitLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.retry)
	defer t.Stop()
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-t.C:
		}
		p.mu.Lock()
		resend := make([]*pipeCall, 0, len(p.inflight))
		for _, pc := range p.inflight {
			resend = append(resend, pc)
		}
		p.mu.Unlock()
		for _, pc := range resend {
			// Retransmits carry the same context: wherever the request
			// finally lands, it stays on its trace.
			_ = transport.BroadcastTraced(p.tr, p.replicas, pc.payload, pc.tc)
		}
	}
}

// Close stops the pipeline; outstanding calls complete with ErrClientClosed.
// The underlying transport is not closed.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	stuck := p.inflight
	p.inflight = make(map[uint64]*pipeCall)
	p.mu.Unlock()
	p.cancel()
	p.mxInflight.Set(0)
	for _, pc := range stuck {
		pc.span.End()
		pc.call.err = ErrClientClosed
		close(pc.call.done)
	}
	p.wg.Wait()
	return nil
}
