package smr

import (
	"bytes"
	"testing"

	"unidir/internal/types"
	"unidir/internal/wire"
)

func TestReadRequestRoundTrip(t *testing.T) {
	req := ReadRequest{Client: 9, Num: 77, Op: []byte("get alpha")}
	got, err := DecodeReadRequest(req.Encode())
	if err != nil {
		t.Fatalf("DecodeReadRequest: %v", err)
	}
	if got.Client != req.Client || got.Num != req.Num || !bytes.Equal(got.Op, req.Op) {
		t.Fatalf("round trip: got %+v want %+v", got, req)
	}
}

func TestReadReplyRoundTrip(t *testing.T) {
	rep := ReadReply{
		Replica: types.ProcessID(2), Client: 9, Num: 77,
		Result: []byte("value"), Code: ReadLeased, ExecSeq: 1234,
	}
	got, err := DecodeReadReply(rep.Encode())
	if err != nil {
		t.Fatalf("DecodeReadReply: %v", err)
	}
	if got.Replica != rep.Replica || got.Client != rep.Client || got.Num != rep.Num ||
		!bytes.Equal(got.Result, rep.Result) || got.Code != rep.Code || got.ExecSeq != rep.ExecSeq {
		t.Fatalf("round trip: got %+v want %+v", got, rep)
	}
}

// TestReadReplyLegacyDecode pins the legacy tolerance: a reply encoded
// without the trailing Code and ExecSeq fields (the pre-read-path Reply
// layout) must decode as a fallback vote at watermark zero, not error.
func TestReadReplyLegacyDecode(t *testing.T) {
	e := wire.NewEncoder(64)
	e.Int(3)
	e.Uint64(9)
	e.Uint64(77)
	e.BytesField([]byte("value"))
	got, err := DecodeReadReply(e.Bytes())
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if got.Code != ReadFallback || got.ExecSeq != 0 {
		t.Fatalf("legacy decode defaults: got code=%d execSeq=%d", got.Code, got.ExecSeq)
	}
	if got.Replica != 3 || string(got.Result) != "value" {
		t.Fatalf("legacy decode fields: %+v", got)
	}

	// Code without ExecSeq (the intermediate layout) also decodes.
	e2 := wire.NewEncoder(64)
	e2.Int(3)
	e2.Uint64(9)
	e2.Uint64(77)
	e2.BytesField([]byte("value"))
	e2.Byte(ReadLeased)
	got2, err := DecodeReadReply(e2.Bytes())
	if err != nil {
		t.Fatalf("code-only decode: %v", err)
	}
	if got2.Code != ReadLeased || got2.ExecSeq != 0 {
		t.Fatalf("code-only decode: got code=%d execSeq=%d", got2.Code, got2.ExecSeq)
	}
}

// TestDecodeReplyRejectsReadReply guards the client recvLoop's reply-type
// discrimination: a ReadReply payload must NOT decode as a write Reply (its
// trailing ExecSeq makes the strict decode fail), or read replies would
// complete write calls.
func TestDecodeReplyRejectsReadReply(t *testing.T) {
	rep := ReadReply{
		Replica: types.ProcessID(1), Client: 9, Num: 77,
		Result: []byte("value"), Code: ReadLeased, ExecSeq: 42,
	}
	if _, err := DecodeReply(rep.Encode()); err == nil {
		t.Fatal("DecodeReply accepted a ReadReply payload")
	}
}

func TestReadVoteKeyGroupsOnStateOnly(t *testing.T) {
	a := ReadReply{Replica: 0, Client: 1, Num: 2, Result: []byte("v"), Code: ReadFallback, ExecSeq: 7}
	b := ReadReply{Replica: 2, Client: 1, Num: 2, Result: []byte("v"), Code: ReadFallback, ExecSeq: 7}
	if a.voteKey() != b.voteKey() {
		t.Fatal("votes from different replicas answering from the same state must match")
	}
	c := b
	c.ExecSeq = 8
	if a.voteKey() == c.voteKey() {
		t.Fatal("votes at different executed watermarks must not match")
	}
	d := b
	d.Result = []byte("w")
	if a.voteKey() == d.voteKey() {
		t.Fatal("votes with different results must not match")
	}
}

func FuzzDecodeReadRequest(f *testing.F) {
	f.Add(ReadRequest{Client: 1, Num: 2, Op: []byte("op")}.Encode())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := DecodeReadRequest(b)
		if err != nil {
			return
		}
		// Decoded values must survive a re-encode round trip.
		again, err := DecodeReadRequest(req.Encode())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.Client != req.Client || again.Num != req.Num || !bytes.Equal(again.Op, req.Op) {
			t.Fatalf("re-encode changed value: %+v vs %+v", again, req)
		}
	})
}

func FuzzDecodeReadReply(f *testing.F) {
	f.Add(ReadReply{Replica: 1, Client: 2, Num: 3, Result: []byte("r"), Code: ReadLeased, ExecSeq: 4}.Encode())
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		rep, err := DecodeReadReply(b)
		if err != nil {
			return
		}
		again, err := DecodeReadReply(rep.Encode())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.voteKey() != rep.voteKey() || again.Replica != rep.Replica {
			t.Fatalf("re-encode changed value: %+v vs %+v", again, rep)
		}
	})
}

func TestReadRequestBatchRoundTrip(t *testing.T) {
	reqs := []ReadRequest{
		{Client: 9, Num: 1, Op: []byte("get a")},
		{Client: 9, Num: 2, Op: nil},
		{Client: 9, Num: 3, Op: []byte("get c")},
	}
	bodies := make([][]byte, len(reqs))
	for i, r := range reqs {
		bodies[i] = r.Encode()
	}
	got, err := DecodeReadRequestBatch(EncodeReadRequestBatch(bodies))
	if err != nil {
		t.Fatalf("DecodeReadRequestBatch: %v", err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("len: got %d want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i].Client != reqs[i].Client || got[i].Num != reqs[i].Num || !bytes.Equal(got[i].Op, reqs[i].Op) {
			t.Fatalf("element %d: got %+v want %+v", i, got[i], reqs[i])
		}
	}
}

func TestReadReplyBatchRoundTrip(t *testing.T) {
	reps := []ReadReply{
		{Replica: 0, Client: 9, Num: 1, Result: []byte("v1"), Code: ReadLeased, ExecSeq: 10},
		{Replica: 0, Client: 9, Num: 2, Result: nil, Code: ReadFallback, ExecSeq: 11},
	}
	bodies := make([][]byte, len(reps))
	for i, r := range reps {
		bodies[i] = r.Encode()
	}
	got, err := DecodeReadReplyBatch(EncodeReadReplyBatch(bodies))
	if err != nil {
		t.Fatalf("DecodeReadReplyBatch: %v", err)
	}
	if len(got) != len(reps) {
		t.Fatalf("len: got %d want %d", len(got), len(reps))
	}
	for i := range reps {
		if got[i].voteKey() != reps[i].voteKey() || got[i].Replica != reps[i].Replica ||
			got[i].Num != reps[i].Num || !bytes.Equal(got[i].Result, reps[i].Result) {
			t.Fatalf("element %d: got %+v want %+v", i, got[i], reps[i])
		}
	}
}

// TestBatchSentinelDiscrimination guards both recvLoop dispatch orders: a
// batch frame must not decode as any single-message type, and no single
// wire form (whose leading field is a real process or client ID, never
// ^uint64(0)) may decode as a batch.
func TestBatchSentinelDiscrimination(t *testing.T) {
	reqBatch := EncodeReadRequestBatch([][]byte{ReadRequest{Client: 1, Num: 2, Op: []byte("x")}.Encode()})
	repBatch := EncodeReadReplyBatch([][]byte{ReadReply{Replica: 1, Client: 2, Num: 3, Result: []byte("y")}.Encode()})
	if _, err := DecodeReadRequest(reqBatch); err == nil {
		t.Fatal("DecodeReadRequest accepted a batch frame")
	}
	if _, err := DecodeReadReply(repBatch); err == nil {
		t.Fatal("DecodeReadReply accepted a batch frame")
	}
	if _, err := DecodeReply(repBatch); err == nil {
		t.Fatal("DecodeReply accepted a read-reply batch frame")
	}
	single := ReadReply{Replica: 1, Client: 2, Num: 3, Result: []byte("y"), Code: ReadLeased, ExecSeq: 4}.Encode()
	if _, err := DecodeReadReplyBatch(single); err == nil {
		t.Fatal("DecodeReadReplyBatch accepted a single-reply frame")
	}
	if _, err := DecodeReadRequestBatch(ReadRequest{Client: 1, Num: 2, Op: []byte("x")}.Encode()); err == nil {
		t.Fatal("DecodeReadRequestBatch accepted a single-request frame")
	}
}

// TestBatchDecodeBoundsCount guards the decoder's count sanity check: a
// frame claiming more elements than its bytes could possibly hold must be
// rejected before any allocation sized by the claim.
func TestBatchDecodeBoundsCount(t *testing.T) {
	e := wire.NewEncoder(32)
	e.Uint64(readBatchSentinel)
	e.Uint64(1 << 40) // absurd element count, almost no payload
	if _, err := DecodeReadReplyBatch(e.Bytes()); err == nil {
		t.Fatal("DecodeReadReplyBatch accepted an absurd count")
	}
	if _, err := DecodeReadRequestBatch(e.Bytes()); err == nil {
		t.Fatal("DecodeReadRequestBatch accepted an absurd count")
	}
}

func FuzzDecodeReadRequestBatch(f *testing.F) {
	f.Add(EncodeReadRequestBatch([][]byte{ReadRequest{Client: 1, Num: 2, Op: []byte("op")}.Encode()}))
	f.Add(EncodeReadRequestBatch(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		reqs, err := DecodeReadRequestBatch(b)
		if err != nil {
			return
		}
		bodies := make([][]byte, len(reqs))
		for i, r := range reqs {
			bodies[i] = r.Encode()
		}
		again, err := DecodeReadRequestBatch(EncodeReadRequestBatch(bodies))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(again) != len(reqs) {
			t.Fatalf("re-encode changed length: %d vs %d", len(again), len(reqs))
		}
		for i := range reqs {
			if again[i].Client != reqs[i].Client || again[i].Num != reqs[i].Num || !bytes.Equal(again[i].Op, reqs[i].Op) {
				t.Fatalf("re-encode changed element %d", i)
			}
		}
	})
}

func FuzzDecodeReadReplyBatch(f *testing.F) {
	f.Add(EncodeReadReplyBatch([][]byte{ReadReply{Replica: 1, Client: 2, Num: 3, Result: []byte("r"), Code: ReadLeased, ExecSeq: 4}.Encode()}))
	f.Add(EncodeReadReplyBatch(nil))
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		reps, err := DecodeReadReplyBatch(b)
		if err != nil {
			return
		}
		bodies := make([][]byte, len(reps))
		for i, r := range reps {
			bodies[i] = r.Encode()
		}
		again, err := DecodeReadReplyBatch(EncodeReadReplyBatch(bodies))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(again) != len(reps) {
			t.Fatalf("re-encode changed length: %d vs %d", len(again), len(reps))
		}
		for i := range reps {
			if again[i].voteKey() != reps[i].voteKey() || again[i].Replica != reps[i].Replica {
				t.Fatalf("re-encode changed element %d", i)
			}
		}
	})
}
