package smr

// Checkpoint support shared by the SMR protocols: the Snapshotter contract a
// state machine implements to participate in checkpointing, a deterministic
// encoding of the per-client dedup table (which must travel with every
// snapshot — restoring application state without the table would re-execute
// requests the snapshot already reflects), and the combined checkpoint-state
// payload whose digest replicas vote on.

import (
	"fmt"
	"sort"

	"unidir/internal/obs/knob"
	"unidir/internal/wire"
)

// Snapshotter extends StateMachine with checkpoint support. Snapshot must be
// deterministic: two replicas that applied the same command sequence must
// produce identical bytes, because checkpoint certificates are votes on the
// digest of the combined state. Restore replaces the machine's state with a
// previously snapshotted one. Both are called from the replica's single
// apply goroutine, like Apply.
type Snapshotter interface {
	StateMachine
	Snapshot() []byte
	Restore(snap []byte) error
}

// defaultCheckpointInterval is the checkpoint cadence (in executed batches)
// when UNIDIR_CKPT is unset.
const defaultCheckpointInterval = 128

// DefaultCheckpointInterval returns the default checkpoint interval used by
// the SMR protocols (a checkpoint every K executed batches), controlled by
// the UNIDIR_CKPT environment variable, mirroring UNIDIR_BATCH:
//
//	unset / ""    -> 128 (checkpointing on, the default)
//	"off" or "0"  -> 0   (checkpointing disabled; logs grow without bound)
//	integer k > 0 -> k
//
// Malformed values fall back to the default with a logged warning. Protocol
// options (minbft.WithCheckpointInterval, pbft.WithCheckpointInterval)
// override it per replica.
func DefaultCheckpointInterval() int {
	return knob.Int("UNIDIR_CKPT", defaultCheckpointInterval, 1,
		map[string]int{"on": defaultCheckpointInterval, "off": 0, "0": 0})
}

// maxTableClients bounds decoded client tables (defensive).
const maxTableClients = 1 << 20

// Encode returns the canonical wire form of the table: entries sorted by
// client ID, each with the last executed number and cached result.
func (t *ClientTable) Encode() []byte {
	clients := make([]uint64, 0, len(t.last))
	for c := range t.last {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	e := wire.NewEncoder(16 + 32*len(clients))
	e.Int(len(clients))
	for _, c := range clients {
		e.Uint64(c)
		e.Uint64(t.last[c])
		e.BytesField(t.res[c])
	}
	return e.Bytes()
}

// DecodeClientTable parses a table encoded by Encode.
func DecodeClientTable(b []byte) (*ClientTable, error) {
	d := wire.NewDecoder(b)
	n := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n > maxTableClients {
		return nil, fmt.Errorf("smr: client table with %d entries", n)
	}
	t := NewClientTable()
	for i := 0; i < n; i++ {
		c := d.Uint64()
		t.last[c] = d.Uint64()
		t.res[c] = append([]byte(nil), d.BytesField()...)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("smr: decode client table: %w", err)
	}
	return t, nil
}

// EncodeCheckpointState combines an application snapshot and the client
// table into the single payload checkpoints digest and transfer. Both inputs
// are deterministic, so the payload (and hence its hash) is identical on
// every replica that executed the same prefix.
func EncodeCheckpointState(app []byte, t *ClientTable) []byte {
	table := t.Encode()
	e := wire.NewEncoder(16 + len(app) + len(table))
	e.BytesField(app)
	e.BytesField(table)
	return e.Bytes()
}

// DecodeCheckpointState splits a checkpoint-state payload back into the
// application snapshot and the client table.
func DecodeCheckpointState(b []byte) ([]byte, *ClientTable, error) {
	d := wire.NewDecoder(b)
	app := append([]byte(nil), d.BytesField()...)
	tableBytes := d.BytesField()
	if err := d.Finish(); err != nil {
		return nil, nil, fmt.Errorf("smr: decode checkpoint state: %w", err)
	}
	t, err := DecodeClientTable(tableBytes)
	if err != nil {
		return nil, nil, err
	}
	return app, t, nil
}
