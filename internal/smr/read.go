package smr

// The linearizable read fast path's shared pieces: a read-only request
// class (ReadRequest/ReadReply) served off the ordering path, the reply
// codes distinguishing a lease-holder answer from a quorum-read vote, the
// Querier interface a state machine implements to answer reads without
// going through Apply, and the UNIDIR_LEASE* environment knobs.
//
// Two ways a read completes (see DESIGN.md §8):
//
//   - Leased: the current primary holds a lease granted by a replica quorum
//     and answers locally once its execute watermark covers every request
//     admitted before the read arrived. One ReadLeased reply completes the
//     read on its own.
//   - Fallback: when no valid lease is held (view change in flight, lease
//     expired, or leases disabled) every replica answers immediately with a
//     ReadFallback reply carrying its current executed sequence number; the
//     client accepts a result once enough replicas agree on the same
//     (executed seq, value) pair — the PR 6 reply-vote machinery applied to
//     reads.

import (
	"fmt"
	"time"

	"unidir/internal/obs/knob"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// Read reply codes. A fallback-coded reply is one vote in a quorum read; a
// leased-coded reply is the lease holder's authoritative answer and
// completes the read alone.
const (
	ReadFallback byte = 0
	ReadLeased   byte = 1
)

// Querier answers read-only commands against the current state without
// mutating it. Like Apply it runs on the replica's single execution
// goroutine, so implementations need not be concurrency-safe. A command
// that would mutate state must be answered with a deterministic error
// result, never applied.
type Querier interface {
	Query(cmd []byte) []byte
}

// ReadRequest is a client read submitted off the ordering path. It shares
// the request identity scheme with Request (client ID plus client-local
// number) so replies route through the same per-client matching.
type ReadRequest struct {
	Client uint64
	Num    uint64
	Op     []byte // read-only application command
}

// Encode returns the canonical wire form.
func (r ReadRequest) Encode() []byte {
	e := wire.NewEncoder(24 + len(r.Op))
	e.Uint64(r.Client)
	e.Uint64(r.Num)
	e.BytesField(r.Op)
	return e.Bytes()
}

// DecodeReadRequest parses a read request.
func DecodeReadRequest(b []byte) (ReadRequest, error) {
	d := wire.NewDecoder(b)
	var r ReadRequest
	r.Client = d.Uint64()
	r.Num = d.Uint64()
	r.Op = append([]byte(nil), d.BytesField()...)
	if err := d.Finish(); err != nil {
		return ReadRequest{}, fmt.Errorf("smr: decode read request: %w", err)
	}
	// The sentinel is reserved to open batch frames; no correct client uses
	// it as an ID, so rejecting it here makes batch/single discrimination
	// independent of which decoder a handler tries first.
	if r.Client == readBatchSentinel {
		return ReadRequest{}, fmt.Errorf("smr: decode read request: reserved client id")
	}
	return r, nil
}

// ReadReply is a replica's answer to a ReadRequest. ExecSeq is the
// replica's executed-sequence watermark at answer time (executed fresh
// batches in MinBFT, executed slots in PBFT — deterministic across correct
// replicas), which is what fallback votes must agree on: matching ExecSeq
// plus matching Result means the voters answered from the same state.
type ReadReply struct {
	Replica types.ProcessID
	Client  uint64
	Num     uint64
	Result  []byte
	Code    byte
	ExecSeq uint64
}

// Encode returns the wire form. The trailing Code and ExecSeq ride after
// Result, mirroring how Reply gained its code byte.
func (r ReadReply) Encode() []byte {
	e := wire.NewEncoder(41 + len(r.Result))
	e.Int(int(r.Replica))
	e.Uint64(r.Client)
	e.Uint64(r.Num)
	e.BytesField(r.Result)
	e.Byte(r.Code)
	e.Uint64(r.ExecSeq)
	return e.Bytes()
}

// DecodeReadReply parses a read reply. The trailing Code and ExecSeq are
// optional on the wire (legacy-tolerant, like Reply's code byte): replies
// without them decode as a fallback vote at watermark zero.
func DecodeReadReply(b []byte) (ReadReply, error) {
	d := wire.NewDecoder(b)
	var r ReadReply
	r.Replica = types.ProcessID(d.Int())
	r.Client = d.Uint64()
	r.Num = d.Uint64()
	r.Result = append([]byte(nil), d.BytesField()...)
	if d.Err() == nil && d.Remaining() > 0 {
		r.Code = d.Byte()
	}
	if d.Err() == nil && d.Remaining() > 0 {
		r.ExecSeq = d.Uint64()
	}
	if err := d.Finish(); err != nil {
		return ReadReply{}, fmt.Errorf("smr: decode read reply: %w", err)
	}
	return r, nil
}

// voteKey groups fallback read votes: replies agree only when code,
// executed watermark, and result all match.
func (r ReadReply) voteKey() string {
	e := wire.NewEncoder(16 + len(r.Result))
	e.Byte(r.Code)
	e.Uint64(r.ExecSeq)
	e.BytesField(r.Result)
	return string(e.Bytes())
}

// defaultLeaseTerm is the leader-lease term when UNIDIR_LEASE is unset.
const defaultLeaseTerm = 250 * time.Millisecond

// DefaultLeaseTerm returns the default leader-lease term, controlled by the
// UNIDIR_LEASE environment variable:
//
//	unset / "on"    -> 250ms (leases on, the default)
//	"off" or "0"    -> 0     (leases disabled; every read quorum-reads)
//	duration string -> parsed (e.g. "100ms", "1s")
//
// Malformed values fall back to the default with a logged warning. Protocol
// options (minbft.WithLeaseTerm, pbft.WithLeaseTerm) override it per
// replica. The term is the grantor's promise horizon; the holder renews at
// half the term and treats its lease as expired one eighth of a term early,
// so clock rate skew below ~12% cannot open a stale window.
func DefaultLeaseTerm() time.Duration {
	return knob.Duration("UNIDIR_LEASE", defaultLeaseTerm,
		map[string]time.Duration{"on": defaultLeaseTerm, "off": 0, "0": 0})
}

// LeaseQuorumFull reports whether leases require a full (all-n) grant
// quorum rather than the protocol's minimum, controlled by the
// UNIDIR_LEASE_QUORUM environment variable:
//
//	"full"           -> all n replicas
//	"min" / "fplus1" -> the protocol minimum (f+1 MinBFT, 2f+1 PBFT)
//	unset            -> the protocol's Byzantine-safe default
//	other            -> the default, with a logged warning
//
// minIsByzantineSafe tells the knob what the caller's minimum already
// guarantees. PBFT's 2f+1-of-3f+1 grant quorum intersects every view-change
// quorum in a correct replica, so its minimum doubles as its default.
// MinBFT's f+1-of-2f+1 minimum is safe under crash and timing faults only:
// a single Byzantine grantor can grant a lease and still vote a new primary
// in (its trusted counter makes the defection provable, not preventable),
// leaving the deposed holder serving stale leased reads. MinBFT therefore
// defaults to the full quorum, and f+1 is the explicit opt-in performance
// mode for deployments that rule out Byzantine grantors — at the price that
// a full quorum needs every replica up to establish a lease (reads degrade
// to quorum-read fallbacks otherwise, never to wrong answers). See
// DESIGN.md §8.
func LeaseQuorumFull(minIsByzantineSafe bool) bool {
	switch knob.Choice("UNIDIR_LEASE_QUORUM", "", "full", "min", "fplus1") {
	case "full":
		return true
	case "min", "fplus1":
		return false
	default:
		return !minIsByzantineSafe
	}
}

// DefaultReadWindow returns the pipelined client's default read window (the
// in-flight bound for SubmitRead, separate from the write window),
// controlled by the UNIDIR_READ_WINDOW environment variable:
//
//	unset / ""    -> 0 (follow the write window)
//	"off" or "0"  -> 0 (same: follow the write window)
//	integer k > 0 -> k
//
// Malformed values fall back to the default with a logged warning.
func DefaultReadWindow() int {
	return knob.Int("UNIDIR_READ_WINDOW", 0, 1,
		map[string]int{"off": 0, "0": 0})
}

// readBatchSentinel opens a coalesced read-reply frame. Every Reply and
// ReadReply begins with the sender's replica ID, which correct replicas
// never encode as -1, so the prefix cleanly separates batch frames from
// single replies on the shared client delivery path.
const readBatchSentinel = ^uint64(0)

// EncodeReadReplyBatch coalesces several encoded ReadReply payloads bound
// for one client into a single transport frame. Replicas answering a burst
// of reads in one event-loop drain send one frame per client instead of
// one per read, which is most of the leased fast path's message cost at
// saturation; a burst of one is sent as the bare reply, so the low-load
// wire format is unchanged.
func EncodeReadReplyBatch(reps [][]byte) []byte {
	n := 16
	for _, r := range reps {
		n += 8 + len(r)
	}
	e := wire.NewEncoder(n)
	e.Uint64(readBatchSentinel)
	e.Uint64(uint64(len(reps)))
	for _, r := range reps {
		e.BytesField(r)
	}
	return e.Bytes()
}

// DecodeReadReplyBatch parses a coalesced read-reply frame, failing fast
// (one integer compare) on anything without the sentinel prefix.
func DecodeReadReplyBatch(b []byte) ([]ReadReply, error) {
	d := wire.NewDecoder(b)
	if d.Uint64() != readBatchSentinel || d.Err() != nil {
		return nil, fmt.Errorf("smr: not a read reply batch")
	}
	count := d.Uint64()
	// Each entry costs at least its 8-byte length prefix, so a count the
	// buffer cannot hold is malformed; checking first bounds the alloc.
	if count > uint64(d.Remaining())/8 {
		return nil, fmt.Errorf("smr: read reply batch count %d exceeds frame", count)
	}
	reps := make([]ReadReply, 0, count)
	for i := uint64(0); i < count; i++ {
		rr, err := DecodeReadReply(d.BytesField())
		if err != nil {
			return nil, fmt.Errorf("smr: read reply batch entry %d: %w", i, err)
		}
		reps = append(reps, rr)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("smr: decode read reply batch: %w", err)
	}
	return reps, nil
}

// EncodeReadRequestBatch coalesces several encoded ReadRequest payloads
// from one client into a single body, the submission-side mirror of
// EncodeReadReplyBatch: the client's read send loop packs every read
// queued while the previous frame was in flight. The sentinel occupies the
// Client field's position, and no real client encodes ID ^uint64(0), so
// replicas can discriminate batch from single read with one compare.
func EncodeReadRequestBatch(reqs [][]byte) []byte {
	n := 16
	for _, r := range reqs {
		n += 8 + len(r)
	}
	e := wire.NewEncoder(n)
	e.Uint64(readBatchSentinel)
	e.Uint64(uint64(len(reqs)))
	for _, r := range reqs {
		e.BytesField(r)
	}
	return e.Bytes()
}

// DecodeReadRequestBatch parses a coalesced read-request body, failing
// fast (one integer compare) on a single-read body.
func DecodeReadRequestBatch(b []byte) ([]ReadRequest, error) {
	d := wire.NewDecoder(b)
	if d.Uint64() != readBatchSentinel || d.Err() != nil {
		return nil, fmt.Errorf("smr: not a read request batch")
	}
	count := d.Uint64()
	if count > uint64(d.Remaining())/8 {
		return nil, fmt.Errorf("smr: read request batch count %d exceeds frame", count)
	}
	reqs := make([]ReadRequest, 0, count)
	for i := uint64(0); i < count; i++ {
		rr, err := DecodeReadRequest(d.BytesField())
		if err != nil {
			return nil, fmt.Errorf("smr: read request batch entry %d: %w", i, err)
		}
		reqs = append(reqs, rr)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("smr: decode read request batch: %w", err)
	}
	return reqs, nil
}
