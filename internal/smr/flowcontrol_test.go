package smr

import (
	"errors"
	"testing"
	"time"
)

func TestBatchTriggerCutsImmediatelyAtLightLoad(t *testing.T) {
	tr := NewBatchTrigger(64, 100*time.Microsecond)
	base := time.Now()
	// 1ms inter-arrival gap: ~0.1 expected arrivals per deadline — far below
	// the gain threshold, so waiting can never amortize anything.
	for i := 0; i < 20; i++ {
		tr.Arrive(base.Add(time.Duration(i) * time.Millisecond))
	}
	now := base.Add(20 * time.Millisecond)
	if w := tr.Wait(1, 1, now, now); w != 0 {
		t.Fatalf("light load wait = %v, want 0", w)
	}
}

func TestBatchTriggerWaitsAtHighLoad(t *testing.T) {
	const deadline = 100 * time.Microsecond
	tr := NewBatchTrigger(64, deadline)
	base := time.Now()
	// 2µs gaps: 50 expected arrivals per deadline — worth holding the batch.
	for i := 0; i < 100; i++ {
		tr.Arrive(base.Add(time.Duration(i) * 2 * time.Microsecond))
	}
	now := base.Add(200 * time.Microsecond)
	w := tr.Wait(4, 1, now, now)
	if w <= 0 || w > deadline {
		t.Fatalf("high load wait = %v, want in (0, %v]", w, deadline)
	}
	// The same batch that has already waited past the deadline must cut.
	if w := tr.Wait(4, 1, now.Add(-2*deadline), now); w != 0 {
		t.Fatalf("expired deadline wait = %v, want 0", w)
	}
	// A full batch always cuts.
	if w := tr.Wait(64, 1, now, now); w != 0 {
		t.Fatalf("full batch wait = %v, want 0", w)
	}
	// An idle consensus pipeline always cuts: holding the batch back cannot
	// amortize anything an idle proposal slot would not.
	if w := tr.Wait(4, 0, now, now); w != 0 {
		t.Fatalf("idle pipeline wait = %v, want 0", w)
	}
}

func TestFixedBatchTriggerAlwaysWaits(t *testing.T) {
	const deadline = 100 * time.Microsecond
	tr := NewFixedBatchTrigger(64, deadline)
	now := time.Now()
	// No rate estimate, idle pipeline: the fixed window still holds.
	if w := tr.Wait(1, 0, now, now); w != deadline {
		t.Fatalf("fixed wait = %v, want %v", w, deadline)
	}
	if w := tr.Wait(1, 0, now.Add(-deadline/2), now); w != deadline/2 {
		t.Fatalf("half-elapsed fixed wait = %v, want %v", w, deadline/2)
	}
	if w := tr.Wait(1, 0, now.Add(-2*deadline), now); w != 0 {
		t.Fatalf("expired fixed wait = %v, want 0", w)
	}
	if w := tr.Wait(64, 0, now, now); w != 0 {
		t.Fatalf("full fixed batch wait = %v, want 0", w)
	}
}

func TestBatchTriggerDisabled(t *testing.T) {
	tr := NewBatchTrigger(64, 0)
	base := time.Now()
	for i := 0; i < 100; i++ {
		tr.Arrive(base.Add(time.Duration(i) * time.Microsecond))
	}
	now := base.Add(time.Millisecond)
	if w := tr.Wait(1, 1, now, now); w != 0 {
		t.Fatalf("disabled trigger wait = %v, want 0", w)
	}
}

func TestBatchTriggerRecoversAfterIdle(t *testing.T) {
	tr := NewBatchTrigger(64, 100*time.Microsecond)
	base := time.Now()
	for i := 0; i < 100; i++ {
		tr.Arrive(base.Add(time.Duration(i) * 2 * time.Microsecond))
	}
	// A long idle period must pull the rate estimate back down quickly: the
	// first few arrivals after the gap should cut immediately again.
	late := base.Add(5 * time.Second)
	for i := 0; i < 10; i++ {
		tr.Arrive(late.Add(time.Duration(i) * 10 * time.Millisecond))
	}
	now := late.Add(100 * time.Millisecond)
	if w := tr.Wait(1, 1, now, now); w != 0 {
		t.Fatalf("post-idle wait = %v, want 0", w)
	}
}

func TestAdmissionPendingBound(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxPending: 8})
	now := time.Now()
	if !a.Admit(1, 7, now) {
		t.Fatal("under the bound refused")
	}
	if a.Admit(1, 8, now) {
		t.Fatal("at the bound admitted")
	}
	if a.Admit(1, 9000, now) {
		t.Fatal("far past the bound admitted")
	}
}

func TestAdmissionTokenBucket(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Rate: 1000, Burst: 2})
	now := time.Now()
	if !a.Admit(7, 0, now) || !a.Admit(7, 0, now) {
		t.Fatal("burst refused")
	}
	if a.Admit(7, 0, now) {
		t.Fatal("admitted past the burst with no refill time")
	}
	// Another client has its own bucket.
	if !a.Admit(8, 0, now) {
		t.Fatal("fresh client refused")
	}
	// 1000/s refills one token per millisecond.
	if !a.Admit(7, 0, now.Add(2*time.Millisecond)) {
		t.Fatal("refilled token refused")
	}
}

func TestAdmissionNilAndZero(t *testing.T) {
	var nilA *Admission
	if !nilA.Admit(1, 1<<30, time.Now()) {
		t.Fatal("nil admission must admit everything")
	}
	zero := NewAdmission(AdmissionConfig{})
	if !zero.Admit(1, 1<<30, time.Now()) {
		t.Fatal("zero config must admit everything")
	}
}

func TestReplyCodeRoundTrip(t *testing.T) {
	rep := Reply{Replica: 2, Client: 9, Num: 4, Code: ReplyOverloaded}
	got, err := DecodeReply(rep.Encode())
	if err != nil {
		t.Fatalf("DecodeReply: %v", err)
	}
	if got.Code != ReplyOverloaded || got.Client != 9 || got.Num != 4 {
		t.Fatalf("round trip = %+v", got)
	}
	// Replies encoded before the code byte existed (result field last on the
	// wire) must decode as ReplyOK.
	legacy := rep.Encode()
	legacy = legacy[:len(legacy)-1]
	got, err = DecodeReply(legacy)
	if err != nil {
		t.Fatalf("DecodeReply(legacy): %v", err)
	}
	if got.Code != ReplyOK {
		t.Fatalf("legacy code = %d, want ReplyOK", got.Code)
	}
}

func TestDefaultBatchDeadlineKnob(t *testing.T) {
	cases := []struct {
		env  string
		want time.Duration
	}{
		{"", defaultBatchDeadline},
		{"on", defaultBatchDeadline},
		{"off", 0},
		{"0", 0},
		{"250us", 250 * time.Microsecond},
		{"1ms", time.Millisecond},
		{"garbage", defaultBatchDeadline},
		{"-5ms", defaultBatchDeadline},
	}
	for _, c := range cases {
		t.Setenv("UNIDIR_BATCH_DEADLINE", c.env)
		if got := DefaultBatchDeadline(); got != c.want {
			t.Errorf("UNIDIR_BATCH_DEADLINE=%q -> %v, want %v", c.env, got, c.want)
		}
	}
}

func TestDefaultAdmissionConfigKnobs(t *testing.T) {
	t.Setenv("UNIDIR_ADMIT_PENDING", "")
	t.Setenv("UNIDIR_ADMIT_RATE", "")
	t.Setenv("UNIDIR_ADMIT_BURST", "")
	cfg := DefaultAdmissionConfig()
	if cfg.MaxPending != 4096 || cfg.Rate != 0 {
		t.Fatalf("defaults = %+v", cfg)
	}
	t.Setenv("UNIDIR_ADMIT_PENDING", "128")
	t.Setenv("UNIDIR_ADMIT_RATE", "5000")
	t.Setenv("UNIDIR_ADMIT_BURST", "64")
	cfg = DefaultAdmissionConfig()
	if cfg.MaxPending != 128 || cfg.Rate != 5000 || cfg.Burst != 64 {
		t.Fatalf("knobs = %+v", cfg)
	}
	t.Setenv("UNIDIR_ADMIT_PENDING", "off")
	if cfg := DefaultAdmissionConfig(); cfg.MaxPending != 0 {
		t.Fatalf("off pending = %+v", cfg)
	}
}

func TestErrOverloadedIsRetryable(t *testing.T) {
	// The wrapped form replicas and pipelines return must stay matchable.
	err := errorsJoinLike()
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("errors.Is(%v, ErrOverloaded) = false", err)
	}
}

func errorsJoinLike() error {
	return &wrapped{ErrOverloaded}
}

type wrapped struct{ inner error }

func (w *wrapped) Error() string { return "shed: " + w.inner.Error() }
func (w *wrapped) Unwrap() error { return w.inner }
