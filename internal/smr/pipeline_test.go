package smr

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"unidir/internal/simnet"
	"unidir/internal/types"
)

func TestRequestBatchRoundTrip(t *testing.T) {
	reqs := []Request{
		{Client: 1, Num: 1, Op: []byte("a")},
		{Client: 2, Num: 7, Op: nil},
		{Client: 1, Num: 2, Op: []byte("ccc")},
	}
	got, err := DecodeRequests(EncodeRequests(reqs), 16)
	if err != nil {
		t.Fatalf("DecodeRequests: %v", err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("len = %d, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i].Client != reqs[i].Client || got[i].Num != reqs[i].Num || !bytes.Equal(got[i].Op, reqs[i].Op) {
			t.Fatalf("entry %d: %+v vs %+v", i, got[i], reqs[i])
		}
	}
}

func TestRequestBatchBounds(t *testing.T) {
	if _, err := DecodeRequests(EncodeRequests(nil), 16); err == nil {
		t.Fatal("empty batch accepted")
	}
	three := EncodeRequests([]Request{{Num: 1}, {Num: 2}, {Num: 3}})
	if _, err := DecodeRequests(three, 2); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if _, err := DecodeRequests([]byte{1, 2, 3}, 16); err == nil {
		t.Fatal("garbage accepted")
	}
}

// echoReplicas runs scripted replicas that decode any request and reply with
// its Op, skipping the first skipN copies of each distinct request.
func echoReplicas(net *simnet.Network, ids []types.ProcessID, skipN int) {
	for _, id := range ids {
		go func(id types.ProcessID) {
			ep := net.Endpoint(id)
			seen := make(map[uint64]int)
			for {
				env, err := ep.Recv(context.Background())
				if err != nil {
					return
				}
				req, err := DecodeRequest(env.Payload)
				if err != nil {
					continue
				}
				seen[req.Num]++
				if seen[req.Num] <= skipN {
					continue
				}
				rep := Reply{Replica: id, Client: req.Client, Num: req.Num, Result: req.Op}
				_ = ep.Send(env.From, rep.Encode())
			}
		}(id)
	}
}

func newPipelineFixture(t *testing.T, window, skipN int) *Pipeline {
	t.Helper()
	m, err := types.NewMembership(4, 1) // 3 replicas + 1 client endpoint
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	t.Cleanup(func() { net.Close() })
	replicas := []types.ProcessID{0, 1, 2}
	echoReplicas(net, replicas, skipN)
	p, err := NewPipeline(net.Endpoint(3), replicas, 2, 3, 30*time.Millisecond, window)
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

func TestPipelineManyInFlight(t *testing.T) {
	p := newPipelineFixture(t, 4, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	calls := make([]*Call, 20)
	for i := range calls {
		call, err := p.Submit(ctx, []byte(fmt.Sprintf("op-%d", i)))
		if err != nil {
			t.Fatalf("Submit(%d): %v", i, err)
		}
		calls[i] = call
	}
	for i, call := range calls {
		res, err := call.Result()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if want := fmt.Sprintf("op-%d", i); string(res) != want {
			t.Fatalf("call %d result = %q, want %q", i, res, want)
		}
	}
}

func TestPipelineRetransmits(t *testing.T) {
	// Replicas ignore the first copy of every request; only the pipeline's
	// retransmission ticker gets an answer back.
	p := newPipelineFixture(t, 2, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := p.Invoke(ctx, []byte("persist"))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if string(res) != "persist" {
		t.Fatalf("result = %q", res)
	}
}

func TestPipelineCloseCompletesOutstanding(t *testing.T) {
	m, _ := types.NewMembership(2, 0)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	// Replica 0 never answers.
	p, err := NewPipeline(net.Endpoint(1), []types.ProcessID{0}, 1, 1, time.Second, 2)
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	call, err := p.Submit(ctx, []byte("stuck"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := call.Result(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("outstanding call err = %v, want ErrClientClosed", err)
	}
	if _, err := p.Submit(ctx, []byte("late")); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Submit after close err = %v", err)
	}
}

func TestPipelineWindowBlocks(t *testing.T) {
	m, _ := types.NewMembership(2, 0)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	p, err := NewPipeline(net.Endpoint(1), []types.ProcessID{0}, 1, 1, time.Second, 1)
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	defer p.Close()
	if _, err := p.Submit(context.Background(), []byte("fills window")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Window full and the replica silent: the next Submit must block until
	// its context expires.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := p.Submit(ctx, []byte("blocked")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit on full window err = %v, want deadline exceeded", err)
	}
}

func TestPipelineValidation(t *testing.T) {
	m, _ := types.NewMembership(2, 0)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	if _, err := NewPipeline(net.Endpoint(1), []types.ProcessID{0}, 2, 1, 0, 1); err == nil {
		t.Fatal("need > replicas accepted")
	}
	if _, err := NewPipeline(net.Endpoint(1), []types.ProcessID{0}, 1, 1, 0, 0); err == nil {
		t.Fatal("window 0 accepted")
	}
}
