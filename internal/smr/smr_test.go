package smr

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"unidir/internal/obs/knob"
	"unidir/internal/simnet"
	"unidir/internal/types"
)

func TestRequestReplyRoundTrip(t *testing.T) {
	req := Request{Client: 7, Num: 42, Op: []byte("operation")}
	got, err := DecodeRequest(req.Encode())
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if got.Client != req.Client || got.Num != req.Num || !bytes.Equal(got.Op, req.Op) {
		t.Fatalf("round trip: %+v vs %+v", got, req)
	}

	rep := Reply{Replica: 2, Client: 7, Num: 42, Result: []byte("res")}
	gotRep, err := DecodeReply(rep.Encode())
	if err != nil {
		t.Fatalf("DecodeReply: %v", err)
	}
	if gotRep.Replica != rep.Replica || gotRep.Client != rep.Client ||
		gotRep.Num != rep.Num || !bytes.Equal(gotRep.Result, rep.Result) {
		t.Fatalf("round trip: %+v vs %+v", gotRep, rep)
	}
}

func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(client, num uint64, op []byte) bool {
		req := Request{Client: client, Num: num, Op: op}
		got, err := DecodeRequest(req.Encode())
		return err == nil && got.Client == client && got.Num == num && bytes.Equal(got.Op, op)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1}, make([]byte, 10)} {
		if _, err := DecodeRequest(b); err == nil {
			t.Fatalf("DecodeRequest(%v) accepted garbage", b)
		}
		if _, err := DecodeReply(b); err == nil {
			t.Fatalf("DecodeReply(%v) accepted garbage", b)
		}
	}
}

func TestClientTable(t *testing.T) {
	tab := NewClientTable()
	r1 := Request{Client: 1, Num: 1, Op: []byte("a")}
	if !tab.ShouldExecute(r1) {
		t.Fatal("fresh request rejected")
	}
	tab.Executed(r1, []byte("res1"))
	if tab.ShouldExecute(r1) {
		t.Fatal("executed request re-admitted")
	}
	if res, ok := tab.CachedReply(r1); !ok || string(res) != "res1" {
		t.Fatalf("CachedReply = %q, %v", res, ok)
	}
	r2 := Request{Client: 1, Num: 2, Op: []byte("b")}
	if !tab.ShouldExecute(r2) {
		t.Fatal("next request rejected")
	}
	tab.Executed(r2, []byte("res2"))
	// Older request: not executable, no cached reply (only last is cached).
	if tab.ShouldExecute(r1) {
		t.Fatal("stale request re-admitted")
	}
	if _, ok := tab.CachedReply(r1); ok {
		t.Fatal("stale cached reply returned")
	}
}

func TestCheckPrefix(t *testing.T) {
	a := [][]byte{[]byte("x"), []byte("y")}
	b := [][]byte{[]byte("x"), []byte("y"), []byte("z")}
	if err := CheckPrefix(a, b); err != nil {
		t.Fatalf("CheckPrefix: %v", err)
	}
	if err := CheckPrefix(b, a); err != nil {
		t.Fatalf("CheckPrefix (swapped): %v", err)
	}
	c := [][]byte{[]byte("x"), []byte("DIFFERENT")}
	if err := CheckPrefix(a, c); err == nil {
		t.Fatal("divergence not detected")
	}
}

func TestExecutionLogCopies(t *testing.T) {
	var l ExecutionLog
	cmd := []byte("mutate-me")
	l.Record(cmd)
	cmd[0] = 'X'
	if string(l.Snapshot()[0]) != "mutate-me" {
		t.Fatal("log aliased caller buffer")
	}
}

// TestClientRetransmitsAndCollects runs the client against scripted
// "replicas" that stay silent until the second transmission, then reply.
func TestClientRetransmitsAndCollects(t *testing.T) {
	m, err := types.NewMembership(4, 1) // 3 replicas + 1 client endpoint
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	replicas := []types.ProcessID{0, 1, 2}
	client, err := NewClient(net.Endpoint(3), replicas, 2, 3, 30*time.Millisecond)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	// Each scripted replica ignores the first copy of the request and
	// replies to the second.
	for _, id := range replicas {
		go func(id types.ProcessID) {
			ep := net.Endpoint(id)
			seen := 0
			for {
				env, err := ep.Recv(context.Background())
				if err != nil {
					return
				}
				req, err := DecodeRequest(env.Payload)
				if err != nil {
					continue
				}
				seen++
				if seen < 2 {
					continue
				}
				rep := Reply{Replica: id, Client: req.Client, Num: req.Num, Result: []byte("done")}
				_ = ep.Send(env.From, rep.Encode())
			}
		}(id)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := client.Invoke(ctx, []byte("op"))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if string(res) != "done" {
		t.Fatalf("result = %q", res)
	}
}

// TestClientNeedsMatchingResults verifies a lone divergent replica cannot
// satisfy the client.
func TestClientNeedsMatchingResults(t *testing.T) {
	m, err := types.NewMembership(4, 1)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	client, err := NewClient(net.Endpoint(3), []types.ProcessID{0, 1, 2}, 2, 3, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	// Replica 0 replies "evil" once; replicas 1 and 2 reply "good".
	for _, cfg := range []struct {
		id  types.ProcessID
		res string
	}{{0, "evil"}, {1, "good"}, {2, "good"}} {
		go func(id types.ProcessID, res string) {
			ep := net.Endpoint(id)
			for {
				env, err := ep.Recv(context.Background())
				if err != nil {
					return
				}
				req, err := DecodeRequest(env.Payload)
				if err != nil {
					continue
				}
				rep := Reply{Replica: id, Client: req.Client, Num: req.Num, Result: []byte(res)}
				_ = ep.Send(env.From, rep.Encode())
			}
		}(cfg.id, cfg.res)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := client.Invoke(ctx, []byte("op"))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if string(res) != "good" {
		t.Fatalf("client accepted minority result %q", res)
	}
}

func TestClientClosed(t *testing.T) {
	m, _ := types.NewMembership(2, 0)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	client, err := NewClient(net.Endpoint(1), []types.ProcessID{0}, 1, 1, time.Millisecond)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	_ = client.Close()
	if _, err := client.Invoke(context.Background(), []byte("x")); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Invoke after close err = %v", err)
	}
}

func TestClientValidation(t *testing.T) {
	m, _ := types.NewMembership(2, 0)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	if _, err := NewClient(net.Endpoint(1), []types.ProcessID{0}, 2, 1, 0); err == nil {
		t.Fatal("need > replicas accepted")
	}
	if _, err := NewClient(net.Endpoint(1), []types.ProcessID{0}, 0, 1, 0); err == nil {
		t.Fatal("need 0 accepted")
	}
}

func TestDefaultBatchSizeKnob(t *testing.T) {
	cases := []struct {
		env  string
		want int
	}{
		{"", 64},
		{"on", 64},
		{"off", 1},
		{"0", 1},
		{"1", 1},
		{"16", 16},
		{"-3", 64},
		{"bogus", 64},
	}
	for _, tc := range cases {
		t.Setenv("UNIDIR_BATCH", tc.env)
		if got := DefaultBatchSize(); got != tc.want {
			t.Errorf("UNIDIR_BATCH=%q: DefaultBatchSize() = %d, want %d", tc.env, got, tc.want)
		}
	}
}

// A malformed UNIDIR_BATCH must fall back to the default AND leave a trace
// in the logs — silent fallback is exactly the bug the shared knob helper
// fixes.
func TestDefaultBatchSizeWarnsOnMalformed(t *testing.T) {
	var buf bytes.Buffer
	restore := knob.SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))
	defer restore()

	t.Setenv("UNIDIR_BATCH", "banana")
	if got := DefaultBatchSize(); got != defaultBatchSize {
		t.Fatalf("malformed UNIDIR_BATCH: got %d, want default %d", got, defaultBatchSize)
	}
	log := buf.String()
	if !strings.Contains(log, "UNIDIR_BATCH") || !strings.Contains(log, "banana") {
		t.Fatalf("warning must name the knob and the bad value, got %q", log)
	}

	// A well-formed value must stay quiet.
	buf.Reset()
	t.Setenv("UNIDIR_BATCH", "16")
	if got := DefaultBatchSize(); got != 16 {
		t.Fatalf("UNIDIR_BATCH=16: got %d", got)
	}
	if buf.Len() != 0 {
		t.Fatalf("valid value logged a warning: %q", buf.String())
	}
}
