package smr

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"unidir/internal/simnet"
	"unidir/internal/types"
)

// codedReplicas runs scripted replicas that echo requests while overloaded is
// false and answer every request with a ReplyOverloaded vote while it is true.
func codedReplicas(net *simnet.Network, ids []types.ProcessID, overloaded *atomic.Bool) {
	for _, id := range ids {
		go func(id types.ProcessID) {
			ep := net.Endpoint(id)
			for {
				env, err := ep.Recv(context.Background())
				if err != nil {
					return
				}
				req, err := DecodeRequest(env.Payload)
				if err != nil {
					continue
				}
				rep := Reply{Replica: id, Client: req.Client, Num: req.Num}
				if overloaded.Load() {
					rep.Code = ReplyOverloaded
				} else {
					rep.Result = req.Op
				}
				_ = ep.Send(env.From, rep.Encode())
			}
		}(id)
	}
}

// TestPipelineSubmitTimeoutSheds: with a submit timeout, a window that stays
// exhausted fails fast with the retryable ErrOverloaded instead of blocking
// until the caller's context dies.
func TestPipelineSubmitTimeoutSheds(t *testing.T) {
	m, _ := types.NewMembership(2, 0)
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	// Replica 0 never answers; window 1.
	p, err := NewPipeline(net.Endpoint(1), []types.ProcessID{0}, 1, 1, time.Second, 1,
		WithSubmitTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	defer p.Close()
	if _, err := p.Submit(context.Background(), []byte("fills window")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	start := time.Now()
	_, err = p.Submit(context.Background(), []byte("shed"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Submit on exhausted window = %v, want ErrOverloaded", err)
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("shed took %v, want ~50ms", el)
	}
}

// TestPipelineOverloadQuorum: a single replica claiming overload proves
// nothing, but f+1 matching overload votes complete the call with
// ErrOverloaded and an empty result.
func TestPipelineOverloadQuorum(t *testing.T) {
	m, err := types.NewMembership(4, 1)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	var overloaded atomic.Bool
	overloaded.Store(true)
	replicas := []types.ProcessID{0, 1, 2}
	codedReplicas(net, replicas, &overloaded)
	p, err := NewPipeline(net.Endpoint(3), replicas, 2, 3, 5*time.Second, 4)
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := p.Invoke(ctx, []byte("op"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Invoke under overload = (%q, %v), want ErrOverloaded", res, err)
	}
	if len(res) != 0 {
		t.Fatalf("shed request returned a result: %q", res)
	}
}

// TestPipelineAdaptiveWindowAIMD: overload votes halve the effective window;
// a run of clean completions grows it back to the configured maximum, and the
// pipeline keeps working throughout (token conservation).
func TestPipelineAdaptiveWindowAIMD(t *testing.T) {
	m, err := types.NewMembership(4, 1)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	var overloaded atomic.Bool
	overloaded.Store(true)
	replicas := []types.ProcessID{0, 1, 2}
	codedReplicas(net, replicas, &overloaded)
	const winMax = 8
	// Long retry keeps the retransmit ticker out of this test's way.
	p, err := NewPipeline(net.Endpoint(3), replicas, 2, 3, 5*time.Second, winMax,
		WithAdaptiveWindow(1))
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := p.Invoke(ctx, []byte("x")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Invoke under overload = %v, want ErrOverloaded", err)
	}
	if got := p.Window(); got != winMax/2 {
		t.Fatalf("window after one overload quorum = %d, want %d", got, winMax/2)
	}

	overloaded.Store(false)
	// 4 -> 8 takes 4+5+6+7 = 22 clean completions; 100 gives slack.
	for i := 0; i < 100; i++ {
		if _, err := p.Invoke(ctx, []byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatalf("Invoke(%d) after recovery: %v", i, err)
		}
	}
	if got := p.Window(); got != winMax {
		t.Fatalf("window after recovery = %d, want %d", got, winMax)
	}
	// The fully recovered window must hold winMax concurrent submissions.
	calls := make([]*Call, winMax)
	for i := range calls {
		call, err := p.Submit(ctx, []byte(fmt.Sprintf("burst-%d", i)))
		if err != nil {
			t.Fatalf("Submit burst %d: %v", i, err)
		}
		calls[i] = call
	}
	for i, call := range calls {
		if _, err := call.Result(); err != nil {
			t.Fatalf("burst call %d: %v", i, err)
		}
	}
}
