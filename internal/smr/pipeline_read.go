package smr

// The pipeline's read fast path. SubmitRead sends a ReadRequest to the
// leader hint only — two messages per read when the leader holds a lease —
// and escalates to a full broadcast the moment any replica answers with a
// fallback vote (no lease; the read must gather p.readNeed matching
// (code, execSeq, result) votes instead). A ReadLeased reply completes the
// read by itself, but only when it comes from the replica the read was
// actually sent to: a leased reply from anyone else is demoted to a single
// unverified fallback vote, or one Byzantine replica could answer broadcast
// reads with arbitrary results and capture the leader hint for every read
// after (DESIGN.md §8).

import (
	"context"
	"errors"
	"fmt"
	"time"

	"unidir/internal/syncx"
	"unidir/internal/transport"
	"unidir/internal/types"
)

// ReadCall is one in-flight fast-path read, the read analogue of Call.
type ReadCall struct {
	req    ReadRequest
	done   chan struct{}
	result []byte
	err    error
}

// Done is closed when the read completes (result or error).
func (c *ReadCall) Done() <-chan struct{} { return c.done }

// Result blocks until the read completes and returns its outcome.
func (c *ReadCall) Result() ([]byte, error) {
	<-c.done
	return c.result, c.err
}

// Request returns the read request this call submitted.
func (c *ReadCall) Request() ReadRequest { return c.req }

// readCall is the pipeline's internal state for one in-flight read.
type readCall struct {
	call *ReadCall
	// payload is the enveloped single-read wire form, built on first
	// resend or broadcast (the common leased path never needs it).
	payload []byte
	votes   map[string]map[types.ProcessID]bool
	voters  map[types.ProcessID]bool // distinct replicas that voted fallback
	// maxSeq is the freshest executed watermark any vote has carried; only
	// a vote class at this watermark may win (see handleReadReply).
	maxSeq uint64
	// sentTo is the replica the first copy was aimed at (valid once sent
	// flips) — the only replica whose ReadLeased reply is authoritative.
	sentTo types.ProcessID
	sent   bool
	// broadcasted flips when the read goes from leader-hint-only to
	// all-replicas (first fallback vote, or a retransmit tick).
	broadcasted bool
	// ordered flips when the read is handed to the ordering path; a late
	// vote quorum may still complete it first, but no more resends happen.
	ordered bool
	leased  bool // completed by a leased reply (for metrics)
	start   time.Time
}

// SubmitRead sends a read-only op off the ordering path and returns without
// waiting. It blocks only while the read window is full, with the same
// submit-timeout escape hatch as Submit.
func (p *Pipeline) SubmitRead(ctx context.Context, op []byte) (*ReadCall, error) {
	var timeout <-chan time.Time
	if p.submitTimeout > 0 {
		tm := time.NewTimer(p.submitTimeout)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case <-p.readAvail:
	case <-timeout:
		p.mxSubmitSheds.Inc()
		return nil, fmt.Errorf("smr: read window exhausted for %v: %w", p.submitTimeout, ErrOverloaded)
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.ctx.Done():
		return nil, ErrClientClosed
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClientClosed
	}
	p.nextNum++
	req := ReadRequest{Client: p.id, Num: p.nextNum, Op: op}
	call := &ReadCall{req: req, done: make(chan struct{})}
	p.readInflight[req.Num] = &readCall{
		call:  call,
		votes: make(map[string]map[types.ProcessID]bool),
		start: time.Now(),
	}
	p.mu.Unlock()
	p.mxReadsSubmitted.Inc()
	// The send loop drains everything queued since its last wakeup into one
	// frame, so under load a burst of reads costs the leader one receive
	// instead of one per read. Push only fails once the queue is closed.
	if !p.readOut.Push(readOutItem{num: req.Num, req: req}) {
		p.completeRead(req.Num, nil, ErrClientClosed)
		return nil, ErrClientClosed
	}
	return call, nil
}

// readOutItem is one queued read submission; the wire forms are built at
// send time so a batched read never pays for the single-read envelope.
type readOutItem struct {
	num uint64
	req ReadRequest
}

// maxReadSubmitBatch caps reads coalesced into one frame so a deep backlog
// cannot produce an arbitrarily large message.
const maxReadSubmitBatch = 512

// readSendLoop drains queued read submissions and sends them to the
// current leader hint — one frame per wakeup: the bare payload when a
// single read is queued (wire-identical to the unbatched path), a batch
// frame when the window refilled faster than the last frame round-tripped.
func (p *Pipeline) readSendLoop() {
	defer p.wg.Done()
	for {
		items, err := p.readOut.PopAll(p.ctx)
		if err != nil {
			return
		}
		p.mu.Lock()
		leader := p.leaderHint
		// Stamp the target before anything is on the wire: a leased reply is
		// only trusted when it comes from the replica the read was aimed at.
		for _, it := range items {
			if rc := p.readInflight[it.num]; rc != nil {
				rc.sentTo, rc.sent = leader, true
			}
		}
		p.mu.Unlock()
		for len(items) > 0 {
			chunk := items
			if len(chunk) > maxReadSubmitBatch {
				chunk = items[:maxReadSubmitBatch]
			}
			items = items[len(chunk):]
			var frame []byte
			if len(chunk) == 1 {
				frame = p.readEncode(chunk[0].req)
			} else {
				bodies := make([][]byte, len(chunk))
				for i, it := range chunk {
					bodies[i] = it.req.Encode()
				}
				frame = p.readBatchEncode(bodies)
			}
			if err := p.tr.Send(leader, frame); err != nil {
				for _, it := range chunk {
					p.completeRead(it.num, nil, fmt.Errorf("smr: send read: %w", err))
				}
			}
		}
	}
}

// InvokeRead submits a read and blocks until it completes.
func (p *Pipeline) InvokeRead(ctx context.Context, op []byte) ([]byte, error) {
	call, err := p.SubmitRead(ctx, op)
	if err != nil {
		return nil, err
	}
	select {
	case <-call.done:
		return call.result, call.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// handleReadReply routes one replica's answer to its in-flight read. Called
// from recvLoop.
func (p *Pipeline) handleReadReply(rep ReadReply, from types.ProcessID) {
	if rep.Client != p.id || rep.Replica != from {
		return
	}
	p.mu.Lock()
	rc := p.readInflight[rep.Num]
	if rc == nil {
		p.mu.Unlock()
		return
	}
	if rep.Code == ReadLeased {
		if rc.sent && from == rc.sentTo {
			// The targeted replica's leased answer is authoritative (the
			// trusted-leaseholder assumption, DESIGN.md §8); remember who
			// holds the lease so the next read goes straight there.
			rc.leased = true
			p.leaderHint = from
			p.mu.Unlock()
			// DecodeReadReply copied Result out of the frame, so handing the
			// slice to the caller is safe without another copy.
			p.completeRead(rep.Num, rep.Result, nil)
			return
		}
		// A replica this read was never aimed at claims the lease. Trusting
		// it would let a single Byzantine replica answer broadcast reads
		// with arbitrary results and poison the leader hint for every read
		// after, so demote the reply to one unverified fallback vote.
		rep.Code = ReadFallback
	}
	if rep.ExecSeq > rc.maxSeq {
		rc.maxSeq = rep.ExecSeq
	}
	key := rep.voteKey()
	if rc.votes[key] == nil {
		rc.votes[key] = make(map[types.ProcessID]bool)
	}
	rc.votes[key][from] = true
	if rc.voters == nil {
		rc.voters = make(map[types.ProcessID]bool)
	}
	rc.voters[from] = true
	// A class wins only while it carries the freshest executed watermark
	// collected so far: on bare f+1 matching votes, one Byzantine voter
	// echoing f lagging-but-correct replicas' watermark could carry a stale
	// class past quorum even after a fresher vote exposed it. A stuck-below-
	// max class ends at the escalation below, never as a completed read.
	agreed := len(rc.votes[key]) >= p.readNeed && rep.ExecSeq >= rc.maxSeq
	widen := !rc.broadcasted && !agreed
	if widen {
		rc.broadcasted = true
		if rc.sent && from == rc.sentTo {
			// The replica this read targeted answered without a lease: move
			// the hint along so later reads probe the next replica (views
			// rotate through the replica set) instead of re-asking it.
			p.advanceHintLocked(from)
		}
	}
	// Every replica has voted and no (code, execSeq, result) class reached
	// quorum: under a live write stream the replicas' execute positions may
	// never line up, so re-asking would stall the read until the system
	// quiesces. Hand it to the ordering path instead, which always converges.
	if !agreed && !rc.ordered && len(rc.voters) >= len(p.replicas) {
		p.escalateReadLocked(rep.Num, rc)
	}
	var payload []byte
	if widen {
		payload = p.readPayloadLocked(rc)
	}
	p.mu.Unlock()
	if agreed {
		p.completeRead(rep.Num, rep.Result, nil)
		return
	}
	if widen {
		// The replica we asked has no lease: this read finishes as a quorum
		// read, so get the remaining votes moving now rather than waiting
		// for the retransmit tick.
		_ = transport.Broadcast(p.tr, p.replicas, payload)
	}
}

// escalateReadLocked resubmits a read that cannot gather matching fallback
// votes as a regular ordered request — the slow path of the slow path, and
// the only one guaranteed to converge while writes keep the replicas'
// execute positions apart. Called with p.mu held.
func (p *Pipeline) escalateReadLocked(num uint64, rc *readCall) {
	rc.ordered = true
	p.mxReadEscalations.Inc()
	go p.orderRead(num, rc.call.req.Op)
}

// orderRead drives one escalated read through the ordering path and
// completes it with the consensus result. Runs outside the mutex: Submit
// blocks on the write window, and an overloaded window is retried rather
// than failing a read the caller already holds a ReadCall for.
func (p *Pipeline) orderRead(num uint64, op []byte) {
	// One reused timer for the whole retry loop: time.After here allocated a
	// fresh runtime timer per tick, and under sustained overload (the only
	// time this loop spins) that garbage arrived exactly when the system
	// could least afford it.
	tm := syncx.NewStoppedTimer()
	for {
		call, err := p.Submit(p.ctx, op)
		if err == nil {
			res, rerr := call.Result()
			p.completeRead(num, res, rerr)
			return
		}
		if !errors.Is(err, ErrOverloaded) {
			p.completeRead(num, nil, err)
			return
		}
		if syncx.SleepTimer(p.ctx, tm, p.retry) != nil {
			p.completeRead(num, nil, ErrClientClosed)
			return
		}
	}
}

// completeRead finishes the in-flight read num, if still present, and
// returns its read-window token.
func (p *Pipeline) completeRead(num uint64, result []byte, err error) {
	p.mu.Lock()
	rc := p.readInflight[num]
	if rc == nil {
		p.mu.Unlock()
		return
	}
	delete(p.readInflight, num)
	p.mu.Unlock()
	p.mxReadsCompleted.Inc()
	if err == nil {
		if rc.leased {
			p.mxLeasedReads.Inc()
		} else {
			p.mxFallbackReads.Inc()
		}
		p.mxReadLatency.Observe(time.Since(rc.start).Seconds())
	}
	rc.call.result = result
	rc.call.err = err
	close(rc.call.done)
	p.readAvail <- struct{}{}
}

// advanceHintLocked rotates the leader hint off a replica that answered a
// targeted read without a lease (or never answered at all). Leadership
// rotates through the replica set as views advance, so probing the next
// replica converges on the actual leaseholder within one lap — without ever
// letting a replica claim the hint by merely asserting a lease. Only the
// read's own stale target rotates the hint, so a burst of concurrently
// widening reads advances it once, not once each. Caller holds p.mu.
func (p *Pipeline) advanceHintLocked(stale types.ProcessID) {
	if p.leaderHint != stale {
		return
	}
	for i, id := range p.replicas {
		if id == stale {
			p.leaderHint = p.replicas[(i+1)%len(p.replicas)]
			return
		}
	}
}

// readPayloadLocked returns rc's enveloped single-read wire form, building
// and caching it on first use. Caller holds p.mu.
func (p *Pipeline) readPayloadLocked(rc *readCall) []byte {
	if rc.payload == nil {
		rc.payload = p.readEncode(rc.call.req)
	}
	return rc.payload
}
