package smr

import (
	"bytes"
	"testing"
)

func TestClientTableEncodeRoundTrip(t *testing.T) {
	table := NewClientTable()
	table.Executed(Request{Client: 9, Num: 4, Op: []byte("a")}, []byte("ra"))
	table.Executed(Request{Client: 2, Num: 7, Op: []byte("b")}, []byte("rb"))
	table.Executed(Request{Client: 9, Num: 5, Op: []byte("c")}, nil)

	got, err := DecodeClientTable(table.Encode())
	if err != nil {
		t.Fatalf("DecodeClientTable: %v", err)
	}
	// Dedup state survives: executed numbers stay stale, the next number is
	// fresh, and the cached reply for the last executed request is intact.
	if got.ShouldExecute(Request{Client: 9, Num: 5}) {
		t.Fatal("decoded table re-executes client 9 num 5")
	}
	if !got.ShouldExecute(Request{Client: 9, Num: 6}) {
		t.Fatal("decoded table refuses fresh client 9 num 6")
	}
	if res, ok := got.CachedReply(Request{Client: 2, Num: 7}); !ok || !bytes.Equal(res, []byte("rb")) {
		t.Fatalf("cached reply = %q, %v", res, ok)
	}
	// The encoding is canonical: decode(encode(x)) re-encodes identically,
	// which is what makes checkpoint digests comparable across replicas.
	if !bytes.Equal(got.Encode(), table.Encode()) {
		t.Fatal("re-encoded table differs; encoding is not canonical")
	}
}

func TestCheckpointStateRoundTrip(t *testing.T) {
	table := NewClientTable()
	table.Executed(Request{Client: 1, Num: 1, Op: []byte("x")}, []byte("ok"))
	app := []byte("application snapshot bytes")

	gotApp, gotTable, err := DecodeCheckpointState(EncodeCheckpointState(app, table))
	if err != nil {
		t.Fatalf("DecodeCheckpointState: %v", err)
	}
	if !bytes.Equal(gotApp, app) {
		t.Fatalf("app = %q, want %q", gotApp, app)
	}
	if gotTable.ShouldExecute(Request{Client: 1, Num: 1}) {
		t.Fatal("decoded table lost dedup state")
	}
	if _, _, err := DecodeCheckpointState([]byte("garbage")); err == nil {
		t.Fatal("DecodeCheckpointState accepted garbage")
	}
}

func TestDefaultCheckpointIntervalKnob(t *testing.T) {
	cases := []struct {
		env  string
		want int
	}{
		{"", 128},
		{"on", 128},
		{"off", 0},
		{"0", 0},
		{"64", 64},
		{"-3", 128},
		{"junk", 128},
	}
	for _, c := range cases {
		t.Setenv("UNIDIR_CKPT", c.env)
		if got := DefaultCheckpointInterval(); got != c.want {
			t.Fatalf("UNIDIR_CKPT=%q: interval = %d, want %d", c.env, got, c.want)
		}
	}
}
