// Package smr holds the pieces shared by the replicated state machine
// protocols (internal/minbft and internal/pbft): the deterministic state
// machine interface, request/reply wire formats, the per-client dedup
// table, and a retransmitting client that accepts a result once f+1
// replicas vouch for it.
package smr

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"unidir/internal/obs/knob"
	"unidir/internal/transport"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// defaultBatchSize is the consensus batch cap when UNIDIR_BATCH is unset.
const defaultBatchSize = 64

// DefaultBatchSize returns the default consensus batch cap used by the SMR
// protocols (requests per PREPARE/PRE-PREPARE), controlled by the
// UNIDIR_BATCH environment variable, mirroring UNIDIR_FASTVERIFY:
//
//	unset / ""    -> 64 (batching on, the default)
//	"off" or "0"  -> 1  (batching disabled; one request per consensus slot)
//	integer k > 0 -> k
//
// Malformed values fall back to the default with a logged warning (see
// internal/obs/knob). Protocol options (minbft.WithBatchSize,
// pbft.WithBatchSize) override it per replica. Batching is semantically
// transparent either way; the knob exists for honest A/B measurement and as
// an operational escape hatch.
func DefaultBatchSize() int {
	return knob.Int("UNIDIR_BATCH", defaultBatchSize, 1,
		map[string]int{"on": defaultBatchSize, "off": 1, "0": 1})
}

// StateMachine is the deterministic application replicated by the
// protocols. Apply must be deterministic: same command sequence, same
// results. Implementations need not be concurrency-safe; replicas apply
// from a single goroutine.
type StateMachine interface {
	Apply(cmd []byte) []byte
}

// Request is a client command submitted for ordering.
type Request struct {
	Client uint64 // client identity (stable across requests)
	Num    uint64 // client-local sequence number, 1, 2, 3, ...
	Op     []byte // application command
}

// Encode returns the canonical wire form (also the form protocols sign or
// attest, so it must be deterministic).
func (r Request) Encode() []byte {
	e := wire.NewEncoder(24 + len(r.Op))
	e.Uint64(r.Client)
	e.Uint64(r.Num)
	e.BytesField(r.Op)
	return e.Bytes()
}

// DecodeRequest parses a request.
func DecodeRequest(b []byte) (Request, error) {
	d := wire.NewDecoder(b)
	var r Request
	r.Client = d.Uint64()
	r.Num = d.Uint64()
	r.Op = append([]byte(nil), d.BytesField()...)
	if err := d.Finish(); err != nil {
		return Request{}, fmt.Errorf("smr: decode request: %w", err)
	}
	return r, nil
}

// EncodeRequests is the canonical wire form of a request batch: the count,
// then each request's own encoding. Both SMR protocols bind their per-slot
// consensus messages to this byte string, so one digest (and one
// attestation, in MinBFT's case) covers the whole batch.
func EncodeRequests(reqs []Request) []byte {
	e := wire.NewEncoder(16 + 48*len(reqs))
	e.Int(len(reqs))
	for _, req := range reqs {
		e.BytesField(req.Encode())
	}
	return e.Bytes()
}

// DecodeRequests parses a batch, rejecting empty batches and more than max
// entries (defensive; proposers cap batches far lower).
func DecodeRequests(b []byte, max int) ([]Request, error) {
	d := wire.NewDecoder(b)
	n := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n < 1 || n > max {
		return nil, fmt.Errorf("smr: batch of %d requests", n)
	}
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		req, err := DecodeRequest(d.BytesField())
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, req)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("smr: decode batch: %w", err)
	}
	return reqs, nil
}

// SortRequests orders reqs deterministically by (Client, Num) — the order
// proposers pack batches in, so identical pending sets batch identically.
func SortRequests(reqs []Request) {
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].Client != reqs[j].Client {
			return reqs[i].Client < reqs[j].Client
		}
		return reqs[i].Num < reqs[j].Num
	})
}

// Reply is a replica's response to a client. Code distinguishes a committed
// result (ReplyOK) from an admission-control shed (ReplyOverloaded); clients
// treat either kind as a vote and act only on f+1 matching ones, so a single
// Byzantine replica cannot fail a request by claiming overload.
type Reply struct {
	Replica types.ProcessID
	Client  uint64
	Num     uint64
	Result  []byte
	Code    byte
}

// Encode returns the wire form.
func (r Reply) Encode() []byte {
	e := wire.NewEncoder(33 + len(r.Result))
	e.Int(int(r.Replica))
	e.Uint64(r.Client)
	e.Uint64(r.Num)
	e.BytesField(r.Result)
	e.Byte(r.Code)
	return e.Bytes()
}

// errReplyTrailing distinguishes a well-formed prefix with extra bytes — a
// ReadReply, which carries a trailing ExecSeq — from a corrupt reply. It is
// a preallocated sentinel because the pipeline client hits this path once
// per read reply (it tries DecodeReply first); formatting an error there
// measurably slows read-heavy workloads.
var errReplyTrailing = errors.New("smr: decode reply: trailing bytes")

// DecodeReply parses a reply. The trailing code byte is optional on the
// wire: replies encoded before it existed decode as ReplyOK.
func DecodeReply(b []byte) (Reply, error) {
	d := wire.NewDecoder(b)
	var r Reply
	r.Replica = types.ProcessID(d.Int())
	r.Client = d.Uint64()
	r.Num = d.Uint64()
	res := d.BytesField()
	if d.Err() == nil && d.Remaining() > 0 {
		r.Code = d.Byte()
	}
	if d.Err() == nil && d.Remaining() > 0 {
		return Reply{}, errReplyTrailing
	}
	if err := d.Finish(); err != nil {
		return Reply{}, fmt.Errorf("smr: decode reply: %w", err)
	}
	r.Result = append([]byte(nil), res...)
	return r, nil
}

// voteKey groups reply votes: replies agree only when both the code and the
// result match.
func (r Reply) voteKey() string {
	return string([]byte{r.Code}) + string(r.Result)
}

// ClientTable dedups request execution per client and caches the last
// reply, as in PBFT/MinBFT: a request is executed at most once even if it
// is re-ordered after a view change; retransmissions get the cached reply.
type ClientTable struct {
	last map[uint64]uint64 // client -> highest executed Num
	res  map[uint64][]byte // client -> cached last result
}

// NewClientTable returns an empty table.
func NewClientTable() *ClientTable {
	return &ClientTable{last: make(map[uint64]uint64), res: make(map[uint64][]byte)}
}

// ShouldExecute reports whether the request is new for its client.
func (t *ClientTable) ShouldExecute(r Request) bool { return r.Num > t.last[r.Client] }

// Executed records the result of executing r.
func (t *ClientTable) Executed(r Request, result []byte) {
	t.last[r.Client] = r.Num
	t.res[r.Client] = result
}

// CachedReply returns the cached result for a retransmitted request, if it
// is exactly the client's last executed one.
func (t *ClientTable) CachedReply(r Request) ([]byte, bool) {
	if t.last[r.Client] == r.Num {
		return t.res[r.Client], true
	}
	return nil, false
}

// ErrClientClosed reports use of a closed client.
var ErrClientClosed = errors.New("smr: client closed")

// Client submits requests to a replica group and waits for matching replies
// from `need` distinct replicas (f+1 in both protocols: at least one is
// correct and vouches for the committed result). It retransmits to all
// replicas on a timer until satisfied. Safe for use from one goroutine.
type Client struct {
	tr       transport.Transport
	replicas []types.ProcessID
	need     int
	id       uint64
	retry    time.Duration
	encode   func(Request) []byte

	mu      sync.Mutex
	nextNum uint64
	closed  bool
}

// ClientOption configures NewClient.
type ClientOption func(*Client)

// WithRequestEncoder sets the protocol-specific request envelope encoder
// (for example minbft.EncodeRequestEnvelope or pbft.EncodeRequestEnvelope).
// The default sends the bare Request wire form.
func WithRequestEncoder(encode func(Request) []byte) ClientOption {
	return func(c *Client) { c.encode = encode }
}

// NewClient creates a client with the given unique identity. need is the
// number of matching replies required (use f+1).
func NewClient(tr transport.Transport, replicas []types.ProcessID, need int, id uint64, retry time.Duration, opts ...ClientOption) (*Client, error) {
	if need < 1 || need > len(replicas) {
		return nil, fmt.Errorf("smr: need %d of %d replicas", need, len(replicas))
	}
	if retry <= 0 {
		retry = 50 * time.Millisecond
	}
	c := &Client{tr: tr, replicas: replicas, need: need, id: id, retry: retry,
		encode: func(r Request) []byte { return r.Encode() }}
	// Start request numbers from the wall clock so that a restarted client
	// process reusing the same identity stays monotonic with respect to the
	// replicas' dedup tables (the standard PBFT timestamp trick). Within
	// one process, numbers are strictly increasing regardless.
	c.nextNum = uint64(time.Now().UnixNano())
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Invoke submits op and blocks until `need` replicas report the same
// result, retransmitting as needed. It returns the agreed result.
func (c *Client) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.nextNum++
	req := Request{Client: c.id, Num: c.nextNum, Op: op}
	c.mu.Unlock()

	payload := c.encode(req)
	send := func() error {
		return transport.Broadcast(c.tr, c.replicas, payload)
	}
	if err := send(); err != nil {
		return nil, fmt.Errorf("smr: send request: %w", err)
	}

	votes := make(map[string]map[types.ProcessID]bool)
	timer := time.NewTimer(c.retry)
	defer timer.Stop()
	for {
		recvCtx, cancel := context.WithCancel(ctx)
		go func() {
			select {
			case <-timer.C:
				cancel()
			case <-recvCtx.Done():
			}
		}()
		env, err := c.tr.Recv(recvCtx)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// Retransmission timer fired.
			if err := send(); err != nil {
				return nil, fmt.Errorf("smr: retransmit: %w", err)
			}
			timer.Reset(c.retry)
			continue
		}
		rep, err := DecodeReply(env.Payload)
		if err != nil || rep.Client != c.id || rep.Num != req.Num || rep.Replica != env.From {
			continue
		}
		key := rep.voteKey()
		if votes[key] == nil {
			votes[key] = make(map[types.ProcessID]bool)
		}
		votes[key][rep.Replica] = true
		if len(votes[key]) >= c.need {
			if rep.Code == ReplyOverloaded {
				return nil, fmt.Errorf("smr: request %d shed by %d replicas: %w", req.Num, c.need, ErrOverloaded)
			}
			return append([]byte(nil), rep.Result...), nil
		}
	}
}

// Close marks the client closed. The underlying transport is not closed.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// ExecutionLog records the command sequence a replica applied, for
// cross-replica consistency checks in tests.
type ExecutionLog struct {
	mu   sync.Mutex
	cmds [][]byte
}

// Record appends one applied command.
func (l *ExecutionLog) Record(cmd []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cmds = append(l.cmds, append([]byte(nil), cmd...))
}

// Snapshot returns a copy of the applied sequence.
func (l *ExecutionLog) Snapshot() [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]byte, len(l.cmds))
	for i, c := range l.cmds {
		out[i] = append([]byte(nil), c...)
	}
	return out
}

// CheckPrefix verifies that one execution log is a prefix of the other —
// the linearizability skeleton every SMR protocol must provide.
func CheckPrefix(a, b [][]byte) error {
	short, long := a, b
	if len(short) > len(long) {
		short, long = long, short
	}
	for i := range short {
		if !bytes.Equal(short[i], long[i]) {
			return fmt.Errorf("smr: execution logs diverge at index %d: %q vs %q", i, short[i], long[i])
		}
	}
	return nil
}
