package minbft_test

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unidir/internal/kvstore"
	"unidir/internal/minbft"
	"unidir/internal/smr"
	"unidir/internal/types"
)

// pipe returns a pipelined KV client on endpoint n+idx, wired for the read
// fast path (read encoder + f+1 fallback-vote quorum).
func (h *harness) pipe(idx int, retry time.Duration) *kvstore.PipeClient {
	h.t.Helper()
	id := types.ProcessID(h.m.N + idx)
	pl, err := smr.NewPipeline(h.net.Endpoint(id), h.m.All(), h.m.FPlusOne(), uint64(id), retry, 64,
		smr.WithPipelineRequestEncoder(minbft.EncodeRequestEnvelope),
		smr.WithPipelineReadEncoder(minbft.EncodeReadRequestEnvelope),
		smr.WithPipelineReadBatchEncoder(minbft.EncodeReadBatchEnvelope),
		smr.WithReadQuorum(h.m.FPlusOne()))
	if err != nil {
		h.t.Fatalf("NewPipeline: %v", err)
	}
	h.t.Cleanup(func() { _ = pl.Close() })
	return kvstore.NewPipeClient(pl)
}

// leasedReads sums minbft_leased_reads_total across the cluster.
func (h *harness) leasedReads() uint64 {
	var total uint64
	for name, v := range h.metrics.Snapshot().Counters {
		if strings.HasPrefix(name, "minbft_leased_reads_total") {
			total += v
		}
	}
	return total
}

func TestLeasedReadFastPath(t *testing.T) {
	h := newHarness(t, 3, 1, 1, 2*time.Second)
	kv := h.pipe(0, 200*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	for i := 1; i <= 5; i++ {
		want := strconv.Itoa(i)
		if err := kv.Put(ctx, "alpha", []byte(want)); err != nil {
			t.Fatalf("Put: %v", err)
		}
		// Read-your-writes through the leader: the Put above was acked, so
		// a linearizable read must observe it.
		v, err := kv.GetFast(ctx, "alpha")
		if err != nil || string(v) != want {
			t.Fatalf("GetFast = %q, %v; want %q", v, err, want)
		}
	}
	if _, err := kv.GetFast(ctx, "missing"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("GetFast(missing) err = %v, want ErrNotFound", err)
	}
	if n := h.leasedReads(); n == 0 {
		t.Fatal("no read was served from the lease; fast path never engaged")
	}
}

// TestLeaseRevocationNoStaleRead kills the lease-holding primary in the
// middle of a read stream while a writer keeps bumping a counter. Every
// read must return a value at least as fresh as the last write acked before
// the read was issued — across the lease, the revocation, the view change,
// and the new leader's lease — and reads must keep completing after the
// kill. Run under -race this also exercises the client's concurrent
// read/write paths.
func TestLeaseRevocationNoStaleRead(t *testing.T) {
	h := newHarness(t, 3, 1, 2, 500*time.Millisecond,
		minbft.WithLeaseTerm(100*time.Millisecond))
	writer := h.client(0)
	reader := h.pipe(1, 100*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var acked atomic.Int64 // highest counter value acked to the writer
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := writer.Put(ctx, "ctr", []byte(strconv.FormatInt(i, 10))); err != nil {
				return // context over; main goroutine reports its own errors
			}
			acked.Store(i)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	readOnce := func() {
		t.Helper()
		floor := acked.Load()
		v, err := reader.GetFast(ctx, "ctr")
		if errors.Is(err, kvstore.ErrNotFound) {
			v = []byte("0")
		} else if err != nil {
			t.Fatalf("GetFast: %v", err)
		}
		got, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			t.Fatalf("non-numeric read %q: %v", v, err)
		}
		if got < floor {
			t.Fatalf("stale read: got %d, but %d was acked before the read was issued", got, floor)
		}
	}

	for i := 0; i < 50; i++ {
		readOnce()
	}
	ackedAtKill := acked.Load()
	if ackedAtKill == 0 {
		t.Fatal("writer made no progress before the kill")
	}
	// Depose the lease holder mid-stream.
	_ = h.replicas[0].Close()
	h.replicas[0] = nil
	for i := 0; i < 50; i++ {
		readOnce()
	}
	// Writes must have resumed under the new view, and reads observed them.
	deadline := time.Now().Add(30 * time.Second)
	for acked.Load() <= ackedAtKill {
		if time.Now().After(deadline) {
			t.Fatal("writer made no progress after the primary was killed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	readOnce()
	h.checkLogsConsistent(map[int]bool{0: true})
}

// TestLeasedReadsSurviveCheckpointGC regression-tests the watermark rebase:
// checkpoint GC truncates the executed prefix of prepOrder and zeroes the
// execute index, and queued leased reads hold watermarks indexing that
// slice. Without rebasing them with it, a read queued behind an in-flight
// batch when a checkpoint stabilizes is stranded until a client retransmit.
// The long pipeline retry below keeps retransmits from masking a strand.
func TestLeasedReadsSurviveCheckpointGC(t *testing.T) {
	h := newHarness(t, 3, 1, 1, 2*time.Second,
		minbft.WithCheckpointInterval(2), minbft.WithBatchSize(1))
	kv := h.pipe(0, 30*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	for round := 0; round < 20; round++ {
		// A burst of pipelined writes keeps several batches in flight, so
		// the interleaved reads park in the leader's watermark queue while
		// checkpoints for the executed prefix stabilize underneath them —
		// the state the GC rebase must preserve.
		var puts []*smr.Call
		var reads []*smr.ReadCall
		for i := 0; i < 16; i++ {
			put, err := kv.PutAsync(ctx, "k", []byte(strconv.Itoa(round*16+i)))
			if err != nil {
				t.Fatalf("PutAsync: %v", err)
			}
			read, err := kv.GetAsync(ctx, "k")
			if err != nil {
				t.Fatalf("GetAsync: %v", err)
			}
			puts, reads = append(puts, put), append(reads, read)
		}
		for i, read := range reads {
			select {
			case <-read.Done():
			case <-time.After(10 * time.Second):
				t.Fatalf("round %d read %d: stranded across a checkpoint GC", round, i)
			}
			if _, err := read.Result(); err != nil {
				t.Fatalf("round %d read %d: %v", round, i, err)
			}
		}
		for i, put := range puts {
			if _, err := put.Result(); err != nil {
				t.Fatalf("round %d put %d: %v", round, i, err)
			}
		}
	}
	if n := h.leasedReads(); n == 0 {
		t.Fatal("no read was served from the lease; fast path never engaged")
	}
}
