package minbft_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"unidir/internal/minbft"
	"unidir/internal/smr"
)

// checkNoDoubleExecution asserts no (client, num) pair appears twice in any
// replica's execution log — batching plus view-change re-proposal must never
// defeat the per-client dedup table.
func checkNoDoubleExecution(t *testing.T, h *harness, skip map[int]bool) {
	t.Helper()
	for i, log := range h.logs {
		if skip[i] {
			continue
		}
		seen := make(map[[2]uint64]bool)
		for _, cmd := range log.Snapshot() {
			req, err := smr.DecodeRequest(cmd)
			if err != nil {
				t.Fatalf("replica %d: undecodable log entry: %v", i, err)
			}
			key := [2]uint64{req.Client, req.Num}
			if seen[key] {
				t.Fatalf("replica %d executed request client=%d num=%d twice", i, req.Client, req.Num)
			}
			seen[key] = true
		}
	}
}

func TestBatchedBurstCommits(t *testing.T) {
	// A burst from several clients against a batching primary: everything
	// commits, no request executes twice, logs agree.
	h := newHarness(t, 3, 1, 4, 2*time.Second, minbft.WithBatchSize(8))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			kv := h.client(c)
			for i := 0; i < 8; i++ {
				if err := kv.Put(ctx, fmt.Sprintf("b%d-%d", c, i), []byte{byte(i)}); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, log := range h.logs {
		for len(log.Snapshot()) < 32 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if got := len(log.Snapshot()); got != 32 {
			t.Fatalf("executed %d commands, want 32", got)
		}
	}
	h.checkLogsConsistent(nil)
	checkNoDoubleExecution(t, h, nil)
}

func TestBatchedViewChangeNoLossNoDouble(t *testing.T) {
	// Clients push batched traffic while the primary is crashed mid-stream.
	// The view change must re-propose every pending batch under the new
	// primary without losing or double-executing a single request.
	h := newHarness(t, 3, 1, 3, 150*time.Millisecond, minbft.WithBatchSize(8))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	warm := make(chan struct{}, 3) // one signal per client after its 3rd put
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			kv := h.client(c)
			for i := 0; i < 10; i++ {
				if err := kv.Put(ctx, fmt.Sprintf("vc%d-%d", c, i), []byte{byte(i)}); err != nil {
					errs[c] = fmt.Errorf("put %d: %w", i, err)
					return
				}
				if i == 2 {
					warm <- struct{}{}
				}
			}
		}(c)
	}
	// Crash the primary once every client has committed work in view 0 and
	// still has puts in flight.
	for i := 0; i < 3; i++ {
		<-warm
	}
	_ = h.replicas[0].Close()
	h.replicas[0] = nil
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	// Totality: every acknowledged request appears in both surviving logs.
	deadline := time.Now().Add(15 * time.Second)
	for _, i := range []int{1, 2} {
		for len(h.logs[i].Snapshot()) < 30 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if got := len(h.logs[i].Snapshot()); got != 30 {
			t.Fatalf("replica %d executed %d commands, want 30 (request lost in view change)", i, got)
		}
	}
	for _, i := range []int{1, 2} {
		if got := h.replicas[i].View(); got < 1 {
			t.Fatalf("replica %d never left view 0", i)
		}
	}
	skip := map[int]bool{0: true}
	h.checkLogsConsistent(skip)
	checkNoDoubleExecution(t, h, skip)
}

func TestWatchdogTimersCanceledOnClose(t *testing.T) {
	// Regression: Close must cancel every armed watchdog so no AfterFunc
	// callback outlives the replica. A long request timeout keeps the
	// per-request watchdogs armed well past execution.
	h := newHarness(t, 3, 1, 1, 30*time.Second)
	kv := h.client(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := kv.Put(ctx, "armed", []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for i, r := range h.replicas {
		if r.PendingTimers() == 0 {
			t.Fatalf("replica %d has no armed watchdogs before Close", i)
		}
	}
	for i, r := range h.replicas {
		if err := r.Close(); err != nil {
			t.Fatalf("Close(%d): %v", i, err)
		}
		if got := r.PendingTimers(); got != 0 {
			t.Fatalf("replica %d still has %d armed watchdogs after Close", i, got)
		}
	}
}
