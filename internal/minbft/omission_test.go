package minbft

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"unidir/internal/kvstore"
	"unidir/internal/sig"
	"unidir/internal/simnet"
	"unidir/internal/smr"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

// White-box Byzantine-primary tests: the primary's trinket is driven by
// hand so the adversary controls exactly which replicas see which
// messages. (The black-box suite is in minbft_test.go.)

// byzPrimaryFixture runs backups 1 and 2 as real replicas of an n=3, f=1
// cluster whose primary (p0) is played by the test.
type byzPrimaryFixture struct {
	m       types.Membership
	net     *simnet.Network
	tu      *trinc.Universe
	backups []*Replica
	logs    []*smr.ExecutionLog
}

func newByzPrimaryFixture(t *testing.T) *byzPrimaryFixture {
	t.Helper()
	m, err := types.NewMembership(3, 1)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	netM, err := types.NewMembership(4, 1)
	if err != nil {
		t.Fatalf("net membership: %v", err)
	}
	net, err := simnet.New(netM)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(81)))
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	fix := &byzPrimaryFixture{m: m, net: net, tu: tu}
	for i := 1; i <= 2; i++ {
		log := &smr.ExecutionLog{}
		rep, err := New(m, net.Endpoint(types.ProcessID(i)), tu.Devices[i], tu.Verifier,
			kvstore.New(), WithRequestTimeout(time.Second), WithExecutionLog(log))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		fix.backups = append(fix.backups, rep)
		fix.logs = append(fix.logs, log)
	}
	t.Cleanup(func() {
		for _, r := range fix.backups {
			_ = r.Close()
		}
		net.Close()
	})
	return fix
}

// preparePayload attests and encodes a PREPARE from the Byzantine primary.
func (f *byzPrimaryFixture) preparePayload(t *testing.T, req smr.Request) []byte {
	t.Helper()
	body := prepare{View: 0, Reqs: []smr.Request{req}}.encodeBody()
	dev := f.tu.Devices[0]
	ui, err := dev.Attest(usigCounter, dev.LastAttested(usigCounter)+1, uiBinding(kindPrepare, body))
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	return encodeEnvelope(kindPrepare, body, &ui)
}

func TestOmittedPrepareRecoveredByFetch(t *testing.T) {
	// The Byzantine primary sends PREPARE(req) to backup 1 only. Backup 2
	// sees backup 1's COMMIT referencing a prepare it never received, and
	// must recover it through the fetch protocol and execute.
	fix := newByzPrimaryFixture(t)
	req := smr.Request{Client: 3, Num: 1, Op: kvstore.EncodePut("omitted", []byte("v"))}
	payload := fix.preparePayload(t, req)
	fix.net.Inject(0, 1, payload) // backup 1 only; backup 2 omitted

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if len(fix.logs[0].Snapshot()) == 1 && len(fix.logs[1].Snapshot()) == 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, log := range fix.logs {
		if got := len(log.Snapshot()); got != 1 {
			t.Fatalf("backup %d executed %d commands, want 1 (fetch recovery failed)", i+1, got)
		}
	}
	if err := smr.CheckPrefix(fix.logs[0].Snapshot(), fix.logs[1].Snapshot()); err != nil {
		t.Fatal(err)
	}
	// The client got its f+1 = 2 replies despite the omission.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	replies := 0
	for replies < 2 {
		env, err := fix.net.Endpoint(3).Recv(ctx)
		if err != nil {
			t.Fatalf("client received only %d replies: %v", replies, err)
		}
		if _, err := smr.DecodeReply(env.Payload); err == nil {
			replies++
		}
	}
}

func TestUIGapRecoveredByFetch(t *testing.T) {
	// The Byzantine primary sends PREPARE#1 to backup 1 only, then
	// PREPARE#2 to everyone. Backup 2 sees a UI gap (it got seq 2 before
	// seq 1) and must fetch seq 1 from backup 1; afterwards both backups
	// have executed both requests in order.
	fix := newByzPrimaryFixture(t)
	req1 := smr.Request{Client: 3, Num: 1, Op: kvstore.EncodePut("first", []byte("1"))}
	req2 := smr.Request{Client: 3, Num: 2, Op: kvstore.EncodePut("second", []byte("2"))}
	p1 := fix.preparePayload(t, req1)
	p2 := fix.preparePayload(t, req2)
	fix.net.Inject(0, 1, p1) // only backup 1 gets prepare #1
	fix.net.Inject(0, 1, p2)
	fix.net.Inject(0, 2, p2) // backup 2 starts at a gap

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if len(fix.logs[0].Snapshot()) == 2 && len(fix.logs[1].Snapshot()) == 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, log := range fix.logs {
		if got := len(log.Snapshot()); got != 2 {
			t.Fatalf("backup %d executed %d commands, want 2", i+1, got)
		}
	}
	if err := smr.CheckPrefix(fix.logs[0].Snapshot(), fix.logs[1].Snapshot()); err != nil {
		t.Fatal(err)
	}
}

func TestEquivocatingPrepareBlockedByUSIG(t *testing.T) {
	// The defining hardware property at the protocol level: the primary
	// cannot produce two different prepares at one counter value. The
	// device refuses the second attestation outright, so the "attack"
	// cannot even be mounted; replicas can never see conflicting prepares
	// for one slot.
	fix := newByzPrimaryFixture(t)
	dev := fix.tu.Devices[0]
	reqA := smr.Request{Client: 3, Num: 1, Op: kvstore.EncodePut("a", nil)}
	reqB := smr.Request{Client: 3, Num: 1, Op: kvstore.EncodePut("b", nil)}
	bodyA := prepare{View: 0, Reqs: []smr.Request{reqA}}.encodeBody()
	bodyB := prepare{View: 0, Reqs: []smr.Request{reqB}}.encodeBody()
	next := dev.LastAttested(usigCounter) + 1
	if _, err := dev.Attest(usigCounter, next, uiBinding(kindPrepare, bodyA)); err != nil {
		t.Fatalf("first attest: %v", err)
	}
	if _, err := dev.Attest(usigCounter, next, uiBinding(kindPrepare, bodyB)); err == nil {
		t.Fatal("trinket attested two prepares at one counter value")
	}
}

func TestForgedUIRejected(t *testing.T) {
	// A message whose UI was minted by a *different* trinket than it
	// claims, or over a different body, must be ignored entirely.
	fix := newByzPrimaryFixture(t)
	req := smr.Request{Client: 3, Num: 1, Op: kvstore.EncodePut("x", nil)}
	body := prepare{View: 0, Reqs: []smr.Request{req}}.encodeBody()
	// Attest with trinket 0 but for a different body.
	dev := fix.tu.Devices[0]
	ui, err := dev.Attest(usigCounter, dev.LastAttested(usigCounter)+1, uiBinding(kindCommit, body))
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	fix.net.Inject(0, 1, encodeEnvelope(kindPrepare, body, &ui))
	time.Sleep(100 * time.Millisecond)
	if got := len(fix.logs[0].Snapshot()); got != 0 {
		t.Fatalf("backup executed %d commands from a forged UI", got)
	}
}
