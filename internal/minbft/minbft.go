// Package minbft implements a MinBFT-style Byzantine fault-tolerant
// replicated state machine (Veronese et al., "Efficient Byzantine
// Fault-Tolerance", IEEE ToC 2013) with n = 2f+1 replicas, built on the
// library's simulated TrInc trinkets as the USIG (Unique Sequential
// Identifier Generator).
//
// This is the paper's classification made concrete on the application
// level: trusted-log hardware (TrInc) lets an asynchronous BFT SMR run with
// 2f+1 replicas and two communication phases, versus PBFT's 3f+1 replicas
// and three phases (internal/pbft is that baseline). Every replica message
// carries a UI — a TrInc attestation over the message body on the
// replica's USIG counter — so a replica cannot send conflicting messages
// at the same counter value, and receivers process each peer's messages in
// counter order.
//
// Normal case:
//
//	client  --REQUEST-->  all replicas
//	primary --PREPARE(v, batch)+UI-->  all
//	backup  --COMMIT(v, prepare-UI, batch digest)+UI--> all
//	executed at f+1 matching endorsements (the PREPARE counts as the
//	primary's); replicas reply directly to the client, which accepts a
//	result vouched for by f+1 replicas.
//
// The primary batches: all requests pending when a proposal slot frees are
// packed into one PREPARE (capped by WithBatchSize), so the USIG
// attestation, the O(n) broadcast, and the f+1 quorum certificate are paid
// once per batch rather than once per request. A batch occupies exactly one
// slot in the total order; requests inside it execute in their in-batch
// order, each still deduplicated by the per-client table, so batching
// changes the amortization, not the properties (DESIGN.md §5).
//
// Omission recovery: messages are authenticated by their UI rather than
// the delivery channel, so any replica can relay any protocol message. A
// replica that detects a gap in a peer's UI sequence (or a commit
// referencing a prepare it never received) broadcasts a FETCH and peers
// answer from their message stores — a Byzantine sender cannot stall
// correct replicas by sending to only some of them.
//
// Checkpointing (checkpoint.go): every K executed batches the replica
// snapshots its state machine plus client table and broadcasts an attested
// CHECKPOINT(count, digest); f+1 matching votes make it stable, after which
// the accepted-prepare log, the per-slot entries, and the fetch store are
// garbage-collected below it, keeping replica memory bounded. A replica
// proven behind a stable checkpoint installs it via state transfer, and a
// replica restarted from a data dir (persist.go) rehydrates its trusted
// counter and latest stable checkpoint, announces RESTART, and catches up
// the same way.
//
// View change: on request timeout a replica
// broadcasts VIEW-CHANGE(v+1, accepted-prepare log)+UI; the new primary
// assembles f+1 of them into NEW-VIEW. Every replica deterministically
// recomputes the union of the embedded logs — each entry self-certified by
// the old primary's UI, so entries can be omitted but never forged —
// orders it by (view, prepare counter), executes what it has not executed
// yet (client-table dedup), and enters the new view. Any request executed
// by a correct replica carries f+1 endorsements, hence appears in at least
// one log of any f+1 view-change quorum (quorum intersection at n = 2f+1),
// so no committed request is lost.
package minbft

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"unidir/internal/obs"
	"unidir/internal/obs/tracing"
	"unidir/internal/smr"
	"unidir/internal/syncx"
	"unidir/internal/transport"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// ErrClosed reports use of a closed replica.
var ErrClosed = errors.New("minbft: replica closed")

// Option configures a Replica.
type Option func(*Replica)

// WithRequestTimeout sets how long a pending request may wait before the
// replica initiates a view change (default 500ms).
func WithRequestTimeout(d time.Duration) Option {
	return func(r *Replica) { r.reqTimeout = d }
}

// WithExecutionLog attaches a log capturing every applied command, for
// cross-replica consistency checking in tests.
func WithExecutionLog(l *smr.ExecutionLog) Option {
	return func(r *Replica) { r.execLog = l }
}

// WithBatchSize caps how many pending requests the primary packs into one
// PREPARE (one USIG attestation and one quorum certificate per batch).
// k <= 1 disables batching: every request is proposed immediately in its
// own prepare, the pre-batching behavior. The default comes from
// smr.DefaultBatchSize (the UNIDIR_BATCH environment knob).
func WithBatchSize(k int) Option {
	return func(r *Replica) {
		if k < 1 {
			k = 1
		}
		if k > maxBatchDecode {
			k = maxBatchDecode
		}
		r.maxBatch = k
	}
}

// WithBatchDeadline sets the adaptive batching deadline: a partially filled
// batch is held open at most this long before the primary cuts it (the
// size-or-deadline trigger; see smr.BatchTrigger). The trigger adapts below
// the deadline — at light load it cuts immediately, killing batch-wait; near
// saturation it holds until the cap plausibly fills. d == 0 disables
// deadline triggering entirely and restores the fixed two-deep proposal
// pipeline (the pre-adaptive behavior). The default comes from
// smr.DefaultBatchDeadline (the UNIDIR_BATCH_DEADLINE environment knob).
func WithBatchDeadline(d time.Duration) Option {
	return func(r *Replica) {
		if d < 0 {
			d = 0
		}
		r.batchDeadline = d
		r.batchDeadlineSet = true
	}
}

// WithFixedBatchWindow makes the primary hold every partial batch for the
// full batch deadline regardless of load or pipeline state — the classic
// fixed batch timer, kept as the A/B baseline for the adaptive trigger
// (benchharness B9's "fixed" mode).
func WithFixedBatchWindow() Option {
	return func(r *Replica) { r.batchFixed = true }
}

// WithAdmission sets the replica's admission bounds (pending-queue cap and
// per-client token bucket; see smr.AdmissionConfig). Requests past the
// bounds are shed with an overload-coded reply instead of queued — the
// client sees a retryable smr.ErrOverloaded once f+1 replicas agree. The
// default comes from smr.DefaultAdmissionConfig (the UNIDIR_ADMIT_*
// environment knobs).
func WithAdmission(cfg smr.AdmissionConfig) Option {
	return func(r *Replica) {
		r.admission = smr.NewAdmission(cfg)
	}
}

// WithProposalPacing makes the primary defer cutting new batches while any
// peer's transport send queue holds depth or more frames (requires a
// transport implementing transport.QueueDepther; otherwise a no-op).
// depth <= 0 disables pacing. The default comes from smr.DefaultPaceDepth
// (the UNIDIR_PACE_DEPTH environment knob).
func WithProposalPacing(depth int) Option {
	return func(r *Replica) {
		if depth < 0 {
			depth = 0
		}
		r.paceDepth = depth
		r.paceDepthSet = true
	}
}

// WithLeaseTerm sets the leader-lease term for the linearizable read fast
// path (lease.go). d > 0 sets the term explicitly; d < 0 disables leases
// (every read is answered as a quorum-read fallback vote); d == 0 keeps the
// default from smr.DefaultLeaseTerm (the UNIDIR_LEASE environment knob).
// All replicas of a cluster must agree on the term: a grantor's promise
// horizon and the holder's expiry are both derived from it.
func WithLeaseTerm(d time.Duration) Option {
	return func(r *Replica) {
		if d < 0 {
			d = 0
		} else if d == 0 {
			return // keep the environment default
		}
		r.leaseTerm = d
		r.leaseTermSet = true
	}
}

// WithCheckpointInterval sets how many executed batches separate
// checkpoints (state snapshot + attested digest vote + log GC on
// stability). k <= 0 disables checkpointing. The default comes from
// smr.DefaultCheckpointInterval (the UNIDIR_CKPT environment knob).
// Checkpointing requires the state machine to implement smr.Snapshotter;
// with a plain smr.StateMachine the setting is ignored.
func WithCheckpointInterval(k int) Option {
	return func(r *Replica) {
		if k <= 0 {
			k = -1 // explicitly disabled (0 means "use the default")
		}
		r.ckptInterval = k
	}
}

// WithDataDir makes the replica crash-restart capable: the latest stable
// checkpoint is persisted under dir (atomically, see persist.go) and
// reloaded by New, after which the replica announces its restart and
// catches the rest up via state transfer. The trusted counter itself is
// persisted by the device (trinc.Device.Persist with a ctrstore WAL under
// the same dir), which the caller wires up — the replica only owns the
// checkpoint file. Requires an smr.Snapshotter state machine.
func WithDataDir(dir string) Option {
	return func(r *Replica) { r.dataDir = dir }
}

// pipelineDepth bounds the primary's proposed-but-unexecuted batches when
// batching is on: one batch committing while the next accumulates. Depth 1
// would stall arrivals during the commit round; a deeper pipeline measurably
// hurts on a fast fabric — free proposal slots drain arrivals into tiny
// batches, and per-batch authentication overhead then dominates.
const pipelineDepth = 2

// Replica is one MinBFT replica. Create with New, stop with Close.
type Replica struct {
	m   types.Membership
	tr  transport.Transport
	dev *trinc.Device
	ver *trinc.Verifier
	sm  smr.StateMachine

	reqTimeout time.Duration
	execLog    *smr.ExecutionLog
	maxBatch   int

	// Flow control (see smr/flowcontrol.go). All run-goroutine-owned.
	batchDeadline    time.Duration // max hold on a partial batch; 0: cut immediately
	batchDeadlineSet bool
	batchFixed       bool // non-adaptive baseline: always wait out the deadline
	trigger          *smr.BatchTrigger
	admission        *smr.Admission
	batchStart       time.Time // arrival of the oldest unproposed pending request
	batchTimerArmed  bool      // a 'b' deadline timer is outstanding
	maxInFlight      int       // pipelineDepth, or adaptivePipelineDepth with a deadline
	paceDepth        int       // defer proposals past this peer send-queue depth; 0: off
	paceDepthSet     bool
	qd               transport.QueueDepther // nil unless the transport exposes depths

	events *syncx.Queue[event]
	wg     sync.WaitGroup
	cancel context.CancelFunc

	mu     sync.Mutex
	closed bool
	timers map[*time.Timer]struct{} // armed watchdogs, stopped on Close

	// State below is owned by the run goroutine.
	view       types.View
	inVC       bool       // view change in progress
	targetView types.View // view being changed to while inVC

	lastUI   map[types.ProcessID]types.SeqNum             // per-peer processed UI cursor
	uiBuffer map[types.ProcessID]map[types.SeqNum]peerMsg // out-of-order holding
	msgStore map[types.ProcessID]map[types.SeqNum]peerMsg // processed messages, servable to fetchers

	entries   map[entryKey]*entry
	prepOrder []entryKey // accepted prepares of the current view, in UI order
	execIdx   int        // next prepOrder index to execute
	proposing bool       // re-entrancy guard for maybePropose

	acceptedLog []logEntry // all prepares this replica ever endorsed

	table    *smr.ClientTable
	pending  map[pendingKey]smr.Request
	proposed map[pendingKey]bool // requests inside an in-flight batch (leader, current view)
	inFlight int                 // batches this leader proposed but not yet executed

	// Introspection counters (status.go). Run-goroutine-owned, plain so
	// Status works without WithMetrics. Process-lifetime: reset on restart,
	// unlike execCount, which state transfer restores.
	proposedCount    uint64 // batches this replica proposed as leader
	executedReqCount uint64 // requests executed (including view-change replays)

	vcVotes map[types.View]map[types.ProcessID]signedVC

	// Leader leases for the read fast path (lease.go). Run-goroutine-owned.
	leaseTerm       time.Duration // 0: leases (and leased reads) disabled
	leaseTermSet    bool
	leaseFull       bool         // require grants from all n replicas (default), not f+1
	querier         smr.Querier  // nil: the state machine cannot answer reads
	leaseRound      types.SeqNum // UI seq of our outstanding LEASE-REQUEST
	leaseSentAt     time.Time
	leaseGrants     map[types.ProcessID]bool
	leaseUntil      time.Time           // zero: no lease held
	renewArmed      bool                // an 'l' renewal timer is outstanding
	grantUntil      time.Time           // our outstanding grantor promise horizon
	deferredVC      types.View          // view change deferred behind grantUntil (0: none)
	grantTimerArmed bool                // a 'g' grant-expiry timer is outstanding
	leaseReads      []pendingRead       // leased reads waiting for the execute watermark
	readReplies     map[uint64][][]byte // per-client read replies coalesced within one event-loop drain

	// Checkpointing and recovery (checkpoint.go, persist.go).
	snap            smr.Snapshotter // nil: state machine cannot snapshot
	ckptInterval    int             // batches between checkpoints; 0 disables
	dataDir         string          // "" : no crash-restart persistence
	execCount       uint64          // fresh batches executed, in total order
	ckptVotes       map[uint64]map[types.ProcessID]signedCkpt
	ownStates       map[uint64][]byte                // our snapshots awaiting stability
	stable          ckptCert                         // latest stable checkpoint certificate
	stableState     []byte                           // the state the stable cert certifies
	gcVoteSeqs      map[types.ProcessID]types.SeqNum // fetch-store GC watermarks
	gcSeqFloor      types.SeqNum                     // current-view prepare seqs GC'd below
	stateTarget     uint64                           // checkpoint count being fetched (0: none)
	pendingNV       *newView                         // NEW-VIEW deferred behind a state fetch
	pendingNVRaw    []byte
	lastNVRaw       []byte // encoded NEW-VIEW envelope of the installed view
	announceRestart bool

	statsMu sync.Mutex
	fp      Footprint

	metricsReg *obs.Registry
	mx         metrics // all-nil (free no-ops) without WithMetrics

	// Distributed tracing (tracing.go); nil without WithTracer.
	tracer       *tracing.Tracer
	reqTrace     map[pendingKey]reqTraceInfo // sampled requests awaiting execution
	deferred     []deferredReply             // traced replies held while an execute span is open
	deferReplies bool

	// Readiness mirrors of inVC / stateTarget, readable off the run
	// goroutine (Ready, the /readyz endpoint).
	rdyVC atomic.Bool // view change in progress
	rdyST atomic.Bool // state transfer in progress
}

type entryKey struct {
	view types.View
	seq  types.SeqNum // primary's UI counter value
}

type pendingKey struct {
	client, num uint64
}

type entry struct {
	reqs      []smr.Request // nil until the prepare binds the batch
	reqDigest [sha256.Size]byte
	prepUI    trinc.Attestation
	votes     map[types.ProcessID]bool
	executed  bool
	mine      bool      // proposed by this replica (leader in-flight accounting)
	boundAt   time.Time // prepare acceptance time; zero without WithMetrics

	btc        tracing.Context // batch trace (zero unless the batch is sampled)
	quorumSpan *tracing.Active // open commit-quorum span; nil when untraced
}

type peerMsg struct {
	kind byte
	body []byte
	ui   trinc.Attestation
	tc   tracing.Context // trace context the message arrived with
}

type event struct {
	env    *transport.Envelope
	timer  *timerEvent
	status chan obs.Status // introspection request; answered on the run goroutine (status.go)
}

type timerEvent struct {
	kind    byte // 't' request timeout, 'v' view-change timeout, 'f' fetch, 's' state fetch, 'b' batch deadline/pacing recheck, 'l' lease renewal, 'g' grantor-promise expiry
	pending pendingKey
	view    types.View
	peer    types.ProcessID // fetch target trinket
	seq     types.SeqNum    // fetch target counter value
	retries int
}

// maxFetchRetries bounds gap-fill attempts: a trinket owner that attested
// a counter value but never released the message to anyone is detectably
// faulty, and chasing it forever would be an amplification vector.
const maxFetchRetries = 8

// New starts a replica. dev is this replica's trinket (its USIG); ver
// verifies all trinkets; sm is the deterministic application.
func New(m types.Membership, tr transport.Transport, dev *trinc.Device, ver *trinc.Verifier, sm smr.StateMachine, opts ...Option) (*Replica, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.N < 2*m.F+1 {
		return nil, fmt.Errorf("minbft: requires n >= 2f+1, got n=%d f=%d", m.N, m.F)
	}
	if dev.Owner() != tr.Self() {
		return nil, fmt.Errorf("minbft: trinket owner %v != endpoint %v", dev.Owner(), tr.Self())
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Replica{
		m:          m,
		tr:         tr,
		dev:        dev,
		ver:        ver,
		sm:         sm,
		reqTimeout: 500 * time.Millisecond,
		maxBatch:   smr.DefaultBatchSize(),
		events:     syncx.NewQueue[event](),
		cancel:     cancel,
		timers:     make(map[*time.Timer]struct{}),
		lastUI:     make(map[types.ProcessID]types.SeqNum),
		uiBuffer:   make(map[types.ProcessID]map[types.SeqNum]peerMsg),
		msgStore:   make(map[types.ProcessID]map[types.SeqNum]peerMsg),
		entries:    make(map[entryKey]*entry),
		table:      smr.NewClientTable(),
		pending:    make(map[pendingKey]smr.Request),
		proposed:   make(map[pendingKey]bool),
		vcVotes:    make(map[types.View]map[types.ProcessID]signedVC),
		ckptVotes:  make(map[uint64]map[types.ProcessID]signedCkpt),
		ownStates:  make(map[uint64][]byte),
		gcVoteSeqs: make(map[types.ProcessID]types.SeqNum),
		reqTrace:   make(map[pendingKey]reqTraceInfo),
	}
	for _, opt := range opts {
		opt(r)
	}
	if !r.batchDeadlineSet {
		r.batchDeadline = smr.DefaultBatchDeadline()
	}
	if !r.paceDepthSet {
		r.paceDepth = smr.DefaultPaceDepth()
	}
	if r.admission == nil {
		r.admission = smr.NewAdmission(smr.DefaultAdmissionConfig())
	}
	if r.batchFixed {
		r.trigger = smr.NewFixedBatchTrigger(r.maxBatch, r.batchDeadline)
	} else {
		r.trigger = smr.NewBatchTrigger(r.maxBatch, r.batchDeadline)
	}
	r.maxInFlight = pipelineDepth
	if qd, ok := tr.(transport.QueueDepther); ok {
		r.qd = qd
	}
	if snap, ok := sm.(smr.Snapshotter); ok {
		r.snap = snap
	}
	if q, ok := sm.(smr.Querier); ok {
		r.querier = q
	}
	if !r.leaseTermSet {
		r.leaseTerm = smr.DefaultLeaseTerm()
	}
	if r.querier == nil {
		// Without a Querier nothing can answer a read, leased or fallback,
		// so skip the lease traffic entirely.
		r.leaseTerm = 0
	}
	// MinBFT's f+1 minimum grant quorum is not Byzantine-safe, so the
	// default is the full quorum; UNIDIR_LEASE_QUORUM=fplus1 opts out.
	r.leaseFull = smr.LeaseQuorumFull(false)
	switch {
	case r.ckptInterval == 0:
		r.ckptInterval = smr.DefaultCheckpointInterval()
	case r.ckptInterval < 0:
		r.ckptInterval = 0
	}
	if r.dataDir != "" {
		if r.snap == nil {
			cancel()
			return nil, fmt.Errorf("minbft: data dir requires a snapshotting state machine (smr.Snapshotter)")
		}
		if err := os.MkdirAll(r.dataDir, 0o755); err != nil {
			cancel()
			return nil, fmt.Errorf("minbft: data dir: %w", err)
		}
		loaded, err := r.loadCheckpoint()
		if err != nil {
			cancel()
			return nil, err
		}
		if loaded {
			r.announceRestart = true
		}
	}
	if dev.LastAttested(usigCounter) > 0 {
		// The trinket attested before this process started: we are a
		// rehydrated restart even without a checkpoint on disk.
		r.announceRestart = true
	}
	r.initMetrics()
	r.wg.Add(2)
	go r.recvLoop(ctx)
	go r.run(ctx)
	return r, nil
}

// Self returns the replica's process ID.
func (r *Replica) Self() types.ProcessID { return r.tr.Self() }

// View returns the replica's current view (for tests and monitoring).
func (r *Replica) View() types.View {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.view
}

// Close stops the replica's goroutines and cancels every armed watchdog
// timer, so no time.AfterFunc callback outlives the replica.
func (r *Replica) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	for t := range r.timers {
		t.Stop()
	}
	r.timers = nil
	r.mu.Unlock()
	r.cancel()
	r.events.Close()
	_ = r.tr.Close()
	r.wg.Wait()
	return nil
}

// PendingTimers reports the number of armed watchdog timers (zero after
// Close; exposed for tests and monitoring).
func (r *Replica) PendingTimers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.timers)
}

func (r *Replica) recvLoop(ctx context.Context) {
	defer r.wg.Done()
	verifyAhead := r.ver.Concurrent()
	for {
		env, err := r.tr.Recv(ctx)
		if err != nil {
			return
		}
		if verifyAhead {
			r.prewarm(env.Payload)
		}
		e := env
		r.events.Push(event{env: &e})
	}
}

// prewarm verifies a replica message's UI before the run goroutine sees it,
// overlapping crypto with protocol processing when a spare core exists.
// Purely an optimization: the result is ignored (failures are
// negative-cached, also cheap to re-hit) and the authoritative check in
// ingestReplicaMsg re-verifies through the cache.
func (r *Replica) prewarm(payload []byte) {
	kind, body, ui, err := decodeEnvelope(payload)
	if err != nil || ui == nil || kind == kindRequest || kind == kindFetch || kind == kindFetchResp {
		return
	}
	_ = r.checkUI(*ui, kind, body)
}

// checkUI verifies a UI over (kind, body) through the trinket fast path,
// building the binding in a pooled encoder (one binding per received
// replica message makes this the replica's hottest encoding).
func (r *Replica) checkUI(ui trinc.Attestation, kind byte, body []byte) error {
	e := wire.GetEncoder()
	appendUIBinding(e, kind, body)
	err := r.ver.CheckMessage(ui, e.Bytes())
	wire.PutEncoder(e)
	return err
}

func (r *Replica) run(ctx context.Context) {
	defer r.wg.Done()
	if r.announceRestart {
		r.sendRestart()
	}
	// The view-0 leader solicits its first lease up front so the read fast
	// path is live before the first read arrives.
	r.renewLease()
	for {
		// Draining the whole backlog per wakeup lets read replies produced
		// while processing one burst coalesce into one frame per client
		// (flushReadReplies) instead of one frame per read.
		evs, err := r.events.PopAll(ctx)
		if err != nil {
			return
		}
		for _, ev := range evs {
			switch {
			case ev.env != nil:
				r.handleEnvelope(*ev.env)
			case ev.timer != nil:
				r.handleTimer(*ev.timer)
			case ev.status != nil:
				ev.status <- r.buildStatus()
			}
		}
		r.flushReadReplies()
	}
}

// --- sending helpers ---

// attestAndSend attests (kind, body) on the USIG and broadcasts the
// envelope to all other replicas, returning the UI.
func (r *Replica) attestAndSend(kind byte, body []byte) (trinc.Attestation, error) {
	return r.attestAndSendTraced(kind, body, nil)
}

func (r *Replica) reply(req smr.Request, result []byte) {
	rep := smr.Reply{Replica: r.Self(), Client: req.Client, Num: req.Num, Result: result}
	_ = r.tr.Send(types.ProcessID(req.Client), rep.Encode())
}

// replyOverloaded sheds a request with an overload-coded reply. The client
// counts these as votes like any other reply, so it backs off only when f+1
// replicas independently shed — one Byzantine replica cannot fake overload.
func (r *Replica) replyOverloaded(req smr.Request) {
	rep := smr.Reply{Replica: r.Self(), Client: req.Client, Num: req.Num, Code: smr.ReplyOverloaded}
	_ = r.tr.Send(types.ProcessID(req.Client), rep.Encode())
}

// --- receive path ---

func (r *Replica) handleEnvelope(env transport.Envelope) {
	kind, body, ui, err := decodeEnvelope(env.Payload)
	if err != nil {
		return
	}
	switch kind {
	case kindRequest:
		req, err := smr.DecodeRequest(body)
		if err != nil {
			return
		}
		r.handleRequest(req, env.Trace)
		return
	case kindReadRequest:
		r.handleReadRequest(body)
		return
	case kindFetch:
		r.handleFetch(env.From, body)
		return
	case kindStateFetch:
		r.handleStateFetch(env.From, body)
		return
	case kindStateResp:
		r.handleStateResp(body)
		return
	case kindFetchResp:
		// The response carries a stored original envelope; it is
		// self-authenticating (UI), so feed it back through this path.
		innerKind, innerBody, innerUI, err := decodeEnvelope(body)
		if err != nil || innerKind == kindFetch || innerKind == kindFetchResp || innerKind == kindRequest {
			return
		}
		// Relayed messages lose their original trace context; the batch
		// trace survives via whichever replica got the direct delivery.
		r.ingestReplicaMsg(innerKind, innerBody, innerUI, tracing.Context{})
		return
	}
	r.ingestReplicaMsg(kind, body, ui, env.Trace)
}

// ingestReplicaMsg authenticates replica traffic by its UI — the
// attestation, not the channel, names the originator, which makes every
// protocol message relayable (the fetch protocol depends on this) — and
// processes each trinket's messages in counter order, buffering gaps.
func (r *Replica) ingestReplicaMsg(kind byte, body []byte, ui *trinc.Attestation, tc tracing.Context) {
	if ui == nil || !r.m.Contains(ui.Trinket) || ui.Trinket == r.Self() || ui.Counter != usigCounter {
		return
	}
	if err := r.checkUI(*ui, kind, body); err != nil {
		return
	}
	from := ui.Trinket
	buf := r.uiBuffer[from]
	if buf == nil {
		buf = make(map[types.SeqNum]peerMsg)
		r.uiBuffer[from] = buf
	}
	if ui.Seq <= r.lastUI[from] {
		return // already processed (retransmission or replay)
	}
	if kind == kindRestart {
		// An attested counter jump: the peer crashed and restarted.
		// Messages it attested before the crash but never delivered are
		// permanently lost, and waiting for them would stall its cursor
		// forever. Skipping them is omission — tolerated — not
		// equivocation: the trinket still binds at most one body per
		// counter value.
		for s := range buf {
			if s <= ui.Seq {
				delete(buf, s)
			}
		}
		r.lastUI[from] = ui.Seq
		msg := peerMsg{kind: kind, body: body, ui: *ui, tc: tc}
		r.storeMsg(from, ui.Seq, msg)
		r.dispatch(from, msg)
		r.drainBuffer(from)
		return
	}
	buf[ui.Seq] = peerMsg{kind: kind, body: body, ui: *ui, tc: tc}
	if ui.Seq > r.lastUI[from]+1 {
		// A gap: some earlier message of this trinket never arrived
		// (targeted omission or loss). Ask the others for it.
		r.scheduleFetch(from, r.lastUI[from]+1)
	}
	r.drainBuffer(from)
	// Self-certifying kinds act immediately even while cursor-gapped: their
	// handlers verify all embedded evidence and are idempotent, and a
	// replica catching up after a restart may close old gaps only through
	// the very messages below (NEW-VIEW evidence, checkpoint stability).
	if msg, still := buf[ui.Seq]; still && ui.Seq > r.lastUI[from] {
		switch kind {
		case kindNewView, kindCheckpoint:
			r.dispatch(from, msg)
		}
	}
}

// drainBuffer dispatches a peer's buffered messages in cursor order for as
// long as they are contiguous.
func (r *Replica) drainBuffer(from types.ProcessID) {
	buf := r.uiBuffer[from]
	for {
		next, ok := buf[r.lastUI[from]+1]
		if !ok {
			return
		}
		delete(buf, r.lastUI[from]+1)
		r.lastUI[from]++
		r.storeMsg(from, r.lastUI[from], next)
		r.dispatch(from, next)
	}
}

// storeMsg retains a processed message so lagging peers can fetch it
// (garbage-collected below the stable checkpoint, see advanceStable).
func (r *Replica) storeMsg(from types.ProcessID, seq types.SeqNum, msg peerMsg) {
	bySeq := r.msgStore[from]
	if bySeq == nil {
		bySeq = make(map[types.SeqNum]peerMsg)
		r.msgStore[from] = bySeq
	}
	bySeq[seq] = msg
}

// scheduleFetch arms a delayed gap-fill query for (peer, seq); if the gap
// closes on its own (late direct delivery) the fire is a no-op.
func (r *Replica) scheduleFetch(peer types.ProcessID, seq types.SeqNum) {
	r.afterTimeout(r.reqTimeout/4, timerEvent{kind: 'f', peer: peer, seq: seq})
}

func (r *Replica) handleFetch(from types.ProcessID, body []byte) {
	peer, seq, err := decodeFetchBody(body)
	if err != nil || !r.m.Contains(from) {
		return
	}
	msg, ok := r.msgStore[peer][seq]
	if !ok {
		// Garbage-collected below the stable checkpoint? Then the fetcher
		// can never gap-fill its way forward — offer the state instead.
		if seq <= r.gcVoteSeqs[peer] && r.stableState != nil {
			r.sendStableState(from)
		}
		return
	}
	inner := encodeEnvelope(msg.kind, msg.body, &msg.ui)
	_ = r.tr.Send(from, encodeEnvelope(kindFetchResp, inner, nil))
}

func (r *Replica) dispatch(from types.ProcessID, msg peerMsg) {
	switch msg.kind {
	case kindPrepare:
		r.handlePrepare(from, msg)
	case kindCommit:
		r.handleCommit(from, msg)
	case kindViewChange:
		r.handleViewChange(from, msg)
	case kindNewView:
		r.handleNewView(from, msg)
	case kindCheckpoint:
		r.handleCheckpoint(from, msg)
	case kindRestart:
		r.handleRestart(from, msg)
	case kindLeaseRequest:
		r.handleLeaseRequest(from, msg)
	case kindLeaseGrant:
		r.handleLeaseGrant(from, msg)
	}
}

// --- client requests ---

func (r *Replica) handleRequest(req smr.Request, tc tracing.Context) {
	if result, ok := r.table.CachedReply(req); ok {
		r.reply(req, result)
		return
	}
	key := pendingKey{req.Client, req.Num}
	if !r.table.ShouldExecute(req) {
		// Below the client's last executed num with the reply cache moved
		// on: the table's per-client order means this request can never
		// execute. That happens when an earlier shed left a num gap that the
		// pipeline's later requests overtook. Purge any stranded pending
		// copy — its watchdog must not blame the primary — and answer with
		// an overload reply so the client's vote count converges instead of
		// retransmitting forever.
		if _, stranded := r.pending[key]; stranded {
			delete(r.pending, key)
			delete(r.proposed, key)
			delete(r.reqTrace, key)
			r.mx.pendingDepth.Set(int64(len(r.pending)))
		}
		r.mx.sheds.Inc()
		r.replyOverloaded(req)
		return
	}
	if _, dup := r.pending[key]; dup {
		return
	}
	now := time.Now()
	if !r.admission.Admit(req.Client, len(r.pending), now) {
		// Shed before the request enters pending: no watchdog is armed, so
		// overload cannot masquerade as a faulty primary and trigger view
		// changes. A later retransmission is re-admitted on its own merits.
		r.mx.sheds.Inc()
		r.replyOverloaded(req)
		return
	}
	r.pending[key] = req
	r.mx.pendingDepth.Set(int64(len(r.pending)))
	r.trigger.Arrive(now)
	if r.batchStart.IsZero() {
		r.batchStart = now
	}
	r.noteRequest(key, tc)
	r.maybePropose()
	// Arm the liveness watchdog for this request.
	r.afterTimeout(r.reqTimeout, timerEvent{kind: 't', pending: key, view: r.view})
}

// maybePropose is the primary's batching valve: it packs pending requests
// not yet inside an in-flight batch into PREPAREs, up to maxBatch requests
// each. With batching on, at most maxInFlight batches are outstanding —
// committing while the next accumulates arrivals — which is what amortizes
// the attestation and the O(n) broadcast. With a batch deadline configured
// the cut is size-or-deadline: a partial batch goes out immediately at
// light load (the EWMA trigger says waiting cannot amortize anything) and
// is otherwise held — never past the deadline — to fill toward the cap.
// With maxBatch <= 1 there is no cap and every pending request goes out in
// its own prepare immediately (the unbatched baseline).
func (r *Replica) maybePropose() {
	if r.m.Leader(r.view) != r.Self() || r.inVC || r.proposing {
		return
	}
	r.proposing = true
	defer func() { r.proposing = false }()
	for {
		if r.maxBatch > 1 && r.inFlight >= r.maxInFlight {
			return
		}
		// Backpressure: while some peer's send queue is saturated, pushing
		// more batches only grows it. Defer and recheck on a timer.
		if r.paceDepth > 0 && r.qd != nil &&
			transport.MaxQueueDepth(r.tr, r.m.Others(r.Self())) >= r.paceDepth {
			r.mx.pacedProposals.Inc()
			r.armBatchTimer(r.paceRecheck())
			return
		}
		batch := make([]smr.Request, 0, r.maxBatch)
		for _, req := range sortedPending(r.pending) {
			key := pendingKey{req.Client, req.Num}
			if r.proposed[key] {
				continue
			}
			if !r.table.ShouldExecute(req) {
				delete(r.pending, key) // executed meanwhile (e.g. via view change)
				delete(r.reqTrace, key)
				continue
			}
			batch = append(batch, req)
			if len(batch) >= r.maxBatch {
				break
			}
		}
		if len(batch) == 0 {
			r.batchStart = time.Time{}
			return
		}
		if r.maxBatch > 1 && len(batch) < r.maxBatch {
			if wait := r.trigger.Wait(len(batch), r.inFlight, r.batchStart, time.Now()); wait > 0 {
				r.armBatchTimer(wait)
				return
			}
		}
		if !r.batchStart.IsZero() {
			r.mx.batchWait.Observe(time.Since(r.batchStart).Seconds())
		}
		if !r.sendPrepare(batch) {
			return // attest/broadcast failure; the watchdogs drive recovery
		}
		r.inFlight++
		r.proposedCount++
		r.mx.proposedBatches.Inc()
		r.mx.batchSize.Observe(float64(len(batch)))
		r.mx.inFlight.Set(int64(r.inFlight))
		for _, req := range batch {
			r.proposed[pendingKey{req.Client, req.Num}] = true
		}
		// Anything still unproposed starts accumulating a fresh batch now.
		if len(r.pending) > len(r.proposed) {
			r.batchStart = time.Now()
		} else {
			r.batchStart = time.Time{}
		}
	}
}

// paceRecheck is how long a paced primary waits before re-inspecting peer
// queue depths.
func (r *Replica) paceRecheck() time.Duration {
	if r.batchDeadline > 0 {
		return r.batchDeadline
	}
	return 100 * time.Microsecond
}

// armBatchTimer schedules one deadline/pacing recheck; at most one is
// outstanding so deferred cuts cannot pile up timer events.
func (r *Replica) armBatchTimer(d time.Duration) {
	if r.batchTimerArmed {
		return
	}
	r.batchTimerArmed = true
	r.afterTimeout(d, timerEvent{kind: 'b'})
}

// afterTimeout arms a watchdog that pushes te into the event queue after d.
// Timers are tracked so Close can stop them; a callback that races Close
// observes the closed flag under the lock and becomes a no-op (the event
// queue is closed by then anyway — this keeps the timer set itself tidy).
func (r *Replica) afterTimeout(d time.Duration, te timerEvent) {
	t := te
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	var tm *time.Timer
	tm = time.AfterFunc(d, func() {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return
		}
		delete(r.timers, tm)
		r.mu.Unlock()
		r.events.Push(event{timer: &t})
	})
	r.timers[tm] = struct{}{}
}

func (r *Replica) handleTimer(te timerEvent) {
	switch te.kind {
	case 'b':
		// Batch deadline (or pacing recheck) expired: cut whatever is
		// pending, however partial.
		r.batchTimerArmed = false
		r.maybePropose()
	case 't':
		if _, still := r.pending[te.pending]; still && te.view == r.view && !r.inVC {
			r.startViewChange(r.view + 1)
		}
	case 'v':
		if r.inVC && r.targetView == te.view {
			r.startViewChange(te.view + 1)
		}
	case 'f':
		if r.lastUI[te.peer] >= te.seq || te.retries >= maxFetchRetries {
			return // gap closed, or giving up on a withholding trinket
		}
		r.mx.fetchesSent.Inc()
		body := encodeFetchBody(te.peer, te.seq)
		_ = transport.Broadcast(r.tr, r.m.Others(r.Self()), encodeEnvelope(kindFetch, body, nil))
		next := te
		next.retries++
		r.afterTimeout(r.reqTimeout/2, next)
	case 's':
		if r.stateTarget == 0 || uint64(te.seq) < r.stateTarget {
			return // superseded by a later target (which armed its own timer)
		}
		if r.execCount >= r.stateTarget {
			r.stateTarget = 0
			r.rdyST.Store(false)
			return
		}
		r.broadcastStateFetch()
		r.afterTimeout(r.reqTimeout, te)
	case 'l':
		r.renewArmed = false
		r.renewLease()
	case 'g':
		r.grantExpired()
	}
}

// --- normal case ---

// sendPrepare attests and broadcasts one batch, reporting success.
func (r *Replica) sendPrepare(batch []smr.Request) bool {
	p := prepare{View: r.view, Reqs: batch}
	body := p.encodeBody()
	span := r.startProposeSpan(batch)
	ui, err := r.attestAndSendTraced(kindPrepare, body, span)
	btc := span.Context() // capture before End: the handle is pooled
	span.End()
	if err != nil {
		return false
	}
	// The primary's prepare is its own endorsement.
	r.acceptPrepare(r.Self(), p, ui, btc)
	if en := r.entries[entryKey{p.View, ui.Seq}]; en != nil {
		en.mine = true
	}
	return true
}

func (r *Replica) handlePrepare(from types.ProcessID, msg peerMsg) {
	p, err := decodePrepareBody(msg.body)
	if err != nil {
		return
	}
	if r.inVC || p.View != r.view || r.m.Leader(p.View) != from {
		return
	}
	// Resend cached replies for retransmitted requests inside the batch.
	// Stale requests are endorsed anyway: the batch is ordered as a unit and
	// execution dedups per request through the client table, so endorsing
	// a partially (or fully) executed batch is harmless.
	for _, req := range p.Reqs {
		if !r.table.ShouldExecute(req) {
			if result, ok := r.table.CachedReply(req); ok {
				r.reply(req, result)
			}
		}
	}
	r.acceptPrepare(from, p, msg.ui, msg.tc)

	// Endorse: broadcast a COMMIT with our own UI — one per batch, not per
	// request; this is the amortization the batching buys.
	c := commit{
		View:      p.View,
		Primary:   from,
		PrepSeq:   msg.ui.Seq,
		ReqDigest: p.batchDigest(),
	}
	if _, err := r.attestAndSend(kindCommit, c.encodeBody()); err != nil {
		return
	}
	key := entryKey{p.View, msg.ui.Seq}
	if en := r.entries[key]; en != nil {
		// The entry can be gone already: if commit votes arrived ahead of the
		// prepare, acceptPrepare's own tryExecute may have executed the slot
		// and a checkpoint boundary may have collected it.
		en.votes[r.Self()] = true
	}
	r.tryExecute()
}

// acceptPrepare records an accepted prepare: entry, execution order slot,
// endorsed log for view changes, and the primary's implicit vote.
func (r *Replica) acceptPrepare(primary types.ProcessID, p prepare, prepUI trinc.Attestation, btc tracing.Context) {
	if prepUI.Seq <= r.gcSeqFloor {
		return // an executed slot the stable checkpoint already collected
	}
	key := entryKey{p.View, prepUI.Seq}
	en := r.entries[key]
	if en == nil {
		en = &entry{votes: make(map[types.ProcessID]bool)}
		r.entries[key] = en
	}
	if en.reqs == nil {
		digest := p.batchDigest()
		// If commits arrived first and built a shell entry for a different
		// batch digest, those votes endorsed something else: discard them.
		if len(en.votes) > 0 && en.reqDigest != digest {
			en.votes = make(map[types.ProcessID]bool)
		}
		en.reqs = p.Reqs
		en.reqDigest = digest
		en.prepUI = prepUI
		if r.metricsReg != nil {
			en.boundAt = time.Now()
		}
		r.bindEntryTrace(en, btc)
		r.prepOrder = append(r.prepOrder, key)
		r.mx.openSlots.Set(int64(len(r.prepOrder) - r.execIdx))
		r.acceptedLog = append(r.acceptedLog, logEntry{
			View:    p.View,
			PrepSeq: prepUI.Seq,
			Reqs:    p.Reqs,
			PrepUI:  prepUI,
		})
	}
	en.votes[primary] = true
	r.tryExecute()
}

func (r *Replica) handleCommit(from types.ProcessID, msg peerMsg) {
	c, err := decodeCommitBody(msg.body)
	if err != nil {
		return
	}
	if r.inVC || c.View != r.view || r.m.Leader(c.View) != c.Primary || from == c.Primary {
		return
	}
	if c.PrepSeq <= r.gcSeqFloor {
		return // late endorsement of a slot the stable checkpoint collected
	}
	key := entryKey{c.View, c.PrepSeq}
	en := r.entries[key]
	if en == nil {
		// Commit arrived before the prepare: create a shell entry so the
		// vote is not lost; the prepare fills in the request. If the
		// prepare was withheld from us (targeted omission), the gap-fill
		// protocol recovers it from the peers that did receive it.
		en = &entry{votes: make(map[types.ProcessID]bool), reqDigest: c.ReqDigest}
		r.entries[key] = en
		r.scheduleFetch(c.Primary, c.PrepSeq)
	}
	if en.reqDigest != c.ReqDigest {
		return // endorsement of a different request: ignore
	}
	en.votes[from] = true
	r.tryExecute()
}

// tryExecute applies committed prepares (whole batches) in UI order, then
// gives the primary a chance to propose the next accumulated batch.
func (r *Replica) tryExecute() {
	executed := false
	for r.execIdx < len(r.prepOrder) {
		key := r.prepOrder[r.execIdx]
		en := r.entries[key]
		if en == nil || en.reqs == nil || en.executed {
			break
		}
		// Freshness is decided before applying the batch: a batch with at
		// least one unexecuted request advances the checkpoint count. The
		// view-change replay path counts by the same rule, and freshness at
		// a slot is a function of the executed prefix alone, so the count —
		// and the state digest voted at each count — is identical across
		// correct replicas regardless of which path executed the slot.
		fresh := r.anyFresh(en.reqs)
		if fresh && len(en.votes) < r.m.FPlusOne() {
			break
		}
		// An all-stale batch is stepped over without waiting for a commit
		// quorum: every request in it is already reflected in the client
		// table (typically because a state transfer installed a checkpoint
		// covering the slot), so applying it is a deterministic no-op at
		// every correct replica — and the commits completing its quorum may
		// have been garbage-collected at the peers, which would wedge the
		// pipeline behind it forever. execute() below still resends the
		// cached replies.
		en.executed = true
		r.execIdx++
		execSpan := r.finishEntrySpans(en)
		for _, req := range en.reqs {
			r.execute(req)
		}
		execSpan.End()
		r.flushReplies()
		if en.mine && r.inFlight > 0 {
			r.inFlight--
		}
		r.executedReqCount += uint64(len(en.reqs))
		r.observeExecuted(en)
		if fresh {
			r.countExecuted()
		}
		executed = true
	}
	if executed {
		r.flushLeaseReads()
		r.maybePropose()
	}
}

// execute applies one request (with client-table dedup) and replies.
func (r *Replica) execute(req smr.Request) {
	key := pendingKey{req.Client, req.Num}
	delete(r.pending, key)
	delete(r.proposed, key)
	if !r.table.ShouldExecute(req) {
		delete(r.reqTrace, key)
		if result, ok := r.table.CachedReply(req); ok {
			r.reply(req, result)
		}
		return
	}
	if r.execLog != nil {
		r.execLog.Record(req.Encode())
	}
	result := r.sm.Apply(req.Op)
	r.table.Executed(req, result)
	r.tracedReply(key, req, result)
}

// --- view change ---

func (r *Replica) startViewChange(target types.View) {
	if target <= r.view {
		return
	}
	// Grantor deferral: while our lease promise to the current primary is
	// live, demanding a new view could let a NEW-VIEW form (and a new
	// primary serve writes) while the old primary still serves leased reads.
	// Deferring just our VIEW-CHANGE send is enough: any valid NEW-VIEW
	// needs f+1 view-changes, and any f+1 set intersects the f+1 grantor
	// set in at least one replica (n = 2f+1) that will not send its VC until
	// its promise — which outlasts the primary's lease — has expired. While
	// deferred we also refuse new grants (handleLeaseRequest), so the
	// primary's lease runs out within one term and the 'g' timer resumes
	// the view change.
	if hold := time.Until(r.grantUntil); hold > 0 && r.leaseTerm > 0 {
		if target > r.deferredVC {
			r.deferredVC = target
		}
		if !r.grantTimerArmed {
			r.grantTimerArmed = true
			r.afterTimeout(hold, timerEvent{kind: 'g'})
		}
		return
	}
	r.revokeLease()
	r.inVC = true
	r.rdyVC.Store(true)
	r.targetView = target
	r.mx.viewChanges.Inc()
	r.mx.trace.Record("view-change", "demanding view %d (from view %d)", target, r.view)
	vc := viewChange{NewView: target, Log: r.acceptedLog, Cert: r.stable}
	body := vc.encodeBody()
	ui, err := r.attestAndSend(kindViewChange, body)
	if err != nil {
		return
	}
	r.recordVC(r.Self(), signedVC{Sender: r.Self(), Body: body, UI: ui})
	// If the view change stalls (for example a faulty new primary), move on.
	r.afterTimeout(4*r.reqTimeout, timerEvent{kind: 'v', view: target})
}

func (r *Replica) handleViewChange(from types.ProcessID, msg peerMsg) {
	vc, err := decodeViewChangeBody(msg.body, maxLogEntries)
	if err != nil {
		return
	}
	if vc.NewView <= r.view {
		// A replica still trying to leave an older view missed our NEW-VIEW
		// (a restarted rejoiner, or targeted omission): resend the stored
		// installation evidence, which is self-certifying.
		if r.lastNVRaw != nil {
			_ = r.tr.Send(from, encodeEnvelope(kindFetchResp, r.lastNVRaw, nil))
		}
		return
	}
	r.recordVC(from, signedVC{Sender: from, Body: msg.body, UI: msg.ui})
}

// maxLogEntries bounds decoded view-change logs (generous: the accepted log
// is garbage-collected at every stable checkpoint, so correct replicas stay
// around two checkpoint intervals).
const maxLogEntries = 1 << 16

func (r *Replica) recordVC(from types.ProcessID, vc signedVC) {
	nv, err := decodeViewChangeBody(vc.Body, maxLogEntries)
	if err != nil {
		return
	}
	votes := r.vcVotes[nv.NewView]
	if votes == nil {
		votes = make(map[types.ProcessID]signedVC)
		r.vcVotes[nv.NewView] = votes
	}
	if _, dup := votes[from]; dup {
		return
	}
	votes[from] = vc

	// Join a view change once f+1 distinct replicas demand it (at least
	// one is correct), unless we are already changing to it or beyond.
	if len(votes) >= r.m.FPlusOne() && nv.NewView > r.view && (!r.inVC || r.targetView < nv.NewView) {
		r.startViewChange(nv.NewView)
	}

	// The designated new primary assembles and installs the view.
	if r.m.Leader(nv.NewView) == r.Self() && len(votes) >= r.m.FPlusOne() && nv.NewView > r.view {
		vcs := make([]signedVC, 0, len(votes))
		for _, v := range votes {
			vcs = append(vcs, v)
		}
		sort.Slice(vcs, func(i, j int) bool { return vcs[i].Sender < vcs[j].Sender })
		vcs = vcs[:r.m.FPlusOne()]
		install := newView{NewView: nv.NewView, VCs: vcs}
		body := install.encodeBody()
		ui, err := r.attestAndSend(kindNewView, body)
		if err != nil {
			return
		}
		r.installView(install, encodeEnvelope(kindNewView, body, &ui))
	}
}

func (r *Replica) handleNewView(from types.ProcessID, msg peerMsg) {
	nv, err := decodeNewViewBody(msg.body, r.m.N)
	if err != nil {
		return
	}
	if nv.NewView <= r.view || r.m.Leader(nv.NewView) != from {
		return
	}
	if len(nv.VCs) < r.m.FPlusOne() {
		return
	}
	seen := make(map[types.ProcessID]bool, len(nv.VCs))
	batch := make([]trinc.Attested, 0, len(nv.VCs))
	encs := make([]*wire.Encoder, 0, len(nv.VCs))
	defer func() {
		for _, e := range encs {
			wire.PutEncoder(e)
		}
	}()
	for _, vc := range nv.VCs {
		if seen[vc.Sender] || !r.m.Contains(vc.Sender) {
			return
		}
		seen[vc.Sender] = true
		// Each embedded view-change is verified by its sender's UI alone
		// (evidence check; contiguity was the live path's concern).
		if vc.UI.Trinket != vc.Sender || vc.UI.Counter != usigCounter {
			return
		}
		body, err := decodeViewChangeBody(vc.Body, maxLogEntries)
		if err != nil || body.NewView != nv.NewView {
			return
		}
		e := wire.GetEncoder()
		appendUIBinding(e, kindViewChange, vc.Body)
		encs = append(encs, e)
		batch = append(batch, trinc.Attested{Att: vc.UI, Msg: e.Bytes()})
	}
	// The NEW-VIEW is a quorum certificate: any bad UI rejects the whole
	// message, so the batch verifier's short-circuit semantics fit exactly,
	// and UIs of view changes we already processed live come from the cache.
	if r.ver.CheckMessages(batch) != nil {
		return
	}
	r.installView(nv, encodeEnvelope(kindNewView, msg.body, &msg.ui))
}

// installView deterministically recomputes the union log from the f+1
// view-change messages, executes everything not yet executed in (view,
// prepare-counter) order, and enters the new view. raw is the encoded
// NEW-VIEW envelope, retained so laggards demanding an older view can be
// handed the installation evidence directly.
func (r *Replica) installView(nv newView, raw []byte) {
	if nv.NewView <= r.view {
		return
	}
	if r.ckptEnabled() {
		// Checkpoint horizon: the highest verified stable checkpoint among
		// the embedded view changes. If it is ahead of our execution, the
		// surviving union suffix builds on state we do not have (its prefix
		// was garbage-collected at that checkpoint) — executing it here
		// would diverge. Install the checkpoint first, then resume.
		var horizon ckptCert
		for _, vc := range nv.VCs {
			body, err := decodeViewChangeBody(vc.Body, maxLogEntries)
			if err != nil {
				continue
			}
			if body.Cert.Count > horizon.Count && r.verifyCkptCertVotes(body.Cert) == nil {
				horizon = body.Cert
			}
		}
		if horizon.Count > r.execCount {
			nvCopy := nv
			r.pendingNV = &nvCopy
			r.pendingNVRaw = raw
			r.requestState(horizon.Count)
			return
		}
	}
	union := make(map[entryKey]logEntry)
	for _, vc := range nv.VCs {
		body, err := decodeViewChangeBody(vc.Body, maxLogEntries)
		if err != nil {
			continue
		}
		for _, le := range body.Log {
			if le.View >= nv.NewView {
				continue // prepares cannot predate their own view change
			}
			primary := r.m.Leader(le.View)
			// Entry evidence: the old primary's UI over the prepare body.
			if le.PrepUI.Trinket != primary || le.PrepUI.Seq != le.PrepSeq || le.PrepUI.Counter != usigCounter {
				continue
			}
			p := prepare{View: le.View, Reqs: le.Reqs}
			// Per-entry check; entries duplicated across the f+1 logs (the
			// common case — committed entries appear in every correct log)
			// hit the verified-signature cache after the first copy.
			if err := r.checkUI(le.PrepUI, kindPrepare, p.encodeBody()); err != nil {
				continue
			}
			union[entryKey{le.View, le.PrepSeq}] = le
		}
	}
	ordered := make([]logEntry, 0, len(union))
	for _, le := range union {
		ordered = append(ordered, le)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].View != ordered[j].View {
			return ordered[i].View < ordered[j].View
		}
		return ordered[i].PrepSeq < ordered[j].PrepSeq
	})
	for _, le := range ordered {
		// Same freshness rule as tryExecute, so the checkpoint count stays
		// consistent whichever path executes a slot.
		fresh := r.anyFresh(le.Reqs)
		for _, req := range le.Reqs {
			r.execute(req)
		}
		if fresh {
			r.countExecuted()
		}
	}

	// Enter the new view with a clean per-view slate. (r.view is guarded
	// for the View() accessor; all other access is run-goroutine-local.)
	r.mu.Lock()
	r.view = nv.NewView
	r.mu.Unlock()
	r.mx.view.Set(int64(nv.NewView))
	r.mx.openSlots.Set(0)
	r.mx.inFlight.Set(0)
	r.mx.pendingDepth.Set(int64(len(r.pending)))
	r.mx.trace.Record("new-view", "installed view %d (%d union entries)", nv.NewView, len(union))
	r.inVC = false
	r.rdyVC.Store(false)
	r.entries = make(map[entryKey]*entry)
	r.prepOrder = nil
	r.execIdx = 0
	r.inFlight = 0
	r.gcSeqFloor = 0
	r.proposed = make(map[pendingKey]bool)
	r.lastNVRaw = raw
	r.pendingNV, r.pendingNVRaw = nil, nil
	for v := range r.vcVotes {
		if v <= r.view {
			delete(r.vcVotes, v)
		}
	}
	// Lease revocation: any lease we held belonged to the old view; queued
	// leased reads are flushed as fallback votes (their watermark indexed
	// the old view's prepOrder). Our grantor promise, if any, simply runs
	// out on its own. The new leader solicits a fresh lease immediately.
	r.revokeLease()
	if r.deferredVC <= r.view {
		r.deferredVC = 0
	}
	r.renewLease()

	// Re-propose (or chase) requests still pending — re-batched: a pending
	// batch lost with the old view comes back as (part of) a fresh batch
	// under the new primary's UI, and per-request client-table dedup keeps
	// any overlap with already-executed entries harmless.
	r.maybePropose()
	for key := range r.pending {
		r.afterTimeout(r.reqTimeout, timerEvent{kind: 't', pending: key, view: r.view})
	}
}

// sortedPending yields pending requests in a deterministic order.
func sortedPending(pending map[pendingKey]smr.Request) []smr.Request {
	out := make([]smr.Request, 0, len(pending))
	for _, req := range pending {
		out = append(out, req)
	}
	smr.SortRequests(out)
	return out
}
