package minbft

// Checkpointing, log garbage collection, and state transfer.
//
// Every K executed batches (K = WithCheckpointInterval, default
// smr.DefaultCheckpointInterval) a replica snapshots its state machine plus
// client table, broadcasts an attested CHECKPOINT(count, digest), and
// collects matching votes. f+1 matching votes make the checkpoint *stable*:
// at least one correct replica holds that state, so everything the
// checkpoint subsumes — old accepted prepares, old protocol messages in the
// fetch store — can be released, and any replica can later verify the state
// against the certificate alone.
//
// Counting: execCount numbers the batches with at least one fresh (not yet
// executed) request, in total order. Both execution paths (tryExecute and
// the view-change union replay) count by the same rule, and freshness at a
// batch's position is a function of the executed prefix alone, so every
// correct replica agrees on the state at count C — which is what makes a
// digest vote at a count meaningful.
//
// State transfer: a replica that proves to be behind a stable checkpoint —
// f+1 checkpoint votes beyond its execution count, a view-change quorum
// whose certificates are ahead of it, or a fetch that peers answer with
// "garbage-collected" — requests the latest stable checkpoint, verifies the
// certificate (f+1 UIs over the digest) and the payload against the digest,
// installs it, and advances its per-peer UI cursors to each certificate
// member's checkpoint attestation: messages below are subsumed by the state
// (skipping them is omission, never equivocation — the UIs still bind one
// body per counter value).
//
// Restart: a replica with a data dir persists its stable checkpoint
// (persist.go) and announces RESTART on startup — an attested counter-jump
// notice letting peers disavow attested-but-undelivered pre-crash messages
// and push the current NEW-VIEW and stable checkpoint to the rejoiner.

import (
	"crypto/sha256"
	"fmt"

	"unidir/internal/smr"
	"unidir/internal/transport"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// --- wire ---

// checkpointMsg is the attested body of a CHECKPOINT: the replica's state
// digest after executing `Count` fresh batches.
type checkpointMsg struct {
	Count  uint64
	Digest [sha256.Size]byte
}

func (c checkpointMsg) encodeBody() []byte {
	e := wire.NewEncoder(48)
	e.Uint64(c.Count)
	e.BytesField(c.Digest[:])
	return e.Bytes()
}

func decodeCheckpointBody(b []byte) (checkpointMsg, error) {
	d := wire.NewDecoder(b)
	var c checkpointMsg
	c.Count = d.Uint64()
	h := d.BytesField()
	if err := d.Finish(); err != nil {
		return checkpointMsg{}, fmt.Errorf("minbft: decode checkpoint: %w", err)
	}
	if len(h) != sha256.Size {
		return checkpointMsg{}, fmt.Errorf("minbft: checkpoint digest length %d", len(h))
	}
	copy(c.Digest[:], h)
	return c, nil
}

// maxCertVotes bounds decoded certificate vote lists (defensive; a valid
// cert never carries more votes than replicas).
const maxCertVotes = 1 << 10

// signedCkpt is one checkpoint vote as evidence: sender, raw body, UI.
type signedCkpt struct {
	Sender types.ProcessID
	Body   []byte
	UI     trinc.Attestation
}

// ckptCert is a stable-checkpoint certificate: f+1 (or more — late matching
// votes keep extending it, so it eventually covers every correct peer, which
// is what the cursor-skip after a state install relies on) checkpoint votes
// agreeing on (Count, Digest).
type ckptCert struct {
	Count  uint64
	Digest [sha256.Size]byte
	Votes  []signedCkpt
}

func encodeCkptCert(e *wire.Encoder, c ckptCert) {
	e.Uint64(c.Count)
	e.BytesField(c.Digest[:])
	e.Int(len(c.Votes))
	for _, v := range c.Votes {
		e.Int(int(v.Sender))
		e.BytesField(v.Body)
		e.BytesField(v.UI.Encode())
	}
}

func decodeCkptCert(d *wire.Decoder, maxVotes int) (ckptCert, error) {
	var c ckptCert
	c.Count = d.Uint64()
	h := d.BytesField()
	n := d.Int()
	if err := d.Err(); err != nil {
		return ckptCert{}, err
	}
	if len(h) != sha256.Size {
		return ckptCert{}, fmt.Errorf("minbft: cert digest length %d", len(h))
	}
	copy(c.Digest[:], h)
	if n < 0 || n > maxVotes {
		return ckptCert{}, fmt.Errorf("minbft: cert with %d votes", n)
	}
	for i := 0; i < n; i++ {
		var v signedCkpt
		v.Sender = types.ProcessID(d.Int())
		v.Body = append([]byte(nil), d.BytesField()...)
		attBytes := d.BytesField()
		if err := d.Err(); err != nil {
			return ckptCert{}, err
		}
		att, err := trinc.DecodeAttestation(attBytes)
		if err != nil {
			return ckptCert{}, err
		}
		v.UI = att
		c.Votes = append(c.Votes, v)
	}
	return c, nil
}

// stateFetch body: the minimum stable-checkpoint count wanted.
func encodeStateFetchBody(count uint64) []byte {
	e := wire.NewEncoder(8)
	e.Uint64(count)
	return e.Bytes()
}

func decodeStateFetchBody(b []byte) (uint64, error) {
	d := wire.NewDecoder(b)
	count := d.Uint64()
	if err := d.Finish(); err != nil {
		return 0, fmt.Errorf("minbft: decode state fetch: %w", err)
	}
	return count, nil
}

// stateResp body: a stable-checkpoint certificate plus the state payload it
// certifies. Self-certifying (the cert's UIs), so it needs no outer UI.
func encodeStateRespBody(cert ckptCert, state []byte) []byte {
	e := wire.NewEncoder(256 + len(state))
	encodeCkptCert(e, cert)
	e.BytesField(state)
	return e.Bytes()
}

func decodeStateRespBody(b []byte, maxVotes int) (ckptCert, []byte, error) {
	d := wire.NewDecoder(b)
	cert, err := decodeCkptCert(d, maxVotes)
	if err != nil {
		return ckptCert{}, nil, err
	}
	state := append([]byte(nil), d.BytesField()...)
	if err := d.Finish(); err != nil {
		return ckptCert{}, nil, fmt.Errorf("minbft: decode state resp: %w", err)
	}
	return cert, state, nil
}

// restart body: the execution count the rejoiner restored to
// (informational; the attested kind is what matters).
func encodeRestartBody(count uint64) []byte {
	e := wire.NewEncoder(8)
	e.Uint64(count)
	return e.Bytes()
}

func decodeRestartBody(b []byte) (uint64, error) {
	d := wire.NewDecoder(b)
	count := d.Uint64()
	if err := d.Finish(); err != nil {
		return 0, fmt.Errorf("minbft: decode restart: %w", err)
	}
	return count, nil
}

// --- checkpoint logic ---

// Footprint reports the sizes of the logs checkpointing bounds, for tests
// and monitoring. Updated whenever the stable checkpoint advances (post-GC
// values); read via Replica.Footprint.
type Footprint struct {
	StableCount uint64 // execution count of the stable checkpoint
	AcceptedLog int    // accepted-prepare log entries retained
	Entries     int    // per-slot entry records retained
	MsgStore    int    // protocol messages retained for the fetch protocol
}

// Footprint returns the replica's log sizes as of the last stable-checkpoint
// advance.
func (r *Replica) Footprint() Footprint {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.fp
}

func (r *Replica) updateFootprint() {
	n := 0
	for _, bySeq := range r.msgStore {
		n += len(bySeq)
	}
	fp := Footprint{
		StableCount: r.stable.Count,
		AcceptedLog: len(r.acceptedLog),
		Entries:     len(r.entries),
		MsgStore:    n,
	}
	r.statsMu.Lock()
	r.fp = fp
	r.statsMu.Unlock()
}

// ckptEnabled reports whether this replica checkpoints (requires a
// Snapshotter state machine and a positive interval).
func (r *Replica) ckptEnabled() bool {
	return r.snap != nil && r.ckptInterval > 0
}

// countExecuted advances the fresh-batch execution count after a batch with
// at least one fresh request was applied, checkpointing on interval
// boundaries. Both execution paths (normal case and view-change replay)
// call it under the same rule, keeping the count — and therefore the state
// digest voted at each count — consistent across replicas.
func (r *Replica) countExecuted() {
	r.execCount++
	if r.ckptEnabled() && r.execCount%uint64(r.ckptInterval) == 0 {
		r.takeCheckpoint()
	}
}

// anyFresh reports whether any request of a batch is still unexecuted.
func (r *Replica) anyFresh(reqs []smr.Request) bool {
	for _, req := range reqs {
		if r.table.ShouldExecute(req) {
			return true
		}
	}
	return false
}

// takeCheckpoint snapshots the combined state, broadcasts an attested
// CHECKPOINT, and records our own vote.
func (r *Replica) takeCheckpoint() {
	state := smr.EncodeCheckpointState(r.snap.Snapshot(), r.table)
	r.ownStates[r.execCount] = state
	c := checkpointMsg{Count: r.execCount, Digest: sha256.Sum256(state)}
	body := c.encodeBody()
	ui, err := r.attestAndSend(kindCheckpoint, body)
	if err != nil {
		return
	}
	r.mx.ckptTaken.Inc()
	r.mx.trace.Record("checkpoint", "count %d digest %x", c.Count, c.Digest[:4])
	r.recordCkptVote(r.Self(), signedCkpt{Sender: r.Self(), Body: body, UI: ui})
}

func (r *Replica) handleCheckpoint(from types.ProcessID, msg peerMsg) {
	r.recordCkptVote(from, signedCkpt{Sender: from, Body: msg.body, UI: msg.ui})
}

// recordCkptVote files one checkpoint vote and advances the stable
// checkpoint when f+1 votes agree on (count, digest). A quorum at a count
// beyond our own execution proves the cluster moved past us: request the
// state instead of adopting a digest we cannot produce.
func (r *Replica) recordCkptVote(from types.ProcessID, vote signedCkpt) {
	c, err := decodeCheckpointBody(vote.Body)
	if err != nil || c.Count == 0 {
		return
	}
	if r.ckptInterval > 0 && c.Count%uint64(r.ckptInterval) != 0 {
		return // off-boundary count: not a checkpoint any correct replica takes
	}
	if c.Count <= r.stable.Count {
		// Late vote for the current stable checkpoint: extend the cert so
		// its cursor coverage grows toward all correct peers.
		if c.Count == r.stable.Count && c.Digest == r.stable.Digest {
			r.extendStableCert(vote)
		}
		return
	}
	votes := r.ckptVotes[c.Count]
	if votes == nil {
		votes = make(map[types.ProcessID]signedCkpt)
		r.ckptVotes[c.Count] = votes
	}
	if _, dup := votes[from]; dup {
		return
	}
	votes[from] = vote

	same := make([]signedCkpt, 0, len(votes))
	for _, v := range votes {
		cv, err := decodeCheckpointBody(v.Body)
		if err != nil || cv.Digest != c.Digest {
			continue
		}
		same = append(same, v)
	}
	if len(same) < r.m.FPlusOne() {
		return
	}
	cert := ckptCert{Count: c.Count, Digest: c.Digest, Votes: same}
	if c.Count > r.execCount {
		r.requestState(c.Count)
		return
	}
	state := r.ownStates[c.Count]
	if state == nil {
		return // interval raced a reconfiguration; the next boundary catches up
	}
	r.advanceStable(cert, state)
}

// extendStableCert adds a late matching vote to the stable certificate.
func (r *Replica) extendStableCert(vote signedCkpt) {
	for _, v := range r.stable.Votes {
		if v.Sender == vote.Sender {
			return
		}
	}
	if vote.UI.Trinket != vote.Sender || vote.UI.Counter != usigCounter {
		return
	}
	if r.checkUI(vote.UI, kindCheckpoint, vote.Body) != nil {
		return
	}
	r.stable.Votes = append(r.stable.Votes, vote)
	if r.dataDir != "" {
		r.persistCheckpoint()
	}
}

// advanceStable installs a new stable checkpoint we hold the state for, and
// garbage-collects everything it subsumes:
//
//   - accepted-prepare log entries whose every request is stale — their
//     effects (and the dedup entries guarding re-execution) travel inside
//     the checkpoint, so view changes no longer need them;
//   - executed per-slot entries and their prepOrder prefix;
//   - the fetch message store below the *previous* stable checkpoint's vote
//     attestations — a two-interval window, so moderately lagging peers can
//     still gap-fill directly while memory stays bounded.
func (r *Replica) advanceStable(cert ckptCert, state []byte) {
	if cert.Count <= r.stable.Count {
		return
	}
	prevVotes := r.stable.Votes
	r.stable = cert
	r.stableState = state

	for _, v := range prevVotes {
		if v.UI.Seq > r.gcVoteSeqs[v.Sender] {
			r.gcVoteSeqs[v.Sender] = v.UI.Seq
		}
	}
	for p, watermark := range r.gcVoteSeqs {
		bySeq := r.msgStore[p]
		for s := range bySeq {
			if s <= watermark {
				delete(bySeq, s)
			}
		}
	}

	kept := make([]logEntry, 0, len(r.acceptedLog))
	for _, le := range r.acceptedLog {
		if r.anyFresh(le.Reqs) {
			kept = append(kept, le)
		}
	}
	r.acceptedLog = kept

	if r.execIdx > 0 {
		for _, key := range r.prepOrder[:r.execIdx] {
			delete(r.entries, key)
			if key.view == r.view && key.seq > r.gcSeqFloor {
				r.gcSeqFloor = key.seq
			}
		}
		// Queued leased reads hold watermarks that index prepOrder; rebase
		// them with it or they can exceed len(prepOrder) forever and the
		// reads never flush. Every queued read has wm > execIdx (reads at or
		// below it were answered by the execute that advanced it), so the
		// rebased watermark stays positive.
		for i := range r.leaseReads {
			if r.leaseReads[i].wm >= r.execIdx {
				r.leaseReads[i].wm -= r.execIdx
			} else {
				r.leaseReads[i].wm = 0
			}
		}
		rest := make([]entryKey, len(r.prepOrder)-r.execIdx)
		copy(rest, r.prepOrder[r.execIdx:])
		r.prepOrder = rest
		r.execIdx = 0
	}

	for count := range r.ckptVotes {
		if count <= cert.Count {
			delete(r.ckptVotes, count)
		}
	}
	for count := range r.ownStates {
		if count <= cert.Count {
			delete(r.ownStates, count)
		}
	}

	if r.dataDir != "" {
		r.persistCheckpoint()
	}
	r.mx.ckptStable.Inc()
	r.mx.trace.Record("checkpoint-stable", "count %d stable (%d votes), logs GC'd", cert.Count, len(cert.Votes))
	r.updateFootprint()
}

// verifyCkptCertVotes checks a certificate's evidence: f+1 distinct member
// votes whose bodies state exactly (Count, Digest), each UI genuine.
func (r *Replica) verifyCkptCertVotes(cert ckptCert) error {
	if len(cert.Votes) < r.m.FPlusOne() {
		return fmt.Errorf("minbft: cert with %d votes", len(cert.Votes))
	}
	seen := make(map[types.ProcessID]bool, len(cert.Votes))
	batch := make([]trinc.Attested, 0, len(cert.Votes))
	encs := make([]*wire.Encoder, 0, len(cert.Votes))
	defer func() {
		for _, e := range encs {
			wire.PutEncoder(e)
		}
	}()
	for _, v := range cert.Votes {
		if seen[v.Sender] || !r.m.Contains(v.Sender) {
			return fmt.Errorf("minbft: bad cert voter %v", v.Sender)
		}
		seen[v.Sender] = true
		if v.UI.Trinket != v.Sender || v.UI.Counter != usigCounter {
			return fmt.Errorf("minbft: cert vote UI mismatch")
		}
		body, err := decodeCheckpointBody(v.Body)
		if err != nil || body.Count != cert.Count || body.Digest != cert.Digest {
			return fmt.Errorf("minbft: cert vote body mismatch")
		}
		e := wire.GetEncoder()
		appendUIBinding(e, kindCheckpoint, v.Body)
		encs = append(encs, e)
		batch = append(batch, trinc.Attested{Att: v.UI, Msg: e.Bytes()})
	}
	return r.ver.CheckMessages(batch)
}

// --- state transfer ---

// requestState starts (or escalates) a state fetch for a stable checkpoint
// at >= count, retried on a timer until our execution count catches up.
func (r *Replica) requestState(count uint64) {
	if count <= r.execCount || !r.ckptEnabled() {
		return
	}
	if r.stateTarget >= count {
		return // already chasing this or a later checkpoint
	}
	r.stateTarget = count
	r.rdyST.Store(true)
	r.broadcastStateFetch()
	r.afterTimeout(r.reqTimeout, timerEvent{kind: 's', seq: types.SeqNum(count)})
}

func (r *Replica) broadcastStateFetch() {
	body := encodeStateFetchBody(r.stateTarget)
	_ = transport.Broadcast(r.tr, r.m.Others(r.Self()), encodeEnvelope(kindStateFetch, body, nil))
}

func (r *Replica) handleStateFetch(from types.ProcessID, body []byte) {
	count, err := decodeStateFetchBody(body)
	if err != nil || !r.m.Contains(from) {
		return
	}
	if r.stable.Count == 0 || r.stable.Count < count || r.stableState == nil {
		return
	}
	r.sendStableState(from)
}

// sendStableState ships our stable checkpoint (cert + state) to one peer.
func (r *Replica) sendStableState(to types.ProcessID) {
	body := encodeStateRespBody(r.stable, r.stableState)
	_ = r.tr.Send(to, encodeEnvelope(kindStateResp, body, nil))
}

func (r *Replica) handleStateResp(body []byte) {
	cert, state, err := decodeStateRespBody(body, maxCertVotes)
	if err != nil {
		return
	}
	r.installCheckpoint(cert, state)
}

// installCheckpoint verifies and installs a stable checkpoint ahead of our
// execution: restore the state machine and client table, adopt the
// certificate, and advance each certificate member's UI cursor to its
// checkpoint attestation — everything below is subsumed by the installed
// state, and skipping it is omission (tolerated), never equivocation.
func (r *Replica) installCheckpoint(cert ckptCert, state []byte) {
	if !r.ckptEnabled() || cert.Count <= r.execCount {
		return
	}
	if r.verifyCkptCertVotes(cert) != nil {
		return
	}
	if sha256.Sum256(state) != cert.Digest {
		return
	}
	app, table, err := smr.DecodeCheckpointState(state)
	if err != nil {
		return
	}
	if r.snap.Restore(app) != nil {
		return
	}
	r.table = table
	r.execCount = cert.Count
	r.mx.stateTransfers.Inc()
	r.mx.trace.Record("state-transfer", "installed checkpoint count %d (%d bytes)", cert.Count, len(state))
	if r.stateTarget <= r.execCount {
		r.stateTarget = 0
		r.rdyST.Store(false)
	}
	// Adopt via advanceStable for the shared GC + persist path.
	r.advanceStable(cert, state)
	for _, v := range cert.Votes {
		if v.UI.Seq > r.lastUI[v.Sender] {
			buf := r.uiBuffer[v.Sender]
			for s := range buf {
				if s <= v.UI.Seq {
					delete(buf, s)
				}
			}
			r.lastUI[v.Sender] = v.UI.Seq
		}
	}
	for _, v := range cert.Votes {
		r.drainBuffer(v.Sender)
	}
	if r.pendingNV != nil && r.pendingNV.NewView > r.view {
		nv, raw := *r.pendingNV, r.pendingNVRaw
		r.pendingNV, r.pendingNVRaw = nil, nil
		r.installView(nv, raw)
	}
	r.updateFootprint()
}

// --- restart ---

// sendRestart announces an attested counter jump after a crash-restart:
// receivers advance their cursor for us past any attested-but-undelivered
// pre-crash messages (which would otherwise stall their per-peer ordered
// processing forever) and push the current NEW-VIEW and stable checkpoint
// back to help us rejoin.
func (r *Replica) sendRestart() {
	r.mx.trace.Record("restart", "announcing restart at count %d", r.execCount)
	_, _ = r.attestAndSend(kindRestart, encodeRestartBody(r.execCount))
}

func (r *Replica) handleRestart(from types.ProcessID, msg peerMsg) {
	count, err := decodeRestartBody(msg.body)
	if err != nil {
		return
	}
	// Help the rejoiner: current view evidence, then current state.
	if r.lastNVRaw != nil {
		_ = r.tr.Send(from, encodeEnvelope(kindFetchResp, r.lastNVRaw, nil))
	}
	if r.stable.Count > count && r.stableState != nil {
		r.sendStableState(from)
	}
}
