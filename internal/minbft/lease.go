package minbft

// Leader leases for the linearizable read fast path (DESIGN.md §8).
//
// The primary periodically broadcasts an attested LEASE-REQUEST; each backup
// answers with an attested LEASE-GRANT echoing the request's UI counter
// value — the grant is thereby bound to the grantor's trusted counter and
// totally ordered against every other message the grantor ever attests, in
// particular any later VIEW-CHANGE. Holding grants from all n replicas
// (including itself; only f+1 with UNIDIR_LEASE_QUORUM=fplus1, which is
// safe under crash and timing faults but not against a Byzantine grantor —
// see DESIGN.md §8), the primary answers reads locally until
// leaseSentAt + term − term/8, without touching the ordering path.
//
// Freshness: a read is served from the lease only once the execute index
// covers every slot that was in prepOrder when the read arrived. Any write
// acknowledged to a client before the read was issued has f+1 matching
// replies, so at least one correct replica executed it, so the unique
// lease-holding primary proposed it — it is in prepOrder. Reads that arrive
// before the watermark is covered wait in a bounded queue flushed by
// tryExecute.
//
// Exclusivity: a grantor promises not to send a VIEW-CHANGE until its
// promise horizon (receive time + term, which is at or after the primary's
// send time + term > the primary's expiry) has passed. startViewChange
// defers behind that promise; see the comment there for why deferring only
// the VIEW-CHANGE send suffices.

import (
	"time"

	"unidir/internal/smr"
	"unidir/internal/types"
)

// maxReadQueue bounds reads parked behind the execute watermark; overflow
// is answered as a fallback vote instead of queued (reads must never grow
// replica memory without bound).
const maxReadQueue = 8192

// pendingRead is one read waiting for the execute index to cover the
// prepOrder length captured at its arrival.
type pendingRead struct {
	wm  int
	req smr.ReadRequest
}

// leaseQuorum is how many grants (including the self-grant) hold a lease.
func (r *Replica) leaseQuorum() int {
	if r.leaseFull {
		return r.m.N
	}
	return r.m.FPlusOne()
}

// leaseValid reports whether this replica currently holds a usable lease.
// leaseUntil is the sole validity token: it is only ever set when a round
// reaches its grant quorum (noteGrant) and only cleared by revokeLease, so
// soliciting the next round never invalidates the current lease — a renewal
// gap must not flip reads to fallback votes, or a loaded leader whose grant
// replies queue behind its read backlog would spiral into permanent
// fallback (clients escalate fallback reads to broadcast, doubling load).
func (r *Replica) leaseValid(now time.Time) bool {
	return r.leaseTerm > 0 && !r.inVC && r.m.Leader(r.view) == r.Self() &&
		now.Before(r.leaseUntil)
}

// renewLease starts a new lease round: attest and broadcast a
// LEASE-REQUEST, reset the grant tally to the self-grant, and arm the next
// renewal at half the term so a healthy leader's lease never lapses.
// Called at startup (view-0 leader), from installView (a new leader), and
// from the 'l' renewal timer. Bails — without re-arming — when this replica
// is not the leader, a view change is in flight, or leases are disabled
// (installView restarts renewal when leadership returns). A failed
// attest/send, by contrast, must NOT stop the timer: the 'l' handler just
// cleared renewArmed, so the timer is re-armed before anything can fail, or
// one transient failure would silently end renewal until the next view
// change and strand every read on the fallback path.
func (r *Replica) renewLease() {
	if r.leaseTerm <= 0 || r.inVC || r.m.Leader(r.view) != r.Self() {
		return
	}
	if !r.renewArmed {
		r.renewArmed = true
		r.afterTimeout(r.leaseTerm/2, timerEvent{kind: 'l'})
	}
	now := time.Now()
	if !r.leaseUntil.IsZero() && !now.Before(r.leaseUntil) {
		// The previous lease lapsed before this renewal completed a round:
		// reads degraded to fallback votes in between.
		r.mx.leaseExpiries.Inc()
	}
	body := encodeLeaseRequestBody(r.view)
	ui, err := r.attestAndSend(kindLeaseRequest, body)
	if err != nil {
		return
	}
	r.leaseRound = ui.Seq
	r.leaseSentAt = now
	r.leaseGrants = make(map[types.ProcessID]bool)
	r.mx.leaseRenewals.Inc()
	// The self-grant carries the same promise any grantor makes.
	r.promiseGrant(now)
	r.noteGrant(r.Self())
}

// promiseGrant extends the grantor promise horizon: no VIEW-CHANGE from us
// until now + term. Receive time is at or after the primary's send time, so
// under bounded clock rate skew the promise outlasts the primary's lease
// (which additionally expires term/8 early).
func (r *Replica) promiseGrant(now time.Time) {
	if until := now.Add(r.leaseTerm); until.After(r.grantUntil) {
		r.grantUntil = until
	}
}

// noteGrant tallies one grant for the in-flight round; at quorum the lease
// extends to leaseSentAt + term − term/8. Each grantor in the quorum
// promised until its receive time + term >= leaseSentAt + term, so the
// extension stays inside every promise with a term/8 margin for clock rate
// skew.
func (r *Replica) noteGrant(from types.ProcessID) {
	if r.leaseGrants == nil {
		return
	}
	r.leaseGrants[from] = true
	if len(r.leaseGrants) >= r.leaseQuorum() {
		if until := r.leaseSentAt.Add(r.leaseTerm - r.leaseTerm/8); until.After(r.leaseUntil) {
			r.leaseUntil = until
		}
	}
}

// revokeLease drops any lease this replica holds and flushes queued leased
// reads as fallback votes (their watermark indexed the outgoing view's
// prepOrder). The grantor promise is deliberately left alone: it protects
// the old primary's reads and must run out on its own.
func (r *Replica) revokeLease() {
	r.leaseUntil = time.Time{}
	r.leaseRound = 0
	r.leaseGrants = nil
	r.failLeaseReads()
}

// handleLeaseRequest answers the primary's lease solicitation with an
// attested grant — unless a deferred view change is pending, in which case
// refusing new grants is what lets the primary's lease expire so the view
// change can proceed (livelock prevention).
func (r *Replica) handleLeaseRequest(from types.ProcessID, msg peerMsg) {
	view, err := decodeLeaseRequestBody(msg.body)
	if err != nil || r.leaseTerm <= 0 {
		return
	}
	if r.inVC || view != r.view || r.m.Leader(view) != from {
		return
	}
	if r.deferredVC > r.view {
		return // refusing to extend the lease we are waiting out
	}
	r.promiseGrant(time.Now())
	// Grants are broadcast, not sent point-to-point: every attested message
	// must reach every peer or their cursor for our trinket would gap.
	if _, err := r.attestAndSend(kindLeaseGrant, encodeLeaseGrantBody(view, msg.ui.Seq)); err != nil {
		return
	}
	r.mx.leaseGrants.Inc()
}

// handleLeaseGrant tallies a grantor's answer to our outstanding round.
func (r *Replica) handleLeaseGrant(from types.ProcessID, msg peerMsg) {
	view, reqSeq, err := decodeLeaseGrantBody(msg.body)
	if err != nil || r.leaseTerm <= 0 {
		return
	}
	if r.inVC || view != r.view || r.m.Leader(view) != r.Self() || reqSeq != r.leaseRound {
		return
	}
	r.noteGrant(from)
}

// grantExpired runs when the 'g' timer fires: the grantor promise horizon
// has (probably) passed, so a deferred view change may proceed — but only
// if the demand is still warranted (a request still pending, or f+1 peers
// still demanding it); the stall may have resolved itself while we waited.
func (r *Replica) grantExpired() {
	r.grantTimerArmed = false
	if r.deferredVC <= r.view || r.inVC {
		return
	}
	if hold := time.Until(r.grantUntil); hold > 0 {
		// A renewal landed while the timer was in flight; wait it out too.
		r.grantTimerArmed = true
		r.afterTimeout(hold, timerEvent{kind: 'g'})
		return
	}
	target := r.deferredVC
	r.deferredVC = 0
	if len(r.pending) > 0 || len(r.vcVotes[target]) >= r.m.FPlusOne() {
		r.startViewChange(target)
	}
}

// handleReadRequest serves one client read. With a valid lease the read is
// answered locally — immediately if the execute index already covers every
// slot proposed before it arrived, else after tryExecute catches up.
// Without one the read is answered as a fallback vote: the client gathers
// f+1 matching (code, executed count, result) votes instead.
func (r *Replica) handleReadRequest(body []byte) {
	if r.querier == nil {
		return
	}
	// A client whose read window refilled faster than a frame round-tripped
	// coalesces the backlog into one batch body (sentinel-discriminated).
	if reqs, err := smr.DecodeReadRequestBatch(body); err == nil {
		for _, req := range reqs {
			r.handleOneRead(req)
		}
		return
	}
	req, err := smr.DecodeReadRequest(body)
	if err != nil {
		return
	}
	r.handleOneRead(req)
}

func (r *Replica) handleOneRead(req smr.ReadRequest) {
	now := time.Now()
	if !r.leaseValid(now) {
		r.replyRead(req, smr.ReadFallback)
		return
	}
	wm := len(r.prepOrder)
	if r.execIdx >= wm {
		r.replyRead(req, smr.ReadLeased)
		return
	}
	if len(r.leaseReads) >= maxReadQueue {
		r.replyRead(req, smr.ReadFallback)
		return
	}
	r.leaseReads = append(r.leaseReads, pendingRead{wm: wm, req: req})
}

// replyRead queries the state machine and buffers the answer; replies
// accumulated while the run loop drains one event burst are sent as one
// frame per client by flushReadReplies, so a read burst costs the leader
// one send per client instead of one per read.
func (r *Replica) replyRead(req smr.ReadRequest, code byte) {
	rep := smr.ReadReply{
		Replica: r.Self(),
		Client:  req.Client,
		Num:     req.Num,
		Result:  r.querier.Query(req.Op),
		Code:    code,
		ExecSeq: r.execCount,
	}
	if r.readReplies == nil {
		r.readReplies = make(map[uint64][][]byte)
	}
	r.readReplies[req.Client] = append(r.readReplies[req.Client], rep.Encode())
	if code == smr.ReadLeased {
		r.mx.leasedReads.Inc()
	} else {
		r.mx.fallbackReads.Inc()
	}
}

// flushReadReplies sends the replies buffered during the current event
// burst: a lone reply goes out in its bare wire form (identical to the
// unbatched path), several to the same client coalesce into one batch
// frame.
func (r *Replica) flushReadReplies() {
	for c, reps := range r.readReplies {
		if len(reps) == 1 {
			_ = r.tr.Send(types.ProcessID(c), reps[0])
		} else {
			_ = r.tr.Send(types.ProcessID(c), smr.EncodeReadReplyBatch(reps))
		}
		delete(r.readReplies, c)
	}
}

// flushLeaseReads answers queued reads whose watermark the execute index
// now covers, re-checking lease validity per read (a lease that lapsed
// while the read waited degrades it to a fallback vote, never a stale
// leased answer).
func (r *Replica) flushLeaseReads() {
	if len(r.leaseReads) == 0 {
		return
	}
	now := time.Now()
	rest := r.leaseReads[:0]
	for _, pr := range r.leaseReads {
		if r.execIdx < pr.wm {
			rest = append(rest, pr)
			continue
		}
		if r.leaseValid(now) {
			r.replyRead(pr.req, smr.ReadLeased)
		} else {
			r.replyRead(pr.req, smr.ReadFallback)
		}
	}
	r.leaseReads = rest
}

// failLeaseReads flushes every queued read as a fallback vote.
func (r *Replica) failLeaseReads() {
	reads := r.leaseReads
	r.leaseReads = nil
	for _, pr := range reads {
		r.replyRead(pr.req, smr.ReadFallback)
	}
}
