package minbft_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"unidir/internal/byz"
	"unidir/internal/minbft"
	"unidir/internal/smr"
	"unidir/internal/types"
)

// TestOverloadSoak drives the pipelined client flat-out past saturation —
// window well above the replicas' admission bound — while a Byzantine
// spammer floods every replica with garbage. The flow-control contract
// under that abuse:
//
//   - pending queues stay bounded (the admission bound actually engages),
//   - shed requests surface as the typed, retryable smr.ErrOverloaded and
//     nothing else fails,
//   - the cluster never wedges: every submitted call completes, and
//   - it recovers: a clean closed-loop tail succeeds once the storm stops.
func TestOverloadSoak(t *testing.T) {
	const (
		n, f       = 3, 1
		maxPending = 32
		window     = 128
		ops        = 1500
	)
	// Endpoint n is the pipeline, n+1 the spammer, n+2 the tail client.
	h := newHarness(t, n, f, 3, time.Second,
		minbft.WithBatchSize(8),
		minbft.WithBatchDeadline(100*time.Microsecond),
		minbft.WithAdmission(smr.AdmissionConfig{MaxPending: maxPending}))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	spam := byz.NewSpammer(h.net.Endpoint(types.ProcessID(n+1)),
		h.m.All(), 101, 2*time.Millisecond)
	defer spam.Stop()

	// Sample the pending-depth gauges while the storm runs; the admission
	// bound must hold at every instant, not just at the end.
	var maxDepth atomic.Int64
	sampleDone := make(chan struct{})
	sampleStopped := make(chan struct{})
	go func() {
		defer close(sampleStopped)
		for {
			select {
			case <-sampleDone:
				return
			case <-time.After(2 * time.Millisecond):
			}
			snap := h.metrics.Snapshot()
			if d := snap.GaugeSum("minbft_pending_requests"); d > maxDepth.Load() {
				maxDepth.Store(d)
			}
		}
	}()

	pipeID := types.ProcessID(n)
	pl, err := smr.NewPipeline(h.net.Endpoint(pipeID), h.m.All(), h.m.FPlusOne(),
		uint64(pipeID), 100*time.Millisecond, window,
		smr.WithPipelineRequestEncoder(minbft.EncodeRequestEnvelope),
		smr.WithSubmitTimeout(2*time.Millisecond),
		smr.WithAdaptiveWindow(4))
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	defer pl.Close()

	var calls []*smr.Call
	var submitSheds int
	for i := 0; i < ops; i++ {
		op := []byte(fmt.Sprintf("overload-%d", i))
		call, err := pl.Submit(ctx, op)
		switch {
		case err == nil:
			calls = append(calls, call)
		case errors.Is(err, smr.ErrOverloaded):
			submitSheds++
		default:
			t.Fatalf("Submit %d: unexpected error %v", i, err)
		}
	}
	var completed, replicaSheds int
	for i, call := range calls {
		_, err := call.Result()
		switch {
		case err == nil:
			completed++
		case errors.Is(err, smr.ErrOverloaded):
			replicaSheds++
		default:
			t.Fatalf("call %d: unexpected error %v", i, err)
		}
	}
	close(sampleDone)
	<-sampleStopped
	spam.Stop()

	t.Logf("completed=%d submitSheds=%d replicaSheds=%d window=%d maxPendingDepth=%d",
		completed, submitSheds, replicaSheds, pl.Window(), maxDepth.Load())
	if completed == 0 {
		t.Fatal("no request completed under overload")
	}
	if submitSheds+replicaSheds == 0 {
		t.Fatal("overload shed nothing; the soak never saturated the stack")
	}
	if got := completed + replicaSheds + submitSheds; got != ops {
		t.Fatalf("accounted for %d of %d requests", got, ops)
	}
	// Every replica applies the same bound; the summed gauge can reach at
	// most n * maxPending, plus whatever each event loop had already pulled
	// off its inbound queue when a sample landed. The point is the order of
	// magnitude: without admission control the backlog would be the full
	// offered load.
	if limit := int64(n * maxPending); maxDepth.Load() > limit {
		t.Fatalf("pending depth reached %d, admission bound is %d", maxDepth.Load(), limit)
	}
	if spam.Sent() == 0 {
		t.Fatal("spammer sent nothing; the soak exercised no byzantine traffic")
	}
	snap := h.metrics.Snapshot()
	if submitSheds == 0 && snap.CounterSum("minbft_requests_shed_total") == 0 {
		t.Fatal("metrics: no replica-side sheds recorded")
	}

	// Recovery: with the storm over, a clean closed-loop tail must commit.
	kv := h.client(2)
	for i := 0; i < 5; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("recovery-%d", i), []byte{byte(i)}); err != nil {
			t.Fatalf("no recovery after overload: Put %d: %v", i, err)
		}
	}
	checkNoDoubleExecution(t, h, nil)
	checkLogsMutuallyOrdered(t, h)
}
