package minbft

// Distributed tracing: the replica's side of the request lifecycle. The
// pipeline client makes the head-sampling decision and propagates a
// client-submit context with each request; here the primary records
// batch-wait (request arrival to batch formation), opens a batch trace for
// any batch carrying a sampled request (propose span with links back to the
// member requests, a ui-attest child around the USIG call), and every
// replica that sees the batch context records commit-quorum and execute.
// Replies close the loop back on the request's own trace. Without
// WithTracer — or for the unsampled majority of requests — every recording
// site below is one nil-check.

import (
	"fmt"
	"time"

	"unidir/internal/obs/tracing"
	"unidir/internal/smr"
	"unidir/internal/transport"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// WithTracer attaches a distributed tracer. Spans land in the tracer's
// SpanBuffer; the harness collector (internal/harness) merges buffers across
// replicas into per-request latency breakdowns.
func WithTracer(t *tracing.Tracer) Option {
	return func(r *Replica) { r.tracer = t }
}

// reqTraceInfo remembers a sampled request between arrival and execution:
// the propagated context (for parenting batch-wait and reply spans) and the
// arrival instant (batch-wait is backdated to it at propose time).
type reqTraceInfo struct {
	tc      tracing.Context
	arrived time.Time
}

// noteRequest records a sampled request's arrival. Every replica keeps the
// entry — backups need it for their reply spans — and execute() retires it.
func (r *Replica) noteRequest(key pendingKey, tc tracing.Context) {
	if r.tracer == nil || !tc.Sampled {
		return
	}
	r.reqTrace[key] = reqTraceInfo{tc: tc, arrived: time.Now()}
}

// startProposeSpan opens the batch trace if at least one member request is
// sampled: each sampled member gets its batch-wait span (arrival to now, on
// the request's own trace), and the returned propose span links them all.
// Returns nil — zero downstream cost — for fully unsampled batches.
func (r *Replica) startProposeSpan(batch []smr.Request) *tracing.Active {
	if r.tracer == nil {
		return nil
	}
	var infos []reqTraceInfo
	for _, req := range batch {
		if info, ok := r.reqTrace[pendingKey{req.Client, req.Num}]; ok {
			infos = append(infos, info)
		}
	}
	if len(infos) == 0 {
		return nil
	}
	// Batch-wait spans end before the propose span opens: the phases must
	// stay disjoint for the breakdown to partition client latency.
	for _, info := range infos {
		r.tracer.StartAt("batch-wait", info.tc, info.arrived).End()
	}
	span := r.tracer.Fork("propose")
	for _, info := range infos {
		span.Link(info.tc)
	}
	return span
}

// attestAndSendTraced is attestAndSend with the batch span threaded through:
// the USIG call gets a ui-attest child span, and the broadcast carries the
// batch context so backups join the batch trace. A nil span degrades to the
// plain path (zero-context sends are byte-identical to pre-tracing frames).
func (r *Replica) attestAndSendTraced(kind byte, body []byte, span *tracing.Active) (trinc.Attestation, error) {
	tc := span.Context()
	att := r.tracer.Start("ui-attest", tc)
	next := r.dev.LastAttested(usigCounter) + 1
	e := wire.GetEncoder()
	appendUIBinding(e, kind, body)
	ui, err := r.dev.Attest(usigCounter, next, e.Bytes())
	wire.PutEncoder(e)
	att.End()
	if err != nil {
		return trinc.Attestation{}, fmt.Errorf("minbft: usig attest: %w", err)
	}
	payload := encodeEnvelope(kind, body, &ui)
	if err := transport.BroadcastTraced(r.tr, r.m.Others(r.Self()), payload, tc); err != nil {
		return trinc.Attestation{}, fmt.Errorf("minbft: broadcast: %w", err)
	}
	// Retain own sends so lagging peers can gap-fill from us directly.
	r.storeMsg(r.Self(), ui.Seq, peerMsg{kind: kind, body: body, ui: ui})
	return ui, nil
}

// bindEntryTrace attaches the batch context to a freshly bound entry and
// opens its commit-quorum span (prepare acceptance to quorum) — on the
// primary btc is the propose span's context, on backups the context that
// arrived with the PREPARE frame.
func (r *Replica) bindEntryTrace(en *entry, btc tracing.Context) {
	if r.tracer == nil || !btc.Sampled {
		return
	}
	en.btc = btc
	en.quorumSpan = r.tracer.Start("commit-quorum", btc)
}

// finishEntrySpans closes the entry's commit-quorum span and returns the
// execute span to wrap the batch's application (nil when untraced). While
// the execute span is open, traced replies are deferred (flushReplies sends
// them after it closes): the breakdown's phases must partition the
// client-observed latency, so the reply span cannot nest inside execute.
func (r *Replica) finishEntrySpans(en *entry) *tracing.Active {
	en.quorumSpan.End()
	en.quorumSpan = nil
	sp := r.tracer.Start("execute", en.btc)
	r.deferReplies = sp != nil
	return sp
}

// deferredReply is a traced reply held back until the batch's execute span
// closes.
type deferredReply struct {
	tc     tracing.Context
	req    smr.Request
	result []byte
}

// flushReplies sends the traced replies deferred during batch execution.
func (r *Replica) flushReplies() {
	r.deferReplies = false
	for _, d := range r.deferred {
		r.sendTracedReply(d)
	}
	r.deferred = r.deferred[:0]
}

// tracedReply sends the reply inside a reply span on the request's own
// trace, retiring the request's trace record.
func (r *Replica) tracedReply(key pendingKey, req smr.Request, result []byte) {
	info, ok := r.reqTrace[key]
	if !ok {
		r.reply(req, result)
		return
	}
	delete(r.reqTrace, key)
	d := deferredReply{tc: info.tc, req: req, result: result}
	if r.deferReplies {
		r.deferred = append(r.deferred, d)
		return
	}
	r.sendTracedReply(d)
}

func (r *Replica) sendTracedReply(d deferredReply) {
	sp := r.tracer.Start("reply", d.tc)
	rep := smr.Reply{Replica: r.Self(), Client: d.req.Client, Num: d.req.Num, Result: d.result}
	_ = transport.SendTraced(r.tr, types.ProcessID(d.req.Client), rep.Encode(), d.tc)
	sp.End()
}

// Ready reports whether the replica is serving normally: view-active (no
// view change in progress) and state-transfer idle. It is safe from any
// goroutine and backs the /readyz endpoint.
func (r *Replica) Ready() bool {
	return !r.rdyVC.Load() && !r.rdyST.Load()
}
