package minbft

// Crash-restart persistence: the replica's latest stable checkpoint, kept
// as one small file under the data dir and replaced atomically (write to a
// temp file, rename). Only ever written after the checkpoint is stable —
// f+1 attested votes travel inside the file — so whatever a restarted
// replica finds here is verifiable on its own, exactly like a state-transfer
// response from a peer: loadCheckpoint re-runs the same certificate and
// digest checks before trusting the bytes.
//
// The file is deliberately the only replica-owned persistence. The trusted
// counter lives in the device's WAL (trinc.Device.Persist + ctrstore),
// written on the attest path; losing the checkpoint file merely restarts
// the replica further behind (state transfer covers the difference), while
// the counter WAL is what upholds the no-equivocation guarantee across
// restarts.

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"

	"unidir/internal/smr"
	"unidir/internal/types"
	"unidir/internal/wire"
)

const (
	ckptFileName = "checkpoint.bin"
	ckptMagic    = "unidir/minbft/ckpt/v1"
)

func (r *Replica) ckptPath() string { return filepath.Join(r.dataDir, ckptFileName) }

// persistCheckpoint atomically replaces the on-disk stable checkpoint with
// the current one. Best-effort: a failure leaves the previous file, which
// is stale but safe (the restart just begins further behind).
func (r *Replica) persistCheckpoint() {
	if r.dataDir == "" || r.stable.Count == 0 || r.stableState == nil {
		return
	}
	e := wire.NewEncoder(256 + len(r.stableState))
	e.String(ckptMagic)
	e.Uint64(uint64(r.view))
	encodeCkptCert(e, r.stable)
	e.BytesField(r.stableState)

	tmp := r.ckptPath() + ".tmp"
	if err := os.WriteFile(tmp, e.Bytes(), 0o600); err != nil {
		return
	}
	_ = os.Rename(tmp, r.ckptPath())
}

// loadCheckpoint rehydrates the replica from the data dir, reporting whether
// a checkpoint was installed. A missing file is a fresh start; a corrupt or
// unverifiable file is an error (operator attention beats silently starting
// from empty state with a counter that has already advanced).
func (r *Replica) loadCheckpoint() (bool, error) {
	b, err := os.ReadFile(r.ckptPath())
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("minbft: read checkpoint: %w", err)
	}
	d := wire.NewDecoder(b)
	if magic := d.String(); magic != ckptMagic {
		return false, fmt.Errorf("minbft: checkpoint file magic %q", magic)
	}
	view := types.View(d.Uint64())
	cert, err := decodeCkptCert(d, maxCertVotes)
	if err != nil {
		return false, fmt.Errorf("minbft: decode checkpoint file: %w", err)
	}
	state := append([]byte(nil), d.BytesField()...)
	if err := d.Finish(); err != nil {
		return false, fmt.Errorf("minbft: decode checkpoint file: %w", err)
	}
	if err := r.verifyCkptCertVotes(cert); err != nil {
		return false, fmt.Errorf("minbft: checkpoint file cert: %w", err)
	}
	if sha256.Sum256(state) != cert.Digest {
		return false, fmt.Errorf("minbft: checkpoint file state does not match cert digest")
	}
	app, table, err := smr.DecodeCheckpointState(state)
	if err != nil {
		return false, fmt.Errorf("minbft: checkpoint file state: %w", err)
	}
	if err := r.snap.Restore(app); err != nil {
		return false, fmt.Errorf("minbft: restore checkpoint state: %w", err)
	}
	r.table = table
	r.view = view
	r.stable = cert
	r.stableState = state
	r.execCount = cert.Count
	// Cursors resume from the certificate's vote attestations, not from
	// wherever they were at crash time: everything at or below a voter's
	// checkpoint attestation is subsumed by the installed state, while
	// messages between the checkpoint and the crash must be re-processed
	// (or re-fetched), which lower cursors arrange naturally.
	for _, v := range cert.Votes {
		if v.UI.Seq > r.lastUI[v.Sender] {
			r.lastUI[v.Sender] = v.UI.Seq
		}
	}
	return true, nil
}
