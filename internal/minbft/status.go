package minbft

import (
	"encoding/hex"
	"time"

	"unidir/internal/obs"
)

// statusTimeout bounds how long Status waits for the run goroutine. A
// healthy replica answers in microseconds; a wedged one must not wedge its
// monitors too, so past the deadline Status degrades to a stale snapshot.
const statusTimeout = 2 * time.Second

// Status implements obs.StatusProvider. The snapshot is assembled on the
// run goroutine — a status request rides the ordinary event queue — so
// every field belongs to one consistent cut of protocol state: the view,
// checkpoint, and watermarks can never be torn across a concurrent view
// change. When the replica is closed or does not answer within
// statusTimeout, a degraded snapshot (Stale: true, counters zero) built
// from the concurrency-safe mirrors is returned instead; the watch
// auditor's monotonicity rules skip stale samples.
func (r *Replica) Status() obs.Status {
	ch := make(chan obs.Status, 1)
	if r.events.Push(event{status: ch}) {
		select {
		case st := <-ch:
			return st
		case <-time.After(statusTimeout):
		}
	}
	ready, reason := r.ReadyReason()
	return obs.Status{
		Protocol:    "minbft",
		Replica:     int(r.Self()),
		View:        uint64(r.View()),
		Ready:       ready,
		ReadyReason: reason,
		Stale:       true,
		TrustedCounters: map[string]uint64{
			"usig": uint64(r.dev.LastAttested(usigCounter)),
		},
	}
}

// ReadyReason is Ready with the name of the failing probe, for /readyz
// bodies. Safe from any goroutine (atomic mirrors of inVC / stateTarget).
func (r *Replica) ReadyReason() (bool, string) {
	switch {
	case r.rdyVC.Load():
		return false, "view change in progress"
	case r.rdyST.Load():
		return false, "state transfer in progress"
	}
	return true, ""
}

// buildStatus runs on the run goroutine (the ev.status case in run).
func (r *Replica) buildStatus() obs.Status {
	now := time.Now()
	st := obs.Status{
		Protocol:         "minbft",
		Replica:          int(r.Self()),
		View:             uint64(r.view),
		ExecCount:        r.execCount,
		ProposedBatches:  r.proposedCount,
		ExecutedRequests: r.executedReqCount,
		PendingRequests:  len(r.pending),
		OpenSlots:        len(r.prepOrder) - r.execIdx,
		InFlightBatches:  r.inFlight,
		QueuedReads:      len(r.leaseReads),
		TrustedCounters: map[string]uint64{
			"usig": uint64(r.dev.LastAttested(usigCounter)),
		},
	}
	switch {
	case r.inVC:
		st.ReadyReason = "view change in progress"
	case r.stateTarget != 0:
		st.ReadyReason = "state transfer in progress"
	default:
		st.Ready = true
	}
	if r.stable.Count > 0 {
		st.Checkpoint = &obs.CheckpointStatus{
			Count:  r.stable.Count,
			Digest: hex.EncodeToString(r.stable.Digest[:]),
		}
	}
	// Only the holder reports a lease: a grantor's promise is not mutual
	// exclusion, and the auditor counts holders per (shard, term).
	if r.leaseValid(now) {
		st.Lease = &obs.LeaseStatus{
			Holder:      int(r.Self()),
			Term:        uint64(r.view),
			ExpiresInMS: r.leaseUntil.Sub(now).Milliseconds(),
		}
	}
	return st
}
