package minbft_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"unidir/internal/kvstore"
	"unidir/internal/minbft"
	"unidir/internal/obs"
	"unidir/internal/sig"
	"unidir/internal/simnet"
	"unidir/internal/smr"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

// harness is a running MinBFT cluster over simnet with client endpoints.
type harness struct {
	t        *testing.T
	m        types.Membership // replica membership
	net      *simnet.Network  // replicas 0..n-1, clients n..n+clients-1
	replicas []*minbft.Replica
	stores   []*kvstore.Store
	logs     []*smr.ExecutionLog
	metrics  *obs.Registry // shared by every replica
}

func newHarness(t *testing.T, n, f, clients int, timeout time.Duration, opts ...minbft.Option) *harness {
	t.Helper()
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	netM, err := types.NewMembership(n+clients, f)
	if err != nil {
		t.Fatalf("net membership: %v", err)
	}
	net, err := simnet.New(netM)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatalf("trinc universe: %v", err)
	}
	h := &harness{
		t:        t,
		m:        m,
		net:      net,
		replicas: make([]*minbft.Replica, n),
		stores:   make([]*kvstore.Store, n),
		logs:     make([]*smr.ExecutionLog, n),
		metrics:  obs.NewRegistry(),
	}
	tu.Verifier.FastPath().AttachMetrics(h.metrics)
	for i := 0; i < n; i++ {
		h.stores[i] = kvstore.New()
		h.logs[i] = &smr.ExecutionLog{}
		all := append([]minbft.Option{minbft.WithRequestTimeout(timeout),
			minbft.WithExecutionLog(h.logs[i]), minbft.WithMetrics(h.metrics)}, opts...)
		rep, err := minbft.New(m, net.Endpoint(types.ProcessID(i)), tu.Devices[i], tu.Verifier, h.stores[i], all...)
		if err != nil {
			t.Fatalf("minbft.New: %v", err)
		}
		h.replicas[i] = rep
	}
	t.Cleanup(func() {
		for _, r := range h.replicas {
			if r != nil {
				_ = r.Close()
			}
		}
		net.Close()
	})
	return h
}

// client returns a KV client on endpoint n+idx.
func (h *harness) client(idx int) *kvstore.Client {
	h.t.Helper()
	id := types.ProcessID(h.m.N + idx)
	c, err := smr.NewClient(h.net.Endpoint(id), h.m.All(), h.m.FPlusOne(), uint64(id), 100*time.Millisecond,
		smr.WithRequestEncoder(minbft.EncodeRequestEnvelope))
	if err != nil {
		h.t.Fatalf("NewClient: %v", err)
	}
	return kvstore.NewClient(c)
}

// checkLogsConsistent verifies replicas executed prefix-consistent
// sequences.
func (h *harness) checkLogsConsistent(skip map[int]bool) {
	h.t.Helper()
	var ref [][]byte
	refSet := false
	for i, log := range h.logs {
		if skip[i] {
			continue
		}
		snap := log.Snapshot()
		if !refSet {
			ref, refSet = snap, true
			continue
		}
		if err := smr.CheckPrefix(ref, snap); err != nil {
			h.t.Fatalf("replica %d: %v", i, err)
		}
	}
}

func TestHappyPathKV(t *testing.T) {
	h := newHarness(t, 3, 1, 1, 2*time.Second)
	kv := h.client(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	if err := kv.Put(ctx, "alpha", []byte("1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := kv.Get(ctx, "alpha")
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := kv.Put(ctx, "alpha", []byte("2")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if v, err = kv.Get(ctx, "alpha"); err != nil || string(v) != "2" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := kv.Del(ctx, "alpha"); err != nil {
		t.Fatalf("Del: %v", err)
	}
	if _, err := kv.Get(ctx, "alpha"); err != kvstore.ErrNotFound {
		t.Fatalf("Get after Del err = %v", err)
	}
	h.checkLogsConsistent(nil)
}

func TestConcurrentClients(t *testing.T) {
	h := newHarness(t, 3, 1, 4, 2*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			kv := h.client(c)
			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("c%d-k%d", c, i)
				if err := kv.Put(ctx, key, []byte{byte(i)}); err != nil {
					errs[c] = fmt.Errorf("put %s: %w", key, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// All 40 writes executed everywhere, in the same order.
	deadline := time.Now().Add(10 * time.Second)
	for _, log := range h.logs {
		for len(log.Snapshot()) < 40 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
	}
	h.checkLogsConsistent(nil)
	for i, log := range h.logs {
		if got := len(log.Snapshot()); got != 40 {
			t.Fatalf("replica %d executed %d commands, want 40", i, got)
		}
	}
}

func TestProgressWithBackupCrashed(t *testing.T) {
	h := newHarness(t, 3, 1, 1, 2*time.Second)
	// Crash a backup (replica 2). Primary 0 plus backup 1 are f+1 = 2.
	_ = h.replicas[2].Close()
	h.replicas[2] = nil

	kv := h.client(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := kv.Put(ctx, "survives", []byte("yes")); err != nil {
		t.Fatalf("Put with crashed backup: %v", err)
	}
	v, err := kv.Get(ctx, "survives")
	if err != nil || string(v) != "yes" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	h.checkLogsConsistent(map[int]bool{2: true})
}

func TestViewChangeOnPrimaryCrash(t *testing.T) {
	h := newHarness(t, 3, 1, 1, 150*time.Millisecond)
	kv := h.client(0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Commit something in view 0 first.
	if err := kv.Put(ctx, "pre", []byte("crash")); err != nil {
		t.Fatalf("Put: %v", err)
	}

	// Crash the view-0 primary.
	_ = h.replicas[0].Close()
	h.replicas[0] = nil

	// The next request must drive a view change and still commit.
	if err := kv.Put(ctx, "post", []byte("recovered")); err != nil {
		t.Fatalf("Put after primary crash: %v", err)
	}
	v, err := kv.Get(ctx, "post")
	if err != nil || string(v) != "recovered" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	// Pre-crash state must have survived the view change.
	v, err = kv.Get(ctx, "pre")
	if err != nil || string(v) != "crash" {
		t.Fatalf("Get(pre) = %q, %v", v, err)
	}
	for _, i := range []int{1, 2} {
		if got := h.replicas[i].View(); got < 1 {
			t.Fatalf("replica %d still in view %d", i, got)
		}
	}
	h.checkLogsConsistent(map[int]bool{0: true})
}

func TestSuccessiveViewChanges(t *testing.T) {
	// With replicas 0 and then 1 crashed... n=3 f=1 cannot survive two
	// crashes; instead run n=5, f=2 and crash primaries of views 0 and 1.
	h := newHarness(t, 5, 2, 1, 150*time.Millisecond)
	kv := h.client(0)
	ctx, cancel := context.WithTimeout(context.Background(), 45*time.Second)
	defer cancel()

	if err := kv.Put(ctx, "v0", []byte("a")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	_ = h.replicas[0].Close()
	h.replicas[0] = nil
	if err := kv.Put(ctx, "v1", []byte("b")); err != nil {
		t.Fatalf("Put after first crash: %v", err)
	}
	_ = h.replicas[1].Close()
	h.replicas[1] = nil
	if err := kv.Put(ctx, "v2", []byte("c")); err != nil {
		t.Fatalf("Put after second crash: %v", err)
	}
	for _, key := range []string{"v0", "v1", "v2"} {
		if _, err := kv.Get(ctx, key); err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
	}
	h.checkLogsConsistent(map[int]bool{0: true, 1: true})
}

func TestLargerCluster(t *testing.T) {
	h := newHarness(t, 7, 3, 2, 2*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	kv1, kv2 := h.client(0), h.client(1)
	for i := 0; i < 5; i++ {
		if err := kv1.Put(ctx, fmt.Sprintf("a%d", i), []byte("x")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := kv2.Put(ctx, fmt.Sprintf("b%d", i), []byte("y")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	h.checkLogsConsistent(nil)
}

func TestResilienceBound(t *testing.T) {
	m, _ := types.NewMembership(4, 2) // 2f+1 = 5 > 4
	net, err := simnet.New(m)
	if err != nil {
		t.Fatalf("simnet: %v", err)
	}
	defer net.Close()
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	if _, err := minbft.New(m, net.Endpoint(0), tu.Devices[0], tu.Verifier, kvstore.New()); err == nil {
		t.Fatal("minbft accepted n < 2f+1")
	}
}
