package minbft_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"unidir/internal/kvstore"
	"unidir/internal/minbft"
	"unidir/internal/smr"
	"unidir/internal/types"
)

// waitFootprint polls every non-skipped replica until pred accepts its
// footprint or the deadline passes.
func waitFootprint(t *testing.T, h *harness, skip map[int]bool, d time.Duration, pred func(minbft.Footprint) bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for i, rep := range h.replicas {
		if skip[i] || rep == nil {
			continue
		}
		for !pred(rep.Footprint()) {
			if time.Now().After(deadline) {
				t.Fatalf("replica %d footprint never converged: %+v", i, rep.Footprint())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// logContainsOp reports whether any entry of log decodes to a request with
// exactly this operation.
func logContainsOp(t *testing.T, log *smr.ExecutionLog, op []byte) bool {
	t.Helper()
	for _, cmd := range log.Snapshot() {
		req, err := smr.DecodeRequest(cmd)
		if err != nil {
			t.Fatalf("undecodable log entry: %v", err)
		}
		if bytes.Equal(req.Op, op) {
			return true
		}
	}
	return false
}

func TestCheckpointGCBoundsState(t *testing.T) {
	const interval = 4
	h := newHarness(t, 3, 1, 1, 2*time.Second, minbft.WithCheckpointInterval(interval))
	kv := h.client(0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const ops = 24
	for i := 0; i < ops; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("gc-%d", i), []byte{byte(i)}); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	// With a closed-loop client every batch holds exactly one fresh request,
	// so execution counts match ops and the final boundary is ops itself.
	waitFootprint(t, h, nil, 10*time.Second, func(fp minbft.Footprint) bool {
		return fp.StableCount >= ops-interval
	})
	for i, rep := range h.replicas {
		fp := rep.Footprint()
		// Everything at or below the stable checkpoint is released: the
		// retained accepted-prepare log and slot records must stay far below
		// the 24 slots the run committed.
		if fp.AcceptedLog > 3*interval || fp.Entries > 3*interval {
			t.Fatalf("replica %d retains too much after GC: %+v", i, fp)
		}
		// The message store keeps a two-interval window for the fetch
		// protocol; it must not scale with run length.
		if fp.MsgStore > 20*interval {
			t.Fatalf("replica %d message store unbounded: %+v", i, fp)
		}
	}
	h.checkLogsConsistent(nil)
	checkNoDoubleExecution(t, h, nil)
}

func TestStateTransferAfterGC(t *testing.T) {
	const interval = 2
	h := newHarness(t, 3, 1, 1, 2*time.Second, minbft.WithCheckpointInterval(interval))
	kv := h.client(0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Cut replica 2 off from both peers while the rest of the cluster
	// commits far past the GC horizon (the watermark trails the stable
	// checkpoint by one interval, so > 2 intervals of progress guarantees
	// the prefix replica 2 misses is collected everywhere).
	h.net.BlockPair(2, 0)
	h.net.BlockPair(2, 1)
	for i := 0; i < 12; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("away-%d", i), []byte{byte(i)}); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	h.net.HealAll()

	// Post-heal traffic carries checkpoint votes beyond replica 2's
	// execution; f+1 of them (or a fetch hitting the collected prefix)
	// trigger the state fetch, and the install lands it at the cluster's
	// stable count.
	for i := 0; i < 6; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("back-%d", i), []byte{byte(i)}); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	waitFootprint(t, h, nil, 20*time.Second, func(fp minbft.Footprint) bool {
		return fp.StableCount >= 12
	})

	// Replica 2 must also execute *new* slots after the transfer, not just
	// hold installed state.
	rejoinOp := kvstore.EncodePut("rejoined", []byte("yes"))
	if err := kv.Put(ctx, "rejoined", []byte("yes")); err != nil {
		t.Fatalf("Put rejoined: %v", err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for !logContainsOp(t, h.logs[2], rejoinOp) {
		if time.Now().After(deadline) {
			t.Fatal("replica 2 never executed a post-transfer request")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The transferred replica's execution log legitimately skips the slots
	// it received as state, so prefix-check only the replicas that executed
	// everything; no replica may execute anything twice.
	h.checkLogsConsistent(map[int]bool{2: true})
	checkNoDoubleExecution(t, h, nil)
}

// TestBoundedHeapLongRun drives 10k operations through a batching primary
// with the default-sized interval and asserts the retained protocol state
// stays bounded by the checkpoint window rather than growing with the run.
func TestBoundedHeapLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long run")
	}
	const (
		interval = 128
		ops      = 10000
		window   = 32
	)
	h := newHarness(t, 3, 1, 1, 5*time.Second,
		minbft.WithCheckpointInterval(interval), minbft.WithBatchSize(8))
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	id := types.ProcessID(h.m.N)
	p, err := smr.NewPipeline(h.net.Endpoint(id), h.m.All(), h.m.FPlusOne(), uint64(id),
		100*time.Millisecond, window, smr.WithPipelineRequestEncoder(minbft.EncodeRequestEnvelope))
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	defer p.Close()
	kv := kvstore.NewPipeClient(p)

	calls := make([]*smr.Call, 0, ops)
	for i := 0; i < ops; i++ {
		c, err := kv.PutAsync(ctx, fmt.Sprintf("k%04d", i%512), []byte{byte(i)})
		if err != nil {
			t.Fatalf("PutAsync %d: %v", i, err)
		}
		calls = append(calls, c)
	}
	for i, c := range calls {
		<-c.Done()
		if _, err := c.Result(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}

	// At least ops/batch batches executed, so the stable checkpoint must
	// have crossed many interval boundaries; the retained state must be a
	// function of the interval, not of the 10k-op history.
	waitFootprint(t, h, nil, 30*time.Second, func(fp minbft.Footprint) bool {
		return fp.StableCount >= 1024
	})
	for i, rep := range h.replicas {
		fp := rep.Footprint()
		if fp.AcceptedLog > 4*interval || fp.Entries > 4*interval {
			t.Fatalf("replica %d heap grows with run length: %+v", i, fp)
		}
		if fp.MsgStore > 40*interval {
			t.Fatalf("replica %d message store grows with run length: %+v", i, fp)
		}
	}
	h.checkLogsConsistent(nil)
	checkNoDoubleExecution(t, h, nil)
}
