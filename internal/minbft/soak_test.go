package minbft_test

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"testing"
	"time"

	"unidir/internal/byz"
	"unidir/internal/minbft"
	"unidir/internal/obs"
	"unidir/internal/types"
	"unidir/internal/watch"
)

// checkLogsMutuallyOrdered verifies pairwise that commands present in two
// replicas' logs appear in the same relative order. This is the safety
// property that survives state transfer: a replica that installed a
// checkpoint legitimately has a gap in its execution log (the transferred
// prefix was never executed locally), so prefix equality is too strong, but
// the common subsequence must still agree with the total order.
func checkLogsMutuallyOrdered(t *testing.T, h *harness) {
	t.Helper()
	snaps := make([][][]byte, len(h.logs))
	for i, log := range h.logs {
		snaps[i] = log.Snapshot()
	}
	for a := 0; a < len(snaps); a++ {
		index := make(map[string]int, len(snaps[a]))
		for i, cmd := range snaps[a] {
			index[string(cmd)] = i
		}
		for b := a + 1; b < len(snaps); b++ {
			prev := -1
			for _, cmd := range snaps[b] {
				i, ok := index[string(cmd)]
				if !ok {
					continue
				}
				if i <= prev {
					t.Fatalf("replicas %d and %d ordered a common command differently", a, b)
				}
				prev = i
			}
		}
	}
}

// TestSoak runs batched MinBFT through sustained fault injection: a lossy
// network, rolling single-link partitions, and a Byzantine spammer flooding
// every replica with garbage. The cluster must not stall — every request
// completes — and the usual safety checkers must stay green.
func TestSoak(t *testing.T) {
	const (
		n, f     = 3, 1
		interval = 8
		ops      = 150
	)
	// Endpoint n is the client, endpoint n+1 the spammer.
	h := newHarness(t, n, f, 2, 500*time.Millisecond,
		minbft.WithCheckpointInterval(interval), minbft.WithBatchSize(4))
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				h.net.SetDropRate(types.ProcessID(a), types.ProcessID(b), 0.05)
			}
		}
	}
	spam := byz.NewSpammer(h.net.Endpoint(types.ProcessID(n+1)),
		h.m.All(), 97, 2*time.Millisecond)
	defer spam.Stop()

	// The safety auditor scrapes the replicas throughout the whole run —
	// view changes, state transfers, and Byzantine garbage included — and
	// must see zero violations: the churn may make replicas slow or stale,
	// never inconsistent.
	providers := make([]obs.StatusProvider, n)
	for i, rep := range h.replicas {
		providers[i] = rep
	}
	auditor := watch.New(watch.Config{
		Sources: []watch.Source{watch.Local("0", providers...)},
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	auditCtx, auditCancel := context.WithCancel(ctx)
	auditDone := make(chan struct{})
	go func() {
		defer close(auditDone)
		auditor.Run(auditCtx, 50*time.Millisecond)
	}()
	defer func() {
		auditCancel()
		<-auditDone
		if vs := auditor.Violations(); len(vs) != 0 {
			t.Errorf("auditor recorded %d safety violations during the soak: %+v", len(vs), vs)
		}
	}()

	// Rolling churn: block one replica-replica link at a time, briefly, so
	// a quorum always remains connected while every replica takes turns
	// falling behind.
	churnDone := make(chan struct{})
	churnStopped := make(chan struct{})
	go func() {
		defer close(churnStopped)
		pair := 0
		for {
			select {
			case <-churnDone:
				return
			case <-time.After(40 * time.Millisecond):
			}
			a := types.ProcessID(pair % n)
			b := types.ProcessID((pair + 1) % n)
			pair++
			h.net.BlockPair(a, b)
			select {
			case <-churnDone:
				h.net.HealAll()
				return
			case <-time.After(40 * time.Millisecond):
			}
			h.net.HealAll()
		}
	}()

	kv := h.client(0)
	for i := 0; i < ops; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("soak-%d", i), []byte{byte(i)}); err != nil {
			for j, rep := range h.replicas {
				t.Logf("replica %d: view=%d footprint=%+v log=%d",
					j, rep.View(), rep.Footprint(), len(h.logs[j].Snapshot()))
			}
			t.Fatalf("stalled: Put %d: %v", i, err)
		}
	}
	close(churnDone)
	<-churnStopped
	h.net.HealAll()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				h.net.SetDropRate(types.ProcessID(a), types.ProcessID(b), 0)
			}
		}
	}

	// A clean tail proves the cluster is still live after the abuse, and
	// gives laggards traffic to catch up (or state-transfer) on.
	for i := 0; i < 5; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("tail-%d", i), []byte{byte(i)}); err != nil {
			t.Fatalf("stalled after churn: Put %d: %v", i, err)
		}
	}
	if spam.Sent() == 0 {
		t.Fatal("spammer sent nothing; the soak exercised no byzantine traffic")
	}
	// Checkpointing must have been active throughout; every replica ends up
	// at (or transferred to) a recent stable checkpoint.
	waitFootprint(t, h, nil, 30*time.Second, func(fp minbft.Footprint) bool {
		return fp.StableCount >= interval
	})
	checkNoDoubleExecution(t, h, nil)
	checkLogsMutuallyOrdered(t, h)

	// The shared metrics registry must reflect the run. Stop the spammer
	// first (Stop is idempotent; the defer is then a no-op), then wait for
	// the work-in-progress gauges to quiesce and the sig-cache accounting to
	// settle — the cluster is idle once the tail writes complete, but the
	// last executions and queued garbage may still be landing.
	spam.Stop()
	deadline := time.Now().Add(15 * time.Second)
	var snap obs.Snapshot
	for {
		snap = h.metrics.Snapshot()
		quiet := snap.GaugeSum("minbft_open_slots") == 0 &&
			snap.GaugeSum("minbft_batches_in_flight") == 0
		settled := snap.Counter("sig_lookups_total") ==
			snap.Counter("sig_cache_hits_total")+
				snap.Counter("sig_cache_neg_hits_total")+snap.Counter("sig_verifications_total")
		if quiet && settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics did not quiesce: open_slots=%d in_flight=%d",
				snap.GaugeSum("minbft_open_slots"), snap.GaugeSum("minbft_batches_in_flight"))
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got := snap.CounterSum("minbft_batches_executed_total"); got == 0 {
		t.Fatal("metrics: no executed batches recorded")
	}
	if got := snap.HistogramCount("minbft_batch_size"); got == 0 {
		t.Fatal("metrics: batch-size histogram empty")
	}
	if got := snap.CounterSum("minbft_checkpoints_stable_total"); got == 0 {
		t.Fatal("metrics: no stable checkpoints recorded")
	}
	if snap.Counter("sig_lookups_total") == 0 {
		t.Fatal("metrics: sig cache served no lookups")
	}
	// The trace rings must have retained protocol events (checkpoints at
	// minimum; view changes and state transfers when the churn forced them).
	for i := 0; i < n; i++ {
		ring := h.metrics.Trace(obs.Name("minbft", "replica", types.ProcessID(i)), 1)
		if ring.Len() == 0 {
			t.Fatalf("metrics: replica %d trace ring empty", i)
		}
	}
}
