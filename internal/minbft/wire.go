package minbft

import (
	"crypto/sha256"
	"fmt"

	"unidir/internal/smr"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
	"unidir/internal/wire"
)

// Message kinds. REQUEST and REPLY are client traffic (unattested);
// PREPARE, COMMIT, VIEW-CHANGE and NEW-VIEW are replica traffic, each
// carrying the sender's UI (a TrInc attestation over the message body), so
// every replica's protocol messages form one tamper-evident total order.
const (
	kindRequest byte = iota + 1
	kindPrepare
	kindCommit
	kindViewChange
	kindNewView
	kindFetch        // unattested query: "send me peer P's message at UI seq S"
	kindFetchResp    // carries a stored original envelope, self-authenticating
	kindCheckpoint   // attested state digest at an execution-count boundary
	kindStateFetch   // unattested query: "send me your stable checkpoint >= count"
	kindStateResp    // checkpoint cert + state payload, self-certifying (cert UIs)
	kindRestart      // attested counter-jump announcement after a crash-restart
	kindReadRequest  // client read-only request, served off the ordering path
	kindLeaseRequest // primary's attested lease solicitation (body: view)
	kindLeaseGrant   // grantor's attested lease promise (body: view, request UI seq)
)

const uiDomain = "unidir/minbft/ui/v1"

// usigCounter is the trinket counter dedicated to the USIG.
const usigCounter uint64 = 0

// appendUIBinding appends the byte string a UI attests: domain, kind, and
// body hash.
func appendUIBinding(e *wire.Encoder, kind byte, body []byte) {
	h := sha256.Sum256(body)
	e.String(uiDomain)
	e.Byte(kind)
	e.BytesField(h[:])
}

// uiBinding is the byte string a UI attests, as a fresh allocation. Hot
// paths that only need the binding transiently use appendUIBinding with a
// pooled encoder instead (see Replica.checkUI).
func uiBinding(kind byte, body []byte) []byte {
	e := wire.NewEncoder(64)
	appendUIBinding(e, kind, body)
	return e.Bytes()
}

// maxBatchDecode bounds decoded request batches (defensive; the proposer
// side caps batches far lower).
const maxBatchDecode = 1 << 14

// encodeRequests is the canonical wire form of a request batch — the byte
// string commits digest (one attestation and one quorum certificate cover
// the whole batch). Shared with pbft via smr.
func encodeRequests(reqs []smr.Request) []byte { return smr.EncodeRequests(reqs) }

func decodeRequests(b []byte) ([]smr.Request, error) {
	reqs, err := smr.DecodeRequests(b, maxBatchDecode)
	if err != nil {
		return nil, fmt.Errorf("minbft: %w", err)
	}
	return reqs, nil
}

// prepare is the primary's ordering statement for one batch of requests:
// one UI, one slot, one quorum certificate, however many client commands.
type prepare struct {
	View types.View
	Reqs []smr.Request
}

func (p prepare) encodeBody() []byte {
	reqs := encodeRequests(p.Reqs)
	e := wire.NewEncoder(16 + len(reqs))
	e.Uint64(uint64(p.View))
	e.BytesField(reqs)
	return e.Bytes()
}

// batchDigest is what commits endorse: the hash of the canonical batch
// encoding (not of the whole prepare body, so it is recomputable from the
// requests alone).
func (p prepare) batchDigest() [sha256.Size]byte {
	return sha256.Sum256(encodeRequests(p.Reqs))
}

func decodePrepareBody(b []byte) (prepare, error) {
	d := wire.NewDecoder(b)
	var p prepare
	p.View = types.View(d.Uint64())
	reqBytes := d.BytesField()
	if err := d.Finish(); err != nil {
		return prepare{}, fmt.Errorf("minbft: decode prepare: %w", err)
	}
	reqs, err := decodeRequests(reqBytes)
	if err != nil {
		return prepare{}, err
	}
	p.Reqs = reqs
	return p, nil
}

// commit is a backup's endorsement of a prepare, identified by the
// primary's UI counter value and the batch digest.
type commit struct {
	View      types.View
	Primary   types.ProcessID
	PrepSeq   types.SeqNum
	ReqDigest [sha256.Size]byte
}

func (c commit) encodeBody() []byte {
	e := wire.NewEncoder(64)
	e.Uint64(uint64(c.View))
	e.Int(int(c.Primary))
	e.Uint64(uint64(c.PrepSeq))
	e.BytesField(c.ReqDigest[:])
	return e.Bytes()
}

func decodeCommitBody(b []byte) (commit, error) {
	d := wire.NewDecoder(b)
	var c commit
	c.View = types.View(d.Uint64())
	c.Primary = types.ProcessID(d.Int())
	c.PrepSeq = types.SeqNum(d.Uint64())
	h := d.BytesField()
	if err := d.Finish(); err != nil {
		return commit{}, fmt.Errorf("minbft: decode commit: %w", err)
	}
	if len(h) != sha256.Size {
		return commit{}, fmt.Errorf("minbft: commit digest length %d", len(h))
	}
	copy(c.ReqDigest[:], h)
	return c, nil
}

// logEntry is one accepted prepare (a whole batch) carried inside a
// VIEW-CHANGE message. The primary's UI attestation makes the entry
// self-certifying: at most one batch can ever exist per (primary counter
// value), so a Byzantine view-change sender can omit entries but not
// fabricate or alter them — including the batch's internal request order.
type logEntry struct {
	View    types.View
	PrepSeq types.SeqNum
	Reqs    []smr.Request
	PrepUI  trinc.Attestation
}

func encodeLogEntry(e *wire.Encoder, le logEntry) {
	e.Uint64(uint64(le.View))
	e.Uint64(uint64(le.PrepSeq))
	e.BytesField(encodeRequests(le.Reqs))
	e.BytesField(le.PrepUI.Encode())
}

func decodeLogEntry(d *wire.Decoder) (logEntry, error) {
	var le logEntry
	le.View = types.View(d.Uint64())
	le.PrepSeq = types.SeqNum(d.Uint64())
	reqBytes := d.BytesField()
	attBytes := d.BytesField()
	if err := d.Err(); err != nil {
		return logEntry{}, err
	}
	reqs, err := decodeRequests(reqBytes)
	if err != nil {
		return logEntry{}, err
	}
	att, err := trinc.DecodeAttestation(attBytes)
	if err != nil {
		return logEntry{}, err
	}
	le.Reqs = reqs
	le.PrepUI = att
	return le, nil
}

// viewChange announces a replica's move to a new view, carrying its
// accepted-prepare log (garbage-collected below the stable checkpoint) and
// its stable-checkpoint certificate, so the union computed at view install
// knows the state the surviving log suffix builds on.
type viewChange struct {
	NewView types.View
	Log     []logEntry
	Cert    ckptCert // stable checkpoint certificate (Count 0: none yet)
}

func (v viewChange) encodeBody() []byte {
	e := wire.NewEncoder(64)
	e.Uint64(uint64(v.NewView))
	e.Int(len(v.Log))
	for _, le := range v.Log {
		encodeLogEntry(e, le)
	}
	encodeCkptCert(e, v.Cert)
	return e.Bytes()
}

func decodeViewChangeBody(b []byte, maxEntries int) (viewChange, error) {
	d := wire.NewDecoder(b)
	var v viewChange
	v.NewView = types.View(d.Uint64())
	n := d.Int()
	if err := d.Err(); err != nil {
		return viewChange{}, err
	}
	if n < 0 || n > maxEntries {
		return viewChange{}, fmt.Errorf("minbft: view-change with %d entries", n)
	}
	for i := 0; i < n; i++ {
		le, err := decodeLogEntry(d)
		if err != nil {
			return viewChange{}, err
		}
		v.Log = append(v.Log, le)
	}
	cert, err := decodeCkptCert(d, maxCertVotes)
	if err != nil {
		return viewChange{}, fmt.Errorf("minbft: decode view-change: %w", err)
	}
	v.Cert = cert
	if err := d.Finish(); err != nil {
		return viewChange{}, fmt.Errorf("minbft: decode view-change: %w", err)
	}
	return v, nil
}

// signedVC is a view-change message as evidence inside NEW-VIEW: the
// sender, the raw body, and the sender's UI over it.
type signedVC struct {
	Sender types.ProcessID
	Body   []byte
	UI     trinc.Attestation
}

// newView is the new primary's installation message: f+1 signed
// view-changes for the target view.
type newView struct {
	NewView types.View
	VCs     []signedVC
}

func (nv newView) encodeBody() []byte {
	e := wire.NewEncoder(128)
	e.Uint64(uint64(nv.NewView))
	e.Int(len(nv.VCs))
	for _, vc := range nv.VCs {
		e.Int(int(vc.Sender))
		e.BytesField(vc.Body)
		e.BytesField(vc.UI.Encode())
	}
	return e.Bytes()
}

func decodeNewViewBody(b []byte, maxVCs int) (newView, error) {
	d := wire.NewDecoder(b)
	var nv newView
	nv.NewView = types.View(d.Uint64())
	n := d.Int()
	if err := d.Err(); err != nil {
		return newView{}, err
	}
	if n < 0 || n > maxVCs {
		return newView{}, fmt.Errorf("minbft: new-view with %d vcs", n)
	}
	for i := 0; i < n; i++ {
		var vc signedVC
		vc.Sender = types.ProcessID(d.Int())
		vc.Body = append([]byte(nil), d.BytesField()...)
		attBytes := d.BytesField()
		if err := d.Err(); err != nil {
			return newView{}, err
		}
		att, err := trinc.DecodeAttestation(attBytes)
		if err != nil {
			return newView{}, err
		}
		vc.UI = att
		nv.VCs = append(nv.VCs, vc)
	}
	if err := d.Finish(); err != nil {
		return newView{}, fmt.Errorf("minbft: decode new-view: %w", err)
	}
	return nv, nil
}

// fetchBody encodes a gap-fill query for peer's message at UI value seq.
func encodeFetchBody(peer types.ProcessID, seq types.SeqNum) []byte {
	e := wire.NewEncoder(16)
	e.Int(int(peer))
	e.Uint64(uint64(seq))
	return e.Bytes()
}

func decodeFetchBody(b []byte) (types.ProcessID, types.SeqNum, error) {
	d := wire.NewDecoder(b)
	peer := types.ProcessID(d.Int())
	seq := types.SeqNum(d.Uint64())
	if err := d.Finish(); err != nil {
		return 0, 0, fmt.Errorf("minbft: decode fetch: %w", err)
	}
	return peer, seq, nil
}

// EncodeRequestEnvelope wraps a client request for submission to replicas;
// pass it to smr.WithRequestEncoder when building a client.
func EncodeRequestEnvelope(req smr.Request) []byte {
	return encodeEnvelope(kindRequest, req.Encode(), nil)
}

// EncodeReadRequestEnvelope wraps a client read for the fast path; pass it
// to smr.WithPipelineReadEncoder when building a pipelined client.
func EncodeReadRequestEnvelope(req smr.ReadRequest) []byte {
	return encodeEnvelope(kindReadRequest, req.Encode(), nil)
}

// EncodeReadBatchEnvelope wraps a coalesced batch of encoded reads; pass it
// to smr.WithPipelineReadBatchEncoder when building a pipelined client.
func EncodeReadBatchEnvelope(reqs [][]byte) []byte {
	return encodeEnvelope(kindReadRequest, smr.EncodeReadRequestBatch(reqs), nil)
}

// encodeLeaseRequestBody is the primary's lease solicitation: just the view
// it claims leadership of. The UI over this body is what binds the lease
// round to the primary's trusted counter — the grant echoes that counter
// value, so the round a grant answers is unforgeable and totally ordered
// against everything else the primary ever attested.
func encodeLeaseRequestBody(view types.View) []byte {
	e := wire.NewEncoder(8)
	e.Uint64(uint64(view))
	return e.Bytes()
}

func decodeLeaseRequestBody(b []byte) (types.View, error) {
	d := wire.NewDecoder(b)
	v := types.View(d.Uint64())
	if err := d.Finish(); err != nil {
		return 0, fmt.Errorf("minbft: decode lease request: %w", err)
	}
	return v, nil
}

// encodeLeaseGrantBody is a grantor's promise for one lease round: the view
// it grants in and the UI counter value of the primary's LEASE-REQUEST it
// answers. Grants are broadcast (not sent point-to-point) because every
// attested message must reach every peer to keep UI cursors gap-free.
func encodeLeaseGrantBody(view types.View, reqSeq types.SeqNum) []byte {
	e := wire.NewEncoder(16)
	e.Uint64(uint64(view))
	e.Uint64(uint64(reqSeq))
	return e.Bytes()
}

func decodeLeaseGrantBody(b []byte) (types.View, types.SeqNum, error) {
	d := wire.NewDecoder(b)
	v := types.View(d.Uint64())
	seq := types.SeqNum(d.Uint64())
	if err := d.Finish(); err != nil {
		return 0, 0, fmt.Errorf("minbft: decode lease grant: %w", err)
	}
	return v, seq, nil
}

// envelope wraps kind, body, and the sender's UI attestation for replica
// messages (UI empty for client requests).
func encodeEnvelope(kind byte, body []byte, ui *trinc.Attestation) []byte {
	var attBytes []byte
	if ui != nil {
		attBytes = ui.Encode()
	}
	e := wire.NewEncoder(16 + len(body) + len(attBytes))
	e.Byte(kind)
	e.BytesField(body)
	e.BytesField(attBytes)
	return e.Bytes()
}

func decodeEnvelope(payload []byte) (kind byte, body []byte, ui *trinc.Attestation, err error) {
	d := wire.NewDecoder(payload)
	kind = d.Byte()
	body = append([]byte(nil), d.BytesField()...)
	attBytes := d.BytesField()
	if err := d.Finish(); err != nil {
		return 0, nil, nil, fmt.Errorf("minbft: decode envelope: %w", err)
	}
	if len(attBytes) > 0 {
		att, err := trinc.DecodeAttestation(attBytes)
		if err != nil {
			return 0, nil, nil, err
		}
		ui = &att
	}
	return kind, body, ui, nil
}
