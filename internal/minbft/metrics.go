package minbft

// Metrics: the replica's obs instrumentation. Everything here is optional —
// without WithMetrics every handle below stays nil and each recording site
// is a nil-check (see internal/obs), so the protocol pays nothing.

import (
	"time"

	"unidir/internal/obs"
)

// WithMetrics publishes replica metrics into reg, labelled by replica ID:
// batches/requests proposed and executed, batch sizes, commit latency,
// slots in flight, view changes, checkpoint/GC/state-transfer counts, and a
// per-replica trace ring of protocol events (view changes, checkpoints,
// state transfers, restarts).
func WithMetrics(reg *obs.Registry) Option {
	return func(r *Replica) { r.metricsReg = reg }
}

// metrics holds the replica's metric handles; the zero value (all nil) is a
// fully functional no-op.
type metrics struct {
	proposedBatches *obs.Counter
	executedBatches *obs.Counter
	executedReqs    *obs.Counter
	batchSize       *obs.Histogram
	commitLatency   *obs.Histogram
	viewChanges     *obs.Counter
	view            *obs.Gauge
	openSlots       *obs.Gauge // accepted-but-unexecuted slots
	inFlight        *obs.Gauge // leader's proposed-but-unexecuted batches
	ckptTaken       *obs.Counter
	ckptStable      *obs.Counter
	stateTransfers  *obs.Counter
	fetchesSent     *obs.Counter
	sheds           *obs.Counter   // requests refused by admission control
	pendingDepth    *obs.Gauge     // pending-request queue depth
	batchWait       *obs.Histogram // oldest-arrival-to-cut wait per batch
	pacedProposals  *obs.Counter   // proposal deferrals due to peer queue depth
	leaseGrants     *obs.Counter   // grants this replica issued as a grantor
	leaseRenewals   *obs.Counter   // lease rounds this replica started as leader
	leaseExpiries   *obs.Counter   // renewals that found the previous lease lapsed
	leasedReads     *obs.Counter   // reads answered from the lease
	fallbackReads   *obs.Counter   // reads answered as quorum-read fallback votes
	trace           *obs.Trace
}

func (r *Replica) initMetrics() {
	reg := r.metricsReg
	if reg == nil {
		return
	}
	id := r.Self()
	r.mx = metrics{
		proposedBatches: reg.Counter(obs.Name("minbft_batches_proposed_total", "replica", id)),
		executedBatches: reg.Counter(obs.Name("minbft_batches_executed_total", "replica", id)),
		executedReqs:    reg.Counter(obs.Name("minbft_requests_executed_total", "replica", id)),
		batchSize:       reg.Histogram(obs.Name("minbft_batch_size", "replica", id), obs.SizeBuckets),
		commitLatency:   reg.Histogram(obs.Name("minbft_commit_latency_seconds", "replica", id), obs.LatencyBuckets),
		viewChanges:     reg.Counter(obs.Name("minbft_view_changes_total", "replica", id)),
		view:            reg.Gauge(obs.Name("minbft_view", "replica", id)),
		openSlots:       reg.Gauge(obs.Name("minbft_open_slots", "replica", id)),
		inFlight:        reg.Gauge(obs.Name("minbft_batches_in_flight", "replica", id)),
		ckptTaken:       reg.Counter(obs.Name("minbft_checkpoints_taken_total", "replica", id)),
		ckptStable:      reg.Counter(obs.Name("minbft_checkpoints_stable_total", "replica", id)),
		stateTransfers:  reg.Counter(obs.Name("minbft_state_transfers_total", "replica", id)),
		fetchesSent:     reg.Counter(obs.Name("minbft_fetches_sent_total", "replica", id)),
		sheds:           reg.Counter(obs.Name("minbft_requests_shed_total", "replica", id)),
		pendingDepth:    reg.Gauge(obs.Name("minbft_pending_requests", "replica", id)),
		batchWait:       reg.Histogram(obs.Name("minbft_batch_wait_seconds", "replica", id), obs.LatencyBuckets),
		pacedProposals:  reg.Counter(obs.Name("minbft_paced_proposals_total", "replica", id)),
		leaseGrants:     reg.Counter(obs.Name("minbft_lease_grants_total", "replica", id)),
		leaseRenewals:   reg.Counter(obs.Name("minbft_lease_renewals_total", "replica", id)),
		leaseExpiries:   reg.Counter(obs.Name("minbft_lease_expiries_total", "replica", id)),
		leasedReads:     reg.Counter(obs.Name("minbft_leased_reads_total", "replica", id)),
		fallbackReads:   reg.Counter(obs.Name("minbft_fallback_reads_total", "replica", id)),
		trace:           reg.Trace(obs.Name("minbft", "replica", id), 256),
	}
}

// observeExecuted records one executed slot: throughput counters, commit
// latency from prepare acceptance to execution, and the drained-slot gauges.
func (r *Replica) observeExecuted(en *entry) {
	r.mx.executedBatches.Inc()
	r.mx.executedReqs.Add(uint64(len(en.reqs)))
	if !en.boundAt.IsZero() {
		r.mx.commitLatency.Observe(time.Since(en.boundAt).Seconds())
	}
	r.mx.openSlots.Set(int64(len(r.prepOrder) - r.execIdx))
	r.mx.inFlight.Set(int64(r.inFlight))
	r.mx.pendingDepth.Set(int64(len(r.pending)))
}
