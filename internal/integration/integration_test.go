// Package integration_test wires full stacks end-to-end across substrate
// boundaries: the SMR protocols over real TCP, and SRB over the TCP
// transport — the configurations the cmd/ demos use, verified in-process.
package integration_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"unidir/internal/kvstore"
	"unidir/internal/minbft"
	"unidir/internal/sig"
	"unidir/internal/smr"
	"unidir/internal/srb"
	"unidir/internal/srb/trincsrb"
	"unidir/internal/tcpnet"
	"unidir/internal/transport"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

// newTCPCluster binds count endpoints on loopback with dynamic ports.
func newTCPCluster(t *testing.T, count int) []*tcpnet.Net {
	t.Helper()
	cfg := make(tcpnet.Config, count)
	for i := 0; i < count; i++ {
		cfg[types.ProcessID(i)] = "127.0.0.1:0"
	}
	nets := make([]*tcpnet.Net, count)
	for i := 0; i < count; i++ {
		nt, err := tcpnet.New(types.ProcessID(i), cfg)
		if err != nil {
			t.Fatalf("tcpnet.New(%d): %v", i, err)
		}
		cfg[types.ProcessID(i)] = nt.Addr()
		nets[i] = nt
	}
	t.Cleanup(func() {
		for _, nt := range nets {
			_ = nt.Close()
		}
	})
	return nets
}

func TestMinBFTOverTCP(t *testing.T) {
	const n, f = 3, 1
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	nets := newTCPCluster(t, n+1) // +1 client
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(61)))
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	logs := make([]*smr.ExecutionLog, n)
	replicas := make([]*minbft.Replica, n)
	for i := 0; i < n; i++ {
		logs[i] = &smr.ExecutionLog{}
		replicas[i], err = minbft.New(m, nets[i], tu.Devices[i], tu.Verifier, kvstore.New(),
			minbft.WithRequestTimeout(2*time.Second), minbft.WithExecutionLog(logs[i]))
		if err != nil {
			t.Fatalf("minbft.New: %v", err)
		}
		defer replicas[i].Close()
	}
	base, err := smr.NewClient(nets[n], m.All(), m.FPlusOne(), uint64(n), 200*time.Millisecond,
		smr.WithRequestEncoder(minbft.EncodeRequestEnvelope))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	kv := kvstore.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for i := 0; i < 5; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("tcp-%d", i), []byte{byte(i)}); err != nil {
			t.Fatalf("Put over TCP: %v", err)
		}
	}
	v, err := kv.Get(ctx, "tcp-3")
	if err != nil || v[0] != 3 {
		t.Fatalf("Get = %v, %v", v, err)
	}
	// Wait for all replicas to catch up, then check log consistency.
	deadline := time.Now().Add(10 * time.Second)
	for _, log := range logs {
		for len(log.Snapshot()) < 6 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
	}
	for i := 1; i < n; i++ {
		if err := smr.CheckPrefix(logs[0].Snapshot(), logs[i].Snapshot()); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}
}

func TestMinBFTViewChangeOverTCP(t *testing.T) {
	const n, f = 3, 1
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	nets := newTCPCluster(t, n+1)
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(62)))
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	replicas := make([]*minbft.Replica, n)
	for i := 0; i < n; i++ {
		replicas[i], err = minbft.New(m, nets[i], tu.Devices[i], tu.Verifier, kvstore.New(),
			minbft.WithRequestTimeout(200*time.Millisecond))
		if err != nil {
			t.Fatalf("minbft.New: %v", err)
		}
	}
	defer func() {
		for _, r := range replicas {
			if r != nil {
				_ = r.Close()
			}
		}
	}()
	base, err := smr.NewClient(nets[n], m.All(), m.FPlusOne(), uint64(n), 200*time.Millisecond,
		smr.WithRequestEncoder(minbft.EncodeRequestEnvelope))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	kv := kvstore.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 45*time.Second)
	defer cancel()

	if err := kv.Put(ctx, "before", []byte("crash")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	_ = replicas[0].Close() // kill the primary's TCP endpoint and goroutines
	replicas[0] = nil
	if err := kv.Put(ctx, "after", []byte("recovery")); err != nil {
		t.Fatalf("Put after primary crash over TCP: %v", err)
	}
	v, err := kv.Get(ctx, "before")
	if err != nil || string(v) != "crash" {
		t.Fatalf("pre-crash state lost: %q, %v", v, err)
	}
}

func TestTrincSRBOverTCP(t *testing.T) {
	const n, f = 4, 1
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	nets := newTCPCluster(t, n)
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(63)))
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	rec := srb.NewRecorder()
	nodes := make([]srb.Node, n)
	for i := 0; i < n; i++ {
		nodes[i], err = trincsrb.New(m, nets[i], tu.Devices[i], tu.Verifier)
		if err != nil {
			t.Fatalf("trincsrb.New: %v", err)
		}
		defer nodes[i].Close()
	}
	const msgs = 4
	for _, node := range nodes {
		for j := 0; j < msgs; j++ {
			data := []byte(fmt.Sprintf("%v-%d", node.Self(), j))
			seq, err := node.Broadcast(data)
			if err != nil {
				t.Fatalf("Broadcast: %v", err)
			}
			rec.Broadcast(node.Self(), seq, data)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, node := range nodes {
		for j := 0; j < n*msgs; j++ {
			d, err := node.Deliver(ctx)
			if err != nil {
				t.Fatalf("%v deliver %d: %v", node.Self(), j, err)
			}
			rec.Deliver(node.Self(), d)
		}
	}
	if err := rec.CheckAll(m.All()); err != nil {
		t.Fatal(err)
	}
}

func TestMuxedProtocolsShareOneTCPEndpoint(t *testing.T) {
	// Two independent SRB node sets share each process's single TCP
	// endpoint through the transport mux — the composition pattern a real
	// deployment running several protocol instances would use.
	const n = 4
	m, err := types.NewMembership(n, 1)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	nets := newTCPCluster(t, n)
	muxes := make([]*transport.Mux, n)
	for i := range nets {
		muxes[i] = transport.NewMux(nets[i])
		defer muxes[i].Close()
	}
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(64)))
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	mkNodes := func(tag byte) []srb.Node {
		nodes := make([]srb.Node, n)
		for i := 0; i < n; i++ {
			var err error
			nodes[i], err = trincsrb.New(m, muxes[i].Channel(tag), tu.Devices[i], tu.Verifier)
			if err != nil {
				t.Fatalf("trincsrb.New: %v", err)
			}
		}
		return nodes
	}
	// Separate trinket counters are required per instance set; the trinc
	// protocol uses counter 0, so two sets would collide on one trinket.
	// Use distinct universes per channel instead (as two deployments would).
	tu2, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(65)))
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	nodesA := mkNodes('A')
	nodesB := make([]srb.Node, n)
	for i := 0; i < n; i++ {
		nodesB[i], err = trincsrb.New(m, muxes[i].Channel('B'), tu2.Devices[i], tu2.Verifier)
		if err != nil {
			t.Fatalf("trincsrb.New: %v", err)
		}
	}
	defer func() {
		for i := 0; i < n; i++ {
			_ = nodesA[i].Close()
			_ = nodesB[i].Close()
		}
	}()

	if _, err := nodesA[0].Broadcast([]byte("on-A")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if _, err := nodesB[1].Broadcast([]byte("on-B")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		da, err := nodesA[i].Deliver(ctx)
		if err != nil || string(da.Data) != "on-A" {
			t.Fatalf("node A%d: %+v, %v", i, da, err)
		}
		db, err := nodesB[i].Deliver(ctx)
		if err != nil || string(db.Data) != "on-B" {
			t.Fatalf("node B%d: %+v, %v", i, db, err)
		}
	}
}

func TestPipelinedClientBatchedMinBFTOverTCP(t *testing.T) {
	// The full amortized hot path end-to-end: pipelined client keeping a
	// window of puts in flight, batching primary packing them into shared
	// prepares, coalescing TCP sender flushing whole bursts per syscall.
	const n, f = 3, 1
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	nets := newTCPCluster(t, n+1) // +1 pipelined client
	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(66)))
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	logs := make([]*smr.ExecutionLog, n)
	replicas := make([]*minbft.Replica, n)
	for i := 0; i < n; i++ {
		logs[i] = &smr.ExecutionLog{}
		replicas[i], err = minbft.New(m, nets[i], tu.Devices[i], tu.Verifier, kvstore.New(),
			minbft.WithRequestTimeout(2*time.Second), minbft.WithBatchSize(8),
			minbft.WithExecutionLog(logs[i]))
		if err != nil {
			t.Fatalf("minbft.New: %v", err)
		}
		defer replicas[i].Close()
	}
	const window = 8
	pl, err := smr.NewPipeline(nets[n], m.All(), m.FPlusOne(), uint64(n),
		300*time.Millisecond, window, smr.WithPipelineRequestEncoder(minbft.EncodeRequestEnvelope))
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	defer pl.Close()
	kv := kvstore.NewPipeClient(pl)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const ops = 40
	calls := make([]*smr.Call, 0, ops)
	for i := 0; i < ops; i++ {
		call, err := kv.PutAsync(ctx, fmt.Sprintf("pipe-%d", i), []byte{byte(i)})
		if err != nil {
			t.Fatalf("PutAsync(%d): %v", i, err)
		}
		calls = append(calls, call)
	}
	for i, call := range calls {
		if _, err := call.Result(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	v, err := kv.Get(ctx, "pipe-17")
	if err != nil || len(v) != 1 || v[0] != 17 {
		t.Fatalf("Get = %v, %v", v, err)
	}
	// ops puts + 1 get, all ops committed on every replica with identical order.
	deadline := time.Now().Add(10 * time.Second)
	for _, log := range logs {
		for len(log.Snapshot()) < ops+1 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
	}
	for i := 0; i < n; i++ {
		if got := len(logs[i].Snapshot()); got != ops+1 {
			t.Fatalf("replica %d executed %d commands, want %d", i, got, ops+1)
		}
	}
	for i := 1; i < n; i++ {
		if err := smr.CheckPrefix(logs[0].Snapshot(), logs[i].Snapshot()); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}
}
