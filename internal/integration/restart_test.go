package integration_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"unidir/internal/kvstore"
	"unidir/internal/minbft"
	"unidir/internal/sig"
	"unidir/internal/smr"
	"unidir/internal/tcpnet"
	"unidir/internal/trusted/ctrstore"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

// TestMinBFTCrashRestartOverTCP kills a checkpointing replica mid-load and
// restarts it from its data directory: the counter WAL rehydrates the
// trusted counter monotonically, the persisted stable checkpoint seeds the
// state machine, and state transfer over real TCP catches it up. The
// cluster never stops serving, nothing is executed twice, and the trusted
// counter never regresses.
func TestMinBFTCrashRestartOverTCP(t *testing.T) {
	const (
		n, f     = 3, 1
		interval = 4
		seed     = 63
	)
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	nets := newTCPCluster(t, n+1) // +1 client
	cfg := make(tcpnet.Config, n+1)
	for i := 0; i <= n; i++ {
		cfg[types.ProcessID(i)] = nets[i].Addr()
	}
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}

	// startReplica builds one replica process worth of state: a fresh
	// universe derived from the shared seed (a restarted OS process holds
	// no in-memory counter state), the reopened counter WAL, and a replica
	// that loads whatever checkpoint its data dir holds.
	startReplica := func(i int, tr *tcpnet.Net, log *smr.ExecutionLog) (*minbft.Replica, *trinc.Device, *ctrstore.Store) {
		t.Helper()
		tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("universe: %v", err)
		}
		cs, err := ctrstore.Open(filepath.Join(dirs[i], "usig.wal"))
		if err != nil {
			t.Fatalf("ctrstore.Open: %v", err)
		}
		dev := tu.Devices[i]
		if err := dev.Persist(cs); err != nil {
			t.Fatalf("Persist: %v", err)
		}
		opts := []minbft.Option{
			minbft.WithRequestTimeout(2 * time.Second),
			minbft.WithCheckpointInterval(interval),
			minbft.WithDataDir(dirs[i]),
		}
		if log != nil {
			opts = append(opts, minbft.WithExecutionLog(log))
		}
		rep, err := minbft.New(m, tr, dev, tu.Verifier, kvstore.New(), opts...)
		if err != nil {
			t.Fatalf("minbft.New(%d): %v", i, err)
		}
		return rep, dev, cs
	}

	replicas := make([]*minbft.Replica, n)
	logs := make([]*smr.ExecutionLog, n)
	for i := 0; i < n; i++ {
		logs[i] = &smr.ExecutionLog{}
		rep, _, _ := startReplica(i, nets[i], logs[i])
		replicas[i] = rep
	}
	defer func() {
		for _, r := range replicas {
			if r != nil {
				_ = r.Close()
			}
		}
	}()

	base, err := smr.NewClient(nets[n], m.All(), m.FPlusOne(), uint64(n), 200*time.Millisecond,
		smr.WithRequestEncoder(minbft.EncodeRequestEnvelope))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	kv := kvstore.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Phase 1: commit past a checkpoint boundary so replica 2 has a stable
	// checkpoint and a counter WAL on disk.
	for i := 0; i < 6; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("pre-%d", i), []byte{byte(i)}); err != nil {
			t.Fatalf("Put pre-%d: %v", i, err)
		}
	}
	// Kill replica 2 mid-load. Closing the transport out from under it is
	// the in-process stand-in for SIGKILL: nothing flushes on the way down;
	// whatever the write-ahead paths already put on disk is all a restart
	// gets — which is exactly the guarantee under test.
	_ = nets[2].Close()
	_ = replicas[2].Close()
	replicas[2] = nil

	// Phase 2: the surviving f+1 keep committing and GC the log out from
	// under the dead replica.
	for i := 0; i < 6; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("down-%d", i), []byte{byte(i)}); err != nil {
			t.Fatalf("Put down-%d: %v", i, err)
		}
	}

	// Restart replica 2 on its old address with its old data dir.
	tr2, err := tcpnet.New(2, cfg)
	if err != nil {
		t.Fatalf("tcpnet.New restart: %v", err)
	}
	t.Cleanup(func() { _ = tr2.Close() })
	log2 := &smr.ExecutionLog{}
	rep2, dev2, cs2 := startReplica(2, tr2, log2)
	replicas[2] = rep2

	// Counter monotonicity across the crash: the rehydrated device starts
	// at the WAL's high-water mark, so it can never re-attest a value the
	// pre-crash incarnation released.
	rehydrated := dev2.LastAttested(0)
	if rehydrated == 0 {
		t.Fatal("restarted device rehydrated to zero; counter state was lost")
	}
	if wal := cs2.Last()[0]; types.SeqNum(wal) != rehydrated {
		t.Fatalf("device rehydrated to %d but WAL records %d", rehydrated, wal)
	}

	// Phase 3: keep loading until the restarted replica has installed a
	// stable checkpoint at or beyond everything committed while it was
	// down, proving state transfer completed.
	deadline := time.Now().Add(60 * time.Second)
	for i := 0; rep2.Footprint().StableCount < 12; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica never caught up: %+v", rep2.Footprint())
		}
		if err := kv.Put(ctx, fmt.Sprintf("post-%d", i), []byte{byte(i)}); err != nil {
			t.Fatalf("Put post-%d: %v", i, err)
		}
	}

	// The restarted replica must execute fresh slots too, with a counter
	// strictly above its pre-crash high-water mark.
	finalOp := kvstore.EncodePut("rejoined", []byte("yes"))
	if err := kv.Put(ctx, "rejoined", []byte("yes")); err != nil {
		t.Fatalf("Put rejoined: %v", err)
	}
	for {
		found := false
		for _, cmd := range log2.Snapshot() {
			req, err := smr.DecodeRequest(cmd)
			if err != nil {
				t.Fatalf("restarted replica: undecodable log entry: %v", err)
			}
			if bytes.Equal(req.Op, finalOp) {
				found = true
				break
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted replica never executed a post-restart request")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := dev2.LastAttested(0); got <= rehydrated {
		t.Fatalf("counter did not advance after restart: %d <= %d", got, rehydrated)
	}

	// No loss, no double execution: the survivors hold the full history
	// exactly once, and agree with each other and with the restarted
	// replica's (gappy but duplicate-free) log.
	if err := smr.CheckPrefix(logs[0].Snapshot(), logs[1].Snapshot()); err != nil {
		t.Fatalf("survivor logs diverged: %v", err)
	}
	for _, log := range []*smr.ExecutionLog{logs[0], logs[1], log2} {
		seen := make(map[[2]uint64]bool)
		for _, cmd := range log.Snapshot() {
			req, err := smr.DecodeRequest(cmd)
			if err != nil {
				t.Fatalf("undecodable log entry: %v", err)
			}
			key := [2]uint64{req.Client, req.Num}
			if seen[key] {
				t.Fatalf("request client=%d num=%d executed twice", req.Client, req.Num)
			}
			seen[key] = true
		}
	}
}
